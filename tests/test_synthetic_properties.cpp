/**
 * @file
 * Property tests of the synthetic model generator's mechanism-level
 * guarantees (DESIGN.md Sec. 2.10): gamma spikes exist and follow the
 * profile, outlier consumption is attenuated, persistent outlier
 * channels occupy distinct OVP pair slots, and the activation pattern
 * behaves as documented.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "models/synthetic.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

class ModelSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    models::ModelConfig
    config() const
    {
        return models::byName(GetParam());
    }
};

TEST_P(ModelSweep, EveryLayerNormHasGammaSpikes)
{
    const auto backbone = models::makeBackbone(config(), 3);
    for (const auto &layer : backbone.layers) {
        for (const Tensor *gamma : {&layer.ln1Gamma, &layer.ln2Gamma}) {
            double mx = 0.0;
            for (float g : gamma->data())
                mx = std::max(mx, static_cast<double>(std::fabs(g)));
            EXPECT_GT(mx, 4.0) << "an LN without any outlier channel";
            EXPECT_LE(mx, config().profile.actMaxSigma * 1.01);
        }
    }
}

TEST_P(ModelSweep, GammaSpikesOccupyDistinctPairSlots)
{
    const auto backbone = models::makeBackbone(config(), 5);
    for (const auto &layer : backbone.layers) {
        for (const Tensor *gamma : {&layer.ln1Gamma, &layer.ln2Gamma}) {
            std::vector<size_t> spike_slots;
            for (size_t j = 0; j < gamma->size(); ++j) {
                if (std::fabs((*gamma)[j]) > 4.0f)
                    spike_slots.push_back(j / 2);
            }
            std::sort(spike_slots.begin(), spike_slots.end());
            EXPECT_EQ(std::adjacent_find(spike_slots.begin(),
                                         spike_slots.end()),
                      spike_slots.end())
                << "two persistent outlier channels share a pair";
        }
    }
}

TEST_P(ModelSweep, OutlierConsumptionIsAttenuated)
{
    // The FFN columns reading ln1 spike channels must carry much
    // smaller weights than average columns.
    const auto backbone = models::makeBackbone(config(), 7);
    for (const auto &layer : backbone.layers) {
        for (size_t j = 0; j < layer.ln1Gamma.size(); ++j) {
            if (std::fabs(layer.ln1Gamma[j]) <= 8.0f)
                continue;
            double col_sq = 0.0;
            for (size_t r = 0; r < layer.ff1.w.dim(0); ++r) {
                col_sq += static_cast<double>(layer.ff1.w.at(r, j)) *
                          layer.ff1.w.at(r, j);
            }
            const double col_rms =
                std::sqrt(col_sq / static_cast<double>(layer.ff1.w.dim(0)));
            const double typical =
                1.0 / std::sqrt(static_cast<double>(layer.ff1.w.dim(1)));
            EXPECT_LT(col_rms, typical)
                << "spike-channel column not attenuated";
        }
    }
}

TEST_P(ModelSweep, ActPatternChannelsDistinctSlots)
{
    const auto pattern = models::makeActPattern(config(), 11);
    ASSERT_GE(pattern.channels.size(), 2u);
    std::vector<size_t> slots;
    for (size_t ch : pattern.channels)
        slots.push_back(ch / 2);
    std::sort(slots.begin(), slots.end());
    EXPECT_EQ(std::adjacent_find(slots.begin(), slots.end()), slots.end());
}

TEST_P(ModelSweep, ActPatternDominantChannelsNearCap)
{
    const auto pattern = models::makeActPattern(config(), 13, 64.0);
    EXPECT_NEAR(pattern.magnitudes[0], 64.0, 1e-9);
    EXPECT_NEAR(pattern.magnitudes[1], 64.0, 1e-9);
    for (size_t c = 2; c < pattern.magnitudes.size(); ++c)
        EXPECT_LE(pattern.magnitudes[c], 64.0 + 1e-9);
}

TEST_P(ModelSweep, StableSequencesShareOutlierChannels)
{
    // The systematic-outlier property: across examples, outliers land
    // in the same channels (what makes PTQ activation calibration
    // meaningful).
    const auto cfg = config();
    const auto pattern = models::makeActPattern(cfg, 17);
    Rng rng(19);
    std::vector<size_t> hot(cfg.evalDModel, 0);
    for (int i = 0; i < 16; ++i) {
        const Tensor x =
            models::makeInputSequenceStable(cfg, pattern, 16, rng);
        for (size_t t = 0; t < 16; ++t) {
            for (size_t j = 0; j < cfg.evalDModel; ++j) {
                if (std::fabs(x.at(t, j)) > 10.0f)
                    ++hot[j];
            }
        }
    }
    size_t hot_channels = 0;
    for (size_t j = 0; j < hot.size(); ++j)
        hot_channels += hot[j] > 4;
    EXPECT_LE(hot_channels, pattern.channels.size())
        << "outliers outside the designated channels";
    EXPECT_GE(hot_channels, 1u);
}

TEST_P(ModelSweep, ChannelScalesModulateDominantChannels)
{
    const auto cfg = config();
    const auto pattern = models::makeActPattern(cfg, 23);
    Rng rng_a(29), rng_b(29);
    const Tensor lo = models::makeInputSequenceStable(cfg, pattern, 64,
                                                      rng_a, 0.5, 1.5);
    const Tensor hi = models::makeInputSequenceStable(cfg, pattern, 64,
                                                      rng_b, 1.5, 0.5);
    // Same rng stream: only the two dominant channels differ in scale.
    double lo0 = 0.0, hi0 = 0.0;
    const size_t ch0 = pattern.channels[0];
    for (size_t t = 0; t < 64; ++t) {
        lo0 = std::max(lo0, static_cast<double>(std::fabs(lo.at(t, ch0))));
        hi0 = std::max(hi0, static_cast<double>(std::fabs(hi.at(t, ch0))));
    }
    if (lo0 > 0.0 && hi0 > 0.0)
        EXPECT_NEAR(hi0 / lo0, 3.0, 0.2);
}

INSTANTIATE_TEST_SUITE_P(Models, ModelSweep,
                         ::testing::Values("BERT-base", "GPT2-XL",
                                           "OPT-6.7B"),
                         [](const auto &info) {
                             std::string name = info.param;
                             for (auto &c : name) {
                                 if (c == '-' || c == '.')
                                     c = '_';
                             }
                             return name;
                         });

} // namespace
} // namespace olive
