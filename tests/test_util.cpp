/**
 * @file
 * Tests of the foundation library: PRNG determinism and distribution
 * quality, statistics, bit helpers, the table renderer, and the CLI
 * parser.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/args.hpp"
#include "util/bitops.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace olive {
namespace {

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntUnbiased)
{
    Rng rng(9);
    std::vector<int> counts(7, 0);
    for (int i = 0; i < 70000; ++i)
        ++counts[rng.uniformInt(7)];
    for (int c : counts)
        EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    std::vector<float> xs(50000);
    for (auto &v : xs)
        v = static_cast<float>(rng.gaussian());
    EXPECT_NEAR(stats::mean(xs), 0.0, 0.03);
    EXPECT_NEAR(stats::stddev(xs), 1.0, 0.03);
}

TEST(Rng, HeavyTailProducesOutliers)
{
    Rng rng(13);
    std::vector<float> xs(100000);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 4.0, 50.0));
    // ~1 % of samples beyond 3.5 magnitude.
    size_t big = 0;
    for (float v : xs)
        big += std::fabs(v) > 3.9f;
    EXPECT_NEAR(static_cast<double>(big) / 100000.0, 0.01, 0.004);
}

TEST(Rng, PermutationIsBijective)
{
    Rng rng(17);
    const auto p = rng.permutation(100);
    std::vector<bool> seen(100, false);
    for (size_t v : p) {
        ASSERT_LT(v, 100u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

// ---------------------------------------------------------------- stats

TEST(Stats, MeanStddev)
{
    const std::vector<float> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 3.0);
    EXPECT_NEAR(stats::stddev(xs), std::sqrt(2.0), 1e-9);
}

TEST(Stats, EmptyInputs)
{
    const std::vector<float> none;
    EXPECT_DOUBLE_EQ(stats::mean(none), 0.0);
    EXPECT_DOUBLE_EQ(stats::stddev(none), 0.0);
    EXPECT_DOUBLE_EQ(stats::absMax(none), 0.0);
}

TEST(Stats, MseAndMae)
{
    const std::vector<float> a = {1, 2, 3};
    const std::vector<float> b = {2, 2, 1};
    EXPECT_NEAR(stats::mse(a, b), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
    EXPECT_NEAR(stats::mae(a, b), (1.0 + 0.0 + 2.0) / 3.0, 1e-12);
}

TEST(Stats, SqnrPerfectIsInfinite)
{
    const std::vector<float> a = {1, 2, 3};
    EXPECT_TRUE(std::isinf(stats::sqnrDb(a, a)));
}

TEST(Stats, Geomean)
{
    const std::vector<double> xs = {1.0, 4.0, 16.0};
    EXPECT_NEAR(stats::geomean(xs), 4.0, 1e-12);
}

TEST(Stats, Percentile)
{
    std::vector<float> xs;
    for (int i = 0; i <= 100; ++i)
        xs.push_back(static_cast<float>(i));
    EXPECT_NEAR(stats::percentile(xs, 0), 0.0, 1e-9);
    EXPECT_NEAR(stats::percentile(xs, 50), 50.0, 1e-9);
    EXPECT_NEAR(stats::percentile(xs, 97), 97.0, 1e-9);
    EXPECT_NEAR(stats::percentile(xs, 100), 100.0, 1e-9);
}

TEST(Stats, PearsonPerfectAndAnti)
{
    const std::vector<float> a = {1, 2, 3, 4};
    const std::vector<float> b = {2, 4, 6, 8};
    const std::vector<float> c = {8, 6, 4, 2};
    EXPECT_NEAR(stats::pearson(a, b), 1.0, 1e-9);
    EXPECT_NEAR(stats::pearson(a, c), -1.0, 1e-9);
}

TEST(Stats, MatthewsPerfectAndRandom)
{
    const std::vector<int> truth = {1, 1, 0, 0, 1, 0};
    EXPECT_NEAR(stats::matthews(truth, truth), 1.0, 1e-9);
    const std::vector<int> inverted = {0, 0, 1, 1, 0, 1};
    EXPECT_NEAR(stats::matthews(inverted, truth), -1.0, 1e-9);
}

TEST(Stats, AccuracyAndF1)
{
    const std::vector<int> pred = {1, 0, 1, 1};
    const std::vector<int> truth = {1, 0, 0, 1};
    EXPECT_DOUBLE_EQ(stats::accuracyPct(pred, truth), 75.0);
    // tp=2 fp=1 fn=0: precision 2/3, recall 1 -> F1 = 0.8.
    EXPECT_NEAR(stats::f1Pct(pred, truth), 80.0, 1e-9);
}

TEST(Stats, OutlierRatioOfGaussian)
{
    Rng rng(23);
    std::vector<float> xs(100000);
    for (auto &v : xs)
        v = static_cast<float>(rng.gaussian());
    // 3-sigma rule: ~0.27 % of a Gaussian lies beyond 3 sigma.
    EXPECT_NEAR(stats::outlierRatio(xs, 3.0), 0.0027, 0.001);
}

TEST(Stats, Histogram)
{
    const std::vector<float> xs = {-1.0f, 0.1f, 0.5f, 0.9f, 2.0f};
    const auto h = stats::histogram(xs, 0.0, 1.0, 2);
    EXPECT_EQ(h.underflow, 1u);
    EXPECT_EQ(h.overflow, 1u);
    EXPECT_EQ(h.bins[0], 1u);
    EXPECT_EQ(h.bins[1], 2u);
    EXPECT_EQ(h.total(), 5u);
}

// --------------------------------------------------------------- bitops

TEST(Bitops, FieldAndSetField)
{
    EXPECT_EQ(bits::field(0b110100, 2, 3), 0b101u);
    EXPECT_EQ(bits::setField(0, 4, 4, 0xA), 0xA0u);
    EXPECT_EQ(bits::setField(0xFF, 0, 4, 0x3), 0xF3u);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(bits::signExtend(0x8, 4), -8);
    EXPECT_EQ(bits::signExtend(0xF, 4), -1);
    EXPECT_EQ(bits::signExtend(0x7, 4), 7);
    EXPECT_EQ(bits::signExtend(0x80, 8), -128);
    EXPECT_EQ(bits::signExtend(0x7F, 8), 127);
}

TEST(Bitops, Nibbles)
{
    EXPECT_EQ(bits::lowNibble(0xAB), 0xBu);
    EXPECT_EQ(bits::highNibble(0xAB), 0xAu);
    EXPECT_EQ(bits::packNibbles(0xA, 0xB), 0xAB);
}

TEST(Bitops, Popcount)
{
    EXPECT_EQ(bits::popcount(0), 0u);
    EXPECT_EQ(bits::popcount(0xFF), 8u);
    EXPECT_EQ(bits::popcount(0x8000000000000001ULL), 2u);
}

// ---------------------------------------------------------------- table

TEST(Table, RendersAlignedColumns)
{
    Table t({"Name", "Value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(12.3456, 1), "12.3%");
    EXPECT_EQ(Table::sci(12345.0), "1E+4");
    EXPECT_EQ(Table::sci(0.0), "0");
    EXPECT_EQ(Table::sci(0.007), "7E-3");
    EXPECT_EQ(Table::sci(9.6e-4), "1E-3"); // rounding renormalizes
    EXPECT_EQ(Table::sci(-9.6e-4), "-1E-3");
}

// ----------------------------------------------------------------- args

TEST(Args, ParsesFlagsAndDefaults)
{
    const char *argv[] = {"prog", "--model", "BERT-base", "--bits=4",
                          "positional"};
    Args args(5, const_cast<char **>(argv),
              {{"model", "GPT2-XL"}, {"bits", "8"}, {"verbose", "0"}});
    EXPECT_EQ(args.get("model"), "BERT-base");
    EXPECT_EQ(args.getInt("bits"), 4);
    EXPECT_FALSE(args.getBool("verbose"));
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "positional");
}

TEST(Args, BareBooleanFlag)
{
    const char *argv[] = {"prog", "--verbose"};
    Args args(2, const_cast<char **>(argv), {{"verbose", "0"}});
    EXPECT_TRUE(args.getBool("verbose"));
}

TEST(Args, EqualsSyntax)
{
    // Both spellings of every flag: --name value and --name=value.
    const char *argv[] = {"prog", "--model=GPT2-XL", "--bits", "8",
                          "--out=report.json", "--ratio=0.25"};
    Args args(6, const_cast<char **>(argv),
              {{"model", ""}, {"bits", "4"}, {"out", ""}, {"ratio", "1"}});
    EXPECT_EQ(args.get("model"), "GPT2-XL");
    EXPECT_EQ(args.getInt("bits"), 8);
    EXPECT_EQ(args.get("out"), "report.json");
    EXPECT_DOUBLE_EQ(args.getDouble("ratio"), 0.25);
}

TEST(Args, EqualsSyntaxKeepsDashesInValue)
{
    // An = value may itself contain '=' or start with '-'.
    const char *argv[] = {"prog", "--expr=a=b", "--delta=-3"};
    Args args(3, const_cast<char **>(argv), {{"expr", ""}, {"delta", "0"}});
    EXPECT_EQ(args.get("expr"), "a=b");
    EXPECT_EQ(args.getInt("delta"), -3);
}

TEST(ArgsDeathTest, UnknownFlagIsReportedWithKnownSet)
{
    // Unknown flags are a fatal user error, and the message names the
    // accepted flags (plus the implicit --threads) for a one-round fix.
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    const char *argv[] = {"prog", "--bogus=1"};
    EXPECT_EXIT(
        {
            Args args(2, const_cast<char **>(argv),
                      {{"model", ""}, {"bits", "4"}});
            (void)args;
        },
        ::testing::ExitedWithCode(1),
        "unknown flag --bogus.*known flags.*--bits.*--model.*--threads");
}

TEST(ArgsDeathTest, ServingFlagTyposNameTheSpeculationKnobs)
{
    // The serving example's flag set, including the prefill/speculation
    // knobs: a near-miss spelling must die and the message must list
    // the real flags so the user can self-correct.
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    const std::map<std::string, std::string> serving = {
        {"prefill-chunk", "32"}, {"speculate", "0"}, {"draft-len", "4"}};
    for (const char *bad :
         {"--prefill_chunk=8", "--speculative", "--draftlen=2"}) {
        const char *argv[] = {"prog", bad};
        EXPECT_EXIT(
            {
                Args args(2, const_cast<char **>(argv), serving);
                (void)args;
            },
            ::testing::ExitedWithCode(1),
            "unknown flag.*known flags.*--draft-len.*--prefill-chunk"
            ".*--speculate");
    }
}

TEST(Args, UsageTextListsEveryFlagWithDefaults)
{
    const char *argv[] = {"prog"};
    Args args(1, const_cast<char **>(argv),
              {{"model", "GPT2-XL"}, {"bits", "4"}, {"out", ""}});
    const std::string text = args.usageText("prog");
    // Header, then one sorted line per flag with its default, then the
    // fixed descriptions for the implicit --threads and --help.
    EXPECT_EQ(text.rfind("usage: prog [--flag value", 0), 0u) << text;
    EXPECT_NE(text.find("--bits"), std::string::npos);
    EXPECT_NE(text.find("(default \"GPT2-XL\")"), std::string::npos);
    EXPECT_NE(text.find("(default \"\")"), std::string::npos);
    EXPECT_NE(text.find("--threads"), std::string::npos);
    EXPECT_NE(text.find("parallel pool size"), std::string::npos);
    EXPECT_NE(text.find("--help"), std::string::npos);
    EXPECT_LT(text.find("--bits"), text.find("--model")); // sorted
    EXPECT_LT(text.find("--model"), text.find("--out"));
}

TEST(ArgsDeathTest, HelpPrintsUsageAndExitsZero)
{
    // --help is implicit on every program: it prints the generated
    // usage text to stdout and exits 0 before any flag is applied —
    // even when other (or unknown) flags surround it.
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    const char *argv[] = {"prog", "--bits=8", "--help", "--bogus=1"};
    EXPECT_EXIT(
        {
            Args args(4, const_cast<char **>(argv), {{"bits", "4"}});
            (void)args;
        },
        ::testing::ExitedWithCode(0), "");
}

} // namespace
} // namespace olive
