/**
 * @file
 * Tests of the bit-exact hardware decoders (Sec. 4.2): the Fig. 7
 * abfloat decoder, the Fig. 6b OVP decoder, and exhaustive cross-checks
 * against the algorithmic codecs in src/quant.
 */

#include <gtest/gtest.h>

#include "hw/decoder.hpp"
#include "quant/abfloat.hpp"
#include "quant/ovp.hpp"

namespace olive {
namespace {

TEST(HwAbfloatDecoder, PaperExample48)
{
    // Sec. 4.2: with bias 2, 0101_2 -> exponent 4, integer 3, value 48.
    const hw::AbfloatDecoder dec(4, 2);
    const ExpInt e = dec.decode(0b0101);
    EXPECT_EQ(e.exponent, 4);
    EXPECT_EQ(e.integer, 3);
    EXPECT_EQ(e.value(), 48);
}

TEST(HwAbfloatDecoder, ZeroCodes)
{
    const hw::AbfloatDecoder dec(4, 2);
    EXPECT_EQ(dec.decode(0b0000).value(), 0);
    EXPECT_EQ(dec.decode(0b1000).value(), 0); // -0 (the identifier)
}

class HwAbfloat4Exhaustive : public ::testing::TestWithParam<int>
{
};

TEST_P(HwAbfloat4Exhaustive, MatchesAlgorithmicCodec)
{
    const int bias = GetParam();
    const hw::AbfloatDecoder dec(4, bias);
    const AbFloat ref = AbFloat::e2m1(bias);
    for (u32 code = 0; code < 16; ++code) {
        EXPECT_EQ(dec.decode(code).value(), ref.decodeExpInt(code).value())
            << "code " << code << " bias " << bias;
    }
}

INSTANTIATE_TEST_SUITE_P(Biases, HwAbfloat4Exhaustive,
                         ::testing::Values(0, 1, 2, 3, 4));

class HwAbfloat8Exhaustive : public ::testing::TestWithParam<int>
{
};

TEST_P(HwAbfloat8Exhaustive, MatchesAlgorithmicCodec)
{
    const int bias = GetParam();
    const hw::AbfloatDecoder dec(8, bias);
    const AbFloat ref = AbFloat::e4m3(bias);
    for (u32 code = 0; code < 256; ++code) {
        EXPECT_EQ(dec.decode(code).value(), ref.decodeExpInt(code).value())
            << "code " << code << " bias " << bias;
    }
}

INSTANTIATE_TEST_SUITE_P(Biases, HwAbfloat8Exhaustive,
                         ::testing::Values(0, 2, 4, 6));

TEST(HwOvpDecoder, IdentifierInEitherSlotZeroesTheVictim)
{
    const hw::OvpDecoder dec(NormalType::Int4);
    // Byte layout: low nibble = first value.
    {
        // first = identifier, second = abfloat code for 48 (0101).
        const auto d = dec.decodeByte(0x58);
        EXPECT_EQ(d.first.value(), 0);
        EXPECT_TRUE(d.secondIsOutlier);
        EXPECT_EQ(d.second.value(), 48);
    }
    {
        // first = abfloat 0101, second = identifier.
        const auto d = dec.decodeByte(0x85);
        EXPECT_TRUE(d.firstIsOutlier);
        EXPECT_EQ(d.first.value(), 48);
        EXPECT_EQ(d.second.value(), 0);
    }
}

TEST(HwOvpDecoder, NormalPairDecodesAsInt4)
{
    const hw::OvpDecoder dec(NormalType::Int4);
    // 0x73: low nibble 3 -> 3, high nibble 7 -> 7.
    const auto d = dec.decodeByte(0x73);
    EXPECT_FALSE(d.firstIsOutlier);
    EXPECT_FALSE(d.secondIsOutlier);
    EXPECT_EQ(d.first.value(), 3);
    EXPECT_EQ(d.second.value(), 7);
    // Negative: 0xF = -1.
    const auto n = dec.decodeByte(0xF9);
    EXPECT_EQ(n.first.value(), -7);
    EXPECT_EQ(n.second.value(), -1);
}

TEST(HwOvpDecoder, IntTypesGetZeroExponent)
{
    // Sec. 4.2: the decoder appends a 0000 exponent for int4.
    const hw::OvpDecoder dec(NormalType::Int4);
    const auto d = dec.decodeByte(0x73);
    EXPECT_EQ(d.first.exponent, 0);
    EXPECT_EQ(d.second.exponent, 0);
}

class HwOvpAgainstCodec : public ::testing::TestWithParam<NormalType>
{
};

TEST_P(HwOvpAgainstCodec, DecodeMatchesQuantCodecOnEncodedStream)
{
    // End-to-end: software encoder -> hardware decoder must reproduce
    // the software decoder's grid values exactly.
    const NormalType type = GetParam();
    const float scale = 0.5f;
    const OvpCodec codec(type, scale, scale * maxNormalMagnitude(type));
    const hw::OvpDecoder dec(type);

    std::vector<float> xs;
    for (int i = -40; i <= 40; ++i) {
        xs.push_back(static_cast<float>(i) * 0.7f);
        xs.push_back(static_cast<float>(-i) * 13.7f); // outliers mixed in
    }
    const auto bytes = codec.encode(xs);
    const auto ref = codec.decode(bytes, xs.size());

    const size_t bpp = codec.bytesPerPair();
    for (size_t p = 0; p < xs.size() / 2; ++p) {
        hw::DecodedPair d;
        if (bpp == 1)
            d = dec.decodeByte(bytes[p]);
        else
            d = dec.decodeBytes(bytes[2 * p], bytes[2 * p + 1]);
        EXPECT_FLOAT_EQ(static_cast<float>(d.first.value()) * scale,
                        ref[2 * p])
            << toString(type) << " pair " << p;
        EXPECT_FLOAT_EQ(static_cast<float>(d.second.value()) * scale,
                        ref[2 * p + 1])
            << toString(type) << " pair " << p;
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, HwOvpAgainstCodec,
                         ::testing::Values(NormalType::Int4,
                                           NormalType::Flint4,
                                           NormalType::Int8),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(HwOvpDecoder, Flint4PairUsesFlintDecoder)
{
    const hw::OvpDecoder dec(NormalType::Flint4);
    // flint4 code 0x7 = 16 = 1 << 4; code 0x5 = 6 = 3 << 1.
    const auto d = dec.decodeByte(0x57);
    EXPECT_EQ(d.first.value(), 16);
    EXPECT_EQ(d.first.exponent, 4);
    EXPECT_EQ(d.second.value(), 6);
    EXPECT_EQ(d.second.exponent, 1);
}

TEST(HwOvpDecoder, BothIdentifiersDecodeToZeros)
{
    // The illegal pattern must degrade gracefully (mux network yields
    // zeros), never crash.
    const hw::OvpDecoder dec(NormalType::Int4);
    const auto d = dec.decodeByte(0x88);
    EXPECT_EQ(d.first.value(), 0);
    EXPECT_EQ(d.second.value(), 0);
}

} // namespace
} // namespace olive
