/**
 * @file
 * Stream-level OvpCodec contract tests: bytesPerPair across all three
 * normal types, odd-length zero padding in encode/decode, and an
 * exhaustive round-trip sweep of every representable 4-bit value pair.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "quant/ovp.hpp"

namespace olive {
namespace {

/** A codec whose threshold sits just above the normal range. */
OvpCodec
makeCodec(NormalType t)
{
    return OvpCodec(t, 1.0f, maxNormalMagnitude(t) + 0.5);
}

TEST(OvpStream, BytesPerPairPerNormalType)
{
    EXPECT_EQ(makeCodec(NormalType::Int4).bytesPerPair(), 1u);
    EXPECT_EQ(makeCodec(NormalType::Flint4).bytesPerPair(), 1u);
    EXPECT_EQ(makeCodec(NormalType::Int8).bytesPerPair(), 2u);
}

TEST(OvpStream, EncodedSizeIsCeilHalfTimesBytesPerPair)
{
    for (NormalType t :
         {NormalType::Int4, NormalType::Flint4, NormalType::Int8}) {
        const OvpCodec codec = makeCodec(t);
        for (size_t n : {0u, 1u, 2u, 3u, 7u, 8u, 63u}) {
            const std::vector<float> xs(n, 1.0f);
            const std::vector<u8> bytes = codec.encode(xs);
            const size_t pairs = (n + 1) / 2;
            EXPECT_EQ(bytes.size(), pairs * codec.bytesPerPair())
                << toString(t) << " n=" << n;
        }
    }
}

TEST(OvpStream, OddLengthRoundTripAllTypes)
{
    for (NormalType t :
         {NormalType::Int4, NormalType::Flint4, NormalType::Int8}) {
        const OvpCodec codec = makeCodec(t);
        const std::vector<float> xs = {3.0f, -1.0f, 2.0f, 4.0f, -2.0f};
        OvpStats stats;
        const std::vector<u8> bytes = codec.encode(xs, &stats);
        EXPECT_EQ(stats.pairs, 3u) << toString(t);

        const std::vector<float> ys = codec.decode(bytes, xs.size());
        ASSERT_EQ(ys.size(), xs.size()) << toString(t);
        for (size_t i = 0; i < xs.size(); ++i)
            EXPECT_FLOAT_EQ(ys[i], xs[i]) << toString(t) << " i=" << i;
    }
}

TEST(OvpStream, OddLengthPadIsZeroNotGarbage)
{
    // The pad element forms a pair with the last value; asking decode for
    // one extra element must surface the zero pad, not stale memory.
    for (NormalType t :
         {NormalType::Int4, NormalType::Flint4, NormalType::Int8}) {
        const OvpCodec codec = makeCodec(t);
        const std::vector<float> xs = {5.0f, -3.0f, 2.0f};
        const std::vector<u8> bytes = codec.encode(xs);
        const std::vector<float> ys = codec.decode(bytes, xs.size() + 1);
        ASSERT_EQ(ys.size(), 4u) << toString(t);
        EXPECT_FLOAT_EQ(ys[3], 0.0f) << toString(t);
    }
}

TEST(OvpStream, OddLengthTrailingOutlierPairsWithPad)
{
    // A trailing outlier pads with zero, forming an outlier-normal pair:
    // it must survive the round trip (coarsely) instead of being pruned.
    for (NormalType t :
         {NormalType::Int4, NormalType::Flint4, NormalType::Int8}) {
        const OvpCodec codec = makeCodec(t);
        const float outlier = 4.0f * maxNormalMagnitude(t);
        const std::vector<float> xs = {1.0f, -2.0f, outlier};
        OvpStats stats;
        const std::vector<u8> bytes = codec.encode(xs, &stats);
        EXPECT_EQ(stats.outlierPairs, 1u) << toString(t);
        EXPECT_EQ(stats.prunedOutliers, 0u) << toString(t);

        const std::vector<float> ys = codec.decode(bytes, xs.size());
        ASSERT_EQ(ys.size(), 3u) << toString(t);
        EXPECT_FLOAT_EQ(ys[0], 1.0f) << toString(t);
        EXPECT_FLOAT_EQ(ys[1], -2.0f) << toString(t);
        EXPECT_NEAR(ys[2], outlier, outlier * 0.5) << toString(t);
    }
}

TEST(PairCensusOdd, TrailingElementZeroPadsLikeTheCodec)
{
    // 63 bulk values plus an outlier in the last (lone) slot: the lone
    // value must pair with a zero pad — exactly as OvpCodec::encode
    // pads — and be counted, not dropped.
    std::vector<float> xs;
    for (int i = 0; i < 62; ++i)
        xs.push_back(0.1f * static_cast<float>((i % 7) - 3));
    xs.push_back(50.0f);
    ASSERT_EQ(xs.size() % 2, 1u);

    const PairCensus census = pairCensus(xs, 3.0);
    EXPECT_EQ(census.total(), (xs.size() + 1) / 2);
    // The pad is a normal value, so the final pair is outlier-normal.
    EXPECT_EQ(census.outlierNormal, 1u);
    EXPECT_EQ(census.outlierOutlier, 0u);
}

TEST(PairCensusOdd, PadIsNeverAnOutlier)
{
    // A constant odd-length tensor has no outliers; the zero pad must
    // not register as one just because the mean (100) is far from the
    // pad value — the codec's pad can never exceed its positive
    // threshold either.
    const std::vector<float> xs(63, 100.0f);
    const PairCensus census = pairCensus(xs, 3.0);
    EXPECT_EQ(census.total(), 32u);
    EXPECT_EQ(census.outlierNormal, 0u);
    EXPECT_EQ(census.outlierOutlier, 0u);
    EXPECT_EQ(census.normalNormal, 32u);
}

TEST(PairCensusOdd, TotalsMatchCodecPairCounts)
{
    // Census pair totals and codec pair totals must agree for the same
    // tensor at every parity.
    for (size_t n : {1u, 2u, 63u, 64u, 4097u}) {
        std::vector<float> xs(n);
        for (size_t i = 0; i < n; ++i)
            xs[i] = 0.25f * static_cast<float>((i % 11)) - 1.0f;
        xs[n / 2] = 40.0f;

        const PairCensus census = pairCensus(xs, 3.0);
        const OvpCodec codec = makeCodec(NormalType::Int4);
        OvpStats stats;
        codec.encode(xs, &stats);
        EXPECT_EQ(census.total(), stats.pairs) << n;
        EXPECT_EQ(census.total(), (n + 1) / 2) << n;
    }
}

TEST(OvpStream, StaticBytesPerPairMatchesInstanceRule)
{
    for (NormalType t :
         {NormalType::Int4, NormalType::Flint4, NormalType::Int8}) {
        EXPECT_EQ(OvpCodec::bytesPerPair(t), makeCodec(t).bytesPerPair())
            << toString(t);
    }
}

TEST(OvpStream, EmptyInputEncodesToEmptyStream)
{
    const OvpCodec codec = makeCodec(NormalType::Int4);
    EXPECT_TRUE(codec.encode({}).empty());
    EXPECT_TRUE(codec.decode({}, 0).empty());
}

TEST(OvpStream, ExhaustiveFourBitPairSweep)
{
    // Every representable (v1, v2) pair of each 4-bit normal type must
    // round-trip exactly, both through encodePair/decodePair and through
    // the packed byte stream (low nibble = first element).
    for (NormalType t : {NormalType::Int4, NormalType::Flint4}) {
        const OvpCodec codec = makeCodec(t);
        const std::vector<int> values = valueTable(t);
        for (int v1 : values) {
            for (int v2 : values) {
                const float f1 = static_cast<float>(v1);
                const float f2 = static_cast<float>(v2);

                u32 c1, c2;
                codec.encodePair(f1, f2, c1, c2);
                EXPECT_NE(c1, outlierIdentifier(t));
                EXPECT_NE(c2, outlierIdentifier(t));

                float d1, d2;
                codec.decodePair(c1, c2, d1, d2);
                EXPECT_FLOAT_EQ(d1, f1)
                    << toString(t) << " pair <" << v1 << "," << v2 << ">";
                EXPECT_FLOAT_EQ(d2, f2)
                    << toString(t) << " pair <" << v1 << "," << v2 << ">";

                const std::vector<float> xs = {f1, f2};
                const std::vector<u8> bytes = codec.encode(xs);
                ASSERT_EQ(bytes.size(), 1u);
                EXPECT_EQ(bytes[0] & 0xFu, c1);
                EXPECT_EQ((bytes[0] >> 4) & 0xFu, c2);

                const std::vector<float> ys = codec.decode(bytes, 2);
                EXPECT_FLOAT_EQ(ys[0], f1);
                EXPECT_FLOAT_EQ(ys[1], f2);
            }
        }
    }
}

TEST(OvpStream, ExhaustiveInt8GridSweepAgainstSelf)
{
    // Int8 pairs occupy two bytes; sweep the full narrowed grid paired
    // with a fixed partner to cover every code in both slots.
    const OvpCodec codec = makeCodec(NormalType::Int8);
    for (int v = -127; v <= 127; ++v) {
        const float f = static_cast<float>(v);
        const std::vector<float> xs = {f, static_cast<float>(-v)};
        const std::vector<u8> bytes = codec.encode(xs);
        ASSERT_EQ(bytes.size(), 2u);
        const std::vector<float> ys = codec.decode(bytes, 2);
        EXPECT_FLOAT_EQ(ys[0], f) << "v=" << v;
        EXPECT_FLOAT_EQ(ys[1], -f) << "v=" << v;
    }
}

} // namespace
} // namespace olive
