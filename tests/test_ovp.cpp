/**
 * @file
 * Tests of the outlier-victim pair encoding (Sec. 3, Algorithm 1):
 * branch behaviour, identifier placement, packing alignment, round
 * trips, and the pair census machinery behind Table 2.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/ovp.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

OvpCodec
makeInt4Codec()
{
    // scale 1.0: grid == real values; threshold just above int4's 7.
    return OvpCodec(NormalType::Int4, 1.0f, 7.0);
}

TEST(Ovp, DefaultBiases)
{
    EXPECT_EQ(defaultAbfloatBias(NormalType::Int4), 2);
    EXPECT_EQ(defaultAbfloatBias(NormalType::Flint4), 3);
    EXPECT_EQ(defaultAbfloatBias(NormalType::Int8), 4);
}

TEST(Ovp, NormalNormalPairKeepsBothValues)
{
    const OvpCodec codec = makeInt4Codec();
    u32 c1, c2;
    codec.encodePair(3.0f, -5.0f, c1, c2);
    float v1, v2;
    codec.decodePair(c1, c2, v1, v2);
    EXPECT_FLOAT_EQ(v1, 3.0f);
    EXPECT_FLOAT_EQ(v2, -5.0f);
}

TEST(Ovp, LeftOutlierGetsRightVictim)
{
    // Algorithm 1 branch 1: val1 beyond the threshold -> out2 is the
    // identifier (the victim slot), out1 the abfloat outlier.
    const OvpCodec codec = makeInt4Codec();
    u32 c1, c2;
    codec.encodePair(30.0f, 2.0f, c1, c2);
    EXPECT_EQ(c2, outlierIdentifier(NormalType::Int4));
    EXPECT_NE(c1, outlierIdentifier(NormalType::Int4));
    float v1, v2;
    codec.decodePair(c1, c2, v1, v2);
    EXPECT_FLOAT_EQ(v2, 0.0f) << "victim must decode to zero";
    EXPECT_NEAR(v1, 30.0f, 4.0f) << "outlier preserved coarsely";
}

TEST(Ovp, RightOutlierGetsLeftVictim)
{
    const OvpCodec codec = makeInt4Codec();
    u32 c1, c2;
    codec.encodePair(2.0f, -98.0f, c1, c2); // the Fig. 1b example
    EXPECT_EQ(c1, outlierIdentifier(NormalType::Int4));
    float v1, v2;
    codec.decodePair(c1, c2, v1, v2);
    EXPECT_FLOAT_EQ(v1, 0.0f);
    EXPECT_NEAR(v2, -96.0f, 1e-4) << "-98 quantizes to -96 (E2M1 bias 2)";
}

TEST(Ovp, OutlierOutlierPrunesTheSmaller)
{
    const OvpCodec codec = makeInt4Codec();
    u32 c1, c2;
    codec.encodePair(40.0f, -90.0f, c1, c2);
    // |v2| > |v1|: v1 becomes the victim even though it is an outlier.
    EXPECT_EQ(c1, outlierIdentifier(NormalType::Int4));
    float v1, v2;
    codec.decodePair(c1, c2, v1, v2);
    EXPECT_FLOAT_EQ(v1, 0.0f);
    EXPECT_NEAR(v2, -96.0f, 1e-4);
}

TEST(Ovp, TieBreaksToLeftOutlier)
{
    const OvpCodec codec = makeInt4Codec();
    u32 c1, c2;
    codec.encodePair(50.0f, -50.0f, c1, c2);
    EXPECT_EQ(c2, outlierIdentifier(NormalType::Int4));
}

TEST(Ovp, NegativeLeftOutlier)
{
    const OvpCodec codec = makeInt4Codec();
    u32 c1, c2;
    codec.encodePair(-60.0f, 1.0f, c1, c2);
    EXPECT_EQ(c2, outlierIdentifier(NormalType::Int4));
    float v1, v2;
    codec.decodePair(c1, c2, v1, v2);
    EXPECT_LT(v1, -40.0f);
    EXPECT_FLOAT_EQ(v2, 0.0f);
}

class OvpTypeTest : public ::testing::TestWithParam<NormalType>
{
};

TEST_P(OvpTypeTest, PackedStreamIsByteAligned)
{
    const NormalType type = GetParam();
    const OvpCodec codec(type, 0.5f,
                         0.5 * maxNormalMagnitude(type));
    Rng rng(7);
    std::vector<float> xs(256);
    for (auto &v : xs)
        v = static_cast<float>(rng.gaussian(0.0, 2.0));
    const auto bytes = codec.encode(xs);
    // Memory alignment: exactly count/2 pairs, bytesPerPair each, no
    // side tables and no index stream.
    EXPECT_EQ(bytes.size(), xs.size() / 2 * codec.bytesPerPair());
}

TEST_P(OvpTypeTest, RoundTripPreservesNormalsExactlyOnGrid)
{
    const NormalType type = GetParam();
    const float scale = 0.25f;
    const OvpCodec codec(type, scale,
                         scale * maxNormalMagnitude(type));
    // Grid-aligned normal values survive exactly.
    std::vector<float> xs;
    for (int v : valueTable(type)) {
        xs.push_back(static_cast<float>(v) * scale);
        xs.push_back(0.0f);
    }
    const auto rt = codec.fakeQuant(xs);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_FLOAT_EQ(rt[i], xs[i]) << toString(type) << " i=" << i;
}

TEST_P(OvpTypeTest, DecodeInvertsEncodeOnRandomData)
{
    const NormalType type = GetParam();
    const float scale = 0.1f;
    const OvpCodec codec(type, scale,
                         scale * maxNormalMagnitude(type));
    Rng rng(13);
    std::vector<float> xs(1000);
    for (auto &v : xs) {
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 60.0) * 0.3);
    }
    // fakeQuant twice must be idempotent (quantized values are fixed
    // points of the codec).
    const auto q1 = codec.fakeQuant(xs);
    const auto q2 = codec.fakeQuant(q1);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_NEAR(q1[i], q2[i], 1e-4) << toString(type) << " i=" << i;
}

TEST_P(OvpTypeTest, OddLengthHandled)
{
    const NormalType type = GetParam();
    const OvpCodec codec(type, 1.0f, maxNormalMagnitude(type));
    std::vector<float> xs = {1.0f, 2.0f, 3.0f};
    const auto rt = codec.fakeQuant(xs);
    ASSERT_EQ(rt.size(), 3u);
    EXPECT_FLOAT_EQ(rt[0], 1.0f);
    EXPECT_FLOAT_EQ(rt[2], 3.0f);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, OvpTypeTest,
                         ::testing::Values(NormalType::Int4,
                                           NormalType::Flint4,
                                           NormalType::Int8),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(Ovp, StatsCountOutlierPairs)
{
    const OvpCodec codec = makeInt4Codec();
    const std::vector<float> xs = {1.0f, 2.0f,  30.0f, 1.0f,
                                   1.0f, -40.0f, 50.0f, 60.0f};
    OvpStats stats;
    codec.encode(xs, &stats);
    EXPECT_EQ(stats.pairs, 4u);
    EXPECT_EQ(stats.outlierPairs, 3u);
    EXPECT_EQ(stats.prunedOutliers, 1u); // the (50, 60) pair
}

TEST(Ovp, PairCensusMatchesConstructedData)
{
    // 100 pairs: 90 normal-normal, 8 outlier-normal, 2 outlier-outlier.
    Rng rng(3);
    std::vector<float> xs;
    auto normal = [&] { return static_cast<float>(rng.gaussian() * 0.5); };
    for (int i = 0; i < 90; ++i) {
        xs.push_back(normal());
        xs.push_back(normal());
    }
    for (int i = 0; i < 8; ++i) {
        xs.push_back(50.0f);
        xs.push_back(normal());
    }
    for (int i = 0; i < 2; ++i) {
        xs.push_back(50.0f);
        xs.push_back(-60.0f);
    }
    const PairCensus c = pairCensus(xs, 3.0);
    EXPECT_EQ(c.total(), 100u);
    EXPECT_EQ(c.outlierOutlier, 2u);
    EXPECT_EQ(c.outlierNormal, 8u);
    EXPECT_EQ(c.normalNormal, 90u);
    EXPECT_NEAR(c.outlierNormalPct(), 8.0, 1e-9);
}

TEST(Ovp, FakeQuantMseBeatsClippingOnOutlierData)
{
    // The whole point of OVP: on outlier-bearing tensors its MSE beats
    // the same normal type without the outlier path (i.e. clipping).
    Rng rng(21);
    std::vector<float> xs(4096);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 80.0));

    const double sigma = stats::stddev(xs);
    const float scale = static_cast<float>(3.0 * sigma / 7.0);
    const OvpCodec ovp(NormalType::Int4, scale, 3.0 * sigma);
    const auto with_outliers = ovp.fakeQuant(xs);

    // Clipping baseline: same grid, all outliers saturate to 7*scale.
    const NormalCodec plain(NormalType::Int4);
    std::vector<float> clipped(xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        clipped[i] = plain.decode(plain.encode(xs[i], scale), scale);

    EXPECT_LT(stats::mse(xs, with_outliers) * 3.0, stats::mse(xs, clipped))
        << "OVP should reduce MSE by far more than 3x on this tensor";
}

TEST(Ovp, VictimPruningCostIsBounded)
{
    // Victims are values adjacent to outliers; with ~1% outliers the
    // fraction of zeroed normal values must stay ~1%.
    Rng rng(5);
    std::vector<float> xs(20000);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 50.0));
    const double sigma = stats::stddev(xs);
    const OvpCodec codec(NormalType::Int4,
                         static_cast<float>(3.0 * sigma / 7.0), 3.0 * sigma);
    OvpStats st;
    codec.encode(xs, &st);
    const double victim_frac =
        static_cast<double>(st.outlierPairs) / static_cast<double>(xs.size());
    EXPECT_LT(victim_frac, 0.03);
}

TEST(Ovp, EightBitOutlierUsesE4M3)
{
    const OvpCodec codec(NormalType::Int8, 1.0f, 127.0);
    EXPECT_EQ(codec.outlierType().expBits(), 4);
    EXPECT_EQ(codec.outlierType().mantBits(), 3);
    EXPECT_EQ(codec.outlierType().bias(), 4);
    EXPECT_EQ(codec.bytesPerPair(), 2u);

    u32 c1, c2;
    codec.encodePair(500.0f, 3.0f, c1, c2);
    EXPECT_EQ(c2, 0x80u);
    float v1, v2;
    codec.decodePair(c1, c2, v1, v2);
    EXPECT_NEAR(v1, 500.0f, 32.0f);
    EXPECT_FLOAT_EQ(v2, 0.0f);
}

TEST(Ovp, OutlierClipAt2Pow15)
{
    // Sec. 4.5: outlier grid magnitudes clip at 2^15 to protect the
    // int32 accumulator.
    const OvpCodec codec(NormalType::Int8, 1.0f, 127.0);
    u32 c1, c2;
    codec.encodePair(1e9f, 0.0f, c1, c2);
    float v1, v2;
    codec.decodePair(c1, c2, v1, v2);
    EXPECT_LE(std::fabs(v1), 32768.0f);
}

} // namespace
} // namespace olive
