/**
 * @file
 * Property tests for serve::BlockPool, the allocator behind the paged
 * KV cache: refcounts hit zero exactly at release, the free list never
 * double-frees, byte accounting is blocks-in-use x block bytes at every
 * step with a monotone peak, copy-on-write is the only payload copier,
 * and a seeded randomized churn loop checks the whole invariant set
 * (via the checkInvariants() hook) after every single mutation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/block_pool.hpp"
#include "serve/kv_cache.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

TEST(BlockPool, AllocateRetainsReleaseLifecycle)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, 8, 4);
    EXPECT_EQ(pool.blocksInUse(), 0u);
    EXPECT_EQ(pool.bytesInUse(), 0u);

    const u32 a = pool.allocate();
    EXPECT_EQ(pool.refcount(a), 1);
    EXPECT_EQ(pool.blocksInUse(), 1u);
    EXPECT_EQ(pool.bytesInUse(), pool.blockBytes());

    pool.retain(a);
    EXPECT_EQ(pool.refcount(a), 2);
    EXPECT_EQ(pool.blocksInUse(), 1u); // shared, still one block
    EXPECT_EQ(pool.sharedSavedBytes(), pool.blockBytes());

    pool.release(a);
    EXPECT_EQ(pool.refcount(a), 1);
    EXPECT_EQ(pool.blocksInUse(), 1u);
    EXPECT_EQ(pool.sharedSavedBytes(), 0u);

    pool.release(a);
    EXPECT_EQ(pool.refcount(a), 0); // zero exactly at the last release
    EXPECT_EQ(pool.blocksInUse(), 0u);
    EXPECT_EQ(pool.freeBlocks(), 1u);
    pool.checkInvariants();
}

TEST(BlockPool, FreeListRecyclesWithoutGrowing)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, 8, 2);
    const u32 a = pool.allocate();
    const u32 b = pool.allocate();
    pool.release(a);
    // The free list must hand back the released id before growing.
    const u32 c = pool.allocate();
    EXPECT_EQ(c, a);
    EXPECT_EQ(pool.blocksInUse(), 2u);
    pool.release(b);
    pool.release(c);
    EXPECT_EQ(pool.freeBlocks(), 2u);
    pool.checkInvariants();
}

TEST(BlockPool, BlockBytesChargesPayloadAndMeta)
{
    // A block holds blockRows (K row + V row) slots; each row carries
    // the codec's payload plus its per-row meta — exactly the unit the
    // engine's pool-level accounting multiplies by.
    const size_t d = 24, rows = 4;
    const serve::OvpKvScheme olive4(4);
    serve::BlockPool pool(olive4, d, rows);
    EXPECT_EQ(pool.rowBytes(), olive4.rowBytes(d));
    EXPECT_EQ(pool.blockBytes(),
              rows * 2 * (olive4.rowBytes(d) + olive4.metaBytesPerRow()));
}

TEST(BlockPool, CapacityCapIsEnforced)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, 8, 2, /*max_blocks=*/2);
    const u32 a = pool.allocate();
    (void)pool.allocate();
    EXPECT_DEATH((void)pool.allocate(), "capacity exhausted");
    pool.release(a);
    // Freed capacity is allocatable again.
    EXPECT_EQ(pool.allocate(), a);
    pool.checkInvariants();
}

TEST(BlockPool, DoubleFreeAndDeadAccessPanic)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, 8, 2);
    const u32 a = pool.allocate();
    pool.release(a);
    EXPECT_DEATH(pool.release(a), "not live");
    EXPECT_DEATH(pool.retain(a), "not live");
    EXPECT_DEATH((void)pool.kRow(a, 0), "not live");
}

TEST(BlockPool, CopyRowsIsTheOnlyPayloadCopier)
{
    const size_t d = 8, rows = 4;
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, d, rows);
    const u32 src = pool.allocate();
    const u32 dst = pool.allocate();
    EXPECT_EQ(pool.payloadCopyRows(), 0u); // allocation copies nothing

    // Fill three source slots with distinct bytes, copy two.
    for (size_t s = 0; s < 3; ++s) {
        std::fill(pool.kRow(src, s), pool.kRow(src, s) + pool.rowBytes(),
                  static_cast<u8>(0x10 + s));
        std::fill(pool.vRow(src, s), pool.vRow(src, s) + pool.rowBytes(),
                  static_cast<u8>(0x20 + s));
        pool.kMeta(src, s).scale = static_cast<float>(s + 1);
        pool.vMeta(src, s).scale = static_cast<float>(s + 101);
    }
    pool.copyRows(src, dst, 2);
    EXPECT_EQ(pool.payloadCopyRows(), 2u);
    for (size_t s = 0; s < 2; ++s) {
        EXPECT_EQ(pool.kRow(dst, s)[0], static_cast<u8>(0x10 + s));
        EXPECT_EQ(pool.vRow(dst, s)[0], static_cast<u8>(0x20 + s));
        EXPECT_EQ(pool.kMeta(dst, s).scale, static_cast<float>(s + 1));
        EXPECT_EQ(pool.vMeta(dst, s).scale, static_cast<float>(s + 101));
    }
    pool.release(src);
    pool.release(dst);
    pool.checkInvariants();
}

TEST(BlockPool, RandomizedChurnKeepsEveryInvariant)
{
    // Seeded property loop: random allocate/retain/release churn with a
    // shadow refcount model.  After every mutation: the pool-recomputed
    // invariants hold (checkInvariants), bytesInUse equals blocks-in-use
    // x block bytes, the peak is monotone, and each block's refcount
    // matches the shadow (zero exactly when the shadow released last).
    const serve::Fp32KvScheme fp32;
    for (u64 seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
        Rng rng(seed);
        const size_t block_rows = 1 + rng.uniformInt(4);
        const size_t cap = rng.uniformInt(2) ? 0 : 12;
        serve::BlockPool pool(fp32, 8, block_rows, cap);
        std::vector<u32> live;          // one entry per outstanding ref
        std::vector<int> shadow;        // refcount model, by block id
        size_t last_peak = 0;
        for (int it = 0; it < 400; ++it) {
            const double u = rng.uniform();
            if (u < 0.45 && (cap == 0 || pool.blocksInUse() +
                                                 pool.freeBlocks() <
                                             12 ||
                             pool.freeBlocks() > 0)) {
                const u32 id = pool.allocate();
                if (id >= shadow.size())
                    shadow.resize(id + 1, 0);
                EXPECT_EQ(shadow[id], 0);
                shadow[id] = 1;
                live.push_back(id);
            } else if (u < 0.65 && !live.empty()) {
                const u32 id = live[rng.uniformInt(live.size())];
                pool.retain(id);
                ++shadow[id];
                live.push_back(id);
            } else if (!live.empty()) {
                const size_t pick = rng.uniformInt(live.size());
                const u32 id = live[pick];
                live.erase(live.begin() +
                           static_cast<std::ptrdiff_t>(pick));
                pool.release(id);
                --shadow[id];
                EXPECT_EQ(pool.refcount(id), shadow[id]);
                // Zero exactly at the release that drops the last ref.
                EXPECT_EQ(shadow[id] == 0, pool.refcount(id) == 0);
            }
            pool.checkInvariants();
            size_t in_use = 0;
            for (int rc : shadow)
                in_use += rc > 0 ? 1u : 0u;
            EXPECT_EQ(pool.blocksInUse(), in_use);
            EXPECT_EQ(pool.bytesInUse(), in_use * pool.blockBytes());
            EXPECT_GE(pool.peakBytes(), last_peak); // monotone
            EXPECT_GE(pool.peakBytes(), pool.bytesInUse());
            last_peak = pool.peakBytes();
        }
        EXPECT_EQ(pool.payloadCopyRows(), 0u); // churn never copies
    }
}

} // namespace
} // namespace olive
