/**
 * @file
 * Scripted-client tests of the serve::Service front end: protocol
 * round trips, per-request event ordering, bit-identity of streamed
 * tokens against driving the engine directly (speculation included),
 * queued backpressure on a tiny pool, mid-stream cancellation draining
 * every block, deadline expiry for queued and active requests, output
 * policies, stats, and error handling.  The ctest serve.service legs
 * pin this binary at OLIVE_THREADS=1 and =8.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

eval::LmModel
tinyLm(u64 seed = 1234)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 24;
    config.evalHeads = 4;
    config.evalDFf = 48;
    config.evalVocab = 64;
    eval::LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, seed);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng rng(seed ^ 0xabcdULL);
    for (auto &v : lm.embedding.data())
        v = static_cast<float>(rng.gaussian());
    return lm;
}

std::vector<std::vector<int>>
randomPrompts(size_t n, size_t max_len, size_t vocab, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<int>> prompts(n);
    for (auto &p : prompts) {
        p.resize(1 + rng.uniformInt(max_len));
        for (auto &t : p)
            t = static_cast<int>(rng.uniformInt(vocab));
    }
    return prompts;
}

Json
tokensJson(const std::vector<int> &toks)
{
    Json arr = Json::array();
    for (int t : toks)
        arr.push(t);
    return arr;
}

Json
submitOp(const std::vector<int> &prompt, size_t max_new)
{
    return Json::object({{"op", "submit"},
                         {"prompt", tokensJson(prompt)},
                         {"max_new", max_new}});
}

/**
 * Run a whole session: feed @p ops to a fresh Service over @p engine,
 * return every event line parsed.  Every line must be valid JSON —
 * the protocol never emits anything else.
 */
std::vector<Json>
runSession(serve::ServeEngine &engine, serve::ServiceConfig cfg,
           const std::vector<Json> &ops)
{
    serve::Service service(engine, std::move(cfg));
    std::stringstream in;
    for (const Json &op : ops)
        in << op.dump() << "\n";
    std::stringstream out;
    service.run(in, out);
    std::vector<Json> events;
    std::string line;
    while (std::getline(out, line)) {
        std::string err;
        const auto ev = Json::parse(line, &err);
        EXPECT_TRUE(ev.has_value()) << line << " -> " << err;
        if (ev)
            events.push_back(*ev);
    }
    return events;
}

/** Per-request token streams reassembled from the token events. */
std::map<u64, std::vector<int>>
tokenStreams(const std::vector<Json> &events)
{
    std::map<u64, std::vector<int>> streams;
    for (const Json &ev : events) {
        if (ev.find("event")->asString() != "token")
            continue;
        const u64 id = static_cast<u64>(ev.find("id")->asInt());
        EXPECT_EQ(static_cast<size_t>(ev.find("index")->asInt()),
                  streams[id].size()); // contiguous, in order
        streams[id].push_back(static_cast<int>(ev.find("token")->asInt()));
    }
    return streams;
}

const Json *
doneEvent(const std::vector<Json> &events, u64 id)
{
    for (const Json &ev : events) {
        if (ev.find("event")->asString() == "done" &&
            static_cast<u64>(ev.find("id")->asInt()) == id)
            return &ev;
    }
    return nullptr;
}

size_t
countEvents(const std::vector<Json> &events, const std::string &kind)
{
    size_t n = 0;
    for (const Json &ev : events)
        n += ev.find("event")->asString() == kind ? 1 : 0;
    return n;
}

/**
 * The protocol's per-request ordering contract: accepted, at most one
 * queued, admitted, tokens with contiguous ascending indices, exactly
 * one done (whose tokens array equals the streamed tokens), and no
 * event after done.
 */
void
validateOrdering(const std::vector<Json> &events)
{
    enum Phase { kNone, kAccepted, kQueued, kAdmitted, kDone };
    struct St
    {
        Phase phase = kNone;
        std::vector<int> stream;
    };
    std::map<u64, St> st;
    for (const Json &ev : events) {
        const std::string &kind = ev.find("event")->asString();
        if (kind == "cancel" || ev.find("id") == nullptr)
            continue; // op acks and broadcast events carry no ordering
        St &s = st[static_cast<u64>(ev.find("id")->asInt())];
        ASSERT_NE(s.phase, kDone) << "event \"" << kind
                                  << "\" after terminal done";
        if (kind == "accepted") {
            ASSERT_EQ(s.phase, kNone);
            s.phase = kAccepted;
        } else if (kind == "queued") {
            ASSERT_EQ(s.phase, kAccepted); // at most once, pre-admission
            s.phase = kQueued;
        } else if (kind == "admitted") {
            ASSERT_TRUE(s.phase == kAccepted || s.phase == kQueued);
            s.phase = kAdmitted;
        } else if (kind == "token") {
            ASSERT_EQ(s.phase, kAdmitted);
            ASSERT_EQ(static_cast<size_t>(ev.find("index")->asInt()),
                      s.stream.size());
            s.stream.push_back(
                static_cast<int>(ev.find("token")->asInt()));
        } else if (kind == "done") {
            ASSERT_NE(s.phase, kNone);
            const Json *toks = ev.find("tokens");
            ASSERT_NE(toks, nullptr);
            ASSERT_EQ(static_cast<size_t>(ev.find("n")->asInt()),
                      toks->size());
            std::vector<int> done_toks;
            for (const Json &t : toks->elements())
                done_toks.push_back(static_cast<int>(t.asInt()));
            ASSERT_EQ(done_toks, s.stream); // done recaps the stream
            s.phase = kDone;
        } else {
            FAIL() << "unknown per-request event \"" << kind << "\"";
        }
    }
    for (const auto &kv : st)
        EXPECT_EQ(kv.second.phase, kDone)
            << "request " << kv.first << " never reached done";
}

// ------------------------------------------------- stream bit-identity

// The acceptance bar: a scripted session through the Service produces
// token streams bit-identical to driving the ServeEngine directly —
// with and without speculative decode.  The Service observes the
// engine; it never alters what is generated.
TEST(Service, StreamsBitIdenticalToDirectEngine)
{
    const eval::LmModel lm = tinyLm(55);
    const auto prompts = randomPrompts(6, 10, lm.vocab, 777);
    constexpr size_t kMaxNew = 8;
    for (const bool speculate : {false, true}) {
        serve::ServeConfig cfg;
        cfg.maxBatchTokens = 6;
        cfg.maxActiveRequests = 3;
        cfg.speculate = speculate;

        serve::ServeEngine direct(lm, cfg);
        for (const auto &p : prompts)
            direct.submit(p, kMaxNew);
        direct.runToCompletion(100000);
        std::map<u64, std::vector<int>> want;
        for (const serve::FinishedRequest &f : direct.finished())
            want[f.id] = f.generated;

        serve::ServeEngine engine(lm, cfg);
        std::vector<Json> ops;
        for (const auto &p : prompts)
            ops.push_back(submitOp(p, kMaxNew));
        ops.push_back(Json::object({{"op", "drain"}}));
        ops.push_back(Json::object({{"op", "shutdown"}}));
        serve::ServiceConfig svc;
        svc.autoDrain = false; // submit burst first, like the direct run
        const auto events = runSession(engine, std::move(svc), ops);

        validateOrdering(events);
        EXPECT_EQ(tokenStreams(events), want)
            << "speculate=" << speculate;
        EXPECT_EQ(countEvents(events, "done"), prompts.size());
    }
}

// autoDrain mode serializes the requests (each drains before the next
// submit line is read) — a different schedule, the same per-request
// greedy streams on an unshared engine with batch width 1.
TEST(Service, AutoDrainStreamsMatchSequentialEngine)
{
    const eval::LmModel lm = tinyLm(56);
    const auto prompts = randomPrompts(3, 8, lm.vocab, 778);
    serve::ServeConfig cfg;
    cfg.maxActiveRequests = 1;
    cfg.prefixSharing = false;

    serve::ServeEngine direct(lm, cfg);
    for (const auto &p : prompts)
        direct.submit(p, 6);
    direct.runToCompletion(100000);
    std::map<u64, std::vector<int>> want;
    for (const serve::FinishedRequest &f : direct.finished())
        want[f.id] = f.generated;

    serve::ServeEngine engine(lm, cfg);
    std::vector<Json> ops;
    for (const auto &p : prompts)
        ops.push_back(submitOp(p, 6));
    serve::ServiceConfig svc; // autoDrain on; EOF acks the shutdown
    const auto events = runSession(engine, std::move(svc), ops);
    validateOrdering(events);
    EXPECT_EQ(tokenStreams(events), want);
    EXPECT_EQ(events.back().find("event")->asString(), "shutdown");
}

// ---------------------------------- backpressure, cancellation, blocks

// Tiny pool: capacity admits one request at a time, so later submits
// surface queued events; cancelling the active request mid-stream
// frees its blocks (the queue then drains) and the pool ends empty.
TEST(Service, TinyPoolBackpressureAndMidStreamCancel)
{
    const eval::LmModel lm = tinyLm(57);
    serve::ServeConfig cfg;
    cfg.maxActiveRequests = 4;
    cfg.blockRows = 4;
    // Worst case per request: ceil((4 prompt + 4 new - 1)/4) = 2
    // blocks per layer x 2 layers = 4 — exactly the pool, so request 2
    // cannot admit beside request 1.
    cfg.poolBlocks = 4;
    const auto prompts = randomPrompts(3, 1, lm.vocab, 88);
    std::vector<Json> ops;
    for (const auto &p : prompts) {
        std::vector<int> prompt = p;
        prompt.resize(4, static_cast<int>(prompt[0] % 7));
        ops.push_back(submitOp(prompt, 4));
    }
    ops.push_back(Json::object({{"op", "step"}, {"n", 2}}));
    ops.push_back(Json::object({{"op", "cancel"}, {"id", 1}}));
    ops.push_back(Json::object({{"op", "drain"}}));
    ops.push_back(Json::object({{"op", "shutdown"}}));

    serve::ServeEngine engine(lm, cfg);
    serve::ServiceConfig svc;
    svc.autoDrain = false;
    const auto events = runSession(engine, std::move(svc), ops);
    validateOrdering(events);

    // Backpressure: both blocked requests were told they are queued.
    EXPECT_GE(countEvents(events, "queued"), 2u);
    // The mid-stream cancel: request 1 had streamed tokens, then
    // finished with reason "cancelled" — and nothing after that.
    const Json *done1 = doneEvent(events, 1);
    ASSERT_NE(done1, nullptr);
    EXPECT_EQ(done1->find("reason")->asString(), "cancelled");
    EXPECT_GE(done1->find("n")->asInt(), 1);
    // The op was acknowledged.
    EXPECT_EQ(countEvents(events, "cancel"), 1u);
    // The queue drained through the freed capacity.
    for (u64 id : {u64{2}, u64{3}}) {
        const Json *done = doneEvent(events, id);
        ASSERT_NE(done, nullptr);
        EXPECT_EQ(done->find("reason")->asString(), "length");
    }
    // Pool fully drained: every block the cancelled and finished
    // requests referenced was released.
    ASSERT_NE(engine.blockPool(), nullptr);
    EXPECT_EQ(engine.blockPool()->blocksInUse(), 0u);
    engine.blockPool()->checkInvariants();
    EXPECT_EQ(engine.pendingCount(), 0u);
    EXPECT_EQ(engine.activeCount(), 0u);
    EXPECT_EQ(engine.finishedCount(), 3u);
    EXPECT_EQ(engine.metricsSnapshot().requestsCancelled, 1u);
}

TEST(Service, CancelUnknownIdIsAcknowledgedFalse)
{
    const eval::LmModel lm = tinyLm(58);
    serve::ServeEngine engine(lm, {});
    serve::ServiceConfig svc;
    svc.autoDrain = false;
    const auto events = runSession(
        engine, std::move(svc),
        {Json::object({{"op", "cancel"}, {"id", 99}}),
         Json::object({{"op", "shutdown"}})});
    ASSERT_EQ(countEvents(events, "cancel"), 1u);
    EXPECT_FALSE(events[0].find("ok")->asBool());
}

// ------------------------------------------------------------ deadlines

// A queued request whose deadline has already passed is retired with
// reason "deadline" before it ever reaches the batch: zero tokens.
TEST(Service, DeadlineExpiresQueuedRequest)
{
    const eval::LmModel lm = tinyLm(59);
    serve::ServeConfig cfg;
    cfg.maxActiveRequests = 1; // request 2 must wait behind request 1
    serve::ServeEngine engine(lm, cfg);
    const auto prompts = randomPrompts(2, 6, lm.vocab, 91);
    Json hurried = submitOp(prompts[1], 4);
    hurried.set("deadline_ms", 0);
    serve::ServiceConfig svc;
    svc.autoDrain = false;
    const auto events = runSession(
        engine, std::move(svc),
        {submitOp(prompts[0], 4), hurried,
         Json::object({{"op", "drain"}}),
         Json::object({{"op", "shutdown"}})});
    validateOrdering(events);
    const Json *done2 = doneEvent(events, 2);
    ASSERT_NE(done2, nullptr);
    EXPECT_EQ(done2->find("reason")->asString(), "deadline");
    EXPECT_EQ(done2->find("n")->asInt(), 0);
    const Json *done1 = doneEvent(events, 1);
    ASSERT_NE(done1, nullptr);
    EXPECT_EQ(done1->find("reason")->asString(), "length");
    EXPECT_EQ(engine.metricsSnapshot().requestsCancelled, 1u);
}

// An active request that overruns its deadline is expired mid-stream:
// it keeps the tokens it streamed, its blocks are released, and the
// session drains cleanly.  The generation budget is far more wall time
// than the deadline, so expiry is deterministic in outcome (the exact
// token count is machine-dependent).
TEST(Service, DeadlineExpiresActiveRequest)
{
    const eval::LmModel lm = tinyLm(60);
    serve::ServeConfig cfg;
    cfg.maxBatchTokens = 8;
    serve::ServeEngine engine(lm, cfg);
    Json op = submitOp(randomPrompts(1, 4, lm.vocab, 92)[0], 50000);
    op.set("deadline_ms", 25);
    serve::ServiceConfig svc;
    svc.autoDrain = false;
    const auto events = runSession(
        engine, std::move(svc),
        {op, Json::object({{"op", "drain"}}),
         Json::object({{"op", "shutdown"}})});
    validateOrdering(events);
    const Json *done = doneEvent(events, 1);
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->find("reason")->asString(), "deadline");
    EXPECT_GE(done->find("n")->asInt(), 1); // streamed before expiry
    ASSERT_NE(engine.blockPool(), nullptr);
    EXPECT_EQ(engine.blockPool()->blocksInUse(), 0u);
}

// ------------------------------------------------------ output policies

// StopSupersetPolicy injects an extra stop token: the request ends at
// the first occurrence of that token in the unconstrained stream, with
// reason "stop" — the stream prefix is bit-identical.
TEST(Service, StopSupersetPolicyEndsAtInjectedStop)
{
    const eval::LmModel lm = tinyLm(61);
    const auto prompt = randomPrompts(1, 6, lm.vocab, 93)[0];
    constexpr size_t kMaxNew = 8;

    serve::ServeEngine direct(lm, {});
    direct.submit(prompt, kMaxNew);
    direct.runToCompletion(100000);
    const std::vector<int> free_run = direct.finished()[0].generated;
    ASSERT_EQ(free_run.size(), kMaxNew);
    const int stop = free_run[2];
    std::vector<int> want;
    for (int tok : free_run) {
        want.push_back(tok);
        if (tok == stop)
            break; // the stop token is included in the generation
    }

    const serve::StopSupersetPolicy policy({stop});
    serve::ServiceConfig svc;
    svc.autoDrain = false;
    svc.policies["eos"] = &policy;
    Json op = submitOp(prompt, kMaxNew);
    op.set("policy", "eos");
    serve::ServeEngine engine(lm, {});
    const auto events = runSession(
        engine, std::move(svc),
        {op, Json::object({{"op", "drain"}}),
         Json::object({{"op", "shutdown"}})});
    validateOrdering(events);
    const Json *done = doneEvent(events, 1);
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->find("reason")->asString(), "stop");
    EXPECT_EQ(tokenStreams(events)[1], want);
}

TEST(Service, LengthCapPolicyCapsBudget)
{
    const eval::LmModel lm = tinyLm(62);
    const serve::LengthCapPolicy policy(3);
    serve::ServiceConfig svc;
    svc.policies["cap"] = &policy;
    Json op = submitOp(randomPrompts(1, 5, lm.vocab, 94)[0], 50);
    op.set("policy", "cap");
    serve::ServeEngine engine(lm, {});
    const auto events =
        runSession(engine, std::move(svc), {op}); // autoDrain + EOF
    validateOrdering(events);
    // The accepted ack reports the post-policy budget.
    EXPECT_EQ(events[0].find("event")->asString(), "accepted");
    EXPECT_EQ(events[0].find("max_new")->asInt(), 3);
    const Json *done = doneEvent(events, 1);
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->find("reason")->asString(), "length");
    EXPECT_EQ(done->find("n")->asInt(), 3);
}

// ------------------------------------------------- priority scheduling

// Equal priorities are FIFO (the engine's historical order); a higher
// priority jumps the queue, so with batch width 1 the high-priority
// request is admitted — and finishes — first.
TEST(Service, PriorityJumpsTheAdmissionQueue)
{
    const eval::LmModel lm = tinyLm(63);
    serve::ServeConfig cfg;
    cfg.maxActiveRequests = 1;
    serve::ServeEngine engine(lm, cfg);
    const auto prompts = randomPrompts(2, 5, lm.vocab, 95);
    Json urgent = submitOp(prompts[1], 3);
    urgent.set("priority", 5);
    serve::ServiceConfig svc;
    svc.autoDrain = false;
    const auto events = runSession(
        engine, std::move(svc),
        {submitOp(prompts[0], 3), urgent,
         Json::object({{"op", "drain"}}),
         Json::object({{"op", "shutdown"}})});
    validateOrdering(events);
    std::vector<u64> done_order;
    for (const Json &ev : events) {
        if (ev.find("event")->asString() == "done")
            done_order.push_back(
                static_cast<u64>(ev.find("id")->asInt()));
    }
    ASSERT_EQ(done_order.size(), 2u);
    EXPECT_EQ(done_order[0], 2u); // priority 5 beat the earlier submit
    EXPECT_EQ(done_order[1], 1u);
}

// ----------------------------------------------------- stats and errors

TEST(Service, StatsEventCarriesLiveCounters)
{
    const eval::LmModel lm = tinyLm(64);
    serve::ServeConfig cfg;
    cfg.speculate = true;
    serve::ServeEngine engine(lm, cfg);
    std::vector<Json> ops;
    for (const auto &p : randomPrompts(3, 6, lm.vocab, 96))
        ops.push_back(submitOp(p, 6));
    ops.push_back(Json::object({{"op", "drain"}}));
    ops.push_back(Json::object({{"op", "stats"}}));
    ops.push_back(Json::object({{"op", "shutdown"}}));
    serve::ServiceConfig svc;
    svc.autoDrain = false;
    const auto events = runSession(engine, std::move(svc), ops);
    const Json *stats = nullptr;
    for (const Json &ev : events) {
        if (ev.find("event")->asString() == "stats")
            stats = &ev;
    }
    ASSERT_NE(stats, nullptr);
    EXPECT_EQ(stats->find("finished")->asInt(), 3);
    EXPECT_EQ(stats->find("pending")->asInt(), 0);
    EXPECT_EQ(stats->find("active")->asInt(), 0);
    EXPECT_GE(stats->find("steps")->asInt(), 1);
    EXPECT_EQ(stats->find("tokens_generated")->asInt(), 18);
    EXPECT_GE(stats->find("spec_drafted")->asInt(),
              stats->find("spec_accepted")->asInt());
    // Latency percentiles are well-defined numbers, never NaN (a NaN
    // would serialize as null and the asNumber() below would panic).
    for (const char *key : {"ttft_p50_ms", "ttft_p99_ms", "step_p50_ms",
                            "step_p99_ms", "spec_accept_rate"}) {
        ASSERT_NE(stats->find(key), nullptr) << key;
        EXPECT_GE(stats->find(key)->asNumber(), 0.0) << key;
    }
    EXPECT_EQ(stats->find("pool_blocks_in_use")->asInt(), 0);
}

// Malformed client input yields error events and never kills the
// session: the valid submit after seven bad lines is served in full.
TEST(Service, ErrorEventsKeepTheSessionAlive)
{
    const eval::LmModel lm = tinyLm(65);
    serve::ServeEngine engine(lm, {});
    serve::Service service(engine, {});
    std::stringstream in;
    in << "this is not json\n";
    in << "[1,2,3]\n";                                  // no "op"
    in << R"({"op":"frobnicate"})" << "\n";             // unknown op
    in << R"({"op":"submit","max_new":4})" << "\n";     // no prompt
    in << R"({"op":"submit","prompt":[99999],"max_new":4})" << "\n";
    in << R"({"op":"submit","prompt":[1],"max_new":0})" << "\n";
    in << R"({"op":"submit","prompt":[1],"max_new":4,"policy":"nope"})"
       << "\n";
    in << R"({"op":"submit","prompt":[1,2,3],"max_new":4})" << "\n";
    std::stringstream out;
    service.run(in, out);
    std::vector<Json> events;
    std::string line;
    while (std::getline(out, line))
        events.push_back(*Json::parse(line));
    EXPECT_EQ(countEvents(events, "error"), 7u);
    const Json *done = doneEvent(events, 1);
    ASSERT_NE(done, nullptr);
    EXPECT_EQ(done->find("n")->asInt(), 4);
    EXPECT_EQ(events.back().find("event")->asString(), "shutdown");
    EXPECT_EQ(engine.finishedCount(), 1u);
}

TEST(Service, UnknownSubmitFieldIsRejected)
{
    const eval::LmModel lm = tinyLm(66);
    serve::ServeEngine engine(lm, {});
    Json op = submitOp({1, 2}, 4);
    op.set("maxnew", 9); // typo'd field must not be silently ignored
    const auto events = runSession(
        engine, {}, {op, Json::object({{"op", "shutdown"}})});
    EXPECT_EQ(countEvents(events, "error"), 1u);
    EXPECT_EQ(countEvents(events, "accepted"), 0u);
}

// EOF without a shutdown op still drains and acknowledges: a client
// that just closes its pipe never strands in-flight requests.
TEST(Service, EofDrainsInFlightWorkAndAcksShutdown)
{
    const eval::LmModel lm = tinyLm(67);
    serve::ServeEngine engine(lm, {});
    serve::ServiceConfig svc;
    svc.autoDrain = false; // the drain must come from the EOF path
    const auto events = runSession(
        engine, std::move(svc),
        {submitOp(randomPrompts(1, 4, lm.vocab, 97)[0], 5)});
    validateOrdering(events);
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.back().find("event")->asString(), "shutdown");
    EXPECT_EQ(events.back().find("finished")->asInt(), 1);
    EXPECT_EQ(engine.pendingCount() + engine.activeCount(), 0u);
}

} // namespace
} // namespace olive
