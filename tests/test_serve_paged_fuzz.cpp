/**
 * @file
 * Randomized churn fuzz for the paged KV cache: seeded random request
 * mixes (prompt lengths, arrival order, shared/unshared prefixes, stop
 * tokens, forced admission stalls via tiny pool capacities) are driven
 * through a paged engine and through the contiguous KvCacheReference
 * engine side by side, and every generated token stream must be
 * bit-identical between the two — the oracle discipline of the
 * *Reference() kernels (PR 3) applied to the storage layer.
 *
 * For scheduling-identical configurations (sharing off, unbounded
 * pool) the two engines are additionally run in lockstep and their
 * decoded cache contents compared bitwise after every step, so a paged
 * row landing in the wrong (block, slot) is caught at the byte level,
 * not just through a diverged argmax.  Pool invariants are re-checked
 * after every step of every paged run.
 *
 * The DecodedCacheFuzz suite re-runs the same schedules with the
 * decoded-block working set forced to degenerate capacities (one
 * block, barely-enough, unbounded, off), demanding oracle-identical
 * streams from each and meta-asserting that tiny capacities actually
 * evict.
 *
 * The ctest "serve" legs run this whole binary at OLIVE_THREADS=1 and
 * =8; a dedicated test also flips the pool size in-process.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

eval::LmModel
fuzzLm(u64 seed)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 24;
    config.evalHeads = 4;
    config.evalDFf = 48;
    config.evalVocab = 64;
    eval::LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, seed);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng rng(seed ^ 0xabcdULL);
    for (auto &v : lm.embedding.data())
        v = static_cast<float>(rng.gaussian());
    return lm;
}

/** One submission of a churn schedule. */
struct SubSpec
{
    size_t atStep = 0; //!< Engine step index to submit before.
    std::vector<int> prompt;
    size_t maxNew = 1;
    std::vector<int> stops;
};

/** One randomized schedule: a request mix plus an engine shape. */
struct Schedule
{
    std::vector<SubSpec> subs;
    serve::ServeConfig paged; //!< pagedCache = true variant.
    serve::ServeConfig ref;   //!< Same scheduling knobs, contiguous.
};

Schedule
randomSchedule(Rng &rng, size_t vocab, size_t n_layers)
{
    Schedule s;
    serve::ServeConfig &cfg = s.paged;
    switch (rng.uniformInt(8)) {
    case 0:
        cfg.cacheFormat = serve::KvCacheFormat::Olive4;
        break;
    case 1:
        cfg.cacheFormat = serve::KvCacheFormat::Int8;
        break;
    default:
        cfg.cacheFormat = serve::KvCacheFormat::Fp32;
        break;
    }
    cfg.maxBatchTokens = 1 + rng.uniformInt(8);
    cfg.maxActiveRequests = 1 + rng.uniformInt(4);
    cfg.blockRows = 1 + rng.uniformInt(5);
    cfg.prefixSharing = rng.uniformInt(2) == 0;

    // Base prompt some requests extend — the shared-prefix population.
    std::vector<int> base(4 + rng.uniformInt(9));
    for (auto &t : base)
        t = static_cast<int>(rng.uniformInt(vocab));

    const size_t n_req = 2 + rng.uniformInt(5);
    size_t max_blocks_one = 0, total_blocks = 0;
    for (size_t r = 0; r < n_req; ++r) {
        SubSpec sub;
        sub.atStep = rng.uniformInt(8);
        if (rng.uniformInt(2) == 0) {
            // Shared-prefix request: base prefix + divergent suffix.
            const size_t keep = 2 + rng.uniformInt(base.size() - 1);
            sub.prompt.assign(base.begin(),
                              base.begin() +
                                  static_cast<std::ptrdiff_t>(
                                      std::min(keep, base.size())));
            const size_t extra = rng.uniformInt(5);
            for (size_t i = 0; i < extra; ++i)
                sub.prompt.push_back(
                    static_cast<int>(rng.uniformInt(vocab)));
        } else {
            sub.prompt.resize(1 + rng.uniformInt(12));
            for (auto &t : sub.prompt)
                t = static_cast<int>(rng.uniformInt(vocab));
        }
        sub.maxNew = 1 + rng.uniformInt(6);
        if (rng.uniformInt(2) == 0) {
            // Stop tokens from a small vocab make hits likely, so
            // request lengths become genuinely data-dependent.
            sub.stops.resize(1 + rng.uniformInt(4));
            for (auto &t : sub.stops)
                t = static_cast<int>(rng.uniformInt(vocab));
        }
        const size_t rows = sub.prompt.size() + sub.maxNew - 1;
        const size_t blocks =
            (rows + cfg.blockRows - 1) / cfg.blockRows * n_layers;
        max_blocks_one = std::max(max_blocks_one, blocks);
        total_blocks += blocks;
        s.subs.push_back(std::move(sub));
    }
    // Half the schedules run with a pool barely above the largest
    // single request — forcing admission to stall on capacity and
    // requests to churn through the free list.
    if (rng.uniformInt(2) == 0) {
        cfg.poolBlocks =
            max_blocks_one +
            rng.uniformInt(std::max<size_t>(1, total_blocks -
                                                   max_blocks_one));
    }

    s.ref = cfg;
    s.ref.pagedCache = false;
    s.ref.prefixSharing = false;
    s.ref.poolBlocks = 0;
    return s;
}

/** Drive one engine through a schedule; returns id -> generated. */
std::map<u64, std::vector<int>>
runSchedule(const eval::LmModel &lm, const serve::ServeConfig &cfg,
            const std::vector<SubSpec> &subs,
            serve::ServeMetrics *metrics_out = nullptr,
            size_t *stopped_out = nullptr)
{
    serve::ServeEngine eng(lm, cfg);
    size_t step_idx = 0, si = 0;
    while (si < subs.size() || eng.pendingCount() > 0 ||
           eng.activeCount() > 0) {
        while (si < subs.size() && subs[si].atStep <= step_idx) {
            eng.submit(subs[si].prompt, subs[si].maxNew, subs[si].stops);
            ++si;
        }
        eng.step();
        if (const serve::BlockPool *pool = eng.blockPool())
            pool->checkInvariants();
        if (const serve::DecodedBlockCache *dc = eng.decodedCache())
            dc->checkInvariants();
        ++step_idx;
        if (step_idx >= 100000u) {
            ADD_FAILURE() << "schedule did not drain";
            break;
        }
    }
    std::map<u64, std::vector<int>> out;
    for (const serve::FinishedRequest &f : eng.finished())
        out[f.id] = f.generated;
    if (metrics_out)
        *metrics_out = eng.metrics();
    if (stopped_out) {
        *stopped_out = 0;
        for (const serve::FinishedRequest &f : eng.finished())
            *stopped_out += f.stoppedByToken ? 1u : 0u;
    }
    if (const serve::BlockPool *pool = eng.blockPool()) {
        // Fully drained: every block went back to the free list.
        EXPECT_EQ(pool->blocksInUse(), 0u);
        pool->checkInvariants();
    }
    return out;
}

bool
bitIdentical(std::span<const float> a, std::span<const float> b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

struct ThreadCountGuard
{
    ~ThreadCountGuard() { par::setThreadCount(0); }
};

// The acceptance bar: >= 100 seeded schedules, each compared
// bit-identically against the contiguous oracle (the ctest serve legs
// run this at OLIVE_THREADS=1 and =8, covering both pool shapes).
TEST(PagedFuzz, ChurnSchedulesMatchReferenceOracle)
{
    const eval::LmModel lm = fuzzLm(4242);
    u64 shared_rows_total = 0, stopped_total = 0, capped_pools = 0;
    for (u64 seed = 1; seed <= 100; ++seed) {
        Rng rng(seed * 7919);
        const Schedule s =
            randomSchedule(rng, lm.vocab, lm.backbone.layers.size());
        SCOPED_TRACE(testing::Message()
                     << "seed=" << seed << " fmt="
                     << static_cast<int>(s.paged.cacheFormat)
                     << " blockRows=" << s.paged.blockRows << " pool="
                     << s.paged.poolBlocks << " share="
                     << s.paged.prefixSharing);
        serve::ServeMetrics pm;
        size_t stopped = 0;
        const auto paged = runSchedule(lm, s.paged, s.subs, &pm, &stopped);
        const auto ref = runSchedule(lm, s.ref, s.subs);
        EXPECT_EQ(paged, ref);
        shared_rows_total += pm.sharedPrefillRowsSkipped;
        stopped_total += stopped;
        capped_pools += s.paged.poolBlocks > 0 ? 1u : 0u;
        // Copy-on-write is the only payload copier; without sharing
        // nothing may ever be copied.
        if (!s.paged.prefixSharing) {
            EXPECT_EQ(pm.cowCopyRows, 0u);
        }
    }
    // The fuzz must actually exercise what it claims to pin down.
    EXPECT_GT(shared_rows_total, 0u) << "no schedule shared a prefix";
    EXPECT_GT(stopped_total, 0u) << "no schedule hit a stop token";
    EXPECT_GT(capped_pools, 20u) << "too few capacity-capped schedules";
}

// Scheduling-identical configurations (sharing off, unbounded pool)
// run in lockstep: after every step the active sets must coincide and
// every active cache must decode to bit-identical K/V tensors.
TEST(PagedFuzz, LockstepCacheContentsBitIdentical)
{
    const eval::LmModel lm = fuzzLm(990);
    const size_t d = lm.backbone.dModel;
    for (u64 seed = 1; seed <= 15; ++seed) {
        Rng rng(seed * 104729);
        Schedule s =
            randomSchedule(rng, lm.vocab, lm.backbone.layers.size());
        s.paged.prefixSharing = false;
        s.paged.poolBlocks = 0;
        SCOPED_TRACE(testing::Message() << "seed=" << seed);

        serve::ServeEngine paged(lm, s.paged);
        serve::ServeEngine ref(lm, s.ref);
        size_t step_idx = 0, si = 0;
        while (si < s.subs.size() || paged.pendingCount() > 0 ||
               paged.activeCount() > 0) {
            while (si < s.subs.size() && s.subs[si].atStep <= step_idx) {
                const SubSpec &sub = s.subs[si];
                ASSERT_EQ(paged.submit(sub.prompt, sub.maxNew, sub.stops),
                          ref.submit(sub.prompt, sub.maxNew, sub.stops));
                ++si;
            }
            paged.step();
            ref.step();
            ++step_idx;
            ASSERT_LT(step_idx, 100000u);

            const auto ids = paged.activeIds();
            ASSERT_EQ(ids, ref.activeIds());
            for (u64 id : ids) {
                const serve::DecodeState *ps = paged.activeState(id);
                const serve::DecodeState *rs = ref.activeState(id);
                ASSERT_NE(ps, nullptr);
                ASSERT_NE(rs, nullptr);
                ASSERT_EQ(ps->position, rs->position);
                for (size_t li = 0; li < ps->layers.size(); ++li) {
                    const serve::KvCache &pc = *ps->layers[li];
                    const serve::KvCache &rc = *rs->layers[li];
                    ASSERT_EQ(pc.length(), rc.length());
                    if (pc.length() == 0)
                        continue;
                    Tensor pk({pc.length(), d}), rk({rc.length(), d});
                    Tensor pv({pc.length(), d}), rv({rc.length(), d});
                    pc.decodeK(pk);
                    rc.decodeK(rk);
                    pc.decodeV(pv);
                    rc.decodeV(rv);
                    ASSERT_TRUE(bitIdentical(pk.data(), rk.data()))
                        << "K layer " << li << " req " << id;
                    ASSERT_TRUE(bitIdentical(pv.data(), rv.data()))
                        << "V layer " << li << " req " << id;
                }
            }
        }
        std::map<u64, std::vector<int>> pout, rout;
        for (const serve::FinishedRequest &f : paged.finished())
            pout[f.id] = f.generated;
        for (const serve::FinishedRequest &f : ref.finished())
            rout[f.id] = f.generated;
        EXPECT_EQ(pout, rout);
    }
}

// Prefix sharing must be invisible in the token streams: the same
// schedule with sharing forced on and forced off produces identical
// generations (only the memory accounting may differ).
TEST(PagedFuzz, SharingIsTokenStreamInvisible)
{
    const eval::LmModel lm = fuzzLm(551);
    u64 shared_total = 0;
    for (u64 seed = 1; seed <= 20; ++seed) {
        Rng rng(seed * 31337);
        Schedule s =
            randomSchedule(rng, lm.vocab, lm.backbone.layers.size());
        s.paged.poolBlocks = 0; // isolate sharing from capacity stalls
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        serve::ServeConfig on = s.paged, off = s.paged;
        on.prefixSharing = true;
        off.prefixSharing = false;
        serve::ServeMetrics m_on;
        const auto a = runSchedule(lm, on, s.subs, &m_on);
        const auto b = runSchedule(lm, off, s.subs);
        EXPECT_EQ(a, b);
        shared_total += m_on.sharedPrefillRowsSkipped;
    }
    EXPECT_GT(shared_total, 0u);
}

// Decoded-block working set under churn: every schedule re-runs with
// the working set at degenerate capacities — one single block (maximum
// eviction pressure; the soft cap overflows transiently whenever a
// table pins more than one block), barely enough for the largest
// request, unbounded, and off entirely (the retained scratch path) —
// and each variant's token streams must stay bit-identical to the
// contiguous oracle.  The capacity knob may only move work, never a
// value.  Registered as the ctest serve.decoded_cache legs at
// OLIVE_THREADS=1 and =8.
TEST(DecodedCacheFuzz, CapacitySweepMatchesReferenceOracle)
{
    const eval::LmModel lm = fuzzLm(4242);
    const size_t n_layers = lm.backbone.layers.size();
    u64 evictions_tiny = 0, hits_unbounded = 0, hits_tiny = 0;
    for (u64 seed = 1; seed <= 100; ++seed) {
        Rng rng(seed * 7919);
        const Schedule s = randomSchedule(rng, lm.vocab, n_layers);
        SCOPED_TRACE(testing::Message()
                     << "seed=" << seed << " blockRows="
                     << s.paged.blockRows << " pool=" << s.paged.poolBlocks);
        const auto ref = runSchedule(lm, s.ref, s.subs);
        // Barely enough: the largest single request's full block count
        // across all layers — its own working set fits, but any
        // concurrency or sharing across requests contends.
        size_t barely = 1;
        for (const SubSpec &sub : s.subs) {
            const size_t rows = sub.prompt.size() + sub.maxNew - 1;
            const size_t blocks = (rows + s.paged.blockRows - 1) /
                                  s.paged.blockRows * n_layers;
            barely = std::max(barely, blocks);
        }
        const struct
        {
            bool on;
            size_t cap;
        } variants[] = {{true, 1}, {true, barely}, {true, 0}, {false, 0}};
        for (const auto &var : variants) {
            serve::ServeConfig cfg = s.paged;
            cfg.decodedCache = var.on;
            cfg.decodedCacheBlocks = var.cap;
            serve::ServeMetrics m;
            const auto out = runSchedule(lm, cfg, s.subs, &m);
            EXPECT_EQ(out, ref)
                << "decodedCache=" << var.on << " cap=" << var.cap;
            if (!var.on) {
                EXPECT_EQ(m.decodedCacheMisses, 0u);
                EXPECT_EQ(m.decodedCacheRows, 0u);
                continue;
            }
            if (var.cap == 1) {
                evictions_tiny += m.decodedCacheEvictions;
                hits_tiny += m.decodedCacheHits;
            } else if (var.cap == 0) {
                hits_unbounded += m.decodedCacheHits;
                EXPECT_EQ(m.decodedCacheEvictions, 0u)
                    << "an unbounded working set must never evict";
            }
        }
    }
    // Meta-asserts: the sweep must actually exercise the machinery it
    // claims to pin — a tiny cache must thrash, a large one must hit.
    EXPECT_GT(evictions_tiny, 0u)
        << "capacity 1 never evicted — the cap is not binding";
    EXPECT_GT(hits_unbounded, hits_tiny)
        << "an unbounded working set should out-hit a single block";
    EXPECT_GT(hits_unbounded, 0u) << "no schedule ever hit the cache";
}

// Speculative decode must be a pure scheduling optimization: the same
// schedule run with speculation on (draft lengths 1..4, n-gram
// proposer, stop tokens and prefix sharing in the mix exactly as the
// churn fuzz rolls them) produces token streams bit-identical to the
// plain greedy engine, across >= 100 seeds.  Rejected drafts exercise
// KvCache::truncate under every codec, block-rows setting, and pool
// capacity randomSchedule emits; runSchedule's per-step
// checkInvariants + drained-pool check make "rollback leaves the pool
// accounting clean" a hard assertion rather than a hope.  Registered
// as the ctest serve.spec_decode legs at OLIVE_THREADS=1 and =8.
TEST(SpeculativeFuzz, StreamsBitIdenticalToGreedyDecode)
{
    const eval::LmModel lm = fuzzLm(4242);
    u64 drafted = 0, accepted = 0;
    u64 shared_rows_total = 0, stopped_total = 0;
    for (u64 seed = 1; seed <= 100; ++seed) {
        Rng rng(seed * 7919);
        Schedule s =
            randomSchedule(rng, lm.vocab, lm.backbone.layers.size());
        // Speculation only engages when the step budget exceeds the
        // guaranteed per-request token, so give the batch headroom.
        s.paged.maxBatchTokens =
            std::max<size_t>(s.paged.maxBatchTokens, 4);
        serve::ServeConfig spec = s.paged;
        spec.speculate = true;
        spec.draftLen = 1 + seed % 4;
        SCOPED_TRACE(testing::Message()
                     << "seed=" << seed << " draftLen=" << spec.draftLen
                     << " blockRows=" << spec.blockRows << " pool="
                     << spec.poolBlocks << " share="
                     << spec.prefixSharing);
        serve::ServeMetrics sm;
        size_t stopped = 0;
        const auto a = runSchedule(lm, spec, s.subs, &sm, &stopped);
        const auto b = runSchedule(lm, s.paged, s.subs);
        EXPECT_EQ(a, b);
        // Every finished request records exactly one TTFT sample.
        EXPECT_EQ(sm.ttftSeconds.size(), a.size());
        drafted += sm.specDrafted;
        accepted += sm.specAccepted;
        shared_rows_total += sm.sharedPrefillRowsSkipped;
        stopped_total += stopped;
    }
    // Meta-asserts: the sweep must draft, accept, AND reject (the
    // whole deterministic sweep always sees the same counts, so these
    // pin real coverage, not luck).  accepted < drafted proves the
    // truncate/rollback path ran; accepted > 0 proves the accept path
    // and its position bookkeeping ran.
    EXPECT_GT(drafted, 0u) << "no schedule ever drafted";
    EXPECT_GT(accepted, 0u) << "no draft was ever accepted";
    EXPECT_LT(accepted, drafted) << "no draft was ever rejected";
    EXPECT_GT(shared_rows_total, 0u)
        << "speculation never ran beside prefix sharing";
    EXPECT_GT(stopped_total, 0u)
        << "speculation never ran into a stop token";
}

/** A random multi-turn conversation workload: the churn pattern the
 *  cached-prefix retention LRU exists for — every turn after the first
 *  re-submits prompt + reply as its prefix AFTER the donor retired. */
serve::WorkloadSpec
randomMultiTurnSpec(Rng &rng, size_t vocab)
{
    serve::WorkloadSpec s;
    s.seed = rng.next();
    s.sessions = 2 + rng.uniformInt(3);
    s.vocab = vocab;
    s.arrival.kind = serve::ArrivalSpec::Kind::Uniform;
    s.arrival.gap = rng.uniformInt(3);
    s.promptLen.kind = serve::LengthSpec::Kind::Uniform;
    s.promptLen.lo = 2;
    s.promptLen.hi = 8;
    s.outputLen.kind = serve::LengthSpec::Kind::Uniform;
    s.outputLen.lo = 2;
    s.outputLen.hi = 5;
    s.turnsMin = 2;
    s.turnsMax = 3;
    s.turnGapSteps = rng.uniformInt(2);
    if (rng.uniformInt(2) == 0) {
        // Stop tokens make turn lengths data-dependent, so retained
        // prefixes end at genuinely random row counts.
        s.stopTokenCount = 1 + rng.uniformInt(2);
        s.stopPercent = 50;
    }
    return s;
}

// The retention acceptance bar: 100 seeded multi-turn churn schedules,
// each replayed with retention on and off, streams compared bit for
// bit (retention must be invisible in token space).  Pool invariants
// are re-checked after every step; after the drain every block still
// in use must be held by retention and exactly balance the pool's
// retained-block accounting, and clearRetainedPrefixes must return the
// pool to zero.  A third of the schedules run with a tiny retention
// budget and a third with a pool capacity barely above the largest
// request, so LRU-cap evictions and evict-before-stall pressure both
// fire (meta-asserted below).
TEST(RetentionFuzz, MultiTurnChurnRetentionIsStreamInvisible)
{
    const eval::LmModel lm = fuzzLm(4242);
    const size_t n_layers = lm.backbone.layers.size();
    u64 hits = 0, stored = 0, evicted_cap = 0, evicted_pressure = 0;
    for (u64 seed = 1; seed <= 100; ++seed) {
        Rng rng(seed * 6151);
        const serve::Workload w =
            serve::Workload::generate(randomMultiTurnSpec(rng, lm.vocab));

        serve::ServeConfig cfg;
        switch (rng.uniformInt(4)) {
        case 0:
            cfg.cacheFormat = serve::KvCacheFormat::Olive4;
            break;
        case 1:
            cfg.cacheFormat = serve::KvCacheFormat::Int8;
            break;
        default:
            cfg.cacheFormat = serve::KvCacheFormat::Fp32;
            break;
        }
        cfg.maxBatchTokens = 1 + rng.uniformInt(8);
        cfg.maxActiveRequests = 1 + rng.uniformInt(4);
        cfg.blockRows = 1 + rng.uniformInt(5);
        const u64 pressure_kind = rng.uniformInt(3);
        if (pressure_kind == 1) {
            cfg.retainBlocks = 1 + rng.uniformInt(8 * n_layers);
        } else if (pressure_kind == 2) {
            // Pool barely above the worst single request of the whole
            // trace: chained turn prompts grow, so admission must
            // repeatedly evict retained prefixes before stalling.
            std::map<u64, size_t> chain_rows;
            size_t worst = 0;
            for (const serve::WorkloadRequest &r : w.requests()) {
                size_t &cum = chain_rows[r.conversation];
                cum += r.userTokens.size() + r.maxNew;
                worst = std::max(worst, cum);
            }
            const size_t blocks =
                (worst + cfg.blockRows - 1) / cfg.blockRows * n_layers;
            cfg.poolBlocks = blocks + rng.uniformInt(blocks);
        }
        SCOPED_TRACE(testing::Message()
                     << "seed=" << seed << " blockRows=" << cfg.blockRows
                     << " retainBlocks=" << cfg.retainBlocks << " pool="
                     << cfg.poolBlocks);

        serve::ReplayOptions opts;
        opts.onStep = [](serve::ServeEngine &e) {
            if (const serve::BlockPool *pool = e.blockPool())
                pool->checkInvariants();
        };
        const auto replay = [&](bool retain, serve::ServeMetrics *m) {
            serve::ServeConfig c = cfg;
            c.retainPrefixes = retain;
            serve::ServeEngine eng(lm, c);
            const serve::ReplayResult r =
                serve::replayTrace(eng, w, opts);
            *m = eng.metricsSnapshot();
            const serve::BlockPool *pool = eng.blockPool();
            // Drained: whatever is still alive, retention holds — and
            // the pool's own byte accounting must agree exactly.
            EXPECT_EQ(pool->blocksInUse(), pool->retainedBlocks());
            EXPECT_GE(eng.retainedBlockCount(), pool->retainedBlocks());
            EXPECT_EQ(pool->retainedBytes(),
                      pool->retainedBlocks() * pool->blockBytes());
            pool->checkInvariants();
            eng.clearRetainedPrefixes();
            EXPECT_EQ(pool->blocksInUse(), 0u);
            EXPECT_EQ(pool->retainedBlocks(), 0u);
            EXPECT_EQ(eng.retainedBlockCount(), 0u);
            pool->checkInvariants();
            std::vector<std::vector<int>> streams;
            streams.reserve(r.requests.size());
            for (const serve::ReplayRequestResult &q : r.requests)
                streams.push_back(q.generated);
            return streams;
        };
        serve::ServeMetrics on, off;
        const auto a = replay(true, &on);
        const auto b = replay(false, &off);
        EXPECT_EQ(a, b) << "retention changed a token stream";
        // A tiny retainBlocks budget may legitimately reject every
        // entry as oversized; an unbounded LRU must always store.
        if (cfg.retainBlocks == 0) {
            EXPECT_GT(on.retentionStored, 0u);
        }
        EXPECT_EQ(off.retentionStored, 0u);
        EXPECT_EQ(off.retentionHits, 0u);
        hits += on.retentionHits;
        stored += on.retentionStored;
        if (pressure_kind == 1)
            evicted_cap += on.retentionEvictions;
        else if (pressure_kind == 2)
            evicted_pressure += on.retentionEvictions;
    }
    // The fuzz must exercise what it claims to pin down: real LRU
    // hits, cap-driven evictions, and pressure-driven evictions.
    EXPECT_GT(hits, 0u) << "no follow-up turn ever hit the LRU";
    EXPECT_GT(stored, 0u);
    EXPECT_GT(evicted_cap, 0u) << "the retainBlocks cap never bound";
    EXPECT_GT(evicted_pressure, 0u)
        << "pool pressure never evicted a retained prefix";
}

// In-process thread-count sweep over a few schedules, mirroring the
// ServeDeterminism suite: the fuzz streams themselves must not depend
// on the pool size (the ctest legs then re-run everything above under
// OLIVE_THREADS=1 and =8).
TEST(PagedFuzz, SchedulesBitIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const eval::LmModel lm = fuzzLm(77);
    for (u64 seed : {3u, 11u, 42u}) {
        Rng rng(seed * 7919);
        const Schedule s =
            randomSchedule(rng, lm.vocab, lm.backbone.layers.size());
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        par::setThreadCount(1);
        const auto serial = runSchedule(lm, s.paged, s.subs);
        for (size_t threads : {2u, 0u}) {
            par::setThreadCount(threads);
            EXPECT_EQ(runSchedule(lm, s.paged, s.subs), serial)
                << threads;
        }
    }
}

} // namespace
} // namespace olive
