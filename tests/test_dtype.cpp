/**
 * @file
 * Tests of the normal-value data types (paper Table 3): value tables,
 * identifier reservation, codec round trips, and the exponent-integer
 * decode used by the hardware path.
 */

#include <gtest/gtest.h>

#include <set>

#include "quant/dtype.hpp"

namespace olive {
namespace {

TEST(DType, Int4ValueTableMatchesPaperTable3)
{
    const auto vals = valueTable(NormalType::Int4);
    ASSERT_EQ(vals.size(), 15u); // [-7, 7]: -8 is the identifier
    EXPECT_EQ(vals.front(), -7);
    EXPECT_EQ(vals.back(), 7);
    for (int v = -7; v <= 7; ++v)
        EXPECT_NE(std::find(vals.begin(), vals.end(), v), vals.end());
}

TEST(DType, Flint4ValueTableMatchesPaperTable3)
{
    const auto vals = valueTable(NormalType::Flint4);
    const std::set<int> expect = {-16, -8, -6, -4, -3, -2, -1, 0,
                                  1,   2,  3,  4,  6,  8,  16};
    EXPECT_EQ(std::set<int>(vals.begin(), vals.end()), expect);
    // Ascending order is required by the nearest-value encoder.
    EXPECT_TRUE(std::is_sorted(vals.begin(), vals.end()));
}

TEST(DType, Int8ValueTableMatchesPaperTable3)
{
    const auto vals = valueTable(NormalType::Int8);
    ASSERT_EQ(vals.size(), 255u); // [-127, 127]: -128 is the identifier
    EXPECT_EQ(vals.front(), -127);
    EXPECT_EQ(vals.back(), 127);
}

TEST(DType, OutlierIdentifiersAreMinusZeroPatterns)
{
    EXPECT_EQ(outlierIdentifier(NormalType::Int4), 0x8u);
    EXPECT_EQ(outlierIdentifier(NormalType::Flint4), 0x8u);
    EXPECT_EQ(outlierIdentifier(NormalType::Int8), 0x80u);
}

TEST(DType, MaxMagnitudes)
{
    EXPECT_EQ(maxNormalMagnitude(NormalType::Int4), 7);
    EXPECT_EQ(maxNormalMagnitude(NormalType::Flint4), 16);
    EXPECT_EQ(maxNormalMagnitude(NormalType::Int8), 127);
}

class NormalCodecTest : public ::testing::TestWithParam<NormalType>
{
};

TEST_P(NormalCodecTest, EncodeNeverProducesIdentifier)
{
    const NormalCodec codec(GetParam());
    const float scale = 0.37f;
    for (float x = -200.0f; x <= 200.0f; x += 0.83f)
        EXPECT_FALSE(codec.isIdentifier(codec.encode(x, scale)));
}

TEST_P(NormalCodecTest, RoundTripIsExactOnGridPoints)
{
    const NormalCodec codec(GetParam());
    const float scale = 1.5f;
    for (int v : valueTable(GetParam())) {
        const u32 code = codec.encode(static_cast<float>(v) * scale, scale);
        EXPECT_EQ(codec.decodeInt(code), v);
        EXPECT_FLOAT_EQ(codec.decode(code, scale),
                        static_cast<float>(v) * scale);
    }
}

TEST_P(NormalCodecTest, EncodeIsNearestValue)
{
    const NormalCodec codec(GetParam());
    const auto vals = valueTable(GetParam());
    const float scale = 1.0f;
    for (float x = -20.0f; x <= 20.0f; x += 0.31f) {
        const int got = codec.decodeInt(codec.encode(x, scale));
        double best = 1e30;
        for (int v : vals)
            best = std::min(best, std::abs(static_cast<double>(v) - x));
        EXPECT_NEAR(std::abs(got - x), best, 1e-6)
            << "x=" << x << " got=" << got;
    }
}

TEST_P(NormalCodecTest, SaturatesBeyondRange)
{
    const NormalCodec codec(GetParam());
    const int max_mag = maxNormalMagnitude(GetParam());
    EXPECT_EQ(codec.decodeInt(codec.encode(1e6f, 1.0f)), max_mag);
    EXPECT_EQ(codec.decodeInt(codec.encode(-1e6f, 1.0f)), -max_mag);
}

TEST_P(NormalCodecTest, ExpIntDecodeAgreesWithIntDecode)
{
    const NormalCodec codec(GetParam());
    for (int v : valueTable(GetParam())) {
        const u32 code = codec.encode(static_cast<float>(v), 1.0f);
        EXPECT_EQ(codec.decodeExpInt(code).value(), v);
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, NormalCodecTest,
                         ::testing::Values(NormalType::Int4,
                                           NormalType::Flint4,
                                           NormalType::Int8),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(DType, FlintExpIntSplitsMatchValues)
{
    const NormalCodec codec(NormalType::Flint4);
    // flint4 decodes to exponent/integer splits whose shifted value
    // matches the table, e.g. 16 = 1 << 4, 6 = 3 << 1.
    struct Case { int value; u8 exp; i32 integer; };
    const Case cases[] = {
        {1, 0, 1}, {2, 1, 1}, {3, 0, 3}, {4, 2, 1},
        {6, 1, 3}, {8, 3, 1}, {16, 4, 1},
    };
    for (const auto &c : cases) {
        const u32 code = codec.encode(static_cast<float>(c.value), 1.0f);
        const ExpInt e = codec.decodeExpInt(code);
        EXPECT_EQ(e.value(), c.value);
        EXPECT_EQ(e.exponent, c.exp) << "value " << c.value;
        EXPECT_EQ(e.integer, c.integer) << "value " << c.value;
    }
}

TEST(DType, ToStringNames)
{
    EXPECT_EQ(toString(NormalType::Int4), "int4");
    EXPECT_EQ(toString(NormalType::Flint4), "flint4");
    EXPECT_EQ(toString(NormalType::Int8), "int8");
    EXPECT_EQ(bitWidth(NormalType::Int4), 4);
    EXPECT_EQ(bitWidth(NormalType::Flint4), 4);
    EXPECT_EQ(bitWidth(NormalType::Int8), 8);
}

} // namespace
} // namespace olive
