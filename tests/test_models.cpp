/**
 * @file
 * Tests of the model zoo: published architecture dimensions, the GEMM
 * workload enumeration, and — central to the whole substitution — that
 * the synthetic tensors reproduce the paper's Table 2 pair statistics
 * and Fig. 2 outlier profiles.
 */

#include <gtest/gtest.h>

#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "models/workload.hpp"
#include "quant/ovp.hpp"
#include "tensor/distribution.hpp"

namespace olive {
namespace {

TEST(ModelConfig, PublishedDimensions)
{
    const auto bert = models::bertBase();
    EXPECT_EQ(bert.layers, 12u);
    EXPECT_EQ(bert.dModel, 768u);
    EXPECT_EQ(bert.dFf, 3072u);

    const auto large = models::bertLarge();
    EXPECT_EQ(large.layers, 24u);
    EXPECT_EQ(large.dModel, 1024u);

    const auto gpt = models::gpt2Xl();
    EXPECT_EQ(gpt.layers, 48u);
    EXPECT_EQ(gpt.dModel, 1600u);
    EXPECT_TRUE(gpt.decoderOnly);

    const auto opt = models::opt67b();
    EXPECT_EQ(opt.layers, 32u);
    EXPECT_EQ(opt.dModel, 4096u);
    // OPT-6.7B: ~6.4 B GEMM parameters of the 6.7 B total.
    EXPECT_NEAR(static_cast<double>(opt.gemmParams()), 6.4e9, 0.3e9);
}

TEST(ModelConfig, BatchesMatchPaperMethodology)
{
    // Sec. 5.3: batch 2 for GPT-like, 16 for BERT-like.
    EXPECT_EQ(models::bertBase().batch, 16u);
    EXPECT_EQ(models::gpt2Xl().batch, 2u);
    EXPECT_EQ(models::bloom7b1().batch, 2u);
}

TEST(ModelConfig, LookupByName)
{
    EXPECT_EQ(models::byName("BERT-base").dModel, 768u);
    EXPECT_EQ(models::byName("OPT-6.7B").layers, 32u);
    EXPECT_EQ(models::figureModels().size(), 5u);
    EXPECT_EQ(models::llmModels().size(), 3u);
}

TEST(Workload, GemmListCoversTransformer)
{
    const auto ops = models::inferenceGemms(models::bertBase());
    ASSERT_EQ(ops.size(), 6u);
    // MAC count sanity: projections dominate; total within expected
    // envelope (batch 16, seq 128).
    const u64 macs = models::totalMacs(ops);
    // 16 * 128 tokens * ~85 M weights * ... : just bound the order.
    EXPECT_GT(macs, u64{1} << 37);
    EXPECT_LT(macs, u64{1} << 42);
}

TEST(Workload, WeightElemsMatchGemmParams)
{
    for (const auto &c : models::figureModels()) {
        const auto ops = models::inferenceGemms(c);
        EXPECT_EQ(models::totalWeightElems(ops), c.gemmParams()) << c.name;
    }
}

TEST(Workload, AttentionOpsAreActivationOperands)
{
    const auto ops = models::inferenceGemms(models::gpt2Xl());
    int act_ops = 0;
    for (const auto &op : ops)
        act_ops += !op.bIsWeight;
    EXPECT_EQ(act_ops, 2) << "scores and context GEMMs";
}

class Table2Census
    : public ::testing::TestWithParam<std::tuple<const char *, double,
                                                 double>>
{
};

TEST_P(Table2Census, SyntheticTensorsReproducePairStatistics)
{
    const auto [name, on_pct, oo_pct] = GetParam();
    const auto config = models::byName(name);
    Rng rng(1234);
    // Census over a batch of large synthetic weight tensors.
    Tensor t({1u << 21});
    models::fillOutlierTensor(t, 1.0, config.profile.weightOutlierProb,
                              config.profile.clusterProb,
                              config.profile.weightMaxSigma, rng);
    const PairCensus c = pairCensus(t.data(), 3.0);
    // Table 2 tolerances: outlier-normal within 35 % relative, the rare
    // outlier-outlier within a factor ~2.5 (it is a 0.0x % event).
    EXPECT_NEAR(c.outlierNormalPct(), on_pct, on_pct * 0.35) << name;
    EXPECT_GT(c.outlierOutlierPct(), oo_pct / 2.5) << name;
    EXPECT_LT(c.outlierOutlierPct(), oo_pct * 2.5) << name;
    EXPECT_GT(c.normalNormalPct(), 98.0) << name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable2, Table2Census,
    ::testing::Values(std::make_tuple("BERT-base", 0.84, 0.04),
                      std::make_tuple("BERT-large", 0.71, 0.05),
                      std::make_tuple("GPT2-XL", 1.14, 0.06),
                      std::make_tuple("OPT-6.7B", 0.64, 0.03)));

TEST(Synthetic, BackboneIsDeterministic)
{
    const auto config = models::bertBase();
    const auto m1 = models::makeBackbone(config, 5);
    const auto m2 = models::makeBackbone(config, 5);
    ASSERT_EQ(m1.layers.size(), m2.layers.size());
    EXPECT_EQ(m1.layers[0].q.w.data()[17], m2.layers[0].q.w.data()[17]);
    const auto m3 = models::makeBackbone(config, 6);
    EXPECT_NE(m1.layers[0].q.w.data()[17], m3.layers[0].q.w.data()[17]);
}

TEST(Synthetic, BackboneUsesEvalDims)
{
    const auto config = models::gpt2Xl();
    const auto m = models::makeBackbone(config, 1);
    EXPECT_EQ(m.dModel, config.evalDModel);
    EXPECT_EQ(m.layers.size(), config.evalLayers);
    EXPECT_TRUE(m.causal);
}

TEST(Synthetic, TensorZooProfilesRiseToMaxSigma)
{
    const auto config = models::bertBase();
    const auto zoo = models::makeTensorZoo(config, 24, 16384, 3);
    ASSERT_EQ(zoo.size(), 24u);
    const auto first = profileTensor(zoo.front());
    const auto last = profileTensor(zoo.back());
    EXPECT_LT(first.maxSigma, 20.0);
    EXPECT_GT(last.maxSigma, 100.0);
}

TEST(Synthetic, InputSequenceShape)
{
    const auto config = models::bertBase();
    Rng rng(2);
    const Tensor x = models::makeInputSequence(config, 16, rng);
    EXPECT_EQ(x.dim(0), 16u);
    EXPECT_EQ(x.dim(1), config.evalDModel);
}

} // namespace
} // namespace olive
