/**
 * @file
 * Tests of the serving subsystem: KV-cache codecs (round trips, byte
 * accounting, compression), the continuous-batching engine (greedy
 * generation against a full-forward reference, scheduling invariance,
 * budget bookkeeping), the cache-quantization eval hook, and the
 * ServeDeterminism.* suite the ctest "serve" legs pin at
 * OLIVE_THREADS=1 and =8.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "baselines/uniform.hpp"
#include "serve/block_pool.hpp"
#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "serve/cache_eval.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

bool
bitIdentical(std::span<const float> a, std::span<const float> b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::vector<float>
outlierRow(size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 60.0));
    return xs;
}

/** Restores the ambient pool size when a test returns. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { par::setThreadCount(0); }
};

eval::LmModel
tinyLm(u64 seed = 1234)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 24;
    config.evalHeads = 4;
    config.evalDFf = 48;
    config.evalVocab = 64;
    eval::LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, seed);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng rng(seed ^ 0xabcdULL);
    for (auto &v : lm.embedding.data())
        v = static_cast<float>(rng.gaussian());
    return lm;
}

std::vector<std::vector<int>>
randomPrompts(size_t n, size_t max_len, size_t vocab, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<int>> prompts(n);
    for (auto &p : prompts) {
        p.resize(1 + rng.uniformInt(max_len));
        for (auto &t : p)
            t = static_cast<int>(rng.uniformInt(vocab));
    }
    return prompts;
}

/** Per-request streams keyed by id: finish ORDER may legitimately vary
 * with scheduling (speculation finishes requests in fewer steps), the
 * streams themselves never may. */
std::map<u64, std::vector<int>>
serveWorkloadById(const eval::LmModel &lm, serve::ServeConfig cfg,
                  const std::vector<std::vector<int>> &prompts,
                  size_t max_new,
                  serve::ServeMetrics *metrics_out = nullptr)
{
    serve::ServeEngine engine(lm, cfg);
    for (const auto &p : prompts)
        engine.submit(p, max_new);
    engine.runToCompletion(100000);
    std::map<u64, std::vector<int>> out;
    for (const serve::FinishedRequest &f : engine.finished())
        out[f.id] = f.generated;
    if (metrics_out)
        *metrics_out = engine.metrics();
    return out;
}

/** Concatenated (id, generated...) streams, the determinism fingerprint. */
std::vector<int>
serveWorkload(const eval::LmModel &lm, serve::ServeConfig cfg,
              const std::vector<std::vector<int>> &prompts, size_t max_new,
              serve::ServeMetrics *metrics_out = nullptr)
{
    serve::ServeEngine engine(lm, cfg);
    for (const auto &p : prompts)
        engine.submit(p, max_new);
    engine.runToCompletion(100000);
    std::vector<int> out;
    for (const serve::FinishedRequest &f : engine.finished()) {
        out.push_back(static_cast<int>(f.id));
        out.insert(out.end(), f.generated.begin(), f.generated.end());
    }
    if (metrics_out)
        *metrics_out = engine.metrics();
    return out;
}

// -------------------------------------------------------- kv codecs

TEST(KvScheme, Fp32RoundTripIsBitExact)
{
    const serve::Fp32KvScheme s;
    EXPECT_TRUE(s.lossless());
    const auto row = outlierRow(96, 1);
    std::vector<u8> bytes;
    serve::KvRowMeta meta;
    s.encodeRow(row, bytes, meta);
    EXPECT_EQ(bytes.size(), s.rowBytes(row.size()));
    std::vector<float> back(row.size());
    s.decodeRow(bytes, meta, back);
    EXPECT_TRUE(bitIdentical(row, back));
}

TEST(KvScheme, OvpRowMatchesCodecFakeQuant)
{
    // The cache's encode/decode must be exactly the OliVe PTQ round
    // trip for the row: per-row calibration + OvpCodec packing.
    for (int bits : {4, 8}) {
        const serve::OvpKvScheme s(bits);
        const OliveQuantizer quantizer(OliveConfig{.bits = bits});
        for (u64 seed : {2u, 3u, 4u}) {
            const auto row = outlierRow(96, seed);
            std::vector<u8> bytes;
            serve::KvRowMeta meta;
            s.encodeRow(row, bytes, meta);
            ASSERT_EQ(bytes.size(), s.rowBytes(row.size()));
            std::vector<float> back(row.size());
            s.decodeRow(bytes, meta, back);
            const auto ref = quantizer.fakeQuant(row);
            EXPECT_TRUE(bitIdentical(ref, back)) << bits << ":" << seed;
        }
    }
}

TEST(KvScheme, OvpAllZeroRowDecodesToZeros)
{
    const serve::OvpKvScheme s(4);
    const std::vector<float> row(32, 0.0f);
    std::vector<u8> bytes;
    serve::KvRowMeta meta;
    s.encodeRow(row, bytes, meta);
    EXPECT_EQ(meta.scale, 0.0f);
    std::vector<float> back(row.size(), 1.0f);
    s.decodeRow(bytes, meta, back);
    for (float v : back)
        EXPECT_EQ(v, 0.0f);
}

TEST(KvScheme, OvpDecodeIsThresholdIndependent)
{
    // The accounting claim behind metaBytesPerRow() == 5: the decoder
    // needs only (scale, normal type) — the threshold shapes pair
    // classification at encode time and can be discarded afterwards.
    const serve::OvpKvScheme s(4);
    const auto row = outlierRow(96, 21);
    std::vector<u8> bytes;
    serve::KvRowMeta meta;
    s.encodeRow(row, bytes, meta);
    std::vector<float> back(row.size()), back2(row.size());
    s.decodeRow(bytes, meta, back);
    serve::KvRowMeta forged = meta;
    forged.threshold = meta.threshold * 1000.0 + 1.0;
    s.decodeRow(bytes, forged, back2);
    EXPECT_TRUE(bitIdentical(back, back2));
}

TEST(KvScheme, Int8RowMatchesUniformFakeQuant)
{
    const serve::Int8KvScheme s;
    const auto row = outlierRow(96, 5);
    std::vector<u8> bytes;
    serve::KvRowMeta meta;
    s.encodeRow(row, bytes, meta);
    ASSERT_EQ(bytes.size(), row.size());
    std::vector<float> back(row.size());
    s.decodeRow(bytes, meta, back);
    const float scale = searchUniformScale(row, 127);
    EXPECT_EQ(meta.scale, scale);
    const auto ref = uniformFakeQuant(row, scale, 127);
    // Integer codes cannot carry the sign of zero, so a -0.0f in the
    // fake-quant reference decodes as +0.0f; values are otherwise
    // reproduced bit for bit.
    ASSERT_EQ(ref.size(), back.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i], back[i]) << i; // arithmetic: -0 == +0
        if (ref[i] != 0.0f) {
            EXPECT_TRUE(bitIdentical({&ref[i], 1}, {&back[i], 1})) << i;
        }
    }
}

TEST(KvScheme, OvpDecodeCodecCacheIsBitIdentical)
{
    // decodeRow amortizes OvpCodec construction across rows and steps
    // sharing a (normal type, scale); the cached codec must decode
    // exactly like a codec freshly constructed from the row's meta.
    for (int bits : {4, 8}) {
        const serve::OvpKvScheme s(bits);
        for (u64 seed : {31u, 32u, 33u}) {
            const auto row = outlierRow(96, seed);
            std::vector<u8> bytes;
            serve::KvRowMeta meta;
            s.encodeRow(row, bytes, meta);
            std::vector<float> cached(row.size());
            s.decodeRow(bytes, meta, cached);
            const OvpCodec fresh(meta.normal, meta.scale, meta.threshold);
            const std::vector<float> ref = fresh.decode(bytes, row.size());
            EXPECT_TRUE(bitIdentical(cached, ref)) << bits << ":" << seed;
            // The second decode is a guaranteed cache hit — and must
            // still be byte-for-byte the fresh-codec result.
            std::vector<float> again(row.size());
            s.decodeRow(bytes, meta, again);
            EXPECT_TRUE(bitIdentical(cached, again)) << bits << ":" << seed;
        }
    }
}

TEST(KvCache, ByteAccountingAndCompression)
{
    const size_t d = 96, rows = 16;
    const serve::Fp32KvScheme fp32;
    const serve::OvpKvScheme olive4(4);
    serve::KvCacheReference cache_fp32(fp32, d);
    serve::KvCacheReference cache_ovp(olive4, d);
    for (size_t i = 0; i < rows; ++i) {
        const auto k = outlierRow(d, 100 + i);
        const auto v = outlierRow(d, 200 + i);
        cache_fp32.append(k, v);
        cache_ovp.append(k, v);
    }
    EXPECT_EQ(cache_fp32.length(), rows);
    EXPECT_EQ(cache_fp32.fp32Bytes(), 2 * rows * d * sizeof(float));
    EXPECT_EQ(cache_fp32.encodedBytes(), cache_fp32.fp32Bytes());
    EXPECT_EQ(cache_ovp.encodedBytes(),
              2 * rows * (olive4.rowBytes(d) + olive4.metaBytesPerRow()));
    // The acceptance bar: OVP-4 cache <= 0.25x of fp32 bytes.
    EXPECT_LE(static_cast<double>(cache_ovp.encodedBytes()),
              0.25 * static_cast<double>(cache_ovp.fp32Bytes()));

    // Decoded shapes and fp32 exactness.
    Tensor k_dec({rows, d}), v_dec({rows, d});
    cache_fp32.decodeK(k_dec);
    cache_fp32.decodeV(v_dec);
    const auto k0 = outlierRow(d, 100);
    EXPECT_TRUE(bitIdentical(k_dec.row(0), k0));
}

TEST(KvCache, FormatFactoryAndParse)
{
    for (const std::string &id : serve::kvCacheFormatIds()) {
        const auto scheme =
            serve::makeKvScheme(serve::parseKvCacheFormat(id));
        EXPECT_FALSE(scheme->name().empty());
    }
    EXPECT_EQ(serve::makeKvScheme(serve::KvCacheFormat::Olive4)->name(),
              "kv-olive4");
}

// ------------------------------------------------------ paged cache

TEST(PagedKvCache, DecodesBitIdenticalToReferenceLayout)
{
    // The same appended rows must decode to the same floats whether
    // they live in one contiguous stream or scattered across blocks —
    // the per-row codec bytes are independent of placement.
    const size_t d = 96, rows = 8;
    const serve::Fp32KvScheme fp32;
    const serve::OvpKvScheme olive4(4);
    const serve::Int8KvScheme int8;
    for (const serve::KvScheme *s :
         {static_cast<const serve::KvScheme *>(&fp32),
          static_cast<const serve::KvScheme *>(&olive4),
          static_cast<const serve::KvScheme *>(&int8)}) {
        serve::BlockPool pool(*s, d, 3); // 8 rows -> 3 blocks, 1 partial
        serve::PagedKvCache paged(pool);
        serve::KvCacheReference ref(*s, d);
        for (size_t i = 0; i < rows; ++i) {
            const auto k = outlierRow(d, 300 + i);
            const auto v = outlierRow(d, 400 + i);
            paged.append(k, v);
            ref.append(k, v);
        }
        EXPECT_EQ(paged.length(), rows);
        EXPECT_EQ(paged.blockCount(), 3u);
        EXPECT_EQ(paged.encodedBytes(), 3 * pool.blockBytes());
        Tensor pk({rows, d}), rk({rows, d}), pv({rows, d}), rv({rows, d});
        paged.decodeK(pk);
        ref.decodeK(rk);
        paged.decodeV(pv);
        ref.decodeV(rv);
        EXPECT_TRUE(bitIdentical(pk.data(), rk.data())) << s->name();
        EXPECT_TRUE(bitIdentical(pv.data(), rv.data())) << s->name();
        pool.checkInvariants();
    }
}

TEST(PagedKvCache, ShareFromRefcountsFullBlocksAndCopiesThePartial)
{
    const size_t d = 16, B = 4;
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, d, B);
    auto donor = std::make_unique<serve::PagedKvCache>(pool);
    for (size_t i = 0; i < 10; ++i)
        donor->append(outlierRow(d, 500 + i), outlierRow(d, 600 + i));
    ASSERT_EQ(donor->blockCount(), 3u); // 4 + 4 + 2 rows

    serve::PagedKvCache sharer(pool);
    sharer.shareFrom(*donor, 9); // 2 full blocks + 1 CoW row
    EXPECT_EQ(sharer.length(), 9u);
    EXPECT_EQ(sharer.blockCount(), 3u);
    // Full prefix blocks are the donor's own, refcounted — no copy.
    EXPECT_EQ(sharer.blockId(0), donor->blockId(0));
    EXPECT_EQ(sharer.blockId(1), donor->blockId(1));
    EXPECT_EQ(pool.refcount(donor->blockId(0)), 2);
    EXPECT_EQ(pool.refcount(donor->blockId(1)), 2);
    // The partial boundary block is copy-on-write: a fresh block with
    // exactly the shared row copied into it.
    EXPECT_NE(sharer.blockId(2), donor->blockId(2));
    EXPECT_EQ(pool.refcount(sharer.blockId(2)), 1);
    EXPECT_EQ(pool.payloadCopyRows(), 1u);
    EXPECT_EQ(pool.sharedSavedBytes(), 2 * pool.blockBytes());

    // Shared rows decode bit-identical to the donor's prefix; the
    // sharer can append divergent rows without touching the donor.
    sharer.append(outlierRow(d, 700), outlierRow(d, 701));
    Tensor sk({10, d}), dk({10, d});
    sharer.decodeK(sk);
    donor->decodeK(dk);
    for (size_t i = 0; i < 9; ++i)
        EXPECT_TRUE(bitIdentical(sk.row(i), dk.row(i))) << i;
    EXPECT_FALSE(bitIdentical(sk.row(9), dk.row(9))); // diverged

    // Donor eviction releases its references; shared blocks survive
    // for the sharer, then die with it.
    donor.reset();
    EXPECT_EQ(pool.refcount(sharer.blockId(0)), 1);
    EXPECT_EQ(pool.sharedSavedBytes(), 0u);
    pool.checkInvariants();
}

// ----------------------------------------------------------- engine

TEST(ServeEngine, GreedyMatchesFullForwardReference)
{
    // With the FP32 cache, the engine's incremental greedy decode must
    // reproduce the naive full-recompute reference token for token.
    const eval::LmModel lm = tinyLm();
    std::vector<int> prompt = {5, 17, 3, 40, 22};
    const size_t max_new = 6;

    std::vector<int> ref_seq = prompt;
    std::vector<int> ref_generated;
    for (size_t i = 0; i < max_new; ++i) {
        const Tensor lg = lm.logits(ref_seq);
        const int tok = ops::argmaxRow(lg.row(lg.dim(0) - 1));
        ref_generated.push_back(tok);
        ref_seq.push_back(tok);
    }

    serve::ServeConfig cfg;
    cfg.cacheFormat = serve::KvCacheFormat::Fp32;
    serve::ServeEngine engine(lm, cfg);
    engine.submit(prompt, max_new);
    engine.runToCompletion(1000);
    ASSERT_EQ(engine.finished().size(), 1u);
    EXPECT_EQ(engine.finished()[0].generated, ref_generated);
}

TEST(ServeEngine, OutputsInvariantToSchedulingConfig)
{
    // Token outputs depend only on the model and the request — not on
    // batch width or the per-step token budget.
    const eval::LmModel lm = tinyLm(77);
    const auto prompts = randomPrompts(5, 9, lm.vocab, 8);
    const size_t max_new = 5;

    serve::ServeConfig wide;
    wide.maxBatchTokens = 64;
    wide.maxActiveRequests = 8;
    serve::ServeConfig narrow;
    narrow.maxBatchTokens = 2;
    narrow.maxActiveRequests = 2;
    serve::ServeConfig mid;
    mid.maxBatchTokens = 3;
    mid.maxActiveRequests = 3;

    // Finish ORDER legitimately depends on scheduling (a narrow batch
    // finishes early arrivals sooner), so compare per-request streams.
    const auto by_id = [&](serve::ServeConfig cfg) {
        serve::ServeEngine engine(lm, cfg);
        for (const auto &p : prompts)
            engine.submit(p, max_new);
        engine.runToCompletion(100000);
        std::map<u64, std::vector<int>> out;
        for (const serve::FinishedRequest &f : engine.finished())
            out[f.id] = f.generated;
        return out;
    };
    const auto a = by_id(wide);
    EXPECT_EQ(a, by_id(narrow));
    EXPECT_EQ(a, by_id(mid));
}

TEST(ServeEngine, ContinuousBatchingBookkeeping)
{
    const eval::LmModel lm = tinyLm(99);
    const auto prompts = randomPrompts(6, 7, lm.vocab, 9);
    const size_t max_new = 4;

    serve::ServeConfig cfg;
    cfg.maxBatchTokens = 4;
    cfg.maxActiveRequests = 2; // forces queueing + admission waves
    serve::ServeEngine engine(lm, cfg);
    size_t total_prompt = 0;
    for (const auto &p : prompts) {
        engine.submit(p, max_new);
        total_prompt += p.size();
    }
    EXPECT_EQ(engine.pendingCount(), prompts.size());
    engine.runToCompletion(100000);
    EXPECT_EQ(engine.pendingCount(), 0u);
    EXPECT_EQ(engine.activeCount(), 0u);
    ASSERT_EQ(engine.finished().size(), prompts.size());

    const serve::ServeMetrics &m = engine.metrics();
    EXPECT_EQ(m.tokensProcessed,
              total_prompt + prompts.size() * (max_new - 1));
    EXPECT_EQ(m.tokensGenerated, prompts.size() * max_new);
    EXPECT_EQ(m.stepSeconds.size(), m.steps);
    EXPECT_GT(m.peakEncodedCacheBytes, 0u);

    for (const serve::FinishedRequest &f : engine.finished()) {
        EXPECT_EQ(f.generated.size(), max_new);
        EXPECT_GE(f.firstTokenStep, f.admitStep);
        EXPECT_GE(f.finishStep, f.firstTokenStep);
        EXPECT_GT(f.cacheEncodedBytes, 0u);
        EXPECT_EQ(f.cacheFp32Bytes,
                  2 * (f.prompt.size() + max_new - 1) *
                      lm.backbone.dModel * sizeof(float) *
                      lm.backbone.layers.size());
        EXPECT_LE(f.cacheEncodedBytes, m.peakEncodedCacheBytes);
    }
}

TEST(ServeEngine, QuantizedCacheServesAndCompresses)
{
    const eval::LmModel lm = tinyLm(55);
    const auto prompts = randomPrompts(3, 6, lm.vocab, 10);
    serve::ServeConfig cfg;
    cfg.cacheFormat = serve::KvCacheFormat::Olive4;
    serve::ServeMetrics m;
    const auto tokens = serveWorkload(lm, cfg, prompts, 4, &m);
    EXPECT_FALSE(tokens.empty());
    for (int t : tokens)
        EXPECT_TRUE(t >= 0 && static_cast<size_t>(t) < lm.vocab);
    EXPECT_LE(static_cast<double>(m.peakEncodedCacheBytes),
              0.25 * static_cast<double>(m.peakFp32CacheBytes));
}

TEST(ServeEngine, StopTokensEndGenerationEarly)
{
    // Find what the model would greedily generate, then make its
    // second token a stop token: generation must end there (inclusive)
    // instead of running to the budget — identically in the paged and
    // contiguous engines, so data-dependent lengths do not perturb the
    // storage layer.
    const eval::LmModel lm = tinyLm(42);
    const std::vector<int> prompt = {7, 21, 3};
    const size_t max_new = 6;

    serve::ServeConfig plain;
    serve::ServeEngine probe(lm, plain);
    probe.submit(prompt, max_new);
    probe.runToCompletion(1000);
    const std::vector<int> full = probe.finished()[0].generated;
    ASSERT_EQ(full.size(), max_new);
    const int stop = full[1];

    for (bool paged : {true, false}) {
        serve::ServeConfig cfg;
        cfg.pagedCache = paged;
        serve::ServeEngine engine(lm, cfg);
        engine.submit(prompt, max_new, {stop});
        engine.runToCompletion(1000);
        ASSERT_EQ(engine.finished().size(), 1u);
        const serve::FinishedRequest &f = engine.finished()[0];
        EXPECT_TRUE(f.stoppedByToken) << paged;
        ASSERT_EQ(f.generated.size(), 2u) << paged;
        EXPECT_EQ(f.generated[0], full[0]);
        EXPECT_EQ(f.generated[1], stop);
    }
}

TEST(ServeEngine, StopTokenEvictionKeepsStreamsBitIdentical)
{
    // Data-dependent request lengths reshape eviction and admission
    // timing; the paged engine must still match the contiguous oracle
    // token for token.  Low-entropy stop sets make hits frequent.
    const eval::LmModel lm = tinyLm(43);
    const auto prompts = randomPrompts(6, 8, lm.vocab, 19);
    Rng rng(77);
    const auto by_id = [&](bool paged) {
        serve::ServeConfig cfg;
        cfg.pagedCache = paged;
        cfg.maxBatchTokens = 4;
        cfg.maxActiveRequests = 2;
        cfg.blockRows = 2;
        serve::ServeEngine engine(lm, cfg);
        Rng stops_rng(55);
        for (const auto &p : prompts) {
            std::vector<int> stops = {
                static_cast<int>(stops_rng.uniformInt(lm.vocab)),
                static_cast<int>(stops_rng.uniformInt(lm.vocab))};
            engine.submit(p, 6, stops);
        }
        engine.runToCompletion(100000);
        std::map<u64, std::vector<int>> out;
        size_t stopped = 0;
        for (const serve::FinishedRequest &f : engine.finished()) {
            out[f.id] = f.generated;
            stopped += f.stoppedByToken ? 1u : 0u;
        }
        EXPECT_GT(stopped, 0u); // the schedule is genuinely dynamic
        return out;
    };
    EXPECT_EQ(by_id(true), by_id(false));
}

TEST(ServeEngine, SharedPrefixShrinksPoolFootprint)
{
    // Requests sharing a long prompt prefix: with sharing on, later
    // requests reference the first request's prefix blocks instead of
    // re-caching them, so the pool's peak footprint drops strictly
    // below the unshared run while the token streams stay identical.
    const eval::LmModel lm = tinyLm(91);
    Rng rng(17);
    std::vector<int> prefix(16);
    for (auto &t : prefix)
        t = static_cast<int>(rng.uniformInt(lm.vocab));
    std::vector<std::vector<int>> prompts(5, prefix);
    for (auto &p : prompts) {
        p.push_back(static_cast<int>(rng.uniformInt(lm.vocab)));
        p.push_back(static_cast<int>(rng.uniformInt(lm.vocab)));
    }

    const auto run = [&](bool share, serve::ServeMetrics *m) {
        serve::ServeConfig cfg;
        cfg.prefixSharing = share;
        // Wide enough that every sharer overlaps the donor: a sharer
        // admitted only after its donor finished shares nothing (the
        // blocks died with the donor), which is correct but not what
        // this test wants to demonstrate.
        cfg.maxActiveRequests = prompts.size();
        cfg.maxBatchTokens = 8;
        serve::ServeEngine engine(lm, cfg);
        for (const auto &p : prompts)
            engine.submit(p, 4);
        engine.runToCompletion(100000);
        std::map<u64, std::vector<int>> out;
        size_t shared_reqs = 0;
        for (const serve::FinishedRequest &f : engine.finished()) {
            out[f.id] = f.generated;
            shared_reqs += f.sharedPrefixRows > 0 ? 1u : 0u;
        }
        if (share) {
            EXPECT_EQ(shared_reqs, prompts.size() - 1);
        }
        *m = engine.metrics();
        return out;
    };
    serve::ServeMetrics shared, unshared;
    const auto a = run(true, &shared);
    const auto b = run(false, &unshared);
    EXPECT_EQ(a, b); // sharing is invisible in the streams
    EXPECT_LT(shared.peakEncodedCacheBytes,
              unshared.peakEncodedCacheBytes);
    EXPECT_GT(shared.peakSharedSavedBytes, 0u);
    EXPECT_GT(shared.sharedPrefillRowsSkipped, 0u);
    // Admission/eviction copy nothing, ever; copy-on-write only.
    EXPECT_EQ(unshared.cowCopyRows, 0u);
    EXPECT_LE(shared.cowCopyRows,
              shared.sharedPrefillRowsSkipped);
}

TEST(ServeEngine, TinyPoolForcesAdmissionWavesButSameStreams)
{
    // A pool barely larger than one request's worst case serializes
    // admission through capacity waves; outputs must not change.
    const eval::LmModel lm = tinyLm(92);
    const auto prompts = randomPrompts(5, 7, lm.vocab, 23);
    const size_t max_new = 4;

    const auto run = [&](size_t pool_blocks) {
        serve::ServeConfig cfg;
        cfg.poolBlocks = pool_blocks;
        cfg.blockRows = 2;
        cfg.prefixSharing = false;
        serve::ServeEngine engine(lm, cfg);
        for (const auto &p : prompts)
            engine.submit(p, max_new);
        engine.runToCompletion(100000);
        std::map<u64, std::vector<int>> out;
        for (const serve::FinishedRequest &f : engine.finished())
            out[f.id] = f.generated;
        return out;
    };
    // Worst case for one request: ceil((7 + 4 - 1) / 2) * layers.
    const size_t w_max = ((7 + max_new - 1 + 1) / 2) *
                         lm.backbone.layers.size();
    const auto waves = run(w_max);
    EXPECT_EQ(waves, run(0));
}

TEST(ServeEngine, PerTokenActivationSchemeSupported)
{
    const eval::LmModel lm = tinyLm(60);
    OliveScheme olive8(8);
    serve::ServeConfig cfg;
    cfg.actScheme = &olive8;
    const auto prompts = randomPrompts(2, 5, lm.vocab, 11);
    const auto tokens = serveWorkload(lm, cfg, prompts, 3);
    EXPECT_EQ(tokens.size(), 2u * (1 + 3));
}

// ------------------------------------------- batched prefill + spec

TEST(ServeEngine, PrefillChunkIsTokenStreamInvisible)
{
    // The prefill chunk size is pure scheduling: 0 and 1 run the
    // token-by-token oracle loop, larger values the batched
    // forwardChunk path, and every setting must emit identical
    // streams.  TTFT bookkeeping rides along: one sample per request.
    const eval::LmModel lm = tinyLm(90);
    const auto prompts = randomPrompts(4, 9, lm.vocab, 16);
    serve::ServeConfig base;
    base.maxBatchTokens = 12;
    base.prefillChunk = 0;
    const auto oracle = serveWorkload(lm, base, prompts, 4);
    for (size_t chunk : {1u, 2u, 5u, 32u}) {
        serve::ServeConfig cfg = base;
        cfg.prefillChunk = chunk;
        serve::ServeMetrics m;
        EXPECT_EQ(serveWorkload(lm, cfg, prompts, 4, &m), oracle)
            << "prefillChunk=" << chunk;
        EXPECT_EQ(m.ttftSeconds.size(), prompts.size());
        EXPECT_GE(m.ttftMs(0.5), 0.0);
    }
}

TEST(ServeEngine, SpeculationIsTokenStreamInvisible)
{
    // A periodic prompt gives the n-gram proposer something to chew
    // on; whatever it drafts, the streams must match plain greedy
    // decode and the drafted/accepted counters must reconcile.
    const eval::LmModel lm = tinyLm(91);
    std::vector<std::vector<int>> prompts;
    for (int r = 0; r < 3; ++r) {
        std::vector<int> p;
        for (int i = 0; i < 12; ++i)
            p.push_back(10 + r * 3 + i % 3); // 3-periodic pattern
        prompts.push_back(std::move(p));
    }
    serve::ServeConfig plain;
    plain.maxBatchTokens = 16;
    const auto oracle = serveWorkloadById(lm, plain, prompts, 8);
    serve::ServeConfig spec = plain;
    spec.speculate = true;
    for (size_t draft : {1u, 3u, 4u}) {
        spec.draftLen = draft;
        serve::ServeMetrics m;
        EXPECT_EQ(serveWorkloadById(lm, spec, prompts, 8, &m), oracle)
            << "draftLen=" << draft;
        EXPECT_GT(m.specDrafted, 0u) << draft;
        EXPECT_GE(m.specDrafted, m.specAccepted);
        EXPECT_EQ(m.specAcceptRate(),
                  static_cast<double>(m.specAccepted) /
                      static_cast<double>(m.specDrafted));
    }
}

TEST(ServeEngine, ExternalProposerIsUsedVerbatim)
{
    // A deliberately terrible proposer (always drafts token 0) may
    // slow decoding down but can never change a stream — the verify
    // step only accepts what greedy would have produced anyway.
    struct ZeroProposer final : serve::Proposer
    {
        std::string name() const override { return "zero"; }
        std::vector<int> propose(std::span<const int>,
                                 size_t max_draft) const override
        {
            return std::vector<int>(max_draft, 0);
        }
    };
    const eval::LmModel lm = tinyLm(92);
    const auto prompts = randomPrompts(3, 7, lm.vocab, 17);
    serve::ServeConfig plain;
    plain.maxBatchTokens = 10;
    const auto oracle = serveWorkloadById(lm, plain, prompts, 5);
    ZeroProposer zero;
    serve::ServeConfig spec = plain;
    spec.speculate = true;
    spec.draftLen = 2;
    spec.proposer = &zero;
    serve::ServeMetrics m;
    EXPECT_EQ(serveWorkloadById(lm, spec, prompts, 5, &m), oracle);
    EXPECT_GT(m.specDrafted, 0u);
}

TEST(ServeEngineDeathTest, SpeculateRequiresPositiveDraftLen)
{
    const eval::LmModel lm = tinyLm(93);
    serve::ServeConfig cfg;
    cfg.speculate = true;
    cfg.draftLen = 0;
    EXPECT_DEATH(serve::ServeEngine(lm, cfg), "draftLen >= 1");
}

// ---------------------------------------------------------- proposer

TEST(NgramProposer, DraftsTheLoopContinuation)
{
    const serve::NgramProposer p;
    // Suffix [2,3,1,2] recurs at the start; the tokens after that
    // occurrence are the draft.
    const std::vector<int> h = {1, 2, 3, 1, 2, 3, 1, 2};
    EXPECT_EQ(p.propose(h, 4), (std::vector<int>{3, 1, 2}));
    EXPECT_EQ(p.propose(h, 2), (std::vector<int>{3, 1}));
}

TEST(NgramProposer, MostRecentOccurrenceWins)
{
    const serve::NgramProposer p;
    // [1,2] occurs twice before the suffix; the later one (followed
    // by 9) is the loop the stream is most plausibly in.
    const std::vector<int> h = {7, 1, 2, 5, 1, 2, 9, 1, 2};
    EXPECT_EQ(p.propose(h, 3), (std::vector<int>{9, 1, 2}));
    EXPECT_EQ(p.propose(h, 1), (std::vector<int>{9}));
}

TEST(NgramProposer, NoMatchNoShortHistoryNoZeroBudget)
{
    const serve::NgramProposer p;
    EXPECT_TRUE(p.propose(std::vector<int>{1, 2, 3, 4, 5}, 4).empty());
    EXPECT_TRUE(p.propose(std::vector<int>{}, 4).empty());
    EXPECT_TRUE(p.propose(std::vector<int>{3}, 4).empty());
    EXPECT_TRUE(p.propose(std::vector<int>{1, 2, 1, 2}, 0).empty());
}

TEST(NgramProposer, FactoryAndWindowValidation)
{
    const auto p = serve::makeProposer("ngram");
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->name(), "ngram");
    EXPECT_DEATH((void)serve::makeProposer("bogus"), "unknown proposer");
    EXPECT_DEATH(serve::NgramProposer(0), "1 <= min <= max");
    EXPECT_DEATH(serve::NgramProposer(2, 3), "1 <= min <= max");
}

// -------------------------------------------------------- eval hook

TEST(CacheImpact, Fp32IsExactAndMatchesPerplexityEval)
{
    const eval::LmModel lm = tinyLm(70);
    Rng rng(12);
    const eval::TokenData text = eval::sampleText(lm, 2, 8, rng);
    const serve::Fp32KvScheme fp32;
    const serve::CacheImpact impact = serve::cacheImpact(lm, text, fp32);
    EXPECT_EQ(impact.hiddenMse, 0.0);
    EXPECT_EQ(impact.logitMse, 0.0);
    EXPECT_DOUBLE_EQ(impact.perplexity, eval::perplexity(lm, text));
    EXPECT_EQ(impact.encodedBytes, impact.fp32Bytes);
}

TEST(CacheImpact, QuantizedCacheTradesExactnessForBytes)
{
    const eval::LmModel lm = tinyLm(71);
    Rng rng(13);
    const eval::TokenData text = eval::sampleText(lm, 2, 8, rng);
    const serve::OvpKvScheme olive4(4);
    const serve::Int8KvScheme int8;
    const auto i4 = serve::cacheImpact(lm, text, olive4);
    const auto i8 = serve::cacheImpact(lm, text, int8);
    for (const serve::CacheImpact *c : {&i4, &i8}) {
        EXPECT_GT(c->hiddenMse, 0.0);
        EXPECT_TRUE(std::isfinite(c->perplexity));
        EXPECT_GE(c->perplexity, 1.0);
        EXPECT_LT(c->compression(), 0.5);
    }
    EXPECT_LE(i4.compression(), 0.25);
}

// ----------------------------------------------------- determinism

TEST(ServeDeterminism, TokenStreamsBitIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const eval::LmModel lm = tinyLm(80);
    const auto prompts = randomPrompts(4, 8, lm.vocab, 14);
    for (serve::KvCacheFormat fmt :
         {serve::KvCacheFormat::Fp32, serve::KvCacheFormat::Olive4}) {
        serve::ServeConfig cfg;
        cfg.cacheFormat = fmt;
        cfg.maxBatchTokens = 6;
        cfg.maxActiveRequests = 3;

        par::setThreadCount(1);
        serve::ServeMetrics m1;
        const auto serial = serveWorkload(lm, cfg, prompts, 5, &m1);
        // 0 = the ambient OLIVE_THREADS default, so the ctest "serve"
        // legs (OLIVE_THREADS=1 and =8) exercise both pool shapes.
        for (size_t threads : {2u, 0u}) {
            par::setThreadCount(threads);
            serve::ServeMetrics m2;
            EXPECT_EQ(serveWorkload(lm, cfg, prompts, 5, &m2), serial)
                << threads;
            EXPECT_EQ(m1.tokensProcessed, m2.tokensProcessed);
            EXPECT_EQ(m1.peakEncodedCacheBytes, m2.peakEncodedCacheBytes);
        }
    }
}

TEST(ServeDeterminism, DecodeStepBitIdenticalAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const eval::LmModel lm = tinyLm(81);
    const serve::OvpKvScheme olive4(4);
    Rng rng(15);
    Tensor x({1, lm.backbone.dModel});

    par::setThreadCount(1);
    serve::DecodeState s1 = serve::makeDecodeState(lm.backbone, olive4);
    std::vector<Tensor> ref;
    std::vector<Tensor> inputs;
    for (size_t t = 0; t < 6; ++t) {
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian());
        inputs.push_back(x.clone());
        ref.push_back(lm.backbone.forwardStep(x, s1));
    }
    for (size_t threads : {2u, 0u}) {
        par::setThreadCount(threads);
        serve::DecodeState s2 = serve::makeDecodeState(lm.backbone, olive4);
        for (size_t t = 0; t < 6; ++t) {
            const Tensor h = lm.backbone.forwardStep(inputs[t], s2);
            EXPECT_TRUE(bitIdentical(h.data(), ref[t].data()))
                << threads << ":" << t;
        }
    }
}

// ------------------------------------------------- metrics percentiles

// The percentile accessors must be well-defined numbers at the edge
// populations the serving front end reads them at: zero finished
// requests (a stats op before the first step) and exactly one sample.
TEST(ServeMetrics, PercentilesWellDefinedAtZeroAndOneSample)
{
    serve::ServeMetrics m;
    for (const double p : {50.0, 99.0, 0.0, 100.0}) {
        EXPECT_EQ(m.stepLatencyMs(p), 0.0) << p; // empty: 0, not NaN
        EXPECT_EQ(m.ttftMs(p), 0.0) << p;
    }
    EXPECT_EQ(m.specAcceptRate(), 0.0); // nothing drafted yet
    EXPECT_EQ(m.generatedPerSecond(), 0.0);

    // One sample: every percentile is that sample (no interpolation
    // partner, no out-of-range index).
    m.stepSeconds.push_back(0.002f);
    m.ttftSeconds.push_back(0.004f);
    for (const double p : {0.0, 50.0, 99.0, 100.0}) {
        EXPECT_FLOAT_EQ(static_cast<float>(m.stepLatencyMs(p)), 2.0f)
            << p;
        EXPECT_FLOAT_EQ(static_cast<float>(m.ttftMs(p)), 4.0f) << p;
    }
}

TEST(ServeMetrics, EnginePercentilesFiniteAfterSingleRequest)
{
    const eval::LmModel lm = tinyLm(82);
    serve::ServeEngine engine(lm, {});
    // Before any work: the live stats read must already be valid.
    serve::ServeMetrics m = engine.metricsSnapshot();
    EXPECT_EQ(m.ttftMs(50.0), 0.0);
    EXPECT_EQ(m.stepLatencyMs(99.0), 0.0);

    engine.submit({1, 2, 3}, 4);
    engine.runToCompletion(1000);
    m = engine.metricsSnapshot();
    ASSERT_EQ(m.ttftSeconds.size(), 1u);
    for (const double p : {50.0, 99.0}) {
        EXPECT_TRUE(std::isfinite(m.ttftMs(p))) << p;
        EXPECT_TRUE(std::isfinite(m.stepLatencyMs(p))) << p;
        EXPECT_GE(m.ttftMs(p), 0.0) << p;
    }
    EXPECT_LE(m.stepLatencyMs(50.0), m.stepLatencyMs(99.0));
}

// --------------------------------------------------------- cancel, priority

// Cancelling a still-pending request retires it with zero generated
// tokens and no admission step; the schedule of everything else is
// untouched.
TEST(ServeEngine, CancelPendingRequestRetiresWithoutTokens)
{
    const eval::LmModel lm = tinyLm(83);
    serve::ServeConfig cfg;
    cfg.maxActiveRequests = 1;
    serve::ServeEngine engine(lm, cfg);
    const auto prompts = randomPrompts(2, 6, lm.vocab, 21);
    const u64 first = engine.submit(prompts[0], 4);
    const u64 second = engine.submit(prompts[1], 4);
    ASSERT_TRUE(engine.step()); // admits first; second stays pending
    EXPECT_EQ(engine.pendingCount(), 1u);

    EXPECT_FALSE(engine.cancel(9999)); // unknown id: no effect
    EXPECT_TRUE(engine.cancel(second));
    EXPECT_FALSE(engine.cancel(second)); // already retired
    EXPECT_EQ(engine.pendingCount(), 0u);

    engine.runToCompletion(1000);
    ASSERT_EQ(engine.finishedCount(), 2u);
    const serve::FinishedRequest &f = engine.finished()[0];
    EXPECT_EQ(f.id, second); // retired at cancel time, before first
    EXPECT_TRUE(f.cancelled);
    EXPECT_TRUE(f.generated.empty());
    EXPECT_EQ(f.admitStep, 0u); // never admitted
    EXPECT_FALSE(engine.finished()[1].cancelled);
    EXPECT_EQ(engine.finished()[1].id, first);
    EXPECT_EQ(engine.metricsSnapshot().requestsCancelled, 1u);
}

// Cancelling an active request mid-generation frees its blocks AND its
// worst-case reservation: a pool sized for exactly one resident
// request can then admit the next one.
TEST(ServeEngine, CancelActiveRequestReleasesBlocksAndReservation)
{
    const eval::LmModel lm = tinyLm(84);
    serve::ServeConfig cfg;
    cfg.maxActiveRequests = 4;
    cfg.blockRows = 4;
    cfg.poolBlocks = 4; // one request's worst case, exactly
    serve::ServeEngine engine(lm, cfg);
    const u64 first = engine.submit({1, 2, 3, 4}, 4);
    const u64 second = engine.submit({5, 6, 7, 8}, 4);
    ASSERT_TRUE(engine.step());
    ASSERT_TRUE(engine.step());
    EXPECT_EQ(engine.activeCount(), 1u); // capacity blocks the second
    EXPECT_EQ(engine.pendingCount(), 1u);
    EXPECT_GT(engine.blockPool()->blocksInUse(), 0u);

    EXPECT_TRUE(engine.cancel(first));
    EXPECT_EQ(engine.activeCount(), 0u);
    EXPECT_EQ(engine.blockPool()->blocksInUse(), 0u); // all released
    engine.blockPool()->checkInvariants();

    engine.runToCompletion(1000); // the reservation is free again
    ASSERT_EQ(engine.finishedCount(), 2u);
    EXPECT_TRUE(engine.finished()[0].cancelled);
    EXPECT_EQ(engine.finished()[0].id, first);
    EXPECT_GE(engine.finished()[0].generated.size(), 1u); // mid-stream
    const serve::FinishedRequest &f = engine.finished()[1];
    EXPECT_EQ(f.id, second);
    EXPECT_FALSE(f.cancelled);
    EXPECT_EQ(f.generated.size(), 4u);
    EXPECT_EQ(engine.blockPool()->blocksInUse(), 0u);
    engine.blockPool()->checkInvariants();
}

// Higher priority jumps the admission queue; ties keep FIFO order, so
// all-default submissions reproduce the historical schedule exactly.
TEST(ServeEngine, PriorityOrdersAdmissionWithFifoTies)
{
    const eval::LmModel lm = tinyLm(85);
    const auto prompts = randomPrompts(3, 6, lm.vocab, 22);
    serve::ServeConfig cfg;
    cfg.maxActiveRequests = 1;

    serve::ServeEngine engine(lm, cfg);
    const u64 a = engine.submit(prompts[0], 3, {}, 0);
    const u64 b = engine.submit(prompts[1], 3, {}, 1);
    const u64 c = engine.submit(prompts[2], 3, {}, 1);
    EXPECT_EQ(engine.pendingIds(), (std::vector<u64>{b, c, a}));
    engine.runToCompletion(1000);
    ASSERT_EQ(engine.finishedCount(), 3u);
    EXPECT_EQ(engine.finished()[0].id, b);
    EXPECT_EQ(engine.finished()[1].id, c);
    EXPECT_EQ(engine.finished()[2].id, a);

    // Default priorities: bit-identical streams and finish order to
    // the pre-priority engine (the determinism contract's schedule).
    const auto byId = serveWorkloadById(lm, cfg, prompts, 3);
    serve::ServeEngine plain(lm, cfg);
    for (const auto &p : prompts)
        plain.submit(p, 3);
    plain.runToCompletion(1000);
    for (const serve::FinishedRequest &f : plain.finished())
        EXPECT_EQ(f.generated, byId.at(f.id));
}

// ------------------------------------------------ cached-prefix retention

// Retention defaults to off, and off means off: retiring requests
// release every block and the retention counters never move.
TEST(ServeRetention, DisabledByDefaultReleasesEverything)
{
    const eval::LmModel lm = tinyLm(86);
    EXPECT_FALSE(serve::ServeConfig{}.retainPrefixes);
    serve::ServeEngine engine(lm, {});
    engine.submit({1, 2, 3, 4, 5, 6}, 4);
    engine.runToCompletion(1000);
    EXPECT_EQ(engine.blockPool()->blocksInUse(), 0u);
    EXPECT_EQ(engine.blockPool()->retainedBlocks(), 0u);
    EXPECT_EQ(engine.retainedBlockCount(), 0u);
    EXPECT_EQ(engine.metricsSnapshot().retentionStored, 0u);
    engine.blockPool()->checkInvariants();
}

// The multi-turn chat pattern: a follow-up request extending a RETIRED
// request's prompt + reply seeds from the retention LRU with no live
// donor, skips the shared prefill rows, and still generates the
// bit-identical stream a retention-free engine produces.
TEST(ServeRetention, SharesFromRetiredDonorBitExactly)
{
    const eval::LmModel lm = tinyLm(87);
    const auto prompts = randomPrompts(1, 5, lm.vocab, 31);
    std::vector<int> first = prompts[0];
    first.push_back(7); // length >= 2 so a block-aligned prefix exists

    const auto run = [&](bool retain, serve::ServeMetrics *m) {
        serve::ServeConfig cfg;
        cfg.retainPrefixes = retain;
        cfg.blockRows = 2;
        serve::ServeEngine engine(lm, cfg);
        engine.submit(first, 4);
        engine.runToCompletion(1000);
        // The donor is fully retired before the follow-up exists.
        EXPECT_EQ(engine.activeCount(), 0u);
        std::vector<int> follow = first;
        const auto &ga = engine.finished()[0].generated;
        follow.insert(follow.end(), ga.begin(), ga.end());
        follow.push_back(3);
        engine.submit(follow, 4);
        engine.runToCompletion(1000);
        *m = engine.metricsSnapshot();
        const serve::FinishedRequest &f = engine.finished()[1];
        if (retain) {
            EXPECT_GT(f.sharedPrefixRows, 0u);
        } else {
            EXPECT_EQ(f.sharedPrefixRows, 0u);
        }
        return f.generated;
    };
    serve::ServeMetrics on, off;
    const auto a = run(true, &on);
    const auto b = run(false, &off);
    EXPECT_EQ(a, b); // retention is invisible in the streams
    EXPECT_EQ(on.retentionStored, 2u); // both retirements parked
    EXPECT_EQ(on.retentionHits, 1u);
    EXPECT_GT(on.retentionSharedRows, 0u);
    EXPECT_EQ(on.retentionSharedRows, on.sharedPrefillRowsSkipped);
    EXPECT_EQ(off.retentionStored, 0u);
    EXPECT_EQ(off.retentionHits, 0u);
}

// The retainBlocks budget is a hard cap: storing a new entry evicts
// oldest-first until it fits, and the held-block count never exceeds
// the budget.
TEST(ServeRetention, RetainBlocksCapEvictsOldest)
{
    const eval::LmModel lm = tinyLm(88);
    // Equal-length prompts: both retirements park equal-sized entries,
    // so a one-entry budget must evict (an OVERSIZED entry would be
    // skipped instead — that path is pinned separately below).
    const std::vector<std::vector<int>> prompts = {{1, 2, 3, 4, 5, 6},
                                                   {9, 8, 7, 6, 5, 4}};

    // Learn one entry's size from an unbounded engine first.
    serve::ServeConfig cfg;
    cfg.retainPrefixes = true;
    cfg.blockRows = 2;
    size_t entry_blocks = 0;
    {
        serve::ServeEngine probe(lm, cfg);
        probe.submit(prompts[0], 3);
        probe.runToCompletion(1000);
        entry_blocks = probe.retainedBlockCount();
        ASSERT_GT(entry_blocks, 0u);
    }
    // Budget for roughly one entry: the second retirement must evict
    // the first, and the count must never exceed the cap.
    cfg.retainBlocks = entry_blocks;
    serve::ServeEngine engine(lm, cfg);
    for (const auto &p : prompts) {
        engine.submit(p, 3);
        engine.runToCompletion(1000);
        EXPECT_LE(engine.retainedBlockCount(), cfg.retainBlocks);
    }
    const serve::ServeMetrics m = engine.metricsSnapshot();
    EXPECT_EQ(m.retentionStored, 2u);
    EXPECT_GE(m.retentionEvictions, 1u);
    engine.blockPool()->checkInvariants();

    // An entry larger than the whole budget is simply not retained.
    serve::ServeConfig tiny_cfg = cfg;
    tiny_cfg.retainBlocks = 1;
    serve::ServeEngine tiny(lm, tiny_cfg);
    tiny.submit(prompts[0], 3);
    tiny.runToCompletion(1000);
    EXPECT_EQ(tiny.metricsSnapshot().retentionStored, 0u);
    EXPECT_EQ(tiny.blockPool()->blocksInUse(), 0u);
}

// Retained blocks sit outside the admission reservation sum, so the
// capacity gate evicts them before it ever stalls: a pool with room
// for exactly one request admits the follow-up immediately even when
// retention holds the whole pool.
TEST(ServeRetention, PoolPressureEvictsRetainedBeforeStall)
{
    const eval::LmModel lm = tinyLm(89);
    serve::ServeConfig cfg;
    cfg.retainPrefixes = true;
    cfg.blockRows = 4;
    // Worst case for one request: ceil((4 + 4 - 1) / 4) * 2 layers.
    cfg.poolBlocks = 2 * lm.backbone.layers.size();
    serve::ServeEngine engine(lm, cfg);
    engine.submit({1, 2, 3, 4}, 4);
    engine.runToCompletion(1000);
    EXPECT_GT(engine.blockPool()->retainedBlocks(), 0u);

    // An unrelated request needing the whole pool: admission must
    // evict the retained prefix and admit on the next step, never
    // stall (retention can only save work, never delay admission).
    engine.submit({9, 10, 11, 12}, 4);
    ASSERT_TRUE(engine.step());
    EXPECT_EQ(engine.activeCount(), 1u); // admitted, no stall
    EXPECT_EQ(engine.pendingCount(), 0u);
    engine.runToCompletion(1000);
    ASSERT_EQ(engine.finishedCount(), 2u);
    EXPECT_EQ(engine.finished()[1].generated.size(), 4u);
    EXPECT_GE(engine.metricsSnapshot().retentionEvictions, 1u);
    engine.blockPool()->checkInvariants();
}

// clearRetainedPrefixes drops every reference: the drained pool goes
// back to zero blocks in use and the byte accounting follows.
TEST(ServeRetention, ClearReleasesAllRetainedBlocks)
{
    const eval::LmModel lm = tinyLm(95);
    serve::ServeConfig cfg;
    cfg.retainPrefixes = true;
    cfg.blockRows = 2;
    serve::ServeEngine engine(lm, cfg);
    for (const auto &p : randomPrompts(2, 6, lm.vocab, 35)) {
        engine.submit(p, 3);
        engine.runToCompletion(1000);
    }
    const serve::BlockPool *pool = engine.blockPool();
    // Everything still alive is alive only because retention holds it.
    EXPECT_GT(pool->retainedBlocks(), 0u);
    EXPECT_EQ(pool->blocksInUse(), pool->retainedBlocks());
    EXPECT_GT(pool->retainedBytes(), 0u);
    EXPECT_GE(engine.retainedBlockCount(), pool->retainedBlocks());
    pool->checkInvariants();

    engine.clearRetainedPrefixes();
    EXPECT_EQ(pool->blocksInUse(), 0u);
    EXPECT_EQ(pool->retainedBlocks(), 0u);
    EXPECT_EQ(pool->retainedBytes(), 0u);
    EXPECT_EQ(engine.retainedBlockCount(), 0u);
    EXPECT_EQ(engine.metricsSnapshot().retentionEvictions, 2u);
    pool->checkInvariants();
}

} // namespace
} // namespace olive
