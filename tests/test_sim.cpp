/**
 * @file
 * Tests of the performance/energy simulators: design descriptors, model
 * mechanics (precision-scaled throughput, L2 panel passes, iso-area PE
 * counts), and the qualitative orderings the paper's Figs. 9/10 rest on.
 */

#include <gtest/gtest.h>

#include "models/config.hpp"
#include "models/workload.hpp"
#include "sim/design.hpp"
#include "sim/gpu.hpp"
#include "sim/runner.hpp"
#include "sim/systolic.hpp"

namespace olive {
namespace {

// ---------------------------------------------------------------- designs

TEST(Design, GpuDescriptors)
{
    EXPECT_EQ(sim::gpuOlive().computeBits, 4.0);
    EXPECT_EQ(sim::gpuInt8().computeBits, 8.0);
    EXPECT_TRUE(sim::gpuGobo().fp16Compute);
    EXPECT_EQ(sim::gpuGobo().weightBitsOnchip, 16.0)
        << "GOBO decompresses only at the DRAM boundary";
    EXPECT_NEAR(sim::gpuAnt().int8Fraction, 0.8, 1e-9);
    EXPECT_EQ(sim::figure9Designs().size(), 4u);
}

TEST(Design, AccelDescriptors)
{
    EXPECT_NEAR(sim::accelOlaccel().controllerAreaFrac, 0.71 / 1.71, 1e-6);
    EXPECT_GT(sim::accelAdafloat().peAreaUm2,
              3.0 * sim::accelOlive().peAreaUm2);
    EXPECT_EQ(sim::figure10Designs().size(), 4u);
}

// -------------------------------------------------------------- GPU model

TEST(GpuModel, OliveFasterThanFp16)
{
    const sim::GpuModel model;
    const auto ops = models::inferenceGemms(models::bertBase());
    const double fp16 = model.run(ops, sim::gpuFp16()).cycles;
    const double olive = model.run(ops, sim::gpuOlive()).cycles;
    EXPECT_GT(fp16 / olive, 2.5);
    EXPECT_LT(fp16 / olive, 8.0);
}

TEST(GpuModel, SpeedupOrderingMatchesFig9)
{
    const sim::GpuModel model;
    for (const auto &config : models::figureModels()) {
        const auto ops = models::inferenceGemms(config);
        const double fp16 = model.run(ops, sim::gpuFp16()).cycles;
        const double olive = fp16 / model.run(ops, sim::gpuOlive()).cycles;
        const double ant = fp16 / model.run(ops, sim::gpuAnt()).cycles;
        const double int8 = fp16 / model.run(ops, sim::gpuInt8()).cycles;
        const double gobo = fp16 / model.run(ops, sim::gpuGobo()).cycles;
        EXPECT_GT(olive, ant) << config.name;
        EXPECT_GT(ant, gobo) << config.name;
        EXPECT_GT(int8, gobo) << config.name;
    }
}

TEST(GpuModel, EnergyOrderingMatchesFig9b)
{
    const sim::GpuModel model;
    const auto ops = models::inferenceGemms(models::gpt2Xl());
    const double olive = model.run(ops, sim::gpuOlive()).energy.total();
    const double ant = model.run(ops, sim::gpuAnt()).energy.total();
    const double int8 = model.run(ops, sim::gpuInt8()).energy.total();
    const double gobo = model.run(ops, sim::gpuGobo()).energy.total();
    EXPECT_LT(olive, ant);
    EXPECT_LT(ant, gobo);
    EXPECT_LT(int8, gobo);
}

TEST(GpuModel, EnergyBreakdownComponentsPositive)
{
    const sim::GpuModel model;
    const auto ops = models::inferenceGemms(models::bertBase());
    const auto e = model.run(ops, sim::gpuOlive()).energy;
    EXPECT_GT(e.constant, 0.0);
    EXPECT_GT(e.staticE, 0.0);
    EXPECT_GT(e.dramL2, 0.0);
    EXPECT_GT(e.l1Reg, 0.0);
    EXPECT_GT(e.core, 0.0);
}

TEST(GpuModel, LargerModelsGainMoreForOlive)
{
    // The L2 panel effect: FP16 panels of the big LLMs overflow L2 and
    // re-stream A, so 4-bit OliVe gains more on BLOOM than on BERT.
    const sim::GpuModel model;
    auto speedup = [&](const models::ModelConfig &c) {
        const auto ops = models::inferenceGemms(c);
        return model.run(ops, sim::gpuFp16()).cycles /
               model.run(ops, sim::gpuOlive()).cycles;
    };
    EXPECT_GT(speedup(models::bloom7b1()), speedup(models::bertBase()));
}

// -------------------------------------------------------- systolic model

TEST(SystolicModel, IsoAreaPeCounts)
{
    const sim::SystolicModel model;
    // OliVe fits its published 4096 PEs in the budget by construction.
    EXPECT_NEAR(model.peCount(sim::accelOlive()), 4096.0, 1.0);
    // AdaptivFloat's 4x PE can only fit ~1/4 the count.
    EXPECT_LT(model.peCount(sim::accelAdafloat()), 1100.0);
    // OLAccel loses the controller fraction.
    EXPECT_LT(model.peCount(sim::accelOlaccel()),
              model.peCount(sim::accelOlive()));
}

TEST(SystolicModel, SpeedupOrderingMatchesFig10)
{
    const sim::SystolicModel model;
    for (const auto &config : models::figureModels()) {
        const auto ops = models::inferenceGemms(config);
        const double ada = model.run(ops, sim::accelAdafloat()).cycles;
        const double olive = ada / model.run(ops, sim::accelOlive()).cycles;
        const double ant = ada / model.run(ops, sim::accelAnt()).cycles;
        const double ola = ada / model.run(ops, sim::accelOlaccel()).cycles;
        EXPECT_GT(olive, 2.0 * ant) << config.name;
        EXPECT_GT(olive, 2.0 * ola) << config.name;
        EXPECT_GT(ant, 0.9) << config.name;
        EXPECT_GT(ola, 0.9) << config.name;
    }
}

TEST(SystolicModel, EnergyOrderingMatchesFig10b)
{
    const sim::SystolicModel model;
    const auto ops = models::inferenceGemms(models::bertLarge());
    const double olive = model.run(ops, sim::accelOlive()).energy.total();
    const double ant = model.run(ops, sim::accelAnt()).energy.total();
    const double ola = model.run(ops, sim::accelOlaccel()).energy.total();
    const double ada = model.run(ops, sim::accelAdafloat()).energy.total();
    EXPECT_LT(olive, ola);
    EXPECT_LT(ola, ant);
    EXPECT_LT(ant, ada * 1.05);
}

// ----------------------------------------------------------------- runner

TEST(Runner, Figure9GeomeansInPaperRegime)
{
    const auto fig9 = sim::runFigure9();
    ASSERT_EQ(fig9.designs.size(), 4u);
    const auto &olive = fig9.designs[0];
    const auto &ant = fig9.designs[1];
    const auto &int8 = fig9.designs[2];
    const auto &gobo = fig9.designs[3];
    EXPECT_EQ(olive.design, "OliVe");

    // Paper: OliVe beats GOBO by ~4.5x, int8 by ~2.7x, ANT by ~2.4x.
    const double vs_gobo = olive.speedupGeomean / gobo.speedupGeomean;
    const double vs_int8 = olive.speedupGeomean / int8.speedupGeomean;
    const double vs_ant = olive.speedupGeomean / ant.speedupGeomean;
    EXPECT_GT(vs_gobo, 3.0);
    EXPECT_LT(vs_gobo, 6.5);
    EXPECT_GT(vs_int8, 1.7);
    EXPECT_LT(vs_int8, 4.0);
    EXPECT_GT(vs_ant, 1.5);
    EXPECT_LT(vs_ant, 3.6);

    // Energy normalized to GOBO: OliVe lowest (paper 0.25).
    EXPECT_LT(olive.energyGeomean, 0.45);
    EXPECT_LT(olive.energyGeomean, ant.energyGeomean);
    EXPECT_LT(ant.energyGeomean, 1.0);
    EXPECT_NEAR(gobo.energyGeomean, 1.0, 1e-9);
}

TEST(Runner, Figure10GeomeansInPaperRegime)
{
    const auto fig10 = sim::runFigure10();
    ASSERT_EQ(fig10.designs.size(), 4u);
    const auto &olive = fig10.designs[0];
    const auto &ant = fig10.designs[1];
    const auto &ola = fig10.designs[2];
    const auto &ada = fig10.designs[3];

    // Paper: OliVe ~4.8x over AdaFloat, ~3.8x over OLAccel, ~3.7x over
    // ANT; AdaFloat is the normalization (speedup 1.0).
    EXPECT_NEAR(ada.speedupGeomean, 1.0, 1e-9);
    EXPECT_GT(olive.speedupGeomean, 3.4);
    EXPECT_LT(olive.speedupGeomean, 6.5);
    EXPECT_GT(olive.speedupGeomean / ola.speedupGeomean, 2.4);
    EXPECT_GT(olive.speedupGeomean / ant.speedupGeomean, 2.4);

    // Energy normalized to AdaFloat: OliVe lowest (paper 0.27), OLAccel
    // (0.56) below ANT (0.88).
    EXPECT_LT(olive.energyGeomean, 0.45);
    EXPECT_LT(olive.energyGeomean, ola.energyGeomean);
    EXPECT_LT(ola.energyGeomean, ant.energyGeomean);
    EXPECT_LT(ant.energyGeomean, 1.1);
}

} // namespace
} // namespace olive
