/**
 * @file
 * Concurrency stress tier (CTest label "race"): hammers every
 * cross-thread seam of the serving stack with real std::threads so the
 * TSan build has races to find and the mutex/atomic protocols have
 * witnesses.  Six seams, matching the documented lock inventory:
 *
 *  1. DecodedBlockCache acquire/release churn over overlapping block
 *     ids, with a capacity cap small enough to force constant eviction
 *     and an invariant-checker thread sampling mid-flight.
 *  2. BlockPool release-hook invalidation (pool mutex held, cache mutex
 *     taken inside it) racing lease readers of other blocks.
 *  3. Concurrent acquire() of the *same* block with different row
 *     targets: whichever thread extends first must publish bytes
 *     identical to the serial oracle, and rowsOf() must be monotone.
 *  4. setThreadCount() resizes racing parallelFor() issuers on other
 *     threads, and ServeEngine::step() racing the snapshot accessors —
 *     with the generated token streams checked bit-identical to a
 *     serial reference engine.
 *  5. A serve::Service session driven on one thread while other
 *     threads hammer its cross-thread entry points (statsLine(),
 *     cancel()) — the transcript must stay structurally valid and the
 *     engine fully drained.
 *  6. Cached-prefix retention under a tight pool: a stepping engine
 *     whose admission gate evicts retained prefixes races a follow-up
 *     submitter (multi-turn chat via finishedSnapshot), cancellers,
 *     and a snapshot poller watching the retention counters stay
 *     monotone and the pool accounting stay whole-block.
 *
 * Functional assertions here are deliberately coarse (exact values are
 * checked by the serial suites); the point of this tier is that every
 * interleaving is *well-defined* — no torn reads, no use-after-free, no
 * lock-order inversion — which is what TSan and the invariant checkers
 * verify.  Every test joins all threads before asserting aggregates.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "serve/block_pool.hpp"
#include "serve/decoded_cache.hpp"
#include "serve/engine.hpp"
#include "serve/kv_cache.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

constexpr size_t kD = 8;
constexpr size_t kStressThreads = 8;

/** Restores the ambient pool size when a test returns. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { par::setThreadCount(0); }
};

/** Write the canonical fp32 pattern into one (block, slot) pair. */
void
fillSlot(serve::BlockPool &pool, u32 id, size_t slot, float tag)
{
    std::vector<float> k(kD), v(kD);
    for (size_t i = 0; i < kD; ++i) {
        k[i] = tag + static_cast<float>(slot) * 10.0f +
               static_cast<float>(i);
        v[i] = -k[i] + 0.5f;
    }
    std::memcpy(pool.kRow(id, slot), k.data(), kD * sizeof(float));
    std::memcpy(pool.vRow(id, slot), v.data(), kD * sizeof(float));
}

/** Check a lease's decoded prefix against the fillSlot oracle. */
void
expectPrefix(const serve::DecodedBlockCache::Lease &lease, size_t rows,
             float tag)
{
    for (size_t slot = 0; slot < rows; ++slot) {
        for (size_t i = 0; i < kD; ++i) {
            const float want = tag + static_cast<float>(slot) * 10.0f +
                               static_cast<float>(i);
            ASSERT_EQ(lease.k[slot * kD + i], want);
            ASSERT_EQ(lease.v[slot * kD + i], -want + 0.5f);
        }
    }
}

// Seam 1: many threads acquire/release overlapping ids while the
// soft-capacity cap forces eviction churn, and a checker thread runs
// the full invariant sweep mid-flight.
TEST(RaceStress, DecodedCacheChurnOverOverlappingBlocks)
{
    const serve::Fp32KvScheme fp32;
    constexpr size_t kBlocks = 8;
    constexpr size_t kRows = 4;
    serve::BlockPool pool(fp32, kD, kRows);
    serve::DecodedBlockCache cache(pool, /*capacity_blocks=*/kBlocks / 2);
    pool.setReleaseHook([&cache](u32 id) { cache.invalidate(id); });

    std::vector<u32> ids(kBlocks);
    for (size_t b = 0; b < kBlocks; ++b) {
        ids[b] = pool.allocate(); // main's ref keeps every block live
        for (size_t s = 0; s < kRows; ++s)
            fillSlot(pool, ids[b], s, 100.0f * static_cast<float>(b));
    }

    constexpr int kIters = 300;
    std::atomic<bool> done{false};
    std::vector<std::thread> threads;
    threads.reserve(kStressThreads + 1);
    for (size_t t = 0; t < kStressThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(0x9e3779b9ULL * (t + 1));
            for (int it = 0; it < kIters; ++it) {
                const size_t b = rng.uniformInt(kBlocks);
                const size_t rows = 1 + rng.uniformInt(kRows);
                const auto lease = cache.acquire(ids[b], rows);
                expectPrefix(lease, rows,
                             100.0f * static_cast<float>(b));
                // Exercise retain/release concurrency too; main's ref
                // keeps the count above zero, so no hook fires here.
                pool.retain(ids[b]);
                pool.release(ids[b]);
                cache.release(ids[b]);
            }
        });
    }
    threads.emplace_back([&] { // invariant checker samples mid-flight
        while (!done.load(std::memory_order_relaxed)) {
            cache.checkInvariants();
            pool.checkInvariants();
            (void)cache.entryCount();
            (void)cache.pinnedCount();
            (void)pool.bytesInUse();
            std::this_thread::yield();
        }
    });
    for (size_t t = 0; t < kStressThreads; ++t)
        threads[t].join();
    done.store(true, std::memory_order_relaxed);
    threads.back().join();

    cache.checkInvariants();
    pool.checkInvariants();
    EXPECT_EQ(cache.pinnedCount(), 0u);
    EXPECT_LE(cache.entryCount(), kBlocks / 2); // cap holds at rest
    EXPECT_EQ(cache.hits() + cache.misses(),
              kStressThreads * static_cast<u64>(kIters));
    for (u32 id : ids)
        pool.release(id);
    EXPECT_EQ(pool.blocksInUse(), 0u);
    EXPECT_EQ(cache.entryCount(), 0u); // hook drained every entry
}

// Seam 2: the pool's release hook invalidates decoded entries while
// holding the pool mutex (pool mu_ -> cache mu_), racing lease readers
// and accounting pollers that take the cache mutex bare.  Churn blocks
// (allocated/freed per iteration) are disjoint from the shared blocks
// the readers pin, so the @pre of invalidate() — entry unpinned —
// holds by construction, exactly as it does in the engine.
TEST(RaceStress, ReleaseHookInvalidationRacesLeaseReaders)
{
    const serve::Fp32KvScheme fp32;
    constexpr size_t kShared = 4;
    constexpr size_t kRows = 4;
    serve::BlockPool pool(fp32, kD, kRows);
    serve::DecodedBlockCache cache(pool, /*capacity_blocks=*/0);
    pool.setReleaseHook([&cache](u32 id) { cache.invalidate(id); });

    std::vector<u32> shared(kShared);
    for (size_t b = 0; b < kShared; ++b) {
        shared[b] = pool.allocate();
        for (size_t s = 0; s < kRows; ++s)
            fillSlot(pool, shared[b], s, 100.0f * static_cast<float>(b));
    }

    constexpr int kIters = 250;
    std::vector<std::thread> threads;
    threads.reserve(kStressThreads);
    // Two churn threads: allocate, decode, unpin, free — every free
    // runs the invalidation hook under the pool lock.
    for (size_t t = 0; t < 2; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(0xc0ffeeULL * (t + 1));
            for (int it = 0; it < kIters; ++it) {
                const u32 id = pool.allocate();
                const size_t rows = 1 + rng.uniformInt(kRows);
                for (size_t s = 0; s < rows; ++s)
                    fillSlot(pool, id, s, -7.0f);
                const auto lease = cache.acquire(id, rows);
                expectPrefix(lease, rows, -7.0f);
                cache.release(id);
                pool.release(id); // refcount 0 -> hook -> invalidate
            }
        });
    }
    for (size_t t = 2; t < kStressThreads; ++t) {
        threads.emplace_back([&, t] {
            Rng rng(0xfeedULL * (t + 1));
            for (int it = 0; it < kIters; ++it) {
                const size_t b = rng.uniformInt(kShared);
                const size_t rows = 1 + rng.uniformInt(kRows);
                const auto lease = cache.acquire(shared[b], rows);
                expectPrefix(lease, rows,
                             100.0f * static_cast<float>(b));
                (void)cache.rowsOf(shared[b]);
                (void)cache.invalidations();
                cache.release(shared[b]);
            }
        });
    }
    for (auto &th : threads)
        th.join();

    cache.checkInvariants();
    pool.checkInvariants();
    EXPECT_EQ(cache.invalidations(), 2u * kIters);
    for (u32 id : shared)
        pool.release(id);
    EXPECT_EQ(cache.entryCount(), 0u);
    EXPECT_EQ(pool.blocksInUse(), 0u);
}

// Seam 3 (the fill/mu_ lock-domain crossing): concurrent acquire() of
// one block with *different* row targets.  Whichever thread wins the
// fill race must publish bytes identical to the serial oracle, losers
// must observe a decoded prefix covering their target, and rowsOf()
// must be monotone under sampling — the Entry::rows release/acquire
// contract, end to end.
TEST(RaceStress, ConcurrentAcquireSameBlockDifferentRowTargets)
{
    const serve::Fp32KvScheme fp32;
    constexpr size_t kRows = 32; // wide block: a fill takes real time
    serve::BlockPool pool(fp32, kD, kRows);

    constexpr int kRounds = 40;
    for (int round = 0; round < kRounds; ++round) {
        serve::DecodedBlockCache cache(pool, 0);
        const u32 id = pool.allocate();
        for (size_t s = 0; s < kRows; ++s)
            fillSlot(pool, id, s, 42.0f);

        std::atomic<bool> done{false};
        std::vector<std::thread> threads;
        threads.reserve(kStressThreads + 1);
        for (size_t t = 0; t < kStressThreads; ++t) {
            threads.emplace_back([&, t] {
                // Distinct, interleaved targets: thread t asks for
                // progressively larger prefixes offset by its index.
                for (size_t rows = 1 + t % kRows; rows <= kRows;
                     rows += kStressThreads) {
                    const auto lease = cache.acquire(id, rows);
                    ASSERT_GE(cache.rowsOf(id), rows);
                    expectPrefix(lease, rows, 42.0f);
                    cache.release(id);
                }
            });
        }
        threads.emplace_back([&] { // monotonicity sampler
            size_t last = 0;
            while (!done.load(std::memory_order_relaxed)) {
                const size_t now = cache.rowsOf(id);
                ASSERT_GE(now, last);
                ASSERT_LE(now, kRows);
                last = now;
                std::this_thread::yield();
            }
        });
        for (size_t t = 0; t < kStressThreads; ++t)
            threads[t].join();
        done.store(true, std::memory_order_relaxed);
        threads.back().join();

        // At rest the decoded plane equals the serial oracle in full.
        const auto lease = cache.acquire(id, kRows);
        expectPrefix(lease, kRows, 42.0f);
        cache.release(id);
        // Decode work is never repeated: every slot decoded exactly
        // once no matter how the acquirers interleaved.
        EXPECT_EQ(cache.decodedRows(), kRows);
        cache.checkInvariants();
        pool.release(id);
    }
}

// Seam 4a: pool resizes racing parallelFor issuers.  Two issuer
// threads run deterministic chunked reductions while a third cycles
// setThreadCount through 1..8; every reduction must produce the exact
// serial sum regardless of how resizes interleave with regions.
TEST(RaceStress, SetThreadCountRacesParallelFor)
{
    const ThreadCountGuard guard;
    constexpr size_t kN = 512;
    constexpr size_t kGrain = 16;
    constexpr int kIters = 60;
    const u64 want = kN * (kN - 1) / 2; // sum of [0, kN)

    std::atomic<bool> done{false};
    std::thread resizer([&] {
        size_t n = 1;
        while (!done.load(std::memory_order_relaxed)) {
            par::setThreadCount(1 + n % 8);
            ++n;
            std::this_thread::yield();
        }
    });
    std::vector<std::thread> issuers;
    issuers.reserve(2);
    for (size_t t = 0; t < 2; ++t) {
        issuers.emplace_back([&] {
            for (int it = 0; it < kIters; ++it) {
                std::vector<u64> partial(
                    par::chunkCount(0, kN, kGrain), 0);
                par::parallelFor(0, kN, kGrain, [&](size_t b, size_t e) {
                    u64 acc = 0;
                    for (size_t i = b; i < e; ++i)
                        acc += i;
                    partial[par::chunkIndex(0, kGrain, b)] = acc;
                });
                const u64 got = std::accumulate(partial.begin(),
                                                partial.end(), u64{0});
                ASSERT_EQ(got, want);
            }
        });
    }
    for (auto &th : issuers)
        th.join();
    done.store(true, std::memory_order_relaxed);
    resizer.join();
}

// Seam 4b: a stepping engine racing the locked snapshot accessors.
// One thread drives the engine to completion; a poller hammers every
// snapshot hook (and the pool's/cache's own locked accounting)
// mid-step.  The generated streams must stay bit-identical to a serial
// reference engine fed the same requests — introspection is an
// observer, never a participant.
TEST(RaceStress, EngineStepRacesSnapshotAccessors)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 24;
    config.evalHeads = 4;
    config.evalDFf = 48;
    config.evalVocab = 64;
    eval::LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, 1234);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng erng(0xabcdULL);
    for (auto &v : lm.embedding.data())
        v = static_cast<float>(erng.gaussian());

    serve::ServeConfig cfg;
    cfg.maxBatchTokens = 4;
    cfg.maxActiveRequests = 4;
    cfg.blockRows = 4;

    Rng rng(2024);
    std::vector<std::vector<int>> prompts(10);
    for (auto &p : prompts) {
        p.resize(1 + rng.uniformInt(6));
        for (auto &tok : p)
            tok = static_cast<int>(rng.uniformInt(lm.vocab));
    }
    constexpr size_t kMaxNew = 5;

    // Serial reference: same requests, no concurrent observers.
    serve::ServeEngine ref(lm, cfg);
    for (const auto &p : prompts)
        ref.submit(p, kMaxNew);
    ref.runToCompletion();

    serve::ServeEngine eng(lm, cfg);
    std::vector<u64> ids;
    ids.reserve(prompts.size());
    for (const auto &p : prompts)
        ids.push_back(eng.submit(p, kMaxNew));

    std::atomic<bool> done{false};
    std::thread poller([&] {
        u64 last_steps = 0;
        size_t last_finished = 0;
        while (!done.load(std::memory_order_relaxed)) {
            const serve::ServeMetrics m = eng.metricsSnapshot();
            ASSERT_GE(m.steps, last_steps); // monotone across samples
            ASSERT_EQ(m.stepSeconds.size(), m.steps); // consistent snap
            last_steps = m.steps;
            const size_t fin = eng.finishedCount();
            ASSERT_GE(fin, last_finished);
            last_finished = fin;
            ASSERT_LE(eng.pendingCount() + eng.activeCount() + fin,
                      prompts.size() + 1); // never invents requests
            for (u64 id : eng.activeIds())
                (void)eng.activeState(id); // lookup only; no deref
            ASSERT_EQ(eng.blockPool()->bytesInUse() % // whole blocks
                          eng.blockPool()->blockBytes(),
                      0u);
            eng.blockPool()->checkInvariants();
            if (eng.decodedCache() != nullptr)
                eng.decodedCache()->checkInvariants();
            std::this_thread::yield();
        }
    });
    eng.runToCompletion();
    done.store(true, std::memory_order_relaxed);
    poller.join();

    ASSERT_EQ(eng.finishedCount(), prompts.size());
    ASSERT_EQ(ref.finished().size(), prompts.size());
    // Finish order is data-dependent but deterministic: the observed
    // engine must retire the same requests in the same order as the
    // unobserved reference, with bit-identical streams.
    for (size_t i = 0; i < prompts.size(); ++i) {
        const serve::FinishedRequest &a = eng.finished()[i];
        const serve::FinishedRequest &b = ref.finished()[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.generated, b.generated); // bit-identical streams
        EXPECT_LE(a.id, ids.back()); // ids were handed out in order
    }
    const serve::ServeMetrics m = eng.metricsSnapshot();
    EXPECT_EQ(m.tokensGenerated,
              ref.metricsSnapshot().tokensGenerated);
}

// Seam 5: the serve::Service front end.  One thread drives a whole
// scripted session through Service::run(); concurrent callers hammer
// the two cross-thread entry points — statsLine() (locked snapshot
// serialization) and cancel() (reason map under the service mutex,
// then the engine's own locked cancel).  Which requests the cancellers
// catch is timing-dependent, so the assertions are structural: every
// emitted line is valid JSON, every request reaches exactly one done,
// and the engine ends fully drained with the pool empty.
TEST(RaceStress, ServiceRunRacesStatsAndCancel)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 24;
    config.evalHeads = 4;
    config.evalDFf = 48;
    config.evalVocab = 64;
    eval::LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, 4321);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng erng(0xdcbaULL);
    for (auto &v : lm.embedding.data())
        v = static_cast<float>(erng.gaussian());

    serve::ServeConfig cfg;
    cfg.maxBatchTokens = 4;
    cfg.maxActiveRequests = 3;
    cfg.blockRows = 4;
    serve::ServeEngine engine(lm, cfg);

    constexpr size_t kRequests = 8;
    Rng rng(77);
    std::stringstream in;
    for (size_t i = 0; i < kRequests; ++i) {
        Json prompt = Json::array();
        const size_t len = 1 + rng.uniformInt(6);
        for (size_t j = 0; j < len; ++j)
            prompt.push(static_cast<int>(rng.uniformInt(lm.vocab)));
        in << Json::object({{"op", "submit"},
                            {"prompt", prompt},
                            {"max_new", 12}})
                  .dump()
           << "\n";
    }
    in << "{\"op\":\"drain\"}\n{\"op\":\"shutdown\"}\n";

    serve::ServiceConfig svc;
    svc.autoDrain = false; // keep the batch full while the pollers run
    serve::Service service(engine, svc);

    std::atomic<bool> done{false};
    std::stringstream out;
    std::thread driver([&] {
        service.run(in, out);
        done.store(true, std::memory_order_relaxed);
    });
    std::vector<std::thread> pollers;
    for (size_t t = 0; t < kStressThreads / 2; ++t) {
        pollers.emplace_back([&] {
            while (!done.load(std::memory_order_relaxed)) {
                const std::string line = service.statsLine();
                std::string err;
                const auto stats = Json::parse(line, &err);
                ASSERT_TRUE(stats.has_value()) << line << " -> " << err;
                ASSERT_LE(static_cast<size_t>(
                              stats->find("finished")->asInt()),
                          service.submittedCount());
                std::this_thread::yield();
            }
        });
    }
    for (size_t t = 0; t < kStressThreads / 2; ++t) {
        pollers.emplace_back([&, t] {
            Rng crng(1000 + t);
            while (!done.load(std::memory_order_relaxed)) {
                // Cancelling an unknown/finished id is a benign false.
                (void)service.cancel(1 + crng.uniformInt(kRequests));
                std::this_thread::yield();
            }
        });
    }
    driver.join();
    for (auto &th : pollers)
        th.join();

    // Structural checks on the session transcript.
    size_t done_events = 0;
    std::string line;
    while (std::getline(out, line)) {
        std::string err;
        const auto ev = Json::parse(line, &err);
        ASSERT_TRUE(ev.has_value()) << line << " -> " << err;
        const std::string &kind = ev->find("event")->asString();
        ASSERT_NE(kind, "error") << line;
        if (kind == "done") {
            ++done_events;
            ASSERT_EQ(static_cast<size_t>(ev->find("n")->asInt()),
                      ev->find("tokens")->size());
        }
    }
    EXPECT_EQ(done_events, kRequests); // exactly one terminal each
    EXPECT_EQ(engine.finishedCount(), kRequests);
    EXPECT_EQ(engine.pendingCount() + engine.activeCount(), 0u);
    ASSERT_NE(engine.blockPool(), nullptr);
    EXPECT_EQ(engine.blockPool()->blocksInUse(), 0u);
    engine.blockPool()->checkInvariants();
}

// Seam 6: retention eviction inside the admission gate racing the
// other cross-thread entry points.  A driver thread steps a paged
// engine with retainPrefixes on and a pool tight enough that retained
// prefixes must be evicted before later turns can admit; a submitter
// thread chains multi-turn conversations through finishedSnapshot()
// (each follow-up re-submits prompt + reply, the retention hit path);
// cancellers retire a fixed subset of ids mid-flight; a poller watches
// the retention counters stay monotone and the pool accounting stay
// whole-block.  Which admissions hit a retained donor is timing-
// dependent, so the end-state assertions are structural: every
// conversation completes its turns, retention stored and (pressure-)
// evicted entries, and clearing the LRU leaves the pool empty.
TEST(RaceStress, RetentionEvictionRacesSubmitCancelSnapshot)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 24;
    config.evalHeads = 4;
    config.evalDFf = 48;
    config.evalVocab = 64;
    eval::LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, 777);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng erng(0x7777ULL);
    for (auto &v : lm.embedding.data())
        v = static_cast<float>(erng.gaussian());

    constexpr size_t kConversations = 5;
    constexpr size_t kTurns = 3;
    constexpr size_t kTotal = kConversations * kTurns;
    constexpr size_t kMaxNew = 4;

    serve::ServeConfig cfg;
    cfg.maxBatchTokens = 6;
    cfg.maxActiveRequests = 2;
    cfg.blockRows = 4;
    cfg.retainPrefixes = true;
    // Tight pool: far below the ~4 blocks each retiring turn retains
    // times kTotal retirements, but above the worst single admission
    // (final-turn prompt <= 16, rows <= 19, 5 blocks x 2 layers), so
    // the gate must evict retained entries yet never deadlocks.
    cfg.poolBlocks = 16;
    serve::ServeEngine eng(lm, cfg);

    // Turn-0 prompts submitted before any thread starts; the id ->
    // conversation map is owned by the submitter thread afterwards.
    Rng rng(31337);
    std::map<u64, size_t> conversationOf;
    std::map<size_t, size_t> turnsDone;
    for (size_t c = 0; c < kConversations; ++c) {
        std::vector<int> p(4 + rng.uniformInt(3));
        for (auto &tok : p)
            tok = static_cast<int>(rng.uniformInt(lm.vocab));
        conversationOf[eng.submit(p, kMaxNew)] = c;
    }

    std::atomic<bool> done{false};
    std::thread driver([&] {
        while (eng.finishedCount() < kTotal) {
            if (!eng.step())
                std::this_thread::yield();
        }
    });
    std::thread submitter([&] {
        size_t from = 0;
        size_t seen = 0;
        Rng srng(0x515ULL);
        while (seen < kTotal) {
            const auto batch = eng.finishedSnapshot(from);
            if (batch.empty()) {
                std::this_thread::yield();
                continue;
            }
            from += batch.size();
            seen += batch.size();
            for (const auto &f : batch) {
                const size_t c = conversationOf.at(f.id);
                const size_t turn = ++turnsDone[c];
                if (turn >= kTurns)
                    continue;
                // Next turn: prior prompt + reply + one fresh token.
                std::vector<int> p = f.prompt;
                p.insert(p.end(), f.generated.begin(),
                         f.generated.end());
                p.push_back(static_cast<int>(
                    srng.uniformInt(lm.vocab)));
                conversationOf[eng.submit(p, kMaxNew)] = c;
            }
        }
    });
    std::vector<std::thread> hammers;
    for (size_t t = 0; t < 2; ++t) {
        hammers.emplace_back([&, t] { // cancellers: ids 5, 10, 15 only
            Rng crng(900 + t);
            while (!done.load(std::memory_order_relaxed)) {
                const u64 id = 5 * (1 + crng.uniformInt(kTotal / 5));
                (void)eng.cancel(id);
                std::this_thread::yield();
            }
        });
    }
    hammers.emplace_back([&] { // retention/pool snapshot poller
        u64 last_stored = 0;
        u64 last_evicted = 0;
        while (!done.load(std::memory_order_relaxed)) {
            const serve::ServeMetrics m = eng.metricsSnapshot();
            ASSERT_GE(m.retentionStored, last_stored);
            ASSERT_GE(m.retentionEvictions, last_evicted);
            last_stored = m.retentionStored;
            last_evicted = m.retentionEvictions;
            ASSERT_LE(m.retainedBlocks, cfg.poolBlocks);
            // Separate locked call; values may move between the two,
            // so exercise it without cross-snapshot comparison.
            (void)eng.retainedBlockCount();
            ASSERT_EQ(eng.blockPool()->retainedBytes() %
                          eng.blockPool()->blockBytes(),
                      0u);
            eng.blockPool()->checkInvariants();
            std::this_thread::yield();
        }
    });
    driver.join();
    submitter.join();
    done.store(true, std::memory_order_relaxed);
    for (auto &th : hammers)
        th.join();

    // Every conversation ran its full turn budget, cancelled or not.
    EXPECT_EQ(eng.finishedCount(), kTotal);
    EXPECT_EQ(eng.pendingCount() + eng.activeCount(), 0u);
    for (const auto &[c, turns] : turnsDone)
        EXPECT_EQ(turns, kTurns) << "conversation " << c;
    for (const auto &f : eng.finished())
        for (const int tok : f.generated) {
            EXPECT_GE(tok, 0);
            EXPECT_LT(tok, static_cast<int>(lm.vocab));
        }

    // Retention did real work under pressure: uncancelled turns store
    // >= 4 blocks each, so the cumulative footprint exceeds the pool
    // many times over and the gate must have evicted.
    const serve::ServeMetrics m = eng.metricsSnapshot();
    EXPECT_GT(m.retentionStored, 0u);
    EXPECT_GT(m.retentionEvictions, 0u);

    // At rest every live block is a retained block, and clearing the
    // LRU drains the pool completely.
    ASSERT_NE(eng.blockPool(), nullptr);
    EXPECT_EQ(eng.blockPool()->blocksInUse(),
              eng.blockPool()->retainedBlocks());
    eng.blockPool()->checkInvariants();
    eng.clearRetainedPrefixes();
    EXPECT_EQ(eng.retainedBlockCount(), 0u);
    EXPECT_EQ(eng.blockPool()->blocksInUse(), 0u);
    EXPECT_EQ(eng.blockPool()->retainedBlocks(), 0u);
}

} // namespace
} // namespace olive
