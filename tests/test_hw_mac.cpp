/**
 * @file
 * Tests of the OliVe MAC datapath (Secs. 4.4, 4.5): the exponent-integer
 * product rule, adder-tree dot products, and the four-PE composition of
 * 8-bit int and 8-bit abfloat multiplies.
 */

#include <gtest/gtest.h>

#include "hw/mac.hpp"

namespace olive {
namespace {

TEST(ExpInt, ValueAndProductRule)
{
    const ExpInt a{3, 5};  // 5 << 3 = 40
    const ExpInt b{2, -3}; // -3 << 2 = -12
    EXPECT_EQ(a.value(), 40);
    EXPECT_EQ(b.value(), -12);
    const ExpInt p = a * b;
    EXPECT_EQ(p.exponent, 5);
    EXPECT_EQ(p.integer, -15);
    EXPECT_EQ(p.value(), -480);
    EXPECT_EQ(p.value(), a.value() * b.value());
}

TEST(MacUnit, AccumulatesProducts)
{
    hw::MacUnit mac;
    mac.mac(ExpInt{0, 3}, ExpInt{0, 4});   // +12
    mac.mac(ExpInt{2, 1}, ExpInt{0, -5});  // -20
    mac.mac(ExpInt{4, 3}, ExpInt{1, 2});   // 48 * 4 = 192
    EXPECT_EQ(mac.value(), 12 - 20 + 192);
    EXPECT_EQ(mac.opCount(), 3u);
    mac.reset();
    EXPECT_EQ(mac.value(), 0);
}

TEST(MacUnit, HandlesClippedOutlierProducts)
{
    // Two clipped outliers: 2^15 * 2^15 = 2^30 < 2^31 - 1 (Sec. 4.5).
    hw::MacUnit mac;
    mac.mac(ExpInt{15, 1}, ExpInt{15, 1});
    EXPECT_EQ(mac.value(), 1 << 30);
    mac.mac(ExpInt{15, -1}, ExpInt{15, 1});
    EXPECT_EQ(mac.value(), 0);
}

TEST(DotProduct, MatchesScalarReference)
{
    std::vector<ExpInt> a, b;
    i64 expect = 0;
    for (int i = 0; i < 16; ++i) {
        const ExpInt ea{static_cast<u8>(i % 5),
                        (i % 2) ? -(i + 1) : (i + 1)};
        const ExpInt eb{static_cast<u8>((i + 2) % 4), 3 - i};
        a.push_back(ea);
        b.push_back(eb);
        expect += ea.value() * eb.value();
    }
    EXPECT_EQ(hw::dotProduct(a, b), expect);
}

TEST(DotProduct, EmptyAndSingle)
{
    std::vector<ExpInt> empty;
    EXPECT_EQ(hw::dotProduct(empty, empty), 0);
    std::vector<ExpInt> a = {ExpInt{3, 7}};
    std::vector<ExpInt> b = {ExpInt{1, -2}};
    EXPECT_EQ(hw::dotProduct(a, b), -224); // (7 << 3) * (-2 << 1)
}

TEST(Mul8ViaFour4, ExhaustiveAgainstDirectProduct)
{
    // Sec. 4.5: x*y = PE0 + PE1 + PE2 + PE3 for every int8 pair.
    for (int x = -128; x <= 127; ++x) {
        for (int y = -128; y <= 127; y += 7) { // stride y for speed
            const i32 got = hw::mul8ViaFour4(static_cast<i8>(x),
                                             static_cast<i8>(y));
            EXPECT_EQ(got, x * y) << x << " * " << y;
        }
    }
}

TEST(Mul8ViaFour4, PartialsSumToProduct)
{
    i32 partials[4];
    const i32 got = hw::mul8ViaFour4(i8{-77}, i8{113}, partials);
    EXPECT_EQ(got, -77 * 113);
    EXPECT_EQ(partials[0] + partials[1] + partials[2] + partials[3], got);
}

TEST(MulAbfloat8ViaFour4, MatchesExpIntProduct)
{
    // 8-bit abfloat operands decode to <e, i> with 4-bit-split i.
    for (int ex = 0; ex <= 6; ++ex) {
        for (int ix : {9, 11, 15, -9, -13}) {
            for (int ey = 0; ey <= 6; ey += 2) {
                for (int iy : {8, 10, -15}) {
                    const ExpInt x{static_cast<u8>(ex), ix};
                    const ExpInt y{static_cast<u8>(ey), iy};
                    EXPECT_EQ(hw::mulAbfloat8ViaFour4(x, y),
                              x.value() * y.value())
                        << ex << "," << ix << " x " << ey << "," << iy;
                }
            }
        }
    }
}

TEST(MacUnit, OutlierClipConstant)
{
    EXPECT_EQ(hw::kOutlierClip, 32768);
    // sqrt(2^31 - 1) > 2^15: the clip guarantees no overflow.
    EXPECT_LT(static_cast<i64>(hw::kOutlierClip) * hw::kOutlierClip,
              static_cast<i64>(INT32_MAX) + 1);
}

} // namespace
} // namespace olive
