/**
 * @file
 * Property tests for serve::DecodedBlockCache, the pin-aware LRU
 * working set of decoded KV blocks: acquire decodes exactly the
 * not-yet-resident slots (tail extension is incremental), pinned
 * entries are never evicted (the capacity cap is soft), the pool's
 * release hook invalidates entries before their block id can recycle,
 * and a seeded randomized churn loop drives the cache against a
 * shadow-model LRU — comparing hit/miss/eviction counters, residency,
 * pin counts, decoded row counts and decoded float contents, and
 * re-checking every internal invariant (checkInvariants()) after every
 * single mutation.
 *
 * The Fp32KvScheme payload is the raw float row, so expected decoded
 * contents are exactly the bytes written into the pool slots.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <list>
#include <map>
#include <thread>
#include <vector>

#include "serve/block_pool.hpp"
#include "serve/decoded_cache.hpp"
#include "serve/kv_cache.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

constexpr size_t kD = 8;

/** Write a recognizable fp32 pattern into one (block, slot) pair. */
void
fillSlot(serve::BlockPool &pool, u32 id, size_t slot, float tag)
{
    std::vector<float> k(kD), v(kD);
    for (size_t i = 0; i < kD; ++i) {
        k[i] = tag + static_cast<float>(slot) * 10.0f +
               static_cast<float>(i);
        v[i] = -k[i] + 0.5f;
    }
    std::memcpy(pool.kRow(id, slot), k.data(), kD * sizeof(float));
    std::memcpy(pool.vRow(id, slot), v.data(), kD * sizeof(float));
}

/** The pattern fillSlot wrote, for lease-content checks. */
void
expectSlot(const serve::DecodedBlockCache::Lease &lease, size_t slot,
           float tag)
{
    for (size_t i = 0; i < kD; ++i) {
        const float want = tag + static_cast<float>(slot) * 10.0f +
                           static_cast<float>(i);
        EXPECT_EQ(lease.k[slot * kD + i], want);
        EXPECT_EQ(lease.v[slot * kD + i], -want + 0.5f);
    }
}

TEST(DecodedCache, AcquireDecodesIncrementallyAndCounts)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, kD, 4);
    serve::DecodedBlockCache cache(pool, 0);
    EXPECT_EQ(cache.entryBytes(), 2 * 4 * kD * sizeof(float));

    const u32 id = pool.allocate();
    fillSlot(pool, id, 0, 1000.0f);
    fillSlot(pool, id, 1, 1000.0f);

    // First acquire: a miss that decodes exactly the requested slots.
    const auto l1 = cache.acquire(id, 1);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.decodedRows(), 1u);
    EXPECT_EQ(cache.rowsOf(id), 1u);
    expectSlot(l1, 0, 1000.0f);
    cache.checkInvariants();

    // Tail extension: the second acquire decodes only slot 1 — the
    // O(1)-per-step property (filled slots are append-once, so the
    // already-decoded prefix is never re-decoded).
    const auto l2 = cache.acquire(id, 2);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.decodedRows(), 2u);
    EXPECT_EQ(cache.rowsOf(id), 2u);
    EXPECT_EQ(cache.pinsOf(id), 2);
    expectSlot(l2, 0, 1000.0f);
    expectSlot(l2, 1, 1000.0f);
    // A shorter re-acquire decodes nothing and shrinks nothing.
    (void)cache.acquire(id, 1);
    EXPECT_EQ(cache.decodedRows(), 2u);
    EXPECT_EQ(cache.rowsOf(id), 2u);
    cache.checkInvariants();

    cache.release(id);
    cache.release(id);
    cache.release(id);
    EXPECT_EQ(cache.pinsOf(id), 0);
    EXPECT_EQ(cache.entryCount(), 1u); // unbounded: stays resident
    EXPECT_EQ(cache.currentBytes(), cache.entryBytes());
    EXPECT_EQ(cache.peakBytes(), cache.entryBytes());
    cache.checkInvariants();
    pool.release(id);
}

TEST(DecodedCache, PinnedEntriesAreNeverEvicted)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, kD, 2);
    serve::DecodedBlockCache cache(pool, /*capacity_blocks=*/1);

    const u32 a = pool.allocate();
    const u32 b = pool.allocate();
    fillSlot(pool, a, 0, 100.0f);
    fillSlot(pool, b, 0, 200.0f);

    // Two pinned entries under a capacity of one: the cap is soft, so
    // both stay resident — eviction may never invalidate a pointer an
    // in-flight attention step is reading through.
    const auto la = cache.acquire(a, 1);
    const auto lb = cache.acquire(b, 1);
    EXPECT_EQ(cache.entryCount(), 2u);
    EXPECT_EQ(cache.evictions(), 0u);
    EXPECT_EQ(cache.pinnedCount(), 2u);
    expectSlot(la, 0, 100.0f); // both leases still serve valid rows
    expectSlot(lb, 0, 200.0f);
    cache.checkInvariants();

    // The first release shrinks back to the cap: the now-unpinned LRU
    // entry (a) goes, the still-pinned one (b) survives.
    cache.release(a);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_FALSE(cache.contains(a));
    EXPECT_TRUE(cache.contains(b));
    expectSlot(lb, 0, 200.0f);
    cache.checkInvariants();

    cache.release(b);
    EXPECT_EQ(cache.entryCount(), 1u); // within cap: b stays warm
    cache.checkInvariants();
    pool.release(a);
    pool.release(b);
}

TEST(DecodedCache, ReleaseHookInvalidatesBeforeIdRecycles)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, kD, 2);
    serve::DecodedBlockCache cache(pool, 0);
    // Wired exactly as the engine wires it: refcount hitting zero drops
    // the decoded entry before the free list can hand the id out again.
    pool.setReleaseHook([&cache](u32 id) { cache.invalidate(id); });

    const u32 a = pool.allocate();
    fillSlot(pool, a, 0, 300.0f);
    (void)cache.acquire(a, 1);
    cache.release(a);
    EXPECT_TRUE(cache.contains(a));

    // Sharing keeps the entry alive: dropping one of two references
    // must not invalidate (the block is still live).
    pool.retain(a);
    pool.release(a);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_EQ(cache.invalidations(), 0u);

    // Allocate the donor while `a` is still live, so the free list can
    // only hand a's id to the copy-on-write target below.
    const u32 donor = pool.allocate();
    fillSlot(pool, donor, 0, 400.0f);

    // The last release recycles the id — the entry must go with it.
    pool.release(a);
    EXPECT_FALSE(cache.contains(a));
    EXPECT_EQ(cache.invalidations(), 1u);
    EXPECT_EQ(cache.evictions(), 0u); // invalidation is not an eviction
    cache.checkInvariants();

    // The recycled id gets fresh bytes (here via copy-on-write from the
    // donor); acquiring it again must decode those, never the stale
    // 300-pattern the dead entry held.
    const u32 b = pool.allocate();
    ASSERT_EQ(b, a); // free list recycled the id
    pool.copyRows(donor, b, 1);
    const auto lb = cache.acquire(b, 1);
    EXPECT_EQ(cache.misses(), 2u); // fresh decode, not a stale hit
    expectSlot(lb, 0, 400.0f);
    cache.release(b);
    cache.checkInvariants();
    pool.release(donor);
    pool.release(b);
}

TEST(DecodedCacheDeath, MisuseIsCaught)
{
    const serve::Fp32KvScheme fp32;
    serve::BlockPool pool(fp32, kD, 2);
    serve::DecodedBlockCache cache(pool, 0);
    const u32 id = pool.allocate();
    fillSlot(pool, id, 0, 1.0f);
    EXPECT_DEATH(cache.release(id), "not pinned"); // never acquired
    (void)cache.acquire(id, 1);
    // A pinned block is referenced by a live cache holding a pool
    // reference, so its refcount cannot hit zero: an invalidation of a
    // pinned entry can only be a lifecycle bug upstream.
    EXPECT_DEATH(cache.invalidate(id), "pinned");
    EXPECT_DEATH((void)cache.acquire(id, 3), "blockRows");
    cache.release(id);
    pool.release(id);
}

TEST(DecodedCache, RandomizedChurnMatchesShadowLru)
{
    // Seeded property loop: random acquire/release churn over a fixed
    // population of live blocks, mirrored against a shadow model that
    // re-implements the documented policy (LRU front on every acquire,
    // eviction from the tail skipping pinned entries, limit cap-1 on
    // insert and cap on release).  After every mutation the real
    // cache's counters, residency, pins, decoded rows and invariants
    // must match the shadow exactly — the counters are part of the
    // serial determinism contract.
    struct ShadowEntry
    {
        size_t rows = 0;
        int pins = 0;
    };
    const serve::Fp32KvScheme fp32;
    for (const size_t cap : {size_t{0}, size_t{1}, size_t{3}}) {
        for (const u64 seed : {1u, 2u, 3u, 4u, 5u}) {
            Rng rng(seed * 2654435761u + cap);
            const size_t block_rows = 1 + rng.uniformInt(4);
            serve::BlockPool pool(fp32, kD, block_rows);
            serve::DecodedBlockCache cache(pool, cap);

            const size_t n_blocks = 6;
            std::vector<u32> ids;
            for (size_t i = 0; i < n_blocks; ++i) {
                const u32 id = pool.allocate();
                for (size_t s = 0; s < block_rows; ++s)
                    fillSlot(pool, id, s,
                             static_cast<float>(id) * 1000.0f);
                ids.push_back(id);
            }

            std::map<u32, ShadowEntry> shadow;
            std::list<u32> shadow_lru; // front = MRU
            u64 s_hits = 0, s_misses = 0, s_evictions = 0, s_rows = 0;
            std::vector<u32> leases; // outstanding pins, multiset
            const auto shadowEvict = [&](size_t limit) {
                if (cap == 0)
                    return;
                for (auto it = shadow_lru.rbegin();
                     shadow.size() > limit &&
                     it != shadow_lru.rend();) {
                    if (shadow.at(*it).pins > 0) {
                        ++it;
                        continue;
                    }
                    shadow.erase(*it);
                    it = decltype(it)(shadow_lru.erase(std::prev(
                        it.base()))); // resume toward the front
                    ++s_evictions;
                }
            };

            for (int op = 0; op < 600; ++op) {
                const double u = rng.uniform();
                if (u < 0.6 || leases.empty()) {
                    const u32 id = ids[rng.uniformInt(ids.size())];
                    const size_t rows = 1 + rng.uniformInt(block_rows);
                    const auto lease = cache.acquire(id, rows);
                    auto it = shadow.find(id);
                    if (it == shadow.end()) {
                        shadowEvict(cap > 0 ? cap - 1 : 0);
                        it = shadow.emplace(id, ShadowEntry{}).first;
                        shadow_lru.push_front(id);
                        ++s_misses;
                    } else {
                        shadow_lru.remove(id);
                        shadow_lru.push_front(id);
                        ++s_hits;
                    }
                    if (rows > it->second.rows) {
                        s_rows += rows - it->second.rows;
                        it->second.rows = rows;
                    }
                    ++it->second.pins;
                    leases.push_back(id);
                    // Decoded contents must match the slot pattern for
                    // every row the shadow says is resident.
                    for (size_t s = 0; s < it->second.rows; ++s)
                        expectSlot(lease, s,
                                   static_cast<float>(id) * 1000.0f);
                } else {
                    const size_t pick = rng.uniformInt(leases.size());
                    const u32 id = leases[pick];
                    leases.erase(leases.begin() +
                                 static_cast<std::ptrdiff_t>(pick));
                    cache.release(id);
                    --shadow.at(id).pins;
                    shadowEvict(cap);
                }

                cache.checkInvariants();
                EXPECT_EQ(cache.hits(), s_hits);
                EXPECT_EQ(cache.misses(), s_misses);
                EXPECT_EQ(cache.evictions(), s_evictions);
                EXPECT_EQ(cache.decodedRows(), s_rows);
                EXPECT_EQ(cache.entryCount(), shadow.size());
                EXPECT_EQ(cache.currentBytes(),
                          shadow.size() * cache.entryBytes());
                size_t s_pinned = 0;
                for (const auto &[id, e] : shadow) {
                    EXPECT_TRUE(cache.contains(id));
                    EXPECT_EQ(cache.pinsOf(id), e.pins) << id;
                    EXPECT_EQ(cache.rowsOf(id), e.rows) << id;
                    s_pinned += e.pins > 0 ? 1u : 0u;
                }
                EXPECT_EQ(cache.pinnedCount(), s_pinned);
                for (u32 id : ids) {
                    if (!shadow.count(id)) {
                        EXPECT_FALSE(cache.contains(id)) << id;
                    }
                }
                if (HasFailure())
                    FAIL() << "shadow divergence at op " << op
                           << " seed " << seed << " cap " << cap;
            }

            // Drain every lease; the cache must settle within the cap.
            while (!leases.empty()) {
                cache.release(leases.back());
                --shadow.at(leases.back()).pins;
                leases.pop_back();
                shadowEvict(cap);
            }
            cache.checkInvariants();
            EXPECT_EQ(cache.entryCount(), shadow.size());
            if (cap > 0) {
                EXPECT_LE(cache.entryCount(), cap);
            }
            for (u32 id : ids)
                pool.release(id);
        }
    }
}

TEST(DecodedCache, ConcurrentAcquiresOfSharedBlocksAreSafe)
{
    // Engine-shaped race: several threads repeatedly pin the same few
    // blocks (prefix sharing makes this the common case) with varying
    // row counts.  Whatever the interleaving, every lease must serve
    // the exact decoded pattern and the cache must end consistent and
    // fully unpinned.  (Run under ASan/TSan in the sanitizer CI legs.)
    const serve::Fp32KvScheme fp32;
    const size_t block_rows = 4;
    serve::BlockPool pool(fp32, kD, block_rows);
    serve::DecodedBlockCache cache(pool, 2); // soft cap under pressure
    std::vector<u32> ids;
    for (size_t i = 0; i < 4; ++i) {
        const u32 id = pool.allocate();
        for (size_t s = 0; s < block_rows; ++s)
            fillSlot(pool, id, s, static_cast<float>(id) * 1000.0f);
        ids.push_back(id);
    }
    std::vector<std::thread> workers;
    for (size_t t = 0; t < 8; ++t) {
        workers.emplace_back([&, t]() {
            Rng rng(t + 1);
            for (int i = 0; i < 200; ++i) {
                const u32 id = ids[rng.uniformInt(ids.size())];
                const size_t rows = 1 + rng.uniformInt(block_rows);
                const auto lease = cache.acquire(id, rows);
                for (size_t s = 0; s < rows; ++s)
                    expectSlot(lease, s,
                               static_cast<float>(id) * 1000.0f);
                cache.release(id);
            }
        });
    }
    for (auto &w : workers)
        w.join();
    cache.checkInvariants();
    EXPECT_EQ(cache.pinnedCount(), 0u);
    EXPECT_EQ(cache.hits() + cache.misses(), 8u * 200u);
    for (u32 id : ids)
        pool.release(id);
}

} // namespace
} // namespace olive
