/**
 * @file
 * Tests of the util/json document model: strict parsing (the serving
 * protocol's framing rules), deterministic serialization, round trips,
 * and the panic-on-type-mismatch accessor contract.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/common.hpp"
#include "util/json.hpp"

namespace olive {
namespace {

Json
parseOk(const std::string &text)
{
    std::string err;
    const auto doc = Json::parse(text, &err);
    EXPECT_TRUE(doc.has_value()) << text << " -> " << err;
    return doc.value_or(Json());
}

std::string
parseErr(const std::string &text)
{
    std::string err;
    const auto doc = Json::parse(text, &err);
    EXPECT_FALSE(doc.has_value()) << text << " parsed unexpectedly";
    EXPECT_FALSE(err.empty());
    return err;
}

// ------------------------------------------------------------ parsing

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parseOk("null").isNull());
    EXPECT_TRUE(parseOk("true").asBool());
    EXPECT_FALSE(parseOk("false").asBool());
    EXPECT_DOUBLE_EQ(parseOk("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parseOk("-7").asNumber(), -7.0);
    EXPECT_DOUBLE_EQ(parseOk("3.25").asNumber(), 3.25);
    EXPECT_DOUBLE_EQ(parseOk("1e3").asNumber(), 1000.0);
    EXPECT_DOUBLE_EQ(parseOk("-2.5E-2").asNumber(), -0.025);
    EXPECT_EQ(parseOk("\"hi\"").asString(), "hi");
    EXPECT_EQ(parseOk("  17  ").asInt(), 17); // outer whitespace ok
}

TEST(Json, ParsesContainers)
{
    const Json arr = parseOk("[1, 2, [3], {\"k\": 4}]");
    ASSERT_TRUE(arr.isArray());
    ASSERT_EQ(arr.size(), 4u);
    EXPECT_EQ(arr.elements()[0].asInt(), 1);
    EXPECT_EQ(arr.elements()[2].elements()[0].asInt(), 3);
    EXPECT_EQ(arr.elements()[3].find("k")->asInt(), 4);

    const Json obj = parseOk("{\"a\": [true], \"b\": null, \"c\": {}}");
    ASSERT_TRUE(obj.isObject());
    EXPECT_EQ(obj.size(), 3u);
    EXPECT_TRUE(obj.contains("b"));
    EXPECT_FALSE(obj.contains("z"));
    EXPECT_EQ(obj.find("z"), nullptr);
    EXPECT_TRUE(obj.find("c")->isObject());
    EXPECT_TRUE(parseOk("[]").isArray());
    EXPECT_EQ(parseOk("[]").size(), 0u);
    EXPECT_EQ(parseOk("{}").size(), 0u);
}

TEST(Json, ParsesStringEscapes)
{
    EXPECT_EQ(parseOk("\"a\\n\\t\\\"\\\\b\\/\"").asString(),
              "a\n\t\"\\b/");
    EXPECT_EQ(parseOk("\"\\u0041\\u00e9\\u20ac\"").asString(),
              "A\xc3\xa9\xe2\x82\xac"); // ASCII, 2-byte, 3-byte UTF-8
}

TEST(Json, RejectsMalformedDocuments)
{
    parseErr("");
    parseErr("   ");
    parseErr("tru");
    parseErr("nulls");   // trailing characters after the literal
    parseErr("1 2");     // two documents on one line
    parseErr("[1, 2");   // unterminated array
    parseErr("[1 2]");   // missing comma
    parseErr("{\"a\" 1}");  // missing colon
    parseErr("{\"a\": 1,}"); // trailing comma
    parseErr("{a: 1}");  // unquoted key
    parseErr("\"abc");   // unterminated string
    parseErr("\"\\x\""); // invalid escape
    parseErr("\"\\u12g4\""); // bad hex digit
    parseErr("\"\\ud800\""); // surrogate
    parseErr("01");      // leading zero
    parseErr("1.");      // bare decimal point
    parseErr("1e");      // empty exponent
    parseErr("-");       // sign only
    parseErr("[1] [2]"); // trailing garbage
}

TEST(Json, RejectsDuplicateObjectKeys)
{
    const std::string err = parseErr("{\"op\": 1, \"op\": 2}");
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(Json, RejectsRunawayNesting)
{
    std::string deep;
    for (int i = 0; i < 100; ++i)
        deep += '[';
    parseErr(deep);
}

TEST(Json, ErrorsCarryByteOffsets)
{
    const std::string err = parseErr("{\"a\": !}");
    EXPECT_NE(err.find("at byte"), std::string::npos);
}

// ------------------------------------------------------- serialization

TEST(Json, DumpIsCompactAndOrdered)
{
    Json ev = Json::object({{"event", "token"},
                            {"id", 7},
                            {"ok", true},
                            {"x", Json()},
                            {"arr", Json::array({1, 2, 3})}});
    EXPECT_EQ(ev.dump(), "{\"event\":\"token\",\"id\":7,\"ok\":true,"
                         "\"x\":null,\"arr\":[1,2,3]}");
}

TEST(Json, DumpNumbers)
{
    // Integral values print without a decimal point — ids and tokens
    // must round-trip textually, not as 7.000000.
    EXPECT_EQ(Json(7).dump(), "7");
    EXPECT_EQ(Json(-3).dump(), "-3");
    EXPECT_EQ(Json(0).dump(), "0");
    EXPECT_EQ(Json(u64{1} << 50).dump(), "1125899906842624");
    EXPECT_EQ(Json(2.5).dump(), "2.5");
    // Non-finite values have no JSON spelling: null, as in benchjson.
    EXPECT_EQ(Json(std::nan("")).dump(), "null");
    EXPECT_EQ(Json(INFINITY).dump(), "null");
}

TEST(Json, DumpEscapesStrings)
{
    EXPECT_EQ(Json("a\"b\\c\nd\te").dump(),
              "\"a\\\"b\\\\c\\nd\\te\"");
    EXPECT_EQ(Json(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(Json, RoundTripsThroughDump)
{
    const char *docs[] = {
        "null",
        "[1,2.5,-3,\"x\",true,null]",
        "{\"a\":{\"b\":[{\"c\":1}]},\"d\":\"e\\nf\"}",
        "{\"prompt\":[5,9,2],\"max_new\":8,\"stop\":[0]}",
    };
    for (const char *doc : docs) {
        const Json parsed = parseOk(doc);
        EXPECT_EQ(parsed.dump(), doc); // dump is canonical for these
        EXPECT_EQ(parseOk(parsed.dump()).dump(), parsed.dump());
    }
}

// ---------------------------------------------------------- accessors

TEST(Json, BuildersMutateInPlace)
{
    Json obj = Json::object();
    obj.set("a", 1);
    obj.set("b", "x");
    obj.set("a", 2); // replace keeps position
    EXPECT_EQ(obj.dump(), "{\"a\":2,\"b\":\"x\"}");

    Json arr = Json::array();
    arr.push(1);
    arr.push(Json::object({{"k", false}}));
    EXPECT_EQ(arr.dump(), "[1,{\"k\":false}]");
}

TEST(JsonDeathTest, AccessorsPanicOnTypeMismatch)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    EXPECT_DEATH((void)Json(1).asString(), "non-string");
    EXPECT_DEATH((void)Json("x").asNumber(), "non-number");
    EXPECT_DEATH((void)Json(true).elements(), "non-array");
    EXPECT_DEATH((void)Json().members(), "non-object");
    EXPECT_DEATH((void)Json(2.5).asInt(), "non-integral");
}

} // namespace
} // namespace olive
