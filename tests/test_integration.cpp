/**
 * @file
 * Cross-module integration tests: the full software-encode ->
 * hardware-decode -> ExpInt-MAC pipeline against float references, the
 * quantization framework against baselines on model-realistic tensors,
 * and end-to-end consistency of the evaluation harness.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "eval/perplexity.hpp"
#include "eval/schemes.hpp"
#include "hw/isa.hpp"
#include "hw/systolic_pe.hpp"
#include "models/synthetic.hpp"
#include "nn/transformer.hpp"
#include "quant/quantizer.hpp"
#include "sim/runner.hpp"
#include "tensor/gemm.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

TEST(Integration, CalibratedCodecThroughHardwarePath)
{
    // Calibrate the framework on a model-realistic tensor, then verify
    // the packed stream through the bit-exact hardware decoder equals
    // the software round trip element-for-element.
    const auto config = models::bertBase();
    Rng rng(3);
    Tensor w({128, 128});
    models::fillOutlierTensor(w, 0.09, config.profile.weightOutlierProb,
                              config.profile.clusterProb, 40.0, rng);

    const OliveQuantizer quantizer;
    const QuantDecision d = quantizer.calibrate(w.data());
    const OvpCodec codec = quantizer.makeCodec(d);

    const auto bytes = codec.encode(w.data());
    const auto sw = codec.decode(bytes, w.size());

    const hw::OvpDecoder dec(d.normal);
    const size_t bpp = codec.bytesPerPair();
    for (size_t p = 0; p < w.size() / 2; ++p) {
        hw::DecodedPair pair;
        if (bpp == 1)
            pair = dec.decodeByte(bytes[p]);
        else
            pair = dec.decodeBytes(bytes[2 * p], bytes[2 * p + 1]);
        EXPECT_FLOAT_EQ(
            static_cast<float>(pair.first.value()) * d.scale, sw[2 * p]);
        EXPECT_FLOAT_EQ(
            static_cast<float>(pair.second.value()) * d.scale,
            sw[2 * p + 1]);
    }
}

TEST(Integration, MmaOvpTileEqualsFloatGemmOfFakeQuant)
{
    // A full mmaovp GEMM tile (software encode of calibrated tensors,
    // ISA executor) must equal the float GEMM of the fake-quantized
    // values up to the two scale factors — the property that makes the
    // quantization framework and the accelerator numerically one
    // system.
    Rng rng(17);
    const size_t m = 8, n = 8, k = 32;
    std::vector<float> a_vals(m * k), b_vals(n * k);
    for (auto &v : a_vals)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 50.0));
    for (auto &v : b_vals)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 90.0) * 0.02);

    const OliveQuantizer quantizer;
    const QuantDecision da = quantizer.calibrate(a_vals);
    const QuantDecision db = quantizer.calibrate(b_vals);
    const OvpCodec ca = quantizer.makeCodec(da);
    const OvpCodec cb = quantizer.makeCodec(db);

    hw::MmaInstruction inst;
    inst.aType = (da.normal == NormalType::Flint4)
                     ? hw::OvpOperandType::OvpFlint4
                     : hw::OvpOperandType::OvpInt4;
    inst.bType = (db.normal == NormalType::Flint4)
                     ? hw::OvpOperandType::OvpFlint4
                     : hw::OvpOperandType::OvpInt4;
    inst.m = m;
    inst.n = n;
    inst.kDepth = k;

    std::vector<u8> a_bytes, b_bytes;
    for (size_t r = 0; r < m; ++r) {
        const auto bytes = ca.encode(
            std::span<const float>(a_vals.data() + r * k, k));
        a_bytes.insert(a_bytes.end(), bytes.begin(), bytes.end());
    }
    for (size_t c = 0; c < n; ++c) {
        const auto bytes = cb.encode(
            std::span<const float>(b_vals.data() + c * k, k));
        b_bytes.insert(b_bytes.end(), bytes.begin(), bytes.end());
    }

    const auto d_tile = hw::executeMma(inst, a_bytes, b_bytes);
    const auto aq = ca.fakeQuant(a_vals);
    const auto bq = cb.fakeQuant(b_vals);
    for (size_t r = 0; r < m; ++r) {
        for (size_t c = 0; c < n; ++c) {
            double ref = 0.0;
            for (size_t l = 0; l < k; ++l)
                ref += static_cast<double>(aq[r * k + l]) * bq[c * k + l];
            const double got = static_cast<double>(d_tile[r * n + c]) *
                               da.scale * db.scale;
            EXPECT_NEAR(got, ref, std::max(1e-3, std::fabs(ref) * 1e-5));
        }
    }
}

TEST(Integration, SystolicArrayAgreesWithIsaExecutor)
{
    // The cycle-accurate systolic array and the tensor-core ISA
    // executor implement the same arithmetic.
    Rng rng(23);
    const size_t m = 4, n = 4, k = 16;
    const float s = 0.5f;
    const OvpCodec codec(NormalType::Int4, s, s * 7);

    std::vector<float> a_vals(m * k), b_vals(n * k);
    for (auto &v : a_vals)
        v = static_cast<float>(rng.heavyTail(0.05, 3.5, 30.0) * s);
    for (auto &v : b_vals)
        v = static_cast<float>(rng.heavyTail(0.05, 3.5, 30.0) * s);

    std::vector<u8> a_bytes, b_bytes;
    for (size_t r = 0; r < m; ++r) {
        const auto bytes = codec.encode(
            std::span<const float>(a_vals.data() + r * k, k));
        a_bytes.insert(a_bytes.end(), bytes.begin(), bytes.end());
    }
    for (size_t c = 0; c < n; ++c) {
        const auto bytes = codec.encode(
            std::span<const float>(b_vals.data() + c * k, k));
        b_bytes.insert(b_bytes.end(), bytes.begin(), bytes.end());
    }

    const hw::OvpDecoder dec(NormalType::Int4);
    const auto sa_result =
        hw::systolicMatmulOvp(dec, m, k, n, a_bytes, b_bytes);

    hw::MmaInstruction inst;
    inst.m = m;
    inst.n = n;
    inst.kDepth = k;
    const auto tc_result = hw::executeMma(inst, a_bytes, b_bytes);

    for (size_t i = 0; i < m * n; ++i)
        EXPECT_EQ(sa_result[i], tc_result[i]) << i;
}

TEST(Integration, QuantizedBackboneGemmConsistency)
{
    // Re-quantizing an already-quantized backbone must be nearly
    // lossless: the second pass recalibrates on quantized data, so its
    // additional error must be far below the first pass's quantization
    // error.
    const auto config = models::bertBase();
    auto small = config;
    small.evalLayers = 1;
    small.evalDModel = 32;
    small.evalHeads = 2;
    small.evalDFf = 64;
    const auto backbone = models::makeBackbone(small, 5);
    OliveScheme olive(4);
    const auto q1 = nn::quantizeTransformer(backbone, olive);
    const auto q2 = nn::quantizeTransformer(q1, olive);
    const auto w0 = backbone.weightMatrices();
    const auto w1 = q1.weightMatrices();
    const auto w2 = q2.weightMatrices();
    for (size_t i = 0; i < w1.size(); ++i) {
        const double first_err = stats::mse(w0[i]->data(), w1[i]->data());
        const double second_err = stats::mse(w1[i]->data(), w2[i]->data());
        EXPECT_LT(second_err, 0.25 * first_err + 1e-12) << i;
    }
}

TEST(Integration, SchemesRankByMseOnModelTensors)
{
    // On model-realistic outlier tensors the reconstruction quality
    // must rank: olive8 > olive4 > {os6} > {int4} at equal-or-fewer
    // bits, the relationship the accuracy results build on.
    const auto config = models::opt67b();
    Rng rng(29);
    Tensor t({1u << 16});
    models::fillOutlierTensor(t, 1.0, 0.006,
                              config.profile.clusterProb, 150.0, rng);
    const auto xs = t.data();

    auto mse_of = [&](const char *id) {
        const SchemePtr s = eval::makeScheme(id);
        const auto rt = s->apply(xs, TensorKind::Weight);
        return stats::mse(xs, rt);
    };
    const double olive8 = mse_of("olive8");
    const double olive4 = mse_of("olive4");
    const double int4 = mse_of("int4");
    EXPECT_LT(olive8, olive4);
    EXPECT_LT(olive4 * 1.5, int4);
}

TEST(Integration, SimulatorsAgreeOnDesignOrdering)
{
    // Both platforms must rank OliVe first on every model.
    const auto fig9 = sim::runFigure9();
    for (size_t m = 0; m < fig9.modelNames.size(); ++m) {
        for (size_t d = 1; d < fig9.designs.size(); ++d) {
            EXPECT_GT(fig9.designs[0].speedup[m],
                      fig9.designs[d].speedup[m])
                << fig9.modelNames[m] << " vs " << fig9.designs[d].design;
        }
    }
    const auto fig10 = sim::runFigure10();
    for (size_t m = 0; m < fig10.modelNames.size(); ++m) {
        for (size_t d = 1; d < fig10.designs.size(); ++d) {
            EXPECT_GT(fig10.designs[0].speedup[m],
                      fig10.designs[d].speedup[m])
                << fig10.modelNames[m];
        }
    }
}

TEST(Integration, EndToEndLmPipelineSmoke)
{
    // Build an LM, calibrate, quantize, and verify the basic Table 9
    // relationships hold at smoke-test scale.
    auto config = models::gpt2Xl();
    config.evalLayers = 2;
    config.evalDModel = 64;
    config.evalDFf = 128;
    config.evalVocab = 256;
    eval::LmModel lm = eval::makeLm(config, 21);
    const auto text = eval::calibrateToTarget(lm, 15.0, 12, 10, 99);
    const double fp32 = eval::perplexity(lm, text);
    EXPECT_GT(fp32, 5.0);
    EXPECT_LT(fp32, 60.0);
    const double olive8 = eval::table9Cell(lm, text, "olive8");
    const double int4 = eval::table9Cell(lm, text, "int4");
    EXPECT_LT(olive8, int4);
}

} // namespace
} // namespace olive
