/**
 * @file
 * Tests of the abfloat outlier data type (Sec. 3.3): the Table 4 value
 * enumeration, Algorithm 2 encoding, adaptive-bias range placement, and
 * identifier-collision avoidance.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/abfloat.hpp"

namespace olive {
namespace {

TEST(AbFloat, Table4ValuesBias0)
{
    // Paper Table 4: 3-bit unsigned E2M1 with bias 0 represents
    // {0, 3, 4, 6, 8, 12, 16, 24}.
    const AbFloat f = AbFloat::e2m1(0);
    const std::vector<i64> expect = {0, 3, 4, 6, 8, 12, 16, 24};
    EXPECT_EQ(f.unsignedValueTable(), expect);
}

TEST(AbFloat, Bias2RangeIsComplementaryToInt4)
{
    // Sec. 3.3: bias = 2 extends E2M1 to {12 .. 96}, just above int4's 7.
    const AbFloat f = AbFloat::e2m1(2);
    EXPECT_DOUBLE_EQ(f.minNonzero(), 12.0);
    EXPECT_DOUBLE_EQ(f.maxValue(), 96.0);
    const std::vector<i64> expect = {0, 12, 16, 24, 32, 48, 64, 96};
    EXPECT_EQ(f.unsignedValueTable(), expect);
}

TEST(AbFloat, Bias3RangeIsComplementaryToFlint4)
{
    // Sec. 3.3: bias = 3 extends the range to {24 .. 192} for flint4.
    const AbFloat f = AbFloat::e2m1(3);
    EXPECT_DOUBLE_EQ(f.minNonzero(), 24.0);
    EXPECT_DOUBLE_EQ(f.maxValue(), 192.0);
}

TEST(AbFloat, PaperDecodeExample)
{
    // Sec. 4.2 example: with bias 2, the code 0101_2 decodes to 48
    // (exponent 2 + 10_2 = 4, integer 11_2 = 3, 3 << 4 = 48).
    const AbFloat f = AbFloat::e2m1(2);
    const ExpInt e = f.decodeExpInt(0b0101);
    EXPECT_EQ(e.exponent, 4);
    EXPECT_EQ(e.integer, 3);
    EXPECT_DOUBLE_EQ(f.decode(0b0101), 48.0);
}

TEST(AbFloat, EncodeNeverProducesZeroCodes)
{
    // Sec. 3.3: 0000 and 1000 are disabled for outliers so the OVP
    // identifier stays unambiguous.
    const AbFloat f = AbFloat::e2m1(2);
    for (double mag = 0.5; mag < 500.0; mag *= 1.31) {
        for (double sign : {1.0, -1.0}) {
            const u32 code = f.encode(sign * mag);
            EXPECT_NE(code & 0x7u, 0u)
                << "value " << sign * mag << " produced a +-0 code";
        }
    }
}

TEST(AbFloat, EncodeSignBit)
{
    const AbFloat f = AbFloat::e2m1(2);
    EXPECT_EQ(f.encode(48.0) & 0x8u, 0u);
    EXPECT_EQ(f.encode(-48.0) & 0x8u, 0x8u);
    EXPECT_DOUBLE_EQ(f.decode(f.encode(-48.0)), -48.0);
}

TEST(AbFloat, EncodeSaturates)
{
    const AbFloat f = AbFloat::e2m1(2);
    EXPECT_DOUBLE_EQ(f.decode(f.encode(1e9)), 96.0);
    EXPECT_DOUBLE_EQ(f.decode(f.encode(-1e9)), -96.0);
    EXPECT_DOUBLE_EQ(f.decode(f.encode(0.001)), 12.0);
    EXPECT_DOUBLE_EQ(f.decode(f.encode(-0.001)), -12.0);
}

TEST(AbFloat, E4M3Bias4StartsAboveInt8)
{
    const AbFloat f = AbFloat::e4m3(4);
    EXPECT_GT(f.minNonzero(), 127.0);
    EXPECT_DOUBLE_EQ(f.minNonzero(), 144.0); // (8|1) << 4
    EXPECT_DOUBLE_EQ(f.maxValue(), 15.0 * std::pow(2.0, 19));
}

/** Property: Algorithm 2 rounds to one of the two bracketing values. */
class AbFloatRoundingTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(AbFloatRoundingTest, EncodeIsNearestOrBracketing)
{
    const auto [eb, mb, bias] = GetParam();
    const AbFloat f(eb, mb, bias);
    const auto table = f.unsignedValueTable();
    for (double mag = static_cast<double>(f.minNonzero());
         mag <= f.maxValue(); mag *= 1.17) {
        const double got = f.decode(f.encode(mag));
        // Find bracketing representable values.
        double lo = table[1], hi = table.back();
        for (size_t i = 1; i < table.size(); ++i) {
            if (static_cast<double>(table[i]) <= mag)
                lo = static_cast<double>(table[i]);
            if (static_cast<double>(table[i]) >= mag) {
                hi = static_cast<double>(table[i]);
                break;
            }
        }
        EXPECT_TRUE(got == lo || got == hi)
            << f.name() << " mag=" << mag << " got=" << got << " lo=" << lo
            << " hi=" << hi;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Formats, AbFloatRoundingTest,
    ::testing::Values(std::make_tuple(2, 1, 0), std::make_tuple(2, 1, 2),
                      std::make_tuple(2, 1, 3), std::make_tuple(1, 2, 1),
                      std::make_tuple(3, 0, 2), std::make_tuple(4, 3, 4),
                      std::make_tuple(0, 3, 2)));

TEST(AbFloat, DecodeEncodeIsIdentityOnRepresentables)
{
    for (int bias : {0, 1, 2, 3, 4}) {
        const AbFloat f = AbFloat::e2m1(bias);
        for (i64 v : f.unsignedValueTable()) {
            if (v == 0)
                continue;
            EXPECT_DOUBLE_EQ(f.decode(f.encode(static_cast<double>(v))),
                             static_cast<double>(v))
                << f.name();
            EXPECT_DOUBLE_EQ(f.decode(f.encode(-static_cast<double>(v))),
                             -static_cast<double>(v))
                << f.name();
        }
    }
}

TEST(AbFloat, FourBitConfigurationsOfFig5)
{
    // The four signed 4-bit configurations the paper sweeps in Fig. 5.
    EXPECT_EQ(AbFloat(0, 3, 0).codeWidth(), 4);
    EXPECT_EQ(AbFloat(1, 2, 0).codeWidth(), 4);
    EXPECT_EQ(AbFloat(2, 1, 0).codeWidth(), 4);
    EXPECT_EQ(AbFloat(3, 0, 0).codeWidth(), 4);
    // More exponent bits buy range: E3M0 reaches 1 << 7, E2M1 reaches
    // 3 << 3; the mantissa-heavy formats stay in the teens.
    EXPECT_DOUBLE_EQ(AbFloat(3, 0, 0).maxValue(), 128.0);
    EXPECT_DOUBLE_EQ(AbFloat(2, 1, 0).maxValue(), 24.0);
    EXPECT_DOUBLE_EQ(AbFloat(1, 2, 0).maxValue(), 14.0);
    EXPECT_DOUBLE_EQ(AbFloat(0, 3, 0).maxValue(), 15.0);
    EXPECT_GT(AbFloat(3, 0, 0).maxValue(), AbFloat(2, 1, 0).maxValue());
    EXPECT_GT(AbFloat(2, 1, 0).maxValue(), AbFloat(1, 2, 0).maxValue());
}

TEST(AbFloat, NameFormatting)
{
    EXPECT_EQ(AbFloat::e2m1(2).name(), "E2M1(bias=2)");
    EXPECT_EQ(AbFloat::e4m3(4).name(), "E4M3(bias=4)");
}

} // namespace
} // namespace olive
