/**
 * @file
 * Property/fuzz tier for the seeded workload generator (serve/
 * workload): cross-process determinism pinned against golden FNV-1a
 * hashes and one byte-exact literal trace, 100-seed dump/parse/dump
 * round-trip bit-exactness, 100-seed distribution sanity for every
 * arrival and length kind, and a replay determinism pin that drives a
 * multi-turn trace through a retention-enabled paged engine twice and
 * hashes the per-request streams.
 *
 * The golden hashes are the determinism contract from the workload
 * header made enforceable: the generator samples only through the
 * repository Rng with integer arithmetic, so the same seed must
 * produce the same bytes on every platform, at every OLIVE_THREADS
 * value (the ctest workload legs run this binary at 1 and 8), and
 * across process runs.  A hash change here means the generator's
 * output changed — regenerate the constants only for an intentional
 * format or sampling change.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

/** FNV-1a 64-bit over a byte string (local golden-pin helper). */
u64
fnv1a64(const std::string &s)
{
    u64 h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Tiny causal LM (64-token vocabulary) for replay pins. */
eval::LmModel
workloadLm(u64 seed)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 24;
    config.evalHeads = 4;
    config.evalDFf = 48;
    config.evalVocab = 64;
    eval::LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, seed);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng rng(seed ^ 0xabcdULL);
    for (auto &v : lm.embedding.data())
        v = static_cast<float>(rng.gaussian());
    return lm;
}

/** A random but always-valid spec (round-trip fuzz input). */
serve::WorkloadSpec
randomSpec(Rng &rng)
{
    serve::WorkloadSpec s;
    s.seed = rng.next();
    s.sessions = 1 + static_cast<size_t>(rng.uniformInt(6));
    s.vocab = 8 + static_cast<size_t>(rng.uniformInt(57));

    using AK = serve::ArrivalSpec::Kind;
    switch (rng.uniformInt(4)) {
    case 0:
        s.arrival.kind = AK::Uniform;
        s.arrival.gap = static_cast<size_t>(rng.uniformInt(4));
        s.arrival.jitter = static_cast<size_t>(rng.uniformInt(3));
        break;
    case 1:
        s.arrival.kind = AK::Poisson;
        s.arrival.den = 2 + rng.uniformInt(6);
        s.arrival.num = 1 + rng.uniformInt(s.arrival.den);
        break;
    case 2:
        s.arrival.kind = AK::Bursty;
        s.arrival.burstSize = 1 + static_cast<size_t>(rng.uniformInt(4));
        s.arrival.gap = static_cast<size_t>(rng.uniformInt(5));
        s.arrival.jitter = static_cast<size_t>(rng.uniformInt(2));
        break;
    default:
        s.arrival.kind = AK::Diurnal;
        s.arrival.den = 2 + rng.uniformInt(8);
        s.arrival.num = 1 + rng.uniformInt(s.arrival.den);
        s.arrival.peakNum =
            s.arrival.num +
            rng.uniformInt(s.arrival.den - s.arrival.num + 1);
        s.arrival.period = 2 + static_cast<size_t>(rng.uniformInt(30));
        break;
    }

    using LK = serve::LengthSpec::Kind;
    const auto randomLength = [&]() {
        serve::LengthSpec l;
        const u64 kind = rng.uniformInt(3);
        l.kind = kind == 0   ? LK::Fixed
                 : kind == 1 ? LK::Uniform
                             : LK::LogNormalish;
        l.value = 1 + static_cast<size_t>(rng.uniformInt(8));
        l.lo = 1 + static_cast<size_t>(rng.uniformInt(4));
        l.hi = l.lo + static_cast<size_t>(rng.uniformInt(12));
        l.median = 1 + static_cast<size_t>(rng.uniformInt(8));
        l.tailCap = static_cast<size_t>(rng.uniformInt(4));
        return l;
    };
    s.promptLen = randomLength();
    s.outputLen = randomLength();

    s.systemPromptLen = static_cast<size_t>(rng.uniformInt(6));
    s.systemPromptPercent = rng.uniformInt(101);
    s.turnsMin = 1 + static_cast<size_t>(rng.uniformInt(3));
    s.turnsMax = s.turnsMin + static_cast<size_t>(rng.uniformInt(3));
    s.turnGapSteps = static_cast<size_t>(rng.uniformInt(3));
    s.stopTokenCount = static_cast<size_t>(rng.uniformInt(3));
    s.stopPercent = rng.uniformInt(101);
    return s;
}

// ---------------------------------------------------------------------
// Golden pins: cross-process / cross-platform determinism
// ---------------------------------------------------------------------

TEST(WorkloadGolden, NamedScenarioDumpsArePinned)
{
    const std::map<std::string, u64> golden = {
        {"uniform", 0xdfdba4a964e7fb74ULL},
        {"poisson", 0x21ccac8e69ddcab7ULL},
        {"bursty", 0xe7906e5183e10df4ULL},
        {"diurnal", 0xbd959490a3ffbd4dULL},
        {"shared-system", 0xaf0b9fd142beef12ULL},
        {"multi-turn", 0x51c7ff10b4cfdf7bULL},
    };
    const auto names = serve::Workload::scenarioNames();
    ASSERT_EQ(names.size(), golden.size());
    for (const auto &name : names) {
        const auto it = golden.find(name);
        ASSERT_NE(it, golden.end()) << "unpinned scenario " << name;
        const auto w =
            serve::Workload::generate(serve::Workload::namedSpec(name));
        w.validate();
        EXPECT_FALSE(w.requests().empty());
        const u64 h = fnv1a64(w.dump());
        EXPECT_EQ(h, it->second)
            << "scenario '" << name << "' dump hash changed; actual 0x"
            << std::hex << h;
    }
}

TEST(WorkloadGolden, TinyTraceIsByteExact)
{
    serve::WorkloadSpec s;
    s.seed = 7;
    s.sessions = 2;
    s.vocab = 8;
    s.arrival.kind = serve::ArrivalSpec::Kind::Uniform;
    s.arrival.gap = 1;
    s.promptLen.kind = serve::LengthSpec::Kind::Fixed;
    s.promptLen.value = 3;
    s.outputLen.kind = serve::LengthSpec::Kind::Fixed;
    s.outputLen.value = 2;
    const std::string expected =
        "{\"spec\":{\"seed\":\"7\",\"sessions\":2,\"vocab\":8,"
        "\"arrival\":{\"kind\":\"uniform\",\"gap\":1,\"jitter\":0,"
        "\"num\":1,\"den\":4,\"burst_size\":4,\"peak_num\":4,"
        "\"period\":64},\"prompt_len\":{\"kind\":\"fixed\","
        "\"value\":3,\"lo\":8,\"hi\":32,\"median\":16,"
        "\"tail_cap\":3},\"output_len\":{\"kind\":\"fixed\","
        "\"value\":2,\"lo\":8,\"hi\":32,\"median\":16,"
        "\"tail_cap\":3},\"system_prompt_len\":0,"
        "\"system_prompt_percent\":0,\"turns_min\":1,"
        "\"turns_max\":1,\"turn_gap_steps\":0,"
        "\"stop_token_count\":0,\"stop_percent\":0},"
        "\"requests\":[{\"id\":1,\"conversation\":1,\"turn\":0,"
        "\"submit_step\":0,\"gap_steps\":0,\"max_new\":2,"
        "\"user_tokens\":[2,6,0],\"stop_tokens\":[]},"
        "{\"id\":2,\"conversation\":2,\"turn\":0,"
        "\"submit_step\":1,\"gap_steps\":0,\"max_new\":2,"
        "\"user_tokens\":[1,4,4],\"stop_tokens\":[]}]}";
    EXPECT_EQ(serve::Workload::generate(s).dump(), expected);
}

TEST(WorkloadDeterminism, RepeatedGenerationIsByteIdentical)
{
    Rng rng(0x5eedULL);
    size_t distinct = 0;
    std::string prev;
    for (u64 seed = 1; seed <= 100; ++seed) {
        auto spec = randomSpec(rng);
        spec.seed = seed;
        const auto a = serve::Workload::generate(spec).dump();
        const auto b = serve::Workload::generate(spec).dump();
        ASSERT_EQ(a, b) << "seed " << seed;
        distinct += (a != prev);
        prev = a;
    }
    // Different seeds/specs must not collapse onto one trace.
    EXPECT_EQ(distinct, 100u);
}

// ---------------------------------------------------------------------
// Serialization round trip
// ---------------------------------------------------------------------

TEST(WorkloadRoundTrip, DumpParseDumpIsBitExact)
{
    Rng rng(0xf00dULL);
    for (int i = 0; i < 100; ++i) {
        const auto w = serve::Workload::generate(randomSpec(rng));
        const std::string once = w.dump();
        const auto back = serve::Workload::parse(once);
        back.validate();
        ASSERT_EQ(back.dump(), once) << "iteration " << i;
        ASSERT_EQ(back.requests().size(), w.requests().size());
    }
}

// ---------------------------------------------------------------------
// Distribution sanity (100 seeds per property)
// ---------------------------------------------------------------------

TEST(WorkloadDistributions, UniformLengthsStayInBounds)
{
    for (u64 seed = 1; seed <= 100; ++seed) {
        serve::WorkloadSpec s;
        s.seed = seed;
        s.sessions = 8;
        s.promptLen.kind = serve::LengthSpec::Kind::Uniform;
        s.promptLen.lo = 3;
        s.promptLen.hi = 9;
        s.outputLen.kind = serve::LengthSpec::Kind::Uniform;
        s.outputLen.lo = 2;
        s.outputLen.hi = 5;
        const auto w = serve::Workload::generate(s);
        w.validate();
        for (const auto &r : w.requests()) {
            EXPECT_GE(r.userTokens.size(), 3u);
            EXPECT_LE(r.userTokens.size(), 9u);
            EXPECT_GE(r.maxNew, 2u);
            EXPECT_LE(r.maxNew, 5u);
        }
    }
}

TEST(WorkloadDistributions, LogNormalishRespectsClampAndHasATail)
{
    size_t aboveMedian = 0;
    size_t total = 0;
    for (u64 seed = 1; seed <= 100; ++seed) {
        serve::WorkloadSpec s;
        s.seed = seed;
        s.sessions = 8;
        s.promptLen.kind = serve::LengthSpec::Kind::LogNormalish;
        s.promptLen.median = 6;
        s.promptLen.lo = 2;
        s.promptLen.hi = 40;
        s.promptLen.tailCap = 3;
        const auto w = serve::Workload::generate(s);
        for (const auto &r : w.requests()) {
            EXPECT_GE(r.userTokens.size(), 2u);
            EXPECT_LE(r.userTokens.size(), 40u);
            aboveMedian += (r.userTokens.size() > 6u);
            ++total;
        }
    }
    // The doubling tail must actually fire somewhere in the corpus,
    // but the clamp-and-jitter must also leave draws at or below the
    // median (the distribution is spread, not a constant shift).
    EXPECT_GT(aboveMedian, 0u);
    EXPECT_LT(aboveMedian, total);
}

TEST(WorkloadDistributions, BurstsArriveInGroupsOfBurstSize)
{
    for (u64 seed = 1; seed <= 100; ++seed) {
        serve::WorkloadSpec s;
        s.seed = seed;
        s.sessions = 9;
        s.arrival.kind = serve::ArrivalSpec::Kind::Bursty;
        s.arrival.burstSize = 3;
        s.arrival.gap = 5;
        s.arrival.jitter = 0;
        const auto w = serve::Workload::generate(s);
        w.validate();
        std::map<size_t, size_t> perTick;
        for (const auto &r : w.requests())
            ++perTick[r.submitStep];
        size_t lastTick = 0;
        bool first = true;
        for (const auto &[tick, count] : perTick) {
            EXPECT_EQ(count, 3u) << "tick " << tick;
            if (!first) {
                EXPECT_GE(tick - lastTick, 6u); // gap + 1
            }
            lastTick = tick;
            first = false;
        }
    }
}

TEST(WorkloadDistributions, StochasticArrivalsAreNondecreasing)
{
    using AK = serve::ArrivalSpec::Kind;
    for (const AK kind : {AK::Poisson, AK::Diurnal}) {
        for (u64 seed = 1; seed <= 100; ++seed) {
            serve::WorkloadSpec s;
            s.seed = seed;
            s.sessions = 12;
            s.arrival.kind = kind;
            s.arrival.num = 1;
            s.arrival.den = 3;
            s.arrival.peakNum = 3;
            s.arrival.period = 16;
            const auto w = serve::Workload::generate(s);
            w.validate(); // Checks nondecreasing turn-0 submits.
            size_t prev = 0;
            for (const auto &r : w.requests()) {
                EXPECT_GE(r.submitStep, prev);
                prev = r.submitStep;
            }
        }
    }
}

TEST(WorkloadDistributions, SharedSystemPromptPrefixesPopulation)
{
    for (u64 seed = 1; seed <= 100; ++seed) {
        serve::WorkloadSpec s;
        s.seed = seed;
        s.sessions = 6;
        s.systemPromptLen = 5;
        s.systemPromptPercent = 100;
        s.promptLen.kind = serve::LengthSpec::Kind::Fixed;
        s.promptLen.value = 4;
        const auto w = serve::Workload::generate(s);
        std::vector<int> sys;
        for (const auto &r : w.requests()) {
            ASSERT_EQ(r.turn, 0u);
            ASSERT_EQ(r.userTokens.size(), 9u); // 5 system + 4 fresh.
            const std::vector<int> head(r.userTokens.begin(),
                                        r.userTokens.begin() + 5);
            if (sys.empty())
                sys = head;
            EXPECT_EQ(head, sys) << "conversation " << r.conversation;
        }
    }

    // A 50% population must contain both members and non-members.
    size_t withSys = 0;
    size_t without = 0;
    for (u64 seed = 1; seed <= 100; ++seed) {
        serve::WorkloadSpec s;
        s.seed = seed;
        s.sessions = 6;
        s.systemPromptLen = 5;
        s.systemPromptPercent = 50;
        s.promptLen.kind = serve::LengthSpec::Kind::Fixed;
        s.promptLen.value = 4;
        const auto w = serve::Workload::generate(s);
        for (const auto &r : w.requests()) {
            if (r.userTokens.size() == 9u) {
                ++withSys;
            } else if (r.userTokens.size() == 4u) {
                ++without;
            } else {
                FAIL() << "unexpected turn-0 prompt length "
                       << r.userTokens.size();
            }
        }
    }
    EXPECT_GT(withSys, 0u);
    EXPECT_GT(without, 0u);
}

TEST(WorkloadDistributions, TurnAndStopPopulationsFollowSpec)
{
    bool sawMinTurns = false;
    bool sawMaxTurns = false;
    size_t withStops = 0;
    size_t without = 0;
    for (u64 seed = 1; seed <= 100; ++seed) {
        serve::WorkloadSpec s;
        s.seed = seed;
        s.sessions = 4;
        s.turnsMin = 2;
        s.turnsMax = 4;
        s.turnGapSteps = 1;
        s.stopTokenCount = 2;
        s.stopPercent = 50;
        const auto w = serve::Workload::generate(s);
        w.validate(); // Turns contiguous and ascending per session.
        std::map<u64, size_t> turns;
        for (const auto &r : w.requests()) {
            turns[r.conversation] =
                std::max(turns[r.conversation], r.turn + 1);
            if (r.stopTokens.empty())
                ++without;
            else {
                ASSERT_EQ(r.stopTokens.size(), 2u);
                ++withStops;
            }
            for (const int t : r.stopTokens) {
                EXPECT_GE(t, 0);
                EXPECT_LT(t, static_cast<int>(s.vocab));
            }
        }
        for (const auto &[conv, count] : turns) {
            EXPECT_GE(count, 2u) << "conversation " << conv;
            EXPECT_LE(count, 4u) << "conversation " << conv;
            sawMinTurns |= (count == 2u);
            sawMaxTurns |= (count == 4u);
        }
    }
    EXPECT_TRUE(sawMinTurns);
    EXPECT_TRUE(sawMaxTurns);
    EXPECT_GT(withStops, 0u);
    EXPECT_GT(without, 0u);
}

// ---------------------------------------------------------------------
// Replay determinism pin
// ---------------------------------------------------------------------

/** Timing-free digest of a replay: ids, prompts, streams, steps. */
std::string
replayDigest(const serve::ReplayResult &r)
{
    std::string out;
    for (const auto &q : r.requests) {
        out += std::to_string(q.traceId) + ":" +
               std::to_string(q.promptTokens) + ":" +
               std::to_string(q.sharedPrefixRows) + ":" +
               std::to_string(q.submitStep) + ":" +
               std::to_string(q.firstTokenStep) + ":" +
               std::to_string(q.finishStep) + ":";
        for (const int t : q.generated)
            out += std::to_string(t) + ",";
        out += ";";
    }
    out += "ticks=" + std::to_string(r.ticks);
    return out;
}

TEST(WorkloadReplay, MultiTurnRetentionStreamsArePinned)
{
    const auto lm = workloadLm(1);
    const auto w =
        serve::Workload::generate(serve::Workload::namedSpec(
            "multi-turn"));

    const auto run = [&](bool retain) {
        serve::ServeConfig cfg;
        cfg.maxBatchTokens = 16;
        cfg.maxActiveRequests = 4;
        cfg.pagedCache = true;
        cfg.blockRows = 4;
        cfg.retainPrefixes = retain;
        serve::ServeEngine engine(lm, cfg);
        return replayTrace(engine, w);
    };

    const auto on = run(true);
    const auto off = run(false);
    const auto onAgain = run(true);

    // In-process repeatability, and retention is stream-invisible.
    EXPECT_EQ(replayDigest(on), replayDigest(onAgain));
    ASSERT_EQ(on.requests.size(), off.requests.size());
    size_t sharedRows = 0;
    for (size_t i = 0; i < on.requests.size(); ++i) {
        EXPECT_EQ(on.requests[i].generated, off.requests[i].generated);
        sharedRows += on.requests[i].sharedPrefixRows;
    }
    EXPECT_GT(sharedRows, 0u); // Later turns found retained donors.

    // Cross-process / cross-thread-count pin: the ctest workload legs
    // run this binary at OLIVE_THREADS=1 and =8.
    const u64 h = fnv1a64(replayDigest(on));
    EXPECT_EQ(h, 0xb02eaed026b9493bULL)
        << "replay digest hash changed; actual 0x" << std::hex << h;
}

} // namespace
} // namespace olive
