/**
 * @file
 * Tests of the Fig. 6a tensor-core functional model: agreement with the
 * flat ISA executor, EDP widths per precision, issue accounting, and
 * accumulator chaining.
 */

#include <gtest/gtest.h>

#include "hw/isa.hpp"
#include "hw/tensor_core.hpp"
#include "quant/ovp.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

std::vector<u8>
packTile(const OvpCodec &codec, const std::vector<float> &vals,
         size_t vecs, size_t k)
{
    std::vector<u8> bytes;
    for (size_t v = 0; v < vecs; ++v) {
        const auto b = codec.encode(
            std::span<const float>(vals.data() + v * k, k));
        bytes.insert(bytes.end(), b.begin(), b.end());
    }
    return bytes;
}

std::vector<float>
tileData(size_t n, u64 seed, double scale = 1.0)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.03, 3.5, 40.0) * scale);
    return xs;
}

TEST(TensorCore, EdpWidthFollowsPrecision)
{
    EXPECT_EQ(hw::TensorCore(NormalType::Int4).edpWidth(), 16u);
    EXPECT_EQ(hw::TensorCore(NormalType::Flint4).edpWidth(), 16u);
    EXPECT_EQ(hw::TensorCore(NormalType::Int8).edpWidth(), 8u);
}

class TensorCoreVsIsa : public ::testing::TestWithParam<NormalType>
{
};

TEST_P(TensorCoreVsIsa, MatchesIsaExecutor)
{
    const NormalType type = GetParam();
    const size_t m = 4, n = 4, k = (bitWidth(type) == 4) ? 32 : 16;
    const float s = 0.5f;
    const OvpCodec codec(type, s, s * maxNormalMagnitude(type));

    const auto a_vals = tileData(m * k, 3, s);
    const auto b_vals = tileData(n * k, 5, s);
    const auto a_bytes = packTile(codec, a_vals, m, k);
    const auto b_bytes = packTile(codec, b_vals, n, k);

    const hw::TensorCore core(type);
    const auto d_core = core.mma(m, n, k, a_bytes, b_bytes);

    hw::MmaInstruction inst;
    inst.aType = (type == NormalType::Int4) ? hw::OvpOperandType::OvpInt4
                 : (type == NormalType::Flint4)
                     ? hw::OvpOperandType::OvpFlint4
                     : hw::OvpOperandType::OvpInt8;
    inst.bType = inst.aType;
    inst.m = m;
    inst.n = n;
    inst.kDepth = k;
    const auto d_isa = hw::executeMma(inst, a_bytes, b_bytes);
    EXPECT_EQ(d_core, d_isa);
}

INSTANTIATE_TEST_SUITE_P(Types, TensorCoreVsIsa,
                         ::testing::Values(NormalType::Int4,
                                           NormalType::Flint4,
                                           NormalType::Int8),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(TensorCore, IssueAccounting)
{
    const size_t m = 8, n = 8, k = 32;
    const OvpCodec codec(NormalType::Int4, 1.0f, 7.0);
    const auto a = packTile(codec, tileData(m * k, 7), m, k);
    const auto b = packTile(codec, tileData(n * k, 9), n, k);

    hw::TensorCoreStats stats;
    const hw::TensorCore core(NormalType::Int4);
    core.mma(m, n, k, a, b, {}, &stats);
    // 8x8 outputs x (32/16) chunks = 128 EDP issues over 16 units.
    EXPECT_EQ(stats.edpIssues, 128u);
    EXPECT_EQ(stats.octetCycles, 8u);
    EXPECT_EQ(stats.macs, 128u * 16u);
    // One decode per pair per operand vector: (8 + 8) vectors x 16.
    EXPECT_EQ(stats.decodeOps, 16u * 16u);
}

TEST(TensorCore, AccumulatorChaining)
{
    const size_t m = 2, n = 2, k = 16;
    const OvpCodec codec(NormalType::Int4, 1.0f, 7.0);
    const auto a = packTile(codec, tileData(m * k, 11), m, k);
    const auto b = packTile(codec, tileData(n * k, 13), n, k);

    const hw::TensorCore core(NormalType::Int4);
    const auto d0 = core.mma(m, n, k, a, b);
    const std::vector<i32> c = {100, -50, 7, 0};
    const auto d1 = core.mma(m, n, k, a, b, c);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(d1[i], d0[i] + c[i]);
}

TEST(TensorCore, OutliersFlowThroughEdp)
{
    // A tile with a guaranteed outlier-victim pair must still match the
    // fake-quant GEMM reference.
    const size_t m = 1, n = 1, k = 16;
    const float s = 1.0f;
    const OvpCodec codec(NormalType::Int4, s, 7.0);
    std::vector<float> a_vals(k, 1.0f);
    a_vals[0] = 48.0f; // outlier; a_vals[1] becomes the victim
    std::vector<float> b_vals(k, 2.0f);

    const auto a = packTile(codec, a_vals, 1, k);
    const auto b = packTile(codec, b_vals, 1, k);
    const hw::TensorCore core(NormalType::Int4);
    const auto d = core.mma(m, n, k, a, b);

    const auto aq = codec.fakeQuant(a_vals);
    const auto bq = codec.fakeQuant(b_vals);
    double ref = 0.0;
    for (size_t i = 0; i < k; ++i)
        ref += static_cast<double>(aq[i]) * bq[i];
    EXPECT_DOUBLE_EQ(static_cast<double>(d[0]) * s * s, ref);
    // 48 -> abfloat bucket, victim -> 0: 48*2 + 14*1*2 = 124.
    EXPECT_EQ(d[0], 48 * 2 + 14 * 2);
}

} // namespace
} // namespace olive
