/**
 * @file
 * Tests of the cycle-accurate output-stationary systolic array
 * (Sec. 4.3): dataflow correctness against a reference GEMM, wavefront
 * cycle counts, border decoder placement, and the packed-OVP
 * end-to-end path.
 */

#include <gtest/gtest.h>

#include "hw/systolic_pe.hpp"
#include "quant/ovp.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

std::vector<std::vector<ExpInt>>
toExpInt(const std::vector<std::vector<int>> &m)
{
    std::vector<std::vector<ExpInt>> out(m.size());
    for (size_t i = 0; i < m.size(); ++i) {
        for (int v : m[i])
            out[i].push_back(ExpInt{0, v});
    }
    return out;
}

TEST(Systolic, SmallGemmMatchesReference)
{
    const std::vector<std::vector<int>> a = {{1, 2, 3}, {4, 5, 6}};
    const std::vector<std::vector<int>> b = {{7, 8}, {9, 10}, {11, 12}};
    hw::SystolicArray array(2, 2);
    array.runGemm(toExpInt(a), toExpInt(b));
    // Reference products.
    EXPECT_EQ(array.result(0, 0), 1 * 7 + 2 * 9 + 3 * 11);
    EXPECT_EQ(array.result(0, 1), 1 * 8 + 2 * 10 + 3 * 12);
    EXPECT_EQ(array.result(1, 0), 4 * 7 + 5 * 9 + 6 * 11);
    EXPECT_EQ(array.result(1, 1), 4 * 8 + 5 * 10 + 6 * 12);
}

TEST(Systolic, WavefrontCycleCount)
{
    hw::SystolicArray array(4, 6);
    std::vector<std::vector<ExpInt>> a(4, std::vector<ExpInt>(10,
                                                              ExpInt{0, 1}));
    std::vector<std::vector<ExpInt>> b(10,
                                       std::vector<ExpInt>(6, ExpInt{0, 1}));
    const u64 cycles = array.runGemm(a, b);
    // depth + rows + cols - 1 wavefront.
    EXPECT_EQ(cycles, 10u + 4u + 6u - 1u);
    for (size_t r = 0; r < 4; ++r)
        for (size_t c = 0; c < 6; ++c)
            EXPECT_EQ(array.result(r, c), 10);
}

TEST(Systolic, BorderDecoderCount)
{
    // Sec. 4.3: n + m decoders instead of n * m.
    hw::SystolicArray array(64, 64);
    EXPECT_EQ(array.decoderCount(), 128u);
}

TEST(Systolic, RandomGemmMatchesReference)
{
    Rng rng(11);
    const size_t m = 5, k = 12, n = 7;
    std::vector<std::vector<int>> a(m, std::vector<int>(k));
    std::vector<std::vector<int>> b(k, std::vector<int>(n));
    for (auto &row : a)
        for (auto &v : row)
            v = static_cast<int>(rng.uniformInt(15)) - 7;
    for (auto &row : b)
        for (auto &v : row)
            v = static_cast<int>(rng.uniformInt(15)) - 7;

    hw::SystolicArray array(m, n);
    array.runGemm(toExpInt(a), toExpInt(b));
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            int ref = 0;
            for (size_t l = 0; l < k; ++l)
                ref += a[i][l] * b[l][j];
            EXPECT_EQ(array.result(i, j), ref) << i << "," << j;
        }
    }
}

TEST(Systolic, OvpEndToEndMatchesFakeQuantGemm)
{
    // Full path: float data -> OVP packed bytes -> border decoders ->
    // systolic MACs.  The integer result times scale_a * scale_b must
    // equal the float GEMM of the fake-quantized values exactly.
    Rng rng(42);
    const size_t m = 4, k = 16, n = 4;
    const float sa = 0.5f, sb = 0.25f;
    const OvpCodec ca(NormalType::Int4, sa, sa * 7);
    const OvpCodec cb(NormalType::Int4, sb, sb * 7);

    std::vector<float> a_vals(m * k), b_vals(n * k); // b stored (n, k)
    for (auto &v : a_vals)
        v = static_cast<float>(rng.heavyTail(0.05, 3.5, 30.0) * sa);
    for (auto &v : b_vals)
        v = static_cast<float>(rng.heavyTail(0.05, 3.5, 30.0) * sb);

    // Pack row-major A (m rows of k) and column-major B (n cols of k).
    std::vector<u8> a_bytes, b_bytes;
    for (size_t r = 0; r < m; ++r) {
        const auto bytes = ca.encode(
            std::span<const float>(a_vals.data() + r * k, k));
        a_bytes.insert(a_bytes.end(), bytes.begin(), bytes.end());
    }
    for (size_t c = 0; c < n; ++c) {
        const auto bytes = cb.encode(
            std::span<const float>(b_vals.data() + c * k, k));
        b_bytes.insert(b_bytes.end(), bytes.begin(), bytes.end());
    }

    const hw::OvpDecoder dec(NormalType::Int4);
    u64 cycles = 0;
    const auto result =
        hw::systolicMatmulOvp(dec, m, k, n, a_bytes, b_bytes, &cycles);
    EXPECT_EQ(cycles, k + m + n - 1);

    // Reference: float GEMM of the round-tripped values.
    const auto aq = ca.fakeQuant(a_vals);
    const auto bq = cb.fakeQuant(b_vals);
    for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double ref = 0.0;
            for (size_t l = 0; l < k; ++l)
                ref += static_cast<double>(aq[i * k + l]) * bq[j * k + l];
            const double got =
                static_cast<double>(result[i * n + j]) * sa * sb;
            EXPECT_NEAR(got, ref, 1e-3) << i << "," << j;
        }
    }
}

} // namespace
} // namespace olive
