/**
 * @file
 * Tests of the model-level framework extensions: the mixed-precision
 * OliVe scheme, PTQ reporting, the bulk-aware error criterion, and OVP
 * stream serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>

#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "nn/transformer.hpp"
#include "quant/framework.hpp"
#include "quant/stream.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

/**
 * Earlier tests in this binary spawn persistent pool workers (e.g. the
 * parallel reportTensors batch), so every death test must re-exec
 * instead of forking a multithreaded process.
 */
class ThreadsafeDeathStyle : public ::testing::Environment
{
  public:
    void SetUp() override
    {
        GTEST_FLAG_SET(death_test_style, "threadsafe");
    }
};
const auto *const kDeathStyleEnv =
    ::testing::AddGlobalTestEnvironment(new ThreadsafeDeathStyle);

std::vector<float>
outlierData(size_t n, double p, double max_sigma, u64 seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(p, 3.5, max_sigma));
    return xs;
}

// ---------------------------------------------------------------- mixed

TEST(MixedPrecision, StaysFourBitOnTameTensors)
{
    OliveMixedScheme mixed;
    const auto xs = outlierData(8192, 0.004, 20.0, 1);
    mixed.apply(xs, TensorKind::Weight);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 0.0);
    EXPECT_EQ(mixed.weightBits(), 4);
}

TEST(MixedPrecision, EscalatesWhenBulkSuffers)
{
    // A tight threshold forces escalation even on moderate tensors.
    OliveMixedScheme mixed(1e-6);
    const auto xs = outlierData(8192, 0.01, 100.0, 2);
    mixed.apply(xs, TensorKind::Weight);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 1.0);
    EXPECT_EQ(mixed.weightBits(), 8);
}

TEST(MixedPrecision, EscalatedTensorHasBetterSqnr)
{
    const auto xs = outlierData(8192, 0.01, 150.0, 3);
    OliveMixedScheme force8(1e-9);
    OliveMixedScheme keep4(1e9);
    const auto rt8 = force8.apply(xs, TensorKind::Weight);
    const auto rt4 = keep4.apply(xs, TensorKind::Weight);
    EXPECT_GT(stats::sqnrDb(xs, rt8), stats::sqnrDb(xs, rt4));
}

TEST(MixedPrecision, CalibrateCountsPerApplication)
{
    // Stats must reflect tensors actually quantized: calibration alone
    // counts nothing; every applier invocation counts once.
    OliveMixedScheme mixed(1e-6);
    const auto xs = outlierData(2048, 0.01, 60.0, 4);
    auto applier = mixed.calibrate(xs, TensorKind::Activation);
    EXPECT_EQ(mixed.appliedCount(), 0u);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 0.0);
    EXPECT_EQ(mixed.weightBits(), 4);

    const auto rt = applier(xs);
    EXPECT_EQ(rt.size(), xs.size());
    EXPECT_EQ(mixed.appliedCount(), 1u);
    EXPECT_EQ(mixed.escalatedCount(), 1u);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 1.0);
    EXPECT_EQ(mixed.weightBits(), 8);

    applier(xs);
    applier(xs);
    EXPECT_EQ(mixed.appliedCount(), 3u);
    EXPECT_EQ(mixed.escalatedCount(), 3u);
}

TEST(MixedPrecision, ApplyAndCalibrateFlowsShareCounters)
{
    OliveMixedScheme mixed(1e9); // never escalates
    const auto xs = outlierData(2048, 0.004, 10.0, 5);
    mixed.apply(xs, TensorKind::Weight);
    EXPECT_EQ(mixed.appliedCount(), 1u);

    auto applier = mixed.calibrate(xs, TensorKind::Activation);
    EXPECT_EQ(mixed.appliedCount(), 1u); // calibration did not count
    applier(xs);
    applier(xs);
    EXPECT_EQ(mixed.appliedCount(), 3u);
    EXPECT_EQ(mixed.escalatedCount(), 0u);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 0.0);
    EXPECT_EQ(mixed.weightBits(), 4);
}

// --------------------------------------------------------------- report

TEST(PtqReport, AggregatesAcrossTensors)
{
    PtqReport report;
    report.tensors.push_back(reportTensor("a", outlierData(4096, 0.005,
                                                           40.0, 5), 4));
    report.tensors.push_back(reportTensor("b", outlierData(4096, 0.005,
                                                           40.0, 6), 8));
    EXPECT_NEAR(report.averageBits(), 6.0, 1e-9);
    EXPECT_GT(report.meanSqnrDb(), 10.0);
    EXPECT_EQ(report.tensors[0].elems, 4096u);
    const std::string rendered = report.render();
    EXPECT_NE(rendered.find("a"), std::string::npos);
    EXPECT_NE(rendered.find("average bits"), std::string::npos);
}

TEST(PtqReport, BatchMatchesPerTensorReports)
{
    // reportTensors fans the tensors over the parallel pool; the result
    // must equal per-tensor reportTensor calls, in order.
    const auto xs0 = outlierData(4096, 0.005, 40.0, 20);
    const auto xs1 = outlierData(4096, 0.01, 80.0, 21);
    const auto xs2 = outlierData(2048, 0.002, 15.0, 22);
    const std::vector<NamedSpan> tensors = {
        {"t0", xs0}, {"t1", xs1}, {"t2", xs2}};
    const PtqReport batch = reportTensors(tensors, 4);
    ASSERT_EQ(batch.tensors.size(), 3u);
    for (size_t i = 0; i < tensors.size(); ++i) {
        const TensorReport ref =
            reportTensor(tensors[i].name, tensors[i].data, 4);
        EXPECT_EQ(batch.tensors[i].name, ref.name);
        EXPECT_EQ(batch.tensors[i].normal, ref.normal);
        EXPECT_EQ(batch.tensors[i].elems, ref.elems);
        EXPECT_DOUBLE_EQ(batch.tensors[i].threshold, ref.threshold);
        EXPECT_DOUBLE_EQ(batch.tensors[i].sqnrDb, ref.sqnrDb);
        EXPECT_DOUBLE_EQ(batch.tensors[i].outlierPairPct,
                         ref.outlierPairPct);
    }
}

TEST(PtqReport, EightBitBeatsFourBit)
{
    const auto xs = outlierData(8192, 0.008, 80.0, 7);
    const auto r4 = reportTensor("t", xs, 4);
    const auto r8 = reportTensor("t", xs, 8);
    EXPECT_GT(r8.sqnrDb, r4.sqnrDb + 6.0);
    EXPECT_EQ(r8.normal, NormalType::Int8);
}

TEST(BulkRelativeMse, IgnoresOutlierError)
{
    // Destroying only outliers must register ~zero bulk error; crushing
    // the bulk must register large.
    auto xs = outlierData(8192, 0.005, 60.0, 8);
    const double limit = 3.0 * stats::robustSigma(xs);

    auto clip_outliers = xs;
    for (auto &v : clip_outliers) {
        if (std::fabs(v) > limit)
            v = 0.0f;
    }
    EXPECT_LT(bulkRelativeMse(xs, clip_outliers), 1e-9);

    auto crush_bulk = xs;
    for (auto &v : crush_bulk) {
        if (std::fabs(v) <= limit)
            v = 0.0f;
    }
    EXPECT_GT(bulkRelativeMse(xs, crush_bulk), 0.9);
}

// ---------------------------------------------------------------- stream

TEST(Stream, RoundTripThroughBlob)
{
    const auto xs = outlierData(4097, 0.01, 50.0, 9); // odd count
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    const OvpStream stream = packStream(codec, xs);
    EXPECT_EQ(stream.count, xs.size());

    const auto blob = serialize(stream);
    EXPECT_EQ(blob.size(), stream.serializedSize());
    const OvpStream parsed = deserialize(blob);
    EXPECT_EQ(parsed.normal, stream.normal);
    EXPECT_EQ(parsed.abfloatBias, stream.abfloatBias);
    EXPECT_FLOAT_EQ(parsed.scale, stream.scale);
    EXPECT_DOUBLE_EQ(parsed.threshold, stream.threshold);
    EXPECT_EQ(parsed.bytes, stream.bytes);

    const auto direct = codec.fakeQuant(xs);
    const auto loaded = parsed.decode();
    ASSERT_EQ(loaded.size(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_FLOAT_EQ(loaded[i], direct[i]) << i;
}

TEST(Stream, RoundTripThroughFile)
{
    const auto xs = outlierData(1024, 0.01, 80.0, 10);
    OliveConfig cfg;
    cfg.bits = 8;
    const OliveQuantizer q(cfg);
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    const OvpStream stream = packStream(codec, xs);

    const std::string path = "/tmp/olive_test_stream.ovp";
    saveStream(stream, path);
    const OvpStream loaded = loadStream(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.normal, NormalType::Int8);
    EXPECT_EQ(loaded.bytes, stream.bytes);
    const auto vals = loaded.decode();
    EXPECT_GT(stats::sqnrDb(xs, vals), 25.0);
}

TEST(Stream, QuantizedTransformerRoundTripsBitwise)
{
    // Success-side coverage of the deserialize/loadStream validation:
    // every weight matrix of a transformer, quantized with the standard
    // OliVe flow, must survive pack -> serialize -> parse and
    // save -> load with a bitwise-identical decode.  This is the
    // checkpoint format a serving deployment would ship.
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 16;
    config.evalHeads = 2;
    config.evalDFf = 32;
    const nn::Transformer model = models::makeBackbone(config, 33);

    const OliveQuantizer q;
    const std::string path = "/tmp/olive_test_model_tensor.ovp";
    size_t tensors = 0;
    for (const Tensor *w : model.weightMatrices()) {
        const OvpCodec codec = q.makeCodec(q.calibrate(w->data()));
        const OvpStream stream = packStream(codec, w->data());
        const std::vector<float> direct = codec.fakeQuant(w->data());

        // In-memory blob round trip.
        const OvpStream parsed = deserialize(serialize(stream));
        const std::vector<float> from_blob = parsed.decode();
        ASSERT_EQ(from_blob.size(), direct.size());
        EXPECT_EQ(std::memcmp(from_blob.data(), direct.data(),
                              direct.size() * sizeof(float)),
                  0)
            << "blob decode diverged on tensor " << tensors;

        // File round trip.
        saveStream(stream, path);
        const OvpStream loaded = loadStream(path);
        EXPECT_EQ(loaded.bytes, stream.bytes);
        const std::vector<float> from_file = loaded.decode();
        EXPECT_EQ(std::memcmp(from_file.data(), direct.data(),
                              direct.size() * sizeof(float)),
                  0)
            << "file decode diverged on tensor " << tensors;
        ++tensors;
    }
    std::remove(path.c_str());
    EXPECT_EQ(tensors, 2u * 6u); // 6 weight matrices per layer
}

TEST(Stream, RejectsBadMagic)
{
    const auto xs = outlierData(64, 0.0, 4.0, 12);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    auto blob = serialize(packStream(codec, xs));
    blob[0] ^= 0xFF;
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(Stream, RejectsTruncation)
{
    const auto xs = outlierData(64, 0.0, 4.0, 13);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    auto blob = serialize(packStream(codec, xs));
    blob.resize(blob.size() - 8);
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "truncated");
    blob.resize(10);
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(Stream, RejectsTrailingGarbage)
{
    const auto xs = outlierData(64, 0.0, 4.0, 14);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    auto blob = serialize(packStream(codec, xs));
    blob.push_back(0xAB);
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "trailing");
}

TEST(Stream, RejectsOverflowingCount)
{
    // A hostile count of UINT64_MAX must die as fatal() in deserialize,
    // not wrap (count + 1) / 2 to zero pairs and explode later in an
    // uncontrolled allocation.
    const auto xs = outlierData(64, 0.0, 4.0, 17);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    auto blob = serialize(packStream(codec, xs));
    // The count's u64 sits after magic/version/type/bias/scale/threshold.
    for (size_t i = 28; i < 36; ++i)
        blob[i] = 0xFF;
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(Stream, RejectsNonPositiveScale)
{
    const auto xs = outlierData(64, 0.0, 4.0, 15);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    auto blob = serialize(packStream(codec, xs));
    // The scale's float bits sit after magic/version/type/bias.
    for (size_t i = 16; i < 20; ++i)
        blob[i] = 0;
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1), "scale");
}

TEST(Stream, LoadFromDirectoryIsFatal)
{
    // A directory path must die with fatal() (unseekable/unreadable),
    // not crash on a bogus size_t allocation from ftell() == -1.
    EXPECT_EXIT(loadStream("/tmp"), ::testing::ExitedWithCode(1), "/tmp");
}

TEST(Stream, LoadTruncatedFileIsFatal)
{
    const auto xs = outlierData(256, 0.01, 40.0, 16);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    const auto blob = serialize(packStream(codec, xs));

    const std::string path = "/tmp/olive_test_truncated.ovp";
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(blob.data(), 1, blob.size() - 5, f),
              blob.size() - 5);
    std::fclose(f);
    EXPECT_EXIT(loadStream(path), ::testing::ExitedWithCode(1),
                "truncated");
    std::remove(path.c_str());
}

TEST(Stream, FourBitStreamIsHalfAByte)
{
    const auto xs = outlierData(10000, 0.005, 30.0, 11);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    const OvpStream stream = packStream(codec, xs);
    // 5000 pair bytes + fixed header: the aligned-4-bit promise.
    EXPECT_EQ(stream.bytes.size(), 5000u);
    EXPECT_LT(static_cast<double>(stream.serializedSize()),
              0.51 * static_cast<double>(xs.size()));
}

} // namespace
} // namespace olive
