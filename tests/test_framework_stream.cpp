/**
 * @file
 * Tests of the model-level framework extensions: the mixed-precision
 * OliVe scheme, PTQ reporting, the bulk-aware error criterion, and OVP
 * stream serialization.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "quant/framework.hpp"
#include "quant/stream.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

std::vector<float>
outlierData(size_t n, double p, double max_sigma, u64 seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(p, 3.5, max_sigma));
    return xs;
}

// ---------------------------------------------------------------- mixed

TEST(MixedPrecision, StaysFourBitOnTameTensors)
{
    OliveMixedScheme mixed;
    const auto xs = outlierData(8192, 0.004, 20.0, 1);
    mixed.apply(xs, TensorKind::Weight);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 0.0);
    EXPECT_EQ(mixed.weightBits(), 4);
}

TEST(MixedPrecision, EscalatesWhenBulkSuffers)
{
    // A tight threshold forces escalation even on moderate tensors.
    OliveMixedScheme mixed(1e-6);
    const auto xs = outlierData(8192, 0.01, 100.0, 2);
    mixed.apply(xs, TensorKind::Weight);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 1.0);
    EXPECT_EQ(mixed.weightBits(), 8);
}

TEST(MixedPrecision, EscalatedTensorHasBetterSqnr)
{
    const auto xs = outlierData(8192, 0.01, 150.0, 3);
    OliveMixedScheme force8(1e-9);
    OliveMixedScheme keep4(1e9);
    const auto rt8 = force8.apply(xs, TensorKind::Weight);
    const auto rt4 = keep4.apply(xs, TensorKind::Weight);
    EXPECT_GT(stats::sqnrDb(xs, rt8), stats::sqnrDb(xs, rt4));
}

TEST(MixedPrecision, CalibrateCountsTowardRate)
{
    OliveMixedScheme mixed(1e-6);
    const auto xs = outlierData(2048, 0.01, 60.0, 4);
    auto applier = mixed.calibrate(xs, TensorKind::Activation);
    EXPECT_DOUBLE_EQ(mixed.escalationRate(), 1.0);
    const auto rt = applier(xs);
    EXPECT_EQ(rt.size(), xs.size());
}

// --------------------------------------------------------------- report

TEST(PtqReport, AggregatesAcrossTensors)
{
    PtqReport report;
    report.tensors.push_back(reportTensor("a", outlierData(4096, 0.005,
                                                           40.0, 5), 4));
    report.tensors.push_back(reportTensor("b", outlierData(4096, 0.005,
                                                           40.0, 6), 8));
    EXPECT_NEAR(report.averageBits(), 6.0, 1e-9);
    EXPECT_GT(report.meanSqnrDb(), 10.0);
    EXPECT_EQ(report.tensors[0].elems, 4096u);
    const std::string rendered = report.render();
    EXPECT_NE(rendered.find("a"), std::string::npos);
    EXPECT_NE(rendered.find("average bits"), std::string::npos);
}

TEST(PtqReport, EightBitBeatsFourBit)
{
    const auto xs = outlierData(8192, 0.008, 80.0, 7);
    const auto r4 = reportTensor("t", xs, 4);
    const auto r8 = reportTensor("t", xs, 8);
    EXPECT_GT(r8.sqnrDb, r4.sqnrDb + 6.0);
    EXPECT_EQ(r8.normal, NormalType::Int8);
}

TEST(BulkRelativeMse, IgnoresOutlierError)
{
    // Destroying only outliers must register ~zero bulk error; crushing
    // the bulk must register large.
    auto xs = outlierData(8192, 0.005, 60.0, 8);
    const double limit = 3.0 * stats::robustSigma(xs);

    auto clip_outliers = xs;
    for (auto &v : clip_outliers) {
        if (std::fabs(v) > limit)
            v = 0.0f;
    }
    EXPECT_LT(bulkRelativeMse(xs, clip_outliers), 1e-9);

    auto crush_bulk = xs;
    for (auto &v : crush_bulk) {
        if (std::fabs(v) <= limit)
            v = 0.0f;
    }
    EXPECT_GT(bulkRelativeMse(xs, crush_bulk), 0.9);
}

// ---------------------------------------------------------------- stream

TEST(Stream, RoundTripThroughBlob)
{
    const auto xs = outlierData(4097, 0.01, 50.0, 9); // odd count
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    const OvpStream stream = packStream(codec, xs);
    EXPECT_EQ(stream.count, xs.size());

    const auto blob = serialize(stream);
    EXPECT_EQ(blob.size(), stream.serializedSize());
    const OvpStream parsed = deserialize(blob);
    EXPECT_EQ(parsed.normal, stream.normal);
    EXPECT_EQ(parsed.abfloatBias, stream.abfloatBias);
    EXPECT_FLOAT_EQ(parsed.scale, stream.scale);
    EXPECT_DOUBLE_EQ(parsed.threshold, stream.threshold);
    EXPECT_EQ(parsed.bytes, stream.bytes);

    const auto direct = codec.fakeQuant(xs);
    const auto loaded = parsed.decode();
    ASSERT_EQ(loaded.size(), xs.size());
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_FLOAT_EQ(loaded[i], direct[i]) << i;
}

TEST(Stream, RoundTripThroughFile)
{
    const auto xs = outlierData(1024, 0.01, 80.0, 10);
    OliveConfig cfg;
    cfg.bits = 8;
    const OliveQuantizer q(cfg);
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    const OvpStream stream = packStream(codec, xs);

    const std::string path = "/tmp/olive_test_stream.ovp";
    saveStream(stream, path);
    const OvpStream loaded = loadStream(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.normal, NormalType::Int8);
    EXPECT_EQ(loaded.bytes, stream.bytes);
    const auto vals = loaded.decode();
    EXPECT_GT(stats::sqnrDb(xs, vals), 25.0);
}

TEST(Stream, RejectsBadMagic)
{
    const auto xs = outlierData(64, 0.0, 4.0, 12);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    auto blob = serialize(packStream(codec, xs));
    blob[0] ^= 0xFF;
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "bad magic");
}

TEST(Stream, RejectsTruncation)
{
    const auto xs = outlierData(64, 0.0, 4.0, 13);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    auto blob = serialize(packStream(codec, xs));
    blob.resize(blob.size() - 8);
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "truncated");
    blob.resize(10);
    EXPECT_EXIT(deserialize(blob), ::testing::ExitedWithCode(1),
                "truncated");
}

TEST(Stream, FourBitStreamIsHalfAByte)
{
    const auto xs = outlierData(10000, 0.005, 30.0, 11);
    const OliveQuantizer q;
    const OvpCodec codec = q.makeCodec(q.calibrate(xs));
    const OvpStream stream = packStream(codec, xs);
    // 5000 pair bytes + fixed header: the aligned-4-bit promise.
    EXPECT_EQ(stream.bytes.size(), 5000u);
    EXPECT_LT(static_cast<double>(stream.serializedSize()),
              0.51 * static_cast<double>(xs.size()));
}

} // namespace
} // namespace olive
