/**
 * @file
 * Property-based sweeps over the OVP codec and abfloat formats:
 * invariants that must hold for every (data type, threshold, bias)
 * combination rather than for hand-picked examples.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/abfloat.hpp"
#include "quant/ovp.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

using CodecParam = std::tuple<NormalType, double>; // type, threshold mult

class OvpCodecProperty : public ::testing::TestWithParam<CodecParam>
{
  protected:
    OvpCodec
    makeCodec() const
    {
        const auto [type, mult] = GetParam();
        const double threshold = mult * 3.0; // sigma = 1 data
        const float scale =
            static_cast<float>(threshold / maxNormalMagnitude(type));
        return OvpCodec(type, scale, threshold);
    }

    std::vector<float>
    makeData(u64 seed, size_t n = 4096) const
    {
        Rng rng(seed);
        std::vector<float> xs(n);
        for (auto &v : xs)
            v = static_cast<float>(rng.heavyTail(0.01, 3.3, 90.0));
        return xs;
    }
};

TEST_P(OvpCodecProperty, StreamSizeIsExactlyAligned)
{
    const OvpCodec codec = makeCodec();
    for (size_t n : {2u, 10u, 11u, 1000u, 4097u}) {
        const auto xs = makeData(n, n);
        const auto bytes = codec.encode(xs);
        EXPECT_EQ(bytes.size(), (n + 1) / 2 * codec.bytesPerPair()) << n;
    }
}

TEST_P(OvpCodecProperty, AtMostOneIdentifierPerPair)
{
    const OvpCodec codec = makeCodec();
    const auto xs = makeData(7);
    const auto bytes = codec.encode(xs);
    const u32 identifier = outlierIdentifier(codec.normalType());
    const size_t bpp = codec.bytesPerPair();
    for (size_t p = 0; p < bytes.size() / bpp; ++p) {
        u32 c1, c2;
        if (bpp == 1) {
            c1 = bytes[p] & 0xF;
            c2 = (bytes[p] >> 4) & 0xF;
        } else {
            c1 = bytes[2 * p];
            c2 = bytes[2 * p + 1];
        }
        EXPECT_FALSE(c1 == identifier && c2 == identifier) << p;
    }
}

TEST_P(OvpCodecProperty, RoundTripErrorBoundedForNormals)
{
    // Every below-threshold value must reconstruct within half a grid
    // step (nearest-value quantization) unless it was victimized.
    const OvpCodec codec = makeCodec();
    const auto xs = makeData(13);
    const auto rt = codec.fakeQuant(xs);
    const double grid = codec.scale();
    size_t victims = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        if (std::fabs(xs[i]) > codec.threshold())
            continue; // outlier path checked separately
        if (rt[i] == 0.0f) {
            // Either a legitimate round-to-zero or a victim sacrificed
            // for a neighbouring outlier; count the meaningful ones.
            if (std::fabs(xs[i]) > grid)
                ++victims;
            continue;
        }
        // flint's non-uniform grid is coarser near its top: allow the
        // local step, which is at most half the value plus one grid.
        const double tol =
            (codec.normalType() == NormalType::Flint4)
                ? std::max(grid, 0.34 * std::fabs(xs[i])) + 1e-5
                : 0.51 * grid + 1e-5;
        EXPECT_NEAR(rt[i], xs[i], tol) << i;
    }
    // Victims must stay a small minority.
    EXPECT_LT(victims, xs.size() / 20);
}

TEST_P(OvpCodecProperty, OutliersPreservedWithinAbfloatStep)
{
    const OvpCodec codec = makeCodec();
    const auto xs = makeData(17);
    const auto rt = codec.fakeQuant(xs);
    const double abmax = codec.outlierType().maxValue() * codec.scale();
    const double abmin = codec.outlierType().minNonzero() * codec.scale();
    for (size_t i = 0; i < xs.size(); i += 2) {
        const bool left_bigger = std::fabs(xs[i]) >= std::fabs(xs[i + 1]);
        const size_t keep = left_bigger ? i : i + 1;
        const double v = std::fabs(xs[keep]);
        // Skip normals, saturating extremes, and the (threshold, abfloat
        // minimum) gap where values promote up to the smallest outlier
        // code by design (Sec. 3.3: the ranges are complementary, not
        // overlapping).
        if (v <= codec.threshold() || v >= abmax || v < abmin)
            continue;
        // The surviving outlier must reconstruct within ~35 % (E2M1's
        // coarsest relative step is 4/3 between buckets).
        EXPECT_NEAR(rt[keep], xs[keep], 0.35 * v + 2.0 * codec.scale())
            << keep;
    }
}

TEST_P(OvpCodecProperty, DeterministicEncoding)
{
    const OvpCodec codec = makeCodec();
    const auto xs = makeData(23);
    EXPECT_EQ(codec.encode(xs), codec.encode(xs));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OvpCodecProperty,
    ::testing::Combine(::testing::Values(NormalType::Int4,
                                         NormalType::Flint4,
                                         NormalType::Int8),
                       ::testing::Values(0.8, 1.0, 1.5, 2.5)),
    [](const auto &info) {
        return toString(std::get<0>(info.param)) + "_t" +
               std::to_string(
                   static_cast<int>(std::get<1>(info.param) * 10));
    });

// ------------------------------------------------------ abfloat sweeps

class AbfloatProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(AbfloatProperty, EncodeIsMonotoneInMagnitude)
{
    const auto [eb, mb, bias] = GetParam();
    const AbFloat f(eb, mb, bias);
    double prev = 0.0;
    for (double mag = 0.3; mag < 2.0 * f.maxValue(); mag *= 1.09) {
        const double q = f.decode(f.encode(mag));
        EXPECT_GE(q + 1e-12, prev) << f.name() << " at " << mag;
        prev = q;
    }
}

TEST_P(AbfloatProperty, NegationSymmetry)
{
    const auto [eb, mb, bias] = GetParam();
    const AbFloat f(eb, mb, bias);
    for (double mag = 0.7; mag < 1.5 * f.maxValue(); mag *= 1.37) {
        EXPECT_DOUBLE_EQ(f.decode(f.encode(-mag)),
                         -f.decode(f.encode(mag)))
            << f.name();
    }
}

TEST_P(AbfloatProperty, AllCodesDecodeFinite)
{
    const auto [eb, mb, bias] = GetParam();
    const AbFloat f(eb, mb, bias);
    const u32 n = 1u << f.codeWidth();
    for (u32 code = 0; code < n; ++code) {
        const double v = f.decode(code);
        EXPECT_TRUE(std::isfinite(v)) << f.name() << " code " << code;
        EXPECT_LE(std::fabs(v), f.maxValue()) << f.name();
    }
}

TEST_P(AbfloatProperty, BiasShiftsRangeMultiplicatively)
{
    const auto [eb, mb, bias] = GetParam();
    const AbFloat base(eb, mb, bias);
    const AbFloat shifted(eb, mb, bias + 1);
    EXPECT_DOUBLE_EQ(shifted.maxValue(), 2.0 * base.maxValue());
    EXPECT_DOUBLE_EQ(shifted.minNonzero(), 2.0 * base.minNonzero());
}

INSTANTIATE_TEST_SUITE_P(
    Formats, AbfloatProperty,
    ::testing::Values(std::make_tuple(2, 1, 0), std::make_tuple(2, 1, 2),
                      std::make_tuple(2, 1, 3), std::make_tuple(4, 3, 0),
                      std::make_tuple(4, 3, 4), std::make_tuple(1, 2, 2),
                      std::make_tuple(3, 0, 1), std::make_tuple(0, 3, 3)));

} // namespace
} // namespace olive
