/**
 * @file
 * Property sweeps over the performance/energy simulators: monotonicity
 * in precision and bandwidth, workload-scaling behaviour, and
 * conservation relationships that must hold for any design.
 */

#include <gtest/gtest.h>

#include "models/config.hpp"
#include "models/workload.hpp"
#include "sim/gpu.hpp"
#include "sim/systolic.hpp"

namespace olive {
namespace {

std::vector<models::GemmOp>
bertOps()
{
    return models::inferenceGemms(models::bertBase());
}

// ------------------------------------------------------------ GPU model

class GpuBitsProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(GpuBitsProperty, LowerPrecisionNeverSlower)
{
    const double bits = GetParam();
    sim::GpuDesign lo;
    lo.name = "lo";
    lo.computeBits = bits;
    lo.weightBitsDram = bits;
    lo.weightBitsOnchip = bits;
    lo.actBits = bits;

    sim::GpuDesign hi = lo;
    hi.computeBits = bits * 2;
    hi.weightBitsDram = bits * 2;
    hi.weightBitsOnchip = bits * 2;
    hi.actBits = bits * 2;

    const sim::GpuModel model;
    const auto ops = bertOps();
    EXPECT_LE(model.run(ops, lo).cycles, model.run(ops, hi).cycles);
    EXPECT_LE(model.run(ops, lo).energy.total(),
              model.run(ops, hi).energy.total());
}

INSTANTIATE_TEST_SUITE_P(Bits, GpuBitsProperty,
                         ::testing::Values(4.0, 8.0));

TEST(GpuModelProperty, DecodeOverheadCostsCycles)
{
    sim::GpuDesign base = sim::gpuOlive();
    sim::GpuDesign no_decode = base;
    no_decode.decodeOverhead = 0.0;
    const sim::GpuModel model;
    const auto ops = bertOps();
    EXPECT_GT(model.run(ops, base).cycles,
              model.run(ops, no_decode).cycles);
}

TEST(GpuModelProperty, DramEfficiencyHurtsMemoryBoundRuns)
{
    // Make a memory-bound workload: tiny m (decode-like GEMM).
    std::vector<models::GemmOp> ops = {
        {"decode_proj", 2, 4096, 4096, 64, true}};
    sim::GpuDesign base = sim::gpuFp16();
    sim::GpuDesign slow_dram = base;
    slow_dram.dramEfficiency = 0.5;
    const sim::GpuModel model;
    EXPECT_GT(model.run(ops, slow_dram).cycles,
              1.5 * model.run(ops, base).cycles);
}

TEST(GpuModelProperty, CyclesScaleWithWorkload)
{
    const sim::GpuModel model;
    const auto ops1 = bertOps();
    auto ops2 = ops1;
    for (auto &op : ops2)
        op.count *= 2;
    const auto d = sim::gpuOlive();
    const double c1 = model.run(ops1, d).cycles;
    const double c2 = model.run(ops2, d).cycles;
    EXPECT_NEAR(c2 / c1, 2.0, 0.1);
}

TEST(GpuModelProperty, MixedFractionInterpolates)
{
    sim::GpuDesign pure4 = sim::gpuOlive();
    pure4.decodeOverhead = 0.0;
    sim::GpuDesign pure8 = sim::gpuInt8();
    pure8.sustainedEfficiency = 1.0;
    sim::GpuDesign mixed = sim::gpuAnt();
    mixed.decodeOverhead = 0.0;
    mixed.sustainedEfficiency = 1.0;

    const sim::GpuModel model;
    const auto ops = bertOps();
    const double c4 = model.run(ops, pure4).cycles;
    const double c8 = model.run(ops, pure8).cycles;
    const double cm = model.run(ops, mixed).cycles;
    EXPECT_GT(cm, c4);
    EXPECT_LT(cm, c8 * 1.01);
}

TEST(GpuModelProperty, L2PanelEffectOnLargeModels)
{
    // Shrinking the effective L2 must hurt FP16 on the largest model
    // more than 4-bit OliVe (whose panels fit).
    sim::GpuConfig small_l2;
    small_l2.l2CapacityBytes = 1.0e6;
    sim::GpuConfig big_l2;
    big_l2.l2CapacityBytes = 64.0e6;

    const auto ops = models::inferenceGemms(models::bloom7b1());
    const double fp16_small =
        sim::GpuModel(small_l2).run(ops, sim::gpuFp16()).cycles;
    const double fp16_big =
        sim::GpuModel(big_l2).run(ops, sim::gpuFp16()).cycles;
    const double olive_small =
        sim::GpuModel(small_l2).run(ops, sim::gpuOlive()).cycles;
    const double olive_big =
        sim::GpuModel(big_l2).run(ops, sim::gpuOlive()).cycles;
    EXPECT_GT(fp16_small / fp16_big, olive_small / olive_big);
}

// ------------------------------------------------------ systolic model

TEST(SystolicProperty, PeCountInverseToArea)
{
    const sim::SystolicModel model;
    sim::AccelDesign a = sim::accelOlive();
    sim::AccelDesign b = a;
    b.peAreaUm2 = a.peAreaUm2 * 2.0;
    EXPECT_NEAR(model.peCount(a), 2.0 * model.peCount(b), 1.0);
}

TEST(SystolicProperty, ControllerStealsArea)
{
    const sim::SystolicModel model;
    sim::AccelDesign with = sim::accelOlive();
    with.controllerAreaFrac = 0.4;
    EXPECT_NEAR(model.peCount(with),
                0.6 * model.peCount(sim::accelOlive()), 1.0);
}

TEST(SystolicProperty, Int8FractionSlowsCompute)
{
    const sim::SystolicModel model;
    const auto ops = bertOps();
    sim::AccelDesign pure = sim::accelOlive();
    sim::AccelDesign half = pure;
    half.int8Fraction = 0.5;
    const double cp = model.run(ops, pure).cycles;
    const double ch = model.run(ops, half).cycles;
    // Half the MACs cost 4 slot-cycles: 0.5*1 + 0.5*4 = 2.5x.
    EXPECT_NEAR(ch / cp, 2.5, 0.4);
}

TEST(SystolicProperty, IndexBitsCostDramEnergy)
{
    const sim::SystolicModel model;
    const auto ops = bertOps();
    sim::AccelDesign base = sim::accelOlive();
    sim::AccelDesign indexed = base;
    indexed.indexBits = 2.0;
    EXPECT_GT(model.run(ops, indexed).energy.dram,
              1.2 * model.run(ops, base).energy.dram);
}

TEST(SystolicProperty, UtilizationScalesLatency)
{
    const sim::SystolicModel model;
    const auto ops = bertOps();
    sim::AccelDesign full = sim::accelOlive();
    full.utilization = 1.0;
    sim::AccelDesign half = full;
    half.utilization = 0.5;
    EXPECT_NEAR(model.run(ops, half).cycles /
                    model.run(ops, full).cycles,
                2.0, 0.3);
}

TEST(SystolicProperty, StaticEnergyProportionalToTime)
{
    const sim::SystolicModel model;
    const auto ops = bertOps();
    const auto r1 = model.run(ops, sim::accelOlive());
    auto ops2 = ops;
    for (auto &op : ops2)
        op.count *= 3;
    const auto r3 = model.run(ops2, sim::accelOlive());
    EXPECT_NEAR(r3.energy.staticE / r1.energy.staticE,
                r3.cycles / r1.cycles, 1e-6);
}

// --------------------------------------------------------- workload math

TEST(WorkloadProperty, MacsMatchClosedForm)
{
    for (const auto &c : models::figureModels()) {
        const auto ops = models::inferenceGemms(c);
        u64 expect = 0;
        const u64 tokens = c.batch * c.seqLen;
        expect += 4 * tokens * c.dModel * c.dModel * c.layers; // qkvo
        expect += 2 * tokens * c.dModel * c.dFf * c.layers;    // ffn
        expect += 2 * c.batch * c.nHeads * c.layers * c.seqLen *
                  c.seqLen * (c.dModel / c.nHeads);            // attention
        EXPECT_EQ(models::totalMacs(ops), expect) << c.name;
    }
}

} // namespace
} // namespace olive
