/**
 * @file
 * Tests of the mmaovp instruction set (Sec. 4.6): mnemonics, the
 * functional executor against integer references, mixed operand types,
 * and accumulator chaining.
 */

#include <gtest/gtest.h>

#include "hw/isa.hpp"
#include "quant/ovp.hpp"
#include "util/bitops.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

TEST(Isa, Mnemonics)
{
    hw::MmaInstruction inst;
    inst.aType = hw::OvpOperandType::OvpInt4;
    inst.bType = hw::OvpOperandType::OvpFlint4;
    EXPECT_EQ(inst.mnemonic(), "mmaovp.s32.ovpi4.ovpf4.s32.s4");

    hw::MmaInstruction base;
    base.aType = hw::OvpOperandType::Int4;
    base.bType = hw::OvpOperandType::Int4;
    EXPECT_EQ(base.mnemonic(), "mma.s32.s4.s4.s32");
}

TEST(Isa, NormalTypeMapping)
{
    EXPECT_EQ(hw::normalTypeOf(hw::OvpOperandType::OvpInt4),
              NormalType::Int4);
    EXPECT_EQ(hw::normalTypeOf(hw::OvpOperandType::OvpFlint4),
              NormalType::Flint4);
    EXPECT_EQ(hw::normalTypeOf(hw::OvpOperandType::OvpInt8),
              NormalType::Int8);
}

/** Pack plain int4 values (no OVP semantics) into nibbles. */
std::vector<u8>
packS4(const std::vector<int> &vals)
{
    std::vector<u8> out;
    for (size_t i = 0; i < vals.size(); i += 2) {
        out.push_back(bits::packNibbles(
            static_cast<u8>(vals[i + 1]) & 0xF,
            static_cast<u8>(vals[i]) & 0xF));
    }
    return out;
}

TEST(Isa, BaselineMmaMatchesIntegerReference)
{
    hw::MmaInstruction inst;
    inst.aType = hw::OvpOperandType::Int4;
    inst.bType = hw::OvpOperandType::Int4;
    inst.m = 2;
    inst.n = 2;
    inst.kDepth = 4;

    // A rows and B columns of int4 values.
    const std::vector<int> a = {1, -2, 3, -4, 5, 6, -7, 0};
    const std::vector<int> b = {1, 1, 1, 1, 2, -2, 2, -2};
    const auto d = hw::executeMma(inst, packS4(a), packS4(b));

    auto ref = [&](size_t r, size_t c) {
        int acc = 0;
        for (size_t l = 0; l < 4; ++l)
            acc += a[r * 4 + l] * b[c * 4 + l];
        return acc;
    };
    EXPECT_EQ(d[0], ref(0, 0));
    EXPECT_EQ(d[1], ref(0, 1));
    EXPECT_EQ(d[2], ref(1, 0));
    EXPECT_EQ(d[3], ref(1, 1));
}

TEST(Isa, AccumulatorChaining)
{
    hw::MmaInstruction inst;
    inst.aType = hw::OvpOperandType::Int4;
    inst.bType = hw::OvpOperandType::Int4;
    inst.m = 1;
    inst.n = 1;
    inst.kDepth = 2;
    const auto d0 = hw::executeMma(inst, packS4({3, 4}), packS4({5, 6}));
    EXPECT_EQ(d0[0], 39);
    const auto d1 =
        hw::executeMma(inst, packS4({3, 4}), packS4({5, 6}), {100});
    EXPECT_EQ(d1[0], 139);
}

TEST(Isa, OvpTileMatchesFakeQuantReference)
{
    // OVP-packed operands with outliers: the executor output times the
    // scales must match the float GEMM of the fake-quantized data.
    Rng rng(99);
    hw::MmaInstruction inst;
    inst.aType = hw::OvpOperandType::OvpInt4;
    inst.bType = hw::OvpOperandType::OvpFlint4;
    inst.m = 4;
    inst.n = 4;
    inst.kDepth = 16;

    const float sa = 1.0f, sb = 0.5f;
    const OvpCodec ca(NormalType::Int4, sa, sa * 7);
    const OvpCodec cb(NormalType::Flint4, sb, sb * 16);

    std::vector<float> a_vals(inst.m * inst.kDepth);
    std::vector<float> b_vals(inst.n * inst.kDepth);
    for (auto &v : a_vals)
        v = static_cast<float>(rng.heavyTail(0.08, 3.5, 60.0));
    for (auto &v : b_vals)
        v = static_cast<float>(rng.heavyTail(0.08, 3.5, 120.0) * sb);

    std::vector<u8> a_bytes, b_bytes;
    for (size_t r = 0; r < inst.m; ++r) {
        const auto bytes = ca.encode(std::span<const float>(
            a_vals.data() + r * inst.kDepth, inst.kDepth));
        a_bytes.insert(a_bytes.end(), bytes.begin(), bytes.end());
    }
    for (size_t c = 0; c < inst.n; ++c) {
        const auto bytes = cb.encode(std::span<const float>(
            b_vals.data() + c * inst.kDepth, inst.kDepth));
        b_bytes.insert(b_bytes.end(), bytes.begin(), bytes.end());
    }

    const auto d = hw::executeMma(inst, a_bytes, b_bytes);
    const auto aq = ca.fakeQuant(a_vals);
    const auto bq = cb.fakeQuant(b_vals);
    for (size_t r = 0; r < inst.m; ++r) {
        for (size_t c = 0; c < inst.n; ++c) {
            double ref = 0.0;
            for (size_t l = 0; l < inst.kDepth; ++l) {
                ref += static_cast<double>(aq[r * inst.kDepth + l]) *
                       bq[c * inst.kDepth + l];
            }
            const double got =
                static_cast<double>(d[r * inst.n + c]) * sa * sb;
            EXPECT_NEAR(got, ref, 1e-3) << r << "," << c;
        }
    }
}

TEST(Isa, OvpInt8Tile)
{
    Rng rng(7);
    hw::MmaInstruction inst;
    inst.aType = hw::OvpOperandType::OvpInt8;
    inst.bType = hw::OvpOperandType::OvpInt8;
    inst.m = 2;
    inst.n = 2;
    inst.kDepth = 8;

    const float s = 1.0f;
    const OvpCodec codec(NormalType::Int8, s, s * 127);
    std::vector<float> a_vals(inst.m * inst.kDepth);
    std::vector<float> b_vals(inst.n * inst.kDepth);
    for (auto &v : a_vals)
        v = static_cast<float>(rng.gaussian(0.0, 40.0));
    for (auto &v : b_vals)
        v = static_cast<float>(rng.heavyTail(0.1, 3.5, 10.0) * 35.0);

    std::vector<u8> a_bytes, b_bytes;
    for (size_t r = 0; r < inst.m; ++r) {
        const auto bytes = codec.encode(std::span<const float>(
            a_vals.data() + r * inst.kDepth, inst.kDepth));
        a_bytes.insert(a_bytes.end(), bytes.begin(), bytes.end());
    }
    for (size_t c = 0; c < inst.n; ++c) {
        const auto bytes = codec.encode(std::span<const float>(
            b_vals.data() + c * inst.kDepth, inst.kDepth));
        b_bytes.insert(b_bytes.end(), bytes.begin(), bytes.end());
    }

    const auto d = hw::executeMma(inst, a_bytes, b_bytes);
    const auto aq = codec.fakeQuant(a_vals);
    const auto bq = codec.fakeQuant(b_vals);
    for (size_t r = 0; r < inst.m; ++r) {
        for (size_t c = 0; c < inst.n; ++c) {
            double ref = 0.0;
            for (size_t l = 0; l < inst.kDepth; ++l) {
                ref += static_cast<double>(aq[r * inst.kDepth + l]) *
                       bq[c * inst.kDepth + l];
            }
            EXPECT_NEAR(static_cast<double>(d[r * inst.n + c]), ref, 1e-3);
        }
    }
}

} // namespace
} // namespace olive
