/**
 * @file
 * Tests of the evaluation harness: the scheme registry, per-site
 * activation calibration, the Fig. 3 transforms, task data generation,
 * and small end-to-end accuracy/perplexity pipelines whose orderings
 * must match the paper's qualitative results.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "eval/accuracy.hpp"
#include "eval/perplexity.hpp"
#include "eval/schemes.hpp"
#include "eval/tasks.hpp"
#include "eval/transforms.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

models::ModelConfig
tinyConfig()
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 48;
    config.evalHeads = 4;
    config.evalDFf = 96;
    config.evalSeqLen = 12;
    return config;
}

// -------------------------------------------------------------- registry

TEST(Schemes, RegistryConstructsEverything)
{
    for (const auto &id : eval::schemeRegistry()) {
        const SchemePtr s = eval::makeScheme(id);
        ASSERT_NE(s, nullptr) << id;
        EXPECT_FALSE(s->name().empty()) << id;
        EXPECT_GE(s->weightBits(), 3) << id;
    }
}

TEST(Schemes, Fp32IsIdentity)
{
    const SchemePtr s = eval::makeScheme("fp32");
    const std::vector<float> xs = {1.5f, -2.25f, 1e6f};
    EXPECT_EQ(s->apply(xs, TensorKind::Weight), xs);
    EXPECT_TRUE(s->weightOnly() == false || s->weightBits() == 32);
}

TEST(Schemes, OutputSizeAlwaysMatches)
{
    Rng rng(1);
    std::vector<float> xs(513); // odd size
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 40.0));
    for (const auto &id : eval::schemeRegistry()) {
        const SchemePtr s = eval::makeScheme(id);
        EXPECT_EQ(s->apply(xs, TensorKind::Weight).size(), xs.size()) << id;
        EXPECT_EQ(s->apply(xs, TensorKind::Activation).size(), xs.size())
            << id;
    }
}

TEST(Schemes, SiteCacheCalibratesOncePerSite)
{
    SchemePtr inner = eval::makeScheme("int8");
    eval::SiteCachedScheme cache(*inner);
    Rng rng(2);
    std::vector<float> a(256), b(256);
    for (auto &v : a)
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b)
        v = static_cast<float>(rng.gaussian() * 3.0);

    cache.beginForward();
    cache.apply(a, TensorKind::Activation); // site 0 calibrated on a
    cache.apply(b, TensorKind::Activation); // site 1 calibrated on b
    EXPECT_EQ(cache.siteCount(), 2u);

    cache.beginForward();
    cache.apply(a, TensorKind::Activation);
    cache.apply(b, TensorKind::Activation);
    EXPECT_EQ(cache.siteCount(), 2u) << "no new sites on later forwards";
}

TEST(Schemes, SiteCacheFrozenScaleApplied)
{
    SchemePtr inner = eval::makeScheme("int8");
    eval::SiteCachedScheme cache(*inner, /*calib_examples=*/1);
    std::vector<float> calib = {1.0f, -1.0f, 0.5f, -0.5f};
    cache.beginForward();
    cache.apply(calib, TensorKind::Activation);
    // A later, larger tensor must saturate under the frozen scale.
    cache.beginForward();
    const auto out = cache.apply({{100.0f, -100.0f, 0.5f, 0.0f}},
                                 TensorKind::Activation);
    EXPECT_LT(out[0], 2.0f);
    EXPECT_GT(out[1], -2.0f);
}

// ------------------------------------------------------------ transforms

TEST(Transforms, ClipOutliersBoundsRange)
{
    Rng rng(3);
    std::vector<float> xs(8192);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 4.0, 100.0));
    eval::ClipOutliersScheme clip(3.0);
    const auto out = clip.apply(xs, TensorKind::Weight);
    const double sigma = stats::stddev(xs);
    const double m = stats::mean(xs);
    for (float v : out)
        ASSERT_LE(std::fabs(v - m), 3.0 * sigma + 1e-3);
}

TEST(Transforms, PruneVictimsZeroesOnlyNeighbours)
{
    // A large Gaussian bulk so the one planted outlier dominates the
    // 3-sigma rule instead of inflating sigma itself.
    Rng rng(6);
    std::vector<float> xs(512);
    for (auto &v : xs)
        v = static_cast<float>(rng.gaussian() * 0.5);
    xs[2] = 50.0f;
    eval::PruneVictimsScheme prune(3.0);
    const auto out = prune.apply(xs, TensorKind::Weight);
    EXPECT_FLOAT_EQ(out[2], 50.0f) << "the outlier itself survives";
    EXPECT_FLOAT_EQ(out[3], 0.0f) << "its pair partner is the victim";
    EXPECT_FLOAT_EQ(out[0], xs[0]);
    EXPECT_FLOAT_EQ(out[100], xs[100]);
}

TEST(Transforms, PruneRandomMatchesOutlierCount)
{
    Rng rng(4);
    std::vector<float> xs(20000);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 4.0, 60.0));
    const double sigma = stats::stddev(xs);
    const double m = stats::mean(xs);
    size_t outliers = 0;
    for (float v : xs)
        outliers += std::fabs(v - m) > 3.0 * sigma;

    eval::PruneRandomScheme prune(3.0);
    const auto out = prune.apply(xs, TensorKind::Weight);
    size_t zeroed = 0;
    for (size_t i = 0; i < xs.size(); ++i)
        zeroed += (out[i] == 0.0f && xs[i] != 0.0f);
    EXPECT_NEAR(static_cast<double>(zeroed),
                static_cast<double>(outliers),
                0.1 * static_cast<double>(outliers) + 2.0);
}

// ----------------------------------------------------------------- tasks

TEST(Tasks, GlueListMatchesPaperOrder)
{
    const auto tasks = eval::glueTasks();
    ASSERT_EQ(tasks.size(), 8u);
    EXPECT_EQ(tasks[0].name, "CoLA");
    EXPECT_EQ(tasks[0].metric, eval::Metric::Matthews);
    EXPECT_EQ(tasks[6].name, "STSB");
    EXPECT_EQ(tasks[6].metric, eval::Metric::PearsonPct);
    EXPECT_EQ(eval::table6Tasks().size(), 5u);
}

TEST(Tasks, DataDeterministicAndShaped)
{
    const auto config = tinyConfig();
    const auto task = eval::taskByName("SST-2");
    const auto d1 = eval::makeClassifData(task, config, 16, 5, 9);
    const auto d2 = eval::makeClassifData(task, config, 16, 5, 9);
    ASSERT_EQ(d1.x.size(), 16u);
    EXPECT_EQ(d1.labels, d2.labels);
    EXPECT_FLOAT_EQ(d1.x[3].at(2, 7), d2.x[3].at(2, 7));
    EXPECT_EQ(d1.x[0].dim(0), config.evalSeqLen);
    EXPECT_EQ(d1.x[0].dim(1), config.evalDModel);
}

TEST(Tasks, SpanDataWithinBounds)
{
    const auto config = tinyConfig();
    const auto d = eval::makeSpanData(config, 20, 7, 8, /*v2=*/true);
    for (size_t i = 0; i < d.x.size(); ++i) {
        EXPECT_GE(d.start[i], 0);
        EXPECT_LE(d.end[i], static_cast<int>(config.evalSeqLen) - 1);
        EXPECT_LE(d.start[i], d.end[i]);
    }
}

// ----------------------------------------------- accuracy pipeline (slow)

TEST(Accuracy, Fp32LearnsTheTask)
{
    eval::TaskEvaluator ev(tinyConfig(), eval::taskByName("SST-2"), 1, 96,
                           96);
    // The miniature config trades accuracy for test speed; the bar is
    // "clearly above the 50 % chance level".
    EXPECT_GT(ev.evalFp32(), 62.0);
}

TEST(Accuracy, OliveCloseToFp32AndInt4Catastrophic)
{
    // The core accuracy claim at miniature scale (SST-2 is the task
    // the miniature config can reliably learn).
    eval::TaskEvaluator ev(tinyConfig(), eval::taskByName("SST-2"), 1, 96,
                           96);
    const double fp32 = ev.evalFp32();
    SchemePtr olive = eval::makeScheme("olive4");
    SchemePtr int4 = eval::makeScheme("int4");
    const double olive_acc = ev.evalScheme(*olive);
    const double int4_acc = ev.evalScheme(*int4);
    EXPECT_GT(fp32, 60.0);
    EXPECT_GT(olive_acc, fp32 - 20.0);
    EXPECT_GT(olive_acc, int4_acc - 5.0);
}

TEST(Accuracy, ClippingHurtsMoreThanVictimPruning)
{
    // Fig. 3 at miniature scale.
    eval::TaskEvaluator ev(tinyConfig(), eval::taskByName("MNLI"), 3, 96,
                           96);
    SchemePtr clip = eval::makeScheme("clip-outliers");
    SchemePtr victims = eval::makeScheme("prune-victims");
    const double clip_acc = ev.evalScheme(*clip);
    const double victim_acc = ev.evalScheme(*victims);
    EXPECT_GT(victim_acc, clip_acc - 3.0);
}

// ------------------------------------------------------- perplexity (LM)

TEST(Perplexity, TeacherHitsCalibratedTarget)
{
    auto config = tinyConfig();
    config.evalVocab = 256;
    eval::LmModel lm = eval::makeLm(config, 11);
    const auto text = eval::calibrateToTarget(lm, 18.0, 16, 12, 31);
    const double ppl = eval::perplexity(lm, text);
    EXPECT_NEAR(ppl, 18.0, 6.0);
}

TEST(Perplexity, QuantizationDegradesMonotonically)
{
    auto config = tinyConfig();
    config.evalVocab = 256;
    eval::LmModel lm = eval::makeLm(config, 13);
    const auto text = eval::calibrateToTarget(lm, 17.0, 16, 12, 37);
    const double fp32 = eval::perplexity(lm, text);
    const double olive8 = eval::table9Cell(lm, text, "olive8");
    const double olive4 = eval::table9Cell(lm, text, "olive4");
    const double int4 = eval::table9Cell(lm, text, "int4");
    // Table 9 ordering: fp32 <= olive8 <= olive4 << int4.
    EXPECT_LT(fp32, olive8 * 1.15);
    EXPECT_LE(olive8, olive4 * 1.05);
    EXPECT_GT(int4, 1.5 * olive4) << "int4 must visibly collapse";
}

TEST(Perplexity, SampleTextDeterministicPerSeed)
{
    auto config = tinyConfig();
    config.evalVocab = 128;
    const eval::LmModel lm = eval::makeLm(config, 17);
    Rng r1(5), r2(5);
    const auto t1 = eval::sampleText(lm, 3, 8, r1);
    const auto t2 = eval::sampleText(lm, 3, 8, r2);
    EXPECT_EQ(t1, t2);
}

} // namespace
} // namespace olive
