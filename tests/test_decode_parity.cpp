/**
 * @file
 * Decode-vs-full-forward parity: nn::Transformer::forwardStep over an
 * FP32 KV cache must reproduce Transformer::forward bit-exactly on
 * every prefix — the contract the serving engine is built on.  The
 * sweep is exhaustive over small causal architectures (layer counts,
 * head counts, widths, sequence lengths spanning the attention kernel's
 * 4-wide tile boundaries), with and without activation quantization
 * schemes (which quantize per token in both paths:
 * forward(..., ActQuant::PerToken)).
 *
 * BlockTableAttentionMatchesScratchPath extends the contract to the
 * storage/read-path axis: block-table attention over DecodedBlockCache
 * leases must match the retained scratch-materializing path bitwise,
 * across all four KV codecs, blockRows 1..5 and every prefix length.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/uniform.hpp"
#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "nn/transformer.hpp"
#include "quant/scheme.hpp"
#include "serve/block_pool.hpp"
#include "serve/decoded_cache.hpp"
#include "serve/kv_cache.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

bool
bitIdentical(std::span<const float> a, std::span<const float> b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

nn::Transformer
causalBackbone(size_t layers, size_t d_model, size_t heads, size_t d_ff,
               u64 seed)
{
    auto config = models::bertBase();
    config.evalLayers = layers;
    config.evalDModel = d_model;
    config.evalHeads = heads;
    config.evalDFf = d_ff;
    nn::Transformer m = models::makeBackbone(config, seed);
    m.causal = true;
    return m;
}

Tensor
randomInput(size_t seq, size_t d, u64 seed)
{
    Tensor x({seq, d});
    Rng rng(seed);
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());
    return x;
}

/**
 * Assert that stepping through an FP32 cache reproduces the full
 * forward bit-exactly at every prefix length.
 */
void
expectParity(const nn::Transformer &model, const Tensor &x,
             Scheme *act_scheme)
{
    const Tensor full =
        model.forward(x, act_scheme, nn::ActQuant::PerToken);

    const serve::Fp32KvScheme fp32;
    serve::DecodeState state = serve::makeDecodeState(model, fp32);
    Tensor x_t({1, x.dim(1)});
    for (size_t t = 0; t < x.dim(0); ++t) {
        auto src = x.row(t);
        std::copy(src.begin(), src.end(), x_t.row(0).begin());
        const Tensor h = model.forwardStep(x_t, state, act_scheme);
        // Causality makes row t of the full forward the ground truth
        // for step t, for every prefix.
        ASSERT_TRUE(bitIdentical(h.row(0), full.row(t)))
            << "prefix " << t + 1 << " of " << x.dim(0);
    }
    EXPECT_EQ(state.position, x.dim(0));
}

TEST(DecodeParity, ExhaustiveArchitectureSweep)
{
    // (layers, d_model, heads, d_ff) spanning single/multi layer,
    // single/multi head, and head widths that hit the 4-wide context
    // tile (dh = 4, 8) and its scalar remainder (dh = 3, 6).
    const struct
    {
        size_t layers, d, heads, ff;
    } archs[] = {
        {1, 8, 1, 16}, {1, 8, 2, 16},  {2, 12, 4, 24},
        {2, 16, 2, 32}, {3, 12, 2, 20}, {1, 6, 2, 12},
    };
    // Sequence lengths around the 4-wide score tile boundary.
    const size_t seqs[] = {1, 2, 3, 4, 5, 7, 9};
    u64 seed = 100;
    for (const auto &a : archs) {
        const nn::Transformer m =
            causalBackbone(a.layers, a.d, a.heads, a.ff, ++seed);
        for (size_t seq : seqs) {
            SCOPED_TRACE(testing::Message()
                         << "layers=" << a.layers << " d=" << a.d
                         << " heads=" << a.heads << " seq=" << seq);
            expectParity(m, randomInput(seq, a.d, seed * 31 + seq),
                         nullptr);
        }
    }
}

TEST(DecodeParity, WithOliveActivationScheme)
{
    OliveScheme olive4(4);
    const nn::Transformer m = causalBackbone(2, 12, 2, 24, 7);
    for (size_t seq : {1u, 3u, 5u, 8u}) {
        SCOPED_TRACE(seq);
        expectParity(m, randomInput(seq, 12, 900 + seq), &olive4);
    }
}

TEST(DecodeParity, WithInt8ActivationScheme)
{
    UniformIntScheme int8(8);
    const nn::Transformer m = causalBackbone(2, 16, 4, 32, 8);
    for (size_t seq : {2u, 4u, 6u}) {
        SCOPED_TRACE(seq);
        expectParity(m, randomInput(seq, 16, 1700 + seq), &int8);
    }
}

TEST(DecodeParity, RealisticBackboneWithOutlierInput)
{
    // The synthetic eval backbone at its real eval dims, with the
    // model's own outlier-bearing input distribution.
    auto config = models::byName("GPT2-XL");
    nn::Transformer m = models::makeBackbone(config, 21);
    m.causal = true;
    Rng rng(22);
    const Tensor x = models::makeInputSequence(config, 10, rng);
    expectParity(m, x, nullptr);
}

TEST(DecodeParity, PerTokenGranularityMatchesPerTensorOnSingleRows)
{
    // For a one-token sequence the two activation granularities are
    // the same computation by construction.
    OliveScheme olive4(4);
    const nn::Transformer m = causalBackbone(1, 8, 2, 16, 40);
    const Tensor x = randomInput(1, 8, 41);
    const Tensor a = m.forward(x, &olive4, nn::ActQuant::PerTensor);
    const Tensor b = m.forward(x, &olive4, nn::ActQuant::PerToken);
    EXPECT_TRUE(bitIdentical(a.data(), b.data()));
}

TEST(DecodeParity, BlockTableAttentionMatchesScratchPath)
{
    // Block-table attention (attendRowSpans over DecodedBlockCache
    // leases) against the retained scratch-materializing path, bitwise
    // on every step output: architectures x all four KV codecs x
    // blockRows 1..5 (span boundaries landing on, inside, and past the
    // kernel's 4-wide tiles) x every prefix of a 9-token sequence.
    // Four cache paths step in lockstep — contiguous reference, paged
    // without a working set (scratch over paged storage), paged with an
    // unbounded working set, and paged with a single-block working set
    // (maximum eviction churn mid-sequence) — and all must agree on
    // every bit: partitioning the attention reads can move work, never
    // a value.
    const struct
    {
        size_t layers, d, heads, ff;
    } archs[] = {{2, 12, 4, 24}, {1, 8, 2, 16}};
    const serve::KvCacheFormat fmts[] = {
        serve::KvCacheFormat::Fp32, serve::KvCacheFormat::Olive4,
        serve::KvCacheFormat::Olive8, serve::KvCacheFormat::Int8};
    const size_t seq = 9;
    u64 seed = 7000;
    for (const auto &a : archs) {
        const nn::Transformer m =
            causalBackbone(a.layers, a.d, a.heads, a.ff, ++seed);
        const Tensor x = randomInput(seq, a.d, seed * 13);
        for (const auto fmt : fmts) {
            const auto scheme = serve::makeKvScheme(fmt);
            u64 evictions = 0, decoded_rows = 0;
            for (size_t block_rows = 1; block_rows <= 5; ++block_rows) {
                SCOPED_TRACE(testing::Message()
                             << scheme->name() << " d=" << a.d
                             << " blockRows=" << block_rows);
                // Declaration order is the lifecycle contract: caches
                // (states) die first, their block releases fire the
                // pool hook into the still-live working set, the pool
                // dies last — exactly how the engine orders members.
                serve::BlockPool pool_s(*scheme, a.d, block_rows);
                serve::BlockPool pool_u(*scheme, a.d, block_rows);
                serve::BlockPool pool_1(*scheme, a.d, block_rows);
                serve::DecodedBlockCache dc_u(pool_u, 0);
                serve::DecodedBlockCache dc_1(pool_1, 1);
                pool_u.setReleaseHook(
                    [&dc_u](u32 id) { dc_u.invalidate(id); });
                pool_1.setReleaseHook(
                    [&dc_1](u32 id) { dc_1.invalidate(id); });
                serve::DecodeState ref =
                    serve::makeDecodeState(m, *scheme);
                serve::DecodeState scratch =
                    serve::makePagedDecodeState(m, pool_s);
                serve::DecodeState unbounded =
                    serve::makePagedDecodeState(m, pool_u, &dc_u);
                serve::DecodeState tiny =
                    serve::makePagedDecodeState(m, pool_1, &dc_1);

                Tensor x_t({1, a.d});
                for (size_t t = 0; t < seq; ++t) {
                    auto src = x.row(t);
                    std::copy(src.begin(), src.end(),
                              x_t.row(0).begin());
                    const Tensor h0 = m.forwardStep(x_t, ref, nullptr);
                    const Tensor h1 =
                        m.forwardStep(x_t, scratch, nullptr);
                    const Tensor h2 =
                        m.forwardStep(x_t, unbounded, nullptr);
                    const Tensor h3 = m.forwardStep(x_t, tiny, nullptr);
                    ASSERT_TRUE(bitIdentical(h1.row(0), h0.row(0)))
                        << "paged-scratch diverged at prefix " << t + 1;
                    ASSERT_TRUE(bitIdentical(h2.row(0), h0.row(0)))
                        << "block-table diverged at prefix " << t + 1;
                    ASSERT_TRUE(bitIdentical(h3.row(0), h0.row(0)))
                        << "tiny working set diverged at prefix "
                        << t + 1;
                    dc_u.checkInvariants();
                    dc_1.checkInvariants();
                }
                evictions += dc_1.evictions();
                decoded_rows += dc_u.decodedRows();
                // Unbounded working set: every (block, slot) decodes
                // exactly once per plane pair — seq rows per layer.
                EXPECT_EQ(dc_u.decodedRows(), seq * a.layers);
                EXPECT_EQ(dc_u.evictions(), 0u);
            }
            // The tiny-capacity sweep must actually have churned.
            EXPECT_GT(evictions, 0u) << scheme->name();
            EXPECT_GT(decoded_rows, 0u);
        }
    }
}

/**
 * Assert that two decode states hold bitwise-identical KV planes at
 * every layer (decoded through each cache's own codec — decode is a
 * pure function of the stored bytes, so equal planes certify the
 * chunked writes landed the same values the step loop wrote).
 */
void
expectCachesMatch(const serve::DecodeState &a, const serve::DecodeState &b)
{
    ASSERT_EQ(a.position, b.position);
    ASSERT_EQ(a.layers.size(), b.layers.size());
    for (size_t l = 0; l < a.layers.size(); ++l) {
        const serve::KvCache &ca = *a.layers[l];
        const serve::KvCache &cb = *b.layers[l];
        ASSERT_EQ(ca.length(), cb.length()) << "layer " << l;
        const size_t len = ca.length();
        if (len == 0)
            continue;
        const size_t d = ca.dModel();
        Tensor ka({len, d}), kb({len, d}), va({len, d}), vb({len, d});
        ca.decodeK(ka);
        cb.decodeK(kb);
        ca.decodeV(va);
        cb.decodeV(vb);
        ASSERT_TRUE(bitIdentical(ka.data(), kb.data()))
            << "K plane diverged at layer " << l;
        ASSERT_TRUE(bitIdentical(va.data(), vb.data()))
            << "V plane diverged at layer " << l;
    }
}

TEST(DecodeParity, BatchedPrefillMatchesStepLoop)
{
    // forwardChunk over an m-row slab must equal m consecutive
    // forwardStep calls bit-for-bit: every hidden row AND every cache
    // byte.  Swept over architectures x prompt lengths x all four KV
    // codecs x chunk sizes (chunks that divide the prompt, leave a
    // remainder, and exceed it — the last is the whole-prompt-at-once
    // case).  The step loop runs on the contiguous reference cache;
    // the chunked run is repeated on reference AND paged storage, so
    // the sweep pins both KvCache::appendRows (sequential) and
    // PagedKvCache::appendRows (parallel bulk encode) against the same
    // oracle.
    const struct
    {
        size_t layers, d, heads, ff;
    } archs[] = {{2, 12, 4, 24}, {1, 8, 2, 16}};
    const serve::KvCacheFormat fmts[] = {
        serve::KvCacheFormat::Fp32, serve::KvCacheFormat::Olive4,
        serve::KvCacheFormat::Olive8, serve::KvCacheFormat::Int8};
    const size_t seqs[] = {2, 3, 5, 8, 9};
    const size_t chunks[] = {2, 3, 4, 16};
    u64 seed = 9000;
    for (const auto &a : archs) {
        const nn::Transformer m =
            causalBackbone(a.layers, a.d, a.heads, a.ff, ++seed);
        for (const auto fmt : fmts) {
            const auto scheme = serve::makeKvScheme(fmt);
            for (size_t seq : seqs) {
                const Tensor x =
                    randomInput(seq, a.d, seed * 17 + seq);
                // Step-loop oracle: outputs recorded per position.
                serve::DecodeState oracle =
                    serve::makeDecodeState(m, *scheme);
                std::vector<Tensor> outs;
                Tensor x_t({1, a.d});
                for (size_t t = 0; t < seq; ++t) {
                    auto src = x.row(t);
                    std::copy(src.begin(), src.end(),
                              x_t.row(0).begin());
                    outs.push_back(m.forwardStep(x_t, oracle, nullptr));
                }
                for (size_t chunk : chunks) {
                    SCOPED_TRACE(testing::Message()
                                 << scheme->name() << " d=" << a.d
                                 << " seq=" << seq
                                 << " chunk=" << chunk);
                    serve::BlockPool pool(*scheme, a.d, 3);
                    serve::DecodeState ref =
                        serve::makeDecodeState(m, *scheme);
                    serve::DecodeState paged =
                        serve::makePagedDecodeState(m, pool);
                    for (serve::DecodeState *st : {&ref, &paged}) {
                        size_t pos = 0;
                        while (pos < seq) {
                            const size_t mm =
                                std::min(chunk, seq - pos);
                            Tensor slab({mm, a.d});
                            for (size_t i = 0; i < mm; ++i) {
                                auto src = x.row(pos + i);
                                std::copy(src.begin(), src.end(),
                                          slab.row(i).begin());
                            }
                            const Tensor h =
                                m.forwardChunk(slab, *st, nullptr);
                            for (size_t i = 0; i < mm; ++i)
                                ASSERT_TRUE(bitIdentical(
                                    h.row(i), outs[pos + i].row(0)))
                                    << "hidden row diverged at position "
                                    << pos + i;
                            pos += mm;
                        }
                        expectCachesMatch(*st, oracle);
                    }
                }
            }
        }
    }
}

TEST(DecodeParity, BatchedPrefillMatchesStepLoopWithActScheme)
{
    // Per-token activation quantization: the chunked path quantizes
    // each row independently (ActQuant::PerToken), so the slab sees
    // the same codes the step loop produced row by row.
    OliveScheme olive4(4);
    const nn::Transformer m = causalBackbone(2, 12, 2, 24, 77);
    const size_t seq = 7;
    const Tensor x = randomInput(seq, 12, 770);
    const serve::Fp32KvScheme fp32;

    serve::DecodeState oracle = serve::makeDecodeState(m, fp32);
    std::vector<Tensor> outs;
    Tensor x_t({1, 12});
    for (size_t t = 0; t < seq; ++t) {
        auto src = x.row(t);
        std::copy(src.begin(), src.end(), x_t.row(0).begin());
        outs.push_back(m.forwardStep(x_t, oracle, &olive4));
    }
    for (size_t chunk : {2u, 3u, 7u}) {
        SCOPED_TRACE(chunk);
        serve::DecodeState st = serve::makeDecodeState(m, fp32);
        size_t pos = 0;
        while (pos < seq) {
            const size_t mm = std::min<size_t>(chunk, seq - pos);
            Tensor slab({mm, 12});
            for (size_t i = 0; i < mm; ++i) {
                auto src = x.row(pos + i);
                std::copy(src.begin(), src.end(), slab.row(i).begin());
            }
            const Tensor h = m.forwardChunk(slab, st, &olive4);
            for (size_t i = 0; i < mm; ++i)
                ASSERT_TRUE(
                    bitIdentical(h.row(i), outs[pos + i].row(0)))
                    << "position " << pos + i;
            pos += mm;
        }
        expectCachesMatch(st, oracle);
    }
}

TEST(DecodeParity, StepOutputsAreIndependentOfLaterTokens)
{
    // Stepping a longer sequence never revises earlier outputs: the
    // cache-append-only design is prefix-stable like the causal mask.
    const nn::Transformer m = causalBackbone(2, 12, 4, 24, 50);
    const Tensor x = randomInput(6, 12, 51);

    const serve::Fp32KvScheme fp32;
    serve::DecodeState s1 = serve::makeDecodeState(m, fp32);
    serve::DecodeState s2 = serve::makeDecodeState(m, fp32);
    Tensor x_t({1, 12});
    std::vector<Tensor> outs;
    for (size_t t = 0; t < 6; ++t) {
        auto src = x.row(t);
        std::copy(src.begin(), src.end(), x_t.row(0).begin());
        outs.push_back(m.forwardStep(x_t, s1, nullptr));
    }
    for (size_t t = 0; t < 3; ++t) {
        auto src = x.row(t);
        std::copy(src.begin(), src.end(), x_t.row(0).begin());
        const Tensor h = m.forwardStep(x_t, s2, nullptr);
        EXPECT_TRUE(bitIdentical(h.row(0), outs[t].row(0))) << t;
    }
}

} // namespace
} // namespace olive
