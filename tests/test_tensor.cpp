/**
 * @file
 * Tests of the tensor substrate: shapes and accessors, GEMM kernels,
 * elementwise/rowwise ops, and the outlier-profile generators behind
 * Fig. 2.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/distribution.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

// --------------------------------------------------------------- Tensor

TEST(Tensor, ShapeAndSize)
{
    Tensor t({2, 3, 4});
    EXPECT_EQ(t.rank(), 3u);
    EXPECT_EQ(t.size(), 24u);
    EXPECT_EQ(t.dim(1), 3u);
    EXPECT_EQ(t.shapeStr(), "f32[2, 3, 4]");
}

TEST(Tensor, RowMajorAccess)
{
    Tensor t({2, 3});
    t.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(t[1 * 3 + 2], 5.0f);
    auto row = t.row(1);
    EXPECT_FLOAT_EQ(row[2], 5.0f);
}

TEST(Tensor, FillAndClone)
{
    Tensor t({4});
    t.fill(2.5f);
    Tensor c = t.clone();
    c[0] = 9.0f;
    EXPECT_FLOAT_EQ(t[0], 2.5f);
    EXPECT_FLOAT_EQ(c[0], 9.0f);
}

TEST(Tensor, Reshape)
{
    Tensor t({2, 6});
    t.at(1, 5) = 7.0f;
    t.reshape({3, 4});
    EXPECT_EQ(t.rank(), 2u);
    EXPECT_EQ(t.dim(0), 3u);
    EXPECT_FLOAT_EQ(t.at(2, 3), 7.0f); // same flat position 11
}

TEST(Tensor, ConstructFromData)
{
    Tensor t({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
    EXPECT_FLOAT_EQ(t.at(1, 0), 3.0f);
}

// ----------------------------------------------------------------- GEMM

TEST(Gemm, MatmulSmall)
{
    Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
    Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
    const Tensor c = matmul(a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Gemm, MatmulTransBMatchesMatmul)
{
    Rng rng(3);
    Tensor a({5, 7});
    Tensor b({7, 4});
    for (auto &v : a.data())
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b.data())
        v = static_cast<float>(rng.gaussian());
    // bT stored as (4, 7).
    Tensor bt({4, 7});
    for (size_t i = 0; i < 7; ++i)
        for (size_t j = 0; j < 4; ++j)
            bt.at(j, i) = b.at(i, j);
    const Tensor c1 = matmul(a, b);
    const Tensor c2 = matmulTransB(a, bt);
    for (size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1[i], c2[i], 1e-4);
}

TEST(Gemm, LinearForwardAddsBias)
{
    Tensor x({1, 2}, {1.0f, 1.0f});
    Tensor w({3, 2}, {1, 0, 0, 1, 1, 1});
    Tensor bias({3}, {10.0f, 20.0f, 30.0f});
    const Tensor y = linearForward(x, w, bias);
    EXPECT_FLOAT_EQ(y.at(0, 0), 11.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 21.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 32.0f);
}

TEST(Gemm, BlockedMatchesNaiveOnLargerSizes)
{
    Rng rng(5);
    const size_t m = 70, k = 130, n = 65; // crosses the 64 block size
    Tensor a({m, k}), b({k, n});
    for (auto &v : a.data())
        v = static_cast<float>(rng.gaussian());
    for (auto &v : b.data())
        v = static_cast<float>(rng.gaussian());
    const Tensor c = matmul(a, b);
    for (size_t probe : {size_t{0}, m * n / 2, m * n - 1}) {
        const size_t i = probe / n, j = probe % n;
        double ref = 0.0;
        for (size_t l = 0; l < k; ++l)
            ref += static_cast<double>(a.at(i, l)) * b.at(l, j);
        EXPECT_NEAR(c.at(i, j), ref, 1e-3);
    }
}

TEST(Gemm, Axpy)
{
    Tensor c({3}, {1, 2, 3});
    Tensor a({3}, {1, 1, 1});
    axpy(c, a, 2.0f);
    EXPECT_FLOAT_EQ(c[0], 3.0f);
    EXPECT_FLOAT_EQ(c[2], 5.0f);
}

// ------------------------------------------------------------------ ops

TEST(Ops, SoftmaxRowSumsToOne)
{
    std::vector<float> row = {1.0f, 2.0f, 3.0f, 4.0f};
    ops::softmaxRow(row);
    double sum = 0.0;
    for (float v : row)
        sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-6);
    EXPECT_GT(row[3], row[0]);
}

TEST(Ops, SoftmaxNumericallyStable)
{
    std::vector<float> row = {1000.0f, 1001.0f};
    ops::softmaxRow(row);
    EXPECT_NEAR(row[0] + row[1], 1.0, 1e-6);
    EXPECT_FALSE(std::isnan(row[0]));
}

TEST(Ops, GeluSignsAndMagnitudes)
{
    Tensor t({3}, {-10.0f, 0.0f, 10.0f});
    ops::gelu(t);
    EXPECT_NEAR(t[0], 0.0f, 1e-3);
    EXPECT_FLOAT_EQ(t[1], 0.0f);
    EXPECT_NEAR(t[2], 10.0f, 1e-3);
}

TEST(Ops, LayerNormNormalizes)
{
    Tensor x({1, 4}, {1.0f, 2.0f, 3.0f, 4.0f});
    Tensor gamma({4});
    gamma.fill(1.0f);
    Tensor beta({4});
    const Tensor y = ops::layerNorm(x, gamma, beta);
    auto row = y.row(0);
    EXPECT_NEAR(stats::mean(row), 0.0, 1e-5);
    EXPECT_NEAR(stats::stddev(row), 1.0, 1e-3);
}

TEST(Ops, CrossEntropyMatchesManual)
{
    const std::vector<float> logits = {0.0f, 0.0f};
    EXPECT_NEAR(ops::crossEntropyRow(logits, 0), std::log(2.0), 1e-6);
}

TEST(Ops, ArgmaxAndLogSoftmax)
{
    const std::vector<float> row = {0.1f, 3.0f, -2.0f};
    EXPECT_EQ(ops::argmaxRow(row), 1);
    const auto ls = ops::logSoftmaxRow(row);
    double sum = 0.0;
    for (float v : ls)
        sum += std::exp(v);
    EXPECT_NEAR(sum, 1.0, 1e-6);
}

// --------------------------------------------------------- distribution

TEST(Distribution, GaussianTensorProfile)
{
    Rng rng(7);
    const Tensor t = gaussianTensor({20000}, 2.0, rng);
    const auto p = profileTensor(t);
    EXPECT_NEAR(p.sigma, 2.0, 0.1);
    EXPECT_LT(p.maxSigma, 6.0);
    EXPECT_NEAR(p.gt3SigmaPct, 0.27, 0.25);
}

TEST(Distribution, TransformerLikeReachesMaxSigma)
{
    Rng rng(9);
    const Tensor t = transformerLikeTensor({50000}, 120.0, 0.005, rng);
    const auto p = profileTensor(t);
    EXPECT_GT(p.maxSigma, 50.0);
    EXPECT_LT(p.gt3SigmaPct, 1.5);
    EXPECT_GT(p.gt3SigmaPct, 0.1);
}

TEST(Distribution, CnnLikeIsTamer)
{
    Rng rng(11);
    const Tensor cnn = cnnLikeTensor({50000}, rng);
    const Tensor tf = transformerLikeTensor({50000}, 200.0, 0.005, rng);
    // The Fig. 2 observation: transformer Max-sigma is an order of
    // magnitude beyond the CNN's.
    EXPECT_GT(profileTensor(tf).maxSigma,
              4.0 * profileTensor(cnn).maxSigma);
}

} // namespace
} // namespace olive
