/**
 * @file
 * Tests of the deterministic parallel engine (util/parallel): chunk
 * coverage and boundaries, nesting, exception propagation, pool
 * resizing — and the bit-exactness guarantee that quantization, GEMM,
 * and the transformer forward produce identical bytes at every thread
 * count.  The Determinism.* suite also runs as the CTest "determinism"
 * legs under OLIVE_THREADS=1 and OLIVE_THREADS=8.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "nn/transformer.hpp"
#include "quant/quantizer.hpp"
#include "tensor/gemm.hpp"
#include "util/bitops.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"

namespace olive {
namespace {

/** Restore the ambient (env-or-hardware) pool size on scope exit. */
struct ThreadCountGuard
{
    ~ThreadCountGuard() { par::setThreadCount(0); }
};

std::vector<float>
heavyTailData(size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.008, 3.5, 90.0));
    return xs;
}

Tensor
gaussianTensor(std::initializer_list<size_t> shape, u64 seed)
{
    Tensor t(shape);
    Rng rng(seed);
    for (auto &v : t.data())
        v = static_cast<float>(rng.gaussian());
    return t;
}

bool
bitIdentical(std::span<const float> a, std::span<const float> b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

// ------------------------------------------------------------- engine

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadCountGuard guard;
    par::setThreadCount(4);
    std::vector<int> hits(1237, 0);
    par::parallelFor(0, hits.size(), 7, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            ++hits[i];
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i], 1) << i;
}

TEST(ParallelFor, ChunkBoundariesDependOnlyOnGrain)
{
    ThreadCountGuard guard;
    for (size_t threads : {1u, 3u, 6u}) {
        par::setThreadCount(threads);
        std::mutex mu;
        std::vector<std::pair<size_t, size_t>> chunks;
        par::parallelFor(5, 50, 8, [&](size_t b, size_t e) {
            std::lock_guard<std::mutex> lock(mu);
            chunks.emplace_back(b, e);
        });
        std::sort(chunks.begin(), chunks.end());
        ASSERT_EQ(chunks.size(), par::chunkCount(5, 50, 8));
        for (size_t c = 0; c < chunks.size(); ++c) {
            EXPECT_EQ(chunks[c].first, 5 + c * 8);
            EXPECT_EQ(chunks[c].second,
                      std::min<size_t>(50, 5 + (c + 1) * 8));
            EXPECT_EQ(par::chunkIndex(5, 8, chunks[c].first), c);
        }
    }
}

TEST(ParallelFor, EmptyRangeNeverInvokes)
{
    bool called = false;
    par::parallelFor(10, 10, 4, [&](size_t, size_t) { called = true; });
    par::parallelFor(10, 3, 4, [&](size_t, size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, ZeroGrainActsAsOne)
{
    std::atomic<size_t> calls{0};
    par::parallelFor(0, 17, 0, [&](size_t b, size_t e) {
        EXPECT_EQ(e, b + 1);
        ++calls;
    });
    EXPECT_EQ(calls.load(), 17u);
}

TEST(ParallelFor, NestedCallsRunWithoutDeadlock)
{
    // Nesting happens constantly in practice (e.g. the calibration
    // sweep invokes the parallel codec); it must run inline on the
    // issuing thread at every pool size — including 1, where the outer
    // region executes inside the pool's region lock.
    ThreadCountGuard guard;
    for (size_t threads : {1u, 4u}) {
        par::setThreadCount(threads);
        std::atomic<int> total{0};
        par::parallelFor(0, 8, 2, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) {
                par::parallelFor(0, 10, 3, [&](size_t ib, size_t ie) {
                    total += static_cast<int>(ie - ib);
                });
            }
        });
        EXPECT_EQ(total.load(), 80) << threads;
    }
}

TEST(ParallelFor, PropagatesFirstException)
{
    ThreadCountGuard guard;
    par::setThreadCount(4);
    EXPECT_THROW(
        par::parallelFor(0, 100, 1,
                         [](size_t b, size_t) {
                             if (b == 37)
                                 throw std::runtime_error("chunk 37");
                         }),
        std::runtime_error);
    // The pool survives and runs the next region normally.
    std::atomic<size_t> n{0};
    par::parallelFor(0, 64, 4, [&](size_t b, size_t e) { n += e - b; });
    EXPECT_EQ(n.load(), 64u);
}

TEST(ParallelFor, SetThreadCountRoundTrip)
{
    ThreadCountGuard guard;
    par::setThreadCount(5);
    EXPECT_EQ(par::threadCount(), 5u);
    par::setThreadCount(1);
    EXPECT_EQ(par::threadCount(), 1u);
    par::setThreadCount(0);
    EXPECT_GE(par::threadCount(), 1u);
}

TEST(ParallelFor, RegionFlagTracksKernelScope)
{
    ThreadCountGuard guard;
    for (size_t threads : {1u, 4u}) {
        par::setThreadCount(threads);
        EXPECT_FALSE(par::inParallelRegion());
        std::atomic<bool> all_inside{true};
        par::parallelFor(0, 32, 1, [&](size_t, size_t) {
            if (!par::inParallelRegion())
                all_inside = false;
        });
        EXPECT_TRUE(all_inside.load()) << threads;
        EXPECT_FALSE(par::inParallelRegion());
    }
}

// -------------------------------------------------------- determinism

TEST(Determinism, GemmBitExactAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const Tensor a = gaussianTensor({37, 96}, 1);
    const Tensor b = gaussianTensor({96, 53}, 2);
    const Tensor w = gaussianTensor({53, 96}, 3);
    const Tensor bias = gaussianTensor({53}, 4);

    par::setThreadCount(1);
    const Tensor c1 = matmul(a, b);
    const Tensor t1 = matmulTransB(a, w);
    const Tensor l1 = linearForward(a, w, bias);

    // 0 = the ambient OLIVE_THREADS default, so the CTest determinism
    // legs (OLIVE_THREADS=1 and =8) genuinely exercise that pool size.
    for (size_t threads : {2u, 5u, 0u}) {
        par::setThreadCount(threads);
        EXPECT_TRUE(bitIdentical(matmul(a, b).data(), c1.data()))
            << threads;
        EXPECT_TRUE(bitIdentical(matmulTransB(a, w).data(), t1.data()))
            << threads;
        EXPECT_TRUE(bitIdentical(linearForward(a, w, bias).data(),
                                 l1.data()))
            << threads;
    }
}

TEST(Determinism, MatmulAgreesWithMatmulTransB)
{
    // Satellite regression: both paths accumulate in double over
    // ascending l, so on transposed inputs they agree bitwise.
    const Tensor a = gaussianTensor({29, 64}, 5);
    const Tensor b = gaussianTensor({64, 41}, 6);
    Tensor bt({41, 64});
    for (size_t i = 0; i < 64; ++i)
        for (size_t j = 0; j < 41; ++j)
            bt.at(j, i) = b.at(i, j);
    EXPECT_TRUE(bitIdentical(matmul(a, b).data(),
                             matmulTransB(a, bt).data()));
}

TEST(Determinism, FakeQuantBitExactAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const auto xs = heavyTailData(100001, 7); // odd length on purpose
    const OliveQuantizer q;

    par::setThreadCount(1);
    const auto ref = q.fakeQuant(xs);
    for (size_t threads : {2u, 6u, 0u}) { // 0 = ambient OLIVE_THREADS
        par::setThreadCount(threads);
        EXPECT_TRUE(bitIdentical(q.fakeQuant(xs), ref)) << threads;
    }
}

TEST(Determinism, TransformerForwardBitExactAcrossThreadCounts)
{
    ThreadCountGuard guard;
    const auto config = models::byName("BERT-base");
    const nn::Transformer model = models::makeBackbone(config, 11);
    const Tensor x =
        gaussianTensor({config.evalSeqLen, config.evalDModel}, 12);

    par::setThreadCount(1);
    const Tensor ref = model.forward(x, nullptr);
    for (size_t threads : {2u, 5u, 0u}) { // 0 = ambient OLIVE_THREADS
        par::setThreadCount(threads);
        EXPECT_TRUE(bitIdentical(model.forward(x, nullptr).data(),
                                 ref.data()))
            << threads;
    }
}

// ------------------------------------------------------------- bitops

TEST(SignExtendDeath, ZeroWidthAborts)
{
    GTEST_FLAG_SET(death_test_style, "threadsafe");
    volatile unsigned width = 0;
    EXPECT_DEATH(bits::signExtend(1u, width), "signExtend width");
}

TEST(SignExtend, FullAndPartialWidths)
{
    EXPECT_EQ(bits::signExtend(0xFu, 4), -1);
    EXPECT_EQ(bits::signExtend(0x7u, 4), 7);
    EXPECT_EQ(bits::signExtend(0x8u, 4), -8);
    EXPECT_EQ(bits::signExtend(0xFFFFFFFFu, 32), -1);
    EXPECT_EQ(bits::signExtend(1u, 1), -1);
}

} // namespace
} // namespace olive
