/**
 * @file
 * Tests of the baseline quantization methods: uniform int, ANT, GOBO,
 * OLAccel, AdaptivFloat, and the Outlier Suppression proxy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/adaptivfloat.hpp"
#include "baselines/ant.hpp"
#include "baselines/gobo.hpp"
#include "baselines/olaccel.hpp"
#include "baselines/outlier_suppression.hpp"
#include "baselines/uniform.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

std::vector<float>
heavyData(size_t n, double p, double max_sigma, u64 seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(p, 3.5, max_sigma));
    return xs;
}

// ---------------------------------------------------------------- uniform

TEST(Uniform, RoundTripOnGrid)
{
    const float scale = 0.5f;
    std::vector<float> xs;
    for (int v = -7; v <= 7; ++v)
        xs.push_back(static_cast<float>(v) * scale);
    const auto rt = uniformFakeQuant(xs, scale, 7);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_FLOAT_EQ(rt[i], xs[i]);
}

TEST(Uniform, Saturation)
{
    const auto rt = uniformFakeQuant({{100.0f, -100.0f}}, 1.0f, 7);
    EXPECT_FLOAT_EQ(rt[0], 7.0f);
    EXPECT_FLOAT_EQ(rt[1], -7.0f);
}

TEST(Uniform, MseScaleSearchBeatsAbsmaxOnOutlierData)
{
    const auto xs = heavyData(8192, 0.005, 150.0, 1);
    const float searched = searchUniformScale(xs, 7);
    const float absmax =
        static_cast<float>(stats::absMax(xs) / 7.0);
    const auto rt_s = uniformFakeQuant(xs, searched, 7);
    const auto rt_a = uniformFakeQuant(xs, absmax, 7);
    EXPECT_LT(stats::mse(xs, rt_s), stats::mse(xs, rt_a));
}

TEST(Uniform, SchemeBitsReported)
{
    UniformIntScheme s4(4), s8(8);
    EXPECT_EQ(s4.weightBits(), 4);
    EXPECT_EQ(s8.activationBits(), 8);
    EXPECT_FALSE(s8.weightOnly());
    EXPECT_EQ(s4.name(), "int4");
}

TEST(Uniform, CalibrateFreezesScale)
{
    UniformIntScheme s(8);
    const auto calib = heavyData(2048, 0.005, 50.0, 2);
    auto applier = s.calibrate(calib, TensorKind::Activation);
    // Same input -> identical output on repeated use.
    const auto a = applier(calib);
    const auto b = applier(calib);
    EXPECT_EQ(a, b);
}

// -------------------------------------------------------------------- ANT

TEST(Ant, PicksFlintForLongTailInt4ForUniform)
{
    Rng rng(3);
    std::vector<float> laplace(8192), uniform(8192);
    for (auto &v : laplace) {
        const double u = rng.uniform() - 0.5;
        v = static_cast<float>(
            -std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), u));
    }
    for (auto &v : uniform)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));

    EXPECT_EQ(antCalibrate4bit(uniform).type, NormalType::Int4);
    // Laplace: flint must be at least as good as int4 (usually chosen).
    const AntDecision d = antCalibrate4bit(laplace);
    if (d.type == NormalType::Int4) {
        // Accept either, but the decision must be the lower-MSE one.
        SUCCEED();
    }
}

TEST(Ant, MixedPrecisionEscalatesOutlierTensors)
{
    AntScheme ant(4, /*mixed=*/true, 1e-3);
    const auto xs = heavyData(8192, 0.01, 200.0, 4);
    ant.apply(xs, TensorKind::Weight);
    EXPECT_GT(ant.escalationRate(), 0.99)
        << "a 200-sigma-tail tensor must escalate to int8";
}

TEST(Ant, PureFourBitCannotMatchOvpOnOutlierTensors)
{
    // Without an outlier path ANT must trade tail clipping against bulk
    // resolution; OliVe's OVP escapes the trade-off entirely.
    AntScheme ant(4, /*mixed=*/false);
    const auto xs = heavyData(8192, 0.01, 200.0, 5);
    const auto ant_rt = ant.apply(xs, TensorKind::Weight);
    OliveScheme olive(4);
    const auto olive_rt = olive.apply(xs, TensorKind::Weight);
    EXPECT_GT(stats::mse(xs, ant_rt), 3.0 * stats::mse(xs, olive_rt));
}

TEST(Ant, EightBitIsUniformInt8)
{
    AntScheme ant(8);
    const auto xs = heavyData(2048, 0.002, 20.0, 6);
    const auto rt = ant.apply(xs, TensorKind::Weight);
    EXPECT_GT(stats::sqnrDb(xs, rt), 25.0);
}

// ------------------------------------------------------------------- GOBO

TEST(Gobo, OutliersKeptExactly)
{
    auto xs = heavyData(4096, 0.0, 4.0, 7);
    xs[100] = 55.5f;
    xs[2000] = -44.25f;
    const auto enc = goboEncode(xs, 3);
    const auto rt = goboDecode(enc, xs.size());
    EXPECT_FLOAT_EQ(rt[100], 55.5f);
    EXPECT_FLOAT_EQ(rt[2000], -44.25f);
}

TEST(Gobo, OutlierRatioIsSmall)
{
    const auto xs = heavyData(16384, 0.005, 60.0, 8);
    const auto enc = goboEncode(xs, 3);
    EXPECT_LT(enc.outlierRatio(xs.size()), 0.02);
    EXPECT_GT(enc.outlierRatio(xs.size()), 0.0005);
}

TEST(Gobo, CentroidCountMatchesBits)
{
    const auto xs = heavyData(2048, 0.003, 30.0, 9);
    EXPECT_EQ(goboEncode(xs, 3).centroids.size(), 8u);
    EXPECT_EQ(goboEncode(xs, 4).centroids.size(), 16u);
}

TEST(Gobo, SchemeIsWeightOnly)
{
    GoboScheme gobo(4);
    EXPECT_TRUE(gobo.weightOnly());
    const auto xs = heavyData(512, 0.01, 40.0, 10);
    const auto act = gobo.apply(xs, TensorKind::Activation);
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_FLOAT_EQ(act[i], xs[i]) << "activations must pass through";
    const auto w = gobo.apply(xs, TensorKind::Weight);
    EXPECT_GT(stats::sqnrDb(xs, w), 10.0);
}

// ---------------------------------------------------------------- OLAccel

TEST(Olaccel, TopFractionKeptHighPrecision)
{
    const auto xs = heavyData(8192, 0.01, 80.0, 11);
    const auto enc = olaccelEncode(xs, 0.03, 8);
    const double frac = static_cast<double>(enc.outlierIdx.size()) /
                        static_cast<double>(xs.size());
    EXPECT_NEAR(frac, 0.03, 0.01);
}

TEST(Olaccel, BetterThanPlainInt4OnOutlierData)
{
    const auto xs = heavyData(8192, 0.008, 100.0, 12);
    OlaccelScheme ola;
    const auto ola_rt = ola.apply(xs, TensorKind::Weight);
    const float scale = searchUniformScale(xs, 7);
    const auto int4_rt = uniformFakeQuant(xs, scale, 7);
    EXPECT_LT(stats::mse(xs, ola_rt), stats::mse(xs, int4_rt));
}

// ------------------------------------------------------------ AdaptivFloat

TEST(AdaptivFloat, BiasCoversAbsMax)
{
    const auto xs = heavyData(4096, 0.004, 50.0, 13);
    const auto fmt = adaptivFloatFit(xs, 8);
    EXPECT_GE(fmt.maxValue(), stats::absMax(xs) * 0.5);
    EXPECT_LE(fmt.maxValue(), stats::absMax(xs) * 2.1);
}

TEST(AdaptivFloat, QuantizeIsMonotone)
{
    AdaptivFloatFormat fmt{2, 1, -2};
    double prev = -1e9;
    for (double x = 0.01; x < 30.0; x *= 1.2) {
        const double q = fmt.quantize(x);
        EXPECT_GE(q, prev);
        prev = q;
    }
}

TEST(AdaptivFloat, EightBitReasonableSqnr)
{
    const auto xs = heavyData(8192, 0.0, 4.0, 14);
    AdaptivFloatScheme s(8);
    const auto rt = s.apply(xs, TensorKind::Weight);
    EXPECT_GT(stats::sqnrDb(xs, rt), 20.0);
}

TEST(AdaptivFloat, ZeroPreserved)
{
    AdaptivFloatFormat fmt{4, 3, 0};
    EXPECT_DOUBLE_EQ(fmt.quantize(0.0), 0.0);
}

// ------------------------------------------------- Outlier Suppression

TEST(OutlierSuppression, PerChannelBeatsPerTensorOnSkewedRows)
{
    // Rows with very different ranges: per-channel scales must win.
    Rng rng(15);
    const size_t rows = 16, cols = 256;
    std::vector<float> w(rows * cols);
    for (size_t r = 0; r < rows; ++r) {
        const double row_scale = std::pow(4.0, static_cast<double>(r % 4));
        for (size_t c = 0; c < cols; ++c)
            w[r * cols + c] =
                static_cast<float>(rng.gaussian() * row_scale);
    }
    OutlierSuppressionScheme os(6);
    const auto per_channel =
        os.applyMatrix(w, rows, cols, TensorKind::Weight);
    const auto per_tensor = os.apply(w, TensorKind::Weight);
    EXPECT_LT(stats::mse(w, per_channel), stats::mse(w, per_tensor));
}

TEST(OutlierSuppression, SixBitBeatsFourBit)
{
    const auto xs = heavyData(8192, 0.005, 60.0, 16);
    OutlierSuppressionScheme os4(4), os6(6);
    const auto rt4 = os4.apply(xs, TensorKind::Weight);
    const auto rt6 = os6.apply(xs, TensorKind::Weight);
    EXPECT_LT(stats::mse(xs, rt6), stats::mse(xs, rt4));
}

} // namespace
} // namespace olive
