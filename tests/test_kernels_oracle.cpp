/**
 * @file
 * Exhaustive oracle suite for the LUT / boundary-table / tiled fast
 * paths introduced by the kernel overhaul: every fast path must be
 * bit-identical to the retained reference implementation.
 *
 *  - NormalCodec: all codes x all three NormalTypes through the decode
 *    LUTs, plus a dense value sweep (and adversarial midpoint probes)
 *    through the boundary-table encoder.
 *  - OvpCodec: all code pairs through decodePair for both abfloat
 *    widths, dense outlier quantization sweeps, and full-tensor
 *    encode/decode/fakeQuant round trips against the pre-LUT reference.
 *  - OliveQuantizer: fakeQuantMse == stats::mse(s, fakeQuant(s)) and
 *    calibrate() decision == calibrateReference() decision.
 *  - GEMM: tiled matmul/matmulTransB/linearForward bytewise against the
 *    untiled references, including remainder shapes; parallel axpy
 *    against a serial loop.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "quant/quantizer.hpp"
#include "tensor/gemm.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

constexpr NormalType kAllTypes[] = {NormalType::Int4, NormalType::Flint4,
                                    NormalType::Int8};

std::vector<float>
heavyTailData(size_t n, u64 seed, double outlier_frac = 0.02,
              double sigma = 1.0, double outlier_mag = 40.0)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(outlier_frac, sigma,
                                             outlier_mag));
    return xs;
}

bool
bitEqual(const std::vector<float> &a, const std::vector<float> &b)
{
    // Empty vectors may hand memcmp null pointers, which UBSan flags.
    return a.size() == b.size() &&
           (a.empty() ||
            std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

class NormalCodecOracle : public ::testing::TestWithParam<NormalType>
{
};

TEST_P(NormalCodecOracle, DecodeLutMatchesReferenceForAllCodes)
{
    const NormalCodec codec(GetParam());
    const u32 n_codes = 1u << bitWidth(GetParam());
    for (u32 code = 0; code < n_codes; ++code) {
        if (codec.isIdentifier(code))
            continue;
        EXPECT_EQ(codec.decodeInt(code), codec.decodeIntReference(code))
            << "code " << code;
        const ExpInt fast = codec.decodeExpInt(code);
        const ExpInt ref = codec.decodeExpIntReference(code);
        EXPECT_EQ(fast.exponent, ref.exponent) << "code " << code;
        EXPECT_EQ(fast.integer, ref.integer) << "code " << code;
    }
}

TEST_P(NormalCodecOracle, EncodeMatchesReferenceOnDenseSweep)
{
    const NormalCodec codec(GetParam());
    for (const float scale : {0.013f, 0.37f, 1.0f, 1.5f, 42.0f}) {
        const float span =
            scale * static_cast<float>(maxNormalMagnitude(GetParam()) + 3);
        const float step = span / 4096.0f;
        for (float x = -span; x <= span; x += step) {
            ASSERT_EQ(codec.encode(x, scale), codec.encodeReference(x, scale))
                << "x=" << x << " scale=" << scale;
        }
    }
}

TEST_P(NormalCodecOracle, EncodeMatchesReferenceAtMidpointsAndNeighbours)
{
    const NormalCodec codec(GetParam());
    const auto vals = valueTable(GetParam());
    for (const float scale : {0.25f, 1.0f, 3.0f}) {
        for (size_t i = 0; i + 1 < vals.size(); ++i) {
            const double mid =
                (static_cast<double>(vals[i]) + vals[i + 1]) / 2.0;
            // Probe the real-domain images of the midpoint and its
            // float neighbours: the tie-break rule must agree exactly.
            const float at = static_cast<float>(mid) * scale;
            for (const float x : {at, std::nextafterf(at, -1e30f),
                                  std::nextafterf(at, 1e30f)}) {
                ASSERT_EQ(codec.encode(x, scale),
                          codec.encodeReference(x, scale))
                    << "x=" << x << " scale=" << scale;
            }
        }
    }
}

TEST_P(NormalCodecOracle, EncodeMatchesReferenceOnExtremes)
{
    const NormalCodec codec(GetParam());
    for (const float x : {-1e30f, -65536.0f, -0.0f, 0.0f, 1e-30f, 65536.0f,
                          1e30f}) {
        EXPECT_EQ(codec.encode(x, 0.5f), codec.encodeReference(x, 0.5f))
            << "x=" << x;
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, NormalCodecOracle,
                         ::testing::ValuesIn(kAllTypes),
                         [](const auto &info) {
                             return toString(info.param);
                         });

class OvpOracle : public ::testing::TestWithParam<NormalType>
{
};

TEST_P(OvpOracle, DecodePairLutMatchesReferenceForAllCodePairs)
{
    // Covers both abfloat widths: E2M1 for the 4-bit types, E4M3 for
    // int8.
    const OvpCodec codec(GetParam(), 0.37f, 2.5);
    const u32 n_codes = 1u << bitWidth(GetParam());
    const u32 identifier = outlierIdentifier(GetParam());
    for (u32 c1 = 0; c1 < n_codes; ++c1) {
        for (u32 c2 = 0; c2 < n_codes; ++c2) {
            if (c1 == identifier && c2 == identifier)
                continue;
            float f1, f2, r1, r2;
            codec.decodePair(c1, c2, f1, f2);
            codec.decodePairReference(c1, c2, r1, r2);
            ASSERT_EQ(0, std::memcmp(&f1, &r1, sizeof(float)))
                << "codes " << c1 << "," << c2;
            ASSERT_EQ(0, std::memcmp(&f2, &r2, sizeof(float)))
                << "codes " << c1 << "," << c2;
        }
    }
}

TEST_P(OvpOracle, EncodePairMatchesReferenceOnDenseSweep)
{
    const OvpCodec codec(GetParam(), 0.41f, 3.3);
    // Sweep pairs through normal/outlier/pruned regimes, including
    // values far beyond the 2^15-grid-unit outlier clip.
    std::vector<float> probes;
    for (float x = -24.0f; x <= 24.0f; x += 0.37f)
        probes.push_back(x);
    for (const float big : {-3e4f, -777.7f, 123.4f, 2.9e4f, 1e9f})
        probes.push_back(big);
    for (const float v1 : probes) {
        for (const float v2 : probes) {
            u32 f1, f2, r1, r2;
            const PairRole fast = codec.encodePair(v1, v2, f1, f2);
            const PairRole ref = codec.encodePairReference(v1, v2, r1, r2);
            ASSERT_EQ(f1, r1) << v1 << "," << v2;
            ASSERT_EQ(f2, r2) << v1 << "," << v2;
            ASSERT_EQ(fast, ref) << v1 << "," << v2;
        }
    }
}

TEST_P(OvpOracle, StreamRoundTripMatchesReference)
{
    for (const size_t n : {0ul, 1ul, 7ul, 4096ul, 4097ul}) {
        const auto xs = heavyTailData(n, 17 + n);
        const OvpCodec codec(GetParam(), 0.2f, 1.1);
        OvpStats fast_st, ref_st;
        const auto fast = codec.fakeQuant(xs, &fast_st);
        const auto ref = codec.fakeQuantReference(xs, &ref_st);
        EXPECT_TRUE(bitEqual(fast, ref)) << "n=" << n;
        EXPECT_EQ(fast_st.pairs, ref_st.pairs);
        EXPECT_EQ(fast_st.outlierPairs, ref_st.outlierPairs);
        EXPECT_EQ(fast_st.prunedOutliers, ref_st.prunedOutliers);

        // The fused round trip must equal the packed byte-stream one.
        OvpStats enc_st;
        const auto bytes = codec.encode(xs, &enc_st);
        EXPECT_TRUE(bitEqual(codec.decode(bytes, xs.size()), fast));
        EXPECT_EQ(enc_st.outlierPairs, fast_st.outlierPairs);
        EXPECT_EQ(enc_st.prunedOutliers, fast_st.prunedOutliers);
    }
}

TEST_P(OvpOracle, FakeQuantMseMatchesStatsMse)
{
    for (const size_t n : {1ul, 5ul, 4096ul, 8191ul}) {
        const auto xs = heavyTailData(n, 23 + n);
        // Thresholds spanning "almost everything is an outlier" to
        // "nothing is".
        for (const double threshold : {0.4, 2.0, 60.0}) {
            const OvpCodec codec(GetParam(), 0.31f, threshold);
            const double fused = codec.fakeQuantMse(xs);
            const double ref = stats::mse(xs, codec.fakeQuant(xs));
            EXPECT_EQ(fused, ref) << "n=" << n << " thr=" << threshold;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, OvpOracle, ::testing::ValuesIn(kAllTypes),
                         [](const auto &info) {
                             return toString(info.param);
                         });

TEST(CalibrateOracle, DecisionMatchesReferenceGrid)
{
    struct Case { OliveConfig config; u64 seed; double frac; };
    OliveConfig c4;
    OliveConfig c8;
    c8.bits = 8;
    OliveConfig forced;
    forced.adaptiveType = false;
    forced.forcedType = NormalType::Flint4;
    const Case cases[] = {
        {c4, 3, 0.01}, {c4, 4, 0.10}, {c8, 5, 0.02}, {forced, 6, 0.005},
    };
    for (const Case &tc : cases) {
        const auto xs = heavyTailData(10000, tc.seed, tc.frac, 2.0, 80.0);
        const OliveQuantizer q(tc.config);
        const QuantDecision fast = q.calibrate(xs);
        const QuantDecision ref = q.calibrateReference(xs);
        EXPECT_EQ(fast.normal, ref.normal);
        EXPECT_EQ(fast.scale, ref.scale);
        EXPECT_EQ(fast.threshold, ref.threshold);
        EXPECT_EQ(fast.mse, ref.mse);
    }
}

TEST(CalibrateOracle, PercentileSelectionMatchesSortedDefinition)
{
    // stats::percentile switched from a full sort to nth_element-based
    // selection; the interpolated value must be unchanged.
    Rng rng(11);
    for (const size_t n : {1ul, 2ul, 17ul, 1000ul}) {
        std::vector<float> xs(n);
        for (auto &v : xs)
            v = static_cast<float>(rng.gaussian());
        std::vector<float> sorted(xs);
        std::sort(sorted.begin(), sorted.end());
        for (const double p : {0.0, 17.5, 50.0, 99.0, 100.0}) {
            const double rank = p / 100.0 * static_cast<double>(n - 1);
            const size_t lo = static_cast<size_t>(rank);
            const size_t hi = std::min(lo + 1, n - 1);
            const double frac = rank - static_cast<double>(lo);
            const double expect =
                sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
            EXPECT_EQ(stats::percentile(xs, p), expect)
                << "n=" << n << " p=" << p;
        }
    }
}

namespace gemm_oracle {

Tensor
randomTensor(std::initializer_list<size_t> shape, u64 seed)
{
    Tensor t(shape);
    Rng rng(seed);
    for (auto &v : t.data())
        v = static_cast<float>(rng.gaussian());
    return t;
}

bool
bitEqualTensor(const Tensor &a, const Tensor &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.raw(), b.raw(), a.size() * sizeof(float)) == 0;
}

} // namespace gemm_oracle

TEST(GemmOracle, TiledMatmulMatchesReference)
{
    using namespace gemm_oracle;
    // Shapes cover the register-tile remainder paths (n % 16 != 0), the
    // l-block remainder (k % 64 != 0), and the parallel row chunking.
    const size_t shapes[][3] = {
        {1, 1, 1}, {3, 5, 2}, {7, 13, 9}, {16, 64, 16},
        {33, 65, 17}, {64, 64, 64}, {65, 100, 130},
    };
    for (const auto &s : shapes) {
        const Tensor a = randomTensor({s[0], s[1]}, 7 * s[0] + s[2]);
        const Tensor b = randomTensor({s[1], s[2]}, 13 * s[1] + s[0]);
        EXPECT_TRUE(bitEqualTensor(matmul(a, b), matmulReference(a, b)))
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(GemmOracle, TransposedMatmulMatchesReference)
{
    using namespace gemm_oracle;
    const size_t shapes[][3] = {
        {1, 1, 1}, {3, 5, 2}, {7, 13, 9}, {16, 64, 16},
        {33, 65, 17}, {64, 64, 64}, {65, 100, 130},
    };
    for (const auto &s : shapes) {
        const Tensor a = randomTensor({s[0], s[1]}, 3 * s[0] + s[2]);
        const Tensor b = randomTensor({s[2], s[1]}, 5 * s[1] + s[0]);
        EXPECT_TRUE(bitEqualTensor(matmulTransB(a, b),
                                   matmulTransBReference(a, b)))
            << s[0] << "x" << s[1] << "x" << s[2];
    }
}

TEST(GemmOracle, BothMatmulPathsAgreeOnTransposedInputs)
{
    using namespace gemm_oracle;
    const Tensor a = randomTensor({33, 50}, 1);
    const Tensor b = randomTensor({50, 29}, 2);
    // Manual transpose of b for the TransB path.
    Tensor bt({29, 50});
    for (size_t i = 0; i < 50; ++i)
        for (size_t j = 0; j < 29; ++j)
            bt.at(j, i) = b.at(i, j);
    EXPECT_TRUE(bitEqualTensor(matmul(a, b), matmulTransB(a, bt)));
}

TEST(GemmOracle, LinearForwardMatchesReferencePlusBias)
{
    using namespace gemm_oracle;
    const size_t m = 21, k = 40, n = 35;
    const Tensor a = randomTensor({m, k}, 3);
    const Tensor w = randomTensor({n, k}, 4);
    const Tensor bias = randomTensor({n}, 5);
    const Tensor fast = linearForward(a, w, bias);
    Tensor ref = matmulTransBReference(a, w);
    for (size_t i = 0; i < m; ++i)
        for (size_t j = 0; j < n; ++j)
            ref.at(i, j) += bias[j];
    EXPECT_TRUE(bitEqualTensor(fast, ref));
}

TEST(GemmOracle, ParallelAxpyMatchesSerialLoop)
{
    using namespace gemm_oracle;
    for (const size_t n : {1ul, 255ul, 100000ul}) {
        Tensor fast({n});
        Tensor ref({n});
        const Tensor add = randomTensor({n}, 6 + n);
        {
            Rng rng(9);
            for (size_t i = 0; i < n; ++i) {
                const auto v = static_cast<float>(rng.gaussian());
                fast[i] = v;
                ref[i] = v;
            }
        }
        axpy(fast, add, 0.73f);
        for (size_t i = 0; i < n; ++i)
            ref[i] += 0.73f * add[i];
        EXPECT_TRUE(bitEqualTensor(fast, ref)) << "n=" << n;
    }
}

} // namespace
} // namespace olive
