/**
 * @file
 * Tests of the OliVe per-tensor quantizer (Sec. 3.4): MSE threshold
 * search behaviour, adaptive type selection, and superiority over
 * clipping baselines on outlier-bearing tensors.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/uniform.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

std::vector<float>
outlierTensor(size_t n, double outlier_prob, double max_sigma, u64 seed)
{
    Rng rng(seed);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(outlier_prob, 3.5, max_sigma));
    return xs;
}

TEST(Quantizer, CalibrationProducesConsistentDecision)
{
    const auto xs = outlierTensor(8192, 0.008, 100.0, 1);
    const OliveQuantizer q;
    const QuantDecision d1 = q.calibrate(xs);
    const QuantDecision d2 = q.calibrate(xs);
    EXPECT_EQ(d1.normal, d2.normal);
    EXPECT_FLOAT_EQ(d1.scale, d2.scale);
    EXPECT_DOUBLE_EQ(d1.threshold, d2.threshold);
}

TEST(Quantizer, ThresholdIsNearThreeSigma)
{
    // The search is seeded at 3 sigma and the optimum for a Gaussian
    // bulk plus sparse tail should stay within the search bracket.
    const auto xs = outlierTensor(16384, 0.006, 80.0, 2);
    const double sigma = stats::stddev(xs);
    const OliveQuantizer q;
    const QuantDecision d = q.calibrate(xs);
    EXPECT_GT(d.threshold, 0.3 * 3.0 * sigma);
    EXPECT_LT(d.threshold, 3.5 * 3.0 * sigma);
}

TEST(Quantizer, ScaleTiedToThreshold)
{
    const auto xs = outlierTensor(4096, 0.01, 60.0, 3);
    const OliveQuantizer q;
    const QuantDecision d = q.calibrate(xs);
    EXPECT_NEAR(d.scale * maxNormalMagnitude(d.normal), d.threshold,
                1e-4 * d.threshold);
}

TEST(Quantizer, FourBitBeatsUniformInt4OnOutlierTensors)
{
    const auto xs = outlierTensor(16384, 0.008, 120.0, 4);
    const OliveQuantizer q;
    const auto olive_rt = q.fakeQuant(xs);
    const float u_scale = searchUniformScale(xs, 7);
    const auto int4_rt = uniformFakeQuant(xs, u_scale, 7);
    EXPECT_LT(stats::mse(xs, olive_rt) * 2.0, stats::mse(xs, int4_rt));
}

TEST(Quantizer, EightBitModeUsesInt8)
{
    OliveConfig cfg;
    cfg.bits = 8;
    const OliveQuantizer q(cfg);
    const auto xs = outlierTensor(4096, 0.01, 200.0, 5);
    const QuantDecision d = q.calibrate(xs);
    EXPECT_EQ(d.normal, NormalType::Int8);
}

TEST(Quantizer, EightBitNearLossless)
{
    OliveConfig cfg;
    cfg.bits = 8;
    const OliveQuantizer q(cfg);
    const auto xs = outlierTensor(8192, 0.01, 300.0, 6);
    const auto rt = q.fakeQuant(xs);
    EXPECT_GT(stats::sqnrDb(xs, rt), 26.0)
        << "8-bit OliVe should be ~transparent even with 300-sigma tails";
}

TEST(Quantizer, AdaptiveTypeSelectsFlintForLongTails)
{
    // A smooth long-tailed (Laplacian-ish) tensor without extreme
    // outliers favours flint's non-uniform grid.
    Rng rng(7);
    std::vector<float> laplace(16384);
    for (auto &v : laplace) {
        const double u = rng.uniform() - 0.5;
        v = static_cast<float>(
            -std::copysign(std::log(1.0 - 2.0 * std::fabs(u)), u));
    }
    OliveConfig cfg;
    cfg.adaptiveType = true;
    const OliveQuantizer q(cfg);
    const QuantDecision lap_d = q.calibrate(laplace);

    // A uniform-ish tensor favours int4's even grid.
    std::vector<float> uniform(16384);
    for (auto &v : uniform)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    const QuantDecision uni_d = q.calibrate(uniform);
    EXPECT_EQ(uni_d.normal, NormalType::Int4);
    // The Laplacian must do at least as well with its chosen type as
    // with int4 forced.
    OliveConfig forced;
    forced.adaptiveType = false;
    forced.forcedType = NormalType::Int4;
    const QuantDecision forced_d =
        OliveQuantizer(forced).calibrate(laplace);
    EXPECT_LE(lap_d.mse, forced_d.mse * 1.0001);
}

TEST(Quantizer, MseDecreasesWithMoreBits)
{
    const auto xs = outlierTensor(8192, 0.008, 100.0, 8);
    OliveConfig c4, c8;
    c4.bits = 4;
    c8.bits = 8;
    const auto rt4 = OliveQuantizer(c4).fakeQuant(xs);
    const auto rt8 = OliveQuantizer(c8).fakeQuant(xs);
    EXPECT_LT(stats::mse(xs, rt8), stats::mse(xs, rt4));
}

TEST(Quantizer, HandlesPureGaussian)
{
    Rng rng(9);
    std::vector<float> xs(4096);
    for (auto &v : xs)
        v = static_cast<float>(rng.gaussian());
    const OliveQuantizer q;
    const auto rt = q.fakeQuant(xs);
    EXPECT_GT(stats::sqnrDb(xs, rt), 15.0);
}

TEST(Quantizer, HandlesConstantNonzeroTensor)
{
    std::vector<float> xs(128, 2.5f);
    const OliveQuantizer q;
    const auto rt = q.fakeQuant(xs);
    for (float v : rt)
        EXPECT_NEAR(v, 2.5f, 0.3f);
}

TEST(Quantizer, LargeTensorUsesSampling)
{
    // 1M elements must calibrate quickly via the pair-aligned sample.
    const auto xs = outlierTensor(1u << 20, 0.005, 60.0, 10);
    const OliveQuantizer q;
    const QuantDecision d = q.calibrate(xs);
    EXPECT_GT(d.threshold, 0.0);
    const OvpCodec codec = q.makeCodec(d);
    const auto rt = codec.fakeQuant(xs);
    EXPECT_GT(stats::sqnrDb(xs, rt), 10.0);
}

} // namespace
} // namespace olive
