/**
 * @file
 * Tests of the transformer substrate and the trainable task heads:
 * shapes, determinism, quantization hooks, attention semantics, and
 * that the heads actually learn separable data.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "models/synthetic.hpp"
#include "nn/head.hpp"
#include "nn/transformer.hpp"
#include "util/stats.hpp"

namespace olive {
namespace {

nn::Transformer
tinyBackbone(u64 seed = 1)
{
    auto config = models::bertBase();
    config.evalLayers = 2;
    config.evalDModel = 32;
    config.evalHeads = 4;
    config.evalDFf = 64;
    return models::makeBackbone(config, seed);
}

TEST(Transformer, ForwardShapes)
{
    const auto m = tinyBackbone();
    Tensor x({10, 32});
    x.fill(0.1f);
    const Tensor y = m.forward(x);
    EXPECT_EQ(y.dim(0), 10u);
    EXPECT_EQ(y.dim(1), 32u);
}

TEST(Transformer, ForwardIsDeterministic)
{
    const auto m = tinyBackbone();
    Rng rng(3);
    Tensor x({8, 32});
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());
    const Tensor y1 = m.forward(x);
    const Tensor y2 = m.forward(x);
    for (size_t i = 0; i < y1.size(); ++i)
        EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(Transformer, OutputIsFiniteWithOutlierWeights)
{
    // The synthetic backbone contains 60-sigma weights; LayerNorm must
    // keep activations finite through all layers.
    const auto config = models::opt67b();
    const auto m = models::makeBackbone(config, 7);
    Rng rng(8);
    const Tensor x = models::makeInputSequence(config, 12, rng);
    const Tensor y = m.forward(x);
    for (float v : y.data())
        ASSERT_TRUE(std::isfinite(v));
}

TEST(Transformer, CausalMaskBlocksFuture)
{
    auto m = tinyBackbone(9);
    m.causal = true;
    Rng rng(5);
    Tensor x({6, 32});
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());
    const Tensor y1 = m.forward(x);
    // Changing the last token must not affect earlier positions.
    Tensor x2 = x.clone();
    for (size_t j = 0; j < 32; ++j)
        x2.at(5, j) += 3.0f;
    const Tensor y2 = m.forward(x2);
    for (size_t t = 0; t < 5; ++t)
        for (size_t j = 0; j < 32; ++j)
            EXPECT_FLOAT_EQ(y1.at(t, j), y2.at(t, j)) << t;
    // And the non-causal version must propagate the change backwards.
    m.causal = false;
    const Tensor z1 = m.forward(x);
    const Tensor z2 = m.forward(x2);
    double diff = 0.0;
    for (size_t j = 0; j < 32; ++j)
        diff += std::fabs(z1.at(0, j) - z2.at(0, j));
    EXPECT_GT(diff, 1e-4);
}

TEST(Transformer, ParameterCount)
{
    const auto m = tinyBackbone();
    // Per layer: 4 * (32*32 + 32) + 2 FFN (32*64 + 64, 64*32 + 32) + 4 LN
    // vectors of 32.
    const size_t per_layer = 4 * (32 * 32 + 32) + (64 * 32 + 64) +
                             (32 * 64 + 32) + 4 * 32;
    EXPECT_EQ(m.parameterCount(), 2 * per_layer);
}

TEST(Transformer, QuantizeTransformerTouchesOnlyWeights)
{
    const auto m = tinyBackbone(11);
    Fp32Scheme identity;
    const auto q = nn::quantizeTransformer(m, identity);
    // Identity scheme: result must equal the original exactly.
    for (size_t l = 0; l < m.layers.size(); ++l) {
        EXPECT_EQ(m.layers[l].q.w.data()[5], q.layers[l].q.w.data()[5]);
        EXPECT_EQ(m.layers[l].ff1.b.data()[3], q.layers[l].ff1.b.data()[3]);
    }
}

TEST(Transformer, QuantizedForwardDiffersButStaysClose)
{
    const auto m = tinyBackbone(13);
    OliveScheme olive(4);
    const auto q = nn::quantizeTransformer(m, olive);
    Rng rng(5);
    Tensor x({8, 32});
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());
    const Tensor y = m.forward(x);
    const Tensor yq = q.forward(x);
    const double rel =
        stats::mse(y.data(), yq.data()) /
        std::max(1e-12, stats::mse(y.data(), std::vector<float>(y.size())));
    EXPECT_GT(rel, 0.0);
    EXPECT_LT(rel, 0.40) << "4-bit OliVe backbone should stay close";
}

TEST(Transformer, WeightMatricesEnumeration)
{
    auto m = tinyBackbone();
    EXPECT_EQ(m.weightMatrices().size(), 2u * 6u);
}

// ----------------------------------------------------------------- heads

TEST(ClassifierHead, LearnsLinearlySeparableData)
{
    Rng rng(21);
    const size_t n = 200, d = 8;
    Tensor feats({n, d});
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i) {
        const int label = static_cast<int>(rng.uniformInt(2));
        labels[i] = label;
        for (size_t j = 0; j < d; ++j) {
            feats.at(i, j) = static_cast<float>(
                rng.gaussian() + (label ? 1.5 : -1.5) * (j == 0));
        }
    }
    nn::ClassifierHead head(d, 16, 2, rng);
    const double loss0 = head.loss(feats, labels);
    head.fit(feats, labels, 200, 0.5f);
    EXPECT_LT(head.loss(feats, labels), loss0 * 0.5);
    EXPECT_GT(stats::accuracyPct(head.predict(feats), labels), 90.0);
}

TEST(ClassifierHead, MultiClass)
{
    Rng rng(23);
    const size_t n = 300, d = 6, k = 3;
    Tensor feats({n, d});
    std::vector<int> labels(n);
    for (size_t i = 0; i < n; ++i) {
        const int label = static_cast<int>(rng.uniformInt(k));
        labels[i] = label;
        for (size_t j = 0; j < d; ++j)
            feats.at(i, j) = static_cast<float>(
                rng.gaussian() * 0.5 +
                2.0 * (j == static_cast<size_t>(label)));
    }
    nn::ClassifierHead head(d, 16, k, rng);
    head.fit(feats, labels, 250, 0.5f);
    EXPECT_GT(stats::accuracyPct(head.predict(feats), labels), 85.0);
}

TEST(SpanHead, LearnsPlantedSpans)
{
    Rng rng(25);
    const size_t d = 12, seq = 10;
    std::vector<float> pattern(d);
    for (auto &v : pattern)
        v = static_cast<float>(rng.gaussian());

    nn::SpanHead head(d, rng);
    // Train on 200 random examples.
    for (int it = 0; it < 200; ++it) {
        Tensor x({seq, d});
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian() * 0.3);
        const int s = static_cast<int>(rng.uniformInt(seq - 2));
        const int e = s + 1;
        for (int t = s; t <= e; ++t)
            for (size_t j = 0; j < d; ++j)
                x.at(static_cast<size_t>(t), j) += pattern[j];
        head.trainStep(x, s, e, 0.05f);
    }
    // Evaluate exact-span retrieval.
    int correct = 0;
    for (int it = 0; it < 50; ++it) {
        Tensor x({seq, d});
        for (auto &v : x.data())
            v = static_cast<float>(rng.gaussian() * 0.3);
        const int s = static_cast<int>(rng.uniformInt(seq - 2));
        const int e = s + 1;
        for (int t = s; t <= e; ++t)
            for (size_t j = 0; j < d; ++j)
                x.at(static_cast<size_t>(t), j) += pattern[j];
        const auto [ps, pe] = head.predictSpan(x);
        correct += (ps >= s - 1 && pe <= e + 1 && pe >= ps);
    }
    EXPECT_GT(correct, 35);
}

} // namespace
} // namespace olive
