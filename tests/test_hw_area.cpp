/**
 * @file
 * Tests of the area model against the paper's published numbers
 * (Tables 10 and 11) and the technology-scaling helper.
 */

#include <gtest/gtest.h>

#include "hw/area.hpp"

namespace olive {
namespace {

TEST(Area, Table10GpuDecoderRatios)
{
    const auto b = hw::gpuDecoderBreakdown();
    ASSERT_EQ(b.components.size(), 2u);
    // 139,264 x 13.53 um^2 = 1.88 mm^2 -> 0.250 % of the 754 mm^2 die.
    EXPECT_NEAR(b.components[0].totalMm2(), 1.88, 0.01);
    EXPECT_NEAR(b.ratioOf(0, hw::kTuringDieMm2), 0.00250, 0.00005);
    // 69,632 x 18.00 um^2 = 1.25 mm^2 -> 0.166 %.
    EXPECT_NEAR(b.components[1].totalMm2(), 1.25, 0.01);
    EXPECT_NEAR(b.ratioOf(1, hw::kTuringDieMm2), 0.00166, 0.00005);
}

TEST(Area, Table11SystolicRatios)
{
    const auto b = hw::systolicBreakdown();
    ASSERT_EQ(b.components.size(), 3u);
    // Paper: 4-bit decoders 0.00476 mm^2 (2.2 %), 8-bit 0.00317 mm^2
    // (1.5 %), PEs 0.205 mm^2 (96.3 %).
    EXPECT_NEAR(b.components[0].totalMm2(), 0.00476, 0.0001);
    EXPECT_NEAR(b.components[1].totalMm2(), 0.00317, 0.0001);
    EXPECT_NEAR(b.components[2].totalMm2(), 0.205, 0.001);
    EXPECT_NEAR(b.ratioOf(0), 0.022, 0.002);
    EXPECT_NEAR(b.ratioOf(1), 0.015, 0.002);
    EXPECT_NEAR(b.ratioOf(2), 0.963, 0.005);
}

TEST(Area, ScalingReproducesPublishedPair)
{
    // The 22 -> 12 nm scaling must map the published decoder areas onto
    // each other (it is calibrated on the 4-bit pair and must hold
    // approximately for the 8-bit one).
    EXPECT_NEAR(hw::scaleArea(hw::Area22nm::kDecoder4, 22, 12),
                hw::Area12nm::kDecoder4, 0.01);
    EXPECT_NEAR(hw::scaleArea(hw::Area22nm::kDecoder8, 22, 12),
                hw::Area12nm::kDecoder8, 1.0);
    // Identity at the same node.
    EXPECT_DOUBLE_EQ(hw::scaleArea(100.0, 22, 22), 100.0);
    // Scaling up grows area.
    EXPECT_GT(hw::scaleArea(100.0, 12, 22), 100.0);
}

TEST(Area, DecoderOverheadIsSmall)
{
    // The design claim: decoders are a tiny fraction of both platforms.
    const auto gpu = hw::gpuDecoderBreakdown();
    EXPECT_LT(gpu.totalMm2() / hw::kTuringDieMm2, 0.005);
    const auto sa = hw::systolicBreakdown();
    EXPECT_LT(sa.ratioOf(0) + sa.ratioOf(1), 0.04);
}

} // namespace
} // namespace olive
