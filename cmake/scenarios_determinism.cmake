# Cross-process determinism gate for the scenario matrix: run
# bench_serving_scenarios twice as separate processes and demand the
# timing-free per-request stream files (--streams-out) compare equal
# byte for byte.  Any wall-clock-dependent field lives only in the
# BENCH report, so a diff here means a scheduling or sampling
# divergence, never jitter.
#
# Usage:
#   cmake -DBENCH=<bench binary> -DWORKDIR=<scratch dir> -P <this file>
# OLIVE_SMOKE / OLIVE_THREADS are inherited from the environment.

if(NOT BENCH OR NOT WORKDIR)
    message(FATAL_ERROR "pass -DBENCH=<binary> and -DWORKDIR=<dir>")
endif()

foreach(run a b)
    execute_process(
        COMMAND ${BENCH}
                --out=${WORKDIR}/BENCH_scenarios_det_${run}.json
                --streams-out=${WORKDIR}/scenario_streams_${run}.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "scenario bench run '${run}' failed (${rc})")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${WORKDIR}/scenario_streams_a.json
            ${WORKDIR}/scenario_streams_b.json
    RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
    message(FATAL_ERROR
        "scenario replay streams differ between identical runs")
endif()
