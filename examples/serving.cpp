/**
 * @file
 * Serving-engine demo: continuous-batching autoregressive generation
 * over a synthetic causal LM with a selectable KV-cache format.
 *
 * Submits a burst of random-prompt requests, drains the engine, and
 * prints per-request generations plus the engine's throughput, step
 * latency, and KV-cache memory accounting — then quantifies what the
 * chosen cache codec costs in model quality (serve::cacheImpact).
 *
 *   ./build/example_serving --cache olive4 --requests 8 --max-new 12
 *
 * --scenario replaces the random burst with a seeded workload trace
 * replayed through serve::replayTrace — pass a built-in scenario name
 * (uniform, poisson, bursty, diurnal, shared-system, multi-turn) or
 * the path of a trace file written by Workload::dump().  Multi-turn
 * scenarios pair naturally with --retain, which keeps retired
 * prefixes shareable for follow-up turns:
 *
 *   ./build/example_serving --scenario multi-turn --retain 1
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "serve/cache_eval.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"
#include "util/args.hpp"
#include "util/random.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace olive;

namespace {

/** --scenario: a trace file path if one exists, else a built-in name. */
serve::Workload
loadScenario(const std::string &arg)
{
    std::ifstream in(arg);
    if (in) {
        std::stringstream text;
        text << in.rdbuf();
        return serve::Workload::parse(text.str());
    }
    return serve::Workload::generate(serve::Workload::namedSpec(arg));
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {{"model", "GPT2-XL"},
                           {"cache", "olive4"},
                           {"requests", ""},
                           {"prompt-len", ""},
                           {"max-new", ""},
                           {"batch-tokens", "8"},
                           {"max-active", "4"},
                           {"paged", "1"},
                           {"block-rows", "4"},
                           {"pool-blocks", "0"},
                           {"decoded-cache", "1"},
                           {"decoded-cache-blocks", "0"},
                           {"share", "1"},
                           {"retain", "0"},
                           {"retain-blocks", "0"},
                           {"scenario", ""},
                           {"shared-prefix", "0"},
                           {"stop-tokens", "0"},
                           {"prefill-chunk", "32"},
                           {"speculate", "0"},
                           {"draft-len", "4"},
                           {"impact", "1"},
                           {"seed", "17"}});
    smoke::banner();

    const size_t n_requests =
        args.get("requests").empty()
            ? smoke::count(8, 3)
            : static_cast<size_t>(args.getInt("requests"));
    const size_t prompt_len =
        args.get("prompt-len").empty()
            ? smoke::count(16, 5)
            : static_cast<size_t>(args.getInt("prompt-len"));
    const size_t max_new = args.get("max-new").empty()
                               ? smoke::count(10, 4)
                               : static_cast<size_t>(args.getInt("max-new"));

    const auto config = models::byName(args.get("model"));
    eval::LmModel lm = eval::makeLm(config, 1234);
    // Calibrate the proxy LM's temperature so the FP32 row lands at a
    // realistic perplexity — otherwise the teacher is degenerate (PPL
    // ~1) and the impact columns are meaningless.
    eval::calibrateToTarget(lm, 24.0, smoke::count(2, 1),
                            smoke::count(12, 8), 7);

    serve::ServeConfig scfg;
    scfg.cacheFormat = serve::parseKvCacheFormat(args.get("cache"));
    scfg.maxBatchTokens = static_cast<size_t>(args.getInt("batch-tokens"));
    scfg.maxActiveRequests = static_cast<size_t>(args.getInt("max-active"));
    scfg.pagedCache = args.getBool("paged");
    scfg.blockRows = static_cast<size_t>(args.getInt("block-rows"));
    scfg.poolBlocks = static_cast<size_t>(args.getInt("pool-blocks"));
    scfg.prefixSharing = args.getBool("share");
    scfg.retainPrefixes = args.getBool("retain");
    scfg.retainBlocks = static_cast<size_t>(args.getInt("retain-blocks"));
    scfg.decodedCache = args.getBool("decoded-cache");
    scfg.decodedCacheBlocks =
        static_cast<size_t>(args.getInt("decoded-cache-blocks"));
    scfg.prefillChunk = static_cast<size_t>(args.getInt("prefill-chunk"));
    scfg.speculate = args.getBool("speculate");
    scfg.draftLen = static_cast<size_t>(args.getInt("draft-len"));
    serve::ServeEngine engine(lm, scfg);

    std::printf("== Serving demo: %s, %zu-layer eval backbone, d=%zu, "
                "vocab=%zu ==\n",
                config.name.c_str(), config.evalLayers, config.evalDModel,
                config.evalVocab);
    std::printf("cache=%s  storage=%s  batch-tokens=%zu  max-active=%zu  "
                "requests=%zu  prompt~%zu  max-new=%zu\n",
                engine.kvScheme().name().c_str(),
                scfg.pagedCache ? "paged" : "contiguous",
                scfg.maxBatchTokens, scfg.maxActiveRequests, n_requests,
                prompt_len, max_new);
    std::printf("prefill-chunk=%zu (%s)  speculate=%s\n", scfg.prefillChunk,
                scfg.prefillChunk > 1 ? "batched" : "token-by-token",
                scfg.speculate
                    ? ("ngram, draft-len " + std::to_string(scfg.draftLen))
                          .c_str()
                    : "off");
    if (scfg.pagedCache) {
        std::printf("block-rows=%zu  pool-blocks=%s  prefix-sharing=%s  "
                    "decoded-cache=%s\n",
                    scfg.blockRows,
                    scfg.poolBlocks
                        ? std::to_string(scfg.poolBlocks).c_str()
                        : "unbounded",
                    scfg.prefixSharing ? "on" : "off",
                    !scfg.decodedCache          ? "off"
                    : scfg.decodedCacheBlocks
                        ? (std::to_string(scfg.decodedCacheBlocks) +
                           " blocks")
                              .c_str()
                        : "unbounded");
    }
    std::printf("\n");

    size_t steps = 0;
    if (!args.get("scenario").empty()) {
        const serve::Workload w = loadScenario(args.get("scenario"));
        std::printf("scenario: %zu requests over %zu sessions (seed "
                    "%llu, vocab %zu)\n",
                    w.requests().size(), w.spec().sessions,
                    static_cast<unsigned long long>(w.spec().seed),
                    w.spec().vocab);
        const serve::ReplayResult rr = serve::replayTrace(engine, w);
        std::printf("replay: %zu ticks, peak pending %zu, peak active "
                    "%zu\n\n",
                    rr.ticks, rr.peakPending, rr.peakActive);
        steps = static_cast<size_t>(engine.metrics().steps);
    } else {
        Rng rng(static_cast<u64>(args.getInt("seed")));
        // --shared-prefix: all requests extend one common prompt prefix
        // so the paged cache's prefix sharing has something to
        // deduplicate.
        std::vector<int> common;
        if (args.getBool("shared-prefix")) {
            common.resize(2 * prompt_len);
            for (auto &t : common)
                t = static_cast<int>(rng.uniformInt(lm.vocab));
        }
        // --stop-tokens N: give every request N random stop tokens,
        // making generation lengths data-dependent.
        const size_t n_stops =
            static_cast<size_t>(args.getInt("stop-tokens"));
        for (size_t r = 0; r < n_requests; ++r) {
            // Varied prompt lengths exercise chunked prefill+admission.
            const size_t len =
                1 + prompt_len / 2 + rng.uniformInt(prompt_len);
            std::vector<int> prompt = common;
            for (size_t i = 0; i < len; ++i)
                prompt.push_back(
                    static_cast<int>(rng.uniformInt(lm.vocab)));
            std::vector<int> stops(n_stops);
            for (auto &t : stops)
                t = static_cast<int>(rng.uniformInt(lm.vocab));
            engine.submit(std::move(prompt), max_new, std::move(stops));
        }
        steps = engine.runToCompletion();
    }

    Table per_req({"Req", "Prompt", "Generated", "Admit", "First tok",
                   "TTFT ms", "Finish", "Shared", "Accept", "Stop?",
                   "First tokens..."});
    // Spelled as append rather than "s" + to_string(...): GCC 12's
    // -Wrestrict false-positives on operator+(const char*, string&&).
    const auto step_tag = [](u64 s) {
        std::string t(1, 's');
        t += std::to_string(s);
        return t;
    };
    for (const serve::FinishedRequest &f : engine.finished()) {
        std::string preview;
        for (size_t i = 0; i < f.generated.size() && i < 6; ++i) {
            if (i)
                preview += ' ';
            preview += std::to_string(f.generated[i]);
        }
        if (f.generated.size() > 6)
            preview += " ...";
        const std::string accept =
            f.specDrafted
                ? std::to_string(f.specAccepted) + "/" +
                      std::to_string(f.specDrafted)
                : "-";
        per_req.addRow({std::to_string(f.id), std::to_string(f.prompt.size()),
                        std::to_string(f.generated.size()),
                        step_tag(f.admitStep), step_tag(f.firstTokenStep),
                        Table::num(f.ttftSeconds * 1e3, 2),
                        step_tag(f.finishStep),
                        std::to_string(f.sharedPrefixRows), accept,
                        f.stoppedByToken ? "eos" : "-", preview});
    }
    per_req.print();

    const serve::ServeMetrics &m = engine.metrics();
    std::printf("\nsteps: %zu   tokens: %llu processed, %llu generated\n",
                steps, static_cast<unsigned long long>(m.tokensProcessed),
                static_cast<unsigned long long>(m.tokensGenerated));
    std::printf("throughput: %.1f tok/s processed, %.1f tok/s generated\n",
                m.tokensPerSecond(), m.generatedPerSecond());
    std::printf("step latency: p50 %.3f ms, p99 %.3f ms\n",
                m.stepLatencyMs(50.0), m.stepLatencyMs(99.0));
    std::printf("time to first token: p50 %.3f ms, p99 %.3f ms\n",
                m.ttftMs(50.0), m.ttftMs(99.0));
    if (scfg.speculate) {
        std::printf("speculative decode: %llu drafted, %llu accepted "
                    "(%.1f%% — streams stay bit-identical to greedy "
                    "regardless)\n",
                    static_cast<unsigned long long>(m.specDrafted),
                    static_cast<unsigned long long>(m.specAccepted),
                    100.0 * m.specAcceptRate());
    }
    std::printf("peak KV cache: %zu B encoded vs %zu B fp32 (%.3fx)\n",
                m.peakEncodedCacheBytes, m.peakFp32CacheBytes,
                m.peakFp32CacheBytes
                    ? static_cast<double>(m.peakEncodedCacheBytes) /
                          static_cast<double>(m.peakFp32CacheBytes)
                    : 0.0);
    if (const serve::BlockPool *pool = engine.blockPool()) {
        std::printf("block pool: %zu B/block, peak %zu B, prefix sharing "
                    "saved up to %zu B, %llu prefill rows skipped, %llu "
                    "rows copied (CoW only — admission/eviction copy "
                    "nothing)\n",
                    pool->blockBytes(), pool->peakBytes(),
                    m.peakSharedSavedBytes,
                    static_cast<unsigned long long>(
                        m.sharedPrefillRowsSkipped),
                    static_cast<unsigned long long>(m.cowCopyRows));
    }
    if (scfg.retainPrefixes) {
        std::printf("prefix retention: %llu stored, %llu hits, %llu "
                    "prefill rows seeded, %llu evictions, peak %zu B "
                    "held\n",
                    static_cast<unsigned long long>(m.retentionStored),
                    static_cast<unsigned long long>(m.retentionHits),
                    static_cast<unsigned long long>(
                        m.retentionSharedRows),
                    static_cast<unsigned long long>(
                        m.retentionEvictions),
                    m.retainedPeakBytes);
    }
    if (engine.decodedCache()) {
        std::printf("decoded cache: %llu hits / %llu misses / %llu "
                    "evictions, %llu row pairs decoded (linear in "
                    "tokens, not steps x prefix), peak %zu B\n",
                    static_cast<unsigned long long>(m.decodedCacheHits),
                    static_cast<unsigned long long>(m.decodedCacheMisses),
                    static_cast<unsigned long long>(
                        m.decodedCacheEvictions),
                    static_cast<unsigned long long>(m.decodedCacheRows),
                    m.decodedCachePeakBytes);
    }

    if (args.getBool("impact")) {
        // What does the cache codec cost in model quality?
        Rng trng(99);
        const eval::TokenData text =
            eval::sampleText(lm, smoke::count(3, 1), smoke::count(16, 8),
                             trng);
        const serve::Fp32KvScheme fp32;
        const serve::CacheImpact base = serve::cacheImpact(lm, text, fp32);
        std::vector<const serve::CacheImpact *> rows = {&base};
        serve::CacheImpact quant;
        if (scfg.cacheFormat != serve::KvCacheFormat::Fp32) {
            // The fp32 row above IS the baseline; only a lossy format
            // warrants a second decode sweep.
            const auto scheme = serve::makeKvScheme(scfg.cacheFormat);
            quant = serve::cacheImpact(lm, text, *scheme);
            rows.push_back(&quant);
        }
        std::printf("\n-- KV-cache quantization impact (%zu sampled "
                    "sequences) --\n", text.size());
        Table t({"Cache", "Proxy PPL", "Hidden MSE", "Logit MSE",
                 "Bytes", "Ratio"});
        for (const serve::CacheImpact *c : rows) {
            t.addRow({c->scheme, Table::num(c->perplexity, 3),
                      Table::num(c->hiddenMse, 8), Table::num(c->logitMse, 8),
                      std::to_string(c->encodedBytes),
                      Table::num(c->compression(), 3) + "x"});
        }
        t.print();
    }

    std::printf("\nDeterminism: generated token streams are bit-identical "
                "at every OLIVE_THREADS value (see the ctest 'serve' "
                "legs); only latencies vary.\n");
    return 0;
}
