/**
 * @file
 * GLUE-proxy PTQ evaluation (the Table 6 pipeline as an example).
 *
 * Trains a task head on the FP32 synthetic backbone, then evaluates any
 * set of quantization schemes:
 *
 *   ./build/examples/glue_eval --model BERT-base --task SST-2 \
 *       --schemes fp32,olive4,int4,os6 --qat 0
 */

#include <cstdio>
#include <sstream>

#include "eval/accuracy.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    smoke::banner();
    Args args(argc, argv,
              {{"model", "BERT-base"},
               {"task", "SST-2"},
               {"schemes", "fp32,olive4,olive8,int4,int8,os4,os6,ant4"},
               {"qat", "0"},
               {"seed", "1"},
               {"train", std::to_string(smoke::count(144, 24))},
               {"test", std::to_string(smoke::count(144, 24))}});

    const auto config = models::byName(args.get("model"));
    const auto task = eval::taskByName(args.get("task"));
    const bool qat = args.getBool("qat");

    std::printf("== GLUE-proxy PTQ: %s on %s (%s) ==\n",
                config.name.c_str(), task.name.c_str(),
                eval::metricLabel(task.metric).c_str());

    eval::TaskEvaluator evaluator(config, task,
                                  static_cast<u64>(args.getInt("seed")),
                                  static_cast<size_t>(args.getInt("train")),
                                  static_cast<size_t>(args.getInt("test")));

    Table t({"Scheme", eval::metricLabel(task.metric)});
    t.addRow({"FP32 (source)", Table::num(evaluator.evalFp32(), 2)});
    for (const auto &id : split(args.get("schemes"), ',')) {
        if (id == "fp32")
            continue;
        const SchemePtr scheme = eval::makeScheme(id);
        const double metric = evaluator.evalScheme(*scheme, qat);
        t.addRow({scheme->name(), Table::num(metric, 2)});
    }
    t.print();
    return 0;
}
