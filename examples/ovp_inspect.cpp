/**
 * @file
 * OVP encoding inspector: encode a small tensor and dump every pair —
 * raw values, the Algorithm 1 classification, the packed byte(s), and
 * the decoded exponent-integer operands — the paper's Fig. 1b and
 * Fig. 4 as a terminal tool.
 *
 *   ./build/examples/ovp_inspect --type int4 \
 *       --values "1.5,2.6,0,-98,17.6,0,7.1,-6.8"
 */

#include <cstdio>
#include <sstream>

#include "hw/decoder.hpp"
#include "quant/ovp.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

std::string
bits4(u32 v)
{
    std::string s;
    for (int i = 3; i >= 0; --i)
        s += static_cast<char>('0' + ((v >> i) & 1));
    return s;
}

std::string
bits8(u32 v)
{
    std::string s;
    for (int i = 7; i >= 0; --i)
        s += static_cast<char>('0' + ((v >> i) & 1));
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    smoke::banner();
    Args args(argc, argv,
              {{"type", "int4"},
               {"values", "1.5,2.6,0,-98,17.6,0,7.1,-6.8,1.2,6.3,30.7,0"},
               {"scale", "0"},
               {"threshold", "0"}});

    NormalType type = NormalType::Int4;
    if (args.get("type") == "flint4")
        type = NormalType::Flint4;
    else if (args.get("type") == "int8")
        type = NormalType::Int8;
    else if (args.get("type") != "int4")
        OLIVE_FATAL("--type must be int4, flint4, or int8");

    std::vector<float> values;
    std::stringstream ss(args.get("values"));
    std::string item;
    while (std::getline(ss, item, ','))
        values.push_back(std::stof(item));
    if (values.size() % 2)
        values.push_back(0.0f);
    OLIVE_ASSERT(!values.empty(), "no values given");

    // Default scale/threshold: the Fig. 1b setting — normals on a
    // roughly unit grid, 3-robust-sigma threshold.
    double threshold = args.getDouble("threshold");
    if (threshold <= 0.0)
        threshold = std::max(3.0 * stats::robustSigma(values), 1e-3);
    float scale = static_cast<float>(args.getDouble("scale"));
    if (scale <= 0.0f)
        scale = static_cast<float>(threshold / maxNormalMagnitude(type));

    const OvpCodec codec(type, scale, threshold);
    const hw::OvpDecoder decoder(type);
    std::printf("== OVP inspector: %s normals + %s outliers ==\n",
                toString(type).c_str(),
                codec.outlierType().name().c_str());
    std::printf("scale %.4f, threshold %.4f (|x| beyond it is an "
                "outlier)\n\n",
                scale, threshold);

    const bool is4 = bitWidth(type) == 4;
    for (size_t p = 0; p * 2 < values.size(); ++p) {
        const float v1 = values[2 * p];
        const float v2 = values[2 * p + 1];
        u32 c1, c2;
        codec.encodePair(v1, v2, c1, c2);
        float d1, d2;
        codec.decodePair(c1, c2, d1, d2);

        const u32 identifier = outlierIdentifier(type);
        const char *kind = "normal-normal";
        if (c2 == identifier)
            kind = "left outlier (O-V)";
        else if (c1 == identifier)
            kind = "right outlier (V-O)";

        const auto hw_pair = decoder.decodeCodes(c1, c2);
        std::printf("pair %zu: (%8.2f, %8.2f)  %-19s\n", p, v1, v2, kind);
        if (is4) {
            std::printf("  codes %s|%s (byte 0x%02x)   ", bits4(c2).c_str(),
                        bits4(c1).c_str(),
                        (static_cast<unsigned>(c2) << 4) | c1);
        } else {
            std::printf("  codes %s %s            ", bits8(c1).c_str(),
                        bits8(c2).c_str());
        }
        std::printf("decoded (%8.2f, %8.2f)\n", d1, d2);
        std::printf("  hw operands: <e=%d, i=%d>%s  <e=%d, i=%d>%s\n",
                    hw_pair.first.exponent, hw_pair.first.integer,
                    hw_pair.firstIsOutlier ? " [outlier]" : "",
                    hw_pair.second.exponent, hw_pair.second.integer,
                    hw_pair.secondIsOutlier ? " [outlier]" : "");
    }

    const auto rt = codec.fakeQuant(values);
    std::printf("\ntensor SQNR: %.2f dB over %zu values\n",
                stats::sqnrDb(values, rt), values.size());
    return 0;
}
