/**
 * @file
 * Line-delimited JSON serving session over stdin/stdout: the
 * serve::Service front end wrapped around a ServeEngine on a synthetic
 * causal LM.  Type ops, read events (protocol in serve/service.hpp and
 * DESIGN.md "Serving front end"):
 *
 *   $ ./build/example_olive_serve
 *   {"op":"submit","prompt":[5,9,2],"max_new":8}
 *   {"event":"accepted","id":1,"max_new":8}
 *   {"event":"admitted","id":1}
 *   {"event":"token","id":1,"index":0,"token":37}
 *   ...
 *   {"event":"done","id":1,"reason":"length","n":8,"tokens":[...]}
 *
 * --demo (the default under OLIVE_SMOKE, so the ctest e2e legs drive
 * it) replaces stdin with a scripted session that exercises the whole
 * protocol: concurrent submits against a 2-wide batch (queued
 * backpressure), a stop-token request, an output policy, a mid-stream
 * cancel, an already-expired deadline, stats, and a draining shutdown.
 *
 * --scenario scripts a session from a seeded workload trace (built-in
 * name or a Workload::dump() file) instead: each turn-0 request
 * becomes a submit op at its arrival tick (step ops cover the gaps).
 * Only turn-0 requests are scripted — a follow-up turn's prompt
 * embeds the model's reply, which a static script cannot reference;
 * use example_serving --scenario for full multi-turn replay.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "serve/workload.hpp"
#include "util/args.hpp"
#include "util/common.hpp"
#include "util/json.hpp"
#include "util/random.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

/** A random in-vocabulary prompt as a JSON token array. */
Json
randomPrompt(Rng &rng, size_t vocab, size_t len)
{
    Json arr = Json::array();
    for (size_t i = 0; i < len; ++i)
        arr.push(static_cast<int>(rng.uniformInt(vocab)));
    return arr;
}

/** The --demo script (see the file comment). */
std::string
demoScript(size_t vocab, u64 seed)
{
    Rng rng(seed);
    std::string s;
    const auto op = [&](Json j) { s += j.dump() + "\n"; };
    // Three submits against max-active 2: the third queues.
    op(Json::object({{"op", "submit"},
                     {"prompt", randomPrompt(rng, vocab, 6)},
                     {"max_new", 8}}));
    op(Json::object({{"op", "submit"},
                     {"prompt", randomPrompt(rng, vocab, 5)},
                     {"max_new", 8},
                     {"stop", randomPrompt(rng, vocab, 2)}}));
    op(Json::object({{"op", "submit"},
                     {"prompt", randomPrompt(rng, vocab, 4)},
                     {"max_new", 8},
                     {"policy", "cap"}}));
    op(Json::object({{"op", "step"}, {"n", 3}}));
    // Cancel request 2 mid-stream; its done carries what it generated.
    op(Json::object({{"op", "cancel"}, {"id", 2}}));
    // An already-expired deadline: retired without generating a token.
    op(Json::object({{"op", "submit"},
                     {"prompt", randomPrompt(rng, vocab, 4)},
                     {"max_new", 8},
                     {"deadline_ms", 0}}));
    op(Json::object({{"op", "drain"}}));
    op(Json::object({{"op", "stats"}}));
    op(Json::object({{"op", "shutdown"}}));
    return s;
}

/** Script a trace's turn-0 submissions (see the file comment). */
std::string
scenarioScript(const std::string &arg, size_t vocab)
{
    serve::Workload w = [&] {
        std::ifstream in(arg);
        if (in) {
            std::stringstream text;
            text << in.rdbuf();
            return serve::Workload::parse(text.str());
        }
        return serve::Workload::generate(
            serve::Workload::namedSpec(arg));
    }();
    OLIVE_ASSERT(w.spec().vocab <= vocab,
                 "scenario vocabulary exceeds the model's");

    std::string s;
    size_t tick = 0;
    for (const auto &r : w.requests()) {
        if (r.turn != 0)
            continue; // Later turns need replies (file comment).
        if (r.submitStep > tick) {
            s += Json::object(
                     {{"op", "step"},
                      {"n", static_cast<int>(r.submitStep - tick)}})
                     .dump() +
                 "\n";
            tick = r.submitStep;
        }
        Json prompt = Json::array();
        for (const int t : r.userTokens)
            prompt.push(t);
        Json op = Json::object(
            {{"op", "submit"},
             {"prompt", prompt},
             {"max_new", static_cast<int>(r.maxNew)}});
        if (!r.stopTokens.empty()) {
            Json stops = Json::array();
            for (const int t : r.stopTokens)
                stops.push(t);
            op.set("stop", stops);
        }
        s += op.dump() + "\n";
    }
    s += "{\"op\":\"drain\"}\n{\"op\":\"stats\"}\n"
         "{\"op\":\"shutdown\"}\n";
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {{"model", "GPT2-XL"},
                           {"cache", "olive4"},
                           {"batch-tokens", "8"},
                           {"max-active", "2"},
                           {"paged", "1"},
                           {"block-rows", "4"},
                           {"pool-blocks", "0"},
                           {"share", "1"},
                           {"decoded-cache", "1"},
                           {"prefill-chunk", "32"},
                           {"speculate", "0"},
                           {"draft-len", "4"},
                           {"auto-drain", "1"},
                           {"policy-cap", "4"},
                           {"demo", ""},
                           {"scenario", ""},
                           {"seed", "17"}});
    const std::string scenario = args.get("scenario");
    const bool demo = !scenario.empty() ? false
                      : args.get("demo").empty()
                          ? smoke::enabled()
                          : args.getBool("demo");

    const auto config = models::byName(args.get("model"));
    eval::LmModel lm = eval::makeLm(config, 1234);

    serve::ServeConfig scfg;
    scfg.cacheFormat = serve::parseKvCacheFormat(args.get("cache"));
    scfg.maxBatchTokens = static_cast<size_t>(args.getInt("batch-tokens"));
    scfg.maxActiveRequests = static_cast<size_t>(args.getInt("max-active"));
    scfg.pagedCache = args.getBool("paged");
    scfg.blockRows = static_cast<size_t>(args.getInt("block-rows"));
    scfg.poolBlocks = static_cast<size_t>(args.getInt("pool-blocks"));
    scfg.prefixSharing = args.getBool("share");
    scfg.decodedCache = args.getBool("decoded-cache");
    scfg.prefillChunk = static_cast<size_t>(args.getInt("prefill-chunk"));
    scfg.speculate = args.getBool("speculate");
    scfg.draftLen = static_cast<size_t>(args.getInt("draft-len"));
    serve::ServeEngine engine(lm, scfg);

    const serve::LengthCapPolicy cap(
        static_cast<size_t>(args.getInt("policy-cap")));
    serve::ServiceConfig svc;
    svc.policies["cap"] = &cap;
    // The demo interleaves submits and explicit steps to show queued
    // backpressure; interactive sessions stream each request to done.
    svc.autoDrain = demo ? false : args.getBool("auto-drain");
    serve::Service service(engine, svc);

    std::fprintf(stderr,
                 "olive_serve: %s eval backbone, vocab %zu, cache %s, "
                 "max-active %zu%s\n",
                 config.name.c_str(), lm.vocab,
                 engine.kvScheme().name().c_str(), scfg.maxActiveRequests,
                 !scenario.empty() ? " [scripted scenario session]"
                 : demo           ? " [scripted demo session]"
                                  : "");

    if (!scenario.empty()) {
        const std::string script = scenarioScript(scenario, lm.vocab);
        std::fputs(script.c_str(), stderr); // the ops, for the reader
        std::istringstream in(script);
        service.run(in, std::cout);
    } else if (demo) {
        const std::string script =
            demoScript(lm.vocab, static_cast<u64>(args.getInt("seed")));
        std::fputs(script.c_str(), stderr); // the ops, for the reader
        std::istringstream in(script);
        service.run(in, std::cout);
    } else {
        service.run(std::cin, std::cout);
    }
    return 0;
}
