/**
 * @file
 * Quickstart: the OliVe public API in one tour.
 *
 *   1. Generate a transformer-like tensor (Gaussian bulk + outliers).
 *   2. Calibrate the OliVe quantizer (MSE threshold search) and encode
 *      the tensor into the memory-aligned OVP byte stream.
 *   3. Compare reconstruction error against uniform int4.
 *   4. Push the encoded stream through the bit-exact hardware decoder
 *      and the mmaovp functional executor.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "hw/decoder.hpp"
#include "hw/isa.hpp"
#include "baselines/uniform.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== OliVe quickstart ==\n\n");

    // 1. A transformer-like tensor: sigma 1 bulk, sparse 120-sigma tail.
    Rng rng(2023);
    const Tensor tensor = transformerLikeTensor({16384}, 120.0, 0.008, rng);
    const auto profile = profileTensor(tensor);
    std::printf("tensor: %s  sigma=%.3f  max=%.1f sigma  >3sigma=%.2f%%\n",
                tensor.shapeStr().c_str(), profile.sigma, profile.maxSigma,
                profile.gt3SigmaPct);

    // 2. Calibrate and encode.
    const OliveQuantizer quantizer;
    const QuantDecision decision = quantizer.calibrate(tensor.data());
    std::printf("calibrated: normal type=%s  threshold=%.3f  scale=%.4f\n",
                toString(decision.normal).c_str(), decision.threshold,
                decision.scale);

    const OvpCodec codec = quantizer.makeCodec(decision);
    OvpStats stats;
    const auto bytes = codec.encode(tensor.data(), &stats);
    std::printf("encoded: %zu bytes for %zu values (aligned, no index "
                "stream)\n",
                bytes.size(), tensor.size());
    std::printf("         %llu pairs, %llu outlier-victim pairs, "
                "%llu outliers pruned\n\n",
                static_cast<unsigned long long>(stats.pairs),
                static_cast<unsigned long long>(stats.outlierPairs),
                static_cast<unsigned long long>(stats.prunedOutliers));

    // 3. Error comparison vs uniform int4.
    const auto olive_rt = codec.decode(bytes, tensor.size());
    const float u_scale = searchUniformScale(tensor.data(), 7);
    const auto int4_rt = uniformFakeQuant(tensor.data(), u_scale, 7);

    Table t({"Scheme", "MSE", "SQNR (dB)"});
    t.addRow({"4-bit OliVe (OVP)",
              Table::num(stats::mse(tensor.data(), olive_rt), 6),
              Table::num(stats::sqnrDb(tensor.data(), olive_rt), 2)});
    t.addRow({"4-bit uniform int",
              Table::num(stats::mse(tensor.data(), int4_rt), 6),
              Table::num(stats::sqnrDb(tensor.data(), int4_rt), 2)});
    t.print();

    // 4. The hardware path: decode the first pairs bit-exactly.
    std::printf("\nhardware OVP decoder on the first four pairs:\n");
    const hw::OvpDecoder decoder(decision.normal);
    for (size_t p = 0; p < 4; ++p) {
        const auto d = decoder.decodeByte(bytes[p]);
        std::printf("  byte 0x%02x -> <%d, %d> (%s), <%d, %d> (%s)\n",
                    bytes[p], d.first.exponent, d.first.integer,
                    d.firstIsOutlier ? "outlier" : "normal",
                    d.second.exponent, d.second.integer,
                    d.secondIsOutlier ? "outlier" : "normal");
    }

    // And one mmaovp tile through the functional ISA executor.
    hw::MmaInstruction inst;
    inst.aType = (decision.normal == NormalType::Flint4)
                     ? hw::OvpOperandType::OvpFlint4
                     : hw::OvpOperandType::OvpInt4;
    inst.bType = inst.aType;
    inst.m = 2;
    inst.n = 2;
    inst.kDepth = 16;
    std::vector<u8> tile_a(bytes.begin(), bytes.begin() + 16);
    std::vector<u8> tile_b(bytes.begin() + 16, bytes.begin() + 32);
    const auto d = hw::executeMma(inst, tile_a, tile_b);
    std::printf("\n%s -> D = [%d %d; %d %d] (int32 accumulators)\n",
                inst.mnemonic().c_str(), d[0], d[1], d[2], d[3]);

    std::printf("\ndone.\n");
    return 0;
}
