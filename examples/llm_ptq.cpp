/**
 * @file
 * LLM post-training quantization with the proxy-perplexity harness (the
 * Table 9 pipeline as an example).
 *
 *   ./build/examples/llm_ptq --model OPT-6.7B --target-ppl 22.14 \
 *       --schemes fp32,int8,olive8,int4,ant4,olive4
 */

#include <cstdio>
#include <sstream>

#include "eval/perplexity.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, sep)) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    smoke::banner();
    Args args(argc, argv,
              {{"model", "GPT2-XL"},
               {"target-ppl", "17.48"},
               {"schemes", "fp32,int8,olive8,int4,ant4,olive4"},
               {"seqs", std::to_string(smoke::count(32, 4))},
               {"len", std::to_string(smoke::count(16, 8))},
               {"seed", "3"}});

    const auto config = models::byName(args.get("model"));
    const double target = args.getDouble("target-ppl");

    std::printf("== LLM PTQ proxy perplexity: %s (target FP32 ppl %.2f, "
                "vocab %zu) ==\n",
                config.name.c_str(), target, config.evalVocab);

    eval::LmModel lm =
        eval::makeLm(config, static_cast<u64>(args.getInt("seed")));
    const auto text = eval::calibrateToTarget(
        lm, target, static_cast<size_t>(args.getInt("seqs")),
        static_cast<size_t>(args.getInt("len")),
        static_cast<u64>(args.getInt("seed")) * 31 + 7);
    std::printf("calibrated temperature: %.3f\n\n", lm.temperature);

    Table t({"Scheme", "Perplexity"});
    for (const auto &id : split(args.get("schemes"), ',')) {
        const double ppl = eval::table9Cell(lm, text, id);
        t.addRow({id, ppl > 500.0 ? Table::sci(ppl) : Table::num(ppl, 2)});
    }
    t.print();
    std::printf("\n(note: the proxy's perplexity ceiling is the vocab "
                "size, %zu)\n",
                config.evalVocab);
    return 0;
}
