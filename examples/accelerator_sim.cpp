/**
 * @file
 * Accelerator design-space example: run one model's inference GEMM
 * workload through both performance simulators and print per-design
 * latency, speedup, and energy breakdowns.
 *
 *   ./build/examples/accelerator_sim --model BLOOM-7B1
 */

#include <cstdio>

#include "models/workload.hpp"
#include "sim/gpu.hpp"
#include "sim/systolic.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main(int argc, char **argv)
{
    smoke::banner();
    Args args(argc, argv, {{"model", "BERT-base"}});
    const auto config = models::byName(args.get("model"));
    const auto ops = models::inferenceGemms(config);

    std::printf("== %s: %llu GEMM MACs, %llu weight elements ==\n\n",
                config.name.c_str(),
                static_cast<unsigned long long>(models::totalMacs(ops)),
                static_cast<unsigned long long>(
                    models::totalWeightElems(ops)));

    // GPU platform (Fig. 9 designs).
    const sim::GpuModel gpu;
    const double fp16_cycles = gpu.run(ops, sim::gpuFp16()).cycles;
    Table gt({"GPU design", "Cycles (M)", "Speedup vs FP16", "Energy (mJ)",
              "const", "static", "dram+l2", "l1+reg", "core"});
    for (const auto &d : sim::figure9Designs()) {
        const auto r = gpu.run(ops, d);
        gt.addRow({d.name, Table::num(r.cycles / 1e6, 2),
                   Table::num(fp16_cycles / r.cycles, 2),
                   Table::num(r.energy.total() / 1e9, 1),
                   Table::num(r.energy.constant / 1e9, 1),
                   Table::num(r.energy.staticE / 1e9, 1),
                   Table::num(r.energy.dramL2 / 1e9, 1),
                   Table::num(r.energy.l1Reg / 1e9, 1),
                   Table::num(r.energy.core / 1e9, 1)});
    }
    gt.print();

    // Systolic accelerator platform (Fig. 10 designs, iso-area).
    std::printf("\n");
    const sim::SystolicModel accel;
    const double ada_cycles =
        accel.run(ops, sim::accelAdafloat()).cycles;
    Table at({"Accelerator", "PEs", "Cycles (M)", "Speedup vs AdaFloat",
              "Energy (mJ)", "static", "dram", "buffer", "core"});
    for (const auto &d : sim::figure10Designs()) {
        const auto r = accel.run(ops, d);
        at.addRow({d.name, Table::num(r.peCount, 0),
                   Table::num(r.cycles / 1e6, 2),
                   Table::num(ada_cycles / r.cycles, 2),
                   Table::num(r.energy.total() / 1e9, 1),
                   Table::num(r.energy.staticE / 1e9, 1),
                   Table::num(r.energy.dram / 1e9, 1),
                   Table::num(r.energy.buffer / 1e9, 1),
                   Table::num(r.energy.core / 1e9, 1)});
    }
    at.print();
    return 0;
}
