/**
 * @file
 * Mixed-precision PTQ example (Sec. 4.5): quantize a whole synthetic
 * backbone with the mixed 4/8-bit OliVe scheme, print the per-tensor
 * report, compare escalation rates against ANT's mixed precision, and
 * round-trip one tensor through the serialized OVP stream format.
 *
 *   ./build/examples/mixed_precision --model OPT-6.7B
 */

#include <cstdio>

#include "baselines/ant.hpp"
#include "models/synthetic.hpp"
#include "quant/framework.hpp"
#include "quant/stream.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main(int argc, char **argv)
{
    smoke::banner();
    Args args(argc, argv, {{"model", "OPT-6.7B"}, {"seed", "1"}});
    const auto config = models::byName(args.get("model"));
    const auto backbone =
        models::makeBackbone(config, static_cast<u64>(args.getInt("seed")));

    std::printf("== Mixed-precision PTQ report: %s (eval dims, %zu "
                "layers x d=%zu) ==\n\n",
                config.name.c_str(), backbone.layers.size(),
                backbone.dModel);

    // Per-tensor 4-bit report for every weight matrix, calibrated in
    // parallel (reportTensors fans the tensors over the pool).
    const char *names[] = {"q", "k", "v", "o", "ff1", "ff2"};
    std::vector<NamedSpan> weights;
    for (size_t l = 0; l < backbone.layers.size(); ++l) {
        const nn::Layer &layer = backbone.layers[l];
        const Tensor *mats[] = {&layer.q.w,  &layer.k.w, &layer.v.w,
                                &layer.o.w,  &layer.ff1.w, &layer.ff2.w};
        for (int i = 0; i < 6; ++i) {
            weights.push_back(
                {"layer" + std::to_string(l) + "." + names[i],
                 mats[i]->data()});
        }
    }
    const PtqReport report = reportTensors(weights, 4);
    std::fputs(report.render().c_str(), stdout);

    // Escalation comparison under one bulk-aware criterion (relative
    // MSE over the normal values; see quant/framework.hpp): OliVe's OVP
    // absorbs outliers at 4 bits, ANT has to flee to int8 — the reason
    // ANT's Fig. 9/10 performance collapses toward int8 while OliVe
    // stays 4-bit.
    constexpr double kEscalate = 3e-2;
    OliveScheme olive4(4);
    AntScheme ant4(4, /*mixed=*/false);
    size_t total = 0, olive_esc = 0, ant_esc = 0;

    auto rel_mse = [](std::span<const float> ref,
                      std::span<const float> rt) {
        double err = 0.0, power = 0.0;
        for (size_t i = 0; i < ref.size(); ++i) {
            const double d = static_cast<double>(ref[i]) - rt[i];
            err += d * d;
            power += static_cast<double>(ref[i]) * ref[i];
        }
        return power > 0.0 ? err / power : 0.0;
    };
    auto tally = [&](std::span<const float> xs, TensorKind kind) {
        ++total;
        olive_esc += rel_mse(xs, olive4.apply(xs, kind)) > kEscalate;
        ant_esc += rel_mse(xs, ant4.apply(xs, kind)) > kEscalate;
    };

    for (const Tensor *w : backbone.weightMatrices())
        tally(w->data(), TensorKind::Weight);
    // Plus the model's tensor zoo: scattered Table-2-style outlier
    // tensors spanning the Fig. 2 Max-sigma range.
    const auto zoo = models::makeTensorZoo(config, 24, 16384, 7);
    for (const auto &z : zoo)
        tally(z.data(), TensorKind::Weight);

    std::printf("\ntensors whose 4-bit relative MSE exceeds %.0e (would "
                "escalate to 8-bit): OliVe %zu/%zu   ANT %zu/%zu\n",
                kEscalate, olive_esc, total, ant_esc, total);

    // Serialization round trip of one tensor.
    const Tensor &w = backbone.layers[0].ff1.w;
    OliveConfig cfg;
    const OliveQuantizer quantizer(cfg);
    const OvpCodec codec = quantizer.makeCodec(quantizer.calibrate(w.data()));
    const OvpStream stream = packStream(codec, w.data());
    const std::string path = "/tmp/olive_example_tensor.ovp";
    saveStream(stream, path);
    const OvpStream loaded = loadStream(path);
    const auto rt = loaded.decode();
    std::printf("\nserialized layer0.ff1 (%llu elems) to %s: %zu bytes "
                "(%.2f bits/elem), reload SQNR %.2f dB\n",
                static_cast<unsigned long long>(stream.count), path.c_str(),
                stream.serializedSize(),
                8.0 * static_cast<double>(stream.serializedSize()) /
                    static_cast<double>(stream.count),
                stats::sqnrDb(w.data(), rt));
    return 0;
}
