/**
 * @file
 * Table 2 reproduction: the percentage of normal-normal,
 * outlier-normal, and outlier-outlier pairs in each model's tensors
 * under the 3-sigma rule.
 *
 * Paper reference values:
 *   BERT-base  99.12 / 0.84 / 0.04
 *   BERT-large 99.24 / 0.71 / 0.05
 *   GPT2-XL    98.80 / 1.14 / 0.06
 *   OPT-6.7B   99.33 / 0.64 / 0.03
 */

#include <cstdio>

#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "quant/ovp.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Table 2: pair-type census (3-sigma rule) ==\n\n");

    Table t({"Pair Type", "Normal-Normal", "Outlier-Normal",
             "Outlier-Outlier"});
    for (const char *name :
         {"BERT-base", "BERT-large", "GPT2-XL", "OPT-6.7B"}) {
        const auto config = models::byName(name);
        Rng rng(1234);
        // Census over a large batch of synthetic weight tensors.
        PairCensus total;
        for (int rep = 0; rep < 8; ++rep) {
            Tensor w({1u << 19});
            models::fillOutlierTensor(
                w, 1.0, config.profile.weightOutlierProb,
                config.profile.clusterProb,
                config.profile.weightMaxSigma, rng);
            const PairCensus c = pairCensus(w.data(), 3.0);
            total.normalNormal += c.normalNormal;
            total.outlierNormal += c.outlierNormal;
            total.outlierOutlier += c.outlierOutlier;
        }
        t.addRow({name, Table::pct(total.normalNormalPct(), 2),
                  Table::pct(total.outlierNormalPct(), 2),
                  Table::pct(total.outlierOutlierPct(), 3)});
    }
    t.print();

    std::printf("\nPaper: ~99%% normal-normal, ~0.6-1.1%% outlier-normal, "
                "<=0.06%% outlier-outlier.\n");
    return 0;
}
