/**
 * @file
 * Ablation: what the outlier-victim pair buys.
 *
 * Compares, on the same transformer-like tensors:
 *   - clip-all      : int4 with no outlier mechanism (MSE-optimal clip);
 *   - sparse outlier: int4 normals + FP16 outliers in a coordinate list
 *                     (the GOBO/OLAccel-style encoding) — better MSE but
 *                     unaligned, with index overhead bits;
 *   - OVP (OliVe)   : outliers embedded in the aligned stream at zero
 *                     index cost, paying only the victims.
 *
 * Reports MSE plus the effective storage bits per element, the
 * hardware-relevant cost the paper's Table 1 contrasts.
 */

#include <cmath>
#include <cstdio>

#include "baselines/uniform.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Ablation: OVP vs clip-all vs sparse outlier "
                "encoding ==\n\n");

    Table t({"Max sigma", "Encoding", "MSE", "SQNR (dB)", "Bits/elem",
             "Aligned?"});
    Rng rng(31);
    for (double max_sigma : {20.0, 80.0, 200.0}) {
        const Tensor tensor =
            transformerLikeTensor({65536}, max_sigma, 0.008, rng);
        const auto xs = tensor.data();

        // Clip-all int4.
        const float uscale = searchUniformScale(xs, 7);
        const auto clip_rt = uniformFakeQuant(xs, uscale, 7);

        // Sparse outlier: 3-sigma outliers kept FP16 via coordinate
        // list (32-bit coordinate + 16-bit payload per outlier).
        const double sigma = stats::robustSigma(xs);
        std::vector<float> sparse_rt(xs.begin(), xs.end());
        size_t n_outliers = 0;
        {
            std::vector<float> normals;
            for (float v : xs) {
                if (std::fabs(v) > 3.0 * sigma)
                    ++n_outliers;
                else
                    normals.push_back(v);
            }
            const float nscale = searchUniformScale(normals, 7);
            for (auto &v : sparse_rt) {
                if (std::fabs(v) <= 3.0 * sigma) {
                    v = uniformFakeQuant({{v}}, nscale, 7)[0];
                }
                // outliers: FP16 — error negligible, keep exact here
            }
        }
        const double sparse_bits =
            4.0 + 48.0 * static_cast<double>(n_outliers) /
                      static_cast<double>(xs.size());

        // OVP.
        const OliveQuantizer q;
        QuantDecision d;
        const auto ovp_rt = q.fakeQuant(xs, &d);

        const std::string tag = Table::num(max_sigma, 0);
        t.addRow({tag, "clip-all int4",
                  Table::num(stats::mse(xs, clip_rt), 6),
                  Table::num(stats::sqnrDb(xs, clip_rt), 2), "4.00", "yes"});
        t.addRow({tag, "sparse outlier (coord list)",
                  Table::num(stats::mse(xs, sparse_rt), 6),
                  Table::num(stats::sqnrDb(xs, sparse_rt), 2),
                  Table::num(sparse_bits, 2), "no"});
        t.addRow({tag, "OVP (OliVe)", Table::num(stats::mse(xs, ovp_rt), 6),
                  Table::num(stats::sqnrDb(xs, ovp_rt), 2), "4.00", "yes"});
    }
    t.print();

    std::printf("\nOVP approaches the sparse encoding's error at exactly "
                "4 aligned bits/element; clip-all collapses as the tail "
                "grows.\n");
    return 0;
}
