/**
 * @file
 * Serving benchmark: continuous-batching decode throughput, step
 * latency, and KV-cache memory across cache formats (fp32, int8 /
 * olive8 / olive4), writing BENCH_serving.json.
 *
 * Each format serves the identical request workload twice — pinned to
 * one thread and at the ambient pool size — and the two generated
 * token streams are asserted bit-identical before any number is
 * reported: the engine's determinism guarantee is part of what this
 * bench demonstrates (the ctest "serve" legs run it at OLIVE_THREADS=1
 * and =8).  Storage is the paged block pool (the production layout); a
 * contiguous-reference fp32 row is kept for comparison, and a
 * shared-prefix workload row demonstrates prefix sharing: strictly
 * lower peak pool bytes than the identical unshared run, with zero
 * payload copies from admission/eviction (copy-on-write rows are the
 * only copies, asserted via the pool's copy counter).  The quality
 * columns come from serve::cacheImpact on text sampled from the same
 * model.
 *
 * Attention reads go through the decoded-block working set
 * (serve::DecodedBlockCache); every paged row reports its hit/miss/
 * eviction counters, and the bench asserts in-process that total codec
 * decode work grew linearly with processed tokens — the O(1)-per-step
 * amortization the working set exists for.  A kv-olive8-scratch row
 * re-runs olive8 with the working set off for comparison.
 *
 * Two further row pairs pin the batching work: a long-prompt workload
 * served with chunked prefill vs the token-by-token loop (median TTFT
 * must strictly improve, streams bit-identical), and a
 * repetitive-suffix workload served speculatively vs plain greedy
 * (streams bit-identical, accept rate asserted positive).  A final
 * service-olive4 row scripts the same workload through the
 * line-delimited JSON serve::Service front end and asserts the
 * reassembled token streams bit-identical to driving the engine
 * directly, pricing the session framing overhead.
 *
 *   ./build/bench_serving --requests 16 --max-new 16 --threads 8
 */

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "serve/cache_eval.hpp"
#include "serve/engine.hpp"
#include "serve/service.hpp"
#include "util/args.hpp"
#include "util/benchjson.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace olive;

namespace {

/** One format's serving run: metrics + concatenated token stream. */
struct RunResult
{
    std::vector<int> tokens; //!< (id, generated...) in finish order.
    std::map<u64, std::vector<int>> byId; //!< Order-independent view.
    serve::ServeMetrics metrics;
    size_t steps = 0;
};

RunResult
runWorkload(const eval::LmModel &lm, serve::ServeConfig cfg,
            const std::vector<std::vector<int>> &prompts, size_t max_new)
{
    serve::ServeEngine engine(lm, cfg);
    for (const auto &p : prompts)
        engine.submit(p, max_new);
    RunResult r;
    r.steps = engine.runToCompletion();
    for (const serve::FinishedRequest &f : engine.finished()) {
        r.tokens.push_back(static_cast<int>(f.id));
        r.tokens.insert(r.tokens.end(), f.generated.begin(),
                        f.generated.end());
        r.byId[f.id] = f.generated;
    }
    r.metrics = engine.metrics();
    return r;
}

/** Serial-vs-ambient determinism check, then the ambient-pool run. */
RunResult
runChecked(const eval::LmModel &lm, const serve::ServeConfig &cfg,
           const std::vector<std::vector<int>> &prompts, size_t max_new,
           size_t nthreads)
{
    par::setThreadCount(1);
    const RunResult serial = runWorkload(lm, cfg, prompts, max_new);
    par::setThreadCount(nthreads);
    const RunResult run = runWorkload(lm, cfg, prompts, max_new);
    OLIVE_ASSERT(serial.tokens == run.tokens,
                 "serving output diverged across thread counts — "
                 "determinism violation");
    return run;
}

/** Did this run actually share rows, or merely have sharing enabled?
 *  "prefix_sharing" reports the config switch; random-prompt rows kept
 *  it on while exercising nothing, which read as misleading — so every
 *  row also reports "sharing_active", true only when prefix sharing
 *  demonstrably fired (rows seeded from a donor, or pool bytes saved
 *  by multi-reference blocks). */
bool
sharingActive(const serve::ServeMetrics &m)
{
    return m.sharedPrefillRowsSkipped > 0 || m.peakSharedSavedBytes > 0;
}

BenchReport::Entry &
reportRow(BenchReport &report, const std::string &name, const RunResult &r,
          const serve::ServeConfig &cfg)
{
    const serve::ServeMetrics &m = r.metrics;
    const double ratio =
        m.peakFp32CacheBytes
            ? static_cast<double>(m.peakEncodedCacheBytes) /
                  static_cast<double>(m.peakFp32CacheBytes)
            : 0.0;
    return report.add(name)
        .metric("tokens_per_sec", m.tokensPerSecond())
        .metric("generated_per_sec", m.generatedPerSecond())
        .metric("p50_step_ms", m.stepLatencyMs(50.0))
        .metric("p99_step_ms", m.stepLatencyMs(99.0))
        .metric("steps", static_cast<double>(r.steps))
        .metric("tokens_processed", static_cast<double>(m.tokensProcessed))
        .metric("tokens_generated", static_cast<double>(m.tokensGenerated))
        .metric("peak_cache_bytes",
                static_cast<double>(m.peakEncodedCacheBytes))
        .metric("peak_cache_fp32_bytes",
                static_cast<double>(m.peakFp32CacheBytes))
        .metric("cache_ratio_vs_fp32", ratio)
        .metric("paged", cfg.pagedCache ? 1.0 : 0.0)
        .metric("block_rows",
                cfg.pagedCache ? static_cast<double>(cfg.blockRows) : 0.0)
        .metric("prefix_sharing", cfg.prefixSharing ? 1.0 : 0.0)
        .metric("sharing_active", sharingActive(m) ? 1.0 : 0.0)
        .metric("peak_shared_saved_bytes",
                static_cast<double>(m.peakSharedSavedBytes))
        .metric("cow_copy_rows", static_cast<double>(m.cowCopyRows))
        .metric("shared_prefill_rows_skipped",
                static_cast<double>(m.sharedPrefillRowsSkipped))
        .metric("decoded_cache",
                cfg.pagedCache && cfg.decodedCache ? 1.0 : 0.0)
        .metric("decoded_cache_hits", static_cast<double>(m.decodedCacheHits))
        .metric("decoded_cache_misses",
                static_cast<double>(m.decodedCacheMisses))
        .metric("decoded_cache_evictions",
                static_cast<double>(m.decodedCacheEvictions))
        .metric("decoded_cache_rows",
                static_cast<double>(m.decodedCacheRows))
        .metric("decoded_cache_peak_bytes",
                static_cast<double>(m.decodedCachePeakBytes))
        .metric("prefill_chunk", static_cast<double>(cfg.prefillChunk))
        .metric("ttft_ms_p50", m.ttftMs(50.0))
        .metric("ttft_ms_p99", m.ttftMs(99.0))
        // Prefill throughput: rows processed that did not emit a token
        // (prompt rows dominate on long-prompt workloads).
        .metric("prefill_tokens_per_sec",
                m.totalSeconds > 0.0
                    ? static_cast<double>(m.tokensProcessed -
                                          m.tokensGenerated) /
                          m.totalSeconds
                    : 0.0)
        .metric("speculate", cfg.speculate ? 1.0 : 0.0)
        .metric("spec_drafted", static_cast<double>(m.specDrafted))
        .metric("spec_accepted", static_cast<double>(m.specAccepted))
        .metric("spec_accept_rate", m.specAcceptRate())
        .metric("deterministic", 1.0);
}

/**
 * The O(1)-amortization witness, asserted in-bench: with the decoded
 * working set on, codec decode work grows linearly with appended rows
 * — each (block, slot) decodes at most once per residency, so total
 * decoded (K, V) pairs are bounded by layers x processed tokens plus
 * the copy-on-write slots that land in fresh blocks.  The scratch path
 * it replaced re-decoded the whole prefix every step (quadratic in
 * request length), which blows far past this bound on any non-trivial
 * workload.
 */
void
assertDecodeWorkIsLinear(const serve::ServeMetrics &m, size_t layers)
{
    const u64 bound =
        static_cast<u64>(layers) * m.tokensProcessed + m.cowCopyRows;
    OLIVE_ASSERT(m.decodedCacheRows <= bound,
                 "decoded-cache codec work exceeded the linear bound — "
                 "the working set is re-decoding resident rows");
    OLIVE_ASSERT(m.decodedCacheRows > 0 && m.decodedCacheHits > 0,
                 "decoded cache saw no traffic on a decode workload");
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {{"model", "GPT2-XL"},
                           {"requests", ""},
                           {"prompt-len", ""},
                           {"max-new", ""},
                           {"batch-tokens", "8"},
                           {"max-active", "4"},
                           {"block-rows", "4"},
                           {"seed", "23"},
                           {"out", "BENCH_serving.json"}});
    smoke::banner();
    const size_t nthreads = par::threadCount();

    const size_t n_requests =
        args.get("requests").empty()
            ? smoke::count(12, 3)
            : static_cast<size_t>(args.getInt("requests"));
    const size_t prompt_len =
        args.get("prompt-len").empty()
            ? smoke::count(20, 5)
            : static_cast<size_t>(args.getInt("prompt-len"));
    const size_t max_new = args.get("max-new").empty()
                               ? smoke::count(12, 4)
                               : static_cast<size_t>(args.getInt("max-new"));

    const auto config = models::byName(args.get("model"));
    eval::LmModel lm = eval::makeLm(config, 1234);
    // A calibrated teacher (see eval/perplexity.hpp) keeps the proxy
    // PPL columns comparable with the Table 9 machinery.
    eval::calibrateToTarget(lm, 24.0, smoke::count(2, 1),
                            smoke::count(12, 8), 7);

    Rng rng(static_cast<u64>(args.getInt("seed")));
    std::vector<std::vector<int>> prompts(n_requests);
    for (auto &p : prompts) {
        p.resize(1 + prompt_len / 2 + rng.uniformInt(prompt_len));
        for (auto &t : p)
            t = static_cast<int>(rng.uniformInt(lm.vocab));
    }

    Rng trng(99);
    const eval::TokenData text =
        eval::sampleText(lm, smoke::count(3, 1), smoke::count(16, 8), trng);

    serve::ServeConfig scfg;
    scfg.maxBatchTokens = static_cast<size_t>(args.getInt("batch-tokens"));
    scfg.maxActiveRequests = static_cast<size_t>(args.getInt("max-active"));
    scfg.blockRows = static_cast<size_t>(args.getInt("block-rows"));

    const std::vector<serve::KvCacheFormat> formats = {
        serve::KvCacheFormat::Fp32, serve::KvCacheFormat::Int8,
        serve::KvCacheFormat::Olive8, serve::KvCacheFormat::Olive4};

    std::printf("== Serving: %zu requests, prompt~%zu, max-new %zu, "
                "batch-tokens %zu, active<=%zu, block-rows %zu "
                "(%s eval dims) ==\n\n",
                n_requests, prompt_len, max_new, scfg.maxBatchTokens,
                scfg.maxActiveRequests, scfg.blockRows,
                config.name.c_str());

    Table t({"KV cache", "tok/s", "gen/s", "p50 ms", "p99 ms",
             "cache B", "vs fp32", "proxy PPL", "hidden MSE"});
    BenchReport report("bench_serving");
    report.note("mode", smoke::enabled() ? "smoke" : "full");
    report.note("threads", std::to_string(nthreads));
    report.note("model", config.name);
    report.note("requests", std::to_string(n_requests));
    report.note("max_new", std::to_string(max_new));
    report.note("batch_tokens", std::to_string(scfg.maxBatchTokens));
    report.note("block_rows", std::to_string(scfg.blockRows));
    report.note("storage", "paged");
    report.note("decode_codec_cache", "on");
    report.note("decoded_cache", "on");

    double olive4_ratio = -1.0;
    for (serve::KvCacheFormat fmt : formats) {
        scfg.cacheFormat = fmt;
        const RunResult run =
            runChecked(lm, scfg, prompts, max_new, nthreads);

        const auto scheme = serve::makeKvScheme(fmt);
        const serve::CacheImpact impact =
            serve::cacheImpact(lm, text, *scheme);

        const serve::ServeMetrics &m = run.metrics;
        const double ratio =
            m.peakFp32CacheBytes
                ? static_cast<double>(m.peakEncodedCacheBytes) /
                      static_cast<double>(m.peakFp32CacheBytes)
                : 0.0;
        if (fmt == serve::KvCacheFormat::Olive4)
            olive4_ratio = ratio;
        t.addRow({scheme->name(), Table::num(m.tokensPerSecond(), 1),
                  Table::num(m.generatedPerSecond(), 1),
                  Table::num(m.stepLatencyMs(50.0), 3),
                  Table::num(m.stepLatencyMs(99.0), 3),
                  std::to_string(m.peakEncodedCacheBytes),
                  Table::num(ratio, 3) + "x",
                  Table::num(impact.perplexity, 3),
                  Table::sci(impact.hiddenMse)});
        reportRow(report, scheme->name(), run, scfg)
            .metric("impact_proxy_ppl", impact.perplexity)
            .metric("impact_hidden_mse", impact.hiddenMse)
            .metric("impact_logit_mse", impact.logitMse);
        // Paged eviction/admission never copies payload bytes; with
        // sharing idle on random prompts the copy counter must be 0.
        OLIVE_ASSERT(m.cowCopyRows == 0,
                     "unshared workload performed payload copies");
        assertDecodeWorkIsLinear(m, lm.backbone.layers.size());
    }

    // The scratch-path comparison row: the same olive8 workload with
    // the decoded working set off, so the JSON records what block-table
    // attention buys over per-step whole-prefix re-decoding (the
    // pre-working-set behaviour, retained as the bit-exactness oracle).
    {
        serve::ServeConfig scratch = scfg;
        scratch.cacheFormat = serve::KvCacheFormat::Olive8;
        scratch.decodedCache = false;
        const RunResult run =
            runChecked(lm, scratch, prompts, max_new, nthreads);
        t.addRow({"kv-olive8-scratch",
                  Table::num(run.metrics.tokensPerSecond(), 1),
                  Table::num(run.metrics.generatedPerSecond(), 1),
                  Table::num(run.metrics.stepLatencyMs(50.0), 3),
                  Table::num(run.metrics.stepLatencyMs(99.0), 3),
                  std::to_string(run.metrics.peakEncodedCacheBytes), "-",
                  "-", "-"});
        reportRow(report, "kv-olive8-scratch", run, scratch);
    }

    // Contiguous-reference comparison row: the pre-paging layout the
    // fuzz suite uses as its oracle, same workload, fp32.
    {
        serve::ServeConfig ref = scfg;
        ref.cacheFormat = serve::KvCacheFormat::Fp32;
        ref.pagedCache = false;
        const RunResult run =
            runChecked(lm, ref, prompts, max_new, nthreads);
        t.addRow({"kv-fp32-contig",
                  Table::num(run.metrics.tokensPerSecond(), 1),
                  Table::num(run.metrics.generatedPerSecond(), 1),
                  Table::num(run.metrics.stepLatencyMs(50.0), 3),
                  Table::num(run.metrics.stepLatencyMs(99.0), 3),
                  std::to_string(run.metrics.peakEncodedCacheBytes), "-",
                  "-", "-"});
        reportRow(report, "kv-fp32-contig", run, ref);
    }

    // Shared-prefix workload: every request extends one long common
    // prompt prefix (the system-prompt serving pattern).  With sharing,
    // later requests reference the first request's prefix blocks
    // instead of re-caching (and re-computing) them: peak pool bytes
    // must drop strictly below the identical unshared run while the
    // token streams stay bit-identical.  The prefix dominates the
    // request length so the per-sharer saving (full prefix blocks)
    // clearly exceeds the one partial CoW block of slack.
    {
        std::vector<int> prefix(3 * prompt_len + 1);
        for (auto &tok : prefix)
            tok = static_cast<int>(rng.uniformInt(lm.vocab));
        std::vector<std::vector<int>> shared_prompts(n_requests, prefix);
        for (auto &p : shared_prompts) {
            const size_t tail = 1 + rng.uniformInt(3);
            for (size_t i = 0; i < tail; ++i)
                p.push_back(static_cast<int>(rng.uniformInt(lm.vocab)));
        }
        serve::ServeConfig base = scfg;
        base.cacheFormat = serve::KvCacheFormat::Fp32;
        base.maxActiveRequests = n_requests; // sharers overlap the donor
        serve::ServeConfig shared_cfg = base, unshared_cfg = base;
        shared_cfg.prefixSharing = true;
        unshared_cfg.prefixSharing = false;
        const RunResult shared =
            runChecked(lm, shared_cfg, shared_prompts, max_new, nthreads);
        const RunResult unshared = runChecked(lm, unshared_cfg,
                                              shared_prompts, max_new,
                                              nthreads);
        // Sharing reshapes the schedule (sharers skip prefill), so
        // finish ORDER may differ; per-request streams must not.
        OLIVE_ASSERT(shared.byId == unshared.byId,
                     "prefix sharing changed the generated tokens");
        // The headline claims of the paged refactor, asserted:
        OLIVE_ASSERT(shared.metrics.peakEncodedCacheBytes <
                         unshared.metrics.peakEncodedCacheBytes,
                     "prefix sharing failed to lower the peak footprint");
        OLIVE_ASSERT(unshared.metrics.cowCopyRows == 0,
                     "admission/eviction copied payload bytes");
        OLIVE_ASSERT(shared.metrics.sharedPrefillRowsSkipped > 0,
                     "shared-prefix workload shared nothing");
        // The sharing_active column must separate "enabled" from
        // "exercised": the shared-prefix row fires it, its unshared
        // twin (and the random-prompt rows above) must not.
        OLIVE_ASSERT(sharingActive(shared.metrics),
                     "shared-prefix row failed to flag sharing_active");
        OLIVE_ASSERT(!sharingActive(unshared.metrics),
                     "unshared row claimed active sharing");
        for (const auto &[name, run] :
             {std::pair<const char *, const RunResult &>(
                  "kv-fp32-shared-prefix", shared),
              std::pair<const char *, const RunResult &>(
                  "kv-fp32-unshared-prefix", unshared)}) {
            t.addRow({name, Table::num(run.metrics.tokensPerSecond(), 1),
                      Table::num(run.metrics.generatedPerSecond(), 1),
                      Table::num(run.metrics.stepLatencyMs(50.0), 3),
                      Table::num(run.metrics.stepLatencyMs(99.0), 3),
                      std::to_string(run.metrics.peakEncodedCacheBytes),
                      "-", "-", "-"});
        }
        reportRow(report, "kv-fp32-shared-prefix", shared, shared_cfg);
        reportRow(report, "kv-fp32-unshared-prefix", unshared,
                  unshared_cfg);
    }
    // Batched-prefill TTFT pair: identical long-prompt workload served
    // with chunked prefill (forwardChunk slabs) and with the
    // token-by-token oracle loop, same per-step token budget.  The
    // chunked run must strictly beat the loop on median time-to-first-
    // token — the weight matrices stream once per slab instead of once
    // per row — while the streams stay bit-identical (the loop IS the
    // oracle the chunk path is tested against).
    Table pt({"Prefill workload", "TTFT p50 ms", "TTFT p99 ms",
              "prefill tok/s", "drafted", "accepted", "accept"});
    {
        const size_t long_len = 4 * prompt_len + 1;
        const size_t n_long = smoke::count(4, 2);
        std::vector<std::vector<int>> long_prompts(n_long);
        for (auto &p : long_prompts) {
            p.resize(long_len);
            for (auto &tok : p)
                tok = static_cast<int>(rng.uniformInt(lm.vocab));
        }
        serve::ServeConfig batched = scfg;
        batched.cacheFormat = serve::KvCacheFormat::Fp32;
        // Budget wide enough for whole chunks; both variants get it.
        batched.maxBatchTokens =
            std::max<size_t>(scfg.maxBatchTokens, 64);
        batched.prefillChunk = 32;
        serve::ServeConfig stepwise = batched;
        stepwise.prefillChunk = 1;
        const RunResult fast =
            runChecked(lm, batched, long_prompts, 2, nthreads);
        const RunResult slow =
            runChecked(lm, stepwise, long_prompts, 2, nthreads);
        OLIVE_ASSERT(fast.byId == slow.byId,
                     "batched prefill changed the generated tokens");
        OLIVE_ASSERT(fast.metrics.ttftSeconds.size() == n_long &&
                         slow.metrics.ttftSeconds.size() == n_long,
                     "every request must record exactly one TTFT");
        OLIVE_ASSERT(fast.metrics.ttftMs(50.0) <
                         slow.metrics.ttftMs(50.0),
                     "batched prefill failed to beat the token-by-token "
                     "loop on median TTFT");
        for (const auto &[name, run] :
             {std::pair<const char *, const RunResult &>(
                  "long-prompt-batched", fast),
              std::pair<const char *, const RunResult &>(
                  "long-prompt-stepwise", slow)}) {
            const serve::ServeMetrics &m = run.metrics;
            pt.addRow({name, Table::num(m.ttftMs(50.0), 3),
                       Table::num(m.ttftMs(99.0), 3),
                       Table::num(m.totalSeconds > 0.0
                                      ? static_cast<double>(
                                            m.tokensProcessed -
                                            m.tokensGenerated) /
                                            m.totalSeconds
                                      : 0.0,
                                  1),
                       "-", "-", "-"});
        }
        reportRow(report, "long-prompt-batched", fast, batched);
        reportRow(report, "long-prompt-stepwise", slow, stepwise);
    }

    // Speculative decode on a repetitive-suffix workload (the pattern
    // n-gram lookup exists for): streams must be bit-identical to the
    // plain greedy run, and the proposer must actually land accepted
    // drafts — a >0 accept rate is asserted, the rate itself is
    // reported.
    {
        const size_t spec_new = 4 * max_new;
        std::vector<std::vector<int>> rep_prompts(n_requests);
        for (size_t r = 0; r < n_requests; ++r) {
            // A per-request 3-token motif repeated across the prompt:
            // the trailing n-gram always has an earlier occurrence.
            int motif[3];
            for (auto &tok : motif)
                tok = static_cast<int>(rng.uniformInt(lm.vocab));
            rep_prompts[r].resize(prompt_len + 1);
            for (size_t i = 0; i < rep_prompts[r].size(); ++i)
                rep_prompts[r][i] = motif[i % 3];
        }
        serve::ServeConfig greedy = scfg;
        greedy.cacheFormat = serve::KvCacheFormat::Fp32;
        serve::ServeConfig spec = greedy;
        spec.speculate = true;
        spec.draftLen = 4;
        const RunResult g =
            runChecked(lm, greedy, rep_prompts, spec_new, nthreads);
        const RunResult s =
            runChecked(lm, spec, rep_prompts, spec_new, nthreads);
        OLIVE_ASSERT(s.byId == g.byId,
                     "speculative decode changed a token stream");
        OLIVE_ASSERT(s.metrics.specDrafted > 0,
                     "repetitive workload produced no drafts");
        OLIVE_ASSERT(s.metrics.specAccepted > 0,
                     "repetitive workload accepted no drafts");
        const auto spec_row = [&](const char *name, const RunResult &run) {
            const serve::ServeMetrics &m = run.metrics;
            pt.addRow({name, Table::num(m.ttftMs(50.0), 3),
                       Table::num(m.ttftMs(99.0), 3), "-",
                       std::to_string(m.specDrafted),
                       std::to_string(m.specAccepted),
                       Table::num(100.0 * m.specAcceptRate(), 1) + "%"});
        };
        spec_row("repetitive-greedy", g);
        spec_row("repetitive-spec", s);
        reportRow(report, "repetitive-greedy", g, greedy);
        reportRow(report, "repetitive-spec", s, spec);
    }

    // Serving front end row: the identical olive4 workload scripted
    // through the line-delimited JSON Service (submit burst, drain,
    // shutdown).  The Service is an observer over the engine — the
    // per-request token streams reassembled from its token events must
    // be bit-identical to driving the engine directly, and the session
    // overhead (JSON framing + event emission) is what the row's
    // throughput columns price relative to the plain olive4 row.
    {
        serve::ServeConfig front = scfg;
        front.cacheFormat = serve::KvCacheFormat::Olive4;
        const RunResult direct = runWorkload(lm, front, prompts, max_new);

        serve::ServeEngine engine(lm, front);
        std::stringstream in;
        for (const auto &p : prompts) {
            Json prompt = Json::array();
            for (int tok : p)
                prompt.push(tok);
            in << Json::object({{"op", "submit"},
                                {"prompt", prompt},
                                {"max_new", max_new}})
                      .dump()
               << "\n";
        }
        in << "{\"op\":\"drain\"}\n{\"op\":\"shutdown\"}\n";
        serve::ServiceConfig svc;
        svc.autoDrain = false; // burst-then-drain: the direct schedule
        serve::Service service(engine, svc);
        std::stringstream out;
        service.run(in, out);

        std::map<u64, std::vector<int>> streamed;
        size_t session_events = 0;
        std::string line;
        while (std::getline(out, line)) {
            ++session_events;
            const auto ev = Json::parse(line);
            OLIVE_ASSERT(ev.has_value(),
                         "service emitted a non-JSON line");
            if (ev->find("event")->asString() == "token")
                streamed[static_cast<u64>(ev->find("id")->asInt())]
                    .push_back(
                        static_cast<int>(ev->find("token")->asInt()));
        }
        OLIVE_ASSERT(streamed == direct.byId,
                     "service front end altered the token streams");
        RunResult run;
        run.byId = std::move(streamed);
        run.metrics = engine.metrics();
        run.steps = run.metrics.steps;
        t.addRow({"service-olive4",
                  Table::num(run.metrics.tokensPerSecond(), 1),
                  Table::num(run.metrics.generatedPerSecond(), 1),
                  Table::num(run.metrics.stepLatencyMs(50.0), 3),
                  Table::num(run.metrics.stepLatencyMs(99.0), 3),
                  std::to_string(run.metrics.peakEncodedCacheBytes), "-",
                  "-", "-"});
        reportRow(report, "service-olive4", run, front)
            .metric("session_events",
                    static_cast<double>(session_events));
    }
    par::setThreadCount(0);

    t.print();
    std::printf("\n");
    pt.print();
    // The paper-level claim this subsystem exists for: the OVP cache
    // holds the same tokens in at most a quarter of the fp32 bytes.
    OLIVE_ASSERT(olive4_ratio > 0.0 && olive4_ratio <= 0.25,
                 "olive4 KV cache exceeded 0.25x of fp32 bytes");
    report.writeFile(args.get("out"));
    std::printf("\nAll rows served bit-identical token streams at 1 "
                "thread and %zu threads; the shared-prefix run peaked "
                "below the unshared run with zero admission/eviction "
                "copies; batched prefill beat the token-by-token loop "
                "on median TTFT; speculative streams matched greedy "
                "with a positive accept rate.  JSON written to %s.\n",
                nthreads, args.get("out").c_str());
    return 0;
}
