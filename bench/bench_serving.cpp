/**
 * @file
 * Serving benchmark: continuous-batching decode throughput, step
 * latency, and KV-cache memory across cache formats (fp32, int8 /
 * olive8 / olive4), writing BENCH_serving.json.
 *
 * Each format serves the identical request workload twice — pinned to
 * one thread and at the ambient pool size — and the two generated
 * token streams are asserted bit-identical before any number is
 * reported: the engine's determinism guarantee is part of what this
 * bench demonstrates (the ctest "serve" legs run it at OLIVE_THREADS=1
 * and =8).  The quality columns come from serve::cacheImpact on text
 * sampled from the same model.
 *
 *   ./build/bench_serving --requests 16 --max-new 16 --threads 8
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "serve/cache_eval.hpp"
#include "serve/engine.hpp"
#include "util/args.hpp"
#include "util/benchjson.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace olive;

namespace {

/** One format's serving run: metrics + concatenated token stream. */
struct RunResult
{
    std::vector<int> tokens;
    serve::ServeMetrics metrics;
    size_t steps = 0;
};

RunResult
runWorkload(const eval::LmModel &lm, serve::ServeConfig cfg,
            const std::vector<std::vector<int>> &prompts, size_t max_new)
{
    serve::ServeEngine engine(lm, cfg);
    for (const auto &p : prompts)
        engine.submit(p, max_new);
    RunResult r;
    r.steps = engine.runToCompletion();
    for (const serve::FinishedRequest &f : engine.finished()) {
        r.tokens.push_back(static_cast<int>(f.id));
        r.tokens.insert(r.tokens.end(), f.generated.begin(),
                        f.generated.end());
    }
    r.metrics = engine.metrics();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {{"model", "GPT2-XL"},
                           {"requests", ""},
                           {"prompt-len", ""},
                           {"max-new", ""},
                           {"batch-tokens", "8"},
                           {"max-active", "4"},
                           {"seed", "23"},
                           {"out", "BENCH_serving.json"}});
    smoke::banner();
    const size_t nthreads = par::threadCount();

    const size_t n_requests = args.get("requests").empty()
                                  ? smoke::count(12, 3)
                                  : static_cast<size_t>(args.getInt("requests"));
    const size_t prompt_len = args.get("prompt-len").empty()
                                  ? smoke::count(20, 5)
                                  : static_cast<size_t>(args.getInt("prompt-len"));
    const size_t max_new = args.get("max-new").empty()
                               ? smoke::count(12, 4)
                               : static_cast<size_t>(args.getInt("max-new"));

    const auto config = models::byName(args.get("model"));
    eval::LmModel lm = eval::makeLm(config, 1234);
    // A calibrated teacher (see eval/perplexity.hpp) keeps the proxy
    // PPL columns comparable with the Table 9 machinery.
    eval::calibrateToTarget(lm, 24.0, smoke::count(2, 1),
                            smoke::count(12, 8), 7);

    Rng rng(static_cast<u64>(args.getInt("seed")));
    std::vector<std::vector<int>> prompts(n_requests);
    for (auto &p : prompts) {
        p.resize(1 + prompt_len / 2 + rng.uniformInt(prompt_len));
        for (auto &t : p)
            t = static_cast<int>(rng.uniformInt(lm.vocab));
    }

    Rng trng(99);
    const eval::TokenData text =
        eval::sampleText(lm, smoke::count(3, 1), smoke::count(16, 8), trng);

    serve::ServeConfig scfg;
    scfg.maxBatchTokens = static_cast<size_t>(args.getInt("batch-tokens"));
    scfg.maxActiveRequests = static_cast<size_t>(args.getInt("max-active"));

    const std::vector<serve::KvCacheFormat> formats = {
        serve::KvCacheFormat::Fp32, serve::KvCacheFormat::Int8,
        serve::KvCacheFormat::Olive8, serve::KvCacheFormat::Olive4};

    std::printf("== Serving: %zu requests, prompt~%zu, max-new %zu, "
                "batch-tokens %zu, active<=%zu (%s eval dims) ==\n\n",
                n_requests, prompt_len, max_new, scfg.maxBatchTokens,
                scfg.maxActiveRequests, config.name.c_str());

    Table t({"KV cache", "tok/s", "gen/s", "p50 ms", "p99 ms",
             "cache B", "vs fp32", "proxy PPL", "hidden MSE"});
    BenchReport report("bench_serving");
    report.note("mode", smoke::enabled() ? "smoke" : "full");
    report.note("threads", std::to_string(nthreads));
    report.note("model", config.name);
    report.note("requests", std::to_string(n_requests));
    report.note("max_new", std::to_string(max_new));
    report.note("batch_tokens", std::to_string(scfg.maxBatchTokens));

    double olive4_ratio = -1.0;
    for (serve::KvCacheFormat fmt : formats) {
        scfg.cacheFormat = fmt;
        // Determinism first: serial and ambient-pool runs must produce
        // identical token streams.
        par::setThreadCount(1);
        const RunResult serial = runWorkload(lm, scfg, prompts, max_new);
        par::setThreadCount(nthreads);
        const RunResult run = runWorkload(lm, scfg, prompts, max_new);
        OLIVE_ASSERT(serial.tokens == run.tokens,
                     "serving output diverged across thread counts — "
                     "determinism violation");

        const auto scheme = serve::makeKvScheme(fmt);
        const serve::CacheImpact impact =
            serve::cacheImpact(lm, text, *scheme);

        const serve::ServeMetrics &m = run.metrics;
        const double ratio =
            m.peakFp32CacheBytes
                ? static_cast<double>(m.peakEncodedCacheBytes) /
                      static_cast<double>(m.peakFp32CacheBytes)
                : 0.0;
        if (fmt == serve::KvCacheFormat::Olive4)
            olive4_ratio = ratio;
        t.addRow({scheme->name(), Table::num(m.tokensPerSecond(), 1),
                  Table::num(m.generatedPerSecond(), 1),
                  Table::num(m.stepLatencyMs(50.0), 3),
                  Table::num(m.stepLatencyMs(99.0), 3),
                  std::to_string(m.peakEncodedCacheBytes),
                  Table::num(ratio, 3) + "x",
                  Table::num(impact.perplexity, 3),
                  Table::sci(impact.hiddenMse)});
        report.add(scheme->name())
            .metric("tokens_per_sec", m.tokensPerSecond())
            .metric("generated_per_sec", m.generatedPerSecond())
            .metric("p50_step_ms", m.stepLatencyMs(50.0))
            .metric("p99_step_ms", m.stepLatencyMs(99.0))
            .metric("steps", static_cast<double>(run.steps))
            .metric("tokens_processed",
                    static_cast<double>(m.tokensProcessed))
            .metric("tokens_generated",
                    static_cast<double>(m.tokensGenerated))
            .metric("peak_cache_bytes",
                    static_cast<double>(m.peakEncodedCacheBytes))
            .metric("peak_cache_fp32_bytes",
                    static_cast<double>(m.peakFp32CacheBytes))
            .metric("cache_ratio_vs_fp32", ratio)
            .metric("impact_proxy_ppl", impact.perplexity)
            .metric("impact_hidden_mse", impact.hiddenMse)
            .metric("impact_logit_mse", impact.logitMse)
            .metric("deterministic", 1.0);
    }
    par::setThreadCount(0);

    t.print();
    // The paper-level claim this subsystem exists for: the OVP cache
    // holds the same tokens in at most a quarter of the fp32 bytes.
    OLIVE_ASSERT(olive4_ratio > 0.0 && olive4_ratio <= 0.25,
                 "olive4 KV cache exceeded 0.25x of fp32 bytes");
    report.writeFile(args.get("out"));
    std::printf("\nAll formats served bit-identical token streams at 1 "
                "thread and %zu threads.  JSON written to %s.\n",
                nthreads, args.get("out").c_str());
    return 0;
}
