/**
 * @file
 * Figure 5 reproduction: rounding error of the largest outliers
 * quantized with the four 4-bit abfloat configurations (E0M3, E1M2,
 * E2M1, E3M0).
 *
 * For each model we take the largest outlier of each tensor in its zoo
 * (the Max-sigma values of Fig. 2), quantize with every configuration
 * (bias chosen per format so the range starts above the int4 normals),
 * and report the normalized mean absolute error.  The paper finds E2M1
 * minimizes the error on every model, motivating its choice as the
 * outlier data type.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "quant/abfloat.hpp"
#include "util/stats.hpp"
#include "tensor/distribution.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Fig. 5: outlier rounding error per abfloat "
                "configuration ==\n\n");

    struct Config { const char *name; int eb, mb; };
    const Config configs[] = {
        {"E0M3", 0, 3}, {"E1M2", 1, 2}, {"E2M1", 2, 1}, {"E3M0", 3, 0}};

    Table t({"Model", "E0M3", "E1M2", "E2M1", "E3M0"});
    for (const char *model :
         {"BERT-base", "BERT-large", "BART-base", "GPT2-XL"}) {
        const auto cfg = models::byName(model);
        const auto zoo = models::makeTensorZoo(cfg, 24, 16384, 11);

        std::vector<std::string> row = {model};
        for (const auto &c : configs) {
            double err_sum = 0.0;
            size_t err_n = 0;
            for (const auto &tensor : zoo) {
                // The tensor's outliers (beyond 3 robust sigma) on the
                // int4-scale grid.
                const double sigma = stats::robustSigma(tensor.data());
                const double grid = 3.0 * sigma / 7.0;
                std::vector<double> all_mags;
                double top = 0.0;
                for (float v : tensor.data()) {
                    const double mag = std::fabs(v) / grid;
                    if (std::fabs(v) > 3.0 * sigma) {
                        all_mags.push_back(mag);
                        top = std::max(top, mag);
                    }
                }
                if (all_mags.empty())
                    continue;
                // "The largest outlier values": the top octave-and-a-half of
                // tensor outlier distribution — the values the
                // outlier type exists for.
                std::vector<double> outliers;
                for (double mag : all_mags) {
                    if (mag >= top / 8.0)
                        outliers.push_back(mag);
                }
                // Adaptive bias (Sec. 3.3): the smallest bias whose
                // range covers this tensor's largest outlier.  The
                // formats then differ in how much of the outlier span
                // below the maximum they can still resolve.
                int bias = 0;
                while (bias < 38 &&
                       AbFloat(c.eb, c.mb, bias).maxValue() < top)
                    ++bias;
                const AbFloat fmt(c.eb, c.mb, bias);
                for (double mag : outliers) {
                    const double q = fmt.decode(fmt.encode(mag));
                    err_sum += std::fabs(q - mag) * grid / sigma;
                    ++err_n;
                }
            }
            row.push_back(Table::num(
                err_sum / static_cast<double>(std::max<size_t>(1, err_n)),
                2));
        }
        t.addRow(std::move(row));
    }
    t.print();

    std::printf("\nPaper shape: E2M1 gives the least normalized error on "
                "all models (range large enough, some precision).\n");
    return 0;
}
