/**
 * @file
 * Tables 10 and 11 reproduction: the area of the OliVe decoders on an
 * RTX 2080 Ti (12 nm) and the area breakdown of the OliVe systolic
 * array (22 nm), plus the technology-scaling cross-check.
 */

#include <cstdio>

#include "hw/area.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Table 10: OliVe decoder area on RTX 2080 Ti "
                "(12 nm, %.0f mm^2 die) ==\n\n",
                hw::kTuringDieMm2);
    const auto gpu = hw::gpuDecoderBreakdown();
    Table t10({"Component", "Number", "Area (mm^2)", "Area Ratio"});
    for (size_t i = 0; i < gpu.components.size(); ++i) {
        const auto &c = gpu.components[i];
        t10.addRow({c.name + " (" + Table::num(c.unitAreaUm2, 2) +
                        " um^2)",
                    std::to_string(c.count), Table::num(c.totalMm2(), 2),
                    Table::pct(100.0 * gpu.ratioOf(i, hw::kTuringDieMm2),
                               3)});
    }
    t10.print();
    std::printf("Paper: 0.250%% and 0.166%% of the die.\n");

    std::printf("\n== Table 11: OliVe systolic-array area breakdown "
                "(22 nm) ==\n\n");
    const auto sa = hw::systolicBreakdown();
    Table t11({"Component", "Number", "Area (mm^2)", "Area Ratio"});
    for (size_t i = 0; i < sa.components.size(); ++i) {
        const auto &c = sa.components[i];
        t11.addRow({c.name + " (" + Table::num(c.unitAreaUm2, 2) +
                        " um^2)",
                    std::to_string(c.count),
                    Table::num(c.totalMm2(), 5),
                    Table::pct(100.0 * sa.ratioOf(i), 1)});
    }
    t11.print();
    std::printf("Paper: decoders 2.2%% + 1.5%%, PEs 96.3%%.\n");

    std::printf("\n== Technology scaling cross-check (22 nm -> 12 nm) "
                "==\n\n");
    Table ts({"Component", "22 nm (um^2)", "scaled 12 nm", "published"});
    ts.addRow({"4-bit decoder", Table::num(hw::Area22nm::kDecoder4, 2),
               Table::num(hw::scaleArea(hw::Area22nm::kDecoder4, 22, 12),
                          2),
               Table::num(hw::Area12nm::kDecoder4, 2)});
    ts.addRow({"8-bit decoder", Table::num(hw::Area22nm::kDecoder8, 2),
               Table::num(hw::scaleArea(hw::Area22nm::kDecoder8, 22, 12),
                          2),
               Table::num(hw::Area12nm::kDecoder8, 2)});
    ts.print();
    return 0;
}
