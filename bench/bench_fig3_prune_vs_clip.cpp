/**
 * @file
 * Figure 3 reproduction: accuracy comparison of multiple pruning
 * methods on the GLUE-proxy tasks with a BERT-base backbone.
 *
 * Four settings per task, all at FP32 storage:
 *   - source accuracy (untouched model);
 *   - clipping outliers to 3 sigma (the common quantization practice);
 *   - pruning victims (zeroing the pair partner of every outlier);
 *   - pruning the same number of random normal values.
 *
 * The paper's observation: clipping the ~1 % of outliers is
 * catastrophic, while pruning victims costs almost nothing — the
 * algorithmic license behind the outlier-victim pair.
 */

#include <cstdio>

#include "eval/accuracy.hpp"
#include "eval/schemes.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Fig. 3: clipping outliers vs pruning victims "
                "(BERT-base) ==\n\n");

    const auto config = models::bertBase();
    Table t({"Task (metric)", "Source", "Clipping Outlier",
             "Pruning Victim", "Pruning Normal Value"});

    auto tasks = eval::glueTasks();
    if (smoke::enabled())
        tasks.resize(2);
    const size_t n = smoke::count(144, 24);
    for (const auto &task : tasks) {
        eval::TaskEvaluator evaluator(config, task, /*seed=*/1, n, n);
        const SchemePtr clip = eval::makeScheme("clip-outliers");
        const SchemePtr victims = eval::makeScheme("prune-victims");
        const SchemePtr random = eval::makeScheme("prune-random");
        t.addRow({task.name + " (" + eval::metricLabel(task.metric) + ")",
                  Table::num(evaluator.evalFp32(), 2),
                  Table::num(evaluator.evalScheme(*clip), 2),
                  Table::num(evaluator.evalScheme(*victims), 2),
                  Table::num(evaluator.evalScheme(*random), 2)});
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n\n");
    t.print();

    std::printf("\nPaper shape: clipping collapses every task; victim "
                "pruning tracks random pruning within ~1 point of "
                "source.\n");
    return 0;
}
