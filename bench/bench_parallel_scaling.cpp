/**
 * @file
 * Serial-vs-parallel throughput of the three hot kernels the engine
 * feeds: reference GEMM (matmulTransB), OVP stream encode, and a full
 * transformer forward.  Each kernel runs pinned to 1 thread and then at
 * the ambient pool size (OLIVE_THREADS / --threads), verifying the
 * outputs are bit-identical before reporting throughput and speedup —
 * the determinism guarantee is part of what this bench demonstrates.
 *
 *   ./build/bench_parallel_scaling --threads 8 --reps 5
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "nn/transformer.hpp"
#include "quant/quantizer.hpp"
#include "tensor/gemm.hpp"
#include "util/args.hpp"
#include "util/benchjson.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace olive;

namespace {

using benchutil::gaussianTensor;
using benchutil::secondsOf;

struct KernelResult
{
    const char *name;
    double work;        //!< Work units per run (for the rate column).
    const char *unit;
    double serialSec = 0.0;
    double parallelSec = 0.0;
    bool identical = false;
};

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {{"reps", "3"}, {"out", "BENCH_parallel.json"}});
    smoke::banner();
    const int reps = static_cast<int>(args.getInt("reps"));
    const size_t nthreads = par::threadCount();

    // --- workloads -----------------------------------------------------
    const size_t dim = smoke::count(384, 96);
    const Tensor a = gaussianTensor({dim, dim}, 1);
    const Tensor w = gaussianTensor({dim, dim}, 2);

    const size_t quant_n = smoke::count(1u << 22, 1u << 16);
    Rng rng(3);
    std::vector<float> xs(quant_n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.008, 3.5, 90.0));
    const OliveQuantizer quantizer;
    const OvpCodec codec = quantizer.makeCodec(quantizer.calibrate(xs));

    const auto config = models::byName("BERT-base");
    const nn::Transformer model = models::makeBackbone(config, 4);
    const size_t seq = smoke::count(64, 16);
    const Tensor x = gaussianTensor({seq, config.evalDModel}, 5);

    // --- kernels -------------------------------------------------------
    KernelResult results[] = {
        {"GEMM (A*W^T)", 2.0 * static_cast<double>(dim) *
                             static_cast<double>(dim) *
                             static_cast<double>(dim) / 1e9,
         "GFLOP/s"},
        {"OVP encode", static_cast<double>(quant_n) / 1e6, "Melem/s"},
        {"transformer fwd", 1.0, "fwd/s"},
    };

    Tensor gemm_out[2];
    std::vector<u8> enc_out[2];
    Tensor fwd_out[2];

    par::setThreadCount(1);
    results[0].serialSec =
        secondsOf(reps, [&] { gemm_out[0] = matmulTransB(a, w); });
    results[1].serialSec =
        secondsOf(reps, [&] { enc_out[0] = codec.encode(xs); });
    results[2].serialSec =
        secondsOf(reps, [&] { fwd_out[0] = model.forward(x, nullptr); });

    par::setThreadCount(nthreads);
    results[0].parallelSec =
        secondsOf(reps, [&] { gemm_out[1] = matmulTransB(a, w); });
    results[1].parallelSec =
        secondsOf(reps, [&] { enc_out[1] = codec.encode(xs); });
    results[2].parallelSec =
        secondsOf(reps, [&] { fwd_out[1] = model.forward(x, nullptr); });
    par::setThreadCount(0);

    results[0].identical =
        gemm_out[0].size() == gemm_out[1].size() &&
        std::memcmp(gemm_out[0].raw(), gemm_out[1].raw(),
                    gemm_out[0].size() * sizeof(float)) == 0;
    results[1].identical = enc_out[0] == enc_out[1];
    results[2].identical =
        fwd_out[0].size() == fwd_out[1].size() &&
        std::memcmp(fwd_out[0].raw(), fwd_out[1].raw(),
                    fwd_out[0].size() * sizeof(float)) == 0;

    std::printf("== Parallel scaling: serial vs %zu threads ==\n\n",
                nthreads);
    Table t({"Kernel", "Serial", "Parallel", "Speedup", "Bit-identical"});
    BenchReport report("bench_parallel_scaling");
    report.note("mode", smoke::enabled() ? "smoke" : "full");
    report.note("threads", std::to_string(nthreads));
    for (const KernelResult &r : results) {
        const double rate_s = r.work / r.serialSec;
        const double rate_p = r.work / r.parallelSec;
        const double speedup = r.serialSec / r.parallelSec;
        t.addRow({r.name,
                  Table::num(rate_s, 2) + " " + r.unit,
                  Table::num(rate_p, 2) + " " + r.unit,
                  Table::num(speedup, 2) + "x",
                  r.identical ? "yes" : "NO"});
        report.add(r.name)
            .label("unit", r.unit)
            .metric("serial_sec", r.serialSec)
            .metric("parallel_sec", r.parallelSec)
            .metric("serial_rate", rate_s)
            .metric("parallel_rate", rate_p)
            .metric("speedup", speedup)
            .metric("identical", r.identical ? 1.0 : 0.0);
        OLIVE_ASSERT(r.identical,
                     "parallel output diverged from serial — determinism "
                     "violation");
    }
    t.print();
    report.writeFile(args.get("out"));
    std::printf("\nthreads: set OLIVE_THREADS or --threads; 1 forces "
                "serial.  Outputs are bit-identical by construction "
                "(deterministic static partitioning).  JSON written to "
                "%s.\n", args.get("out").c_str());
    return 0;
}
