/**
 * @file
 * Scenario-matrix serving benchmark: seeded serve::Workload traces
 * (uniform / Poisson / bursty / diurnal arrivals, a shared-system-
 * prompt population, multi-turn conversations) replayed through the
 * ServeEngine, one JSON row per scenario in BENCH_scenarios.json.
 *
 * Every scenario is replayed twice — pinned to one thread and at the
 * ambient pool size — and the per-request token streams plus all
 * step-domain latency numbers are asserted bit-identical before any
 * row is reported; --streams-out additionally writes the timing-free
 * stream signature to a file so the CI determinism leg can diff two
 * whole process runs byte for byte.
 *
 * The multi-turn scenario runs as a retention-on / retention-off pair
 * on the same trace: the pair is asserted bit-identical per request
 * (retention is invisible in token space), the retention-on row must
 * actually hit the retention LRU (shared_prefill_rows_skipped > 0),
 * and its median time-to-first-token — measured in engine steps, the
 * deterministic domain — must be strictly lower than the
 * retention-off run's: the cached prefix is what makes a follow-up
 * turn skip re-prefilling the whole dialogue.
 *
 *   ./build/bench_serving_scenarios --scenario multi-turn
 */

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "eval/perplexity.hpp"
#include "models/config.hpp"
#include "serve/engine.hpp"
#include "serve/workload.hpp"
#include "util/args.hpp"
#include "util/benchjson.hpp"
#include "util/json.hpp"
#include "util/parallel.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace olive;

namespace {

/** One scenario replay: engine metrics plus per-request outcomes. */
struct ScenarioRun
{
    serve::ServeMetrics metrics;
    serve::ReplayResult replay;
};

/** p-th percentile (nearest-rank on the sorted values; 0 if empty). */
double
percentile(std::vector<double> v, double p)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    const double pos =
        p / 100.0 * static_cast<double>(v.size() - 1) + 0.5;
    const size_t idx =
        std::min(v.size() - 1, static_cast<size_t>(pos));
    return v[idx];
}

/** Per-request TTFT in engine steps — the deterministic latency
 *  domain (wall TTFT varies with the machine, steps never do). */
std::vector<double>
ttftSteps(const serve::ReplayResult &r)
{
    std::vector<double> out;
    out.reserve(r.requests.size());
    for (const serve::ReplayRequestResult &q : r.requests)
        out.push_back(
            static_cast<double>(q.firstTokenStep - q.submitStep));
    return out;
}

/**
 * The timing-free signature of a replay: everything deterministic
 * about it (token streams, sharing rows, step-domain latencies), no
 * wall-clock fields.  Dumped for cross-run/process comparison.
 */
Json
streamsJson(const serve::ReplayResult &r)
{
    Json arr = Json::array();
    for (const serve::ReplayRequestResult &q : r.requests) {
        Json toks = Json::array();
        for (int t : q.generated)
            toks.push(Json(t));
        arr.push(Json::object({
            {"trace_id", q.traceId},
            {"prompt_tokens", q.promptTokens},
            {"shared_prefix_rows", q.sharedPrefixRows},
            {"submit_step", q.submitStep},
            {"first_token_step", q.firstTokenStep},
            {"finish_step", q.finishStep},
            {"generated", std::move(toks)},
        }));
    }
    return arr;
}

ScenarioRun
runScenario(const eval::LmModel &lm, const serve::ServeConfig &cfg,
            const serve::Workload &workload)
{
    serve::ServeEngine engine(lm, cfg);
    ScenarioRun r;
    r.replay = serve::replayTrace(engine, workload);
    r.metrics = engine.metrics();
    return r;
}

/** Serial-vs-ambient determinism check, then the ambient-pool run. */
ScenarioRun
runChecked(const eval::LmModel &lm, const serve::ServeConfig &cfg,
           const serve::Workload &workload, size_t nthreads)
{
    par::setThreadCount(1);
    const ScenarioRun serial = runScenario(lm, cfg, workload);
    par::setThreadCount(nthreads);
    ScenarioRun run = runScenario(lm, cfg, workload);
    OLIVE_ASSERT(streamsJson(serial.replay).dump() ==
                     streamsJson(run.replay).dump(),
                 "scenario replay diverged across thread counts — "
                 "determinism violation");
    return run;
}

bool
sharingActive(const serve::ServeMetrics &m)
{
    return m.sharedPrefillRowsSkipped > 0 || m.peakSharedSavedBytes > 0;
}

void
reportRow(BenchReport &report, const std::string &name,
          const ScenarioRun &r, const serve::ServeConfig &cfg,
          const serve::Workload &w)
{
    const serve::ServeMetrics &m = r.metrics;
    const std::vector<double> tsteps = ttftSteps(r.replay);
    report.add(name)
        .metric("requests", static_cast<double>(w.requests().size()))
        .metric("sessions", static_cast<double>(w.spec().sessions))
        .metric("ticks", static_cast<double>(r.replay.ticks))
        .metric("steps", static_cast<double>(m.steps))
        .metric("tokens_per_sec", m.tokensPerSecond())
        .metric("goodput_generated_per_sec", m.generatedPerSecond())
        .metric("p50_step_ms", m.stepLatencyMs(50.0))
        .metric("p99_step_ms", m.stepLatencyMs(99.0))
        .metric("ttft_ms_p50", m.ttftMs(50.0))
        .metric("ttft_ms_p99", m.ttftMs(99.0))
        .metric("ttft_steps_p50", percentile(tsteps, 50.0))
        .metric("ttft_steps_p99", percentile(tsteps, 99.0))
        .metric("peak_pending", static_cast<double>(r.replay.peakPending))
        .metric("peak_active", static_cast<double>(r.replay.peakActive))
        .metric("peak_cache_bytes",
                static_cast<double>(m.peakEncodedCacheBytes))
        .metric("peak_shared_saved_bytes",
                static_cast<double>(m.peakSharedSavedBytes))
        .metric("shared_prefill_rows_skipped",
                static_cast<double>(m.sharedPrefillRowsSkipped))
        .metric("cow_copy_rows", static_cast<double>(m.cowCopyRows))
        .metric("sharing_active", sharingActive(m) ? 1.0 : 0.0)
        .metric("requests_cancelled",
                static_cast<double>(m.requestsCancelled))
        .metric("retention_on", cfg.retainPrefixes ? 1.0 : 0.0)
        .metric("retention_stored",
                static_cast<double>(m.retentionStored))
        .metric("retention_hits", static_cast<double>(m.retentionHits))
        .metric("retention_shared_rows",
                static_cast<double>(m.retentionSharedRows))
        .metric("retention_evictions",
                static_cast<double>(m.retentionEvictions))
        .metric("retained_peak_bytes",
                static_cast<double>(m.retainedPeakBytes))
        .metric("deterministic", 1.0);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {{"model", "GPT2-XL"},
                           {"scenario", ""},
                           {"batch-tokens", "16"},
                           {"max-active", "4"},
                           {"block-rows", "4"},
                           {"out", "BENCH_scenarios.json"},
                           {"streams-out", ""}});
    smoke::banner();
    const size_t nthreads = par::threadCount();

    const auto config = models::byName(args.get("model"));
    const eval::LmModel lm = eval::makeLm(config, 1234);

    serve::ServeConfig base;
    base.cacheFormat = serve::KvCacheFormat::Olive4;
    base.maxBatchTokens =
        static_cast<size_t>(args.getInt("batch-tokens"));
    base.maxActiveRequests =
        static_cast<size_t>(args.getInt("max-active"));
    base.blockRows = static_cast<size_t>(args.getInt("block-rows"));

    /** The matrix: row name, named scenario, retention switch. */
    struct Row
    {
        const char *name;
        const char *scenario;
        bool retain;
    };
    const std::vector<Row> matrix = {
        {"uniform", "uniform", false},
        {"poisson", "poisson", false},
        {"bursty", "bursty", false},
        {"diurnal", "diurnal", false},
        {"shared-system", "shared-system", false},
        {"multi-turn-retain", "multi-turn", true},
        {"multi-turn-noretain", "multi-turn", false},
    };
    const std::string only = args.get("scenario");

    std::printf("== Serving scenarios: %s eval dims, batch-tokens %zu, "
                "active<=%zu, block-rows %zu ==\n\n",
                config.name.c_str(), base.maxBatchTokens,
                base.maxActiveRequests, base.blockRows);

    Table t({"Scenario", "reqs", "ticks", "gen/s", "p50 step ms",
             "TTFT p50 steps", "shared rows", "retention hits"});
    BenchReport report("bench_serving_scenarios");
    report.note("mode", smoke::enabled() ? "smoke" : "full");
    report.note("threads", std::to_string(nthreads));
    report.note("model", config.name);
    report.note("cache_format", "olive4");
    Json streams = Json::object({});

    std::map<std::string, ScenarioRun> runs;
    for (const Row &row : matrix) {
        if (!only.empty() && only != row.name && only != row.scenario)
            continue;
        serve::WorkloadSpec spec = serve::Workload::namedSpec(row.scenario);
        // Smoke mode shrinks the population, never the shape: the
        // arrival process and length distributions stay as specced.
        spec.sessions = smoke::count(spec.sessions, 4);
        const serve::Workload w = serve::Workload::generate(spec);
        serve::ServeConfig cfg = base;
        cfg.retainPrefixes = row.retain;
        const ScenarioRun run = runChecked(lm, cfg, w, nthreads);
        const serve::ServeMetrics &m = run.metrics;
        t.addRow({row.name, std::to_string(w.requests().size()),
                  std::to_string(run.replay.ticks),
                  Table::num(m.generatedPerSecond(), 1),
                  Table::num(m.stepLatencyMs(50.0), 3),
                  Table::num(percentile(ttftSteps(run.replay), 50.0), 1),
                  std::to_string(m.sharedPrefillRowsSkipped),
                  std::to_string(m.retentionHits)});
        reportRow(report, row.name, run, cfg, w);
        streams.set(row.name, streamsJson(run.replay));
        runs.emplace(row.name, run);
    }
    par::setThreadCount(0);
    OLIVE_ASSERT(!runs.empty(), "scenario filter matched nothing");

    // The shared-system-prompt population must actually exercise
    // sharing (live donors): the row's sharing_active is load-bearing.
    if (runs.count("shared-system")) {
        const serve::ServeMetrics &m = runs.at("shared-system").metrics;
        OLIVE_ASSERT(m.sharedPrefillRowsSkipped > 0,
                     "shared-system scenario shared no prefill rows");
    }

    // The retention pair: bit-identical streams, a real LRU hit rate,
    // and a strictly lower deterministic median TTFT.
    if (runs.count("multi-turn-retain") &&
        runs.count("multi-turn-noretain")) {
        const ScenarioRun &on = runs.at("multi-turn-retain");
        const ScenarioRun &off = runs.at("multi-turn-noretain");
        OLIVE_ASSERT(on.replay.requests.size() ==
                         off.replay.requests.size(),
                     "retention pair replayed different traces");
        for (size_t i = 0; i < on.replay.requests.size(); ++i)
            OLIVE_ASSERT(on.replay.requests[i].generated ==
                             off.replay.requests[i].generated,
                         "cached-prefix retention changed a token "
                         "stream");
        OLIVE_ASSERT(on.metrics.retentionStored > 0 &&
                         on.metrics.retentionHits > 0,
                     "multi-turn scenario never hit the retention LRU");
        OLIVE_ASSERT(on.metrics.sharedPrefillRowsSkipped > 0,
                     "retention hits skipped no prefill rows");
        OLIVE_ASSERT(off.metrics.retentionStored == 0 &&
                         off.metrics.retentionHits == 0,
                     "retention-off run stored retained prefixes");
        OLIVE_ASSERT(percentile(ttftSteps(on.replay), 50.0) <
                         percentile(ttftSteps(off.replay), 50.0),
                     "retention failed to lower the median TTFT "
                     "(engine-step domain)");
    }

    t.print();
    report.writeFile(args.get("out"));
    if (!args.get("streams-out").empty()) {
        std::ofstream f(args.get("streams-out"));
        OLIVE_ASSERT(f.good(), "cannot open --streams-out file");
        f << streams.dump() << "\n";
    }
    std::printf("\nEvery scenario served bit-identical streams at 1 "
                "thread and %zu threads; the multi-turn retention pair "
                "matched token-for-token with a strictly lower median "
                "TTFT when retaining.  JSON written to %s.\n",
                nthreads, args.get("out").c_str());
    return 0;
}
