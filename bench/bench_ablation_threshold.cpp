/**
 * @file
 * Ablation: the outlier-threshold sweep behind the Sec. 3.4 MSE search.
 *
 * Sweeps the OVP threshold across multiples of the (robust) 3-sigma
 * seed on transformer-like tensors and prints the quantization MSE and
 * the outlier-pair / pruned-outlier rates per candidate — exposing the
 * valley the framework's search finds: too low a threshold creates too
 * many outlier-victim pairs (victim pruning cost) and outlier-outlier
 * collisions; too high a threshold coarsens the normal grid and clips
 * moderate outliers.
 */

#include <cstdio>

#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Ablation: OVP outlier-threshold sweep (int4 "
                "normals) ==\n\n");

    Rng rng(77);
    const Tensor tensor = transformerLikeTensor({65536}, 80.0, 0.008, rng);
    const auto xs = tensor.data();
    const double sigma = stats::robustSigma(xs);
    std::printf("tensor: 64k values, robust sigma %.3f, max %.1f\n\n",
                sigma, stats::absMax(xs));

    Table t({"T / 3sigma", "Threshold", "MSE", "SQNR (dB)",
             "OV pairs %", "Pruned outliers"});
    double best_mse = 1e30;
    double best_mult = 0.0;
    for (double mult : {0.25, 0.4, 0.6, 0.8, 1.0, 1.3, 1.7, 2.2, 3.0,
                        4.0, 6.0}) {
        const double threshold = mult * 3.0 * sigma;
        const float scale = static_cast<float>(threshold / 7.0);
        const OvpCodec codec(NormalType::Int4, scale, threshold);
        OvpStats st;
        const auto rt = codec.fakeQuant(xs, &st);
        const double mse = stats::mse(xs, rt);
        if (mse < best_mse) {
            best_mse = mse;
            best_mult = mult;
        }
        t.addRow({Table::num(mult, 2), Table::num(threshold, 3),
                  Table::num(mse, 6), Table::num(stats::sqnrDb(xs, rt), 2),
                  Table::num(100.0 * static_cast<double>(st.outlierPairs) /
                                 static_cast<double>(st.pairs),
                             2),
                  std::to_string(st.prunedOutliers)});
    }
    t.print();

    std::printf("\nMSE valley at %.2fx the 3-sigma seed; the framework's "
                "search (Sec. 3.4) lands there automatically:\n",
                best_mult);
    const OliveQuantizer q;
    QuantDecision d;
    q.fakeQuant(xs, &d);
    std::printf("search result: type=%s threshold=%.3f (%.2fx 3sigma), "
                "mse=%.6f\n",
                toString(d.normal).c_str(), d.threshold,
                d.threshold / (3.0 * sigma), d.mse);
    return 0;
}
