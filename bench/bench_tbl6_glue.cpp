/**
 * @file
 * Table 6 reproduction: GLUE accuracy of OliVe 4-bit PTQ against ANT
 * (PTQ and QAT), Outlier Suppression (4-bit QAT and 6-bit PTQ), and
 * Q8BERT (8-bit QAT) on BERT-base, BERT-large, and BART-base.
 *
 * "QAT" rows refit the task head on quantized features (the proxy's
 * quantization-aware fine-tuning); PTQ rows keep the FP32-trained head.
 */

#include <cstdio>

#include "eval/accuracy.hpp"
#include "eval/schemes.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

struct Row
{
    const char *label;
    const char *scheme; //!< nullptr = FP32 source row.
    bool qat;
};

void
runModel(const char *model, const std::vector<Row> &rows)
{
    const auto config = models::byName(model);
    auto tasks = eval::table6Tasks();
    if (smoke::enabled())
        tasks.resize(1);

    std::vector<std::string> header = {std::string(model) + " / Method"};
    for (const auto &task : tasks)
        header.push_back(task.name);
    Table t(std::move(header));

    // One evaluator per task, reused across schemes.
    std::vector<eval::TaskEvaluator> evaluators;
    evaluators.reserve(tasks.size());
    const size_t n = smoke::count(144, 24);
    for (const auto &task : tasks)
        evaluators.emplace_back(config, task, /*seed=*/1, n, n);

    for (const auto &row : rows) {
        std::vector<std::string> cells = {row.label};
        for (auto &ev : evaluators) {
            double metric;
            if (!row.scheme) {
                metric = ev.evalFp32();
            } else {
                const SchemePtr scheme = eval::makeScheme(row.scheme);
                metric = ev.evalScheme(*scheme, row.qat);
            }
            cells.push_back(Table::num(metric, 2));
        }
        t.addRow(std::move(cells));
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n");
    t.print();
    std::printf("\n");
}

} // namespace

int
main()
{
    smoke::banner();
    std::printf("== Table 6: GLUE results (CoLA, SST-2, MNLI, QQP, MRPC) "
                "==\n\n");

    runModel("BERT-base",
             {{"FP32 (source)", nullptr, false},
              {"Ours 4-bit PTQ", "olive4", false},
              {"ANT 4-bit QAT", "ant4", true},
              {"ANT 4-bit PTQ", "ant4", false},
              {"OS 4-bit QAT", "os4", true},
              {"OS 6-bit PTQ", "os6", false},
              {"Q8BERT 8-bit QAT", "q8bert", true}});

    if (!smoke::enabled()) {
        runModel("BERT-large", {{"FP32 (source)", nullptr, false},
                                {"Ours 4-bit PTQ", "olive4", false}});

        runModel("BART-base", {{"FP32 (source)", nullptr, false},
                               {"Ours 4-bit PTQ", "olive4", false},
                               {"OS 4-bit QAT", "os4", true},
                               {"OS 6-bit PTQ", "os6", false}});
    }

    std::printf("Paper shape: Ours 4-bit within ~1-2 points of FP32 and "
                "above the OS 6-bit PTQ and ANT 4-bit PTQ rows.\n");
    return 0;
}
