/**
 * @file
 * Helpers shared by the self-timed bench drivers, so the timing policy
 * (best-of-reps) and workload generators cannot drift between the
 * drivers whose JSON outputs are meant to be comparable.
 */

#ifndef OLIVE_BENCH_COMMON_HPP
#define OLIVE_BENCH_COMMON_HPP

#include <algorithm>
#include <chrono>
#include <functional>
#include <initializer_list>

#include "tensor/tensor.hpp"
#include "util/random.hpp"

namespace olive {
namespace benchutil {

/** Best-of-reps wall seconds of @p fn. */
inline double
secondsOf(int reps, const std::function<void()> &fn)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        best = std::min(best, dt.count());
    }
    return best;
}

/** Seeded standard-Gaussian tensor. */
inline Tensor
gaussianTensor(std::initializer_list<size_t> shape, u64 seed)
{
    Tensor t(shape);
    Rng rng(seed);
    for (auto &v : t.data())
        v = static_cast<float>(rng.gaussian());
    return t;
}

} // namespace benchutil
} // namespace olive

#endif // OLIVE_BENCH_COMMON_HPP
