/**
 * @file
 * Tables 3 and 4 reproduction: the value tables of the OVP normal-value
 * data types and the fixed-point E2M1 abfloat enumeration, plus the
 * adaptive-bias ranges of Sec. 3.3.
 */

#include <cstdio>

#include "quant/abfloat.hpp"
#include "quant/dtype.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

std::string
joinValues(const std::vector<int> &vals, size_t limit = 20)
{
    std::string s;
    if (vals.size() > limit) {
        // Compress long ranges (int8).
        s = std::to_string(vals.front()) + " .. " +
            std::to_string(vals.back());
        return s;
    }
    for (size_t i = 0; i < vals.size(); ++i) {
        s += std::to_string(vals[i]);
        if (i + 1 < vals.size())
            s += ", ";
    }
    return s;
}

} // namespace

int
main()
{
    smoke::banner();
    std::printf("== Table 3: data types for normal values ==\n\n");
    Table t3({"Data Type", "Values", "Outlier Identifier"});
    t3.addRow({"int4", joinValues(valueTable(NormalType::Int4)),
               "1000 (-8)"});
    t3.addRow({"flint4", joinValues(valueTable(NormalType::Flint4)),
               "1000 (-0)"});
    t3.addRow({"int8", joinValues(valueTable(NormalType::Int8)),
               "10000000 (-128)"});
    t3.print();

    std::printf("\n== Table 4: 3-bit unsigned E2M1 (bias = 0) ==\n\n");
    const AbFloat e2m1 = AbFloat::e2m1(0);
    Table t4({"Binary", "Exponent", "Integer", "Real Value"});
    for (u32 code = 0; code < 8; ++code) {
        const ExpInt e = e2m1.decodeExpInt(code);
        char bin[4] = {static_cast<char>('0' + ((code >> 2) & 1)),
                       static_cast<char>('0' + ((code >> 1) & 1)),
                       static_cast<char>('0' + (code & 1)), '\0'};
        t4.addRow({bin, std::to_string(e.exponent),
                   std::to_string(e.integer),
                   std::to_string(e.value())});
    }
    t4.print();

    std::printf("\n== Sec. 3.3: adaptive-bias outlier ranges ==\n\n");
    Table tb({"Pairing", "Outlier type", "Range"});
    for (const auto &[normal, bias] :
         std::vector<std::pair<NormalType, int>>{
             {NormalType::Int4, 2},
             {NormalType::Flint4, 3},
             {NormalType::Int8, 4}}) {
        const AbFloat f = (normal == NormalType::Int8)
                              ? AbFloat::e4m3(bias)
                              : AbFloat::e2m1(bias);
        tb.addRow({toString(normal) + " normals", f.name(),
                   Table::num(f.minNonzero(), 0) + " .. " +
                       Table::num(f.maxValue(), 0)});
    }
    tb.print();
    return 0;
}
