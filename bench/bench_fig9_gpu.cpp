/**
 * @file
 * Figure 9 reproduction: GPU speedup (9a) and normalized energy (9b)
 * of OliVe, ANT, INT8, and GOBO on the five evaluation models, plus
 * the Table 5 platform configuration.
 *
 * Speedups are against the FP16 tensor-core baseline; energies are
 * normalized per model to GOBO (the paper's normalization).  Paper
 * geomeans: speedup 4.5x / 2.7x / 2.4x over GOBO / int8 / ANT; energy
 * 0.25 (OliVe), 0.43 (ANT), 0.49 (INT8), 1.0 (GOBO).
 */

#include <cstdio>

#include "sim/runner.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Table 5: the Turing GPU platform ==\n\n");
    Table t5({"Architecture", "SM", "TC", "16-bit Unit", "8-bit Unit",
              "4-bit Unit"});
    t5.addRow({"Turing", "68", "544", "34,816", "69,632", "139,264"});
    t5.print();

    const auto fig9 = sim::runFigure9();

    std::printf("\n== Fig. 9a: speedup on GPU (vs FP16 baseline) ==\n\n");
    std::vector<std::string> header = {"Design"};
    for (const auto &m : fig9.modelNames)
        header.push_back(m);
    header.push_back("Geomean");
    Table ta(header);
    for (const auto &series : fig9.designs) {
        std::vector<std::string> row = {series.design};
        for (double s : series.speedup)
            row.push_back(Table::num(s, 2));
        row.push_back(Table::num(series.speedupGeomean, 2));
        ta.addRow(std::move(row));
    }
    ta.print();

    const auto &olive = fig9.designs[0];
    std::printf("\nOliVe speedup over GOBO %.1fx, INT8 %.1fx, ANT %.1fx "
                "(paper: 4.5x, 2.7x, 2.4x)\n",
                olive.speedupGeomean / fig9.designs[3].speedupGeomean,
                olive.speedupGeomean / fig9.designs[2].speedupGeomean,
                olive.speedupGeomean / fig9.designs[1].speedupGeomean);

    std::printf("\n== Fig. 9b: normalized energy on GPU (GOBO = 1.0) "
                "==\n\n");
    Table tb({"Design", "Const", "Static", "DRAM+L2", "L1+Reg", "Core",
              "Total (geomean, norm.)"});
    for (size_t i = 0; i < fig9.designs.size(); ++i) {
        const auto &series = fig9.designs[i];
        // Breakdown shares from the per-model totals.
        double c = 0, st = 0, dl = 0, l1 = 0, co = 0, tot = 0;
        for (const auto &e : series.gpuEnergy) {
            c += e.constant;
            st += e.staticE;
            dl += e.dramL2;
            l1 += e.l1Reg;
            co += e.core;
            tot += e.total();
        }
        tb.addRow({series.design, Table::pct(100.0 * c / tot, 1),
                   Table::pct(100.0 * st / tot, 1),
                   Table::pct(100.0 * dl / tot, 1),
                   Table::pct(100.0 * l1 / tot, 1),
                   Table::pct(100.0 * co / tot, 1),
                   Table::num(series.energyGeomean, 2)});
    }
    tb.print();
    std::printf("\nPaper energy geomeans: OliVe 0.25, ANT 0.43, INT8 "
                "0.49, GOBO 1.00.\n");
    return 0;
}
