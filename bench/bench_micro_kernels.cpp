/**
 * @file
 * Before/after microbenchmarks of the software hot paths this repo
 * optimizes: normal-codec encode, OVP stream encode/decode, the fused
 * fakeQuant round trip, quantizer calibration, and the tiled GEMM
 * kernels.  Every kernel runs its retained *Reference() oracle and its
 * fast path back to back, asserts the outputs are bit-identical, and
 * reports both throughputs plus the speedup.  Results are also written
 * as machine-readable JSON (BENCH_micro.json) so the repository's
 * performance trajectory is recorded across PRs.
 *
 * Measurements pin the pool to one thread: these are per-core kernel
 * numbers (bench_parallel_scaling covers scaling).  Under OLIVE_SMOKE
 * the workloads shrink and the run doubles as the `perf`-labelled CTest
 * leg: the bit-exactness asserts make kernel regressions fail CI
 * instead of just slowing it down.
 *
 *   ./build/bench_micro_kernels --reps 5 --out BENCH_micro.json
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "quant/quantizer.hpp"
#include "tensor/gemm.hpp"
#include "util/args.hpp"
#include "util/benchjson.hpp"
#include "util/bitops.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/smoke.hpp"
#include "util/table.hpp"

using namespace olive;

namespace {

using benchutil::gaussianTensor;
using benchutil::secondsOf;

std::vector<float>
benchData(size_t n)
{
    Rng rng(5);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 60.0));
    return xs;
}

struct KernelRow
{
    std::string name;
    double work;  //!< Work units per run (for the rate columns).
    std::string unit;
    double refSec = 0.0;
    double fastSec = 0.0;
    bool identical = false;
};

/** Pre-LUT OVP stream encode: serial pack loop over reference pairs. */
std::vector<u8>
encodeStreamReference(const OvpCodec &codec, std::span<const float> xs)
{
    const size_t pairs = (xs.size() + 1) / 2;
    const bool nibble_packed = codec.bytesPerPair() == 1;
    std::vector<u8> out(pairs * codec.bytesPerPair());
    for (size_t p = 0; p < pairs; ++p) {
        const float v1 = xs[2 * p];
        const float v2 = (2 * p + 1 < xs.size()) ? xs[2 * p + 1] : 0.0f;
        u32 c1, c2;
        codec.encodePairReference(v1, v2, c1, c2);
        if (nibble_packed) {
            out[p] = bits::packNibbles(static_cast<u8>(c2),
                                       static_cast<u8>(c1));
        } else {
            out[2 * p] = static_cast<u8>(c1);
            out[2 * p + 1] = static_cast<u8>(c2);
        }
    }
    return out;
}

/** Pre-LUT OVP stream decode: serial unpack over reference pairs. */
std::vector<float>
decodeStreamReference(const OvpCodec &codec, std::span<const u8> bytes,
                      size_t count)
{
    const size_t pairs = (count + 1) / 2;
    const bool nibble_packed = codec.bytesPerPair() == 1;
    std::vector<float> out(count);
    for (size_t p = 0; p < pairs; ++p) {
        u32 c1, c2;
        if (nibble_packed) {
            c1 = bits::lowNibble(bytes[p]);
            c2 = bits::highNibble(bytes[p]);
        } else {
            c1 = bytes[2 * p];
            c2 = bytes[2 * p + 1];
        }
        float v1, v2;
        codec.decodePairReference(c1, c2, v1, v2);
        out[2 * p] = v1;
        if (2 * p + 1 < count)
            out[2 * p + 1] = v2;
    }
    return out;
}

bool
sameTensor(const Tensor &a, const Tensor &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.raw(), b.raw(), a.size() * sizeof(float)) == 0;
}

/** Bitwise (not FP ==) vector comparison. */
bool
sameFloats(const std::vector<float> &a, const std::vector<float> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

bool
sameDecision(const QuantDecision &a, const QuantDecision &b)
{
    return a.normal == b.normal && a.scale == b.scale &&
           a.threshold == b.threshold && a.mse == b.mse;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv, {{"reps", "5"}, {"out", "BENCH_micro.json"}});
    smoke::banner();
    const int reps = static_cast<int>(args.getInt("reps"));

    // Per-core kernel numbers: pin the pool to one thread.
    par::setThreadCount(1);

    // --- workloads -----------------------------------------------------
    const size_t codec_n = smoke::count(1u << 16, 1u << 12);
    const auto xs = benchData(codec_n);
    const OvpCodec codec(NormalType::Int4, 0.4f, 2.8);
    const NormalCodec normal(NormalType::Flint4);

    const size_t calib_n = smoke::count(1u << 14, 1u << 12);
    const auto calib_xs = benchData(calib_n);
    const OliveQuantizer quantizer;

    const size_t dim = smoke::count(256, 48);
    const Tensor ta = gaussianTensor({dim, dim}, 1);
    const Tensor tb = gaussianTensor({dim, dim}, 2);

    std::vector<KernelRow> rows;
    const double elems = static_cast<double>(codec_n) / 1e6;

    // --- normal-codec encode (search vs boundary table) ----------------
    {
        KernelRow r{"normal encode", elems, "Melem/s"};
        std::vector<u32> ref_codes(codec_n), fast_codes(codec_n);
        r.refSec = secondsOf(reps, [&] {
            for (size_t i = 0; i < codec_n; ++i)
                ref_codes[i] = normal.encodeReference(xs[i], 0.4f);
        });
        r.fastSec = secondsOf(reps, [&] {
            for (size_t i = 0; i < codec_n; ++i)
                fast_codes[i] = normal.encode(xs[i], 0.4f);
        });
        r.identical = ref_codes == fast_codes;
        rows.push_back(r);
    }

    // --- OVP stream encode / decode ------------------------------------
    std::vector<u8> ref_bytes, fast_bytes;
    {
        KernelRow r{"ovp encode", elems, "Melem/s"};
        r.refSec = secondsOf(
            reps, [&] { ref_bytes = encodeStreamReference(codec, xs); });
        r.fastSec = secondsOf(reps, [&] { fast_bytes = codec.encode(xs); });
        r.identical = ref_bytes == fast_bytes;
        rows.push_back(r);
    }
    {
        KernelRow r{"ovp decode", elems, "Melem/s"};
        std::vector<float> ref_vals, fast_vals;
        r.refSec = secondsOf(reps, [&] {
            ref_vals = decodeStreamReference(codec, ref_bytes, codec_n);
        });
        r.fastSec = secondsOf(
            reps, [&] { fast_vals = codec.decode(fast_bytes, codec_n); });
        r.identical = sameFloats(ref_vals, fast_vals);
        rows.push_back(r);
    }

    // --- fused fakeQuant round trip ------------------------------------
    {
        KernelRow r{"fakeQuant", elems, "Melem/s"};
        std::vector<float> ref_vals, fast_vals;
        OvpStats ref_st, fast_st;
        r.refSec = secondsOf(
            reps, [&] { ref_vals = codec.fakeQuantReference(xs, &ref_st); });
        r.fastSec = secondsOf(
            reps, [&] { fast_vals = codec.fakeQuant(xs, &fast_st); });
        r.identical = sameFloats(ref_vals, fast_vals) &&
                      ref_st.pairs == fast_st.pairs &&
                      ref_st.outlierPairs == fast_st.outlierPairs &&
                      ref_st.prunedOutliers == fast_st.prunedOutliers;
        rows.push_back(r);
    }

    // --- quantizer calibration -----------------------------------------
    {
        KernelRow r{"calibrate", 1.0, "calib/s"};
        QuantDecision ref_d, fast_d;
        r.refSec = secondsOf(
            reps, [&] { ref_d = quantizer.calibrateReference(calib_xs); });
        r.fastSec =
            secondsOf(reps, [&] { fast_d = quantizer.calibrate(calib_xs); });
        r.identical = sameDecision(ref_d, fast_d);
        rows.push_back(r);
    }

    // --- GEMM ----------------------------------------------------------
    const double gflop = 2.0 * static_cast<double>(dim) *
                         static_cast<double>(dim) *
                         static_cast<double>(dim) / 1e9;
    {
        KernelRow r{"gemm matmul", gflop, "GFLOP/s"};
        Tensor ref_c, fast_c;
        r.refSec = secondsOf(reps, [&] { ref_c = matmulReference(ta, tb); });
        r.fastSec = secondsOf(reps, [&] { fast_c = matmul(ta, tb); });
        r.identical = sameTensor(ref_c, fast_c);
        rows.push_back(r);
    }
    {
        KernelRow r{"gemm matmulTransB", gflop, "GFLOP/s"};
        Tensor ref_c, fast_c;
        r.refSec =
            secondsOf(reps, [&] { ref_c = matmulTransBReference(ta, tb); });
        r.fastSec = secondsOf(reps, [&] { fast_c = matmulTransB(ta, tb); });
        r.identical = sameTensor(ref_c, fast_c);
        rows.push_back(r);
    }

    // --- axpy ----------------------------------------------------------
    {
        const double mb = static_cast<double>(dim) *
                          static_cast<double>(dim) / 1e6;
        KernelRow r{"axpy", mb, "Melem/s"};
        Tensor ref_c = ta.clone();
        Tensor fast_c = ta.clone();
        const float alpha = 0.37f;
        float *rc = ref_c.raw();
        const float *ra = tb.raw();
        r.refSec = secondsOf(reps, [&] {
            for (size_t i = 0; i < ref_c.size(); ++i)
                rc[i] += alpha * ra[i];
        });
        r.fastSec = secondsOf(reps, [&] { axpy(fast_c, tb, alpha); });
        // Accumulated the same number of reps? No: best-of timing runs
        // the body `reps` times on both sides, so the tensors have seen
        // the same sequence of in-place updates and must still agree.
        r.identical = sameTensor(ref_c, fast_c);
        rows.push_back(r);
    }

    par::setThreadCount(0);

    // --- report --------------------------------------------------------
    std::printf("== Micro kernels: reference vs fast path (1 thread) ==\n\n");
    Table t({"Kernel", "Reference", "Fast", "Speedup", "Bit-identical"});
    BenchReport report("bench_micro_kernels");
    report.note("mode", smoke::enabled() ? "smoke" : "full");
    report.note("threads", "1");
    report.note("codec_n", std::to_string(codec_n));
    report.note("calibrate_n", std::to_string(calib_n));
    report.note("gemm_dim", std::to_string(dim));
    for (const KernelRow &r : rows) {
        const double rate_ref = r.work / r.refSec;
        const double rate_fast = r.work / r.fastSec;
        const double speedup = r.refSec / r.fastSec;
        t.addRow({r.name,
                  Table::num(rate_ref, 2) + " " + r.unit,
                  Table::num(rate_fast, 2) + " " + r.unit,
                  Table::num(speedup, 2) + "x",
                  r.identical ? "yes" : "NO"});
        report.add(r.name)
            .label("unit", r.unit)
            .metric("ref_sec", r.refSec)
            .metric("fast_sec", r.fastSec)
            .metric("ref_rate", rate_ref)
            .metric("fast_rate", rate_fast)
            .metric("speedup", speedup)
            .metric("identical", r.identical ? 1.0 : 0.0);
        OLIVE_ASSERT(r.identical,
                     "fast path diverged from reference oracle");
    }
    t.print();
    report.writeFile(args.get("out"));
    std::printf("\nJSON written to %s (smoke numbers are not "
                "paper-comparable).\n", args.get("out").c_str());
    return 0;
}
