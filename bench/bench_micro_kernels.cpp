/**
 * @file
 * google-benchmark microbenchmarks of the codec and MAC hot paths:
 * OVP encode/decode throughput, the bit-exact hardware decoder, the
 * ExpInt dot product, and quantizer calibration.
 */

#include <benchmark/benchmark.h>

#include "hw/decoder.hpp"
#include "hw/mac.hpp"
#include "quant/quantizer.hpp"
#include "tensor/distribution.hpp"
#include "util/random.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

std::vector<float>
benchData(size_t n)
{
    Rng rng(5);
    std::vector<float> xs(n);
    for (auto &v : xs)
        v = static_cast<float>(rng.heavyTail(0.01, 3.5, 60.0));
    return xs;
}

void
BM_OvpEncode(benchmark::State &state)
{
    const auto xs = benchData(static_cast<size_t>(state.range(0)));
    const OvpCodec codec(NormalType::Int4, 0.4f, 2.8);
    for (auto _ : state) {
        auto bytes = codec.encode(xs);
        benchmark::DoNotOptimize(bytes);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OvpEncode)->Arg(1 << 12)->Arg(1 << 16);

void
BM_OvpDecode(benchmark::State &state)
{
    const auto xs = benchData(static_cast<size_t>(state.range(0)));
    const OvpCodec codec(NormalType::Int4, 0.4f, 2.8);
    const auto bytes = codec.encode(xs);
    for (auto _ : state) {
        auto vals = codec.decode(bytes, xs.size());
        benchmark::DoNotOptimize(vals);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OvpDecode)->Arg(1 << 12)->Arg(1 << 16);

void
BM_HwDecoderByte(benchmark::State &state)
{
    const hw::OvpDecoder dec(NormalType::Int4);
    u8 byte = 0;
    for (auto _ : state) {
        const auto d = dec.decodeByte(byte++);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_HwDecoderByte);

void
BM_ExpIntDotProduct(benchmark::State &state)
{
    Rng rng(9);
    const size_t n = 16;
    std::vector<ExpInt> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = ExpInt{static_cast<u8>(rng.uniformInt(5)),
                      static_cast<i32>(rng.uniformInt(15)) - 7};
        b[i] = ExpInt{static_cast<u8>(rng.uniformInt(5)),
                      static_cast<i32>(rng.uniformInt(15)) - 7};
    }
    for (auto _ : state) {
        const i32 d = hw::dotProduct(a, b);
        benchmark::DoNotOptimize(d);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExpIntDotProduct);

void
BM_QuantizerCalibrate(benchmark::State &state)
{
    const auto xs = benchData(static_cast<size_t>(state.range(0)));
    const OliveQuantizer q;
    for (auto _ : state) {
        const QuantDecision d = q.calibrate(xs);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_QuantizerCalibrate)->Arg(1 << 14)->Arg(1 << 18);

void
BM_FakeQuantRoundTrip(benchmark::State &state)
{
    const auto xs = benchData(static_cast<size_t>(state.range(0)));
    const OvpCodec codec(NormalType::Flint4, 0.4f, 6.4);
    for (auto _ : state) {
        auto rt = codec.fakeQuant(xs);
        benchmark::DoNotOptimize(rt);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FakeQuantRoundTrip)->Arg(1 << 16);

} // namespace

// Hand-rolled BENCHMARK_MAIN so smoke mode can cap the measurement time:
// under OLIVE_SMOKE each benchmark runs for ~10 ms instead of the default
// adaptive second-scale budget.
int
main(int argc, char **argv)
{
    smoke::banner();
    std::vector<char *> args(argv, argv + argc);
    char min_time[] = "--benchmark_min_time=0.01";
    if (smoke::enabled())
        args.push_back(min_time);
    int n = static_cast<int>(args.size());
    benchmark::Initialize(&n, args.data());
    if (benchmark::ReportUnrecognizedArguments(n, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
