/**
 * @file
 * Figure 2 reproduction: outlier comparison of a CNN model and a
 * Transformer model.
 *
 * Prints, for a zoo of tensors sorted by Max-sigma: the normalized
 * maximum value (Max sigma), and the percentage of values beyond 3 and
 * 6 sigma — the two curves of Fig. 2a (ResNet-18-like) and Fig. 2b
 * (BERT-base-like).  The headline observation to verify: the
 * transformer's Max sigma is an order of magnitude above the CNN's
 * (paper: 28 sigma vs 325 sigma), while outlier ratios stay below
 * ~0.5 %.
 */

#include <cstdio>

#include "models/config.hpp"
#include "models/synthetic.hpp"
#include "tensor/distribution.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

void
profileZoo(const char *title, const std::vector<Tensor> &zoo)
{
    std::printf("\n-- %s (%zu tensors, sorted by Max sigma) --\n", title,
                zoo.size());
    Table t({"Tensor ID", "Max sigma", ">3sigma %", ">6sigma %"});
    double max_sigma = 0.0;
    for (size_t i = 0; i < zoo.size(); ++i) {
        const auto p = profileTensor(zoo[i]);
        max_sigma = std::max(max_sigma, p.maxSigma);
        // Print every 4th tensor plus the extremes to keep the series
        // readable.
        if (i % 4 == 0 || i + 1 == zoo.size()) {
            t.addRow({std::to_string(i + 1), Table::num(p.maxSigma, 1),
                      Table::num(p.gt3SigmaPct, 3),
                      Table::num(p.gt6SigmaPct, 3)});
        }
    }
    t.print();
    std::printf("max over zoo: %.1f sigma\n", max_sigma);
}

} // namespace

int
main()
{
    smoke::banner();
    std::printf("== Fig. 2: outlier comparison, CNN vs Transformer ==\n");

    // Fig. 2a: ResNet-18-like tensors (48 conv/fc tensors).
    Rng cnn_rng(42);
    std::vector<Tensor> cnn_zoo;
    for (int i = 0; i < 48; ++i)
        cnn_zoo.push_back(cnnLikeTensor({32768}, cnn_rng));
    std::sort(cnn_zoo.begin(), cnn_zoo.end(),
              [](const Tensor &a, const Tensor &b) {
                  return profileTensor(a).maxSigma <
                         profileTensor(b).maxSigma;
              });
    profileZoo("ResNet-18 on ImageNet (CNN-like)", cnn_zoo);

    // Fig. 2b: BERT-base tensors on MNLI (145 tensors up to 325 sigma).
    const auto bert = models::bertBase();
    const auto bert_zoo = models::makeTensorZoo(bert, 145, 131072, 7);
    profileZoo("BERT-base on MNLI (Transformer-like)", bert_zoo);

    std::printf("\nPaper reference: CNN max ~28 sigma; Transformer max "
                "~325 sigma; >3sigma ratios < 0.5%%.\n");
    return 0;
}
