/**
 * @file
 * Table 8 reproduction: PTQ on the SQuAD-proxy span-extraction task —
 * OliVe 4-bit against Outlier Suppression 6-bit on BERT-base and
 * BART-base, reported as F1 / exact-match like the paper.
 */

#include <cstdio>

#include "eval/accuracy.hpp"
#include "eval/schemes.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

std::string
fmt(const eval::SpanEvaluator::Result &r)
{
    return Table::num(r.f1, 2) + "/" + Table::num(r.em, 2);
}

} // namespace

int
main()
{
    smoke::banner();
    std::printf("== Table 8: SQuAD-proxy PTQ results (F1/EM) ==\n\n");

    Table t({"Method", "Bits", "SQuAD v1.1", "SQuAD v2.0"});
    std::vector<const char *> models_list = {"BERT-base", "BART-base"};
    if (smoke::enabled())
        models_list.resize(1);
    const size_t n = smoke::count(128, 8);
    for (const char *model : models_list) {
        const auto config = models::byName(model);
        eval::SpanEvaluator v1(config, /*v2=*/false, 1, n, n);
        eval::SpanEvaluator v2(config, /*v2=*/true, 1, n, n);

        t.addRow({std::string(model) + " (FP32)", "32", fmt(v1.evalFp32()),
                  fmt(v2.evalFp32())});
        const SchemePtr ours = eval::makeScheme("olive4");
        t.addRow({"Ours", "4", fmt(v1.evalScheme(*ours)),
                  fmt(v2.evalScheme(*ours))});
        const SchemePtr os6 = eval::makeScheme("os6");
        t.addRow({"Outlier Suppression", "6", fmt(v1.evalScheme(*os6)),
                  fmt(v2.evalScheme(*os6))});
        std::printf(".");
        std::fflush(stdout);
    }
    std::printf("\n");
    t.print();
    std::printf("\nPaper shape: Ours 4-bit within a few points of FP32 "
                "and above OS 6-bit.\n");
    return 0;
}
