/**
 * @file
 * Table 9 reproduction: PTQ proxy perplexity on the large language
 * models (GPT2-XL, BLOOM-7B1, OPT-6.7B) for FP32, int8, 8-bit OliVe,
 * int4, 4-bit ANT, and 4-bit OliVe on the WikiText-proxy and C4-proxy
 * streams.
 *
 * Each (model, dataset) pair calibrates the teacher's temperature to
 * the paper's FP32 perplexity and scores every scheme on the same text;
 * cells are medians over three backbone seeds to tame the proxy's
 * small-model variance.  The proxy's perplexity ceiling is the
 * vocabulary size (1024), so the paper's 1E+4-scale int4 blowups appear
 * here as values near that ceiling.
 */

#include <algorithm>
#include <cstdio>

#include "eval/perplexity.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

namespace {

constexpr const char *kSchemes[] = {"fp32", "int8", "olive8",
                                    "int4", "ant4", "olive4"};
constexpr const char *kLabels[] = {"FP32", "int8", "8-bit OliVe",
                                   "int4", "4-bit ANT", "4-bit OliVe"};

/** All six scheme cells for one (model, dataset): median over seeds. */
std::vector<double>
columnCells(const models::ModelConfig &config, double target, u64 text_seed)
{
    std::vector<u64> seeds = {3, 5, 9};
    if (smoke::enabled())
        seeds.resize(1);
    const size_t text_n = smoke::count(16, 4);

    std::vector<std::vector<double>> per_scheme(6);
    for (u64 seed : seeds) {
        eval::LmModel lm = eval::makeLm(config, seed);
        const auto text = eval::calibrateToTarget(lm, target, text_n, 12,
                                                  text_seed + seed * 31);
        for (size_t s = 0; s < 6; ++s)
            per_scheme[s].push_back(eval::table9Cell(lm, text, kSchemes[s]));
        std::printf(".");
        std::fflush(stdout);
    }
    std::vector<double> medians(6);
    for (size_t s = 0; s < 6; ++s) {
        std::sort(per_scheme[s].begin(), per_scheme[s].end());
        medians[s] = per_scheme[s][per_scheme[s].size() / 2];
    }
    return medians;
}

} // namespace

int
main()
{
    smoke::banner();
    std::printf("== Table 9: PTQ proxy perplexity on LLMs (lower is "
                "better; ceiling = vocab 1024) ==\n\n");

    // Paper FP32 rows (Wiki, C4) per model.
    struct Col
    {
        const char *model;
        const char *ds;
        double target;
        u64 seed;
    };
    std::vector<Col> cols = {
        {"GPT2-XL", "Wiki", 17.48, 1001}, {"GPT2-XL", "C4", 16.30, 2002},
        {"BLOOM-7B1", "Wiki", 13.05, 1001}, {"BLOOM-7B1", "C4", 14.94, 2002},
        {"OPT-6.7B", "Wiki", 22.14, 1001}, {"OPT-6.7B", "C4", 10.63, 2002},
    };
    if (smoke::enabled())
        cols.resize(1);

    std::vector<std::vector<double>> grid; // [col][scheme]
    std::vector<std::string> header = {"Method"};
    for (const auto &c : cols) {
        header.push_back(std::string(c.model) + " " + c.ds);
        grid.push_back(
            columnCells(models::byName(c.model), c.target, c.seed));
    }
    std::printf("\n\n");

    Table t(std::move(header));
    for (size_t s = 0; s < 6; ++s) {
        std::vector<std::string> row = {kLabels[s]};
        for (const auto &col : grid) {
            row.push_back(col[s] > 500.0 ? Table::sci(col[s])
                                         : Table::num(col[s], 2));
        }
        t.addRow(std::move(row));
    }
    t.print();

    std::printf("\nPaper shape: 8-bit OliVe ~ FP32; int8 degrades and "
                "breaks on OPT-6.7B; int4 collapses by orders of "
                "magnitude; 4-bit OliVe degrades moderately and beats "
                "4-bit ANT.\n");
    return 0;
}
