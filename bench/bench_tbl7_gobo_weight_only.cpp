/**
 * @file
 * Table 7 reproduction: weight-only 4-bit quantization — OliVe against
 * GOBO on the MNLI and STS-B proxies (BERT-base backbone).
 */

#include <cstdio>

#include "eval/accuracy.hpp"
#include "eval/schemes.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    std::printf("== Table 7: weight-only comparison with GOBO "
                "(BERT-base) ==\n\n");

    const auto config = models::bertBase();
    Table t({"Method", "Bits", "MNLI (Acc.)", "STSB (Pear.)"});

    const size_t n = smoke::count(144, 32);
    eval::TaskEvaluator mnli(config, eval::taskByName("MNLI"), 1, n, n);
    eval::TaskEvaluator stsb(config, eval::taskByName("STSB"), 1, n, n);

    t.addRow({"BERT-base (FP32)", "32", Table::num(mnli.evalFp32(), 2),
              Table::num(stsb.evalFp32(), 2)});

    const SchemePtr ours = eval::makeScheme("olive4-weights");
    t.addRow({"Ours (weights only)", "4",
              Table::num(mnli.evalScheme(*ours), 2),
              Table::num(stsb.evalScheme(*ours), 2)});

    const SchemePtr gobo = eval::makeScheme("gobo");
    t.addRow({"GOBO (weights only)", "4",
              Table::num(mnli.evalScheme(*gobo), 2),
              Table::num(stsb.evalScheme(*gobo), 2)});

    t.print();
    std::printf("\nPaper shape: both near FP32; Ours slightly above "
                "GOBO.\n");
    return 0;
}
