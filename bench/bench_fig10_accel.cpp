/**
 * @file
 * Figure 10 reproduction: speedup (10a) and normalized energy (10b) of
 * the iso-area systolic accelerators — OliVe, ANT, OLAccel,
 * AdaptivFloat — on the five evaluation models.
 *
 * Everything is normalized to the AdaptivFloat design.  Paper geomeans:
 * speedup 4.8x over AdaFloat (3.8x over OLAccel, 3.7x over ANT);
 * energy 0.27 (OliVe), 0.88 (ANT), 0.56 (OLAccel), 1.0 (AdaFloat).
 */

#include <cstdio>

#include "sim/runner.hpp"
#include "util/table.hpp"
#include "util/smoke.hpp"

using namespace olive;

int
main()
{
    smoke::banner();
    const auto fig10 = sim::runFigure10();

    std::printf("== Fig. 10a: speedup on the accelerator (vs AdaFloat) "
                "==\n\n");
    std::vector<std::string> header = {"Design"};
    for (const auto &m : fig10.modelNames)
        header.push_back(m);
    header.push_back("Geomean");
    Table ta(header);
    for (const auto &series : fig10.designs) {
        std::vector<std::string> row = {series.design};
        for (double s : series.speedup)
            row.push_back(Table::num(s, 2));
        row.push_back(Table::num(series.speedupGeomean, 2));
        ta.addRow(std::move(row));
    }
    ta.print();

    const auto &olive = fig10.designs[0];
    std::printf("\nOliVe speedup over AdaFloat %.1fx, OLAccel %.1fx, ANT "
                "%.1fx (paper: 4.8x, 3.8x, 3.7x)\n",
                olive.speedupGeomean / fig10.designs[3].speedupGeomean,
                olive.speedupGeomean / fig10.designs[2].speedupGeomean,
                olive.speedupGeomean / fig10.designs[1].speedupGeomean);

    std::printf("\n== Fig. 10b: normalized energy (AdaFloat = 1.0) "
                "==\n\n");
    Table tb({"Design", "Static", "DRAM", "Buffer", "Core",
              "Total (geomean, norm.)"});
    for (const auto &series : fig10.designs) {
        double st = 0, dr = 0, bu = 0, co = 0, tot = 0;
        for (const auto &e : series.accelEnergy) {
            st += e.staticE;
            dr += e.dram;
            bu += e.buffer;
            co += e.core;
            tot += e.total();
        }
        tb.addRow({series.design, Table::pct(100.0 * st / tot, 1),
                   Table::pct(100.0 * dr / tot, 1),
                   Table::pct(100.0 * bu / tot, 1),
                   Table::pct(100.0 * co / tot, 1),
                   Table::num(series.energyGeomean, 2)});
    }
    tb.print();
    std::printf("\nPaper energy geomeans: OliVe 0.27, ANT 0.88, OLAccel "
                "0.56, AdaFloat 1.00.\n");
    return 0;
}
