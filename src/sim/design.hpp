/**
 * @file
 * Design descriptors for the performance/energy simulators.
 *
 * A design bundles the first-order mechanisms that differentiate the
 * accelerators the paper compares:
 *   - the precision MACs execute at (and, for mixed-precision designs,
 *     the fraction of GEMMs escalated to 8-bit);
 *   - the effective storage bits per weight/activation element at each
 *     memory level (GOBO compresses only DRAM; coordinate-list schemes
 *     pay index overhead bits);
 *   - decoder / outlier-controller overheads (area, cycle, energy);
 *   - memory-access alignment efficiency (sparsity-encoded outliers
 *     produce unaligned accesses that waste DRAM burst bandwidth).
 *
 * The GPU descriptors (Fig. 9) and the systolic-accelerator descriptors
 * (Fig. 10) are separate because the two platforms normalize
 * differently (the GPU designs share one fixed die; the accelerators
 * are built iso-area, which is where OliVe's tiny PE pays off).
 */

#ifndef OLIVE_SIM_DESIGN_HPP
#define OLIVE_SIM_DESIGN_HPP

#include <string>
#include <vector>

#include "util/common.hpp"

namespace olive {
namespace sim {

/** GPU-integrated design (Fig. 9). */
struct GpuDesign
{
    std::string name;

    /** Tensor-core precision MACs run at (4, 8 or 16 bits). */
    double computeBits = 16.0;

    /** Fraction of GEMMs escalated to int8 (ANT mixed precision). */
    double int8Fraction = 0.0;

    /** Storage bits per weight element in DRAM. */
    double weightBitsDram = 16.0;

    /** Storage bits per weight element on chip (L2 and below). */
    double weightBitsOnchip = 16.0;

    /** Storage bits per activation element (all levels). */
    double actBits = 16.0;

    /** Extra compute-cycle fraction for decoders / de-quant epilogues. */
    double decodeOverhead = 0.0;

    /**
     * Sustained fraction of peak tensor-core throughput.  Conventional
     * int paths pay per-tensor quantize/dequantize epilogues and format
     * conversions on the CUDA cores; OliVe's mmaovp path fuses
     * decoding into the operand pipeline (Sec. 4.6) and sustains close
     * to peak.
     */
    double sustainedEfficiency = 1.0;

    /** Effective DRAM bandwidth factor (unaligned access, decompress). */
    double dramEfficiency = 1.0;

    /** True for GOBO: tensor cores run FP16 regardless of storage. */
    bool fp16Compute = false;
};

/** Systolic-accelerator design (Fig. 10), built iso-area. */
struct AccelDesign
{
    std::string name;

    /** Area of one PE slot in um^2 at 22 nm. */
    double peAreaUm2 = 50.01;

    /**
     * Fraction of the PE-array area budget consumed by an outlier
     * coordination controller (OLAccel: the paper cites 71 % overhead,
     * i.e. 0.71/1.71 of the total array area).
     */
    double controllerAreaFrac = 0.0;

    /** Sustained utilization of the PE array. */
    double utilization = 0.90;

    /** Cycles one MAC occupies a PE slot (4-bit int = 1). */
    double cyclesPerMac = 1.0;

    /** Fraction of GEMMs escalated to int8 (4 PE slots per MAC). */
    double int8Fraction = 0.0;

    /** Storage bits per weight / activation element. */
    double weightBits = 4.0;
    double actBits = 4.0;

    /** Extra index bits per element (coordinate lists, bitmaps). */
    double indexBits = 0.0;

    /** Effective DRAM bandwidth factor (unaligned access). */
    double dramEfficiency = 1.0;

    /** Dynamic energy of one MAC at this design's precision (pJ). */
    double macEnergyPj = 0.060;

    /** Static power scale relative to the OliVe array (area-driven). */
    double staticPowerFactor = 1.0;
};

/** The four GPU designs of Fig. 9 plus the FP16 baseline. */
GpuDesign gpuFp16();
GpuDesign gpuOlive();
GpuDesign gpuAnt();
GpuDesign gpuInt8();
GpuDesign gpuGobo();

/** Fig. 9 comparison order: OliVe, ANT, INT8, GOBO. */
std::vector<GpuDesign> figure9Designs();

/** The four accelerator designs of Fig. 10. */
AccelDesign accelOlive();
AccelDesign accelAnt();
AccelDesign accelOlaccel();
AccelDesign accelAdafloat();

/** Fig. 10 comparison order: OliVe, ANT, OLAccel, AdaFloat. */
std::vector<AccelDesign> figure10Designs();

} // namespace sim
} // namespace olive

#endif // OLIVE_SIM_DESIGN_HPP
