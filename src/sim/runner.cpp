#include "runner.hpp"

#include "models/config.hpp"
#include "util/stats.hpp"

namespace olive {
namespace sim {

Fig9Result
runFigure9(const GpuModel &model)
{
    Fig9Result out;
    const auto configs = models::figureModels();
    for (const auto &c : configs)
        out.modelNames.push_back(c.name);

    // Baseline latency: the FP16 GPU.
    std::vector<double> base_cycles;
    std::vector<double> gobo_energy;
    const GpuDesign fp16 = gpuFp16();
    const GpuDesign gobo = gpuGobo();
    for (const auto &c : configs) {
        const auto ops = models::inferenceGemms(c);
        base_cycles.push_back(model.run(ops, fp16).cycles);
        gobo_energy.push_back(model.run(ops, gobo).energy.total());
    }

    for (const auto &design : figure9Designs()) {
        SeriesResult series;
        series.design = design.name;
        std::vector<double> energy_norm;
        for (size_t i = 0; i < configs.size(); ++i) {
            const auto ops = models::inferenceGemms(configs[i]);
            const GpuResult r = model.run(ops, design);
            series.speedup.push_back(base_cycles[i] / r.cycles);
            series.gpuEnergy.push_back(r.energy);
            energy_norm.push_back(r.energy.total() / gobo_energy[i]);
        }
        series.speedupGeomean = stats::geomean(series.speedup);
        series.energyGeomean = stats::geomean(energy_norm);
        out.designs.push_back(std::move(series));
    }
    return out;
}

Fig10Result
runFigure10(const SystolicModel &model)
{
    Fig10Result out;
    const auto configs = models::figureModels();
    for (const auto &c : configs)
        out.modelNames.push_back(c.name);

    // Reference: the AdaptivFloat accelerator.
    std::vector<double> base_cycles;
    std::vector<double> base_energy;
    const AccelDesign ada = accelAdafloat();
    for (const auto &c : configs) {
        const auto ops = models::inferenceGemms(c);
        const AccelResult r = model.run(ops, ada);
        base_cycles.push_back(r.cycles);
        base_energy.push_back(r.energy.total());
    }

    for (const auto &design : figure10Designs()) {
        SeriesResult series;
        series.design = design.name;
        std::vector<double> energy_norm;
        for (size_t i = 0; i < configs.size(); ++i) {
            const auto ops = models::inferenceGemms(configs[i]);
            const AccelResult r = model.run(ops, design);
            series.speedup.push_back(base_cycles[i] / r.cycles);
            series.accelEnergy.push_back(r.energy);
            energy_norm.push_back(r.energy.total() / base_energy[i]);
        }
        series.speedupGeomean = stats::geomean(series.speedup);
        series.energyGeomean = stats::geomean(energy_norm);
        out.designs.push_back(std::move(series));
    }
    return out;
}

} // namespace sim
} // namespace olive
