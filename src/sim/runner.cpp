#include "runner.hpp"

#include "models/config.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace olive {
namespace sim {

namespace {

/**
 * The per-model GEMM workloads, enumerated once: they are identical for
 * every design in a sweep, so the repeated inferenceGemms() calls of the
 * per-design loops are hoisted here (and filled in parallel — workload
 * enumeration is a pure function of the config).
 */
std::vector<std::vector<models::GemmOp>>
workloadsFor(const std::vector<models::ModelConfig> &configs)
{
    std::vector<std::vector<models::GemmOp>> ops(configs.size());
    par::parallelFor(0, configs.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            ops[i] = models::inferenceGemms(configs[i]);
    });
    return ops;
}

} // namespace

Fig9Result
runFigure9(const GpuModel &model)
{
    Fig9Result out;
    const auto configs = models::figureModels();
    for (const auto &c : configs)
        out.modelNames.push_back(c.name);
    const auto ops = workloadsFor(configs);

    // Baseline latency: the FP16 GPU.  Each (design, model) cell is an
    // independent analytical evaluation, so every loop below fills
    // pre-sized slots in parallel; the geomean reductions stay serial
    // over those slots, keeping results thread-count invariant.
    std::vector<double> base_cycles(configs.size());
    std::vector<double> gobo_energy(configs.size());
    const GpuDesign fp16 = gpuFp16();
    const GpuDesign gobo = gpuGobo();
    par::parallelFor(0, configs.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            base_cycles[i] = model.run(ops[i], fp16).cycles;
            gobo_energy[i] = model.run(ops[i], gobo).energy.total();
        }
    });

    const auto designs = figure9Designs();
    out.designs.resize(designs.size());
    std::vector<std::vector<double>> energy_norm(
        designs.size(), std::vector<double>(configs.size()));
    for (size_t d = 0; d < designs.size(); ++d) {
        SeriesResult &series = out.designs[d];
        series.design = designs[d].name;
        series.speedup.resize(configs.size());
        series.gpuEnergy.resize(configs.size());
    }
    par::parallelFor(
        0, designs.size() * configs.size(), 1, [&](size_t b, size_t e) {
            for (size_t idx = b; idx < e; ++idx) {
                const size_t d = idx / configs.size();
                const size_t i = idx % configs.size();
                const GpuResult r = model.run(ops[i], designs[d]);
                out.designs[d].speedup[i] = base_cycles[i] / r.cycles;
                out.designs[d].gpuEnergy[i] = r.energy;
                energy_norm[d][i] = r.energy.total() / gobo_energy[i];
            }
        });
    for (size_t d = 0; d < designs.size(); ++d) {
        out.designs[d].speedupGeomean =
            stats::geomean(out.designs[d].speedup);
        out.designs[d].energyGeomean = stats::geomean(energy_norm[d]);
    }
    return out;
}

Fig10Result
runFigure10(const SystolicModel &model)
{
    Fig10Result out;
    const auto configs = models::figureModels();
    for (const auto &c : configs)
        out.modelNames.push_back(c.name);
    const auto ops = workloadsFor(configs);

    // Reference: the AdaptivFloat accelerator.
    std::vector<double> base_cycles(configs.size());
    std::vector<double> base_energy(configs.size());
    const AccelDesign ada = accelAdafloat();
    par::parallelFor(0, configs.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            const AccelResult r = model.run(ops[i], ada);
            base_cycles[i] = r.cycles;
            base_energy[i] = r.energy.total();
        }
    });

    const auto designs = figure10Designs();
    out.designs.resize(designs.size());
    std::vector<std::vector<double>> energy_norm(
        designs.size(), std::vector<double>(configs.size()));
    for (size_t d = 0; d < designs.size(); ++d) {
        SeriesResult &series = out.designs[d];
        series.design = designs[d].name;
        series.speedup.resize(configs.size());
        series.accelEnergy.resize(configs.size());
    }
    par::parallelFor(
        0, designs.size() * configs.size(), 1, [&](size_t b, size_t e) {
            for (size_t idx = b; idx < e; ++idx) {
                const size_t d = idx / configs.size();
                const size_t i = idx % configs.size();
                const AccelResult r = model.run(ops[i], designs[d]);
                out.designs[d].speedup[i] = base_cycles[i] / r.cycles;
                out.designs[d].accelEnergy[i] = r.energy;
                energy_norm[d][i] = r.energy.total() / base_energy[i];
            }
        });
    for (size_t d = 0; d < designs.size(); ++d) {
        out.designs[d].speedupGeomean =
            stats::geomean(out.designs[d].speedup);
        out.designs[d].energyGeomean = stats::geomean(energy_norm[d]);
    }
    return out;
}

} // namespace sim
} // namespace olive
