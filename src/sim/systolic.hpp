/**
 * @file
 * Systolic-array accelerator performance and energy model (the Fig. 10
 * platform, in the DnnWeaver-derived tradition of BitFusion and ANT).
 *
 * The designs are compared iso-area: every accelerator gets the same
 * core-area budget (OliVe's 4096-PE array of Table 11), and its PE
 * count follows from its per-PE area and any outlier-controller
 * overhead.  This is where OliVe's tiny aligned datapath pays off:
 * OLAccel burns 71 % of the array area on the outlier controller and
 * stalls on unaligned accesses, AdaptivFloat needs a 4x-larger float
 * MAC, and ANT spends 4 PE-slots per MAC on the ~80 % of GEMMs its
 * mixed-precision selection escalates to int8.
 */

#ifndef OLIVE_SIM_SYSTOLIC_HPP
#define OLIVE_SIM_SYSTOLIC_HPP

#include <vector>

#include "design.hpp"
#include "energy.hpp"
#include "models/workload.hpp"

namespace olive {
namespace sim {

/** Fixed accelerator platform parameters. */
struct AccelConfig
{
    /** Iso-area budget: OliVe's 4096 PEs x 50.01 um^2 (Table 11). */
    double coreAreaBudgetUm2 = 4096.0 * 50.01;
    double dramBytesPerCycle = 64.0;   //!< ~51 GB/s at 0.8 GHz.
    double bufferCapacityBytes = 1.0e6; //!< Double-buffered on-chip SRAM.
    double systolicReuse = 64.0;       //!< Operand reuse inside the array.
    AccelEnergyTable energy;
};

/** Result of simulating one workload on one accelerator design. */
struct AccelResult
{
    double cycles = 0.0;
    AccelEnergy energy;
    double peCount = 0.0; //!< PEs instantiated within the area budget.
};

/** The systolic accelerator model. */
class SystolicModel
{
  public:
    explicit SystolicModel(AccelConfig config = {});

    const AccelConfig &config() const { return config_; }

    /** PE count of @p design under the iso-area budget. */
    double peCount(const AccelDesign &design) const;

    /** Simulate a full workload under @p design. */
    AccelResult run(const std::vector<models::GemmOp> &ops,
                    const AccelDesign &design) const;

  private:
    AccelConfig config_;
};

} // namespace sim
} // namespace olive

#endif // OLIVE_SIM_SYSTOLIC_HPP
