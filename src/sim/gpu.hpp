/**
 * @file
 * Turing-class GPU performance and energy model (Fig. 9 platform).
 *
 * The model is analytical per GEMM with the mechanisms that produce the
 * paper's ratios modelled explicitly:
 *   - tensor-core throughput scales with operand precision (Table 5:
 *     the same silicon provides 1x/2x/4x MAC rate at 16/8/4 bits);
 *   - DRAM traffic scales with the per-design storage bits, with an L2
 *     capacity model: when the B panel of a GEMM exceeds the effective
 *     L2, the A operand re-streams once per panel pass (this is why
 *     4-bit OliVe gains super-proportionally on the biggest models);
 *   - GOBO decompresses at the DRAM boundary only, so its on-chip
 *     traffic and compute stay FP16;
 *   - compute/memory overlap is imperfect: latency = max + 0.5 * min.
 */

#ifndef OLIVE_SIM_GPU_HPP
#define OLIVE_SIM_GPU_HPP

#include <vector>

#include "design.hpp"
#include "energy.hpp"
#include "models/workload.hpp"

namespace olive {
namespace sim {

/** Fixed platform parameters (RTX 2080 Ti-class, Table 5). */
struct GpuConfig
{
    double fp16MacsPerCycle = 34816.0 * 0.75; //!< Sustained FP16 MAC rate.
    double dramBytesPerCycle = 320.0;         //!< Sustained, of ~616 GB/s.
    double l2BytesPerCycle = 1600.0;
    double l2CapacityBytes = 3.0e6;           //!< Effective (of 5.5 MB).
    double perGemmOverheadCycles = 1500.0;    //!< Launch/epilogue cost.
    double l1ReuseFactor = 16.0;              //!< Operand reuse before L1.
    GpuEnergyTable energy;
};

/** Result of simulating one workload on one design. */
struct GpuResult
{
    double cycles = 0.0;
    GpuEnergy energy;
};

/** The GPU model. */
class GpuModel
{
  public:
    explicit GpuModel(GpuConfig config = {});

    const GpuConfig &config() const { return config_; }

    /** Simulate a full workload under @p design. */
    GpuResult run(const std::vector<models::GemmOp> &ops,
                  const GpuDesign &design) const;

  private:
    GpuConfig config_;
};

} // namespace sim
} // namespace olive

#endif // OLIVE_SIM_GPU_HPP
