#include "systolic.hpp"

#include <algorithm>
#include <cmath>

namespace olive {
namespace sim {

SystolicModel::SystolicModel(AccelConfig config)
    : config_(config)
{
}

double
SystolicModel::peCount(const AccelDesign &d) const
{
    const double array_budget =
        config_.coreAreaBudgetUm2 * (1.0 - d.controllerAreaFrac);
    return array_budget / d.peAreaUm2;
}

AccelResult
SystolicModel::run(const std::vector<models::GemmOp> &ops,
                   const AccelDesign &d) const
{
    AccelResult res;
    res.peCount = peCount(d);
    const AccelEnergyTable &et = config_.energy;

    // PE-slot-cycles per MAC: int8 composition uses four 4-bit slots.
    const double slot_cycles_per_mac =
        d.cyclesPerMac *
        (d.int8Fraction * 4.0 + (1.0 - d.int8Fraction) * 1.0);
    const double macs_per_cycle =
        res.peCount * d.utilization / slot_cycles_per_mac;

    for (const auto &op : ops) {
        const double macs = static_cast<double>(op.macs());
        const double count = static_cast<double>(op.count);

        // --- Compute ------------------------------------------------
        const double compute = macs / macs_per_cycle;

        // --- DRAM traffic ---------------------------------------------
        const double b_bits =
            (op.bIsWeight ? d.weightBits : d.actBits) + d.indexBits;
        const double a_bits = d.actBits + d.indexBits;

        const double b_bytes_per_rep =
            static_cast<double>(op.bElems()) * b_bits / 8.0;
        const double passes =
            std::max(1.0, b_bytes_per_rep / config_.bufferCapacityBytes);

        const double a_bytes = static_cast<double>(op.aElems()) * count *
                               a_bits / 8.0 * passes;
        const double b_bytes = b_bytes_per_rep * count;
        // Outputs requantize to the design's activation precision on
        // the way out of the accumulators.
        const double c_bytes =
            static_cast<double>(op.cElems()) * count * d.actBits / 8.0;

        const double dram_bytes = a_bytes + b_bytes + c_bytes;
        const double dram_cycles =
            dram_bytes / (config_.dramBytesPerCycle * d.dramEfficiency);

        // Double-buffered: compute and DRAM overlap almost fully.
        const double latency = std::max(compute, dram_cycles) +
                               0.1 * std::min(compute, dram_cycles);
        res.cycles += latency;

        // --- Energy ----------------------------------------------------
        const double core_pj =
            macs * d.macEnergyPj *
            (d.int8Fraction * 4.0 + (1.0 - d.int8Fraction) * 1.0);
        // SRAM buffer: operand fetch amortized by the systolic reuse.
        const double buffer_bytes =
            macs * (a_bits + b_bits) / 8.0 / config_.systolicReuse +
            dram_bytes; // fill traffic
        res.energy.core += core_pj;
        res.energy.dram += dram_bytes * et.dramPjPerByte;
        res.energy.buffer += buffer_bytes * et.bufferPjPerByte;
    }

    res.energy.staticE =
        res.cycles * et.staticPjPerCycle * d.staticPowerFactor;
    return res;
}

} // namespace sim
} // namespace olive
