#include "design.hpp"

namespace olive {
namespace sim {

GpuDesign
gpuFp16()
{
    GpuDesign d;
    d.name = "FP16";
    return d;
}

GpuDesign
gpuOlive()
{
    GpuDesign d;
    d.name = "OliVe";
    d.computeBits = 4.0;
    d.weightBitsDram = 4.0;
    d.weightBitsOnchip = 4.0;
    d.actBits = 4.0;
    // The OVP decoders sit in the tensor-core operand path; their cycle
    // cost is a small pipeline overhead (Tbl. 10: 0.25 % + 0.17 % area).
    d.decodeOverhead = 0.02;
    return d;
}

GpuDesign
gpuAnt()
{
    GpuDesign d;
    d.name = "ANT";
    // ANT PTQ cannot absorb transformer outliers at 4 bits, so its
    // mixed-precision selection escalates ~80 % of GEMMs to int8
    // (Sec. 5.3: "80% of layers ends up using int8 quantization").
    d.computeBits = 4.0;
    d.int8Fraction = 0.80;
    d.weightBitsDram = 0.8 * 8.0 + 0.2 * 4.0;
    d.weightBitsOnchip = d.weightBitsDram;
    d.actBits = d.weightBitsDram;
    d.decodeOverhead = 0.02;
    d.sustainedEfficiency = 0.76;
    return d;
}

GpuDesign
gpuInt8()
{
    GpuDesign d;
    d.name = "INT8";
    d.computeBits = 8.0;
    d.weightBitsDram = 8.0;
    d.weightBitsOnchip = 8.0;
    d.actBits = 8.0;
    d.sustainedEfficiency = 0.75;
    return d;
}

GpuDesign
gpuGobo()
{
    GpuDesign d;
    d.name = "GOBO";
    // Weight-only: 3-bit dictionary codes plus outlier coordinate list,
    // centroids and FP32 outlier payload ~ 4.3 effective bits in DRAM.
    // The decompressor feeds FP16 on-chip, and all compute is FP16
    // (Sec. 5.3: GOBO "only quantizes the weight tensors and computes
    // with FP16").
    d.computeBits = 16.0;
    d.fp16Compute = true;
    d.weightBitsDram = 4.3;
    d.weightBitsOnchip = 16.0;
    d.actBits = 16.0;
    // DRAM-side decompression and the unaligned coordinate-list walk
    // cost effective bandwidth.
    d.dramEfficiency = 0.85;
    return d;
}

std::vector<GpuDesign>
figure9Designs()
{
    return {gpuOlive(), gpuAnt(), gpuInt8(), gpuGobo()};
}

AccelDesign
accelOlive()
{
    AccelDesign d;
    d.name = "OliVe";
    d.peAreaUm2 = 50.01;     // Table 11
    d.utilization = 0.92;    // aligned operands, border-only decoders
    d.weightBits = 4.0;
    d.actBits = 4.0;
    d.macEnergyPj = 0.060;
    return d;
}

AccelDesign
accelAnt()
{
    AccelDesign d;
    d.name = "ANT";
    d.peAreaUm2 = 48.0;      // ANT's 4-bit PE, no outlier datapath
    d.utilization = 0.80;    // type decode in the operand path
    // Mixed precision: ~80 % of GEMMs escalate to int8; an int8 MAC
    // occupies four 4-bit PEs (BitFusion-style composition).
    d.int8Fraction = 0.80;
    d.weightBits = 0.8 * 8.0 + 0.2 * 4.0;
    d.actBits = d.weightBits;
    d.macEnergyPj = 0.072;   // per 4-bit PE-op; int8 costs 4 of these
    return d;
}

AccelDesign
accelOlaccel()
{
    AccelDesign d;
    d.name = "OLAccel";
    d.peAreaUm2 = 42.0;      // plain int4 PE without the OliVe shifter
    // The outlier controller adds 71 % of the PE array area
    // (Sec. 2.2), i.e. 0.71/1.71 of the iso-area budget.
    d.controllerAreaFrac = 0.71 / 1.71;
    // Unaligned outlier fetches and normal/outlier orchestration stall
    // the dense array (the paper measures OLAccel at ~1.26x AdaFloat).
    d.utilization = 0.35;
    d.weightBits = 4.0 + 0.03 * 8.0; // 3 % outliers at 8-bit extra
    d.actBits = d.weightBits;
    d.indexBits = 0.03 * 16.0;       // 16-bit coordinates per outlier
    d.dramEfficiency = 0.80;         // unaligned bursts
    d.macEnergyPj = 0.055;           // plain int4 MAC
    d.staticPowerFactor = 0.95;      // smaller live array, controller idle
    return d;
}

AccelDesign
accelAdafloat()
{
    AccelDesign d;
    d.name = "AdaFloat";
    // An 8-bit adaptive-float MAC (alignment + wider multiplier) is
    // ~4.7x the area of OliVe's 4-bit integer PE.
    d.peAreaUm2 = 235.0;
    d.utilization = 0.90;
    d.cyclesPerMac = 1.0;
    d.weightBits = 8.0;
    d.actBits = 8.0;
    d.macEnergyPj = 0.300;
    return d;
}

std::vector<AccelDesign>
figure10Designs()
{
    return {accelOlive(), accelAnt(), accelOlaccel(), accelAdafloat()};
}

} // namespace sim
} // namespace olive
