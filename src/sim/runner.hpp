/**
 * @file
 * Experiment runner that turns raw simulator output into the normalized
 * metrics the paper's figures report: per-model speedups against the
 * figure's reference design and normalized energy breakdowns, plus
 * geometric means across models.
 */

#ifndef OLIVE_SIM_RUNNER_HPP
#define OLIVE_SIM_RUNNER_HPP

#include <string>
#include <vector>

#include "gpu.hpp"
#include "systolic.hpp"

namespace olive {
namespace sim {

/** One design's results across all models. */
struct SeriesResult
{
    std::string design;
    std::vector<double> speedup;          //!< Per model, vs the baseline.
    std::vector<GpuEnergy> gpuEnergy;     //!< Raw per-model breakdowns.
    std::vector<AccelEnergy> accelEnergy;
    double speedupGeomean = 0.0;
    double energyGeomean = 0.0;           //!< Normalized to the reference.
};

/** Full Fig. 9 sweep: all GPU designs over all figure models. */
struct Fig9Result
{
    std::vector<std::string> modelNames;
    std::vector<SeriesResult> designs; //!< OliVe, ANT, INT8, GOBO.
};

/**
 * Run Fig. 9: speedups are measured against the FP16 GPU baseline and
 * energies are normalized per model to the GOBO design (the paper's
 * normalization).
 */
Fig9Result runFigure9(const GpuModel &model = GpuModel());

/** Full Fig. 10 sweep. */
struct Fig10Result
{
    std::vector<std::string> modelNames;
    std::vector<SeriesResult> designs; //!< OliVe, ANT, OLAccel, AdaFloat.
};

/**
 * Run Fig. 10: speedups and energies are normalized per model to the
 * AdaptivFloat design.
 */
Fig10Result runFigure10(const SystolicModel &model = SystolicModel());

} // namespace sim
} // namespace olive

#endif // OLIVE_SIM_RUNNER_HPP
