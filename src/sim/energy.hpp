/**
 * @file
 * Energy tables and breakdown structures for the two simulators.
 *
 * Per-access and per-op energies are first-order constants in the style
 * of CACTI/AccelWattch tables; the breakdown categories match the
 * stacked bars of Figs. 9b and 10b.  Absolute joules are not the claim
 * — the normalized per-design ratios are — but the constants are kept
 * in a physically sensible regime (DRAM access orders of magnitude more
 * expensive than a MAC, quadratic-ish MAC scaling with precision).
 */

#ifndef OLIVE_SIM_ENERGY_HPP
#define OLIVE_SIM_ENERGY_HPP

#include <string>

namespace olive {
namespace sim {

/** GPU energy breakdown (Fig. 9b categories). */
struct GpuEnergy
{
    double constant = 0.0; //!< Fixed platform power * time.
    double staticE = 0.0;  //!< Leakage * time.
    double dramL2 = 0.0;   //!< DRAM + L2 dynamic.
    double l1Reg = 0.0;    //!< L1/shared + register file dynamic.
    double core = 0.0;     //!< Tensor/CUDA core dynamic.

    double total() const
    {
        return constant + staticE + dramL2 + l1Reg + core;
    }
};

/** Accelerator energy breakdown (Fig. 10b categories). */
struct AccelEnergy
{
    double staticE = 0.0;
    double dram = 0.0;
    double buffer = 0.0;
    double core = 0.0;

    double total() const { return staticE + dram + buffer + core; }
};

/** GPU energy constants (pJ) and powers (pJ/cycle). */
struct GpuEnergyTable
{
    double dramPjPerByte = 160.0;
    double l2PjPerByte = 30.0;
    double l1PjPerByte = 8.0;
    double regPjPerByte = 1.5;
    double fp16MacPj = 1.20;
    double int8MacPj = 0.35;
    double int4MacPj = 0.11;
    double constantPjPerCycle = 12000.0; //!< ~18 W at 1.545 GHz.
    double staticPjPerCycle = 16000.0;   //!< ~25 W leakage.
};

/** Accelerator energy constants (pJ, 22 nm). */
struct AccelEnergyTable
{
    double dramPjPerByte = 110.0;
    double bufferPjPerByte = 1.6;
    double staticPjPerCycle = 700.0;
};

} // namespace sim
} // namespace olive

#endif // OLIVE_SIM_ENERGY_HPP
