#include "gpu.hpp"

#include <algorithm>
#include <cmath>

#include "util/common.hpp"

namespace olive {
namespace sim {

GpuModel::GpuModel(GpuConfig config)
    : config_(config)
{
}

namespace {

/** Sustained MAC rate at a given operand precision. */
double
macsPerCycle(const GpuConfig &cfg, double bits)
{
    return cfg.fp16MacsPerCycle * (16.0 / bits);
}

/** Dynamic MAC energy at a given precision. */
double
macPj(const GpuEnergyTable &e, double bits)
{
    if (bits <= 4.0)
        return e.int4MacPj;
    if (bits <= 8.0)
        return e.int8MacPj;
    return e.fp16MacPj;
}

} // namespace

GpuResult
GpuModel::run(const std::vector<models::GemmOp> &ops,
              const GpuDesign &d) const
{
    GpuResult res;
    const GpuEnergyTable &et = config_.energy;

    for (const auto &op : ops) {
        const double macs = static_cast<double>(op.macs());

        // --- Compute time -------------------------------------------
        double inv_tp;
        if (d.fp16Compute) {
            inv_tp = 1.0 / macsPerCycle(config_, 16.0);
        } else if (d.int8Fraction > 0.0) {
            inv_tp = d.int8Fraction / macsPerCycle(config_, 8.0) +
                     (1.0 - d.int8Fraction) /
                         macsPerCycle(config_, d.computeBits);
        } else {
            inv_tp = 1.0 / macsPerCycle(config_, d.computeBits);
        }
        double compute =
            macs * inv_tp * (1.0 + d.decodeOverhead) /
            d.sustainedEfficiency;
        // Launch/epilogue cost: repetitions of one op run as a single
        // batched kernel, so the overhead is per op, not per repetition.
        compute += config_.perGemmOverheadCycles;

        // --- Memory traffic -----------------------------------------
        const double b_bits_dram =
            op.bIsWeight ? d.weightBitsDram : d.actBits;
        const double b_bits_onchip =
            op.bIsWeight ? d.weightBitsOnchip : d.actBits;
        const double count = static_cast<double>(op.count);

        const double b_bytes_onchip_per_rep =
            static_cast<double>(op.bElems()) * b_bits_onchip / 8.0;
        // L2 panel model: when the decompressed B panel exceeds the
        // effective L2, A streams once per panel pass.
        const double passes =
            std::max(1.0, b_bytes_onchip_per_rep / config_.l2CapacityBytes);

        const double a_bytes =
            static_cast<double>(op.aElems()) * count * d.actBits / 8.0 *
            passes;
        const double b_bytes_dram_total =
            static_cast<double>(op.bElems()) * count * b_bits_dram / 8.0;
        const double b_bytes_onchip_total =
            static_cast<double>(op.bElems()) * count * b_bits_onchip / 8.0;
        // Outputs are requantized in the epilogue and written back at
        // the design's activation precision (the next GEMM consumes
        // them quantized); FP16-compute designs write FP16.
        const double c_bytes =
            static_cast<double>(op.cElems()) * count * d.actBits / 8.0;

        const double dram_bytes = a_bytes + b_bytes_dram_total + c_bytes;
        const double l2_bytes = a_bytes + b_bytes_onchip_total + c_bytes;

        const double dram_cycles =
            dram_bytes / (config_.dramBytesPerCycle * d.dramEfficiency);
        const double l2_cycles = l2_bytes / config_.l2BytesPerCycle;
        const double mem = std::max(dram_cycles, l2_cycles);

        // Imperfect compute/memory overlap.
        const double latency =
            std::max(compute, mem) + 0.5 * std::min(compute, mem);
        res.cycles += latency;

        // --- Energy --------------------------------------------------
        double core_pj;
        if (d.fp16Compute) {
            core_pj = macs * macPj(et, 16.0);
        } else if (d.int8Fraction > 0.0) {
            core_pj = macs * (d.int8Fraction * macPj(et, 8.0) +
                              (1.0 - d.int8Fraction) *
                                  macPj(et, d.computeBits));
        } else {
            core_pj = macs * macPj(et, d.computeBits);
        }
        core_pj *= 1.0 + d.decodeOverhead;

        // Operand delivery: register file and L1/shared traffic scale
        // with the on-chip operand precision.
        const double opnd_bits =
            d.fp16Compute ? 32.0 : (d.actBits + b_bits_onchip);
        const double l1_bytes =
            macs * opnd_bits / 8.0 / config_.l1ReuseFactor;
        const double reg_bytes = macs * opnd_bits / 8.0 / 4.0;

        res.energy.core += core_pj;
        res.energy.dramL2 +=
            dram_bytes * et.dramPjPerByte + l2_bytes * et.l2PjPerByte;
        res.energy.l1Reg +=
            l1_bytes * et.l1PjPerByte + reg_bytes * et.regPjPerByte;
    }

    res.energy.constant = res.cycles * et.constantPjPerCycle;
    res.energy.staticE = res.cycles * et.staticPjPerCycle;
    return res;
}

} // namespace sim
} // namespace olive
