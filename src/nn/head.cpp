#include "head.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace olive {
namespace nn {

namespace {

void
heInit(Tensor &w, Rng &rng)
{
    const double scale = std::sqrt(2.0 / static_cast<double>(w.dim(1)));
    for (auto &v : w.data())
        v = static_cast<float>(rng.gaussian(0.0, scale));
}

} // namespace

ClassifierHead::ClassifierHead(size_t d_in, size_t hidden, size_t classes,
                               Rng &rng)
    : w1_({hidden, d_in}), b1_({hidden}),
      w2_({classes, hidden}), b2_({classes})
{
    heInit(w1_, rng);
    heInit(w2_, rng);
}

Tensor
ClassifierHead::logits(const Tensor &features) const
{
    Tensor h = linearForward(features, w1_, b1_);
    ops::relu(h);
    return linearForward(h, w2_, b2_);
}

std::vector<int>
ClassifierHead::predict(const Tensor &features) const
{
    const Tensor lg = logits(features);
    std::vector<int> out(lg.dim(0));
    for (size_t i = 0; i < lg.dim(0); ++i)
        out[i] = ops::argmaxRow(lg.row(i));
    return out;
}

double
ClassifierHead::loss(const Tensor &features,
                     const std::vector<int> &labels) const
{
    OLIVE_ASSERT(features.dim(0) == labels.size(), "batch size mismatch");
    const Tensor lg = logits(features);
    double acc = 0.0;
    for (size_t i = 0; i < lg.dim(0); ++i)
        acc += ops::crossEntropyRow(lg.row(i), labels[i]);
    return acc / static_cast<double>(lg.dim(0));
}

double
ClassifierHead::trainEpoch(const Tensor &features,
                           const std::vector<int> &labels, float lr)
{
    const size_t n = features.dim(0);
    OLIVE_ASSERT(n == labels.size(), "batch size mismatch");
    const size_t d = features.dim(1);
    const size_t hidden = w1_.dim(0);
    const size_t ncls = w2_.dim(0);

    // Forward with cached hidden activations.
    Tensor h = linearForward(features, w1_, b1_);
    Tensor relu_mask({n, hidden});
    for (size_t i = 0; i < h.size(); ++i) {
        relu_mask[i] = (h[i] > 0.0f) ? 1.0f : 0.0f;
        h[i] = std::max(h[i], 0.0f);
    }
    Tensor lg = linearForward(h, w2_, b2_);

    // Softmax cross-entropy gradient: dlogits = softmax - onehot.
    double loss = 0.0;
    Tensor dlg({n, ncls});
    for (size_t i = 0; i < n; ++i) {
        loss += ops::crossEntropyRow(lg.row(i), labels[i]);
        auto row = lg.row(i);
        std::vector<float> p(row.begin(), row.end());
        ops::softmaxRow(p);
        auto drow = dlg.row(i);
        for (size_t c = 0; c < ncls; ++c)
            drow[c] = p[c];
        drow[static_cast<size_t>(labels[i])] -= 1.0f;
    }
    loss /= static_cast<double>(n);
    const float inv_n = 1.0f / static_cast<float>(n);

    // Grad w2 = dlg^T h; grad h = dlg w2.
    Tensor gw2({ncls, hidden});
    Tensor gb2({ncls});
    Tensor dh({n, hidden});
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < ncls; ++c) {
            const float g = dlg.at(i, c) * inv_n;
            gb2[c] += g;
            for (size_t k = 0; k < hidden; ++k) {
                gw2.at(c, k) += g * h.at(i, k);
                dh.at(i, k) += g * w2_.at(c, k) * static_cast<float>(n);
            }
        }
    }

    // Through ReLU.
    for (size_t i = 0; i < dh.size(); ++i)
        dh[i] *= relu_mask[i];

    // Grad w1 = dh^T x.
    Tensor gw1({hidden, d});
    Tensor gb1({hidden});
    for (size_t i = 0; i < n; ++i) {
        for (size_t k = 0; k < hidden; ++k) {
            const float g = dh.at(i, k) * inv_n;
            gb1[k] += g;
            for (size_t j = 0; j < d; ++j)
                gw1.at(k, j) += g * features.at(i, j);
        }
    }

    // SGD update.
    axpy(w1_, gw1, -lr);
    axpy(b1_, gb1, -lr);
    axpy(w2_, gw2, -lr);
    axpy(b2_, gb2, -lr);
    return loss;
}

void
ClassifierHead::fit(const Tensor &features, const std::vector<int> &labels,
                    int epochs, float lr)
{
    for (int e = 0; e < epochs; ++e)
        trainEpoch(features, labels, lr);
}

SpanHead::SpanHead(size_t d_in, Rng &rng)
    : wStart_({d_in}), wEnd_({d_in})
{
    const double scale = std::sqrt(1.0 / static_cast<double>(d_in));
    for (auto &v : wStart_.data())
        v = static_cast<float>(rng.gaussian(0.0, scale));
    for (auto &v : wEnd_.data())
        v = static_cast<float>(rng.gaussian(0.0, scale));
}

Tensor
SpanHead::scores(const Tensor &token_features) const
{
    const size_t seq = token_features.dim(0);
    const size_t d = token_features.dim(1);
    Tensor out({2, seq});
    for (size_t t = 0; t < seq; ++t) {
        double s0 = bStart_, s1 = bEnd_;
        for (size_t j = 0; j < d; ++j) {
            const float x = token_features.at(t, j);
            s0 += static_cast<double>(wStart_[j]) * x;
            s1 += static_cast<double>(wEnd_[j]) * x;
        }
        out.at(0, t) = static_cast<float>(s0);
        out.at(1, t) = static_cast<float>(s1);
    }
    return out;
}

std::pair<int, int>
SpanHead::predictSpan(const Tensor &token_features) const
{
    const Tensor s = scores(token_features);
    const int start = ops::argmaxRow(s.row(0));
    // End is the argmax at or after the predicted start.
    auto end_row = s.row(1);
    int end = start;
    float best = end_row[static_cast<size_t>(start)];
    for (size_t t = static_cast<size_t>(start); t < end_row.size(); ++t) {
        if (end_row[t] > best) {
            best = end_row[t];
            end = static_cast<int>(t);
        }
    }
    return {start, end};
}

double
SpanHead::trainStep(const Tensor &token_features, int start, int end,
                    float lr)
{
    const size_t seq = token_features.dim(0);
    const size_t d = token_features.dim(1);
    Tensor s = scores(token_features);

    const double loss = ops::crossEntropyRow(s.row(0), start) +
                        ops::crossEntropyRow(s.row(1), end);

    for (int which = 0; which < 2; ++which) {
        auto row = s.row(static_cast<size_t>(which));
        std::vector<float> p(row.begin(), row.end());
        ops::softmaxRow(p);
        const int label = (which == 0) ? start : end;
        p[static_cast<size_t>(label)] -= 1.0f;
        Tensor &w = (which == 0) ? wStart_ : wEnd_;
        float &b = (which == 0) ? bStart_ : bEnd_;
        for (size_t t = 0; t < seq; ++t) {
            const float g = p[t];
            b -= lr * g;
            for (size_t j = 0; j < d; ++j)
                w[j] -= lr * g * token_features.at(t, j);
        }
    }
    return loss;
}

} // namespace nn
} // namespace olive
