/**
 * @file
 * Trainable task heads: a two-layer MLP classifier (GLUE-style tasks)
 * and a span-extraction head (SQuAD-style tasks), with plain SGD
 * backprop.
 *
 * The heads are the only trained components in the evaluation pipeline:
 * the synthetic backbone is fixed (it stands in for the pretrained
 * checkpoint) and the head learns the downstream task from backbone
 * features — mirroring how the paper's accuracy experiments fine-tune
 * checkpoints and then apply PTQ.
 */

#ifndef OLIVE_NN_HEAD_HPP
#define OLIVE_NN_HEAD_HPP

#include <vector>

#include "tensor/tensor.hpp"
#include "util/random.hpp"

namespace olive {
namespace nn {

/** Two-layer MLP classifier head: d -> hidden -> classes. */
class ClassifierHead
{
  public:
    /** Random (He) initialization. */
    ClassifierHead(size_t d_in, size_t hidden, size_t classes, Rng &rng);

    size_t classes() const { return w2_.dim(0); }

    /** Logits for a batch of feature rows (N, d_in) -> (N, classes). */
    Tensor logits(const Tensor &features) const;

    /** Predicted class per row. */
    std::vector<int> predict(const Tensor &features) const;

    /** Mean cross-entropy over a labelled batch. */
    double loss(const Tensor &features, const std::vector<int> &labels) const;

    /**
     * One SGD epoch over the batch (full-batch gradient with the given
     * learning rate); returns the pre-update loss.
     */
    double trainEpoch(const Tensor &features, const std::vector<int> &labels,
                      float lr);

    /** Convenience: run @p epochs of trainEpoch. */
    void fit(const Tensor &features, const std::vector<int> &labels,
             int epochs, float lr);

  private:
    Tensor w1_, b1_; //!< (hidden, d_in), (hidden)
    Tensor w2_, b2_; //!< (classes, hidden), (classes)
};

/**
 * Span head for the SQuAD-style proxy: two independent linear scorers
 * over per-token features selecting start and end positions.
 */
class SpanHead
{
  public:
    SpanHead(size_t d_in, Rng &rng);

    /**
     * Scores for one sequence's token features (seq, d_in): returns
     * (2, seq) start/end logits.
     */
    Tensor scores(const Tensor &token_features) const;

    /** Predicted (start, end) with end >= start. */
    std::pair<int, int> predictSpan(const Tensor &token_features) const;

    /** One SGD step on a single example; returns the loss. */
    double trainStep(const Tensor &token_features, int start, int end,
                     float lr);

  private:
    Tensor wStart_, wEnd_; //!< (d_in) score vectors.
    float bStart_ = 0.0f, bEnd_ = 0.0f;
};

} // namespace nn
} // namespace olive

#endif // OLIVE_NN_HEAD_HPP
