/**
 * @file
 * Minimal transformer inference substrate with quantization hooks.
 *
 * The model is a stack of post-LN encoder (or causally masked decoder)
 * layers operating on a (seq, d_model) tensor.  Every GEMM input can be
 * fake-quantized through a Scheme: weights are quantized once up front
 * (see quantizeTransformer), activations on the fly during forward when
 * an activation scheme is supplied.  This is the functional-evaluation
 * path; the cycle-level simulators consume the same architecture through
 * models/workload.hpp instead.
 */

#ifndef OLIVE_NN_TRANSFORMER_HPP
#define OLIVE_NN_TRANSFORMER_HPP

#include <vector>

#include "quant/scheme.hpp"
#include "tensor/tensor.hpp"
#include "util/random.hpp"

namespace olive {

namespace serve {
class KvCache;
struct DecodeState;
} // namespace serve

namespace nn {

/**
 * Granularity of activation fake-quantization during forward.
 *
 * PerTensor calibrates each activation tensor as a whole (the PTQ
 * evaluation flow).  PerToken calibrates every (1, d) token row
 * independently — the only granularity an incremental decoder can
 * realize, since a step never sees future tokens.  forwardStep always
 * quantizes per token; forward(..., PerToken) is its bit-exact
 * full-sequence counterpart (see tests/test_decode_parity.cpp).
 */
enum class ActQuant
{
    PerTensor,
    PerToken,
};

/** One linear layer: y = x W^T + b, with W stored (out, in). */
struct Linear
{
    Tensor w; //!< (out_features, in_features)
    Tensor b; //!< (out_features)

    /** Forward through this layer. */
    Tensor forward(const Tensor &x) const;
};

/** Weights of one transformer encoder/decoder layer (post-LN). */
struct Layer
{
    Linear q, k, v, o;   //!< Attention projections.
    Linear ff1, ff2;     //!< Feed-forward network.
    Tensor ln1Gamma, ln1Beta; //!< Post-attention LayerNorm.
    Tensor ln2Gamma, ln2Beta; //!< Post-FFN LayerNorm.
};

/** A full transformer backbone. */
struct Transformer
{
    size_t dModel = 0;
    size_t nHeads = 0;
    size_t dFf = 0;
    bool causal = false; //!< Apply a causal mask (decoder-only models).
    std::vector<Layer> layers;

    /**
     * Forward pass.  @p x is (seq, dModel).  If @p act_scheme is
     * non-null every linear-layer input is fake-quantized as an
     * activation first, at the given granularity.
     */
    Tensor forward(const Tensor &x, Scheme *act_scheme = nullptr,
                   ActQuant act_granularity = ActQuant::PerTensor) const;

    /**
     * Incremental decode: process ONE token row @p x_t (1, dModel)
     * against the KV caches in @p state, appending this token's K/V
     * per layer and attending over the cached prefix.  Requires a
     * causal model.  With the FP32 cache scheme the returned row is
     * bit-identical to row t of forward() over the same prefix
     * (activation schemes quantize per token, matching
     * forward(..., ActQuant::PerToken)); quantized cache schemes trade
     * that exactness for cache bytes, measured by serve::cacheImpact.
     */
    Tensor forwardStep(const Tensor &x_t, serve::DecodeState &state,
                       Scheme *act_scheme = nullptr) const;

    /**
     * Batched prefill: process @p x_rows (m, dModel) token rows in ONE
     * pass against the KV caches in @p state — the m-row generalization
     * of forwardStep, and bit-identical to m consecutive forwardStep
     * calls over the same rows (tests/test_decode_parity.cpp:
     * BatchedPrefillMatchesStepLoop).  Each layer bulk-appends all m
     * K/V rows (KvCache::appendRows) and attends every row i over
     * cached positions [0, pos0+i+1) via an intra-chunk causal mask, so
     * the tiled GEMM kernels see an (m, d) batch instead of m (1, d)
     * slivers.  Activations quantize per token (the only granularity a
     * decoder can realize), matching forwardStep exactly.  Advances
     * state.position by m; returns the (m, d) hidden rows.
     */
    Tensor forwardChunk(const Tensor &x_rows, serve::DecodeState &state,
                        Scheme *act_scheme = nullptr) const;

    /** Total parameter count. */
    size_t parameterCount() const;

    /** Collect mutable views of every weight matrix (not biases/LN). */
    std::vector<Tensor *> weightMatrices();
    std::vector<const Tensor *> weightMatrices() const;
};

/**
 * Return a copy of @p model whose weight matrices are fake-quantized
 * with @p scheme (biases and LayerNorm parameters stay FP32, as all
 * studied quantization methods do).
 */
Transformer quantizeTransformer(const Transformer &model, Scheme &scheme);

/** Multi-head self-attention used by Transformer::forward. */
Tensor selfAttention(const Tensor &x, const Layer &layer, size_t n_heads,
                     bool causal, Scheme *act_scheme,
                     ActQuant act_granularity = ActQuant::PerTensor);

/**
 * One-token self-attention over a KV cache, used by forwardStep: the
 * token's K/V rows are appended to @p cache (through its codec), then
 * the query attends over the decoded cache.  @p x is (1, d).
 */
Tensor selfAttentionStep(const Tensor &x, const Layer &layer,
                         size_t n_heads, serve::KvCache &cache,
                         Scheme *act_scheme);

/**
 * Chunked self-attention over a KV cache, used by forwardChunk: all m
 * rows of @p x (m, d) are bulk-appended to @p cache, then row i attends
 * over cached positions [0, pos0+i+1) — the intra-chunk causal mask —
 * where pos0 is the cache length before the call.  Bit-identical to m
 * selfAttentionStep calls (masked tail positions softmax to exact zero,
 * see attendRow's comment).
 */
Tensor selfAttentionChunk(const Tensor &x, const Layer &layer,
                          size_t n_heads, serve::KvCache &cache,
                          Scheme *act_scheme);

} // namespace nn
} // namespace olive

#endif // OLIVE_NN_TRANSFORMER_HPP
