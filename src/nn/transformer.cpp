#include "transformer.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "serve/kv_cache.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"

namespace olive {
namespace nn {

namespace {

/**
 * Fake-quantize a tensor as an activation if a scheme is given.
 * PerToken calibrates each row independently — for a (1, d) tensor the
 * two granularities coincide, which is what makes forwardStep's
 * single-row quantization the exact per-token counterpart of forward.
 */
Tensor
maybeQuantAct(const Tensor &x, Scheme *scheme,
              ActQuant granularity = ActQuant::PerTensor)
{
    if (!scheme)
        return x.clone();
    if (granularity == ActQuant::PerTensor || x.dim(0) == 1) {
        auto q = scheme->apply(x.data(), TensorKind::Activation);
        return Tensor(x.shape(), std::move(q));
    }
    Tensor out(x.shape());
    for (size_t i = 0; i < x.dim(0); ++i) {
        const auto q = scheme->apply(x.row(i), TensorKind::Activation);
        std::copy(q.begin(), q.end(), out.row(i).begin());
    }
    return out;
}

/**
 * One (head, query-row) attention: scores against K rows
 * [0, attend_len), masked fill up to row.size(), softmax, context over
 * row.size() V rows.  @p qrow / @p pk / @p pv are already offset to
 * the head (column h*dh); K/V rows are strided by @p d.
 *
 * Shared verbatim by selfAttention (attend_len = causal ? i+1 : seq,
 * row length seq) and selfAttentionStep (attend_len = row length =
 * cache length): full forward's masked positions softmax to exactly
 * zero and contribute exact-zero context terms, so the two callers are
 * bit-identical on the common prefix BY CONSTRUCTION — there is one
 * kernel to keep in sync, not two (tests/test_decode_parity.cpp
 * asserts the resulting parity exhaustively).
 *
 * Both inner products are register-tiled like tensor/gemm: four score
 * columns share one pass over the query row, and four context lanes
 * share one pass over the softmaxed row.  Each output accumulates in
 * double over the same ascending index as the scalar remainder loops,
 * so the tiling never changes a bit.
 */
void
attendRow(const float *qrow, const float *pk, const float *pv, size_t d,
          size_t dh, size_t attend_len, float inv_sqrt_dh,
          std::span<float> row, float *crow)
{
    const size_t row_len = row.size();
    size_t j = 0;
    for (; j + 4 <= attend_len; j += 4) {
        const float *k0 = pk + j * d;
        const float *k1 = k0 + d;
        const float *k2 = k1 + d;
        const float *k3 = k2 + d;
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (size_t e = 0; e < dh; ++e) {
            const double qv = qrow[e];
            a0 += qv * k0[e];
            a1 += qv * k1[e];
            a2 += qv * k2[e];
            a3 += qv * k3[e];
        }
        row[j + 0] = static_cast<float>(a0) * inv_sqrt_dh;
        row[j + 1] = static_cast<float>(a1) * inv_sqrt_dh;
        row[j + 2] = static_cast<float>(a2) * inv_sqrt_dh;
        row[j + 3] = static_cast<float>(a3) * inv_sqrt_dh;
    }
    for (; j < attend_len; ++j) {
        const float *krow = pk + j * d;
        double acc = 0.0;
        for (size_t e = 0; e < dh; ++e)
            acc += static_cast<double>(qrow[e]) * krow[e];
        row[j] = static_cast<float>(acc) * inv_sqrt_dh;
    }
    for (; j < row_len; ++j)
        row[j] = -1e30f;
    ops::softmaxRow(row);
    size_t e = 0;
    for (; e + 4 <= dh; e += 4) {
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        for (size_t jj = 0; jj < row_len; ++jj) {
            const double r = row[jj];
            const float *vrow = pv + jj * d + e;
            a0 += r * vrow[0];
            a1 += r * vrow[1];
            a2 += r * vrow[2];
            a3 += r * vrow[3];
        }
        crow[e + 0] = static_cast<float>(a0);
        crow[e + 1] = static_cast<float>(a1);
        crow[e + 2] = static_cast<float>(a2);
        crow[e + 3] = static_cast<float>(a3);
    }
    for (; e < dh; ++e) {
        double acc = 0.0;
        for (size_t jj = 0; jj < row_len; ++jj)
            acc += static_cast<double>(row[jj]) * pv[jj * d + e];
        crow[e] = static_cast<float>(acc);
    }
}

/**
 * attendRow generalized to an ordered span list: the cache's rows
 * [0, len) arrive as consecutive runs (serve::KvSpan) instead of one
 * contiguous block — one run per KV block when a decoded working set
 * backs the cache.  @p col is the head's column offset (h * dh); span
 * rows are strided by @p d.
 *
 * Bit-identical to attendRow on the concatenation of the spans: every
 * score row[base + j] accumulates in double over the same ascending e
 * independently of its neighbours (the 4-wide tile restarting at span
 * boundaries therefore cannot change a bit), and every context lane
 * accumulates in double over the same ascending global jj — the span
 * walk preserves the iteration order, it only changes how the row
 * pointer is derived.  tests/test_decode_parity.cpp pins this against
 * the retained scratch path across codecs and block sizes.
 *
 * @p attend_len caps the scored positions: global columns
 * [attend_len, row.size()) get the same -1e30 masked fill attendRow
 * applies, which softmaxes to exactly 0 and contributes exact-zero
 * context terms.  Batched prefill uses this as the intra-chunk causal
 * mask (row i of a chunk attends [0, pos0+i+1) out of pos0+m cached
 * rows); single-token decode passes attend_len == row.size(), the
 * no-mask case identical to the previous behaviour.
 */
void
attendRowSpans(const float *qrow, const serve::KvSpan *spans, size_t nspans,
               size_t col, size_t d, size_t dh, size_t attend_len,
               float inv_sqrt_dh, std::span<float> row, float *crow)
{
    size_t base = 0;
    for (size_t s = 0; s < nspans; ++s) {
        const float *pk = spans[s].k + col;
        const size_t full = spans[s].rows;
        // Rows of this span at global columns >= attend_len are masked:
        // score them with the fill value instead of a dot product.
        const size_t n = attend_len > base
                             ? std::min(full, attend_len - base)
                             : 0;
        size_t j = 0;
        for (; j + 4 <= n; j += 4) {
            const float *k0 = pk + j * d;
            const float *k1 = k0 + d;
            const float *k2 = k1 + d;
            const float *k3 = k2 + d;
            double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
            for (size_t e = 0; e < dh; ++e) {
                const double qv = qrow[e];
                a0 += qv * k0[e];
                a1 += qv * k1[e];
                a2 += qv * k2[e];
                a3 += qv * k3[e];
            }
            row[base + j + 0] = static_cast<float>(a0) * inv_sqrt_dh;
            row[base + j + 1] = static_cast<float>(a1) * inv_sqrt_dh;
            row[base + j + 2] = static_cast<float>(a2) * inv_sqrt_dh;
            row[base + j + 3] = static_cast<float>(a3) * inv_sqrt_dh;
        }
        for (; j < n; ++j) {
            const float *krow = pk + j * d;
            double acc = 0.0;
            for (size_t e = 0; e < dh; ++e)
                acc += static_cast<double>(qrow[e]) * krow[e];
            row[base + j] = static_cast<float>(acc) * inv_sqrt_dh;
        }
        for (; j < full; ++j)
            row[base + j] = -1e30f;
        base += full;
    }
    OLIVE_ASSERT(base == row.size(), "spans must cover the score row");
    ops::softmaxRow(row);
    size_t e = 0;
    for (; e + 4 <= dh; e += 4) {
        double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
        size_t jj = 0;
        for (size_t s = 0; s < nspans; ++s) {
            const float *pv = spans[s].v + col + e;
            for (size_t i = 0; i < spans[s].rows; ++i, ++jj) {
                const double r = row[jj];
                const float *vrow = pv + i * d;
                a0 += r * vrow[0];
                a1 += r * vrow[1];
                a2 += r * vrow[2];
                a3 += r * vrow[3];
            }
        }
        crow[e + 0] = static_cast<float>(a0);
        crow[e + 1] = static_cast<float>(a1);
        crow[e + 2] = static_cast<float>(a2);
        crow[e + 3] = static_cast<float>(a3);
    }
    for (; e < dh; ++e) {
        double acc = 0.0;
        size_t jj = 0;
        for (size_t s = 0; s < nspans; ++s) {
            const float *pv = spans[s].v + col + e;
            for (size_t i = 0; i < spans[s].rows; ++i, ++jj)
                acc += static_cast<double>(row[jj]) * pv[i * d];
        }
        crow[e] = static_cast<float>(acc);
    }
}

} // namespace

Tensor
Linear::forward(const Tensor &x) const
{
    return linearForward(x, w, b);
}

Tensor
selfAttention(const Tensor &x, const Layer &layer, size_t n_heads,
              bool causal, Scheme *act_scheme, ActQuant act_granularity)
{
    const size_t seq = x.dim(0);
    const size_t d = x.dim(1);
    OLIVE_ASSERT(d % n_heads == 0, "d_model must divide by heads");
    const size_t dh = d / n_heads;
    const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

    const Tensor xq = maybeQuantAct(x, act_scheme, act_granularity);
    Tensor q = layer.q.forward(xq);
    Tensor k = layer.k.forward(xq);
    Tensor v = layer.v.forward(xq);

    Tensor ctx({seq, d});
    // Per-head attention: scores = Q_h K_h^T / sqrt(dh), softmax, * V_h.
    // The softmax and context of output row (h, i) depend only on that
    // row's scores, so the (head, row) pairs flatten into one parallel
    // index space with an O(seq) score row as the only scratch, reused
    // across a chunk (grain = seq: one head per chunk); each index
    // computes exactly the serial expression, keeping the forward
    // bit-exact at any thread count (see util/parallel.hpp).
    const float *pq = q.raw();
    const float *pk = k.raw();
    const float *pv = v.raw();
    float *pctx = ctx.raw();
    par::parallelFor(0, n_heads * seq, seq, [&](size_t b, size_t e_) {
        std::vector<float> row(seq);
        for (size_t idx = b; idx < e_; ++idx) {
            const size_t h = idx / seq;
            const size_t i = idx % seq;
            attendRow(pq + i * d + h * dh, pk + h * dh, pv + h * dh, d,
                      dh, causal ? i + 1 : seq, inv_sqrt_dh, row,
                      pctx + i * d + h * dh);
        }
    });

    const Tensor ctxq = maybeQuantAct(ctx, act_scheme, act_granularity);
    return layer.o.forward(ctxq);
}

Tensor
selfAttentionStep(const Tensor &x, const Layer &layer, size_t n_heads,
                  serve::KvCache &cache, Scheme *act_scheme)
{
    OLIVE_ASSERT(x.rank() == 2 && x.dim(0) == 1, "step input must be (1, d)");
    const size_t d = x.dim(1);
    OLIVE_ASSERT(d == cache.dModel(), "cache width must match the model");
    OLIVE_ASSERT(d % n_heads == 0, "d_model must divide by heads");
    const size_t dh = d / n_heads;
    const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

    const Tensor xq = maybeQuantAct(x, act_scheme);
    Tensor q = layer.q.forward(xq);
    Tensor k = layer.k.forward(xq);
    Tensor v = layer.v.forward(xq);

    // Persist this token's K/V through the cache codec, then attend
    // block-by-block over whatever decoded form the cache serves: one
    // all-rows scratch span (the retained oracle path), or per-block
    // spans pinned in the engine's DecodedBlockCache — where only the
    // tail rows appended since the last step need decoding, making the
    // per-step codec work O(1) amortized and the transient footprint
    // bounded by the working set instead of (len, d).
    cache.append(k.row(0), v.row(0));
    const size_t len = cache.length();

    // The query is row i = len-1 of the equivalent full forward, so
    // the causal score range j < i+1 is exactly [0, len): the kernel
    // runs with no masked tail.  attendRowSpans is attendRow with the
    // row pointer derived through the span list — bit-identical on the
    // same rows (see its comment), which keeps the step bit-exact
    // against the full forward and against the scratch path.
    Tensor ctx({1, d});
    const float *pq = q.raw();
    float *pctx = ctx.raw();
    cache.withDecoded([&](std::span<const serve::KvSpan> spans) {
        par::parallelFor(0, n_heads, 1, [&](size_t b, size_t e_) {
            std::vector<float> row(len);
            for (size_t h = b; h < e_; ++h) {
                attendRowSpans(pq + h * dh, spans.data(), spans.size(),
                               h * dh, d, dh, len, inv_sqrt_dh, row,
                               pctx + h * dh);
            }
        });
    });

    const Tensor ctxq = maybeQuantAct(ctx, act_scheme);
    return layer.o.forward(ctxq);
}

Tensor
selfAttentionChunk(const Tensor &x, const Layer &layer, size_t n_heads,
                   serve::KvCache &cache, Scheme *act_scheme)
{
    OLIVE_ASSERT(x.rank() == 2 && x.dim(0) >= 1,
                 "chunk input must be (m, d)");
    const size_t m = x.dim(0);
    const size_t d = x.dim(1);
    OLIVE_ASSERT(d == cache.dModel(), "cache width must match the model");
    OLIVE_ASSERT(d % n_heads == 0, "d_model must divide by heads");
    const size_t dh = d / n_heads;
    const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

    // Per-token quantization: each (1, d) row calibrates independently,
    // exactly as the m equivalent forwardStep calls would.
    const Tensor xq = maybeQuantAct(x, act_scheme, ActQuant::PerToken);
    Tensor q = layer.q.forward(xq);
    Tensor k = layer.k.forward(xq);
    Tensor v = layer.v.forward(xq);

    // Bulk-append the whole chunk's K/V rows, then attend.  Appending
    // before attending is safe because row i's masked score range
    // [0, pos0+i+1) never reaches the chunk rows after it — the
    // intra-chunk causal mask below.
    const size_t pos0 = cache.length();
    cache.appendRows(k, v);
    const size_t len = pos0 + m;

    // Query row i of the chunk is row pos0+i of the equivalent full
    // forward: it attends [0, pos0+i+1) and sees rows (pos0+i+1, len)
    // only through the -1e30 fill, which softmaxes to exactly zero —
    // bit-identical to the step loop (see attendRowSpans).  (head, row)
    // pairs flatten into one parallel index space, grain m = one head
    // per chunk, reusing an O(len) score row.
    Tensor ctx({m, d});
    const float *pq = q.raw();
    float *pctx = ctx.raw();
    cache.withDecoded([&](std::span<const serve::KvSpan> spans) {
        par::parallelFor(0, n_heads * m, m, [&](size_t b, size_t e_) {
            std::vector<float> row(len);
            for (size_t idx = b; idx < e_; ++idx) {
                const size_t h = idx / m;
                const size_t i = idx % m;
                attendRowSpans(pq + i * d + h * dh, spans.data(),
                               spans.size(), h * dh, d, dh, pos0 + i + 1,
                               inv_sqrt_dh, row, pctx + i * d + h * dh);
            }
        });
    });

    const Tensor ctxq = maybeQuantAct(ctx, act_scheme, ActQuant::PerToken);
    return layer.o.forward(ctxq);
}

Tensor
Transformer::forward(const Tensor &x, Scheme *act_scheme,
                     ActQuant act_granularity) const
{
    OLIVE_ASSERT(x.rank() == 2 && x.dim(1) == dModel,
                 "input must be (seq, d_model)");
    Tensor h = x.clone();
    for (const Layer &layer : layers) {
        // Attention block with residual + post-LN.
        Tensor attn = selfAttention(h, layer, nHeads, causal, act_scheme,
                                    act_granularity);
        Tensor res = ops::add(h, attn);
        h = ops::layerNorm(res, layer.ln1Gamma, layer.ln1Beta);

        // FFN block with residual + post-LN.
        const Tensor hq = maybeQuantAct(h, act_scheme, act_granularity);
        Tensor f = layer.ff1.forward(hq);
        ops::gelu(f);
        const Tensor fq = maybeQuantAct(f, act_scheme, act_granularity);
        Tensor f2 = layer.ff2.forward(fq);
        Tensor res2 = ops::add(h, f2);
        h = ops::layerNorm(res2, layer.ln2Gamma, layer.ln2Beta);
    }
    return h;
}

Tensor
Transformer::forwardStep(const Tensor &x_t, serve::DecodeState &state,
                         Scheme *act_scheme) const
{
    OLIVE_ASSERT(x_t.rank() == 2 && x_t.dim(0) == 1 && x_t.dim(1) == dModel,
                 "step input must be (1, d_model)");
    OLIVE_ASSERT(causal, "incremental decode requires a causal model");
    OLIVE_ASSERT(state.layers.size() == layers.size(),
                 "decode state must have one cache per layer");
    Tensor h = x_t.clone();
    for (size_t li = 0; li < layers.size(); ++li) {
        const Layer &layer = layers[li];
        serve::KvCache &cache = *state.layers[li];
        OLIVE_ASSERT(cache.length() == state.position,
                     "cache length is out of sync with the decode position");

        Tensor attn = selfAttentionStep(h, layer, nHeads, cache, act_scheme);
        Tensor res = ops::add(h, attn);
        h = ops::layerNorm(res, layer.ln1Gamma, layer.ln1Beta);

        const Tensor hq = maybeQuantAct(h, act_scheme);
        Tensor f = layer.ff1.forward(hq);
        ops::gelu(f);
        const Tensor fq = maybeQuantAct(f, act_scheme);
        Tensor f2 = layer.ff2.forward(fq);
        Tensor res2 = ops::add(h, f2);
        h = ops::layerNorm(res2, layer.ln2Gamma, layer.ln2Beta);
    }
    state.position += 1;
    return h;
}

Tensor
Transformer::forwardChunk(const Tensor &x_rows, serve::DecodeState &state,
                          Scheme *act_scheme) const
{
    OLIVE_ASSERT(x_rows.rank() == 2 && x_rows.dim(0) >= 1 &&
                     x_rows.dim(1) == dModel,
                 "chunk input must be (m, d_model)");
    OLIVE_ASSERT(causal, "incremental decode requires a causal model");
    OLIVE_ASSERT(state.layers.size() == layers.size(),
                 "decode state must have one cache per layer");
    // Layer l's input row i depends only on layer l-1's rows [0, i] —
    // all inside this chunk or already cached — so the whole chunk can
    // advance layer by layer exactly like the full forward.  Every
    // non-attention op (residual add, LayerNorm, GELU, the linear
    // layers, per-token activation quant) is row-wise, so each row of h
    // stays bit-identical to the row the token-by-token step loop
    // computes (the same argument that makes forward() match
    // forwardStep; BatchedPrefillMatchesStepLoop pins it here).
    const size_t m = x_rows.dim(0);
    Tensor h = x_rows.clone();
    for (size_t li = 0; li < layers.size(); ++li) {
        const Layer &layer = layers[li];
        serve::KvCache &cache = *state.layers[li];
        OLIVE_ASSERT(cache.length() == state.position,
                     "cache length is out of sync with the decode position");

        Tensor attn =
            selfAttentionChunk(h, layer, nHeads, cache, act_scheme);
        Tensor res = ops::add(h, attn);
        h = ops::layerNorm(res, layer.ln1Gamma, layer.ln1Beta);

        const Tensor hq = maybeQuantAct(h, act_scheme, ActQuant::PerToken);
        Tensor f = layer.ff1.forward(hq);
        ops::gelu(f);
        const Tensor fq = maybeQuantAct(f, act_scheme, ActQuant::PerToken);
        Tensor f2 = layer.ff2.forward(fq);
        Tensor res2 = ops::add(h, f2);
        h = ops::layerNorm(res2, layer.ln2Gamma, layer.ln2Beta);
    }
    state.position += m;
    return h;
}

size_t
Transformer::parameterCount() const
{
    size_t n = 0;
    for (const Layer &l : layers) {
        for (const Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            n += lin->w.size() + lin->b.size();
        n += l.ln1Gamma.size() + l.ln1Beta.size() + l.ln2Gamma.size() +
             l.ln2Beta.size();
    }
    return n;
}

std::vector<Tensor *>
Transformer::weightMatrices()
{
    std::vector<Tensor *> out;
    for (Layer &l : layers) {
        for (Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            out.push_back(&lin->w);
    }
    return out;
}

std::vector<const Tensor *>
Transformer::weightMatrices() const
{
    std::vector<const Tensor *> out;
    for (const Layer &l : layers) {
        for (const Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            out.push_back(&lin->w);
    }
    return out;
}

Transformer
quantizeTransformer(const Transformer &model, Scheme &scheme)
{
    Transformer q = model; // deep copies tensors via std::vector copy
    for (Tensor *w : q.weightMatrices()) {
        auto fq = scheme.applyMatrix(w->data(), w->dim(0), w->dim(1),
                                     TensorKind::Weight);
        *w = Tensor(w->shape(), std::move(fq));
    }
    return q;
}

} // namespace nn
} // namespace olive
