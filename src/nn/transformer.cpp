#include "transformer.hpp"

#include <cmath>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"

namespace olive {
namespace nn {

namespace {

/** Fake-quantize a tensor as an activation if a scheme is given. */
Tensor
maybeQuantAct(const Tensor &x, Scheme *scheme)
{
    if (!scheme)
        return x.clone();
    auto q = scheme->apply(x.data(), TensorKind::Activation);
    return Tensor(x.shape(), std::move(q));
}

} // namespace

Tensor
Linear::forward(const Tensor &x) const
{
    return linearForward(x, w, b);
}

Tensor
selfAttention(const Tensor &x, const Layer &layer, size_t n_heads,
              bool causal, Scheme *act_scheme)
{
    const size_t seq = x.dim(0);
    const size_t d = x.dim(1);
    OLIVE_ASSERT(d % n_heads == 0, "d_model must divide by heads");
    const size_t dh = d / n_heads;
    const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

    const Tensor xq = maybeQuantAct(x, act_scheme);
    Tensor q = layer.q.forward(xq);
    Tensor k = layer.k.forward(xq);
    Tensor v = layer.v.forward(xq);

    Tensor ctx({seq, d});
    // Per-head attention: scores = Q_h K_h^T / sqrt(dh), softmax, * V_h.
    // The softmax and context of output row (h, i) depend only on that
    // row's scores, so the (head, row) pairs flatten into one parallel
    // index space with an O(seq) score row as the only scratch, reused
    // across a chunk (grain = seq: one head per chunk); each index
    // computes exactly the serial expression, keeping the forward
    // bit-exact at any thread count (see util/parallel.hpp).
    par::parallelFor(0, n_heads * seq, seq, [&](size_t b, size_t e_) {
        std::vector<float> row(seq);
        for (size_t idx = b; idx < e_; ++idx) {
            const size_t h = idx / seq;
            const size_t i = idx % seq;
            for (size_t j = 0; j < seq; ++j) {
                if (causal && j > i) {
                    row[j] = -1e30f;
                    continue;
                }
                double acc = 0.0;
                for (size_t e = 0; e < dh; ++e) {
                    acc += static_cast<double>(q.at(i, h * dh + e)) *
                           k.at(j, h * dh + e);
                }
                row[j] = static_cast<float>(acc) * inv_sqrt_dh;
            }
            ops::softmaxRow(row);
            for (size_t e = 0; e < dh; ++e) {
                double acc = 0.0;
                for (size_t j = 0; j < seq; ++j) {
                    acc += static_cast<double>(row[j]) *
                           v.at(j, h * dh + e);
                }
                ctx.at(i, h * dh + e) = static_cast<float>(acc);
            }
        }
    });

    const Tensor ctxq = maybeQuantAct(ctx, act_scheme);
    return layer.o.forward(ctxq);
}

Tensor
Transformer::forward(const Tensor &x, Scheme *act_scheme) const
{
    OLIVE_ASSERT(x.rank() == 2 && x.dim(1) == dModel,
                 "input must be (seq, d_model)");
    Tensor h = x.clone();
    for (const Layer &layer : layers) {
        // Attention block with residual + post-LN.
        Tensor attn = selfAttention(h, layer, nHeads, causal, act_scheme);
        Tensor res = ops::add(h, attn);
        h = ops::layerNorm(res, layer.ln1Gamma, layer.ln1Beta);

        // FFN block with residual + post-LN.
        const Tensor hq = maybeQuantAct(h, act_scheme);
        Tensor f = layer.ff1.forward(hq);
        ops::gelu(f);
        const Tensor fq = maybeQuantAct(f, act_scheme);
        Tensor f2 = layer.ff2.forward(fq);
        Tensor res2 = ops::add(h, f2);
        h = ops::layerNorm(res2, layer.ln2Gamma, layer.ln2Beta);
    }
    return h;
}

size_t
Transformer::parameterCount() const
{
    size_t n = 0;
    for (const Layer &l : layers) {
        for (const Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            n += lin->w.size() + lin->b.size();
        n += l.ln1Gamma.size() + l.ln1Beta.size() + l.ln2Gamma.size() +
             l.ln2Beta.size();
    }
    return n;
}

std::vector<Tensor *>
Transformer::weightMatrices()
{
    std::vector<Tensor *> out;
    for (Layer &l : layers) {
        for (Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            out.push_back(&lin->w);
    }
    return out;
}

std::vector<const Tensor *>
Transformer::weightMatrices() const
{
    std::vector<const Tensor *> out;
    for (const Layer &l : layers) {
        for (const Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            out.push_back(&lin->w);
    }
    return out;
}

Transformer
quantizeTransformer(const Transformer &model, Scheme &scheme)
{
    Transformer q = model; // deep copies tensors via std::vector copy
    for (Tensor *w : q.weightMatrices()) {
        auto fq = scheme.applyMatrix(w->data(), w->dim(0), w->dim(1),
                                     TensorKind::Weight);
        *w = Tensor(w->shape(), std::move(fq));
    }
    return q;
}

} // namespace nn
} // namespace olive
