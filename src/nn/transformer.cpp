#include "transformer.hpp"

#include <cmath>
#include <vector>

#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "util/parallel.hpp"

namespace olive {
namespace nn {

namespace {

/** Fake-quantize a tensor as an activation if a scheme is given. */
Tensor
maybeQuantAct(const Tensor &x, Scheme *scheme)
{
    if (!scheme)
        return x.clone();
    auto q = scheme->apply(x.data(), TensorKind::Activation);
    return Tensor(x.shape(), std::move(q));
}

} // namespace

Tensor
Linear::forward(const Tensor &x) const
{
    return linearForward(x, w, b);
}

Tensor
selfAttention(const Tensor &x, const Layer &layer, size_t n_heads,
              bool causal, Scheme *act_scheme)
{
    const size_t seq = x.dim(0);
    const size_t d = x.dim(1);
    OLIVE_ASSERT(d % n_heads == 0, "d_model must divide by heads");
    const size_t dh = d / n_heads;
    const float inv_sqrt_dh = 1.0f / std::sqrt(static_cast<float>(dh));

    const Tensor xq = maybeQuantAct(x, act_scheme);
    Tensor q = layer.q.forward(xq);
    Tensor k = layer.k.forward(xq);
    Tensor v = layer.v.forward(xq);

    Tensor ctx({seq, d});
    // Per-head attention: scores = Q_h K_h^T / sqrt(dh), softmax, * V_h.
    // The softmax and context of output row (h, i) depend only on that
    // row's scores, so the (head, row) pairs flatten into one parallel
    // index space with an O(seq) score row as the only scratch, reused
    // across a chunk (grain = seq: one head per chunk); each index
    // computes exactly the serial expression, keeping the forward
    // bit-exact at any thread count (see util/parallel.hpp).
    //
    // Both inner products are register-tiled like tensor/gemm: four
    // score columns share one pass over the query row, and four context
    // lanes share one pass over the softmaxed row.  Each output still
    // accumulates in double over the same ascending index, so the tiled
    // loops are bit-identical to the scalar ones.
    const float *pq = q.raw();
    const float *pk = k.raw();
    const float *pv = v.raw();
    float *pctx = ctx.raw();
    par::parallelFor(0, n_heads * seq, seq, [&](size_t b, size_t e_) {
        std::vector<float> row(seq);
        for (size_t idx = b; idx < e_; ++idx) {
            const size_t h = idx / seq;
            const size_t i = idx % seq;
            const float *qrow = pq + i * d + h * dh;
            const size_t j_end = causal ? i + 1 : seq;
            size_t j = 0;
            for (; j + 4 <= j_end; j += 4) {
                const float *k0 = pk + j * d + h * dh;
                const float *k1 = k0 + d;
                const float *k2 = k1 + d;
                const float *k3 = k2 + d;
                double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
                for (size_t e = 0; e < dh; ++e) {
                    const double qv = qrow[e];
                    a0 += qv * k0[e];
                    a1 += qv * k1[e];
                    a2 += qv * k2[e];
                    a3 += qv * k3[e];
                }
                row[j + 0] = static_cast<float>(a0) * inv_sqrt_dh;
                row[j + 1] = static_cast<float>(a1) * inv_sqrt_dh;
                row[j + 2] = static_cast<float>(a2) * inv_sqrt_dh;
                row[j + 3] = static_cast<float>(a3) * inv_sqrt_dh;
            }
            for (; j < j_end; ++j) {
                const float *krow = pk + j * d + h * dh;
                double acc = 0.0;
                for (size_t e = 0; e < dh; ++e)
                    acc += static_cast<double>(qrow[e]) * krow[e];
                row[j] = static_cast<float>(acc) * inv_sqrt_dh;
            }
            for (; j < seq; ++j)
                row[j] = -1e30f;
            ops::softmaxRow(row);
            float *crow = pctx + i * d + h * dh;
            size_t e = 0;
            for (; e + 4 <= dh; e += 4) {
                double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
                for (size_t jj = 0; jj < seq; ++jj) {
                    const double r = row[jj];
                    const float *vrow = pv + jj * d + h * dh + e;
                    a0 += r * vrow[0];
                    a1 += r * vrow[1];
                    a2 += r * vrow[2];
                    a3 += r * vrow[3];
                }
                crow[e + 0] = static_cast<float>(a0);
                crow[e + 1] = static_cast<float>(a1);
                crow[e + 2] = static_cast<float>(a2);
                crow[e + 3] = static_cast<float>(a3);
            }
            for (; e < dh; ++e) {
                double acc = 0.0;
                for (size_t jj = 0; jj < seq; ++jj) {
                    acc += static_cast<double>(row[jj]) *
                           pv[jj * d + h * dh + e];
                }
                crow[e] = static_cast<float>(acc);
            }
        }
    });

    const Tensor ctxq = maybeQuantAct(ctx, act_scheme);
    return layer.o.forward(ctxq);
}

Tensor
Transformer::forward(const Tensor &x, Scheme *act_scheme) const
{
    OLIVE_ASSERT(x.rank() == 2 && x.dim(1) == dModel,
                 "input must be (seq, d_model)");
    Tensor h = x.clone();
    for (const Layer &layer : layers) {
        // Attention block with residual + post-LN.
        Tensor attn = selfAttention(h, layer, nHeads, causal, act_scheme);
        Tensor res = ops::add(h, attn);
        h = ops::layerNorm(res, layer.ln1Gamma, layer.ln1Beta);

        // FFN block with residual + post-LN.
        const Tensor hq = maybeQuantAct(h, act_scheme);
        Tensor f = layer.ff1.forward(hq);
        ops::gelu(f);
        const Tensor fq = maybeQuantAct(f, act_scheme);
        Tensor f2 = layer.ff2.forward(fq);
        Tensor res2 = ops::add(h, f2);
        h = ops::layerNorm(res2, layer.ln2Gamma, layer.ln2Beta);
    }
    return h;
}

size_t
Transformer::parameterCount() const
{
    size_t n = 0;
    for (const Layer &l : layers) {
        for (const Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            n += lin->w.size() + lin->b.size();
        n += l.ln1Gamma.size() + l.ln1Beta.size() + l.ln2Gamma.size() +
             l.ln2Beta.size();
    }
    return n;
}

std::vector<Tensor *>
Transformer::weightMatrices()
{
    std::vector<Tensor *> out;
    for (Layer &l : layers) {
        for (Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            out.push_back(&lin->w);
    }
    return out;
}

std::vector<const Tensor *>
Transformer::weightMatrices() const
{
    std::vector<const Tensor *> out;
    for (const Layer &l : layers) {
        for (const Linear *lin : {&l.q, &l.k, &l.v, &l.o, &l.ff1, &l.ff2})
            out.push_back(&lin->w);
    }
    return out;
}

Transformer
quantizeTransformer(const Transformer &model, Scheme &scheme)
{
    Transformer q = model; // deep copies tensors via std::vector copy
    for (Tensor *w : q.weightMatrices()) {
        auto fq = scheme.applyMatrix(w->data(), w->dim(0), w->dim(1),
                                     TensorKind::Weight);
        *w = Tensor(w->shape(), std::move(fq));
    }
    return q;
}

} // namespace nn
} // namespace olive
