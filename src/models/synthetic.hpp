/**
 * @file
 * Synthetic weight and activation generation calibrated to the paper's
 * published tensor statistics.
 *
 * The generator plays the role of the HuggingFace checkpoints: every
 * weight matrix gets a Gaussian bulk plus a sparse heavy tail whose
 * per-element outlier probability, pairwise clustering, and Max-sigma
 * extent are taken from the model's OutlierProfile (calibrated against
 * Table 2 and Fig. 2; see DESIGN.md).  Input sequences for LLM
 * experiments are produced with matching activation statistics.
 */

#ifndef OLIVE_MODELS_SYNTHETIC_HPP
#define OLIVE_MODELS_SYNTHETIC_HPP

#include "config.hpp"
#include "nn/transformer.hpp"
#include "tensor/tensor.hpp"
#include "util/random.hpp"

namespace olive {
namespace models {

/**
 * Fill @p t with an outlier-bearing distribution: Gaussian bulk of the
 * given @p sigma plus outliers of probability @p outlier_prob whose
 * magnitude has an exponential profile up to @p max_sigma; a placed
 * outlier is followed by a second adjacent outlier with probability
 * @p cluster_prob (reproducing the paper's outlier-outlier pair rate).
 */
void fillOutlierTensor(Tensor &t, double sigma, double outlier_prob,
                       double cluster_prob, double max_sigma, Rng &rng);

/**
 * Build the scaled-down functional backbone of @p config (eval dims)
 * with synthetic outlier-calibrated weights, deterministically from
 * @p seed.
 */
nn::Transformer makeBackbone(const ModelConfig &config, u64 seed);

/**
 * Generate one input sequence (seq, d) with the model's activation
 * outlier statistics — the stand-in for embedding-layer outputs.
 */
Tensor makeInputSequence(const ModelConfig &config, size_t seq_len,
                         Rng &rng);

/**
 * Systematic activation-outlier pattern: real transformer activation
 * outliers concentrate in a small, fixed set of feature channels with
 * stable magnitudes across examples (the observation underlying
 * LLM.int8 and the reason PTQ activation calibration works at all).
 */
struct ActPattern
{
    std::vector<size_t> channels;   //!< Outlier feature channels.
    std::vector<double> magnitudes; //!< Per-channel magnitude (in sigma).
    double tokenProb = 0.12;        //!< P(channel fires on a token).
    double chan01Prob = 0.45;       //!< Fire rate of the two dominant
                                    //!< channels (they carry information
                                    //!< and fire on many tokens, like
                                    //!< real attention-sink channels).
};

/**
 * Build the model's activation-outlier pattern deterministically: the
 * channel count follows the activation outlier probability, magnitudes
 * follow the exponential tail profile with at least one channel near
 * @p max_sigma_cap (default: the profile's actMaxSigma).
 */
ActPattern makeActPattern(const ModelConfig &config, u64 seed,
                          double max_sigma_cap = -1.0);

/**
 * Input sequence with systematic (channel-stable) activation outliers:
 * Gaussian bulk plus the pattern's channels firing per token.
 *
 * @p chan0_scale / @p chan1_scale scale the two dominant channels'
 * magnitudes.  The task generators encode class information in the
 * *ratio* of the two (scales sum to 2, keeping per-example variance
 * class-independent), which makes outlier magnitudes load-bearing:
 * clipping saturates both channels to the same value and destroys the
 * code, while OVP's abfloat buckets preserve it — the paper's central
 * observation that outliers must not be clipped.
 */
Tensor makeInputSequenceStable(const ModelConfig &config,
                               const ActPattern &pattern, size_t seq_len,
                               Rng &rng, double chan0_scale = 1.0,
                               double chan1_scale = 1.0);

/**
 * Sample the per-tensor Max-sigma profile of a whole model: @p count
 * tensors whose Max-sigma values follow the sorted profile of Fig. 2.
 * Used by the Fig. 2 and Fig. 5 benches.
 */
std::vector<Tensor> makeTensorZoo(const ModelConfig &config, size_t count,
                                  size_t elems_per_tensor, u64 seed);

} // namespace models
} // namespace olive

#endif // OLIVE_MODELS_SYNTHETIC_HPP
