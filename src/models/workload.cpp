#include "workload.hpp"

namespace olive {
namespace models {

std::vector<GemmOp>
inferenceGemms(const ModelConfig &c)
{
    std::vector<GemmOp> ops;
    const u64 b = c.batch;
    const u64 s = c.seqLen;
    const u64 d = c.dModel;
    const u64 h = c.nHeads;
    const u64 dh = d / h;
    const u64 layers = c.layers;

    // Q, K, V projections: (b*s, d) x (d, d), weights resident.
    ops.push_back({"qkv_proj", b * s, d, d, 3 * layers, true});
    // Attention scores: per (batch, head): (s, dh) x (dh, s).
    ops.push_back({"attn_scores", s, s, dh, b * h * layers, false});
    // Attention context: (s, s) x (s, dh).
    ops.push_back({"attn_context", s, dh, s, b * h * layers, false});
    // Output projection: (b*s, d) x (d, d).
    ops.push_back({"out_proj", b * s, d, d, layers, true});
    // FFN.
    ops.push_back({"ffn1", b * s, c.dFf, d, layers, true});
    ops.push_back({"ffn2", b * s, d, c.dFf, layers, true});
    return ops;
}

u64
totalMacs(const std::vector<GemmOp> &ops)
{
    u64 total = 0;
    for (const auto &op : ops)
        total += op.macs();
    return total;
}

u64
totalWeightElems(const std::vector<GemmOp> &ops)
{
    u64 total = 0;
    for (const auto &op : ops) {
        if (op.bIsWeight)
            total += op.bElems() * op.count;
    }
    return total;
}

} // namespace models
} // namespace olive
