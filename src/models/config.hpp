/**
 * @file
 * Model zoo descriptors.
 *
 * Each entry carries two things:
 *  1. the real published architecture dimensions, used by the
 *     performance/energy simulators to enumerate GEMM workloads at the
 *     paper's scale; and
 *  2. an outlier profile calibrated to the paper's published tensor
 *     statistics (Table 2 pair percentages, Fig. 2 Max-sigma range),
 *     used by the synthetic weight/activation generator; plus scaled
 *     "eval" dimensions for the functional accuracy experiments, which
 *     preserve the layer structure at a tractable size.
 */

#ifndef OLIVE_MODELS_CONFIG_HPP
#define OLIVE_MODELS_CONFIG_HPP

#include <string>
#include <vector>

#include "util/common.hpp"

namespace olive {
namespace models {

/** Statistical profile of a model's tensors (see DESIGN.md). */
struct OutlierProfile
{
    double weightOutlierProb = 0.004;  //!< Per-element weight outlier prob.
    double actOutlierProb = 0.005;     //!< Per-element activation prob.
    double clusterProb = 0.08;         //!< P(next value also outlier).
    double weightMaxSigma = 60.0;      //!< Largest weight tensor Max-sigma.
    double actMaxSigma = 150.0;        //!< Largest activation Max-sigma.
};

/** One model's architecture and statistics. */
struct ModelConfig
{
    std::string name;
    size_t layers = 0;
    size_t dModel = 0;
    size_t nHeads = 0;
    size_t dFf = 0;      //!< FFN inner dimension.
    size_t vocab = 0;
    size_t seqLen = 0;   //!< Evaluation sequence length.
    size_t batch = 1;    //!< Simulator batch (paper: 2 GPT-like, 16
                         //!< BERT-like).
    bool decoderOnly = false;
    OutlierProfile profile;

    // Scaled-down dimensions for the functional accuracy pipeline.
    size_t evalLayers = 3;
    size_t evalDModel = 96;
    size_t evalHeads = 4;
    size_t evalDFf = 192;
    size_t evalSeqLen = 24;
    size_t evalVocab = 1024; //!< Vocabulary of the proxy LM experiments.

    /** Approximate parameter count of the full model's GEMM weights. */
    u64 gemmParams() const;
};

/** The five evaluation models of Figs. 9/10 plus OPT-6.7B (Table 9). */
ModelConfig bertBase();
ModelConfig bertLarge();
ModelConfig bartBase();
ModelConfig gpt2Xl();
ModelConfig bloom7b1();
ModelConfig opt67b();

/** Look up a config by name ("BERT-base", "GPT2-XL", ...). */
ModelConfig byName(const std::string &name);

/** The Fig. 9/10 model list in paper order. */
std::vector<ModelConfig> figureModels();

/** The Table 9 LLM list. */
std::vector<ModelConfig> llmModels();

} // namespace models
} // namespace olive

#endif // OLIVE_MODELS_CONFIG_HPP
