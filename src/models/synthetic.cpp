#include "synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace olive {
namespace models {

void
fillOutlierTensor(Tensor &t, double sigma, double outlier_prob,
                  double cluster_prob, double max_sigma, Rng &rng)
{
    const double lo = 3.2; // just beyond the 3-sigma normal boundary
    auto draw_outlier = [&]() {
        // Exponential magnitude profile: most outliers hug the 3-sigma
        // boundary, a few reach max_sigma (the Fig. 2 shape).
        const double u = rng.uniform();
        const double frac = -std::log(1.0 - u * (1.0 - 1e-4)) / 9.2;
        const double mag = lo + (max_sigma - lo) * std::min(1.0, frac);
        const double sign = (rng.uniform() < 0.5) ? -1.0 : 1.0;
        return sign * mag * sigma;
    };

    auto data = t.data();
    bool force_outlier = false;
    for (size_t i = 0; i < data.size(); ++i) {
        const bool is_outlier =
            force_outlier || (rng.uniform() < outlier_prob);
        force_outlier = false;
        if (is_outlier) {
            data[i] = static_cast<float>(draw_outlier());
            // Clustered outliers reproduce the paper's small but nonzero
            // outlier-outlier pair rate (Table 2).
            if (rng.uniform() < cluster_prob)
                force_outlier = true;
        } else {
            data[i] = static_cast<float>(rng.gaussian(0.0, sigma));
        }
    }
}

namespace {

/** Per-tensor Max-sigma draw: skewed toward the low end of [8, hi]. */
double
drawMaxSigma(double hi, Rng &rng)
{
    const double frac = rng.uniform();
    return 8.0 + (hi - 8.0) * frac * frac;
}

nn::Linear
makeLinear(size_t out, size_t in, const OutlierProfile &p, Rng &rng)
{
    nn::Linear lin;
    lin.w = Tensor({out, in});
    lin.b = Tensor({out});
    const double sigma = 1.0 / std::sqrt(static_cast<double>(in));
    fillOutlierTensor(lin.w, sigma, p.weightOutlierProb, p.clusterProb,
                      drawMaxSigma(p.weightMaxSigma, rng), rng);
    for (auto &v : lin.b.data())
        v = static_cast<float>(rng.gaussian(0.0, 0.02));
    return lin;
}

} // namespace

nn::Transformer
makeBackbone(const ModelConfig &config, u64 seed)
{
    Rng rng(seed ^ 0x0b5e55ed00000000ULL);
    nn::Transformer model;
    model.dModel = config.evalDModel;
    model.nHeads = config.evalHeads;
    model.dFf = config.evalDFf;
    model.causal = config.decoderOnly;

    const OutlierProfile &p = config.profile;
    const size_t d = model.dModel;

    // Attenuate the columns of a weight matrix that consume persistent
    // outlier channels: trained networks read outlier channels with
    // small weights (their contribution to the next layer stays O(1)),
    // so the outlier's *relative* quantization error still matters
    // while the outlier does not densely contaminate downstream
    // activations.
    auto attenuate = [](Tensor &w, const std::vector<size_t> &channels,
                        const std::vector<double> &gammas) {
        for (size_t idx = 0; idx < channels.size(); ++idx) {
            const double scale = 3.0 / std::max(3.0, std::fabs(gammas[idx]));
            const size_t ch = channels[idx];
            for (size_t r = 0; r < w.dim(0); ++r)
                w.at(r, ch) *= static_cast<float>(scale);
        }
    };

    std::vector<size_t> prev_spike_channels;
    std::vector<double> prev_spike_gammas;
    for (size_t l = 0; l < config.evalLayers; ++l) {
        nn::Layer layer;
        layer.q = makeLinear(d, d, p, rng);
        layer.k = makeLinear(d, d, p, rng);
        layer.v = makeLinear(d, d, p, rng);
        layer.o = makeLinear(d, d, p, rng);
        layer.ff1 = makeLinear(model.dFf, d, p, rng);
        layer.ff2 = makeLinear(d, model.dFf, p, rng);
        layer.ln1Gamma = Tensor({d});
        layer.ln1Beta = Tensor({d});
        layer.ln2Gamma = Tensor({d});
        layer.ln2Beta = Tensor({d});
        for (size_t j = 0; j < d; ++j) {
            layer.ln1Gamma[j] =
                static_cast<float>(1.0 + rng.gaussian(0.0, 0.05));
            layer.ln2Gamma[j] =
                static_cast<float>(1.0 + rng.gaussian(0.0, 0.05));
        }
        // LayerNorm gamma spikes: the mechanism that regenerates
        // activation outliers inside real transformers (Wei et al.'s
        // gamma-migration observation).  A couple of channels per LN
        // carry gammas of a substantial fraction of the model's
        // activation Max-sigma, so every post-LN tensor shows the
        // Fig. 2 activation profile — which is what breaks int8 on
        // OPT-6.7B and saturates 4-bit abfloat.
        const size_t spikes = 2;
        std::vector<size_t> ln1_channels, ln2_channels;
        std::vector<double> ln1_gammas, ln2_gammas;
        for (int which = 0; which < 2; ++which) {
            Tensor &gamma = which ? layer.ln2Gamma : layer.ln1Gamma;
            auto &channels = which ? ln2_channels : ln1_channels;
            auto &gvals = which ? ln2_gammas : ln1_gammas;
            // Per-LN spike ceiling follows the Fig. 2 sorted profile:
            // most tensors sit at tens of sigma, only a few reach the
            // model's maximum.
            const double ln_cap = drawMaxSigma(p.actMaxSigma, rng);
            // Spike channels occupy distinct OVP pair slots: real LLM
            // outlier channels are dispersed (Table 2's outlier-outlier
            // rate is <= 0.06 %), so two persistent outlier channels
            // never share an adjacent pair.
            for (size_t sidx = 0; sidx < spikes; ++sidx) {
                size_t ch;
                bool slot_taken;
                do {
                    ch = static_cast<size_t>(rng.uniformInt(d));
                    slot_taken = false;
                    for (size_t existing : channels)
                        slot_taken |= (existing / 2 == ch / 2);
                } while (slot_taken);
                channels.push_back(ch);
                const double frac = 0.55 + 0.45 * rng.uniform();
                const double g = ln_cap * frac *
                                 ((rng.uniform() < 0.5) ? -1.0 : 1.0);
                gamma[ch] = static_cast<float>(g);
                gvals.push_back(g);
            }
        }

        // ln1 output feeds the FFN; ln2 output feeds the next layer's
        // attention projections.
        attenuate(layer.ff1.w, ln1_channels, ln1_gammas);
        if (!prev_spike_channels.empty()) {
            attenuate(layer.q.w, prev_spike_channels, prev_spike_gammas);
            attenuate(layer.k.w, prev_spike_channels, prev_spike_gammas);
            attenuate(layer.v.w, prev_spike_channels, prev_spike_gammas);
        }
        prev_spike_channels = ln2_channels;
        prev_spike_gammas = ln2_gammas;

        model.layers.push_back(std::move(layer));
    }
    return model;
}

Tensor
makeInputSequence(const ModelConfig &config, size_t seq_len, Rng &rng)
{
    Tensor x({seq_len, config.evalDModel});
    const OutlierProfile &p = config.profile;
    fillOutlierTensor(x, 1.0, p.actOutlierProb, p.clusterProb,
                      drawMaxSigma(p.actMaxSigma, rng), rng);
    return x;
}

ActPattern
makeActPattern(const ModelConfig &config, u64 seed, double max_sigma_cap)
{
    Rng rng(seed ^ 0xac7ba77e12ULL);
    const OutlierProfile &p = config.profile;
    const double cap =
        (max_sigma_cap > 0.0) ? max_sigma_cap : p.actMaxSigma;

    ActPattern pat;
    // Channel count chosen so the element-level outlier rate matches
    // the profile: channels * tokenProb / d ~= actOutlierProb.
    const size_t d = config.evalDModel;
    const size_t n_channels = std::max<size_t>(
        1, static_cast<size_t>(p.actOutlierProb * static_cast<double>(d) /
                                   pat.tokenProb +
                               0.5));
    // At least the two dominant channels (real LLMs always have a
    // couple of high-magnitude attention-sink channels).
    const size_t total = std::max<size_t>(2, n_channels);
    for (size_t c = 0; c < total; ++c) {
        // Distinct OVP pair slots: persistent outlier channels are
        // dispersed in real models (Table 2), so no two of them may be
        // adjacent pair partners.
        size_t ch;
        bool slot_taken;
        do {
            ch = static_cast<size_t>(rng.uniformInt(d));
            slot_taken = false;
            for (size_t existing : pat.channels)
                slot_taken |= (existing / 2 == ch / 2);
        } while (slot_taken);
        pat.channels.push_back(ch);
        // Exponential tail profile, with the two dominant channels
        // pinned near the model's maximum.
        if (c < 2) {
            pat.magnitudes.push_back(cap);
        } else {
            const double frac =
                -std::log(1.0 - rng.uniform() * (1.0 - 1e-4)) / 9.2;
            pat.magnitudes.push_back(3.5 +
                                     (cap - 3.5) * std::min(1.0, frac));
        }
    }
    return pat;
}

Tensor
makeInputSequenceStable(const ModelConfig &config, const ActPattern &pattern,
                        size_t seq_len, Rng &rng, double chan0_scale,
                        double chan1_scale)
{
    Tensor x({seq_len, config.evalDModel});
    for (auto &v : x.data())
        v = static_cast<float>(rng.gaussian());
    for (size_t t = 0; t < seq_len; ++t) {
        for (size_t c = 0; c < pattern.channels.size(); ++c) {
            const double fire_prob =
                (c < 2) ? pattern.chan01Prob : pattern.tokenProb;
            if (rng.uniform() >= fire_prob)
                continue;
            const double jitter = 0.9 + 0.2 * rng.uniform();
            const double sign = (rng.uniform() < 0.5) ? -1.0 : 1.0;
            const double scale =
                (c == 0) ? chan0_scale : (c == 1) ? chan1_scale : 1.0;
            x.at(t, pattern.channels[c]) = static_cast<float>(
                sign * pattern.magnitudes[c] * jitter * scale);
        }
    }
    return x;
}

std::vector<Tensor>
makeTensorZoo(const ModelConfig &config, size_t count,
              size_t elems_per_tensor, u64 seed)
{
    Rng rng(seed ^ 0x200f00ULL);
    std::vector<Tensor> zoo;
    zoo.reserve(count);
    const OutlierProfile &p = config.profile;
    const double hi = p.actMaxSigma;
    const double lo = 6.0;
    for (size_t i = 0; i < count; ++i) {
        // Sorted geometric Max-sigma profile from lo up to the model's
        // maximum, matching the rising curves of Fig. 2.
        const double frac = (count > 1)
                                ? static_cast<double>(i) /
                                      static_cast<double>(count - 1)
                                : 1.0;
        const double max_sigma = lo * std::pow(hi / lo, frac);
        Tensor t({elems_per_tensor});
        fillOutlierTensor(t, 1.0, p.actOutlierProb, p.clusterProb,
                          max_sigma, rng);
        // Pin the extreme value relative to the tensor's *measured*
        // standard deviation (the heavy tail inflates sigma above the
        // bulk's 1.0) so the profiled Max-sigma matches the target; one
        // fixed-point iteration compensates for the pin's own
        // contribution to sigma.
        const size_t pos = static_cast<size_t>(rng.uniformInt(t.size()));
        for (int iter = 0; iter < 3; ++iter) {
            const double measured = stats::stddev(t.data());
            t[pos] =
                static_cast<float>(max_sigma * std::max(measured, 1e-6));
        }
        zoo.push_back(std::move(t));
    }
    return zoo;
}

} // namespace models
} // namespace olive
