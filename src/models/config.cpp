#include "config.hpp"

namespace olive {
namespace models {

u64
ModelConfig::gemmParams() const
{
    // Q/K/V/O projections plus the two FFN matrices per layer.
    const u64 per_layer =
        4ull * dModel * dModel + 2ull * dModel * dFf;
    return per_layer * layers;
}

ModelConfig
bertBase()
{
    ModelConfig c;
    c.name = "BERT-base";
    c.layers = 12;
    c.dModel = 768;
    c.nHeads = 12;
    c.dFf = 3072;
    c.vocab = 30522;
    c.seqLen = 128;
    c.batch = 16;
    c.decoderOnly = false;
    // Table 2: 0.84% outlier-normal, 0.04% outlier-outlier pairs.
    c.profile.weightOutlierProb = 0.0042;
    c.profile.actOutlierProb = 0.0050;
    c.profile.clusterProb = 0.095;
    c.profile.weightMaxSigma = 25.0;
    c.profile.actMaxSigma = 325.0; // Fig. 2b: up to 325 sigma.
    return c;
}

ModelConfig
bertLarge()
{
    ModelConfig c = bertBase();
    c.name = "BERT-large";
    c.layers = 24;
    c.dModel = 1024;
    c.nHeads = 16;
    c.dFf = 4096;
    // Table 2: 0.71% / 0.05%.
    c.profile.weightOutlierProb = 0.0036;
    c.profile.clusterProb = 0.14;
    c.profile.weightMaxSigma = 28.0;
    c.profile.actMaxSigma = 280.0;
    c.evalLayers = 4;
    return c;
}

ModelConfig
bartBase()
{
    ModelConfig c = bertBase();
    c.name = "BART-base";
    // 6 encoder + 6 decoder layers, d 768; modelled as 12 GEMM-equivalent
    // layers for the simulators.
    c.layers = 12;
    c.dModel = 768;
    c.nHeads = 12;
    c.dFf = 3072;
    c.vocab = 50265;
    c.profile.weightOutlierProb = 0.0040;
    c.profile.clusterProb = 0.10;
    c.profile.weightMaxSigma = 24.0;
    c.profile.actMaxSigma = 240.0;
    return c;
}

ModelConfig
gpt2Xl()
{
    ModelConfig c;
    c.name = "GPT2-XL";
    c.layers = 48;
    c.dModel = 1600;
    c.nHeads = 25;
    c.dFf = 6400;
    c.vocab = 50257;
    c.seqLen = 512;
    c.batch = 2;
    c.decoderOnly = true;
    // Table 2: 1.14% / 0.06%.
    c.profile.weightOutlierProb = 0.0057;
    c.profile.actOutlierProb = 0.0065;
    c.profile.clusterProb = 0.105;
    c.profile.weightMaxSigma = 30.0;
    c.profile.actMaxSigma = 120.0;
    c.evalLayers = 4;
    c.evalDModel = 128;
    c.evalDFf = 256;
    return c;
}

ModelConfig
bloom7b1()
{
    ModelConfig c;
    c.name = "BLOOM-7B1";
    c.layers = 30;
    c.dModel = 4096;
    c.nHeads = 32;
    c.dFf = 16384;
    c.vocab = 250880;
    c.seqLen = 512;
    c.batch = 2;
    c.decoderOnly = true;
    c.profile.weightOutlierProb = 0.0038;
    c.profile.actOutlierProb = 0.0055;
    c.profile.clusterProb = 0.10;
    c.profile.weightMaxSigma = 30.0;
    c.profile.actMaxSigma = 110.0;
    c.evalLayers = 4;
    c.evalDModel = 128;
    c.evalDFf = 256;
    return c;
}

ModelConfig
opt67b()
{
    ModelConfig c;
    c.name = "OPT-6.7B";
    c.layers = 32;
    c.dModel = 4096;
    c.nHeads = 32;
    c.dFf = 16384;
    c.vocab = 50272;
    c.seqLen = 512;
    c.batch = 2;
    c.decoderOnly = true;
    // Table 2: 0.64% / 0.03%; OPT-6.7B is the model whose systematic,
    // extremely large activation outliers break int8 (Dettmers et al.).
    c.profile.weightOutlierProb = 0.0032;
    c.profile.actOutlierProb = 0.0100;
    c.profile.clusterProb = 0.094;
    c.profile.weightMaxSigma = 35.0;
    c.profile.actMaxSigma = 325.0;
    c.evalLayers = 4;
    c.evalDModel = 128;
    c.evalDFf = 256;
    return c;
}

ModelConfig
byName(const std::string &name)
{
    for (const auto &c : {bertBase(), bertLarge(), bartBase(), gpt2Xl(),
                          bloom7b1(), opt67b()}) {
        if (c.name == name)
            return c;
    }
    OLIVE_FATAL("unknown model: " + name);
}

std::vector<ModelConfig>
figureModels()
{
    return {bertBase(), bertLarge(), bartBase(), gpt2Xl(), bloom7b1()};
}

std::vector<ModelConfig>
llmModels()
{
    return {gpt2Xl(), bloom7b1(), opt67b()};
}

} // namespace models
} // namespace olive
