/**
 * @file
 * GEMM workload enumeration for the performance simulators.
 *
 * One inference pass of a transformer is, to first order, a fixed list
 * of GEMMs.  The simulators consume this list: each entry carries the
 * matrix dimensions, a repetition count (per-head / per-layer batching),
 * and whether the B operand is a resident weight matrix (projections and
 * FFN) or a dynamic activation (the attention score and context GEMMs).
 * Weight-only schemes such as GOBO only compress the weight operands.
 */

#ifndef OLIVE_MODELS_WORKLOAD_HPP
#define OLIVE_MODELS_WORKLOAD_HPP

#include <string>
#include <vector>

#include "config.hpp"

namespace olive {
namespace models {

/** One (possibly batched) GEMM: C(m,n) += A(m,k) * B(k,n), count times. */
struct GemmOp
{
    std::string name;
    u64 m = 0;
    u64 n = 0;
    u64 k = 0;
    u64 count = 1;       //!< Repetitions (layers x heads etc.).
    bool bIsWeight = true; //!< B operand is a static weight matrix.

    /** Multiply-accumulate operations across all repetitions. */
    u64 macs() const { return m * n * k * count; }

    /** Elements of the A operand (read per repetition). */
    u64 aElems() const { return m * k; }

    /** Elements of the B operand. */
    u64 bElems() const { return k * n; }

    /** Elements of the C result. */
    u64 cElems() const { return m * n; }
};

/**
 * The GEMM list of one inference pass of @p config at its full
 * published dimensions with the configured batch and sequence length.
 */
std::vector<GemmOp> inferenceGemms(const ModelConfig &config);

/** Total MACs of a workload. */
u64 totalMacs(const std::vector<GemmOp> &ops);

/** Total weight elements (the model's resident GEMM parameters). */
u64 totalWeightElems(const std::vector<GemmOp> &ops);

} // namespace models
} // namespace olive

#endif // OLIVE_MODELS_WORKLOAD_HPP
