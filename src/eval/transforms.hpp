/**
 * @file
 * The Fig. 3 tensor transforms: clipping outliers versus pruning
 * victims versus pruning random normal values, all at FP32.
 *
 * These are not quantizers — they isolate the paper's motivating
 * observation: the ~1 % of outlier values is load-bearing (clipping
 * them collapses accuracy) while the values adjacent to outliers (the
 * prospective victims) are as expendable as random normal values.
 */

#ifndef OLIVE_EVAL_TRANSFORMS_HPP
#define OLIVE_EVAL_TRANSFORMS_HPP

#include "quant/scheme.hpp"
#include "util/common.hpp"

namespace olive {
namespace eval {

/** Clip every value beyond k sigma to +-k sigma (FP32 otherwise). */
class ClipOutliersScheme : public Scheme
{
  public:
    explicit ClipOutliersScheme(double k_sigma = 3.0);
    std::string name() const override { return "Clipping Outlier"; }
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return 32; }
    int activationBits() const override { return 32; }
    bool transformsActivations() const override { return true; }

  private:
    double kSigma_;
};

/**
 * Zero the victim of every outlier-bearing pair (the adjacent normal
 * value, or the smaller outlier of an outlier-outlier pair); keep
 * everything else FP32.
 */
class PruneVictimsScheme : public Scheme
{
  public:
    explicit PruneVictimsScheme(double k_sigma = 3.0);
    std::string name() const override { return "Pruning Victim"; }
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return 32; }
    int activationBits() const override { return 32; }
    bool transformsActivations() const override { return true; }

  private:
    double kSigma_;
};

/**
 * Zero the same number of values as the tensor has outliers, chosen
 * uniformly at random among normal values (deterministic per seed).
 */
class PruneRandomScheme : public Scheme
{
  public:
    explicit PruneRandomScheme(double k_sigma = 3.0, u64 seed = 17);
    std::string name() const override { return "Pruning Normal Value"; }
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return 32; }
    int activationBits() const override { return 32; }
    bool transformsActivations() const override { return true; }

  private:
    double kSigma_;
    u64 seed_;
};

} // namespace eval
} // namespace olive

#endif // OLIVE_EVAL_TRANSFORMS_HPP
