/**
 * @file
 * Scheme registry and the per-site activation calibration wrapper.
 *
 * makeScheme() builds any quantization method in the repository by its
 * registry id, giving the benchmark harness one switchboard over OliVe,
 * every baseline, and the Fig. 3 transforms.
 *
 * SiteCachedScheme implements the realistic activation-PTQ flow: the
 * first forward pass acts as the calibration batch — each activation
 * site (a fixed position in the forward graph) calibrates once and
 * freezes its quantizer, which every subsequent example reuses.
 */

#ifndef OLIVE_EVAL_SCHEMES_HPP
#define OLIVE_EVAL_SCHEMES_HPP

#include <string>
#include <vector>

#include "quant/scheme.hpp"

namespace olive {
namespace eval {

/**
 * Registry ids:
 *   "fp32", "olive4", "olive8", "olive4-weights",
 *   "int4", "int6", "int8",
 *   "ant4", "ant8",
 *   "os4", "os6",
 *   "q8bert"  (8-bit GEMM quantization a la Q8BERT),
 *   "gobo", "gobo3",
 *   "olaccel", "adafloat4", "adafloat8",
 *   "clip-outliers", "prune-victims", "prune-random".
 */
SchemePtr makeScheme(const std::string &id);

/** All registry ids (for tests and docs). */
std::vector<std::string> schemeRegistry();

/** Per-site frozen activation quantization (see file comment). */
class SiteCachedScheme : public Scheme
{
  public:
    /**
     * @param inner The underlying scheme; must outlive this object.
     * @param calib_examples Tensors accumulated per site before the
     *        quantizer freezes (the PTQ calibration batch size).
     */
    explicit SiteCachedScheme(Scheme &inner, size_t calib_examples = 8);

    /** Reset the site cursor; call before every forward pass. */
    void beginForward() { cursor_ = 0; }

    /** Number of distinct sites seen so far. */
    size_t siteCount() const { return sites_.size(); }

    std::string name() const override { return inner_.name(); }
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return inner_.weightBits(); }
    int activationBits() const override { return inner_.activationBits(); }

  private:
    struct Site
    {
        std::vector<float> calibBuffer; //!< Concatenated calib tensors.
        size_t seen = 0;                //!< Examples accumulated.
        Applier applier;                //!< Set once frozen.
    };

    Scheme &inner_;
    size_t calibExamples_;
    std::vector<Site> sites_;
    size_t cursor_ = 0;
};

} // namespace eval
} // namespace olive

#endif // OLIVE_EVAL_SCHEMES_HPP
