/**
 * @file
 * Teacher-student proxy perplexity for the Table 9 LLM experiments.
 *
 * A synthetic decoder-only LM (tied input/output embeddings over a
 * proxy vocabulary) plays the FP32 teacher.  Evaluation text is sampled
 * from the teacher itself, so the teacher's perplexity equals its own
 * output entropy; the softmax temperature is calibrated per
 * (model, dataset) pair so the FP32 row lands at the paper's value.
 * A quantized student is then scored on the same text: quantization
 * error on outlier-bearing tensors distorts its logits and raises its
 * cross-entropy — exactly the degradation mechanism Table 9 measures.
 * The proxy's perplexity ceiling is the vocabulary size (reached when a
 * scheme destroys the logits, e.g. int4).
 */

#ifndef OLIVE_EVAL_PERPLEXITY_HPP
#define OLIVE_EVAL_PERPLEXITY_HPP

#include <span>
#include <vector>

#include "models/config.hpp"
#include "nn/transformer.hpp"
#include "schemes.hpp"
#include "tensor/tensor.hpp"
#include "util/random.hpp"

namespace olive {
namespace eval {

/** A decoder-only LM with tied embeddings. */
struct LmModel
{
    Tensor embedding;          //!< (vocab, d), tied in/out.
    nn::Transformer backbone;  //!< Causal.
    double temperature = 1.0;  //!< Applied to output logits.
    size_t vocab = 0;

    /**
     * Next-token logit rows for a token sequence: returns
     * (len, vocab), already divided by the temperature.  @p act_scheme
     * quantizes backbone activations (see nn::Transformer::forward).
     */
    Tensor logits(const std::vector<int> &tokens,
                  Scheme *act_scheme = nullptr) const;

    /**
     * Project backbone hidden states (rows, d) onto the tied embedding
     * and apply the temperature — the output half of logits(), shared
     * with the serving engine's incremental decode so the two paths
     * cannot drift arithmetically.
     */
    Tensor logitsFromHidden(const Tensor &h) const;

    /** Copy token embedding rows into a (tokens.size(), d) input. */
    Tensor embed(std::span<const int> tokens) const;
};

/** Build the synthetic LM for @p config (eval dims). */
LmModel makeLm(const models::ModelConfig &config, u64 seed);

/** Token sequences used as evaluation text. */
using TokenData = std::vector<std::vector<int>>;

/** Sample @p n sequences of @p len tokens from the (FP32) model. */
TokenData sampleText(const LmModel &model, size_t n, size_t len, Rng &rng);

/**
 * Perplexity of @p model on @p text: exp of the mean next-token
 * cross-entropy.  @p act_scheme optionally quantizes activations.
 */
double perplexity(const LmModel &model, const TokenData &text,
                  Scheme *act_scheme = nullptr);

/**
 * Binary-search the temperature so the model's own perplexity on its
 * own samples hits @p target_ppl, then regenerate the final text.
 * Returns the text; the model's temperature is updated in place.
 */
TokenData calibrateToTarget(LmModel &model, double target_ppl, size_t n,
                            size_t len, u64 seed);

/** Quantize an LM's backbone weights with @p scheme (embeddings FP32). */
LmModel quantizeLm(const LmModel &model, Scheme &scheme);

/** One Table 9 cell: perplexity of scheme @p id on calibrated text. */
double table9Cell(const LmModel &fp32_model, const TokenData &text,
                  const std::string &scheme_id);

} // namespace eval
} // namespace olive

#endif // OLIVE_EVAL_PERPLEXITY_HPP
