#include "perplexity.hpp"

#include <cmath>

#include "models/synthetic.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"

namespace olive {
namespace eval {

Tensor
LmModel::embed(std::span<const int> tokens) const
{
    OLIVE_ASSERT(!tokens.empty(), "embedding an empty sequence");
    const size_t d = backbone.dModel;
    Tensor x({tokens.size(), d});
    for (size_t t = 0; t < tokens.size(); ++t) {
        const auto tok = static_cast<size_t>(tokens[t]);
        OLIVE_ASSERT(tokens[t] >= 0 && tok < vocab, "token out of range");
        for (size_t j = 0; j < d; ++j)
            x.at(t, j) = embedding.at(tok, j);
    }
    return x;
}

Tensor
LmModel::logitsFromHidden(const Tensor &h) const
{
    Tensor lg = matmulTransB(h, embedding);
    ops::scale(lg, static_cast<float>(1.0 / temperature));
    return lg;
}

Tensor
LmModel::logits(const std::vector<int> &tokens, Scheme *act_scheme) const
{
    const Tensor x = embed(tokens);
    const Tensor h = backbone.forward(x, act_scheme);
    return logitsFromHidden(h);
}

LmModel
makeLm(const models::ModelConfig &config, u64 seed)
{
    LmModel lm;
    lm.vocab = config.evalVocab;
    lm.backbone = models::makeBackbone(config, seed);
    lm.backbone.causal = true;
    lm.embedding = Tensor({lm.vocab, config.evalDModel});
    Rng rng(seed ^ 0xe4bedULL);
    // Embeddings carry the model's activation outlier structure: token
    // vectors are the activations the first layer sees.
    models::fillOutlierTensor(lm.embedding, 1.0,
                              config.profile.actOutlierProb,
                              config.profile.clusterProb,
                              config.profile.actMaxSigma * 0.5, rng);
    return lm;
}

TokenData
sampleText(const LmModel &model, size_t n, size_t len, Rng &rng)
{
    TokenData text;
    text.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        std::vector<int> seq;
        seq.push_back(static_cast<int>(rng.uniformInt(model.vocab)));
        while (seq.size() < len) {
            const Tensor lg = model.logits(seq);
            auto row = lg.row(lg.dim(0) - 1);
            std::vector<float> p(row.begin(), row.end());
            ops::softmaxRow(p);
            // Inverse-CDF sampling.
            double u = rng.uniform();
            int tok = static_cast<int>(model.vocab) - 1;
            for (size_t v = 0; v < p.size(); ++v) {
                u -= p[v];
                if (u <= 0.0) {
                    tok = static_cast<int>(v);
                    break;
                }
            }
            seq.push_back(tok);
        }
        text.push_back(std::move(seq));
    }
    return text;
}

double
perplexity(const LmModel &model, const TokenData &text, Scheme *act_scheme)
{
    SiteCachedScheme *cache = dynamic_cast<SiteCachedScheme *>(act_scheme);
    double ce_sum = 0.0;
    size_t count = 0;
    for (const auto &seq : text) {
        if (seq.size() < 2)
            continue;
        if (cache)
            cache->beginForward();
        const Tensor lg = model.logits(seq, act_scheme);
        for (size_t t = 0; t + 1 < seq.size(); ++t) {
            ce_sum += ops::crossEntropyRow(lg.row(t), seq[t + 1]);
            ++count;
        }
    }
    OLIVE_ASSERT(count > 0, "no next-token predictions");
    return std::exp(ce_sum / static_cast<double>(count));
}

TokenData
calibrateToTarget(LmModel &model, double target_ppl, size_t n, size_t len,
                  u64 seed)
{
    OLIVE_ASSERT(target_ppl > 1.0 &&
                     target_ppl < static_cast<double>(model.vocab),
                 "target perplexity must be within (1, vocab)");
    // Log-space binary search: raw logit magnitudes vary wildly with
    // the embedding outlier profile, so the useful temperature can sit
    // anywhere over several orders of magnitude.
    double lo = 0.05, hi = 5000.0;
    const size_t calib_n = n;
    for (int iter = 0; iter < 18; ++iter) {
        model.temperature = std::sqrt(lo * hi);
        Rng rng(seed + 101);
        const TokenData text = sampleText(model, calib_n, len, rng);
        const double ppl = perplexity(model, text);
        if (ppl < target_ppl)
            lo = model.temperature;
        else
            hi = model.temperature;
    }
    model.temperature = std::sqrt(lo * hi);
    Rng rng(seed + 101);
    return sampleText(model, n, len, rng);
}

LmModel
quantizeLm(const LmModel &model, Scheme &scheme)
{
    LmModel q;
    q.vocab = model.vocab;
    q.temperature = model.temperature;
    q.embedding = model.embedding.clone();
    q.backbone = nn::quantizeTransformer(model.backbone, scheme);
    return q;
}

double
table9Cell(const LmModel &fp32_model, const TokenData &text,
           const std::string &scheme_id)
{
    if (scheme_id == "fp32")
        return perplexity(fp32_model, text);
    const SchemePtr scheme = makeScheme(scheme_id);
    const LmModel student = quantizeLm(fp32_model, *scheme);
    const bool quant_acts = scheme->transformsActivations();
    SiteCachedScheme cache(*scheme);
    return perplexity(student, text, quant_acts ? &cache : nullptr);
}

} // namespace eval
} // namespace olive
