#include "accuracy.hpp"

#include <cmath>
#include <algorithm>
#include "models/synthetic.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace olive {
namespace eval {

namespace {

constexpr size_t kHeadHidden = 32;
constexpr int kHeadEpochs = 220;
constexpr float kHeadLr = 0.5f;

/**
 * Noise-augmentation strength for head training, relative to the
 * per-feature RMS.  Fine-tuned checkpoints have robust decision margins
 * (flat minima); training the proxy head on jittered features
 * reproduces that robustness, so mild quantization noise (4-bit OliVe,
 * ~10 % relative feature MSE) is absorbed while catastrophic schemes
 * (int4 clipping, ~35 %+) still collapse.
 */
constexpr float kAugmentNoise = 0.45f;
constexpr int kAugmentReplicas = 4;

/** Stack @p feats with noisy replicas for robust head training. */
Tensor
augmentFeatures(const Tensor &feats, std::vector<int> &labels, Rng &rng)
{
    const size_t n = feats.dim(0);
    const size_t d = feats.dim(1);
    // Per-feature RMS sets the noise scale.
    std::vector<float> rms(d, 0.0f);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < d; ++j)
            rms[j] += feats.at(i, j) * feats.at(i, j);
    for (size_t j = 0; j < d; ++j)
        rms[j] = std::sqrt(rms[j] / static_cast<float>(n));

    Tensor out({n * (1 + kAugmentReplicas), d});
    std::vector<int> out_labels;
    out_labels.reserve(out.dim(0));
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < d; ++j)
            out.at(i, j) = feats.at(i, j);
        out_labels.push_back(labels[i]);
    }
    for (int r = 0; r < kAugmentReplicas; ++r) {
        for (size_t i = 0; i < n; ++i) {
            const size_t row = n * (1 + static_cast<size_t>(r)) + i;
            for (size_t j = 0; j < d; ++j) {
                out.at(row, j) =
                    feats.at(i, j) +
                    kAugmentNoise * rms[j] *
                        static_cast<float>(rng.gaussian());
            }
            out_labels.push_back(labels[i]);
        }
    }
    labels = std::move(out_labels);
    return out;
}

/**
 * Mean-pool a (seq, d) tensor into a d vector and layer-normalize the
 * result.  The normalization models the final LayerNorm every
 * transformer applies before its pooler/classifier; it absorbs the
 * systematic distribution drift a quantized backbone introduces, which
 * otherwise shifts all features coherently and defeats the head.
 */
void
meanPool(const Tensor &h, std::span<float> out)
{
    const size_t seq = h.dim(0);
    const size_t d = h.dim(1);
    for (size_t j = 0; j < d; ++j)
        out[j] = 0.0f;
    for (size_t t = 0; t < seq; ++t) {
        for (size_t j = 0; j < d; ++j)
            out[j] += h.at(t, j);
    }
    const float inv = 1.0f / static_cast<float>(seq);
    for (size_t j = 0; j < d; ++j)
        out[j] *= inv;

    double mean = 0.0;
    for (size_t j = 0; j < d; ++j)
        mean += out[j];
    mean /= static_cast<double>(d);
    double var = 0.0;
    for (size_t j = 0; j < d; ++j) {
        const double dv = out[j] - mean;
        var += dv * dv;
    }
    var /= static_cast<double>(d);
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + 1e-6));
    for (size_t j = 0; j < d; ++j)
        out[j] = (out[j] - static_cast<float>(mean)) * inv_std;
}

/**
 * Per-token LayerNorm of a (seq, d) feature tensor — the final LN every
 * transformer applies before a token-level head; absorbs the coherent
 * per-token scale the gamma-spike channels impose.
 */
Tensor
lnRows(const Tensor &h)
{
    Tensor out({h.dim(0), h.dim(1)});
    const size_t d = h.dim(1);
    // Rows normalize independently and each chunk writes only its own
    // output rows, so the loop parallelizes deterministically (the span
    // evaluator calls this once per example, outside any parallel
    // region).
    par::parallelFor(0, h.dim(0), 8, [&](size_t tb, size_t te) {
        for (size_t t = tb; t < te; ++t) {
            const float *hrow = h.raw() + t * d;
            float *orow = out.raw() + t * d;
            double mean = 0.0;
            for (size_t j = 0; j < d; ++j)
                mean += hrow[j];
            mean /= static_cast<double>(d);
            double var = 0.0;
            for (size_t j = 0; j < d; ++j) {
                const double dv = hrow[j] - mean;
                var += dv * dv;
            }
            var /= static_cast<double>(d);
            const double inv = 1.0 / std::sqrt(var + 1e-6);
            for (size_t j = 0; j < d; ++j)
                orow[j] = static_cast<float>((hrow[j] - mean) * inv);
        }
    });
    return out;
}

} // namespace

TaskEvaluator::TaskEvaluator(const models::ModelConfig &config,
                             const TaskSpec &task, u64 seed, size_t train_n,
                             size_t test_n)
    : config_(config),
      task_(task),
      seed_(seed),
      backbone_(models::makeBackbone(config, seed)),
      // The head trains on clean labels; label noise only caps the test
      // metric (the task's irreducible difficulty).
      train_(makeClassifData(
          [&] {
              TaskSpec t = task;
              t.labelNoise = 0.0;
              return t;
          }(),
          config, train_n, seed, seed * 7919 + 11)),
      test_(makeClassifData(task, config, test_n, seed,
                            seed * 104729 + 23))
{
    fp32TrainFeatures_ = features(backbone_, nullptr, train_);
    Rng head_rng(seed ^ 0xaeadULL);
    head_.emplace(config_.evalDModel, kHeadHidden, task_.classes, head_rng);
    std::vector<int> aug_labels = train_.labels;
    const Tensor aug =
        augmentFeatures(fp32TrainFeatures_, aug_labels, head_rng);
    head_->fit(aug, aug_labels, kHeadEpochs, kHeadLr);
}

Tensor
TaskEvaluator::features(const nn::Transformer &backbone, Scheme *act_scheme,
                        const ClassifData &data) const
{
    Tensor out({data.x.size(), config_.evalDModel});
    if (!act_scheme) {
        // FP32 features: the forwards are independent (no activation
        // scheme, hence no site-calibration state), so the examples
        // parallelize; each writes only its own output row.
        par::parallelFor(0, data.x.size(), 1, [&](size_t b, size_t e) {
            for (size_t i = b; i < e; ++i) {
                const Tensor h = backbone.forward(data.x[i], nullptr);
                meanPool(h, out.row(i));
            }
        });
        return out;
    }
    // Quantized activations: SiteCachedScheme calibrates sites in call
    // order across the first forwards, so this path stays sequential.
    SiteCachedScheme *cache = dynamic_cast<SiteCachedScheme *>(act_scheme);
    for (size_t i = 0; i < data.x.size(); ++i) {
        if (cache)
            cache->beginForward();
        const Tensor h = backbone.forward(data.x[i], act_scheme);
        meanPool(h, out.row(i));
    }
    return out;
}

double
TaskEvaluator::score(const std::vector<int> &pred,
                     const std::vector<int> &labels) const
{
    switch (task_.metric) {
      case Metric::AccuracyPct:
        return stats::accuracyPct(pred, labels);
      case Metric::Matthews:
        return 100.0 * stats::matthews(pred, labels);
      case Metric::PearsonPct: {
        std::vector<float> p(pred.begin(), pred.end());
        std::vector<float> l(labels.begin(), labels.end());
        return 100.0 * stats::pearson(p, l);
      }
    }
    OLIVE_PANIC("unknown Metric");
}

double
TaskEvaluator::evalFp32()
{
    const Tensor feats = features(backbone_, nullptr, test_);
    return score(head_->predict(feats), test_.labels);
}

double
TaskEvaluator::evalScheme(Scheme &scheme, bool qat)
{
    const nn::Transformer qbackbone =
        nn::quantizeTransformer(backbone_, scheme);

    const bool quant_acts = scheme.transformsActivations();
    SiteCachedScheme act_cache(scheme);
    Scheme *act = quant_acts ? &act_cache : nullptr;

    nn::ClassifierHead head = *head_;
    if (qat) {
        // Quantization-aware fine-tuning: refit the head on quantized
        // train features so downstream parameters adapt to the noise.
        const Tensor qtrain = features(qbackbone, act, train_);
        Rng head_rng(seed_ ^ 0xaeadULL);
        head = nn::ClassifierHead(config_.evalDModel, kHeadHidden,
                                  task_.classes, head_rng);
        std::vector<int> aug_labels = train_.labels;
        const Tensor aug = augmentFeatures(qtrain, aug_labels, head_rng);
        head.fit(aug, aug_labels, kHeadEpochs, kHeadLr);
    }

    const Tensor feats = features(qbackbone, act, test_);
    return score(head.predict(feats), test_.labels);
}

SpanEvaluator::SpanEvaluator(const models::ModelConfig &config, bool v2,
                             u64 seed, size_t train_n, size_t test_n)
    : config_(config),
      seed_(seed),
      backbone_(models::makeBackbone(config, seed)),
      train_(makeSpanData(config, train_n, seed, seed * 6151 + 3, v2)),
      test_(makeSpanData(config, test_n, seed, seed * 75403 + 5, v2))
{
    Rng head_rng(seed ^ 0x59a9ULL);
    head_.emplace(config_.evalDModel, head_rng);
    // A few epochs of per-example SGD on FP32 token features.
    for (int epoch = 0; epoch < 60; ++epoch) {
        for (size_t i = 0; i < train_.x.size(); ++i) {
            const Tensor h =
                lnRows(backbone_.forward(train_.x[i], nullptr));
            head_->trainStep(h, train_.start[i], train_.end[i], 0.05f);
        }
    }
}

SpanEvaluator::Result
SpanEvaluator::evalBackbone(const nn::Transformer &backbone,
                            Scheme *act_scheme)
{
    SiteCachedScheme *cache = dynamic_cast<SiteCachedScheme *>(act_scheme);
    double f1_sum = 0.0;
    size_t exact = 0;
    for (size_t i = 0; i < test_.x.size(); ++i) {
        if (cache)
            cache->beginForward();
        const Tensor h =
            lnRows(backbone.forward(test_.x[i], act_scheme));
        const auto [ps, pe] = head_->predictSpan(h);
        const int gs = test_.start[i];
        const int ge = test_.end[i];
        if (ps == gs && pe == ge)
            ++exact;
        const int inter_lo = std::max(ps, gs);
        const int inter_hi = std::min(pe, ge);
        const int overlap = std::max(0, inter_hi - inter_lo + 1);
        const int len_p = pe - ps + 1;
        const int len_g = ge - gs + 1;
        if (overlap > 0)
            f1_sum += 2.0 * overlap / static_cast<double>(len_p + len_g);
    }
    const double n = static_cast<double>(test_.x.size());
    return {100.0 * f1_sum / n, 100.0 * static_cast<double>(exact) / n};
}

SpanEvaluator::Result
SpanEvaluator::evalFp32()
{
    return evalBackbone(backbone_, nullptr);
}

SpanEvaluator::Result
SpanEvaluator::evalScheme(Scheme &scheme)
{
    const nn::Transformer qbackbone =
        nn::quantizeTransformer(backbone_, scheme);
    const bool quant_acts = scheme.transformsActivations();
    SiteCachedScheme act_cache(scheme);
    return evalBackbone(qbackbone, quant_acts ? &act_cache : nullptr);
}

} // namespace eval
} // namespace olive
