#include "schemes.hpp"

#include <algorithm>
#include "baselines/adaptivfloat.hpp"
#include "baselines/ant.hpp"
#include "baselines/gobo.hpp"
#include "baselines/olaccel.hpp"
#include "baselines/outlier_suppression.hpp"
#include "baselines/uniform.hpp"
#include "transforms.hpp"
#include "util/common.hpp"

namespace olive {
namespace eval {

SchemePtr
makeScheme(const std::string &id)
{
    if (id == "fp32")
        return std::make_unique<Fp32Scheme>();
    if (id == "olive4")
        return std::make_unique<OliveScheme>(4);
    if (id == "olive8")
        return std::make_unique<OliveScheme>(8);
    if (id == "olive4-weights")
        return std::make_unique<OliveWeightOnlyScheme>(4);
    if (id == "int4")
        return std::make_unique<UniformIntScheme>(4);
    if (id == "int6")
        return std::make_unique<UniformIntScheme>(6);
    if (id == "int8")
        return std::make_unique<UniformIntScheme>(8);
    if (id == "ant4")
        return std::make_unique<AntScheme>(4, /*mixed=*/false);
    if (id == "ant4-mixed")
        return std::make_unique<AntScheme>(4, /*mixed=*/true);
    if (id == "ant8")
        return std::make_unique<AntScheme>(8);
    if (id == "os4")
        return std::make_unique<OutlierSuppressionScheme>(4);
    if (id == "os6")
        return std::make_unique<OutlierSuppressionScheme>(6);
    if (id == "q8bert")
        return std::make_unique<UniformIntScheme>(8);
    if (id == "gobo")
        return std::make_unique<GoboScheme>(4);
    if (id == "gobo3")
        return std::make_unique<GoboScheme>(3);
    if (id == "olaccel")
        return std::make_unique<OlaccelScheme>();
    if (id == "adafloat4")
        return std::make_unique<AdaptivFloatScheme>(4);
    if (id == "adafloat8")
        return std::make_unique<AdaptivFloatScheme>(8);
    if (id == "clip-outliers")
        return std::make_unique<ClipOutliersScheme>();
    if (id == "prune-victims")
        return std::make_unique<PruneVictimsScheme>();
    if (id == "prune-random")
        return std::make_unique<PruneRandomScheme>();
    OLIVE_FATAL("unknown scheme id: " + id);
}

std::vector<std::string>
schemeRegistry()
{
    return {"fp32",        "olive4",      "olive8",  "olive4-weights",
            "int4",        "int6",        "int8",    "ant4",
            "ant4-mixed",  "ant8",        "os4",     "os6",
            "q8bert",      "gobo",        "gobo3",   "olaccel",
            "adafloat4",   "adafloat8",   "clip-outliers",
            "prune-victims", "prune-random"};
}

SiteCachedScheme::SiteCachedScheme(Scheme &inner, size_t calib_examples)
    : inner_(inner), calibExamples_(std::max<size_t>(1, calib_examples))
{
}

std::vector<float>
SiteCachedScheme::apply(std::span<const float> xs, TensorKind kind)
{
    if (cursor_ == sites_.size())
        sites_.emplace_back();
    OLIVE_ASSERT(cursor_ < sites_.size(),
                 "site cursor out of sync; call beginForward()");
    Site &site = sites_[cursor_++];

    if (!site.applier) {
        // Still calibrating: accumulate this tensor into the site's
        // calibration batch; freeze once the batch is full.  Sites see
        // same-shaped tensors every forward, so reserving the full
        // batch up front avoids per-example reallocation.
        if (site.calibBuffer.empty())
            site.calibBuffer.reserve(xs.size() * calibExamples_);
        site.calibBuffer.insert(site.calibBuffer.end(), xs.begin(),
                                xs.end());
        if (++site.seen >= calibExamples_) {
            // The inner calibrate/apply (threshold search, OVP encode)
            // is itself parallel — see quant/quantizer.cpp and
            // quant/ovp.cpp — so the per-site freeze rides the pool.
            site.applier = inner_.calibrate(site.calibBuffer, kind);
            site.calibBuffer.clear();
            site.calibBuffer.shrink_to_fit();
        }
        // Until frozen, quantize this tensor on its own statistics.
        return inner_.apply(xs, kind);
    }
    return site.applier(xs);
}

} // namespace eval
} // namespace olive
