/**
 * @file
 * Synthetic downstream tasks standing in for GLUE and SQuAD (see the
 * substitution table in DESIGN.md).
 *
 * Classification tasks: each class has a prototype direction in input
 * space; an example is a token sequence of noisy prototype echoes with
 * the model's activation-outlier statistics mixed in.  The per-task
 * signal strength is tuned so the FP32 metric lands in the same
 * difficulty regime as the paper's numbers (CoLA hard, SST-2 easy, ...).
 * The metric kinds match GLUE: accuracy, Matthews (CoLA), Pearson
 * (STS-B), F1 (MRPC/QQP report accuracy in the paper's table, so we use
 * accuracy there too).
 *
 * Span task: a SQuAD-like extraction problem — an answer pattern is
 * planted at a random span and the model must locate it.
 */

#ifndef OLIVE_EVAL_TASKS_HPP
#define OLIVE_EVAL_TASKS_HPP

#include <string>
#include <vector>

#include "models/config.hpp"
#include "tensor/tensor.hpp"
#include "util/random.hpp"

namespace olive {
namespace eval {

/** Metric kind reported for a task. */
enum class Metric
{
    AccuracyPct, //!< Percent correct.
    Matthews,    //!< Matthews corr. x100 (CoLA).
    PearsonPct,  //!< Pearson corr. x100 (STS-B).
};

/** Printable metric label ("Acc.", "Matt.", "Pear."). */
std::string metricLabel(Metric m);

/** One GLUE-proxy task. */
struct TaskSpec
{
    std::string name;
    Metric metric = Metric::AccuracyPct;
    size_t classes = 2;
    double signal = 0.4; //!< Prototype strength (task difficulty knob).

    /**
     * Fraction of examples whose prototype signal is absent, so the
     * label is only recoverable from the outlier-magnitude ratio code.
     * This is the knob that makes outliers load-bearing per task: the
     * higher it is, the harder the task and the more catastrophic
     * outlier clipping becomes (CoLA/RTE high, SST-2/QQP low).
     */
    double hardFrac = 0.4;

    /**
     * Symmetric label-noise rate: the stored label flips with this
     * probability.  Sets the task's accuracy ceiling so the FP32 rows
     * land in the same regime as the paper's GLUE numbers.
     */
    double labelNoise = 0.0;
};

/** The eight GLUE-proxy tasks in the paper's Fig. 3 order. */
std::vector<TaskSpec> glueTasks();

/** The five tasks shown in Table 6 (CoLA, SST-2, MNLI, QQP, MRPC). */
std::vector<TaskSpec> table6Tasks();

/** Look up a task by name. */
TaskSpec taskByName(const std::string &name);

/** A labelled classification dataset of token sequences. */
struct ClassifData
{
    std::vector<Tensor> x;   //!< (seq, d) per example.
    std::vector<int> labels;
};

/**
 * Generate @p n examples of @p task for @p config (eval dimensions).
 * @p task_seed fixes the task identity — class prototypes and the
 * systematic activation-outlier channel pattern — and must be shared by
 * the train and test splits; @p split_seed drives the per-example
 * noise/label stream and must differ between splits.
 */
ClassifData makeClassifData(const TaskSpec &task,
                            const models::ModelConfig &config, size_t n,
                            u64 task_seed, u64 split_seed);

/** A span-extraction dataset. */
struct SpanData
{
    std::vector<Tensor> x;   //!< (seq, d) per example.
    std::vector<int> start;
    std::vector<int> end;
};

/**
 * Generate a SQuAD-proxy dataset. @p v2 adds distractor noise.
 * @p task_seed fixes the answer pattern (shared across splits),
 * @p split_seed the per-example stream.
 */
SpanData makeSpanData(const models::ModelConfig &config, size_t n,
                      u64 task_seed, u64 split_seed, bool v2);

} // namespace eval
} // namespace olive

#endif // OLIVE_EVAL_TASKS_HPP
