#include "tasks.hpp"

#include <algorithm>

#include "models/synthetic.hpp"

namespace olive {
namespace eval {

std::string
metricLabel(Metric m)
{
    switch (m) {
      case Metric::AccuracyPct:
        return "Acc.";
      case Metric::Matthews:
        return "Matt.";
      case Metric::PearsonPct:
        return "Pear.";
    }
    OLIVE_PANIC("unknown Metric");
}

std::vector<TaskSpec>
glueTasks()
{
    // Signal strengths tuned so FP32 difficulty mirrors the paper's
    // spread: CoLA/RTE hard, SST-2/QQP easy, MNLI 3-class medium.
    return {
        {"CoLA", Metric::Matthews, 2, 0.50, 0.65, 0.19},
        {"SST-2", Metric::AccuracyPct, 2, 1.30, 0.25, 0.055},
        {"MNLI", Metric::AccuracyPct, 3, 1.00, 0.30, 0.115},
        {"QQP", Metric::AccuracyPct, 2, 1.20, 0.30, 0.075},
        {"QNLI", Metric::AccuracyPct, 2, 1.05, 0.35, 0.085},
        {"RTE", Metric::AccuracyPct, 2, 0.55, 0.60, 0.17},
        {"STSB", Metric::PearsonPct, 6, 1.10, 0.22, 0.10},
        {"MRPC", Metric::AccuracyPct, 2, 0.95, 0.40, 0.095},
    };
}

std::vector<TaskSpec>
table6Tasks()
{
    const auto all = glueTasks();
    std::vector<TaskSpec> out;
    for (const auto &t : all) {
        if (t.name == "CoLA" || t.name == "SST-2" || t.name == "MNLI" ||
            t.name == "QQP" || t.name == "MRPC")
            out.push_back(t);
    }
    return out;
}

TaskSpec
taskByName(const std::string &name)
{
    for (const auto &t : glueTasks()) {
        if (t.name == name)
            return t;
    }
    OLIVE_FATAL("unknown task: " + name);
}

ClassifData
makeClassifData(const TaskSpec &task, const models::ModelConfig &config,
                size_t n, u64 task_seed, u64 split_seed)
{
    // Prototypes come from the task seed so every split shares them.
    Rng proto_rng(task_seed ^ 0x9d07077e5ULL);
    const size_t d = config.evalDModel;
    std::vector<std::vector<float>> prototypes(task.classes,
                                               std::vector<float>(d));
    for (auto &p : prototypes) {
        for (auto &v : p)
            v = static_cast<float>(proto_rng.gaussian());
    }

    Rng rng(split_seed);
    ClassifData data;
    data.x.reserve(n);
    data.labels.reserve(n);
    // Classification inputs carry the model's systematic activation
    // outlier structure (fixed channels, stable magnitudes — the same
    // structure that makes real PTQ activation calibration possible),
    // capped: raw task embeddings sit below the most extreme
    // hidden-layer tensors of Fig. 2.  The pattern derives from the
    // task seed so train and test share it.
    const models::ActPattern pattern = models::makeActPattern(
        config, task_seed,
        std::min(config.profile.actMaxSigma, 80.0));
    for (size_t i = 0; i < n; ++i) {
        const int label = static_cast<int>(rng.uniformInt(task.classes));
        // Outlier magnitudes are load-bearing: the class modulates the
        // *ratio* of the two dominant outlier channels (scales sum to
        // 2, keeping per-example variance class-independent).  Clipping
        // saturates both channels identically and destroys the code;
        // OVP's abfloat buckets resolve it — the Fig. 3 mechanism.
        const double code =
            (task.classes > 1)
                ? 0.50 + 1.00 * static_cast<double>(label) /
                             static_cast<double>(task.classes - 1)
                : 1.0;
        Tensor x = models::makeInputSequenceStable(
            config, pattern, config.evalSeqLen, rng, code, 2.0 - code);
        // "Hard" examples carry no prototype echo: only the outlier
        // ratio code identifies the class.
        const bool hard = rng.uniform() < task.hardFrac;
        const auto &p = prototypes[static_cast<size_t>(label)];
        const float s = hard ? 0.0f : static_cast<float>(task.signal);
        for (size_t t = 0; t < config.evalSeqLen; ++t) {
            // Echo strength varies per token so the backbone must pool.
            const float tok_gain =
                s * (0.5f + 1.0f * static_cast<float>(rng.uniform()));
            for (size_t j = 0; j < d; ++j)
                x.at(t, j) += tok_gain * p[j];
        }
        data.x.push_back(std::move(x));
        // Symmetric label noise caps the achievable metric (the task's
        // irreducible difficulty).
        int stored = label;
        if (rng.uniform() < task.labelNoise) {
            stored = static_cast<int>(
                (label + 1 + rng.uniformInt(task.classes - 1)) %
                task.classes);
        }
        data.labels.push_back(stored);
    }
    return data;
}

SpanData
makeSpanData(const models::ModelConfig &config, size_t n, u64 task_seed,
             u64 split_seed, bool v2)
{
    Rng proto_rng(task_seed ^ 0x59a2da7aULL);
    const size_t d = config.evalDModel;
    std::vector<float> answer_pattern(d);
    for (auto &v : answer_pattern)
        v = static_cast<float>(proto_rng.gaussian());
    const models::ActPattern pattern = models::makeActPattern(
        config, task_seed ^ 0x51,
        std::min(config.profile.actMaxSigma, 80.0));

    Rng rng(split_seed);
    SpanData data;
    const size_t seq = config.evalSeqLen;
    for (size_t i = 0; i < n; ++i) {
        Tensor x = models::makeInputSequenceStable(config, pattern, seq,
                                                   rng);
        const size_t span_len = 1 + rng.uniformInt(3);
        const size_t start = rng.uniformInt(seq - span_len);
        const size_t end = start + span_len - 1;
        const float gain = v2 ? 3.0f : 4.0f;
        for (size_t t = start; t <= end; ++t) {
            for (size_t j = 0; j < d; ++j)
                x.at(t, j) += gain * answer_pattern[j];
        }
        if (v2) {
            // Distractor echo elsewhere (the "unanswerable-ish" noise of
            // SQuAD v2): a weaker copy of the pattern at another span.
            const size_t ds = rng.uniformInt(seq - 1);
            for (size_t j = 0; j < d; ++j)
                x.at(ds, j) += 1.5f * answer_pattern[j];
        }
        data.x.push_back(std::move(x));
        data.start.push_back(static_cast<int>(start));
        data.end.push_back(static_cast<int>(end));
    }
    return data;
}

} // namespace eval
} // namespace olive
