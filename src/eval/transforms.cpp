#include "transforms.hpp"

#include <algorithm>
#include <cmath>

#include "util/random.hpp"
#include "util/stats.hpp"

namespace olive {
namespace eval {

ClipOutliersScheme::ClipOutliersScheme(double k_sigma)
    : kSigma_(k_sigma)
{
}

std::vector<float>
ClipOutliersScheme::apply(std::span<const float> xs, TensorKind)
{
    const double m = stats::mean(xs);
    const double limit = kSigma_ * stats::stddev(xs);
    std::vector<float> out(xs.begin(), xs.end());
    for (auto &v : out) {
        const double d = v - m;
        if (d > limit)
            v = static_cast<float>(m + limit);
        else if (d < -limit)
            v = static_cast<float>(m - limit);
    }
    return out;
}

PruneVictimsScheme::PruneVictimsScheme(double k_sigma)
    : kSigma_(k_sigma)
{
}

std::vector<float>
PruneVictimsScheme::apply(std::span<const float> xs, TensorKind)
{
    const double m = stats::mean(xs);
    const double limit = kSigma_ * stats::stddev(xs);
    std::vector<float> out(xs.begin(), xs.end());
    for (size_t p = 0; p + 1 < out.size(); p += 2) {
        const double a0 = std::fabs(out[p] - m);
        const double a1 = std::fabs(out[p + 1] - m);
        const bool o0 = a0 > limit;
        const bool o1 = a1 > limit;
        if (o0 && o1) {
            // Outlier-outlier pair: the smaller outlier is the victim.
            if (a0 >= a1)
                out[p + 1] = 0.0f;
            else
                out[p] = 0.0f;
        } else if (o0) {
            out[p + 1] = 0.0f;
        } else if (o1) {
            out[p] = 0.0f;
        }
    }
    return out;
}

PruneRandomScheme::PruneRandomScheme(double k_sigma, u64 seed)
    : kSigma_(k_sigma), seed_(seed)
{
}

std::vector<float>
PruneRandomScheme::apply(std::span<const float> xs, TensorKind)
{
    const double m = stats::mean(xs);
    const double limit = kSigma_ * stats::stddev(xs);
    std::vector<float> out(xs.begin(), xs.end());

    size_t n_outliers = 0;
    for (float v : xs) {
        if (std::fabs(v - m) > limit)
            ++n_outliers;
    }
    if (n_outliers == 0)
        return out;

    // Deterministic per-tensor seed so repeated applications agree.
    Rng rng(seed_ ^ (xs.size() * 0x9e3779b97f4a7c15ULL));
    size_t pruned = 0;
    size_t guard = 0;
    while (pruned < n_outliers && guard < xs.size() * 4) {
        ++guard;
        const size_t i = static_cast<size_t>(rng.uniformInt(out.size()));
        if (out[i] != 0.0f && std::fabs(out[i] - m) <= limit) {
            out[i] = 0.0f;
            ++pruned;
        }
    }
    return out;
}

} // namespace eval
} // namespace olive
