/**
 * @file
 * The train-then-PTQ accuracy pipeline reproducing the paper's GLUE and
 * SQuAD experiments (Tables 6-8, Fig. 3).
 *
 * Flow per (model, task):
 *   1. build the synthetic outlier-calibrated backbone (the "pretrained
 *      checkpoint");
 *   2. compute FP32 features for the train split and fit the task head
 *      (the "fine-tuned" model);
 *   3. for each scheme: quantize the backbone weights, re-run the test
 *      split with per-site-calibrated activation quantization, and
 *      score the head's predictions — PTQ;
 *   4. QAT variants additionally refit the head on quantized train
 *      features (the quantization-aware fine-tuning the "QAT" rows of
 *      the paper perform).
 */

#ifndef OLIVE_EVAL_ACCURACY_HPP
#define OLIVE_EVAL_ACCURACY_HPP

#include <optional>

#include "models/config.hpp"
#include "nn/head.hpp"
#include "nn/transformer.hpp"
#include "schemes.hpp"
#include "tasks.hpp"

namespace olive {
namespace eval {

/** Evaluator for one (model, classification task) pair. */
class TaskEvaluator
{
  public:
    /**
     * Builds the backbone, generates data, trains the FP32 head.
     * @param train_n / test_n Examples per split.
     */
    TaskEvaluator(const models::ModelConfig &config, const TaskSpec &task,
                  u64 seed = 1, size_t train_n = 144, size_t test_n = 144);

    /** FP32 ("source") metric on the test split. */
    double evalFp32();

    /**
     * Metric under @p scheme.  @p qat refits the head on quantized
     * train features first.
     */
    double evalScheme(Scheme &scheme, bool qat = false);

    const models::ModelConfig &config() const { return config_; }
    const TaskSpec &task() const { return task_; }

  private:
    /** Mean-pooled backbone features of a dataset. */
    Tensor features(const nn::Transformer &backbone, Scheme *act_scheme,
                    const ClassifData &data) const;

    /** Metric of predictions against labels for this task. */
    double score(const std::vector<int> &pred,
                 const std::vector<int> &labels) const;

    models::ModelConfig config_;
    TaskSpec task_;
    u64 seed_;
    nn::Transformer backbone_;
    ClassifData train_;
    ClassifData test_;
    Tensor fp32TrainFeatures_;
    std::optional<nn::ClassifierHead> head_;
};

/** Evaluator for the SQuAD-proxy span task (Table 8). */
class SpanEvaluator
{
  public:
    SpanEvaluator(const models::ModelConfig &config, bool v2, u64 seed = 1,
                  size_t train_n = 128, size_t test_n = 128);

    /** Result pair: {F1 %, exact-match %} as the paper reports. */
    struct Result
    {
        double f1 = 0.0;
        double em = 0.0;
    };

    Result evalFp32();
    Result evalScheme(Scheme &scheme);

  private:
    Result evalBackbone(const nn::Transformer &backbone,
                        Scheme *act_scheme);

    models::ModelConfig config_;
    u64 seed_;
    nn::Transformer backbone_;
    SpanData train_;
    SpanData test_;
    std::optional<nn::SpanHead> head_;
};

} // namespace eval
} // namespace olive

#endif // OLIVE_EVAL_ACCURACY_HPP
