#include "workload.hpp"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "util/random.hpp"

namespace olive {
namespace serve {

namespace {

/** Tick cap for replayTrace when the caller sets none. */
constexpr size_t kDefaultReplayTickCap = 1'000'000;

/** Per-arrival walk caps so malformed probabilities cannot spin. */
constexpr size_t kMaxGeometricGap = 1 << 16;
constexpr size_t kMaxDiurnalWalk = 1 << 18;

const char *
arrivalKindName(ArrivalSpec::Kind k)
{
    switch (k) {
    case ArrivalSpec::Kind::Uniform:
        return "uniform";
    case ArrivalSpec::Kind::Poisson:
        return "poisson";
    case ArrivalSpec::Kind::Bursty:
        return "bursty";
    case ArrivalSpec::Kind::Diurnal:
        return "diurnal";
    }
    OLIVE_PANIC("unreachable arrival kind");
}

ArrivalSpec::Kind
arrivalKindFromName(const std::string &name)
{
    if (name == "uniform")
        return ArrivalSpec::Kind::Uniform;
    if (name == "poisson")
        return ArrivalSpec::Kind::Poisson;
    if (name == "bursty")
        return ArrivalSpec::Kind::Bursty;
    if (name == "diurnal")
        return ArrivalSpec::Kind::Diurnal;
    OLIVE_PANIC("unknown arrival kind: " + name);
}

const char *
lengthKindName(LengthSpec::Kind k)
{
    switch (k) {
    case LengthSpec::Kind::Fixed:
        return "fixed";
    case LengthSpec::Kind::Uniform:
        return "uniform";
    case LengthSpec::Kind::LogNormalish:
        return "lognormal";
    }
    OLIVE_PANIC("unreachable length kind");
}

LengthSpec::Kind
lengthKindFromName(const std::string &name)
{
    if (name == "fixed")
        return LengthSpec::Kind::Fixed;
    if (name == "uniform")
        return LengthSpec::Kind::Uniform;
    if (name == "lognormal")
        return LengthSpec::Kind::LogNormalish;
    OLIVE_PANIC("unknown length kind: " + name);
}

void
validateArrival(const ArrivalSpec &a)
{
    switch (a.kind) {
    case ArrivalSpec::Kind::Uniform:
        break;
    case ArrivalSpec::Kind::Poisson:
        OLIVE_ASSERT(a.den >= 1 && a.num >= 1 && a.num <= a.den,
                     "arrival probability must be num/den in (0, 1]");
        break;
    case ArrivalSpec::Kind::Bursty:
        OLIVE_ASSERT(a.burstSize >= 1, "bursts must hold >= 1 arrival");
        break;
    case ArrivalSpec::Kind::Diurnal:
        OLIVE_ASSERT(a.den >= 1 && a.num >= 1 && a.num <= a.den,
                     "arrival probability must be num/den in (0, 1]");
        OLIVE_ASSERT(a.peakNum >= a.num && a.peakNum <= a.den,
                     "diurnal peak must lie in [num, den]");
        OLIVE_ASSERT(a.period >= 2,
                     "diurnal period must be >= 2 ticks");
        break;
    }
}

void
validateLength(const LengthSpec &l)
{
    OLIVE_ASSERT(l.value >= 1 && l.lo >= 1 && l.median >= 1,
                 "lengths must be >= 1 token");
    OLIVE_ASSERT(l.hi >= l.lo, "length bounds must satisfy hi >= lo");
}

/** One length draw — integer arithmetic only (file comment). */
size_t
sampleLength(Rng &rng, const LengthSpec &l)
{
    switch (l.kind) {
    case LengthSpec::Kind::Fixed:
        return l.value;
    case LengthSpec::Kind::Uniform:
        return l.lo + static_cast<size_t>(
                          rng.uniformInt(u64{l.hi - l.lo} + 1));
    case LengthSpec::Kind::LogNormalish: {
        // Doubling tail: k trailing zero bits of a raw draw is
        // geometric(1/2); cap the doublings, jitter by +- median/2,
        // clamp into [lo, hi].
        const size_t k = std::min<size_t>(
            l.tailCap,
            static_cast<size_t>(std::countr_zero(rng.next())));
        const size_t base = l.median << k;
        const size_t jitter =
            static_cast<size_t>(rng.uniformInt(u64{l.median}));
        const size_t raw = base + jitter - std::min(base, l.median / 2);
        return std::clamp(raw, l.lo, l.hi);
    }
    }
    OLIVE_PANIC("unreachable length kind");
}

/** Arrival ticks for @p n conversation openings, nondecreasing. */
std::vector<size_t>
sampleArrivals(Rng &rng, const ArrivalSpec &a, size_t n)
{
    std::vector<size_t> out;
    out.reserve(n);
    const auto jitterDraw = [&]() -> size_t {
        return a.jitter > 0 ? static_cast<size_t>(
                                  rng.uniformInt(u64{a.jitter} + 1))
                            : 0;
    };
    switch (a.kind) {
    case ArrivalSpec::Kind::Uniform: {
        size_t t = jitterDraw();
        for (size_t i = 0; i < n; ++i) {
            out.push_back(t);
            t += a.gap + jitterDraw();
        }
        break;
    }
    case ArrivalSpec::Kind::Poisson: {
        // Geometric inter-arrival gaps: count per-tick Bernoulli
        // failures at probability num/den (capped so a tiny rate
        // cannot spin forever).
        size_t t = 0;
        for (size_t i = 0; i < n; ++i) {
            size_t gap = 0;
            while (gap < kMaxGeometricGap &&
                   rng.uniformInt(a.den) >= a.num)
                ++gap;
            t += gap;
            out.push_back(t);
        }
        break;
    }
    case ArrivalSpec::Kind::Bursty: {
        // On/off: burstSize arrivals land on one tick, then the line
        // goes idle for gap (+ jitter) ticks.
        size_t t = 0;
        size_t in_burst = 0;
        for (size_t i = 0; i < n; ++i) {
            out.push_back(t);
            if (++in_burst == a.burstSize) {
                in_burst = 0;
                t += a.gap + jitterDraw() + 1;
            }
        }
        break;
    }
    case ArrivalSpec::Kind::Diurnal: {
        // Triangle-wave ramp of the per-tick arrival probability
        // between num/den and peakNum/den over one period.
        size_t t = 0;
        const size_t half = a.period / 2;
        for (size_t i = 0; i < n; ++i) {
            size_t walked = 0;
            for (;;) {
                const size_t phase = t % a.period;
                const size_t tri =
                    phase < half ? phase : a.period - phase;
                const u64 prob =
                    a.num + (a.peakNum - a.num) * u64{tri} /
                                std::max<u64>(1, half);
                const bool hit = rng.uniformInt(a.den) < prob;
                if (hit || ++walked >= kMaxDiurnalWalk)
                    break;
                ++t;
            }
            out.push_back(t);
        }
        break;
    }
    }
    return out;
}

u64
getU64(const Json &obj, const std::string &key)
{
    const Json *v = obj.find(key);
    OLIVE_ASSERT(v != nullptr, "trace document misses key: " + key);
    const long n = v->asInt();
    OLIVE_ASSERT(n >= 0, "trace value must be non-negative: " + key);
    return static_cast<u64>(n);
}

size_t
getSize(const Json &obj, const std::string &key)
{
    return static_cast<size_t>(getU64(obj, key));
}

std::vector<int>
getTokens(const Json &obj, const std::string &key)
{
    const Json *v = obj.find(key);
    OLIVE_ASSERT(v != nullptr && v->isArray(),
                 "trace document misses token array: " + key);
    std::vector<int> out;
    out.reserve(v->size());
    for (const Json &e : v->elements())
        out.push_back(static_cast<int>(e.asInt()));
    return out;
}

Json
tokensToJson(const std::vector<int> &toks)
{
    Json arr = Json::array();
    for (int t : toks)
        arr.push(Json(t));
    return arr;
}

} // namespace

Workload
Workload::generate(const WorkloadSpec &spec)
{
    OLIVE_ASSERT(spec.sessions >= 1, "workload needs >= 1 session");
    OLIVE_ASSERT(spec.vocab >= 2, "workload vocabulary must be >= 2");
    OLIVE_ASSERT(spec.turnsMin >= 1 && spec.turnsMax >= spec.turnsMin,
                 "turns must satisfy 1 <= turnsMin <= turnsMax");
    OLIVE_ASSERT(spec.systemPromptPercent <= 100 &&
                     spec.stopPercent <= 100,
                 "population percentages must be <= 100");
    validateArrival(spec.arrival);
    validateLength(spec.promptLen);
    validateLength(spec.outputLen);

    Rng rng(spec.seed);
    const u64 vocab = spec.vocab;
    const auto token = [&]() {
        return static_cast<int>(rng.uniformInt(vocab));
    };

    std::vector<int> sys;
    sys.reserve(spec.systemPromptLen);
    for (size_t i = 0; i < spec.systemPromptLen; ++i)
        sys.push_back(token());

    const std::vector<size_t> arrivals =
        sampleArrivals(rng, spec.arrival, spec.sessions);

    Workload w;
    w.spec_ = spec;
    for (size_t s = 0; s < spec.sessions; ++s) {
        const size_t turns =
            spec.turnsMin +
            static_cast<size_t>(rng.uniformInt(
                u64{spec.turnsMax - spec.turnsMin} + 1));
        const bool member =
            spec.systemPromptLen > 0 &&
            rng.uniformInt(100) < spec.systemPromptPercent;
        for (size_t t = 0; t < turns; ++t) {
            WorkloadRequest r;
            r.id = static_cast<u64>(w.requests_.size()) + 1;
            r.conversation = static_cast<u64>(s) + 1;
            r.turn = t;
            if (t == 0) {
                r.submitStep = arrivals[s];
                if (member)
                    r.userTokens = sys;
            } else {
                r.gapSteps = spec.turnGapSteps;
            }
            const size_t plen = sampleLength(rng, spec.promptLen);
            for (size_t i = 0; i < plen; ++i)
                r.userTokens.push_back(token());
            r.maxNew = sampleLength(rng, spec.outputLen);
            if (spec.stopTokenCount > 0 &&
                rng.uniformInt(100) < spec.stopPercent) {
                for (size_t i = 0; i < spec.stopTokenCount; ++i)
                    r.stopTokens.push_back(token());
            }
            w.requests_.push_back(std::move(r));
        }
    }
    w.validate();
    return w;
}

std::vector<std::string>
Workload::scenarioNames()
{
    return {"uniform",       "poisson",   "bursty",
            "diurnal",       "shared-system", "multi-turn"};
}

WorkloadSpec
Workload::namedSpec(const std::string &name)
{
    WorkloadSpec s;
    s.vocab = 64;
    if (name == "uniform") {
        s.seed = 101;
        s.sessions = 12;
        s.arrival.kind = ArrivalSpec::Kind::Uniform;
        s.arrival.gap = 2;
        s.promptLen = {LengthSpec::Kind::Fixed, 20, 1, 64, 16, 3};
        s.outputLen = {LengthSpec::Kind::Fixed, 10, 1, 64, 16, 3};
        return s;
    }
    if (name == "poisson") {
        s.seed = 202;
        s.sessions = 12;
        s.arrival.kind = ArrivalSpec::Kind::Poisson;
        s.arrival.num = 1;
        s.arrival.den = 3;
        s.promptLen = {LengthSpec::Kind::LogNormalish, 16, 8, 48, 16, 2};
        s.outputLen = {LengthSpec::Kind::Uniform, 8, 4, 12, 8, 2};
        return s;
    }
    if (name == "bursty") {
        s.seed = 303;
        s.sessions = 12;
        s.arrival.kind = ArrivalSpec::Kind::Bursty;
        s.arrival.burstSize = 4;
        s.arrival.gap = 10;
        s.promptLen = {LengthSpec::Kind::Uniform, 16, 12, 24, 16, 2};
        s.outputLen = {LengthSpec::Kind::Fixed, 8, 1, 64, 8, 2};
        return s;
    }
    if (name == "diurnal") {
        s.seed = 404;
        s.sessions = 12;
        s.arrival.kind = ArrivalSpec::Kind::Diurnal;
        s.arrival.num = 1;
        s.arrival.den = 8;
        s.arrival.peakNum = 6;
        s.arrival.period = 24;
        s.promptLen = {LengthSpec::Kind::Uniform, 16, 12, 24, 16, 2};
        s.outputLen = {LengthSpec::Kind::Fixed, 8, 1, 64, 8, 2};
        return s;
    }
    if (name == "shared-system") {
        s.seed = 505;
        s.sessions = 12;
        s.arrival.kind = ArrivalSpec::Kind::Poisson;
        s.arrival.num = 1;
        s.arrival.den = 2;
        s.promptLen = {LengthSpec::Kind::Uniform, 8, 6, 12, 8, 2};
        s.outputLen = {LengthSpec::Kind::Fixed, 8, 1, 64, 8, 2};
        s.systemPromptLen = 24;
        s.systemPromptPercent = 100;
        return s;
    }
    if (name == "multi-turn") {
        s.seed = 606;
        s.sessions = 6;
        s.arrival.kind = ArrivalSpec::Kind::Uniform;
        s.arrival.gap = 3;
        s.promptLen = {LengthSpec::Kind::Uniform, 12, 8, 16, 12, 2};
        s.outputLen = {LengthSpec::Kind::Fixed, 8, 1, 64, 8, 2};
        s.turnsMin = 3;
        s.turnsMax = 3;
        s.turnGapSteps = 1;
        return s;
    }
    OLIVE_PANIC("unknown scenario name: " + name);
}

Json
Workload::toJson() const
{
    const WorkloadSpec &s = spec_;
    Json arrival = Json::object({
        {"kind", arrivalKindName(s.arrival.kind)},
        {"gap", s.arrival.gap},
        {"jitter", s.arrival.jitter},
        {"num", s.arrival.num},
        {"den", s.arrival.den},
        {"burst_size", s.arrival.burstSize},
        {"peak_num", s.arrival.peakNum},
        {"period", s.arrival.period},
    });
    const auto lengthJson = [](const LengthSpec &l) {
        return Json::object({
            {"kind", lengthKindName(l.kind)},
            {"value", l.value},
            {"lo", l.lo},
            {"hi", l.hi},
            {"median", l.median},
            {"tail_cap", l.tailCap},
        });
    };
    Json spec = Json::object({
        {"seed", std::to_string(s.seed)},
        {"sessions", s.sessions},
        {"vocab", s.vocab},
        {"arrival", std::move(arrival)},
        {"prompt_len", lengthJson(s.promptLen)},
        {"output_len", lengthJson(s.outputLen)},
        {"system_prompt_len", s.systemPromptLen},
        {"system_prompt_percent", s.systemPromptPercent},
        {"turns_min", s.turnsMin},
        {"turns_max", s.turnsMax},
        {"turn_gap_steps", s.turnGapSteps},
        {"stop_token_count", s.stopTokenCount},
        {"stop_percent", s.stopPercent},
    });
    Json reqs = Json::array();
    for (const WorkloadRequest &r : requests_) {
        reqs.push(Json::object({
            {"id", r.id},
            {"conversation", r.conversation},
            {"turn", r.turn},
            {"submit_step", r.submitStep},
            {"gap_steps", r.gapSteps},
            {"max_new", r.maxNew},
            {"user_tokens", tokensToJson(r.userTokens)},
            {"stop_tokens", tokensToJson(r.stopTokens)},
        }));
    }
    return Json::object({
        {"spec", std::move(spec)},
        {"requests", std::move(reqs)},
    });
}

Workload
Workload::fromJson(const Json &doc)
{
    OLIVE_ASSERT(doc.isObject(), "trace document must be an object");
    const Json *spec = doc.find("spec");
    const Json *reqs = doc.find("requests");
    OLIVE_ASSERT(spec != nullptr && spec->isObject() &&
                     reqs != nullptr && reqs->isArray(),
                 "trace document needs spec and requests");

    Workload w;
    WorkloadSpec &s = w.spec_;
    {
        const Json *seed = spec->find("seed");
        OLIVE_ASSERT(seed != nullptr && seed->isString(),
                     "trace spec seed must be a decimal string");
        s.seed = std::stoull(seed->asString());
    }
    s.sessions = getSize(*spec, "sessions");
    s.vocab = getSize(*spec, "vocab");
    {
        const Json *a = spec->find("arrival");
        OLIVE_ASSERT(a != nullptr && a->isObject(),
                     "trace spec needs an arrival object");
        const Json *kind = a->find("kind");
        OLIVE_ASSERT(kind != nullptr && kind->isString(),
                     "arrival kind must be a string");
        s.arrival.kind = arrivalKindFromName(kind->asString());
        s.arrival.gap = getSize(*a, "gap");
        s.arrival.jitter = getSize(*a, "jitter");
        s.arrival.num = getU64(*a, "num");
        s.arrival.den = getU64(*a, "den");
        s.arrival.burstSize = getSize(*a, "burst_size");
        s.arrival.peakNum = getU64(*a, "peak_num");
        s.arrival.period = getSize(*a, "period");
    }
    const auto lengthFrom = [&](const char *key) {
        const Json *l = spec->find(key);
        OLIVE_ASSERT(l != nullptr && l->isObject(),
                     std::string("trace spec needs length object ") +
                         key);
        const Json *kind = l->find("kind");
        OLIVE_ASSERT(kind != nullptr && kind->isString(),
                     "length kind must be a string");
        LengthSpec out;
        out.kind = lengthKindFromName(kind->asString());
        out.value = getSize(*l, "value");
        out.lo = getSize(*l, "lo");
        out.hi = getSize(*l, "hi");
        out.median = getSize(*l, "median");
        out.tailCap = getSize(*l, "tail_cap");
        return out;
    };
    s.promptLen = lengthFrom("prompt_len");
    s.outputLen = lengthFrom("output_len");
    s.systemPromptLen = getSize(*spec, "system_prompt_len");
    s.systemPromptPercent = getU64(*spec, "system_prompt_percent");
    s.turnsMin = getSize(*spec, "turns_min");
    s.turnsMax = getSize(*spec, "turns_max");
    s.turnGapSteps = getSize(*spec, "turn_gap_steps");
    s.stopTokenCount = getSize(*spec, "stop_token_count");
    s.stopPercent = getU64(*spec, "stop_percent");

    for (const Json &e : reqs->elements()) {
        OLIVE_ASSERT(e.isObject(), "trace request must be an object");
        WorkloadRequest r;
        r.id = getU64(e, "id");
        r.conversation = getU64(e, "conversation");
        r.turn = getSize(e, "turn");
        r.submitStep = getSize(e, "submit_step");
        r.gapSteps = getSize(e, "gap_steps");
        r.maxNew = getSize(e, "max_new");
        r.userTokens = getTokens(e, "user_tokens");
        r.stopTokens = getTokens(e, "stop_tokens");
        w.requests_.push_back(std::move(r));
    }
    w.validate();
    return w;
}

Workload
Workload::parse(const std::string &text)
{
    std::string err;
    const std::optional<Json> doc = Json::parse(text, &err);
    OLIVE_ASSERT(doc.has_value(), "trace parse error: " + err);
    return fromJson(*doc);
}

void
Workload::validate() const
{
    OLIVE_ASSERT(spec_.vocab >= 2, "trace vocabulary must be >= 2");
    // Per-conversation turn counters: turns must appear contiguously
    // ascending, so the replay can chain prompt -> reply -> prompt.
    std::vector<size_t> next_turn(spec_.sessions, 0);
    size_t last_opening = 0;
    for (size_t i = 0; i < requests_.size(); ++i) {
        const WorkloadRequest &r = requests_[i];
        OLIVE_ASSERT(r.id == static_cast<u64>(i) + 1,
                     "trace ids must be dense and 1-based");
        OLIVE_ASSERT(r.conversation >= 1 &&
                         r.conversation <= spec_.sessions,
                     "trace conversation id out of range");
        size_t &turn = next_turn[r.conversation - 1];
        OLIVE_ASSERT(r.turn == turn,
                     "conversation turns must be contiguous");
        ++turn;
        if (r.turn == 0) {
            OLIVE_ASSERT(r.submitStep >= last_opening,
                         "turn-0 arrival ticks must be nondecreasing");
            last_opening = r.submitStep;
        } else {
            OLIVE_ASSERT(r.submitStep == 0,
                         "later turns schedule relatively (gapSteps)");
        }
        OLIVE_ASSERT(!r.userTokens.empty(),
                     "every turn needs >= 1 fresh token");
        OLIVE_ASSERT(r.maxNew >= 1, "maxNew must be >= 1");
        for (int t : r.userTokens)
            OLIVE_ASSERT(t >= 0 &&
                             static_cast<size_t>(t) < spec_.vocab,
                         "trace token out of vocabulary");
        for (int t : r.stopTokens)
            OLIVE_ASSERT(t >= 0 &&
                             static_cast<size_t>(t) < spec_.vocab,
                         "trace stop token out of vocabulary");
    }
}

ReplayResult
replayTrace(ServeEngine &engine, const Workload &workload,
            const ReplayOptions &opts)
{
    workload.validate();
    OLIVE_ASSERT(engine.vocab() >= workload.spec().vocab,
                 "engine model vocabulary cannot cover the trace");
    OLIVE_ASSERT(engine.pendingCount() == 0 &&
                     engine.activeCount() == 0 &&
                     engine.finishedCount() == 0,
                 "trace replay needs a fresh engine");

    const auto &reqs = workload.requests();
    ReplayResult out;
    out.requests.resize(reqs.size());

    // Trace index of each (conversation, turn) so a finishing turn can
    // schedule its successor.
    std::vector<std::vector<size_t>> conv_turns(
        workload.spec().sessions);
    for (size_t i = 0; i < reqs.size(); ++i)
        conv_turns[reqs[i].conversation - 1].push_back(i);

    /** A submittable request: due tick plus its full prompt. */
    struct Due
    {
        size_t tick = 0;
        size_t idx = 0;
        std::vector<int> prompt;
    };
    std::vector<Due> waiting;
    for (size_t i = 0; i < reqs.size(); ++i) {
        if (reqs[i].turn != 0)
            continue;
        waiting.push_back(
            Due{reqs[i].submitStep, i, reqs[i].userTokens});
    }

    std::unordered_map<u64, size_t> engine_to_trace;
    size_t finished_seen = 0;
    size_t done = 0;
    size_t tick = 0;
    const size_t cap =
        opts.maxTicks > 0 ? opts.maxTicks : kDefaultReplayTickCap;
    while (done < reqs.size()) {
        OLIVE_ASSERT(tick < cap, "trace replay did not drain");
        // Submit everything due this tick, ordered by (due tick,
        // trace position) — a pure function of the trace and the
        // engine's own outputs, so the schedule is deterministic.
        std::vector<size_t> ready;
        for (size_t i = 0; i < waiting.size(); ++i)
            if (waiting[i].tick <= tick)
                ready.push_back(i);
        std::sort(ready.begin(), ready.end(),
                  [&](size_t a, size_t b) {
                      if (waiting[a].tick != waiting[b].tick)
                          return waiting[a].tick < waiting[b].tick;
                      return waiting[a].idx < waiting[b].idx;
                  });
        for (size_t i : ready) {
            Due &d = waiting[i];
            const WorkloadRequest &r = reqs[d.idx];
            out.requests[d.idx].promptTokens = d.prompt.size();
            const u64 eid = engine.submit(std::move(d.prompt),
                                          r.maxNew, r.stopTokens);
            out.requests[d.idx].traceId = r.id;
            out.requests[d.idx].engineId = eid;
            engine_to_trace.emplace(eid, d.idx);
        }
        for (auto it = ready.rbegin(); it != ready.rend(); ++it)
            waiting.erase(waiting.begin() +
                          static_cast<std::ptrdiff_t>(*it));
        out.peakPending =
            std::max(out.peakPending, engine.pendingCount());

        engine.step();
        if (opts.onStep)
            opts.onStep(engine);
        out.peakPending =
            std::max(out.peakPending, engine.pendingCount());
        out.peakActive =
            std::max(out.peakActive, engine.activeCount());

        const std::vector<FinishedRequest> fresh =
            engine.finishedSnapshot(finished_seen);
        finished_seen += fresh.size();
        for (const FinishedRequest &f : fresh) {
            const size_t idx = engine_to_trace.at(f.id);
            const WorkloadRequest &r = reqs[idx];
            ReplayRequestResult &rr = out.requests[idx];
            rr.generated = f.generated;
            rr.sharedPrefixRows = f.sharedPrefixRows;
            rr.submitStep = f.submitStep;
            rr.firstTokenStep = f.firstTokenStep;
            rr.finishStep = f.finishStep;
            rr.ttftSeconds = f.ttftSeconds;
            rr.stoppedByToken = f.stoppedByToken;
            ++done;
            // Chain the conversation: the next turn's prompt is the
            // whole dialogue so far plus its fresh user tokens.
            const auto &chain = conv_turns[r.conversation - 1];
            if (r.turn + 1 < chain.size()) {
                const size_t nxt = chain[r.turn + 1];
                Due d;
                d.tick = tick + reqs[nxt].gapSteps;
                d.idx = nxt;
                d.prompt = f.prompt;
                d.prompt.insert(d.prompt.end(), f.generated.begin(),
                                f.generated.end());
                d.prompt.insert(d.prompt.end(),
                                reqs[nxt].userTokens.begin(),
                                reqs[nxt].userTokens.end());
                waiting.push_back(std::move(d));
            }
        }
        ++tick;
    }
    out.ticks = tick;
    return out;
}

} // namespace serve
} // namespace olive
