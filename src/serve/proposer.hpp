/**
 * @file
 * Draft-token proposers for speculative decode.
 *
 * Speculative decode splits a decode step in two: a cheap Proposer
 * guesses the next k tokens, and the target model verifies all k in one
 * batched forwardChunk call.  Greedy accept/reject against the target's
 * own logits makes the output stream bit-identical to plain greedy
 * decode BY CONSTRUCTION — the proposer can only change how many rows
 * each verification step advances, never which tokens come out — so a
 * proposer needs no quality contract at all, only determinism.
 *
 * The built-in NgramProposer drafts by suffix matching over the
 * request's OWN token history (prompt + generation so far): if the
 * last n tokens occurred earlier in the stream, the tokens that
 * followed that occurrence are proposed to follow again.  This is the
 * draft-model-free scheme used by lookahead/prompt-lookup decoding:
 * free to evaluate, surprisingly effective on repetitive or
 * self-referential text, and exactly wrong-cost-free when it misses
 * (the verify chunk still produces one true token).
 *
 * Thread safety: propose() is const and must be pure — the engine
 * calls it concurrently from per-request batch lanes.
 */

#ifndef OLIVE_SERVE_PROPOSER_HPP
#define OLIVE_SERVE_PROPOSER_HPP

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace olive {
namespace serve {

/** Pluggable draft-token source for speculative decode. */
class Proposer
{
  public:
    virtual ~Proposer() = default;

    /** Display name, e.g. "ngram". */
    virtual std::string name() const = 0;

    /**
     * Propose up to @p max_draft tokens expected to follow @p history
     * (the request's prompt plus everything generated so far, oldest
     * first).  Returning fewer — or none — is always legal; the engine
     * falls back to the plain single-token step.  Must be a pure
     * function of its arguments (the engine's determinism contract
     * extends through it).
     */
    virtual std::vector<int> propose(std::span<const int> history,
                                     size_t max_draft) const = 0;
};

/**
 * Suffix-match n-gram proposer.  Finds the longest n in
 * [minNgram, maxNgram] such that the history's trailing n-gram occurred
 * earlier, picks the MOST RECENT earlier occurrence (recent context is
 * the best predictor of a loop's continuation), and drafts the tokens
 * that followed it.
 */
class NgramProposer final : public Proposer
{
  public:
    explicit NgramProposer(size_t max_ngram = 4, size_t min_ngram = 1);

    std::string name() const override { return "ngram"; }
    std::vector<int> propose(std::span<const int> history,
                             size_t max_draft) const override;

    size_t maxNgram() const { return maxNgram_; }
    size_t minNgram() const { return minNgram_; }

  private:
    size_t maxNgram_;
    size_t minNgram_;
};

/** Factory by id ("ngram"); fatal on an unknown id. */
std::unique_ptr<Proposer> makeProposer(const std::string &id);

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_PROPOSER_HPP
