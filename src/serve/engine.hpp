/**
 * @file
 * Continuous-batching serving engine over the incremental decoder.
 *
 * Requests (a prompt plus a generation budget) enter a FIFO queue; each
 * engine step admits pending requests into the active batch, assigns
 * every active request a share of a configurable per-step token budget
 * (decode phase: exactly one token; prefill phase: a chunk of the
 * remaining prompt — chunked prefill), and runs the assigned tokens
 * through nn::Transformer::forwardStep batched across requests with
 * util/parallel.  Finished requests are evicted at the end of the step,
 * releasing their KV-cache bytes to the accounting.
 *
 * Determinism contract: admission, budgeting and eviction are pure
 * functions of the queue state, and each request's step work is a pure
 * function of its own state, so the generated token streams are
 * bit-identical at every OLIVE_THREADS value (the CTest "serve" legs
 * assert this).  Only the measured latencies vary with the machine.
 */

#ifndef OLIVE_SERVE_ENGINE_HPP
#define OLIVE_SERVE_ENGINE_HPP

#include <deque>
#include <memory>
#include <vector>

#include "eval/perplexity.hpp"
#include "kv_cache.hpp"
#include "quant/scheme.hpp"

namespace olive {
namespace serve {

/** Engine configuration. */
struct ServeConfig
{
    KvCacheFormat cacheFormat = KvCacheFormat::Fp32;
    size_t maxBatchTokens = 8;    //!< Token budget per engine step.
    size_t maxActiveRequests = 8; //!< Continuous-batch width cap.
    Scheme *actScheme = nullptr;  //!< Optional per-token activation quant.
};

/** One generation request. */
struct Request
{
    u64 id = 0;
    std::vector<int> prompt;
    size_t maxNewTokens = 0;
};

/** A retired request with its generation and latency bookkeeping. */
struct FinishedRequest
{
    u64 id = 0;
    std::vector<int> prompt;
    std::vector<int> generated;
    u64 submitStep = 0;     //!< Engine step count at submit().
    u64 admitStep = 0;      //!< Step that admitted it into the batch.
    u64 firstTokenStep = 0; //!< Step that produced its first token.
    u64 finishStep = 0;     //!< Step that produced its last token.
    size_t cacheEncodedBytes = 0; //!< KV footprint at finish (its peak).
    size_t cacheFp32Bytes = 0;    //!< Same cache uncompressed.
};

/** Aggregate throughput/latency/memory accounting. */
struct ServeMetrics
{
    u64 steps = 0;
    u64 tokensProcessed = 0; //!< Prefill + decode tokens.
    u64 tokensGenerated = 0;
    double totalSeconds = 0.0;
    std::vector<float> stepSeconds;    //!< Per-step wall time.
    size_t peakEncodedCacheBytes = 0;  //!< Across all in-flight requests.
    size_t peakFp32CacheBytes = 0;

    /** Processed tokens per wall second. */
    double tokensPerSecond() const;

    /** Generated tokens per wall second. */
    double generatedPerSecond() const;

    /** p-th percentile (0..100) of step latency, in milliseconds. */
    double stepLatencyMs(double p) const;
};

/**
 * The serving engine.  The model and the config's actScheme must
 * outlive the engine.
 */
class ServeEngine
{
  public:
    ServeEngine(const eval::LmModel &model, ServeConfig config);

    /** Enqueue a request; returns its id. @pre prompt non-empty. */
    u64 submit(std::vector<int> prompt, size_t max_new_tokens);

    /**
     * Run one continuous-batching step (admit, budget, decode, evict).
     * Returns false — doing nothing — when no work is queued or active.
     */
    bool step();

    /**
     * Step until every submitted request has finished; returns the
     * number of steps taken.  @p max_steps 0 means no limit (progress
     * is guaranteed: every step with active work processes >= 1 token).
     */
    size_t runToCompletion(size_t max_steps = 0);

    size_t pendingCount() const { return pending_.size(); }
    size_t activeCount() const { return active_.size(); }

    /** Retired requests, in finish order. */
    const std::vector<FinishedRequest> &finished() const { return finished_; }

    const ServeMetrics &metrics() const { return metrics_; }
    const ServeConfig &config() const { return cfg_; }
    const KvScheme &kvScheme() const { return *scheme_; }

  private:
    struct ActiveRequest
    {
        Request req;
        u64 submitStep = 0;
        u64 admitStep = 0;
        u64 firstTokenStep = 0;
        DecodeState state;
        std::vector<int> generated;
        bool done = false;
    };

    /** FIFO admission into the active batch. */
    void admit();

    /** Run up to @p ntok tokens of one request; returns tokens done. */
    size_t runRequest(ActiveRequest &a, size_t ntok, u64 step_no) const;

    const eval::LmModel *model_;
    ServeConfig cfg_;
    std::unique_ptr<KvScheme> scheme_;
    std::deque<ActiveRequest> pending_; //!< Submitted, not yet admitted.
    std::vector<ActiveRequest> active_;
    std::vector<FinishedRequest> finished_;
    ServeMetrics metrics_;
    u64 nextId_ = 1;
};

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_ENGINE_HPP
