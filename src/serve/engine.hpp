/**
 * @file
 * Continuous-batching serving engine over the incremental decoder.
 *
 * Requests (a prompt plus a generation budget and optional stop-token
 * set) enter a FIFO queue; each engine step admits pending requests
 * into the active batch, assigns every active request a share of a
 * configurable per-step token budget (decode phase: one token, plus up
 * to draftLen speculative drafts; prefill phase: a chunk of the
 * remaining prompt — chunked prefill), and runs the assigned tokens
 * batched across requests with util/parallel.  Prompt chunks go
 * through nn::Transformer::forwardChunk as one (chunk, d) slab
 * (batched prefill); the token-by-token forwardStep loop is retained
 * as the parity oracle (prefillChunk <= 1).  With speculate on, a
 * pluggable Proposer drafts likely continuations that one forwardChunk
 * call verifies against the target logits — greedy accept/reject keeps
 * every stream bit-identical to plain decode, and rejected draft rows
 * roll back via KvCache::truncate before the step ends.  Finished
 * requests are evicted at the end of the step, releasing their
 * KV-cache blocks to the pool's free list without copying a byte.
 *
 * KV storage is paged by default (ServeConfig::pagedCache): one global
 * BlockPool per engine holds fixed-size blocks of a few token rows
 * each, and every (request, layer) cache is a block table into it.
 * Admission reserves each request's worst-case block count against the
 * pool capacity (poolBlocks) so allocation can never fail mid-step;
 * requests whose prompts share a tokenized prefix with an active
 * request reference the donor's full prefix blocks read-only
 * (refcounted, copy-on-write at the first divergent partial block) and
 * skip recomputing the shared rows — bit-exactly, because causal K/V
 * rows depend only on the tokens at or before them.  With
 * retainPrefixes on, retiring requests additionally park their block
 * tables in a bounded retention LRU so a later request (the next turn
 * of a conversation) can share the prefix with no live donor; retained
 * blocks are evicted under pool pressure before any admission stall.
 * The contiguous layout survives as pagedCache = false, the oracle
 * configuration the churn-fuzz suite compares against.
 *
 * Determinism contract: admission, budgeting, sharing and eviction are
 * pure functions of the queue state, and each request's step work is a
 * pure function of its own state, so the generated token streams are
 * bit-identical at every OLIVE_THREADS value (the CTest "serve" legs
 * assert this).  Only the measured latencies vary with the machine.
 *
 * Thread safety: one thread drives submit()/step(); an engine-wide
 * mutex makes the snapshot-style introspection hooks (metricsSnapshot,
 * pendingCount, activeCount, finishedCount, activeIds, plus the
 * pool's and decoded cache's own locked accessors) safe to call from
 * other threads while a step is in flight — a poller simply serializes
 * against step boundaries.  The reference-returning accessors
 * (metrics(), finished(), activeState()) remain quiescent-phase hooks:
 * valid only while no step() is running.  The step's parallel batch
 * region runs *inside* the engine's critical section; workers are
 * synchronized with the lock-holding issuer by the thread pool's job
 * handoff, so their access to the active batch is race-free even
 * though only the issuer formally holds the lock (annotated at the
 * lambda).  Lock hierarchy: engine mutex before pool mutex before
 * decoded-cache mutex, never any reverse edge.
 */

#ifndef OLIVE_SERVE_ENGINE_HPP
#define OLIVE_SERVE_ENGINE_HPP

#include <chrono>
#include <deque>
#include <list>
#include <memory>
#include <vector>

#include "block_pool.hpp"
#include "decoded_cache.hpp"
#include "eval/perplexity.hpp"
#include "kv_cache.hpp"
#include "proposer.hpp"
#include "quant/scheme.hpp"
#include "util/thread_annotations.hpp"

namespace olive {
namespace serve {

/** Engine configuration. */
struct ServeConfig
{
    KvCacheFormat cacheFormat = KvCacheFormat::Fp32;
    size_t maxBatchTokens = 8;    //!< Token budget per engine step.
    size_t maxActiveRequests = 8; //!< Continuous-batch width cap.
    Scheme *actScheme = nullptr;  //!< Optional per-token activation quant.

    bool pagedCache = true;  //!< Block-table storage (false = contiguous).
    size_t blockRows = 4;    //!< Token rows per block (paged only).
    size_t poolBlocks = 0;   //!< Pool capacity in blocks; 0 = unbounded.
    bool prefixSharing = true; //!< Share prompt-prefix blocks (paged only).

    /**
     * Cached-prefix retention (paged + prefixSharing only): when a
     * request retires, keep its block tables alive in a bounded LRU so
     * a follow-up request — e.g. the next turn of a conversation that
     * re-submits prompt + reply as its prefix — can seed via
     * shareFromTable with no live donor.  Retained blocks are extra
     * references outside the admission reservation sum, so the
     * capacity gate counts them and evicts retained entries (LRU
     * first) before it ever stalls a candidate: retention can only
     * save work, never delay admission.  Token streams are unaffected
     * by construction — the fuzz tier compares on vs off bit for bit.
     */
    bool retainPrefixes = false;
    /**
     * Retention budget in blocks (block-table entries summed across
     * layers and entries); 0 = unbounded.  A retiring prefix larger
     * than the whole budget is simply not retained.
     */
    size_t retainBlocks = 0;

    /**
     * Decoded-block working set (paged only): attention reads FP32
     * block contents from a shared LRU cache instead of re-decoding the
     * whole prefix into scratch each step — O(1) amortized codec work
     * per decode step, and prefix-shared blocks decode once per cohort.
     * false retains the scratch-materializing oracle path.
     */
    bool decodedCache = true;
    /** Working-set capacity in blocks; 0 = unbounded.  A soft cap:
     *  blocks pinned by in-flight attention are never evicted. */
    size_t decodedCacheBlocks = 0;

    /**
     * Batched prefill: prompt rows per Transformer::forwardChunk call
     * (capped by the step's token quota).  0 or 1 retains the
     * token-by-token forwardStep loop — the bit-exactness oracle the
     * parity sweep compares against.
     */
    size_t prefillChunk = 32;

    /**
     * Speculative decode: draft up to draftLen tokens per decode turn
     * (from @p proposer, or a default NgramProposer when null) and
     * verify them in one forwardChunk call.  Greedy accept/reject
     * against the target logits keeps the token streams bit-identical
     * to speculate = false; rejected draft rows are rolled back
     * (KvCache::truncate) before the next step.
     */
    bool speculate = false;
    size_t draftLen = 4;      //!< Max drafted tokens per decode turn.
    Proposer *proposer = nullptr; //!< Non-owning; must outlive the engine.
};

/** One generation request. */
struct Request
{
    u64 id = 0;
    std::vector<int> prompt;
    size_t maxNewTokens = 0;
    std::vector<int> stopTokens; //!< Generation ends at any of these.
    /** Admission priority: higher drains first; equal priorities keep
     *  strict FIFO order, so the default (every request at 0) is the
     *  original FIFO schedule — the determinism suites are unchanged. */
    int priority = 0;
};

/** A retired request with its generation and latency bookkeeping. */
struct FinishedRequest
{
    u64 id = 0;
    std::vector<int> prompt;
    std::vector<int> generated;
    u64 submitStep = 0;     //!< Engine step count at submit().
    u64 admitStep = 0;      //!< Step that admitted it into the batch.
    u64 firstTokenStep = 0; //!< Step that produced its first token.
    u64 finishStep = 0;     //!< Step that produced its last token.
    size_t cacheEncodedBytes = 0; //!< KV footprint at finish (its peak).
    size_t cacheFp32Bytes = 0;    //!< Same cache uncompressed.
    size_t sharedPrefixRows = 0;  //!< Rows seeded by prefix sharing.
    bool stoppedByToken = false;  //!< Ended at a stop token, not budget.
    bool cancelled = false;       //!< Retired by cancel(), not finished.
    double ttftSeconds = 0.0;     //!< Wall time, submit -> first token.
    u64 specDrafted = 0;          //!< Draft tokens verified for it.
    u64 specAccepted = 0;         //!< Drafts the target model confirmed.
};

/** Aggregate throughput/latency/memory accounting. */
struct ServeMetrics
{
    u64 steps = 0;
    u64 tokensProcessed = 0; //!< Prefill + decode tokens.
    u64 tokensGenerated = 0;
    double totalSeconds = 0.0;
    std::vector<float> stepSeconds;    //!< Per-step wall time.
    size_t peakEncodedCacheBytes = 0;  //!< Across all in-flight requests.
    size_t peakFp32CacheBytes = 0;
    /** Peak of the pool's (refs-1) x block bytes — what sharing saves. */
    size_t peakSharedSavedBytes = 0;
    /** Rows whose payload was memcpy'd (copy-on-write only; admission
     *  and eviction never copy — bench_serving asserts 0 unshared). */
    u64 cowCopyRows = 0;
    /** Prefill rows skipped because a shared prefix seeded them. */
    u64 sharedPrefillRowsSkipped = 0;
    /** Decoded-block working set counters (cumulative; zero when the
     *  cache is off or the engine is contiguous).  decodedCacheRows is
     *  the O(1)-amortization witness: (K, V) slot pairs ever decoded —
     *  linear in appended rows when the working set holds, quadratic if
     *  every step re-decoded its prefix.  Exact values are
     *  deterministic only single-threaded (thread interleaving reorders
     *  LRU traffic); token streams are bit-identical regardless. */
    u64 decodedCacheHits = 0;
    u64 decodedCacheMisses = 0;
    u64 decodedCacheEvictions = 0;
    u64 decodedCacheRows = 0;
    size_t decodedCachePeakBytes = 0;
    /** Per-request wall time from submit() to its first generated
     *  token (time-to-first-token), in finish-of-first-token order.
     *  A measured latency: varies with the machine, never with the
     *  thread count in token content terms. */
    std::vector<float> ttftSeconds;
    /** Speculative decode: drafts verified / drafts accepted.  Pure
     *  functions of the schedule, deterministic at every thread
     *  count (unlike the latencies). */
    u64 specDrafted = 0;
    u64 specAccepted = 0;
    /** Requests retired through cancel() (queued or active). */
    u64 requestsCancelled = 0;
    /** Cached-prefix retention counters (all 0 when retainPrefixes is
     *  off).  retainedBlocks/retainedPeakBytes are pool-level (each
     *  distinct block counted once however many entries hold it);
     *  retentionEvictions counts entries dropped for any reason —
     *  admission pressure, the retainBlocks cap, or an explicit
     *  clearRetainedPrefixes(). */
    u64 retentionStored = 0;  //!< Retired prefixes entered into the LRU.
    u64 retentionHits = 0;    //!< Admissions seeded from a retained prefix.
    u64 retentionSharedRows = 0; //!< Prefill rows those admissions skipped.
    u64 retentionEvictions = 0;  //!< Entries dropped from the LRU.
    size_t retainedBlocks = 0;   //!< Pool blocks retention holds now.
    size_t retainedPeakBytes = 0; //!< Peak pool bytes held by retention.

    /** Processed tokens per wall second. */
    double tokensPerSecond() const;

    /** Generated tokens per wall second. */
    double generatedPerSecond() const;

    /** p-th percentile (0..100) of step latency, in milliseconds. */
    double stepLatencyMs(double p) const;

    /** p-th percentile (0..100) of time-to-first-token, in ms. */
    double ttftMs(double p) const;

    /** Accepted / drafted; 0 when nothing was drafted. */
    double specAcceptRate() const;
};

/**
 * The serving engine.  The model and the config's actScheme must
 * outlive the engine.
 */
class ServeEngine
{
  public:
    ServeEngine(const eval::LmModel &model, ServeConfig config);

    /** Releases every retained prefix reference before the pool dies. */
    ~ServeEngine();

    /**
     * Enqueue a request; returns its id.  @pre prompt non-empty.
     * Generation ends at max_new_tokens or at the first token in
     * @p stop_tokens (which is included in the generation).  The queue
     * is ordered by descending @p priority, FIFO within a priority.
     */
    u64 submit(std::vector<int> prompt, size_t max_new_tokens,
               std::vector<int> stop_tokens = {},
               int priority = 0) OLIVE_EXCLUDES(mu_);

    /**
     * Retire a queued or active request immediately, releasing its
     * KV-cache blocks and capacity reservation; it lands in finished()
     * with cancelled = true and whatever tokens it had generated.
     * Returns false when @p id is unknown or already finished.  Safe
     * to call from any thread; a call during a step() serializes at
     * the step boundary (the step's tokens land before the cancel).
     */
    bool cancel(u64 id) OLIVE_EXCLUDES(mu_);

    /**
     * Run one continuous-batching step (admit, budget, decode, evict).
     * Returns false — doing nothing — when no work is queued or active.
     * Holds the engine mutex for the whole step: concurrent pollers of
     * the snapshot accessors observe between-step states only.
     */
    bool step() OLIVE_EXCLUDES(mu_);

    /**
     * Step until every submitted request has finished; returns the
     * number of steps taken.  @p max_steps 0 means no limit (progress
     * is guaranteed: every step with active work processes >= 1 token).
     */
    size_t runToCompletion(size_t max_steps = 0);

    // ---- snapshot introspection (locked: pollable from any thread
    // while another thread steps; see the file comment) ----
    size_t pendingCount() const OLIVE_EXCLUDES(mu_);
    size_t activeCount() const OLIVE_EXCLUDES(mu_);
    size_t finishedCount() const OLIVE_EXCLUDES(mu_);

    /** Copy of the metrics, taken under the engine mutex. */
    ServeMetrics metricsSnapshot() const OLIVE_EXCLUDES(mu_);

    /** Ids of currently active requests, in batch order (test hook). */
    std::vector<u64> activeIds() const OLIVE_EXCLUDES(mu_);

    /** Ids of queued (not yet admitted) requests, in queue order. */
    std::vector<u64> pendingIds() const OLIVE_EXCLUDES(mu_);

    /**
     * Copies of finished()[from..], taken under the engine mutex — the
     * incremental-consumption form of finished() that is safe while
     * another thread steps.  @p from beyond the end returns empty.
     */
    std::vector<FinishedRequest> finishedSnapshot(size_t from = 0) const
        OLIVE_EXCLUDES(mu_);

    /** Generation progress of one active request (progressSnapshot). */
    struct ActiveProgress
    {
        u64 id = 0;
        size_t promptRows = 0;   //!< Prompt length in tokens.
        size_t position = 0;     //!< Cache rows appended so far.
        std::vector<int> generated; //!< Tokens emitted so far (copy).
    };

    /** Progress of every active request, in batch order, under the
     *  engine mutex — how a streaming front end observes tokens of
     *  requests that have not finished (and so are not yet visible
     *  through finishedSnapshot()). */
    std::vector<ActiveProgress> progressSnapshot() const
        OLIVE_EXCLUDES(mu_);

    /** Block references the retention LRU holds right now, summed over
     *  entries and layers (the capacity-gate charge; the pool's
     *  retainedBlocks() is the each-block-once view). */
    size_t retainedBlockCount() const OLIVE_EXCLUDES(mu_);

    /** Drop every retained prefix, releasing its block references —
     *  counted in retentionEvictions.  Safe from any thread. */
    void clearRetainedPrefixes() OLIVE_EXCLUDES(mu_);

    /** Model vocabulary size (immutable; any thread). */
    size_t vocab() const { return model_->vocab; }

    // ---- quiescent-phase accessors (valid only while no step() is in
    // flight: they hand out references into engine-guarded state) ----
    /** Retired requests, in finish order. */
    const std::vector<FinishedRequest> &finished() const { return finished_; }

    const ServeMetrics &metrics() const { return metrics_; }
    const ServeConfig &config() const { return cfg_; }
    const KvScheme &kvScheme() const { return *scheme_; }

    /** The pool behind a paged engine; nullptr when contiguous.  The
     *  pointer is fixed at construction, and the pool's accounting
     *  accessors take its own lock — safe to poll concurrently. */
    const BlockPool *blockPool() const { return pool_.get(); }

    /** The decoded-block working set; nullptr when off or contiguous.
     *  Fixed at construction; its accessors lock internally. */
    const DecodedBlockCache *decodedCache() const { return dcache_.get(); }

    /** Decode state of an active request; nullptr if not active.  The
     *  lookup locks, but the returned pointer targets guarded state —
     *  dereference it only in quiescent phases (no step() in flight). */
    const DecodeState *activeState(u64 id) const OLIVE_EXCLUDES(mu_);

  private:
    struct ActiveRequest
    {
        Request req;
        u64 submitStep = 0;
        u64 admitStep = 0;
        u64 firstTokenStep = 0;
        std::chrono::steady_clock::time_point submitTime;
        double ttftSeconds = 0.0;
        DecodeState state;
        std::vector<int> generated;
        bool done = false;
        bool stoppedByToken = false;
        size_t sharedPrefixRows = 0;
        size_t reservedBlocks = 0; //!< Admission-time capacity charge.
        u64 specDrafted = 0;
        u64 specAccepted = 0;
    };

    /**
     * One retired request's cached prefix, kept alive past its
     * lifetime by retention references on every table entry.  tokens
     * holds the first rows entries of prompt ++ generated — exactly
     * the tokens whose K/V rows the tables cover, which is what a
     * follow-up prompt is prefix-matched against.
     */
    struct RetainedPrefix
    {
        std::vector<int> tokens;
        size_t rows = 0;   //!< Cache rows the tables cover.
        size_t blocks = 0; //!< Table entries summed across layers.
        std::vector<std::vector<u32>> tables; //!< Per-layer block ids.
    };

    /** FIFO admission into the active batch (see admit() in the .cpp). */
    void admit() OLIVE_REQUIRES(mu_);

    /** Enter a retiring request's prefix into the retention LRU (no-op
     *  unless retention applies and the prefix spans >= one block). */
    void retainPrefix(ActiveRequest &a) OLIVE_REQUIRES(mu_);

    /** Drop the least-recently-used retained prefix. */
    void evictOldestRetained() OLIVE_REQUIRES(mu_);

    /** Worst-case pool blocks @p req can ever reference, all layers. */
    size_t worstCaseBlocks(const Request &req) const;

    /** Run up to @p ntok tokens of one request; returns tokens done. */
    size_t runRequest(ActiveRequest &a, size_t ntok, u64 step_no) const;

    const eval::LmModel *model_;
    ServeConfig cfg_;
    std::unique_ptr<KvScheme> scheme_;
    /** Default n-gram proposer when speculate is on and cfg_.proposer
     *  is null; proposer_ points at whichever is in force. */
    std::unique_ptr<Proposer> ownedProposer_;
    const Proposer *proposer_ = nullptr;
    std::unique_ptr<BlockPool> pool_; //!< Paged engines only.
    /** Shared decoded working set.  Declared after pool_ and before the
     *  request containers: destroying active_/pending_ releases blocks,
     *  whose pool hook invalidates dcache_ — so caches die first, the
     *  working set second, the pool last. */
    std::unique_ptr<DecodedBlockCache> dcache_;

    /** Serializes submit()/step() against the snapshot accessors.
     *  ServeMetrics' plain (non-atomic) fields are sound because every
     *  read and write happens under this lock — the documented
     *  alternative to per-counter atomics, chosen so a snapshot is
     *  internally consistent (e.g. steps matches stepSeconds.size()). */
    mutable Mutex mu_;
    size_t committedBlocks_ OLIVE_GUARDED_BY(mu_) =
        0; //!< Sum of active reservations.
    /** Submitted, not yet admitted. */
    std::deque<ActiveRequest> pending_ OLIVE_GUARDED_BY(mu_);
    std::vector<ActiveRequest> active_ OLIVE_GUARDED_BY(mu_);
    std::vector<FinishedRequest> finished_ OLIVE_GUARDED_BY(mu_);
    /** Retention LRU: front is the eviction victim, a matched entry is
     *  spliced to the back.  std::list so the in-flight match iterator
     *  survives evicting other entries during the capacity gate. */
    std::list<RetainedPrefix> retained_ OLIVE_GUARDED_BY(mu_);
    /** Sum of retained_ entry block counts (the capacity-gate charge;
     *  a block shared by two entries is deliberately counted twice —
     *  conservative, so the reservation proof stays airtight). */
    size_t retainedHeldBlocks_ OLIVE_GUARDED_BY(mu_) = 0;
    ServeMetrics metrics_ OLIVE_GUARDED_BY(mu_);
    u64 nextId_ OLIVE_GUARDED_BY(mu_) = 1;
};

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_ENGINE_HPP
