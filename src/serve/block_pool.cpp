#include "block_pool.hpp"

#include <algorithm>
#include <cstring>

namespace olive {
namespace serve {

namespace {

/**
 * Index reservation for capacity-unbounded pools: the block index must
 * never reallocate (row accessors read it lock-free), so it is
 * reserved once at construction.  2^20 blocks of even the smallest
 * block dwarf any workload in this repository; allocate() asserts the
 * cap rather than silently reallocating under concurrent readers.
 */
constexpr size_t kUnboundedIndexCap = size_t{1} << 20;

} // namespace

BlockPool::BlockPool(const KvScheme &scheme, size_t d, size_t block_rows,
                     size_t max_blocks)
    : scheme_(&scheme), d_(d), blockRows_(block_rows),
      maxBlocks_(max_blocks), rowBytes_(scheme.rowBytes(d))
{
    OLIVE_ASSERT(d > 0, "block pool row width must be positive");
    OLIVE_ASSERT(block_rows > 0, "blocks must hold at least one row");
    blocks_.reserve(maxBlocks_ > 0 ? maxBlocks_ : kUnboundedIndexCap);
}

size_t
BlockPool::blockBytes() const
{
    return blockRows_ * 2 * (rowBytes_ + scheme_->metaBytesPerRow());
}

// Lock-free: ids below the published count index stable unique_ptr
// slots (the vector never reallocates — reserved at construction), and
// a caller only dereferences ids published to it, so the pointed-to
// Block cannot be mutated structurally underneath it.  The refcount
// read is the liveness assert only: relaxed would do (payload
// publication rides on the engine's step barrier or mu_, not on this
// load), acquire is kept to match publishedBlocks_'s pairing.

BlockPool::Block &
BlockPool::live(u32 id)
{
    OLIVE_ASSERT(
        id < publishedBlocks_.load(std::memory_order_acquire) &&
            blocks_[id]->refcount.load(std::memory_order_acquire) > 0,
        "block id is not live");
    return *blocks_[id];
}

const BlockPool::Block &
BlockPool::live(u32 id) const
{
    OLIVE_ASSERT(
        id < publishedBlocks_.load(std::memory_order_acquire) &&
            blocks_[id]->refcount.load(std::memory_order_acquire) > 0,
        "block id is not live");
    return *blocks_[id];
}

// Under mu_ the refcount cannot move (mutations are lock-protected),
// so relaxed loads are exact here.

BlockPool::Block &
BlockPool::liveLocked(u32 id)
{
    OLIVE_ASSERT(
        id < blocks_.size() &&
            blocks_[id]->refcount.load(std::memory_order_relaxed) > 0,
        "block id is not live");
    return *blocks_[id];
}

const BlockPool::Block &
BlockPool::liveLocked(u32 id) const
{
    OLIVE_ASSERT(
        id < blocks_.size() &&
            blocks_[id]->refcount.load(std::memory_order_relaxed) > 0,
        "block id is not live");
    return *blocks_[id];
}

u32
BlockPool::allocate()
{
    // The engine appends to different requests' caches in parallel, so
    // concurrent allocate() calls are the norm; everything here is
    // under the lock.  Within an engine step blocks are only ever
    // allocated (releases happen in the serial eviction phase), so the
    // peak update commutes across interleavings.
    const MutexLock lock(mu_);
    u32 id;
    if (!freeList_.empty()) {
        id = freeList_.back();
        freeList_.pop_back();
    } else {
        OLIVE_ASSERT(maxBlocks_ == 0 || blocks_.size() < maxBlocks_,
                     "block pool capacity exhausted — the admission gate "
                     "must reserve blocks before they are needed");
        OLIVE_ASSERT(blocks_.size() < blocks_.capacity(),
                     "block pool outgrew its reserved index");
        id = static_cast<u32>(blocks_.size());
        auto b = std::make_unique<Block>();
        b->payload.resize(blockRows_ * 2 * rowBytes_);
        b->meta.resize(blockRows_ * 2);
        blocks_.push_back(std::move(b));
        publishedBlocks_.store(blocks_.size(), std::memory_order_release);
    }
    Block &b = *blocks_[id];
    OLIVE_ASSERT(b.refcount.load(std::memory_order_relaxed) == 0,
                 "allocated a block that is still live");
    // relaxed store: under mu_, and the block is published to its
    // owner through the engine's structures, not through this value.
    b.refcount.store(1, std::memory_order_relaxed);
    ++blocksInUse_;
    peakBytes_ = std::max(peakBytes_, blocksInUse_ * blockBytes());
    return id;
}

void
BlockPool::retain(u32 id)
{
    // Lock before the liveness check: a concurrent release of another
    // reference must not interleave between check and increment.
    const MutexLock lock(mu_);
    Block &b = liveLocked(id);
    b.refcount.fetch_add(1, std::memory_order_relaxed);
    ++sharedBlocks_;
}

void
BlockPool::setReleaseHook(std::function<void(u32)> hook)
{
    const MutexLock lock(mu_);
    releaseHook_ = std::move(hook);
}

void
BlockPool::release(u32 id)
{
    const MutexLock lock(mu_);
    releaseLocked(id);
}

void
BlockPool::releaseLocked(u32 id)
{
    Block &b = liveLocked(id);
    if (b.refcount.fetch_sub(1, std::memory_order_relaxed) == 1) {
        OLIVE_ASSERT(b.retainedRefs == 0,
                     "last reference released out from under the "
                     "retention cache");
        --blocksInUse_;
        freeList_.push_back(id);
        // The payload is now recyclable: give the decoded working set
        // its chance to drop the corresponding entry before the id can
        // be handed out again (the hook's lock-order contract is in
        // setReleaseHook's comment: pool mu_ is held here, so the hook
        // takes the decoded-cache mutex *inside* it).
        if (releaseHook_)
            releaseHook_(id);
    } else {
        --sharedBlocks_;
    }
}

void
BlockPool::retainRetained(u32 id)
{
    const MutexLock lock(mu_);
    Block &b = liveLocked(id);
    b.refcount.fetch_add(1, std::memory_order_relaxed);
    ++sharedBlocks_;
    if (b.retainedRefs++ == 0)
        ++retainedBlocks_;
}

void
BlockPool::releaseRetained(u32 id)
{
    const MutexLock lock(mu_);
    Block &b = liveLocked(id);
    OLIVE_ASSERT(b.retainedRefs > 0,
                 "block holds no retention reference to release");
    if (--b.retainedRefs == 0)
        --retainedBlocks_;
    releaseLocked(id);
}

int
BlockPool::refcount(u32 id) const
{
    const MutexLock lock(mu_);
    OLIVE_ASSERT(id < blocks_.size(), "block id out of range");
    return blocks_[id]->refcount.load(std::memory_order_relaxed);
}

// Slot layout: the payload keeps all K rows first, then all V rows, so
// a slot's K and V rows are each contiguous runs of rowBytes_.  Meta is
// stored (K meta, V meta) interleaved per slot.

u8 *
BlockPool::kRow(u32 id, size_t slot)
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).payload.data() + slot * rowBytes_;
}

u8 *
BlockPool::vRow(u32 id, size_t slot)
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).payload.data() + (blockRows_ + slot) * rowBytes_;
}

const u8 *
BlockPool::kRow(u32 id, size_t slot) const
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).payload.data() + slot * rowBytes_;
}

const u8 *
BlockPool::vRow(u32 id, size_t slot) const
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).payload.data() + (blockRows_ + slot) * rowBytes_;
}

KvRowMeta &
BlockPool::kMeta(u32 id, size_t slot)
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).meta[slot * 2];
}

KvRowMeta &
BlockPool::vMeta(u32 id, size_t slot)
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).meta[slot * 2 + 1];
}

const KvRowMeta &
BlockPool::kMeta(u32 id, size_t slot) const
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).meta[slot * 2];
}

const KvRowMeta &
BlockPool::vMeta(u32 id, size_t slot) const
{
    OLIVE_ASSERT(slot < blockRows_, "block slot out of range");
    return live(id).meta[slot * 2 + 1];
}

void
BlockPool::copyRows(u32 src, u32 dst, size_t nrows)
{
    OLIVE_ASSERT(nrows <= blockRows_, "cannot copy more rows than a block");
    OLIVE_ASSERT(src != dst, "copy-on-write source and target must differ");
    const MutexLock lock(mu_);
    const Block &s = liveLocked(src);
    Block &t = liveLocked(dst);
    // K rows and V rows are each contiguous prefixes of their halves.
    std::memcpy(t.payload.data(), s.payload.data(), nrows * rowBytes_);
    std::memcpy(t.payload.data() + blockRows_ * rowBytes_,
                s.payload.data() + blockRows_ * rowBytes_,
                nrows * rowBytes_);
    std::copy(s.meta.begin(),
              s.meta.begin() + static_cast<std::ptrdiff_t>(nrows * 2),
              t.meta.begin());
    payloadCopyRows_ += nrows;
}

size_t
BlockPool::blocksInUse() const
{
    const MutexLock lock(mu_);
    return blocksInUse_;
}

size_t
BlockPool::freeBlocks() const
{
    const MutexLock lock(mu_);
    return freeList_.size();
}

size_t
BlockPool::bytesInUse() const
{
    const MutexLock lock(mu_);
    return blocksInUse_ * blockBytes();
}

size_t
BlockPool::peakBytes() const
{
    const MutexLock lock(mu_);
    return peakBytes_;
}

size_t
BlockPool::sharedSavedBytes() const
{
    const MutexLock lock(mu_);
    return sharedBlocks_ * blockBytes();
}

u64
BlockPool::payloadCopyRows() const
{
    const MutexLock lock(mu_);
    return payloadCopyRows_;
}

size_t
BlockPool::retainedBlocks() const
{
    const MutexLock lock(mu_);
    return retainedBlocks_;
}

size_t
BlockPool::retainedBytes() const
{
    const MutexLock lock(mu_);
    return retainedBlocks_ * blockBytes();
}

void
BlockPool::checkInvariants() const
{
    const MutexLock lock(mu_);
    OLIVE_ASSERT(publishedBlocks_.load(std::memory_order_relaxed) ==
                     blocks_.size(),
                 "published block count drifted from the index");
    size_t in_use = 0, extra_refs = 0, retained = 0;
    for (const auto &b : blocks_) {
        const int refs = b->refcount.load(std::memory_order_relaxed);
        OLIVE_ASSERT(refs >= 0, "negative block refcount");
        OLIVE_ASSERT(b->retainedRefs >= 0 && b->retainedRefs <= refs,
                     "retention references exceed the block refcount");
        if (refs > 0) {
            ++in_use;
            extra_refs += static_cast<size_t>(refs) - 1;
            if (b->retainedRefs > 0)
                ++retained;
        }
    }
    OLIVE_ASSERT(in_use == blocksInUse_,
                 "blocksInUse drifted from the per-block refcounts");
    OLIVE_ASSERT(extra_refs == sharedBlocks_,
                 "sharedBlocks drifted from the per-block refcounts");
    OLIVE_ASSERT(retained == retainedBlocks_,
                 "retainedBlocks drifted from the per-block retention "
                 "refcounts");
    OLIVE_ASSERT(in_use + freeList_.size() == blocks_.size(),
                 "free list does not cover exactly the refcount-0 blocks");
    // bytesInUse() is blocksInUse_ x blockBytes() by definition now
    // (computed under this same lock), so only the peak needs checking.
    OLIVE_ASSERT(peakBytes_ >= blocksInUse_ * blockBytes(),
                 "peak bytes fell below the current footprint");
    OLIVE_ASSERT(maxBlocks_ == 0 || blocks_.size() <= maxBlocks_,
                 "pool grew beyond its capacity cap");
    // Free-list ids must be unique and actually free.
    std::vector<u32> fl = freeList_;
    std::sort(fl.begin(), fl.end());
    for (size_t i = 0; i < fl.size(); ++i) {
        OLIVE_ASSERT(i == 0 || fl[i] != fl[i - 1],
                     "free list holds a block twice (double free)");
        OLIVE_ASSERT(fl[i] < blocks_.size() &&
                         blocks_[fl[i]]->refcount.load(
                             std::memory_order_relaxed) == 0,
                     "free list holds a live block");
    }
}

} // namespace serve
} // namespace olive
