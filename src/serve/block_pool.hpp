/**
 * @file
 * Fixed-size block pool backing the paged KV cache.
 *
 * Real serving engines (vLLM-style PagedAttention) stop storing each
 * request's KV cache as one contiguous stream: the cache is paged into
 * fixed-size blocks of a few token rows each, owned by a global pool,
 * and per-(request, layer) block tables map logical row indices to
 * (block, slot).  Admission allocates blocks from a free list, eviction
 * returns them without touching payload bytes, and two requests whose
 * prompts share a tokenized prefix can reference the same blocks
 * read-only through refcounts (copy-on-write at the first divergent,
 * partially filled block).
 *
 * A block holds blockRows() token slots; each slot stores one token's
 * encoded K row and V row (through the pool's KvScheme codec) plus
 * their KvRowMeta.  Blocks are append-once: rows are only ever written
 * into a block while it is the exclusively owned tail of exactly one
 * block table, so a block that became shareable (full, refcounted) is
 * immutable from then on — sharing never needs locks and never changes
 * bytes.
 *
 * Accounting is pool-level: bytesInUse() == blocksInUse() x
 * blockBytes() at every instant (checkInvariants() recomputes both
 * sides from scratch), peakBytes() is monotone within a run, and
 * sharedSavedBytes() counts the bytes that extra references avoid
 * duplicating.  payloadCopyRows() counts every row whose payload the
 * pool ever memcpy'd — copy-on-write is the only source, so the serving
 * bench can assert that admission and eviction copy nothing.
 *
 * Thread safety: the engine appends to different requests' caches
 * concurrently, so allocate() (the only structural mutation reachable
 * from that path) is serialized by mu_, and the accounting peak
 * stays deterministic because blocks are only released between steps —
 * within a step blocksInUse is monotone, so its per-step maximum is
 * interleaving-independent.  retain/release/copyRows only run from the
 * engine's serial admission/eviction phases but take the lock anyway,
 * as do all accounting accessors (a metrics poller may sample them
 * while another thread allocates).  Per-block refcounts are atomic:
 * they are only *mutated* under mu_ (so the aggregate counters update
 * atomically with them), but the lock-free row accessors read them in
 * their liveness assert — see live().
 *
 * Row accessors are lock-free: the block index is reserved up front
 * (never reallocates; allocate() asserts the cap), a block's storage
 * address is stable for its lifetime, blocks are append-once, and an
 * id is only ever dereferenced by threads it was published to (the
 * engine's step barrier or the pool lock carries the publication).
 *
 * Lock hierarchy: mu_ is a leaf except for the release hook, which
 * runs under mu_ and takes the decoded working set's cache mutex —
 * pool mutex before decoded-cache mutex, never the reverse (the
 * decoded cache only calls the pool's lock-free row accessors).
 */

#ifndef OLIVE_SERVE_BLOCK_POOL_HPP
#define OLIVE_SERVE_BLOCK_POOL_HPP

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "kv_cache.hpp"
#include "util/thread_annotations.hpp"

namespace olive {
namespace serve {

/** Global pool of fixed-size KV blocks (see file comment). */
class BlockPool
{
  public:
    /**
     * @param scheme     Row codec; must outlive the pool.
     * @param d          Model row width.
     * @param block_rows Token slots per block (>= 1).
     * @param max_blocks Capacity cap; 0 means unbounded.
     */
    BlockPool(const KvScheme &scheme, size_t d, size_t block_rows,
              size_t max_blocks = 0);

    const KvScheme &scheme() const { return *scheme_; }
    size_t dModel() const { return d_; }
    size_t blockRows() const { return blockRows_; }
    size_t capacity() const { return maxBlocks_; }

    /** Encoded payload bytes of one K (or V) row. */
    size_t rowBytes() const { return rowBytes_; }

    /**
     * The pool-level accounting unit: payload of blockRows() K+V row
     * pairs plus their per-row codec meta.  A partially filled block
     * still occupies (and is charged) the full block.
     */
    size_t blockBytes() const;

    /**
     * Allocate a block with refcount 1, reusing the free list before
     * growing.  Panics if a capacity cap would be exceeded — callers
     * (the engine's admission gate) must reserve capacity up front.
     */
    u32 allocate() OLIVE_EXCLUDES(mu_);

    /** Add a reference (prefix sharing). @pre block is live. */
    void retain(u32 id) OLIVE_EXCLUDES(mu_);

    /**
     * Drop one reference; the block returns to the free list when the
     * count hits zero.  Payload bytes are never touched.  @pre live.
     */
    void release(u32 id) OLIVE_EXCLUDES(mu_);

    /**
     * retain()/release() variants for the engine's cached-prefix
     * retention LRU, tracked separately so pool stats can report how
     * many blocks (and bytes) outlive every owning request.  A
     * retention reference is an ordinary reference plus per-block
     * retention bookkeeping; checkInvariants() recomputes it and
     * asserts a plain release() never drops a block's last reference
     * while a retention reference is outstanding.
     */
    void retainRetained(u32 id) OLIVE_EXCLUDES(mu_);
    void releaseRetained(u32 id) OLIVE_EXCLUDES(mu_);

    /** Current reference count (0 = free). */
    int refcount(u32 id) const OLIVE_EXCLUDES(mu_);

    /**
     * Hook invoked (under the pool lock) whenever a block's refcount
     * hits zero in release() — the moment its payload becomes eligible
     * for free-list recycling.  The decoded-block working set registers
     * itself here so a recycled id can never serve stale decoded rows.
     * The hook must not call back into pool methods that take the pool
     * lock, and whatever it references must outlive every cache that
     * still holds blocks (the engine orders its members accordingly).
     */
    void setReleaseHook(std::function<void(u32)> hook) OLIVE_EXCLUDES(mu_);

    // ---- row storage access (slot = logical row % blockRows) ----
    u8 *kRow(u32 id, size_t slot);
    u8 *vRow(u32 id, size_t slot);
    const u8 *kRow(u32 id, size_t slot) const;
    const u8 *vRow(u32 id, size_t slot) const;
    KvRowMeta &kMeta(u32 id, size_t slot);
    KvRowMeta &vMeta(u32 id, size_t slot);
    const KvRowMeta &kMeta(u32 id, size_t slot) const;
    const KvRowMeta &vMeta(u32 id, size_t slot) const;

    /**
     * Copy-on-write helper: copy slots [0, nrows) of @p src into @p dst
     * (payload and meta), counting the rows in payloadCopyRows().  The
     * only pool operation that duplicates payload bytes.
     */
    void copyRows(u32 src, u32 dst, size_t nrows) OLIVE_EXCLUDES(mu_);

    // ---- accounting (each takes mu_: safe to poll concurrently) ----
    size_t blocksInUse() const OLIVE_EXCLUDES(mu_);
    size_t freeBlocks() const OLIVE_EXCLUDES(mu_);
    size_t bytesInUse() const OLIVE_EXCLUDES(mu_);
    /** High-water mark of bytesInUse(); monotone within a run. */
    size_t peakBytes() const OLIVE_EXCLUDES(mu_);
    /** Bytes extra references avoid duplicating: sum (refs-1) x block. */
    size_t sharedSavedBytes() const OLIVE_EXCLUDES(mu_);
    /** Rows whose payload was ever memcpy'd (copy-on-write only). */
    u64 payloadCopyRows() const OLIVE_EXCLUDES(mu_);
    /** Blocks holding >= 1 retention reference (cached-prefix LRU). */
    size_t retainedBlocks() const OLIVE_EXCLUDES(mu_);
    /** Pool bytes those blocks occupy: retainedBlocks() x blockBytes(). */
    size_t retainedBytes() const OLIVE_EXCLUDES(mu_);

    /**
     * Test hook: recompute every aggregate (blocks in use, shared
     * block count, free-list membership) from the raw block array and
     * panic on any mismatch — the BlockPool property tests call this
     * after every mutation.
     */
    void checkInvariants() const OLIVE_EXCLUDES(mu_);

  private:
    struct Block
    {
        std::vector<u8> payload;     //!< blockRows x (K row + V row).
        std::vector<KvRowMeta> meta; //!< blockRows x (K meta, V meta).
        /** References held by block tables.  Mutated only under the
         *  pool's mu_ (never expressible as GUARDED_BY from a nested
         *  struct), atomic because live()'s lock-free liveness assert
         *  reads it — see the orderings documented at each access. */
        std::atomic<int> refcount{0};
        /** How many of those references belong to the engine's
         *  cached-prefix retention LRU.  Read and written only under
         *  the pool's mu_ (plain int is sound); always <= refcount. */
        int retainedRefs = 0;
    };

    /** Lock-free liveness check + lookup for the row accessors. */
    Block &live(u32 id);
    const Block &live(u32 id) const;

    /** Same check under the pool lock (structural mutation paths). */
    Block &liveLocked(u32 id) OLIVE_REQUIRES(mu_);
    const Block &liveLocked(u32 id) const OLIVE_REQUIRES(mu_);

    /** Body of release(), shared with releaseRetained(). */
    void releaseLocked(u32 id) OLIVE_REQUIRES(mu_);

    const KvScheme *scheme_;
    size_t d_;
    size_t blockRows_;
    size_t maxBlocks_;
    size_t rowBytes_;

    mutable Mutex mu_; //!< Guards everything below but payloads.
    std::function<void(u32)> releaseHook_ OLIVE_GUARDED_BY(mu_);
    /** The block index.  Structural mutation (push_back) only under
     *  mu_; left unannotated because the row accessors index it
     *  lock-free below publishedBlocks_ (reserved storage — the begin
     *  pointer never moves — and unique_ptr targets are
     *  address-stable), which capability analysis cannot express. */
    std::vector<std::unique_ptr<Block>> blocks_;
    /** blocks_.size(), published for lock-free accessor range checks:
     *  release store after push_back under mu_, acquire load in
     *  live(), so an id below the loaded count indexes a fully
     *  constructed Block. */
    std::atomic<size_t> publishedBlocks_{0};
    std::vector<u32> freeList_ OLIVE_GUARDED_BY(mu_);
    size_t blocksInUse_ OLIVE_GUARDED_BY(mu_) = 0;
    /** Sum over live blocks of (refcount-1). */
    size_t sharedBlocks_ OLIVE_GUARDED_BY(mu_) = 0;
    size_t peakBytes_ OLIVE_GUARDED_BY(mu_) = 0;
    u64 payloadCopyRows_ OLIVE_GUARDED_BY(mu_) = 0;
    /** Blocks with retainedRefs > 0. */
    size_t retainedBlocks_ OLIVE_GUARDED_BY(mu_) = 0;
};

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_BLOCK_POOL_HPP
