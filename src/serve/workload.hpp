/**
 * @file
 * Seeded serving-workload generator and trace replay.
 *
 * Every serving claim needs more than one hand-rolled request shape:
 * this header turns a small composable spec — an arrival process
 * (uniform, Poisson, bursty on/off, diurnal ramp), prompt/output
 * length distributions (fixed, uniform, log-normal-ish), an optional
 * shared-system-prompt population, and multi-turn conversations that
 * re-submit the prior turns as their prefix — into a concrete request
 * trace, deterministically from a seed.
 *
 * Determinism contract: generation samples exclusively through the
 * repository's own xoshiro256** / SplitMix64 Rng (util/random) using
 * integer arithmetic only — no std:: distributions (their outputs
 * differ across libstdc++/libc++) and no floating point (libm calls
 * are not correctly-rounded everywhere).  The same seed therefore
 * yields the byte-identical trace on every platform, at every
 * OLIVE_THREADS value, and across process runs; the workload test
 * tier pins this against a golden dump.
 *
 * Traces serialize through util/json (Workload::toJson/fromJson), so a
 * scenario is a committable artifact: all numbers are integers below
 * 2^53 (the u64 seed travels as a decimal string), making the round
 * trip bit-exact.
 *
 * replayTrace() drives a ServeEngine with a trace: turn-0 requests are
 * submitted at their arrival ticks, and each later turn is submitted
 * gapSteps ticks after its predecessor finishes, with prompt = prior
 * prompt + prior reply + its own user tokens — the multi-turn chat
 * pattern that makes the engine's cached-prefix retention
 * load-bearing (the donor has retired by the time the next turn
 * arrives).  The replay schedule is a pure function of tick counts and
 * engine outputs, so per-request token streams are bit-identical at
 * every thread count and across runs.
 */

#ifndef OLIVE_SERVE_WORKLOAD_HPP
#define OLIVE_SERVE_WORKLOAD_HPP

#include <functional>
#include <string>
#include <vector>

#include "engine.hpp"
#include "util/json.hpp"

namespace olive {
namespace serve {

/** Arrival process of conversation openings, in engine-tick units. */
struct ArrivalSpec
{
    enum class Kind
    {
        Uniform, //!< Fixed gap (+ uniform jitter) between arrivals.
        Poisson, //!< Geometric gaps: per-tick probability num/den.
        Bursty,  //!< burstSize arrivals at once, then an idle gap.
        Diurnal, //!< Per-tick probability ramps num/den..peakNum/den.
    };
    Kind kind = Kind::Uniform;
    size_t gap = 2;    //!< Uniform/Bursty: idle ticks between arrivals.
    size_t jitter = 0; //!< Uniform/Bursty: extra uniform [0, jitter].
    u64 num = 1;       //!< Poisson/Diurnal: probability numerator.
    u64 den = 4;       //!< Poisson/Diurnal: probability denominator.
    size_t burstSize = 4; //!< Bursty: arrivals per burst.
    u64 peakNum = 4;      //!< Diurnal: numerator at the ramp peak.
    size_t period = 64;   //!< Diurnal: triangle-wave period in ticks.
};

/** Token-count distribution (prompt lengths, generation budgets). */
struct LengthSpec
{
    enum class Kind
    {
        Fixed,
        Uniform,      //!< Inclusive [lo, hi].
        LogNormalish, //!< Doubling tail around median, clamped [lo, hi].
    };
    Kind kind = Kind::Fixed;
    size_t value = 16; //!< Fixed only.
    size_t lo = 8;     //!< Uniform bounds; LogNormalish clamp floor.
    size_t hi = 32;    //!< Uniform bounds; LogNormalish clamp ceiling.
    /** LogNormalish: the length is median << k with k geometric(1/2)
     *  (capped at tailCap doublings) plus uniform jitter of +- half a
     *  median — a heavy multiplicative tail from integer ops only. */
    size_t median = 16;
    size_t tailCap = 3;
};

/** One composable scenario description (the committable grammar). */
struct WorkloadSpec
{
    u64 seed = 1;
    size_t sessions = 8; //!< Conversations (single-turn: requests).
    size_t vocab = 64;   //!< Tokens are sampled from [0, vocab).
    ArrivalSpec arrival;
    LengthSpec promptLen; //!< Fresh user tokens per turn.
    LengthSpec outputLen; //!< maxNewTokens per turn.
    /** Shared system prompt: systemPromptLen tokens generated once and
     *  prepended to the first turn of systemPromptPercent % of the
     *  sessions (0 disables) — the population whose prefixes the
     *  engine can share. */
    size_t systemPromptLen = 0;
    u64 systemPromptPercent = 0;
    /** Turns per conversation, uniform in [turnsMin, turnsMax]; turn
     *  n+1 is submitted turnGapSteps ticks after turn n finishes. */
    size_t turnsMin = 1;
    size_t turnsMax = 1;
    size_t turnGapSteps = 0;
    /** stopPercent % of requests carry stopTokenCount stop tokens. */
    size_t stopTokenCount = 0;
    u64 stopPercent = 0;
};

/** One trace entry.  Turn 0 carries an absolute arrival tick; later
 *  turns carry a relative gap after their predecessor finishes (their
 *  full prompt depends on the model's reply, so the trace stores only
 *  the fresh user tokens). */
struct WorkloadRequest
{
    u64 id = 0;           //!< 1-based position in the trace.
    u64 conversation = 0; //!< 1-based session id.
    size_t turn = 0;      //!< 0-based turn within the conversation.
    size_t submitStep = 0; //!< Turn 0: earliest submit tick.
    size_t gapSteps = 0;   //!< Turn > 0: ticks after the prior turn.
    std::vector<int> userTokens; //!< This turn's fresh tokens.
    size_t maxNew = 1;
    std::vector<int> stopTokens;
};

/** A generated (or deserialized) trace plus the spec that made it. */
class Workload
{
  public:
    /** Deterministically expand @p spec into a trace (file comment). */
    static Workload generate(const WorkloadSpec &spec);

    /** Built-in scenario spec by name; fatal on an unknown name. */
    static WorkloadSpec namedSpec(const std::string &name);

    /** Names namedSpec() accepts (the bench matrix order). */
    static std::vector<std::string> scenarioNames();

    const WorkloadSpec &spec() const { return spec_; }
    const std::vector<WorkloadRequest> &requests() const
    {
        return requests_;
    }

    /** Trace document: {"spec": {...}, "requests": [...]}. */
    Json toJson() const;

    /** Inverse of toJson(); panics on a malformed document. */
    static Workload fromJson(const Json &doc);

    /** toJson().dump() — the byte-deterministic trace artifact. */
    std::string dump() const { return toJson().dump(); }

    /** Parse a dump()ed trace; panics on a syntax error. */
    static Workload parse(const std::string &text);

    /** Panic unless the trace is structurally sound (dense 1-based
     *  ids, contiguous turns, in-range tokens, maxNew >= 1). */
    void validate() const;

  private:
    WorkloadSpec spec_;
    std::vector<WorkloadRequest> requests_;
};

/** replayTrace() knobs. */
struct ReplayOptions
{
    /** Tick cap before the replay panics (0 = a generous default). */
    size_t maxTicks = 0;
    /** Invoked after every engine step (test invariant hook). */
    std::function<void(ServeEngine &)> onStep;
};

/** Outcome of one trace request (index = trace id - 1). */
struct ReplayRequestResult
{
    u64 traceId = 0;
    u64 engineId = 0;
    size_t promptTokens = 0; //!< Full prompt actually submitted.
    std::vector<int> generated;
    size_t sharedPrefixRows = 0;
    u64 submitStep = 0;     //!< Engine-step domain (deterministic).
    u64 firstTokenStep = 0;
    u64 finishStep = 0;
    double ttftSeconds = 0.0; //!< Measured wall time (machine-varying).
    bool stoppedByToken = false;
};

/** Replay summary: per-request outcomes plus queue-shape facts. */
struct ReplayResult
{
    std::vector<ReplayRequestResult> requests;
    size_t ticks = 0;       //!< Scheduler ticks (>= engine steps).
    size_t peakPending = 0; //!< Max queued-not-admitted observed.
    size_t peakActive = 0;  //!< Max batch occupancy observed.
};

/**
 * Drive @p engine through @p workload (semantics in the file
 * comment).  The engine must be fresh (no prior submissions) and its
 * model vocabulary must cover the workload's.  Deterministic: the
 * same engine config and trace yield bit-identical per-request
 * streams at every thread count.
 */
ReplayResult replayTrace(ServeEngine &engine, const Workload &workload,
                         const ReplayOptions &opts = {});

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_WORKLOAD_HPP
