#include "cache_eval.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace olive {
namespace serve {

double
CacheImpact::compression() const
{
    return fp32Bytes > 0
               ? static_cast<double>(encodedBytes) /
                     static_cast<double>(fp32Bytes)
               : 0.0;
}

CacheImpact
cacheImpact(const eval::LmModel &model, const eval::TokenData &text,
            const KvScheme &scheme)
{
    const nn::Transformer &backbone = model.backbone;
    const size_t d = backbone.dModel;

    CacheImpact impact;
    impact.scheme = scheme.name();
    double ce_sum = 0.0, hid_se = 0.0, lg_se = 0.0;
    size_t ce_count = 0, hid_count = 0, lg_count = 0;

    for (const std::vector<int> &seq : text) {
        if (seq.size() < 2)
            continue;
        // Exact reference: the full-sequence forward (causality makes
        // its row t the ground truth for decode step t).
        const Tensor xfull = model.embed(seq);
        const Tensor href = backbone.forward(xfull);
        const Tensor lgref = model.logitsFromHidden(href);

        // Decode path through the candidate cache scheme, over the
        // contiguous layout: quality is layout-independent (rows
        // encode to the same bytes wherever they live — the paged
        // fuzz suite pins that bitwise), and the contiguous accounting
        // reports the codec's exact payload+meta bytes, free of paged
        // partial-block slack, which is what the compression() metric
        // is meant to isolate.
        DecodeState state = makeDecodeState(backbone, scheme);
        Tensor x({1, d});
        for (size_t t = 0; t < seq.size(); ++t) {
            const auto row =
                model.embedding.row(static_cast<size_t>(seq[t]));
            std::copy(row.begin(), row.end(), x.row(0).begin());
            const Tensor h = backbone.forwardStep(x, state);
            for (size_t j = 0; j < d; ++j) {
                const double dv = static_cast<double>(h.row(0)[j]) -
                                  static_cast<double>(href.row(t)[j]);
                hid_se += dv * dv;
            }
            hid_count += d;
            const Tensor lg = model.logitsFromHidden(h);
            for (size_t v = 0; v < model.vocab; ++v) {
                const double dv = static_cast<double>(lg.row(0)[v]) -
                                  static_cast<double>(lgref.row(t)[v]);
                lg_se += dv * dv;
            }
            lg_count += model.vocab;
            if (t + 1 < seq.size()) {
                ce_sum += ops::crossEntropyRow(lg.row(0), seq[t + 1]);
                ++ce_count;
            }
        }
        impact.encodedBytes += state.encodedBytes();
        impact.fp32Bytes += state.fp32Bytes();
    }

    OLIVE_ASSERT(ce_count > 0, "cache impact needs a next-token target");
    impact.perplexity =
        std::exp(ce_sum / static_cast<double>(ce_count));
    impact.hiddenMse = hid_se / static_cast<double>(hid_count);
    impact.logitMse = lg_se / static_cast<double>(lg_count);
    return impact;
}

} // namespace serve
} // namespace olive
