#include "service.hpp"

#include <algorithm>
#include <chrono>
#include <istream>
#include <ostream>

#include "util/common.hpp"

namespace olive {
namespace serve {

namespace {

/** True when @p line is blank (ignored by the session loop). */
bool
isBlank(const std::string &line)
{
    return line.find_first_not_of(" \t\r") == std::string::npos;
}

/** Integral-number extraction; false (untouched @p out) otherwise. */
bool
jsonToInt(const Json &v, long &out)
{
    if (!v.isNumber())
        return false;
    const double d = v.asNumber();
    const long n = static_cast<long>(d);
    if (static_cast<double>(n) != d)
        return false;
    out = n;
    return true;
}

/**
 * Validate @p v as an array of token ids within @p vocab.  Returns
 * false with @p err set (prefixed by @p what) on any violation.
 */
bool
jsonToTokens(const Json &v, size_t vocab, const char *what,
             std::vector<int> &out, std::string &err)
{
    if (!v.isArray()) {
        err = std::string(what) + " must be an array of token ids";
        return false;
    }
    out.reserve(v.size());
    for (const Json &e : v.elements()) {
        long tok = 0;
        if (!jsonToInt(e, tok) || tok < 0 ||
            static_cast<size_t>(tok) >= vocab) {
            err = std::string(what) + " token out of range [0, " +
                  std::to_string(vocab) + ")";
            return false;
        }
        out.push_back(static_cast<int>(tok));
    }
    return true;
}

} // namespace

void
StopSupersetPolicy::apply(Request &req) const
{
    for (int tok : extra_) {
        if (std::find(req.stopTokens.begin(), req.stopTokens.end(),
                      tok) == req.stopTokens.end())
            req.stopTokens.push_back(tok);
    }
}

LengthCapPolicy::LengthCapPolicy(size_t cap) : cap_(cap)
{
    OLIVE_ASSERT(cap >= 1, "a length cap below 1 token is unservable");
}

void
LengthCapPolicy::apply(Request &req) const
{
    req.maxNewTokens = std::min(req.maxNewTokens, cap_);
}

Service::Service(ServeEngine &engine, ServiceConfig config)
    : engine_(&engine), cfg_(std::move(config))
{
}

void
Service::run(std::istream &in, std::ostream &out)
{
    std::string line;
    bool acked = false;
    while (!shutdown_.load() && std::getline(in, line)) {
        if (isBlank(line))
            continue;
        if (!handleLine(line, out)) {
            acked = true; // shutdown op drained and acked already
            break;
        }
    }
    if (!acked) {
        // Input EOF or requestShutdown(): same contract as the op —
        // drain in-flight work, then acknowledge.
        drain(out);
        emitLine(out, Json::object(
                          {{"event", "shutdown"},
                           {"finished", engine_->finishedCount()}}));
    }
}

bool
Service::handleLine(const std::string &line, std::ostream &out)
{
    std::string parse_err;
    const auto doc = Json::parse(line, &parse_err);
    if (!doc) {
        emitError(out, "bad JSON: " + parse_err);
        return true;
    }
    if (!doc->isObject() || doc->find("op") == nullptr ||
        !doc->find("op")->isString()) {
        emitError(out, "every op line is an object with a string \"op\"");
        return true;
    }
    const std::string &op = doc->find("op")->asString();
    if (op == "submit") {
        handleSubmit(*doc, out);
    } else if (op == "cancel") {
        handleCancel(*doc, out);
    } else if (op == "stats") {
        out << statsLine() << '\n';
        out.flush();
    } else if (op == "step") {
        handleStep(*doc, out);
    } else if (op == "drain") {
        drain(out);
    } else if (op == "shutdown") {
        drain(out);
        emitLine(out, Json::object(
                          {{"event", "shutdown"},
                           {"finished", engine_->finishedCount()}}));
        return false;
    } else {
        emitError(out, "unknown op \"" + op + "\"");
    }
    return true;
}

void
Service::handleSubmit(const Json &op, std::ostream &out)
{
    static const char *kKnown[] = {"op",   "prompt",      "max_new",
                                   "stop", "priority",    "deadline_ms",
                                   "policy"};
    for (const auto &kv : op.members()) {
        if (std::find_if(std::begin(kKnown), std::end(kKnown),
                         [&](const char *k) { return kv.first == k; }) ==
            std::end(kKnown)) {
            emitError(out, "unknown submit field \"" + kv.first + "\"");
            return;
        }
    }

    const size_t vocab = engine_->vocab();
    Request req;
    std::string err;
    const Json *prompt = op.find("prompt");
    if (prompt == nullptr ||
        !jsonToTokens(*prompt, vocab, "prompt", req.prompt, err)) {
        emitError(out, err.empty() ? "submit needs a \"prompt\" array"
                                   : err);
        return;
    }
    if (req.prompt.empty()) {
        emitError(out, "prompt must be non-empty");
        return;
    }
    const Json *max_new = op.find("max_new");
    long budget = 0;
    if (max_new == nullptr || !jsonToInt(*max_new, budget) || budget < 1) {
        emitError(out, "submit needs integer \"max_new\" >= 1");
        return;
    }
    req.maxNewTokens = static_cast<size_t>(budget);
    if (const Json *stop = op.find("stop")) {
        if (!jsonToTokens(*stop, vocab, "stop", req.stopTokens, err)) {
            emitError(out, err);
            return;
        }
    }
    if (const Json *prio = op.find("priority")) {
        long p = 0;
        if (!jsonToInt(*prio, p)) {
            emitError(out, "\"priority\" must be an integer");
            return;
        }
        req.priority = static_cast<int>(p);
    }
    long deadline_ms = -1;
    if (const Json *dl = op.find("deadline_ms")) {
        if (!jsonToInt(*dl, deadline_ms) || deadline_ms < 0) {
            emitError(out, "\"deadline_ms\" must be an integer >= 0");
            return;
        }
    }
    if (const Json *pol = op.find("policy")) {
        if (!pol->isString()) {
            emitError(out, "\"policy\" must be a string");
            return;
        }
        const auto it = cfg_.policies.find(pol->asString());
        if (it == cfg_.policies.end()) {
            emitError(out,
                      "unknown policy \"" + pol->asString() + "\"");
            return;
        }
        it->second->apply(req);
    }

    const u64 id = engine_->submit(std::move(req.prompt),
                                   req.maxNewTokens,
                                   std::move(req.stopTokens),
                                   req.priority);
    ++submitted_;
    if (deadline_ms >= 0) {
        deadlines_[id] = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(deadline_ms);
    }
    emitLine(out, Json::object({{"event", "accepted"},
                                {"id", id},
                                {"max_new", req.maxNewTokens}}));
    if (cfg_.autoDrain)
        drain(out);
}

void
Service::handleCancel(const Json &op, std::ostream &out)
{
    const Json *id_field = op.find("id");
    long id = 0;
    if (id_field == nullptr || !jsonToInt(*id_field, id) || id < 1) {
        emitError(out, "cancel needs integer \"id\" >= 1");
        return;
    }
    const bool ok = cancel(static_cast<u64>(id));
    emitLine(out, Json::object({{"event", "cancel"},
                                {"id", static_cast<u64>(id)},
                                {"ok", ok}}));
    // Surface the done (reason "cancelled") on this op boundary rather
    // than waiting for the next step.
    flushEvents(out);
}

void
Service::handleStep(const Json &op, std::ostream &out)
{
    long n = 1;
    if (const Json *nf = op.find("n")) {
        if (!jsonToInt(*nf, n) || n < 1) {
            emitError(out, "\"n\" must be an integer >= 1");
            return;
        }
    }
    for (long i = 0; i < n; ++i)
        stepAndEmit(out);
}

void
Service::checkDeadlines()
{
    if (deadlines_.empty())
        return;
    const auto now = std::chrono::steady_clock::now();
    for (auto it = deadlines_.begin(); it != deadlines_.end();) {
        if (now < it->second) {
            ++it;
            continue;
        }
        // Expired: retire it wherever it is (queued or active).  A
        // false return means it already finished — nothing to do.
        cancelWithReason(it->first, "deadline");
        it = deadlines_.erase(it);
    }
}

bool
Service::stepAndEmit(std::ostream &out)
{
    // Deadlines go first so an expired queued request is never
    // admitted by the step it would have missed anyway.
    checkDeadlines();
    const bool worked = engine_->step();
    flushEvents(out);
    if (worked)
        emitQueued(out);
    return worked;
}

void
Service::drain(std::ostream &out)
{
    while (stepAndEmit(out)) {
    }
}

void
Service::flushEvents(std::ostream &out)
{
    // Snapshots first (engine lock), bookkeeping after — the service
    // never holds its own mutex across an engine call.
    for (const auto &p : engine_->progressSnapshot()) {
        if (admittedEmitted_.insert(p.id).second)
            emitLine(out, Json::object(
                              {{"event", "admitted"}, {"id", p.id}}));
        size_t &cursor = emittedTokens_[p.id];
        for (; cursor < p.generated.size(); ++cursor) {
            emitLine(out,
                     Json::object({{"event", "token"},
                                   {"id", p.id},
                                   {"index", cursor},
                                   {"token", p.generated[cursor]}}));
        }
    }
    const auto fins = engine_->finishedSnapshot(finishedCursor_);
    finishedCursor_ += fins.size();
    for (const FinishedRequest &f : fins) {
        // A request that finished within its admission step was never
        // seen active by a snapshot; emit its admitted here.  One
        // cancelled from the queue (admitStep 0) was never admitted.
        if (f.admitStep > 0 && admittedEmitted_.insert(f.id).second)
            emitLine(out, Json::object(
                              {{"event", "admitted"}, {"id", f.id}}));
        size_t &cursor = emittedTokens_[f.id];
        for (; cursor < f.generated.size(); ++cursor) {
            emitLine(out,
                     Json::object({{"event", "token"},
                                   {"id", f.id},
                                   {"index", cursor},
                                   {"token", f.generated[cursor]}}));
        }
        std::string reason = "length";
        if (f.cancelled) {
            reason = "cancelled";
            const MutexLock lock(mu_);
            const auto it = cancelReasons_.find(f.id);
            if (it != cancelReasons_.end()) {
                reason = it->second;
                cancelReasons_.erase(it);
            }
        } else if (f.stoppedByToken) {
            reason = "stop";
        }
        Json tokens = Json::array();
        for (int tok : f.generated)
            tokens.push(tok);
        emitLine(out, Json::object({{"event", "done"},
                                    {"id", f.id},
                                    {"reason", reason},
                                    {"n", f.generated.size()},
                                    {"tokens", std::move(tokens)}}));
        emittedTokens_.erase(f.id);
        queuedEmitted_.erase(f.id);
        admittedEmitted_.erase(f.id);
        deadlines_.erase(f.id);
    }
}

void
Service::emitQueued(std::ostream &out)
{
    for (u64 id : engine_->pendingIds()) {
        if (queuedEmitted_.insert(id).second)
            emitLine(out,
                     Json::object({{"event", "queued"}, {"id", id}}));
    }
}

void
Service::emitLine(std::ostream &out, const Json &event)
{
    out << event.dump() << '\n';
    out.flush(); // a client on a pipe must see events as they happen
}

void
Service::emitError(std::ostream &out, const std::string &message)
{
    emitLine(out, Json::object(
                      {{"event", "error"}, {"message", message}}));
}

bool
Service::cancel(u64 id)
{
    return cancelWithReason(id, "cancelled");
}

bool
Service::cancelWithReason(u64 id, const std::string &reason)
{
    // First recorded reason wins (a client cancel racing a deadline);
    // the engine call below arbitrates who actually retired it.
    bool inserted = false;
    {
        const MutexLock lock(mu_);
        inserted = cancelReasons_.emplace(id, reason).second;
    }
    const bool ok = engine_->cancel(id);
    if (!ok && inserted) {
        const MutexLock lock(mu_);
        cancelReasons_.erase(id);
    }
    return ok;
}

std::string
Service::statsLine() const
{
    const ServeMetrics m = engine_->metricsSnapshot();
    Json ev = Json::object({{"event", "stats"},
                            {"pending", engine_->pendingCount()},
                            {"active", engine_->activeCount()},
                            {"finished", engine_->finishedCount()},
                            {"steps", m.steps},
                            {"tokens_processed", m.tokensProcessed},
                            {"tokens_generated", m.tokensGenerated},
                            {"cancelled", m.requestsCancelled},
                            {"ttft_p50_ms", m.ttftMs(50.0)},
                            {"ttft_p99_ms", m.ttftMs(99.0)},
                            {"step_p50_ms", m.stepLatencyMs(50.0)},
                            {"step_p99_ms", m.stepLatencyMs(99.0)},
                            {"spec_drafted", m.specDrafted},
                            {"spec_accepted", m.specAccepted},
                            {"spec_accept_rate", m.specAcceptRate()}});
    if (const BlockPool *pool = engine_->blockPool()) {
        ev.set("pool_blocks_in_use", pool->blocksInUse());
        ev.set("pool_bytes_in_use", pool->bytesInUse());
    }
    return ev.dump();
}

} // namespace serve
} // namespace olive
