#include "proposer.hpp"

#include <algorithm>

namespace olive {
namespace serve {

NgramProposer::NgramProposer(size_t max_ngram, size_t min_ngram)
    : maxNgram_(max_ngram), minNgram_(min_ngram)
{
    OLIVE_ASSERT(min_ngram >= 1 && max_ngram >= min_ngram,
                 "n-gram window must satisfy 1 <= min <= max");
}

std::vector<int>
NgramProposer::propose(std::span<const int> history, size_t max_draft) const
{
    const size_t len = history.size();
    if (max_draft == 0 || len < 2)
        return {};
    // Longest usable suffix: it must fit the history AND leave at least
    // one earlier token to draft from.
    const size_t top = std::min(maxNgram_, len - 1);
    for (size_t n = top; n >= minNgram_; --n) {
        const int *suffix = history.data() + (len - n);
        // Most recent earlier occurrence: the match window ends at
        // position j + n - 1 <= len - 2, scanned right to left.
        for (size_t j = len - n - 1; j + 1 > 0; --j) {
            if (!std::equal(suffix, suffix + n, history.data() + j))
                continue;
            const size_t follow = j + n; // first token after the match
            const size_t avail = len - follow;
            const size_t take = std::min(max_draft, avail);
            return std::vector<int>(history.begin() + follow,
                                    history.begin() + follow + take);
        }
    }
    return {};
}

std::unique_ptr<Proposer>
makeProposer(const std::string &id)
{
    if (id == "ngram")
        return std::make_unique<NgramProposer>();
    OLIVE_FATAL("unknown proposer \"" + id + "\" (known: ngram)");
}

} // namespace serve
} // namespace olive
