#include "decoded_cache.hpp"

#include <algorithm>

namespace olive {
namespace serve {

DecodedBlockCache::DecodedBlockCache(const BlockPool &pool,
                                     size_t capacity_blocks)
    : pool_(&pool), capacity_(capacity_blocks),
      entryBytes_(2 * pool.blockRows() * pool.dModel() * sizeof(float))
{
}

void
DecodedBlockCache::evictOverLimitLocked(size_t limit)
{
    if (capacity_ == 0)
        return; // unbounded
    // Walk from the LRU tail; pinned entries are skipped — an in-flight
    // attention step is reading their rows — which is what makes the
    // cap soft rather than a correctness hazard.
    auto it = lru_.end();
    while (map_.size() > limit && it != lru_.begin()) {
        --it;
        const u32 victim = *it;
        if (map_.at(victim)->pins > 0)
            continue;
        it = lru_.erase(it); // points past the erased slot, toward the tail
        map_.erase(victim);
        evictions_.fetch_add(1, std::memory_order_relaxed);
    }
}

DecodedBlockCache::Lease
DecodedBlockCache::acquire(u32 id, size_t rows)
{
    OLIVE_ASSERT(rows >= 1 && rows <= pool_->blockRows(),
                 "decoded rows must cover [1, blockRows]");
    Entry *e;
    {
        const MutexLock lock(mu_);
        auto it = map_.find(id);
        if (it == map_.end()) {
            // Make room first so the new entry itself is never the
            // eviction victim; > capacity only if every survivor is
            // pinned.
            evictOverLimitLocked(capacity_ > 0 ? capacity_ - 1 : 0);
            auto fresh = std::make_unique<Entry>();
            fresh->k.resize(pool_->blockRows() * pool_->dModel());
            fresh->v.resize(pool_->blockRows() * pool_->dModel());
            lru_.push_front(id);
            fresh->lruIt = lru_.begin();
            it = map_.emplace(id, std::move(fresh)).first;
            peakBytes_ = std::max(peakBytes_, map_.size() * entryBytes_);
            misses_.fetch_add(1, std::memory_order_relaxed);
        } else {
            lru_.splice(lru_.begin(), lru_, it->second->lruIt);
            hits_.fetch_add(1, std::memory_order_relaxed);
        }
        e = it->second.get();
        ++e->pins;
    }
    // Extend the decoded prefix outside the cache-wide lock: concurrent
    // acquirers of the same block serialize on the entry's fill mutex,
    // and whichever decodes first writes the identical bytes (decode is
    // a pure function of the block payload).
    {
        const MutexLock lock(e->fill);
        // relaxed load: fill serializes every writer, so the freshest
        // value is visible here by mutex ordering alone.
        const size_t have = e->rows.load(std::memory_order_relaxed);
        if (have < rows) {
            const size_t d = pool_->dModel();
            const size_t rb = pool_->rowBytes();
            const KvScheme &scheme = pool_->scheme();
            for (size_t s = have; s < rows; ++s) {
                scheme.decodeRow(
                    std::span<const u8>(pool_->kRow(id, s), rb),
                    pool_->kMeta(id, s),
                    std::span<float>(e->k.data() + s * d, d));
                scheme.decodeRow(
                    std::span<const u8>(pool_->vRow(id, s), rb),
                    pool_->vMeta(id, s),
                    std::span<float>(e->v.data() + s * d, d));
            }
            decodedRows_.fetch_add(rows - have,
                                   std::memory_order_relaxed);
            // release store *after* the slot payload writes: an
            // observer whose acquire load returns >= rows may read
            // slots [0, rows) without holding fill.
            e->rows.store(rows, std::memory_order_release);
        }
    }
    return Lease{e->k.data(), e->v.data()};
}

void
DecodedBlockCache::release(u32 id)
{
    const MutexLock lock(mu_);
    auto it = map_.find(id);
    OLIVE_ASSERT(it != map_.end() && it->second->pins > 0,
                 "releasing a decoded block that is not pinned");
    --it->second->pins;
    // Shrink back toward the cap as pins drop — the transient overflow
    // a pinned working set forced is reclaimed at the first release.
    evictOverLimitLocked(capacity_);
}

void
DecodedBlockCache::invalidate(u32 id)
{
    const MutexLock lock(mu_);
    auto it = map_.find(id);
    if (it == map_.end())
        return;
    OLIVE_ASSERT(it->second->pins == 0,
                 "invalidating a pinned decoded block — a freed pool "
                 "block cannot be mid-attention");
    lru_.erase(it->second->lruIt);
    map_.erase(it);
    invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void
DecodedBlockCache::shrink(u32 id, size_t rows)
{
    OLIVE_ASSERT(rows >= 1 && rows <= pool_->blockRows(),
                 "shrink target must stay within [1, blockRows]");
    const MutexLock lock(mu_);
    auto it = map_.find(id);
    if (it == map_.end())
        return;
    Entry &e = *it->second;
    OLIVE_ASSERT(e.pins == 0,
                 "shrinking a pinned decoded block — rollback cannot "
                 "overlap an attention step");
    // pins == 0 means no acquire() is between its pin and unpin, so no
    // fill is in flight: this store cannot race a fill-side extension.
    // A later extender first takes mu_ (to pin), ordering it after this
    // critical section, so its relaxed read under fill sees the value.
    const size_t have = e.rows.load(std::memory_order_relaxed);
    if (have > rows)
        e.rows.store(rows, std::memory_order_release);
}

size_t
DecodedBlockCache::entryCount() const
{
    const MutexLock lock(mu_);
    return map_.size();
}

size_t
DecodedBlockCache::currentBytes() const
{
    const MutexLock lock(mu_);
    return map_.size() * entryBytes_;
}

size_t
DecodedBlockCache::peakBytes() const
{
    const MutexLock lock(mu_);
    return peakBytes_;
}

size_t
DecodedBlockCache::pinnedCount() const
{
    const MutexLock lock(mu_);
    size_t n = 0;
    for (const auto &[id, e] : map_)
        n += e->pins > 0 ? 1u : 0u;
    return n;
}

bool
DecodedBlockCache::contains(u32 id) const
{
    const MutexLock lock(mu_);
    return map_.count(id) > 0;
}

int
DecodedBlockCache::pinsOf(u32 id) const
{
    const MutexLock lock(mu_);
    auto it = map_.find(id);
    return it == map_.end() ? -1 : it->second->pins;
}

size_t
DecodedBlockCache::rowsOf(u32 id) const
{
    const MutexLock lock(mu_);
    auto it = map_.find(id);
    // acquire: pairs with the fill-side release store, so the caller
    // may treat the returned count as a safely-readable decoded prefix.
    return it == map_.end()
               ? 0
               : it->second->rows.load(std::memory_order_acquire);
}

void
DecodedBlockCache::checkInvariants() const
{
    const MutexLock lock(mu_);
    OLIVE_ASSERT(lru_.size() == map_.size(),
                 "LRU list drifted from the entry map");
    size_t pinned = 0;
    for (auto lit = lru_.begin(); lit != lru_.end(); ++lit) {
        const u32 id = *lit;
        auto it = map_.find(id);
        OLIVE_ASSERT(it != map_.end(), "LRU id has no entry");
        const Entry &e = *it->second;
        OLIVE_ASSERT(e.lruIt == lit,
                     "entry's LRU iterator does not point at its id "
                     "(duplicate or stale LRU node)");
        OLIVE_ASSERT(e.pins >= 0, "negative pin count");
        // acquire sample of the fill-domain field (see Entry::rows):
        // a lower bound while an extension is in flight, exact at
        // rest.  rows == 0 is legal only for an entry whose first fill
        // is still running — and such an entry is pinned by its
        // creator.
        const size_t rows = e.rows.load(std::memory_order_acquire);
        OLIVE_ASSERT(rows <= pool_->blockRows() &&
                         (rows >= 1 || e.pins > 0),
                     "decoded row count outside [1, blockRows] at rest");
        OLIVE_ASSERT(e.k.size() == pool_->blockRows() * pool_->dModel() &&
                         e.v.size() == e.k.size(),
                     "entry buffers must span the full block capacity");
        pinned += e.pins > 0 ? 1u : 0u;
    }
    OLIVE_ASSERT(peakBytes_ >= map_.size() * entryBytes_,
                 "peak bytes fell below the current footprint");
    // The soft cap: over capacity only while everything else is pinned.
    OLIVE_ASSERT(capacity_ == 0 || map_.size() <= capacity_ ||
                     pinned == map_.size(),
                 "cache exceeds capacity with unpinned entries resident");
}

} // namespace serve
} // namespace olive
