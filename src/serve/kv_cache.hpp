/**
 * @file
 * Quantized KV cache for incremental (autoregressive) decode.
 *
 * In real LLM serving the KV cache is the dominant memory consumer —
 * it grows with every generated token of every in-flight request while
 * the weights stay fixed — which makes it the natural target for the
 * paper's hardware-friendly OVP format.  A KvCache stores the K and V
 * rows of one transformer layer for one request through a pluggable
 * per-row codec (KvScheme): rows are encoded to a packed byte stream
 * with per-row codec parameters (scale / threshold / normal type) when
 * appended, and decoded on the fly each step into the attention
 * kernel's scratch buffers.  Persistent storage is the compressed
 * stream; only the transient working set is FP32.
 *
 * Formats: FP32 passthrough (bit-exact — the decode-parity contract of
 * nn::Transformer::forwardStep is stated against it), OVP at 4 or 8
 * bits (per-row OliveQuantizer calibration, the paper's method), and a
 * symmetric per-row int8 baseline (the standard "KV cache in int8"
 * deployment, no outlier mechanism).
 */

#ifndef OLIVE_SERVE_KV_CACHE_HPP
#define OLIVE_SERVE_KV_CACHE_HPP

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "quant/dtype.hpp"
#include "quant/quantizer.hpp"
#include "tensor/tensor.hpp"
#include "util/common.hpp"

namespace olive {
namespace nn {
struct Transformer;
} // namespace nn

namespace serve {

/**
 * Per-row codec parameters, stored alongside the packed payload.  The
 * fields a format actually uses are counted against its cache footprint
 * by KvScheme::metaBytesPerRow(); unused fields stay at their defaults.
 * scale == 0 marks an all-zero row (nothing to calibrate on), which
 * decodes to zeros for every lossy format.
 */
struct KvRowMeta
{
    float scale = 0.0f;
    double threshold = 0.0;
    NormalType normal = NormalType::Int4;
};

/**
 * Pluggable per-row KV codec.  encodeRow appends exactly
 * rowBytes(row.size()) payload bytes, so row offsets in a KvCache are a
 * pure function of the row index — no per-row index structure is
 * needed, mirroring how OVP itself keeps DRAM accesses aligned.
 */
class KvScheme
{
  public:
    virtual ~KvScheme() = default;

    /** Display name, e.g. "kv-olive4". */
    virtual std::string name() const = 0;

    /** Encode one row: append payload to @p bytes, fill @p meta. */
    virtual void encodeRow(std::span<const float> row,
                           std::vector<u8> &bytes, KvRowMeta &meta) const = 0;

    /** Decode one row previously produced by encodeRow. */
    virtual void decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                           std::span<float> out) const = 0;

    /** Payload bytes per encoded row of @p d elements. */
    virtual size_t rowBytes(size_t d) const = 0;

    /** Bytes of KvRowMeta this format actually needs per row. */
    virtual size_t metaBytesPerRow() const = 0;

    /** True when decodeRow(encodeRow(x)) == x bitwise. */
    virtual bool lossless() const { return false; }
};

/** FP32 passthrough: 4 bytes/element, bit-exact round trip. */
class Fp32KvScheme : public KvScheme
{
  public:
    std::string name() const override { return "kv-fp32"; }
    void encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                   KvRowMeta &meta) const override;
    void decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                   std::span<float> out) const override;
    size_t rowBytes(size_t d) const override { return d * sizeof(float); }
    size_t metaBytesPerRow() const override { return 0; }
    bool lossless() const override { return true; }
};

/**
 * OVP KV cache rows: each row is calibrated with the OliVe per-tensor
 * quantizer (MSE threshold search, adaptive int4/flint4 type at 4 bits)
 * and packed with OvpCodec — identical bytes to a DRAM-resident OliVe
 * tensor.  Per-row calibration is the KV-cache analogue of per-tensor
 * PTQ: a row is one token's K (or V) projection, and token outliers are
 * exactly what OVP absorbs.
 */
class OvpKvScheme : public KvScheme
{
  public:
    /** @param bits 4 or 8.  @param config overrides the search grid. */
    explicit OvpKvScheme(int bits, OliveConfig config = {});

    std::string name() const override;
    void encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                   KvRowMeta &meta) const override;
    void decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                   std::span<float> out) const override;
    size_t rowBytes(size_t d) const override;
    /**
     * scale (4) + normal type tag (1).  The outlier threshold shapes
     * only the encode-side pair classification; OVP decode is a pure
     * (code, scale, type) lookup, so the threshold — kept in KvRowMeta
     * for bookkeeping — never needs to persist with the cache
     * (KvScheme.OvpDecodeIsThresholdIndependent asserts this).
     */
    size_t metaBytesPerRow() const override { return 5; }

  private:
    OliveQuantizer quantizer_;
};

/**
 * Symmetric per-row int8 baseline: one MSE-searched scale per row,
 * values round and saturate — the standard outlier-oblivious int8
 * KV-cache deployment the OVP format is compared against.
 */
class Int8KvScheme : public KvScheme
{
  public:
    std::string name() const override { return "kv-int8"; }
    void encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                   KvRowMeta &meta) const override;
    void decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                   std::span<float> out) const override;
    size_t rowBytes(size_t d) const override { return d; }
    /** scale (4). */
    size_t metaBytesPerRow() const override { return 4; }
};

/** KV cache storage formats selectable by drivers and the engine. */
enum class KvCacheFormat
{
    Fp32,
    Olive4,
    Olive8,
    Int8,
};

/** Factory for the format's codec. */
std::unique_ptr<KvScheme> makeKvScheme(KvCacheFormat format);

/** Parse a format id ("fp32", "olive4", "olive8", "int8"); fatal else. */
KvCacheFormat parseKvCacheFormat(const std::string &id);

/** All format ids (for driver --help strings and benches). */
std::vector<std::string> kvCacheFormatIds();

/**
 * One run of consecutive decoded rows served to block-table attention:
 * row i of the span's K plane lives at k + i*d (stride = the model d),
 * likewise for V.  A cache's rows [0, length) are presented as an
 * ordered list of spans — one per referenced block when a decoded
 * working set backs the cache, or a single all-rows span from the
 * retained scratch-materializing path.
 */
struct KvSpan
{
    const float *k = nullptr;
    const float *v = nullptr;
    size_t rows = 0;
};

/**
 * One transformer layer's K and V rows for one request, stored through
 * a KvScheme.  append() encodes one token's K and V projection rows;
 * decodeK/decodeV materialize the whole cache into (length, d) scratch
 * tensors for the attention kernel.
 *
 * Two storage layouts implement the interface: KvCacheReference keeps
 * one contiguous byte stream per (request, layer) — the original
 * design, retained as the bit-exactness oracle the paged fuzz suite
 * compares against — and PagedKvCache maps logical rows through a block
 * table into a shared BlockPool (eviction without copying, prefix
 * sharing between requests).  Both produce identical decoded tensors
 * for identical appended rows: the per-row codec bytes are a pure
 * function of the row, independent of where they are stored.
 */
class KvCache
{
  public:
    /** @param scheme must outlive the cache. */
    KvCache(const KvScheme &scheme, size_t d);
    virtual ~KvCache() = default;

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;

    /** Append one token's K and V rows (each of d elements). */
    virtual void append(std::span<const float> k,
                        std::span<const float> v) = 0;

    /**
     * Bulk-append @p k / @p v (m, d): row i of each lands at logical
     * position length()+i, in ascending order — byte-identical storage
     * to m append() calls, because the codec encodes each row as a pure
     * function of that row alone.  The base implementation IS the
     * append() loop (the oracle); PagedKvCache overrides it to allocate
     * the covering blocks up front and encode the rows in parallel —
     * batched prefill's cache-write path.
     */
    virtual void appendRows(const Tensor &k, const Tensor &v);

    /**
     * Drop rows [new_len, length()) — speculative decode's rollback of
     * rejected draft rows.  @pre the dropped rows were appended by this
     * cache and are not shared (always true for speculative rows: they
     * live past every shareable prefix, see engine.cpp's rollback
     * proof); PagedKvCache asserts refcount == 1 on every block it
     * releases.  Appending after a truncate reuses the vacated logical
     * positions with fresh bytes.
     */
    virtual void truncate(size_t new_len) = 0;

    /** Tokens cached so far. */
    virtual size_t length() const = 0;

    /** Row width (the model d_model). */
    size_t dModel() const { return d_; }

    const KvScheme &scheme() const { return *scheme_; }

    /** Decode all K rows into @p out, shaped (length, d) by the caller. */
    virtual void decodeK(Tensor &out) const = 0;

    /** Decode all V rows into @p out, shaped (length, d) by the caller. */
    virtual void decodeV(Tensor &out) const = 0;

    /**
     * Serve the decoded form of rows [0, length) to @p fn as an ordered
     * span list (attention's read path).  The spans are valid only for
     * the duration of the call.  The base implementation materializes a
     * transient (length, d) scratch pair through decodeK/decodeV and
     * passes one span — the original O(length)-codec-work-per-step path,
     * retained as the bit-exactness oracle; PagedKvCache overrides it to
     * pin per-block entries of a shared DecodedBlockCache, decoding only
     * rows not already resident (O(1) amortized).  Both present
     * identical floats: decode is a pure per-row function, so where the
     * decoded copy lives can never change a value.
     */
    virtual void
    withDecoded(const std::function<void(std::span<const KvSpan>)> &fn) const;

    /**
     * Persistent footprint.  Contiguous: packed payload + per-row codec
     * params.  Paged: referenced blocks x block bytes — what this cache
     * would occupy if nothing were shared (pool-level bytesInUse() is
     * the deduplicated truth).
     */
    virtual size_t encodedBytes() const = 0;

    /** What the same cache would occupy uncompressed. */
    size_t fp32Bytes() const { return 2 * length() * d_ * sizeof(float); }

  protected:
    const KvScheme *scheme_;
    size_t d_;
};

/**
 * The original contiguous layout: one packed byte stream per K/V side.
 * Kept alive as the oracle for the paged implementation (the churn-fuzz
 * suite runs both side by side and demands bit-identical outputs).
 */
class KvCacheReference final : public KvCache
{
  public:
    KvCacheReference(const KvScheme &scheme, size_t d);

    void append(std::span<const float> k,
                std::span<const float> v) override;
    void truncate(size_t new_len) override;
    size_t length() const override { return kMeta_.size(); }
    void decodeK(Tensor &out) const override;
    void decodeV(Tensor &out) const override;
    size_t encodedBytes() const override;

  private:
    void decodeAll(const std::vector<u8> &bytes,
                   const std::vector<KvRowMeta> &meta, Tensor &out) const;

    std::vector<u8> kBytes_, vBytes_;
    std::vector<KvRowMeta> kMeta_, vMeta_;
};

class BlockPool;
class DecodedBlockCache;

/**
 * Paged layout: logical row i lives in slot i % blockRows of block
 * table_[i / blockRows], all blocks owned by a global BlockPool.  The
 * tail block is exclusively owned (refcount contribution 1, written by
 * appends); all earlier blocks are full and immutable, so they can be
 * shared read-only between requests via shareFrom().
 */
class PagedKvCache final : public KvCache
{
  public:
    /**
     * @param pool   must outlive the cache (and defines the scheme/d).
     * @param dcache optional decoded-block working set (shared across
     *               the engine's caches; must outlive this one).  When
     *               given, withDecoded() serves per-block spans pinned
     *               in it; when null, the base scratch path is used.
     */
    explicit PagedKvCache(BlockPool &pool,
                          DecodedBlockCache *dcache = nullptr);
    ~PagedKvCache() override;

    PagedKvCache(PagedKvCache &&) = delete;
    PagedKvCache &operator=(PagedKvCache &&) = delete;

    void append(std::span<const float> k,
                std::span<const float> v) override;
    void appendRows(const Tensor &k, const Tensor &v) override;
    void truncate(size_t new_len) override;
    size_t length() const override { return rows_; }
    void decodeK(Tensor &out) const override;
    void decodeV(Tensor &out) const override;
    void withDecoded(const std::function<void(std::span<const KvSpan>)>
                         &fn) const override;
    size_t encodedBytes() const override;

    /**
     * Seed this (empty) cache with the first @p rows rows of @p donor:
     * full blocks are shared by reference (refcount, zero copies); a
     * trailing partial block is copy-on-write duplicated so this cache
     * can append its own divergent rows after it.  The donor's rows
     * must cover @p rows.
     */
    void shareFrom(const PagedKvCache &donor, size_t rows);

    /**
     * shareFrom() without a live donor cache: seed this (empty) cache
     * with the first @p rows of a stored block table covering
     * @p donor_rows live rows — the engine's cached-prefix retention
     * holds the references that keep those blocks alive after the
     * donor request retired.  Identical mechanics (full covered
     * blocks by reference, a trailing partial block by copy-on-write)
     * and the identical bit-exactness argument: causal K/V rows are
     * pure functions of the tokens at or before them, wherever the
     * bytes happen to live.
     */
    void shareFromTable(std::span<const u32> table, size_t donor_rows,
                        size_t rows);

    /** Block-table length (referenced blocks), for accounting/tests. */
    size_t blockCount() const { return table_.size(); }

    /** Block id of table entry @p i (test/introspection hook). */
    u32 blockId(size_t i) const { return table_[i]; }

    BlockPool &pool() const { return *pool_; }

  private:
    /** Shared body of decodeK/decodeV: walk the block table. */
    void decodePlane(bool k_plane, Tensor &out) const;

    BlockPool *pool_;
    DecodedBlockCache *dcache_; //!< Optional; engine-owned, shared.
    std::vector<u32> table_;
    size_t rows_ = 0;
    std::vector<u8> scratch_; //!< Encode staging for one row.
};

/**
 * Per-request incremental decode state: one KvCache per transformer
 * layer plus the next position to fill.  Built by makeDecodeState
 * (contiguous reference caches) or makePagedDecodeState (block-table
 * caches over a shared pool) and advanced by
 * nn::Transformer::forwardStep.
 */
struct DecodeState
{
    std::vector<std::unique_ptr<KvCache>> layers;
    size_t position = 0; //!< Tokens processed so far.

    /** Persistent cache footprint across all layers. */
    size_t encodedBytes() const;

    /** FP32-equivalent footprint across all layers. */
    size_t fp32Bytes() const;
};

/** Fresh contiguous decode state; @p scheme must outlive it. */
DecodeState makeDecodeState(const nn::Transformer &model,
                            const KvScheme &scheme);

/**
 * Fresh paged decode state over @p pool; the pool (and @p dcache when
 * given — the engine's shared decoded-block working set) must outlive
 * it.
 */
DecodeState makePagedDecodeState(const nn::Transformer &model,
                                 BlockPool &pool,
                                 DecodedBlockCache *dcache = nullptr);

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_KV_CACHE_HPP
