/**
 * @file
 * Line-delimited JSON serving front end over ServeEngine.
 *
 * Service wraps one engine in a long-running session: a driving thread
 * calls run(in, out), which reads one JSON operation per input line
 * and writes one JSON event per output line.  The protocol (grammar in
 * DESIGN.md "Serving front end"):
 *
 *   ops     submit   {"op":"submit","prompt":[..],"max_new":N,
 *                     "stop":[..],"priority":P,"deadline_ms":D,
 *                     "policy":"name"}         (only prompt/max_new
 *                                              are required)
 *           cancel   {"op":"cancel","id":I}
 *           stats    {"op":"stats"}
 *           step     {"op":"step","n":K}       (K engine steps; dflt 1)
 *           drain    {"op":"drain"}            (step until idle)
 *           shutdown {"op":"shutdown"}         (drain, ack, return)
 *
 *   events  accepted {"event":"accepted","id":I,"max_new":M}
 *           queued   {"event":"queued","id":I}
 *           admitted {"event":"admitted","id":I}
 *           token    {"event":"token","id":I,"index":J,"token":T}
 *           done     {"event":"done","id":I,"reason":R,"n":N,
 *                     "tokens":[..]}
 *           cancel   {"event":"cancel","id":I,"ok":B}   (op ack)
 *           stats    {"event":"stats", ...counters...}
 *           error    {"event":"error","message":S}
 *           shutdown {"event":"shutdown","finished":N}
 *
 * Ordering guarantees, per request: accepted, then at most one queued
 * (emitted only when the request is still waiting for admission after
 * an engine step — the backpressure signal), then admitted, then token
 * events in index order, then exactly one terminal done with reason
 * "stop" | "length" | "cancelled" | "deadline".  No event for a
 * request ever follows its done: every event is emitted by the driving
 * thread from engine snapshots, so a cancel() arriving from another
 * thread mid-step surfaces as the done of a later flush, never as an
 * out-of-band line.
 *
 * Deadlines are enforced service-side against the wall clock (checked
 * before every engine step) and expire queued and active requests
 * alike through ServeEngine::cancel — the engine's schedule stays a
 * pure function of queue state, so the determinism contract is
 * untouched.  Token streams through the Service are bit-identical to
 * driving the engine directly (test_service asserts this, speculation
 * included): the Service never alters what the engine generates, only
 * observes it.
 *
 * Thread safety: run() owns the output stream and all event emission.
 * cancel(), statsLine() and requestShutdown() are safe from any other
 * thread (the race tier runs them against a driving thread under
 * TSan).  Lock hierarchy: the service mutex is leaf-like — it is never
 * held across an engine call, so service -> engine -> pool -> dcache
 * never cycles.
 */

#ifndef OLIVE_SERVE_SERVICE_HPP
#define OLIVE_SERVE_SERVICE_HPP

#include <atomic>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "engine.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace olive {
namespace serve {

/**
 * Per-request output shaping hook, resolved by name from
 * ServiceConfig::policies when a submit op carries "policy".  apply()
 * runs after protocol validation and before ServeEngine::submit, on
 * the driving thread; implementations must keep maxNewTokens >= 1 and
 * every token within the vocabulary.
 */
class OutputPolicy
{
  public:
    virtual ~OutputPolicy() = default;

    /** Adjust the validated request in place before submission. */
    virtual void apply(Request &req) const = 0;
};

/** Union a fixed token set into every request's stop set. */
class StopSupersetPolicy : public OutputPolicy
{
  public:
    explicit StopSupersetPolicy(std::vector<int> extra_stops)
        : extra_(std::move(extra_stops))
    {
    }

    void apply(Request &req) const override;

  private:
    std::vector<int> extra_;
};

/** Cap every request's generation budget at a fixed limit (>= 1). */
class LengthCapPolicy : public OutputPolicy
{
  public:
    explicit LengthCapPolicy(size_t cap);

    void apply(Request &req) const override;

  private:
    size_t cap_;
};

/** Session configuration. */
struct ServiceConfig
{
    /**
     * Interactive mode: after every submit op, step the engine to
     * idle, streaming events as they happen — a client on a pipe sees
     * its tokens without issuing step ops.  false leaves stepping to
     * explicit step/drain ops, which is how the tests interleave
     * submits, cancels and steps deterministically.
     */
    bool autoDrain = true;

    /** Named output policies (non-owning; must outlive the service). */
    std::map<std::string, const OutputPolicy *> policies;
};

/** The session front end.  The engine must outlive the service. */
class Service
{
  public:
    Service(ServeEngine &engine, ServiceConfig config = {});

    /**
     * Blocking session loop on the driving thread: one op per input
     * line, one event per output line (each line flushed).  Returns
     * after a shutdown op, at input EOF, or at the first op boundary
     * after requestShutdown() — always draining in-flight requests and
     * emitting the shutdown event first.
     */
    void run(std::istream &in, std::ostream &out);

    /**
     * Cancel a queued or active request; safe from any thread.  The
     * request's done event (reason "cancelled") is emitted by the
     * driving thread at its next flush.  Returns false when the id is
     * unknown or already finished.
     */
    bool cancel(u64 id) OLIVE_EXCLUDES(mu_);

    /** One stats event line (no trailing newline); any thread. */
    std::string statsLine() const;

    /** Ask the running loop to drain and return at the next op
     *  boundary; safe from any thread. */
    void requestShutdown() { shutdown_.store(true); }

    /** Ids submitted over the session's lifetime (driving thread). */
    size_t submittedCount() const { return submitted_; }

  private:
    /** Dispatch one op line; false after a shutdown op (loop exits). */
    bool handleLine(const std::string &line, std::ostream &out);

    void handleSubmit(const Json &op, std::ostream &out);
    void handleCancel(const Json &op, std::ostream &out);
    void handleStep(const Json &op, std::ostream &out);

    /** Expire deadline-overrun requests via engine cancel. */
    void checkDeadlines() OLIVE_EXCLUDES(mu_);

    /** One engine step plus event flush; true while work remains. */
    bool stepAndEmit(std::ostream &out) OLIVE_EXCLUDES(mu_);

    /** Step until the engine is idle, streaming events. */
    void drain(std::ostream &out);

    /**
     * Emit everything new the engine snapshots reveal: admitted
     * transitions, token events beyond each request's emission cursor,
     * and done events for newly finished requests.
     */
    void flushEvents(std::ostream &out) OLIVE_EXCLUDES(mu_);

    /** Emit queued for requests still pending after a step. */
    void emitQueued(std::ostream &out);

    void emitLine(std::ostream &out, const Json &event);
    void emitError(std::ostream &out, const std::string &message);

    /** Record a cancel reason and cancel in the engine (any thread). */
    bool cancelWithReason(u64 id, const std::string &reason)
        OLIVE_EXCLUDES(mu_);

    ServeEngine *engine_;
    ServiceConfig cfg_;
    std::atomic<bool> shutdown_{false};

    // ---- driving-thread state (only run()'s thread touches it) ----
    size_t submitted_ = 0;        //!< Requests accepted this session.
    size_t finishedCursor_ = 0;   //!< finished() entries already emitted.
    std::map<u64, size_t> emittedTokens_; //!< Token events per request.
    std::set<u64> queuedEmitted_;
    std::set<u64> admittedEmitted_;
    /** Absolute wall-clock expiry per request with a deadline. */
    std::map<u64, std::chrono::steady_clock::time_point> deadlines_;

    /** Guards cancelReasons_ — the one map other threads write. */
    mutable Mutex mu_;
    /** First-recorded retirement reason ("cancelled" | "deadline");
     *  consulted when a finished request has cancelled = true. */
    std::map<u64, std::string> cancelReasons_ OLIVE_GUARDED_BY(mu_);
};

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_SERVICE_HPP
