#include "engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace olive {
namespace serve {

double
ServeMetrics::tokensPerSecond() const
{
    return totalSeconds > 0.0
               ? static_cast<double>(tokensProcessed) / totalSeconds
               : 0.0;
}

double
ServeMetrics::generatedPerSecond() const
{
    return totalSeconds > 0.0
               ? static_cast<double>(tokensGenerated) / totalSeconds
               : 0.0;
}

double
ServeMetrics::stepLatencyMs(double p) const
{
    if (stepSeconds.empty())
        return 0.0;
    return stats::percentile(stepSeconds, p) * 1e3;
}

ServeEngine::ServeEngine(const eval::LmModel &model, ServeConfig config)
    : model_(&model), cfg_(config), scheme_(makeKvScheme(config.cacheFormat))
{
    OLIVE_ASSERT(model.vocab > 0 && model.backbone.causal,
                 "serving needs a causal LM");
    OLIVE_ASSERT(cfg_.maxBatchTokens >= 1, "token budget must be >= 1");
    OLIVE_ASSERT(cfg_.maxActiveRequests >= 1, "batch width must be >= 1");
}

u64
ServeEngine::submit(std::vector<int> prompt, size_t max_new_tokens)
{
    OLIVE_ASSERT(!prompt.empty(), "request prompt must be non-empty");
    OLIVE_ASSERT(max_new_tokens >= 1, "request must generate >= 1 token");
    for (int tok : prompt)
        OLIVE_ASSERT(tok >= 0 && static_cast<size_t>(tok) < model_->vocab,
                     "prompt token out of range");
    ActiveRequest a;
    a.req.id = nextId_++;
    a.req.prompt = std::move(prompt);
    a.req.maxNewTokens = max_new_tokens;
    a.submitStep = metrics_.steps;
    pending_.push_back(std::move(a));
    return pending_.back().req.id;
}

void
ServeEngine::admit()
{
    while (!pending_.empty() && active_.size() < cfg_.maxActiveRequests) {
        ActiveRequest a = std::move(pending_.front());
        pending_.pop_front();
        a.admitStep = metrics_.steps + 1; // the step about to run
        a.state = makeDecodeState(model_->backbone, *scheme_);
        active_.push_back(std::move(a));
    }
}

size_t
ServeEngine::runRequest(ActiveRequest &a, size_t ntok, u64 step_no) const
{
    const size_t d = model_->backbone.dModel;
    const std::vector<int> &prompt = a.req.prompt;
    size_t done = 0;
    Tensor x({1, d});
    while (done < ntok) {
        const size_t pos = a.state.position;
        const int tok = pos < prompt.size()
                            ? prompt[pos]
                            : a.generated[pos - prompt.size()];
        const auto trow =
            model_->embedding.row(static_cast<size_t>(tok));
        std::copy(trow.begin(), trow.end(), x.row(0).begin());
        const Tensor h =
            model_->backbone.forwardStep(x, a.state, cfg_.actScheme);
        ++done;
        if (pos + 1 < prompt.size())
            continue; // mid-prefill: no logits needed yet
        // This was the last prompt token or a decode token: project to
        // the vocabulary and extend the generation greedily.
        const Tensor lg = model_->logitsFromHidden(h);
        a.generated.push_back(ops::argmaxRow(lg.row(0)));
        if (a.firstTokenStep == 0)
            a.firstTokenStep = step_no;
        if (a.generated.size() >= a.req.maxNewTokens)
            a.done = true;
        // Autoregression: the token just produced is the next step's
        // input, so a request never decodes twice within one step.
        break;
    }
    return done;
}

bool
ServeEngine::step()
{
    admit();
    if (active_.empty())
        return false;
    const auto t0 = std::chrono::steady_clock::now();
    const u64 step_no = ++metrics_.steps;

    // Budgeting pass 1: one token each, FIFO, while budget lasts —
    // decode latency fairness.  Pass 2: leftover budget tops up
    // prefill-phase requests (chunked prefill), never past the token
    // that produces their first generation.
    std::vector<size_t> quota(active_.size(), 0);
    size_t budget = cfg_.maxBatchTokens;
    for (size_t i = 0; i < active_.size() && budget > 0; ++i) {
        quota[i] = 1;
        --budget;
    }
    for (size_t i = 0; i < active_.size() && budget > 0; ++i) {
        const ActiveRequest &a = active_[i];
        if (quota[i] == 0 || a.state.position >= a.req.prompt.size())
            continue;
        const size_t remaining = a.req.prompt.size() - a.state.position;
        const size_t extra = std::min(budget, remaining - quota[i]);
        quota[i] += extra;
        budget -= extra;
    }

    // Execute: requests are independent, so the batch parallelizes
    // deterministically (forwardStep's inner parallel regions run
    // inline on the worker).
    std::vector<size_t> processed(active_.size(), 0);
    std::vector<size_t> gen_before(active_.size(), 0);
    for (size_t i = 0; i < active_.size(); ++i)
        gen_before[i] = active_[i].generated.size();
    par::parallelFor(0, active_.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            processed[i] = runRequest(active_[i], quota[i], step_no);
    });

    // Accounting (before eviction, so a finishing request's cache
    // counts toward this step's footprint).
    size_t enc = 0, fp32 = 0;
    for (size_t i = 0; i < active_.size(); ++i) {
        metrics_.tokensProcessed += processed[i];
        metrics_.tokensGenerated +=
            active_[i].generated.size() - gen_before[i];
        enc += active_[i].state.encodedBytes();
        fp32 += active_[i].state.fp32Bytes();
    }
    metrics_.peakEncodedCacheBytes =
        std::max(metrics_.peakEncodedCacheBytes, enc);
    metrics_.peakFp32CacheBytes =
        std::max(metrics_.peakFp32CacheBytes, fp32);

    // Evict finished requests, preserving FIFO order of the rest.
    std::vector<ActiveRequest> still;
    still.reserve(active_.size());
    for (ActiveRequest &a : active_) {
        if (!a.done) {
            still.push_back(std::move(a));
            continue;
        }
        FinishedRequest f;
        f.id = a.req.id;
        f.prompt = std::move(a.req.prompt);
        f.generated = std::move(a.generated);
        f.submitStep = a.submitStep;
        f.admitStep = a.admitStep;
        f.firstTokenStep = a.firstTokenStep;
        f.finishStep = step_no;
        f.cacheEncodedBytes = a.state.encodedBytes();
        f.cacheFp32Bytes = a.state.fp32Bytes();
        finished_.push_back(std::move(f));
    }
    active_ = std::move(still);

    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    metrics_.stepSeconds.push_back(static_cast<float>(dt.count()));
    metrics_.totalSeconds += dt.count();
    return true;
}

size_t
ServeEngine::runToCompletion(size_t max_steps)
{
    size_t n = 0;
    while (step()) {
        ++n;
        OLIVE_ASSERT(max_steps == 0 || n <= max_steps,
                     "serving did not drain within the step limit");
    }
    return n;
}

} // namespace serve
} // namespace olive
