#include "engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "tensor/ops.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace olive {
namespace serve {

namespace {

/**
 * Rows of @p cand's prompt that a cache of @p donor's prompt can seed:
 * the longest common tokenized prefix, capped so the candidate still
 * computes at least its final prompt token itself (the step that emits
 * its first generated token must run, and it appends that row).
 */
size_t
shareablePrefixRows(const std::vector<int> &donor,
                    const std::vector<int> &cand)
{
    const size_t cap = std::min(donor.size(), cand.size() - 1);
    size_t n = 0;
    while (n < cap && donor[n] == cand[n])
        ++n;
    return n;
}

} // namespace

double
ServeMetrics::tokensPerSecond() const
{
    return totalSeconds > 0.0
               ? static_cast<double>(tokensProcessed) / totalSeconds
               : 0.0;
}

double
ServeMetrics::generatedPerSecond() const
{
    return totalSeconds > 0.0
               ? static_cast<double>(tokensGenerated) / totalSeconds
               : 0.0;
}

double
ServeMetrics::stepLatencyMs(double p) const
{
    if (stepSeconds.empty())
        return 0.0;
    return stats::percentile(stepSeconds, p) * 1e3;
}

double
ServeMetrics::ttftMs(double p) const
{
    if (ttftSeconds.empty())
        return 0.0;
    return stats::percentile(ttftSeconds, p) * 1e3;
}

double
ServeMetrics::specAcceptRate() const
{
    return specDrafted > 0
               ? static_cast<double>(specAccepted) /
                     static_cast<double>(specDrafted)
               : 0.0;
}

ServeEngine::ServeEngine(const eval::LmModel &model, ServeConfig config)
    : model_(&model), cfg_(std::move(config)),
      scheme_(makeKvScheme(cfg_.cacheFormat))
{
    OLIVE_ASSERT(model.vocab > 0 && model.backbone.causal,
                 "serving needs a causal LM");
    OLIVE_ASSERT(cfg_.maxBatchTokens >= 1, "token budget must be >= 1");
    OLIVE_ASSERT(cfg_.maxActiveRequests >= 1, "batch width must be >= 1");
    if (cfg_.pagedCache) {
        OLIVE_ASSERT(cfg_.blockRows >= 1, "blocks must hold >= 1 row");
        pool_ = std::make_unique<BlockPool>(*scheme_, model.backbone.dModel,
                                            cfg_.blockRows, cfg_.poolBlocks);
        if (cfg_.decodedCache) {
            dcache_ = std::make_unique<DecodedBlockCache>(
                *pool_, cfg_.decodedCacheBlocks);
            // A block whose refcount hits zero is about to be recycled
            // through the free list; its decoded entry must go with it
            // or a later reuse of the id would serve stale rows.
            pool_->setReleaseHook(
                [d = dcache_.get()](u32 id) { d->invalidate(id); });
        }
    }
    if (cfg_.speculate) {
        OLIVE_ASSERT(cfg_.draftLen >= 1,
                     "speculative decode needs draftLen >= 1");
        if (cfg_.proposer != nullptr) {
            proposer_ = cfg_.proposer;
        } else {
            ownedProposer_ = std::make_unique<NgramProposer>();
            proposer_ = ownedProposer_.get();
        }
    }
}

ServeEngine::~ServeEngine()
{
    // Retained prefixes hold pool references outside any DecodeState;
    // drop them here, while pool_ (a later-destroyed member) is alive.
    const MutexLock lock(mu_);
    while (!retained_.empty())
        evictOldestRetained();
}

u64
ServeEngine::submit(std::vector<int> prompt, size_t max_new_tokens,
                    std::vector<int> stop_tokens, int priority)
{
    OLIVE_ASSERT(!prompt.empty(), "request prompt must be non-empty");
    OLIVE_ASSERT(max_new_tokens >= 1, "request must generate >= 1 token");
    for (int tok : prompt)
        OLIVE_ASSERT(tok >= 0 && static_cast<size_t>(tok) < model_->vocab,
                     "prompt token out of range");
    for (int tok : stop_tokens)
        OLIVE_ASSERT(tok >= 0 && static_cast<size_t>(tok) < model_->vocab,
                     "stop token out of range");
    const MutexLock lock(mu_);
    ActiveRequest a;
    const u64 id = nextId_++;
    a.req.id = id;
    a.req.prompt = std::move(prompt);
    a.req.maxNewTokens = max_new_tokens;
    a.req.stopTokens = std::move(stop_tokens);
    a.req.priority = priority;
    a.submitStep = metrics_.steps;
    a.submitTime = std::chrono::steady_clock::now();
    // Descending priority, FIFO within a priority: insert before the
    // first strictly lower-priority entry.  All-default queues reduce
    // to push_back — the original FIFO schedule, bit for bit.
    auto pos = pending_.begin();
    while (pos != pending_.end() && pos->req.priority >= priority)
        ++pos;
    pending_.insert(pos, std::move(a));
    return id;
}

bool
ServeEngine::cancel(u64 id)
{
    const MutexLock lock(mu_);
    const auto retire = [&](ActiveRequest &a, bool was_active) {
        FinishedRequest f;
        f.id = a.req.id;
        // Capture the cache footprint before the ActiveRequest (and
        // with it the DecodeState) is destroyed below.
        f.cacheEncodedBytes = a.state.encodedBytes();
        f.cacheFp32Bytes = a.state.fp32Bytes();
        f.prompt = std::move(a.req.prompt);
        f.generated = std::move(a.generated);
        f.submitStep = a.submitStep;
        f.admitStep = a.admitStep;
        f.firstTokenStep = a.firstTokenStep;
        f.finishStep = metrics_.steps;
        f.ttftSeconds = a.ttftSeconds;
        f.specDrafted = a.specDrafted;
        f.specAccepted = a.specAccepted;
        f.sharedPrefixRows = a.sharedPrefixRows;
        f.cancelled = true;
        if (was_active)
            committedBlocks_ -= a.reservedBlocks;
        metrics_.requestsCancelled += 1;
        finished_.push_back(std::move(f));
    };
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        if (it->req.id != id)
            continue;
        retire(*it, /*was_active=*/false);
        pending_.erase(it);
        return true;
    }
    for (auto it = active_.begin(); it != active_.end(); ++it) {
        if (it->req.id != id)
            continue;
        // Whatever prefix the request had cached is still valid K/V of
        // its tokens — retain it (if configured) before the retire
        // below moves the token vectors out.
        retainPrefix(*it);
        retire(*it, /*was_active=*/true);
        // Erasing destroys the DecodeState: its caches drop their
        // block references, and zero-refcount blocks recycle through
        // the pool free list (whose release hook invalidates the
        // decoded working set) — all inside this critical section,
        // exactly like end-of-step eviction.
        active_.erase(it);
        return true;
    }
    return false;
}

size_t
ServeEngine::worstCaseBlocks(const Request &req) const
{
    // The cache never holds more than prompt + maxNew - 1 rows per
    // layer (the final generated token is never fed back).  Reserving
    // the full amount — ignoring any sharing discount — keeps the
    // capacity argument airtight: every block a request references,
    // shared or owned, lies within its own block table, whose length
    // this bounds; so sum(reservations) >= blocks in use always.
    const size_t rows = req.prompt.size() + req.maxNewTokens - 1;
    const size_t per_layer = (rows + cfg_.blockRows - 1) / cfg_.blockRows;
    return per_layer * model_->backbone.layers.size();
}

void
ServeEngine::retainPrefix(ActiveRequest &a)
{
    if (!cfg_.retainPrefixes || !cfg_.pagedCache || !cfg_.prefixSharing)
        return;
    // Cache length == position at every retire point (speculative
    // rollback restores it before the step ends); a sub-block prefix
    // would share nothing, so it is not worth a retention entry.
    const size_t rows = a.state.position;
    if (rows < cfg_.blockRows)
        return;
    RetainedPrefix e;
    e.rows = rows;
    e.tokens = a.req.prompt;
    for (int tok : a.generated) {
        if (e.tokens.size() >= rows)
            break;
        e.tokens.push_back(tok);
    }
    e.tokens.resize(std::min(e.tokens.size(), rows));
    e.tables.reserve(a.state.layers.size());
    for (const auto &layer : a.state.layers) {
        const auto &paged = static_cast<const PagedKvCache &>(*layer);
        std::vector<u32> t;
        t.reserve(paged.blockCount());
        for (size_t b = 0; b < paged.blockCount(); ++b)
            t.push_back(paged.blockId(b));
        e.blocks += t.size();
        e.tables.push_back(std::move(t));
    }
    // The retention budget evicts oldest-first; an entry that would
    // not fit even alone is simply not retained.
    if (cfg_.retainBlocks > 0) {
        if (e.blocks > cfg_.retainBlocks)
            return;
        while (retainedHeldBlocks_ + e.blocks > cfg_.retainBlocks)
            evictOldestRetained();
    }
    // References go on before the retiring DecodeState drops its own —
    // the blocks never hit refcount 0, so their payload (and any
    // decoded working-set entries) survives untouched.
    for (const auto &t : e.tables)
        for (u32 id : t)
            pool_->retainRetained(id);
    retainedHeldBlocks_ += e.blocks;
    metrics_.retentionStored += 1;
    metrics_.retainedBlocks = pool_->retainedBlocks();
    metrics_.retainedPeakBytes =
        std::max(metrics_.retainedPeakBytes, pool_->retainedBytes());
    retained_.push_back(std::move(e));
}

void
ServeEngine::evictOldestRetained()
{
    OLIVE_ASSERT(!retained_.empty(), "no retained prefix to evict");
    const RetainedPrefix &e = retained_.front();
    for (const auto &t : e.tables)
        for (u32 id : t)
            pool_->releaseRetained(id);
    retainedHeldBlocks_ -= e.blocks;
    metrics_.retentionEvictions += 1;
    metrics_.retainedBlocks = pool_->retainedBlocks();
    retained_.pop_front();
}

/**
 * FIFO admission.  For a paged engine each candidate passes two gates
 * before it is admitted, and admission stops at the first candidate
 * that fails one (strict FIFO, so the schedule is a pure function of
 * queue state):
 *
 *  1. Warm-donor deferral (prefixSharing): if an active request's
 *     prompt shares a longer tokenized prefix than any donor has cached
 *     SO FAR, admitting now would permanently forgo the difference —
 *     the candidate waits until the best donor's cache covers it.
 *     Donors always progress, so deferral always terminates (in the
 *     worst case the donor finishes, leaves the batch, and the
 *     candidate admits unshared).
 *  2. Capacity reservation (poolBlocks > 0): the candidate's
 *     worst-case block count must fit beside the reservations of all
 *     active requests PLUS the blocks the retention LRU holds (those
 *     references live outside the reservation sum), so
 *     BlockPool::allocate can never fail mid-step.  Retained entries
 *     are evicted, LRU first, before the gate ever stalls a candidate
 *     — retention may only save work, never delay admission.
 *
 * An admitted candidate with a shareable cached prefix seeds its block
 * tables from the donor: full blocks by reference, the partial
 * boundary block by copy-on-write, and its decode position skips past
 * the seeded rows (bit-exact — causal K/V rows are pure functions of
 * the tokens at or before them, and activation quantization is
 * per-token).  Retained prefixes of retired requests compete with live
 * donors on rows covered; they need no deferral (their rows are all
 * cached already), and a tie prefers the live donor.
 */
void
ServeEngine::admit()
{
    while (!pending_.empty() && active_.size() < cfg_.maxActiveRequests) {
        ActiveRequest &cand = pending_.front();
        size_t share_rows = 0;
        size_t donor_idx = active_.size();
        auto retained_it = retained_.end();
        size_t retained_rows = 0;
        if (cfg_.pagedCache && cfg_.prefixSharing) {
            size_t best_future = 0;
            for (size_t i = 0; i < active_.size(); ++i) {
                const size_t lcp = shareablePrefixRows(
                    active_[i].req.prompt, cand.req.prompt);
                // Sub-block prefixes would share nothing (pure copy);
                // only a full block of rows is worth waiting for.
                if (lcp < cfg_.blockRows)
                    continue;
                best_future = std::max(best_future, lcp);
                const size_t now =
                    std::min(lcp, active_[i].state.position);
                if (now > share_rows) {
                    share_rows = now;
                    donor_idx = i;
                }
            }
            for (auto it = retained_.begin(); it != retained_.end();
                 ++it) {
                const size_t cap =
                    std::min(it->rows, cand.req.prompt.size() - 1);
                size_t lcp = 0;
                while (lcp < cap &&
                       it->tokens[lcp] == cand.req.prompt[lcp])
                    ++lcp;
                if (lcp < cfg_.blockRows)
                    continue;
                if (lcp > share_rows && lcp > retained_rows) {
                    retained_rows = lcp;
                    retained_it = it;
                }
            }
            if (best_future > std::max(share_rows, retained_rows))
                break; // gate 1: wait for the warm donor
            // Touch the matched entry to most-recently-used now, so
            // the capacity gate below evicts it last.
            if (retained_it != retained_.end())
                retained_.splice(retained_.end(), retained_,
                                 retained_it);
        }
        if (cfg_.pagedCache && cfg_.poolBlocks > 0) {
            const size_t need = worstCaseBlocks(cand.req);
            // Evict retained prefixes before stalling: each eviction
            // releases references outside the reservation sum, so the
            // gate below can only get easier.  The matched entry sits
            // at MRU; losing it (last resort) just forfeits the share.
            while (committedBlocks_ + retainedHeldBlocks_ + need >
                       cfg_.poolBlocks &&
                   !retained_.empty()) {
                if (retained_it == retained_.begin()) {
                    retained_it = retained_.end();
                    retained_rows = 0;
                }
                evictOldestRetained();
            }
            OLIVE_ASSERT(!active_.empty() || need <= cfg_.poolBlocks,
                         "block pool is smaller than a single request's "
                         "worst-case cache");
            if (committedBlocks_ + retainedHeldBlocks_ + need >
                cfg_.poolBlocks)
                break; // gate 2: wait for evictions to release blocks
        }

        ActiveRequest a = std::move(pending_.front());
        pending_.pop_front();
        a.admitStep = metrics_.steps + 1; // the step about to run
        if (cfg_.pagedCache) {
            a.state =
                makePagedDecodeState(model_->backbone, *pool_, dcache_.get());
            a.reservedBlocks = worstCaseBlocks(a.req);
            committedBlocks_ += a.reservedBlocks;
            if (retained_it != retained_.end()) {
                // Seed from the retained prefix of a retired request:
                // same mechanics and bit-exactness argument as the
                // live-donor path, minus any live donor.
                const RetainedPrefix &e = *retained_it;
                for (size_t li = 0; li < a.state.layers.size(); ++li) {
                    static_cast<PagedKvCache &>(*a.state.layers[li])
                        .shareFromTable(e.tables[li], e.rows,
                                        retained_rows);
                }
                a.state.position = retained_rows;
                a.sharedPrefixRows = retained_rows;
                metrics_.sharedPrefillRowsSkipped += retained_rows;
                metrics_.retentionHits += 1;
                metrics_.retentionSharedRows += retained_rows;
            } else if (share_rows > 0) {
                const DecodeState &donor = active_[donor_idx].state;
                for (size_t li = 0; li < a.state.layers.size(); ++li) {
                    static_cast<PagedKvCache &>(*a.state.layers[li])
                        .shareFrom(static_cast<const PagedKvCache &>(
                                       *donor.layers[li]),
                                   share_rows);
                }
                a.state.position = share_rows;
                a.sharedPrefixRows = share_rows;
                metrics_.sharedPrefillRowsSkipped += share_rows;
            }
        } else {
            a.state = makeDecodeState(model_->backbone, *scheme_);
        }
        active_.push_back(std::move(a));
    }
}

size_t
ServeEngine::runRequest(ActiveRequest &a, size_t ntok, u64 step_no) const
{
    const size_t d = model_->backbone.dModel;
    const std::vector<int> &prompt = a.req.prompt;
    size_t done = 0;
    Tensor x({1, d});
    const auto embedInto = [&](int tok, std::span<float> row) {
        const auto trow = model_->embedding.row(static_cast<size_t>(tok));
        std::copy(trow.begin(), trow.end(), row.begin());
    };
    // Extend the generation greedily with @p next; returns true when
    // the request finished.  Generation ends at the budget or at any
    // stop token — the latter makes request lengths data-dependent, so
    // eviction timing is shaped by the model's own outputs.
    const auto extend = [&](int next) {
        a.generated.push_back(next);
        if (a.firstTokenStep == 0) {
            a.firstTokenStep = step_no;
            const std::chrono::duration<double> ttft =
                std::chrono::steady_clock::now() - a.submitTime;
            a.ttftSeconds = ttft.count();
        }
        if (std::find(a.req.stopTokens.begin(), a.req.stopTokens.end(),
                      next) != a.req.stopTokens.end()) {
            a.done = true;
            a.stoppedByToken = true;
        } else if (a.generated.size() >= a.req.maxNewTokens) {
            a.done = true;
        }
        return a.done;
    };
    while (done < ntok) {
        const size_t pos = a.state.position;
        const size_t prompt_rem =
            pos < prompt.size() ? prompt.size() - pos : 0;

        // Batched prefill: push a (chunk, d) slab of prompt rows
        // through forwardChunk in one pass — bit-identical to the
        // token-by-token loop below (which prefillChunk <= 1 retains
        // as the oracle), but the GEMMs see a real batch dimension.
        if (prompt_rem > 1 && cfg_.prefillChunk > 1) {
            const size_t m = std::min(
                {ntok - done, prompt_rem, cfg_.prefillChunk});
            if (m > 1) {
                Tensor rows({m, d});
                for (size_t i = 0; i < m; ++i)
                    embedInto(prompt[pos + i], rows.row(i));
                const Tensor h = model_->backbone.forwardChunk(
                    rows, a.state, cfg_.actScheme);
                done += m;
                if (pos + m < prompt.size())
                    continue; // still mid-prefill: no logits needed yet
                // The chunk ended on the final prompt token: its hidden
                // row yields the first generated token, exactly as the
                // step loop's final prefill iteration would.
                std::copy(h.row(m - 1).begin(), h.row(m - 1).end(),
                          x.row(0).begin());
                const Tensor lg = model_->logitsFromHidden(x);
                extend(ops::argmaxRow(lg.row(0)));
                break; // one generation turn per step — autoregression
            }
        }

        // Speculative decode: draft likely continuations from the
        // request's own history and verify them all in one batched
        // forwardChunk call.  Row i's argmax is the TRUE next token
        // whenever rows [0, i] were fed true stream tokens, so greedy
        // accept/reject reproduces plain decode bit-for-bit: the
        // proposer only decides how many tokens this turn advances,
        // never which ones.
        if (cfg_.speculate && prompt_rem == 0 && ntok - done >= 2 &&
            a.generated.size() + 1 < a.req.maxNewTokens) {
            // history = prompt + generated; the feed token history[pos]
            // is its last element (decode-phase position invariant).
            std::vector<int> history(prompt);
            history.insert(history.end(), a.generated.begin(),
                           a.generated.end());
            const size_t cap =
                std::min({ntok - done - 1, cfg_.draftLen,
                          a.req.maxNewTokens - a.generated.size() - 1});
            std::vector<int> drafts = proposer_->propose(history, cap);
            if (drafts.size() > cap)
                drafts.resize(cap); // a proposer may over-draft; clamp
            if (!drafts.empty()) {
                const size_t k = drafts.size();
                Tensor rows({k + 1, d});
                embedInto(history[pos], rows.row(0));
                for (size_t i = 0; i < k; ++i)
                    embedInto(drafts[i], rows.row(i + 1));
                const Tensor h = model_->backbone.forwardChunk(
                    rows, a.state, cfg_.actScheme);
                // Batched vocab projection: rows are independent in
                // matmulTransB, so each logits row is bit-identical to
                // a per-step (1, d) projection.
                const Tensor lg = model_->logitsFromHidden(h);
                a.specDrafted += k;
                done += k + 1; // every verify row costs full compute
                size_t kept = 1; // row 0's feed is always a true token
                for (size_t i = 0; i <= k; ++i) {
                    const int next = ops::argmaxRow(lg.row(i));
                    const bool matched = i < k && next == drafts[i];
                    if (matched)
                        ++a.specAccepted;
                    if (extend(next) || !matched)
                        break;
                    ++kept; // row i+1 was fed the now-confirmed draft
                }
                // Roll back the rows fed with rejected (or post-stop)
                // drafts, restoring cache length == position; the
                // truncated rows live in exclusively owned tail blocks
                // (every shareable prefix row precedes them), so no
                // other request can be affected.
                if (kept < k + 1) {
                    const size_t new_len = pos + kept;
                    for (auto &layer : a.state.layers)
                        layer->truncate(new_len);
                    a.state.position = new_len;
                }
                break; // one generation turn per step
            }
        }

        // Token-by-token path: mid-prefill rows when chunking is off
        // (or the quota left m == 1), and the plain decode step.
        const int tok = pos < prompt.size()
                            ? prompt[pos]
                            : a.generated[pos - prompt.size()];
        embedInto(tok, x.row(0));
        const Tensor h =
            model_->backbone.forwardStep(x, a.state, cfg_.actScheme);
        ++done;
        if (pos + 1 < prompt.size())
            continue; // mid-prefill: no logits needed yet
        // This was the last prompt token or a decode token: project to
        // the vocabulary and extend the generation greedily.
        const Tensor lg = model_->logitsFromHidden(h);
        extend(ops::argmaxRow(lg.row(0)));
        // Autoregression: the token just produced is the next step's
        // input, so a request never decodes twice within one step.
        break;
    }
    return done;
}

bool
ServeEngine::step()
{
    // The whole step is one engine critical section; snapshot pollers
    // on other threads serialize against step boundaries.  Lock
    // hierarchy: mu_ is taken first, the pool and decoded-cache
    // mutexes nest inside (allocate/retain/release, hook-driven
    // invalidation), never the reverse.
    const MutexLock lock(mu_);
    admit();
    if (active_.empty())
        return false;
    const auto t0 = std::chrono::steady_clock::now();
    const u64 step_no = ++metrics_.steps;

    // Budgeting pass 1: one token each, FIFO, while budget lasts —
    // decode latency fairness.  Pass 2: leftover budget tops up
    // prefill-phase requests (chunked prefill), never past the token
    // that produces their first generation.
    std::vector<size_t> quota(active_.size(), 0);
    size_t budget = cfg_.maxBatchTokens;
    for (size_t i = 0; i < active_.size() && budget > 0; ++i) {
        quota[i] = 1;
        --budget;
    }
    for (size_t i = 0; i < active_.size() && budget > 0; ++i) {
        const ActiveRequest &a = active_[i];
        if (quota[i] == 0 || a.state.position >= a.req.prompt.size())
            continue;
        const size_t remaining = a.req.prompt.size() - a.state.position;
        const size_t extra = std::min(budget, remaining - quota[i]);
        quota[i] += extra;
        budget -= extra;
    }
    // Pass 3 (speculative decode only): grant decode-phase requests up
    // to draftLen verify rows on top of their guaranteed token.  Every
    // verify row costs the same compute as a real token, so it draws
    // from the same budget; a request that cannot emit 2+ more tokens
    // gets nothing (its verify rows could never be kept).
    if (cfg_.speculate) {
        for (size_t i = 0; i < active_.size() && budget > 0; ++i) {
            const ActiveRequest &a = active_[i];
            if (quota[i] == 0 || a.state.position < a.req.prompt.size())
                continue;
            if (a.generated.size() + 1 >= a.req.maxNewTokens)
                continue;
            const size_t extra = std::min(
                {budget, cfg_.draftLen,
                 a.req.maxNewTokens - a.generated.size() - 1});
            quota[i] += extra;
            budget -= extra;
        }
    }

    // Execute: requests are independent, so the batch parallelizes
    // deterministically (forwardStep's inner parallel regions run
    // inline on the worker).
    std::vector<size_t> processed(active_.size(), 0);
    std::vector<size_t> gen_before(active_.size(), 0);
    std::vector<u64> drafted_before(active_.size(), 0);
    std::vector<u64> accepted_before(active_.size(), 0);
    for (size_t i = 0; i < active_.size(); ++i) {
        gen_before[i] = active_[i].generated.size();
        drafted_before[i] = active_[i].specDrafted;
        accepted_before[i] = active_[i].specAccepted;
    }
    // The kernel is annotated as running under mu_: only the issuing
    // thread formally holds the lock, but workers executing chunks are
    // synchronized with it by the pool's job handoff (no other thread
    // can hold mu_ while the region runs), so extending the critical
    // section over them is sound — the stress tier runs this under
    // TSan to back the claim up.
    par::parallelFor(0, active_.size(), 1,
                     [&](size_t b, size_t e) OLIVE_REQUIRES(mu_) {
                         for (size_t i = b; i < e; ++i)
                             processed[i] =
                                 runRequest(active_[i], quota[i], step_no);
                     });

    // Accounting (before eviction, so a finishing request's cache
    // counts toward this step's footprint).  The paged footprint is
    // pool-level — blocks in use x block bytes — so shared blocks are
    // counted once, not once per referencing request.
    size_t fp32 = 0;
    for (size_t i = 0; i < active_.size(); ++i) {
        metrics_.tokensProcessed += processed[i];
        metrics_.tokensGenerated +=
            active_[i].generated.size() - gen_before[i];
        metrics_.specDrafted += active_[i].specDrafted - drafted_before[i];
        metrics_.specAccepted +=
            active_[i].specAccepted - accepted_before[i];
        if (active_[i].firstTokenStep == step_no)
            metrics_.ttftSeconds.push_back(
                static_cast<float>(active_[i].ttftSeconds));
        fp32 += active_[i].state.fp32Bytes();
    }
    size_t enc = 0;
    if (pool_) {
        enc = pool_->bytesInUse();
        metrics_.peakSharedSavedBytes = std::max(
            metrics_.peakSharedSavedBytes, pool_->sharedSavedBytes());
        metrics_.cowCopyRows = pool_->payloadCopyRows();
        metrics_.retainedBlocks = pool_->retainedBlocks();
        metrics_.retainedPeakBytes = std::max(metrics_.retainedPeakBytes,
                                              pool_->retainedBytes());
        if (dcache_) {
            // Cumulative counters sampled, not accumulated — the cache
            // already sums across steps.
            metrics_.decodedCacheHits = dcache_->hits();
            metrics_.decodedCacheMisses = dcache_->misses();
            metrics_.decodedCacheEvictions = dcache_->evictions();
            metrics_.decodedCacheRows = dcache_->decodedRows();
            metrics_.decodedCachePeakBytes = dcache_->peakBytes();
        }
    } else {
        for (const ActiveRequest &a : active_)
            enc += a.state.encodedBytes();
    }
    metrics_.peakEncodedCacheBytes =
        std::max(metrics_.peakEncodedCacheBytes, enc);
    metrics_.peakFp32CacheBytes =
        std::max(metrics_.peakFp32CacheBytes, fp32);

    // Evict finished requests, preserving FIFO order of the rest.
    // Destroying a paged request's caches releases its blocks to the
    // free list — refcount decrements only, no payload copies.
    std::vector<ActiveRequest> still;
    still.reserve(active_.size());
    for (ActiveRequest &a : active_) {
        if (!a.done) {
            still.push_back(std::move(a));
            continue;
        }
        retainPrefix(a); // before the moves below consume its tokens
        FinishedRequest f;
        f.id = a.req.id;
        f.prompt = std::move(a.req.prompt);
        f.generated = std::move(a.generated);
        f.submitStep = a.submitStep;
        f.admitStep = a.admitStep;
        f.firstTokenStep = a.firstTokenStep;
        f.finishStep = step_no;
        f.ttftSeconds = a.ttftSeconds;
        f.specDrafted = a.specDrafted;
        f.specAccepted = a.specAccepted;
        f.cacheEncodedBytes = a.state.encodedBytes();
        f.cacheFp32Bytes = a.state.fp32Bytes();
        f.sharedPrefixRows = a.sharedPrefixRows;
        f.stoppedByToken = a.stoppedByToken;
        committedBlocks_ -= a.reservedBlocks;
        finished_.push_back(std::move(f));
    }
    active_ = std::move(still);

    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    metrics_.stepSeconds.push_back(static_cast<float>(dt.count()));
    metrics_.totalSeconds += dt.count();
    return true;
}

size_t
ServeEngine::runToCompletion(size_t max_steps)
{
    size_t n = 0;
    while (step()) {
        ++n;
        OLIVE_ASSERT(max_steps == 0 || n <= max_steps,
                     "serving did not drain within the step limit");
    }
    return n;
}

size_t
ServeEngine::pendingCount() const
{
    const MutexLock lock(mu_);
    return pending_.size();
}

size_t
ServeEngine::activeCount() const
{
    const MutexLock lock(mu_);
    return active_.size();
}

size_t
ServeEngine::finishedCount() const
{
    const MutexLock lock(mu_);
    return finished_.size();
}

ServeMetrics
ServeEngine::metricsSnapshot() const
{
    const MutexLock lock(mu_);
    return metrics_;
}

std::vector<u64>
ServeEngine::activeIds() const
{
    const MutexLock lock(mu_);
    std::vector<u64> ids;
    ids.reserve(active_.size());
    for (const ActiveRequest &a : active_)
        ids.push_back(a.req.id);
    return ids;
}

std::vector<u64>
ServeEngine::pendingIds() const
{
    const MutexLock lock(mu_);
    std::vector<u64> ids;
    ids.reserve(pending_.size());
    for (const ActiveRequest &a : pending_)
        ids.push_back(a.req.id);
    return ids;
}

std::vector<FinishedRequest>
ServeEngine::finishedSnapshot(size_t from) const
{
    const MutexLock lock(mu_);
    std::vector<FinishedRequest> out;
    for (size_t i = from; i < finished_.size(); ++i)
        out.push_back(finished_[i]);
    return out;
}

std::vector<ServeEngine::ActiveProgress>
ServeEngine::progressSnapshot() const
{
    const MutexLock lock(mu_);
    std::vector<ActiveProgress> out;
    out.reserve(active_.size());
    for (const ActiveRequest &a : active_) {
        ActiveProgress p;
        p.id = a.req.id;
        p.promptRows = a.req.prompt.size();
        p.position = a.state.position;
        p.generated = a.generated;
        out.push_back(std::move(p));
    }
    return out;
}

size_t
ServeEngine::retainedBlockCount() const
{
    const MutexLock lock(mu_);
    return retainedHeldBlocks_;
}

void
ServeEngine::clearRetainedPrefixes()
{
    const MutexLock lock(mu_);
    while (!retained_.empty())
        evictOldestRetained();
}

const DecodeState *
ServeEngine::activeState(u64 id) const
{
    const MutexLock lock(mu_);
    for (const ActiveRequest &a : active_) {
        if (a.req.id == id)
            return &a.state;
    }
    return nullptr;
}

} // namespace serve
} // namespace olive
