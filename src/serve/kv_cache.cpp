#include "kv_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "baselines/uniform.hpp"
#include "nn/transformer.hpp"
#include "quant/ovp.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace olive {
namespace serve {

namespace {

OliveConfig
withBits(OliveConfig config, int bits)
{
    config.bits = bits;
    return config;
}

} // namespace

// ------------------------------------------------------------ fp32

void
Fp32KvScheme::encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                        KvRowMeta &meta) const
{
    meta = KvRowMeta{};
    const size_t off = bytes.size();
    bytes.resize(off + row.size() * sizeof(float));
    std::memcpy(bytes.data() + off, row.data(), row.size() * sizeof(float));
}

void
Fp32KvScheme::decodeRow(std::span<const u8> bytes, const KvRowMeta &,
                        std::span<float> out) const
{
    OLIVE_ASSERT(bytes.size() == out.size() * sizeof(float),
                 "fp32 kv row payload size mismatch");
    std::memcpy(out.data(), bytes.data(), bytes.size());
}

// ------------------------------------------------------------- ovp

OvpKvScheme::OvpKvScheme(int bits, OliveConfig config)
    : quantizer_(withBits(config, bits))
{
    OLIVE_ASSERT(bits == 4 || bits == 8, "OVP KV cache supports 4/8 bits");
}

std::string
OvpKvScheme::name() const
{
    return "kv-olive" + std::to_string(quantizer_.config().bits);
}

size_t
OvpKvScheme::rowBytes(size_t d) const
{
    const NormalType t = quantizer_.config().bits == 8 ? NormalType::Int8
                                                       : NormalType::Int4;
    return ((d + 1) / 2) * OvpCodec::bytesPerPair(t);
}

void
OvpKvScheme::encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                       KvRowMeta &meta) const
{
    OLIVE_ASSERT(!row.empty(), "cannot encode an empty KV row");
    if (stats::absMax(row) == 0.0) {
        // Nothing to calibrate on; an all-zero row decodes to zeros.
        meta = KvRowMeta{};
        bytes.resize(bytes.size() + rowBytes(row.size()), 0);
        return;
    }
    const QuantDecision d = quantizer_.calibrate(row);
    const OvpCodec codec = quantizer_.makeCodec(d);
    const std::vector<u8> enc = codec.encode(row);
    OLIVE_ASSERT(enc.size() == rowBytes(row.size()),
                 "OVP row payload size drifted from rowBytes()");
    meta.scale = d.scale;
    meta.threshold = d.threshold;
    meta.normal = d.normal;
    bytes.insert(bytes.end(), enc.begin(), enc.end());
}

void
OvpKvScheme::decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                       std::span<float> out) const
{
    if (meta.scale == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    const OvpCodec codec(meta.normal, meta.scale, meta.threshold);
    const std::vector<float> vals = codec.decode(bytes, out.size());
    std::copy(vals.begin(), vals.end(), out.begin());
}

// ------------------------------------------------------------ int8

void
Int8KvScheme::encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                        KvRowMeta &meta) const
{
    OLIVE_ASSERT(!row.empty(), "cannot encode an empty KV row");
    meta = KvRowMeta{};
    const size_t off = bytes.size();
    bytes.resize(off + row.size());
    if (stats::absMax(row) == 0.0)
        return; // scale 0 sentinel, zero payload
    const float scale = searchUniformScale(row, 127);
    meta.scale = scale;
    for (size_t i = 0; i < row.size(); ++i) {
        // Exactly uniformFakeQuant's arithmetic, but storing the code.
        double q = std::nearbyint(static_cast<double>(row[i]) / scale);
        q = std::clamp(q, -127.0, 127.0);
        bytes[off + i] = static_cast<u8>(static_cast<i8>(q));
    }
}

void
Int8KvScheme::decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                        std::span<float> out) const
{
    OLIVE_ASSERT(bytes.size() == out.size(),
                 "int8 kv row payload size mismatch");
    if (meta.scale == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    for (size_t i = 0; i < out.size(); ++i) {
        const auto q = static_cast<i8>(bytes[i]);
        out[i] = static_cast<float>(static_cast<double>(q) * meta.scale);
    }
}

// --------------------------------------------------------- factory

std::unique_ptr<KvScheme>
makeKvScheme(KvCacheFormat format)
{
    switch (format) {
    case KvCacheFormat::Fp32:
        return std::make_unique<Fp32KvScheme>();
    case KvCacheFormat::Olive4:
        return std::make_unique<OvpKvScheme>(4);
    case KvCacheFormat::Olive8:
        return std::make_unique<OvpKvScheme>(8);
    case KvCacheFormat::Int8:
        return std::make_unique<Int8KvScheme>();
    }
    OLIVE_PANIC("unreachable kv cache format");
}

KvCacheFormat
parseKvCacheFormat(const std::string &id)
{
    if (id == "fp32")
        return KvCacheFormat::Fp32;
    if (id == "olive4")
        return KvCacheFormat::Olive4;
    if (id == "olive8")
        return KvCacheFormat::Olive8;
    if (id == "int8")
        return KvCacheFormat::Int8;
    OLIVE_FATAL("unknown KV cache format \"" + id +
                "\" (known: fp32, olive4, olive8, int8)");
}

std::vector<std::string>
kvCacheFormatIds()
{
    return {"fp32", "olive4", "olive8", "int8"};
}

// --------------------------------------------------------- KvCache

KvCache::KvCache(const KvScheme &scheme, size_t d)
    : scheme_(&scheme), d_(d)
{
    OLIVE_ASSERT(d > 0, "KV cache row width must be positive");
}

void
KvCache::append(std::span<const float> k, std::span<const float> v)
{
    OLIVE_ASSERT(k.size() == d_ && v.size() == d_,
                 "KV row width must match the cache");
    const size_t rb = scheme_->rowBytes(d_);
    KvRowMeta km, vm;
    scheme_->encodeRow(k, kBytes_, km);
    scheme_->encodeRow(v, vBytes_, vm);
    OLIVE_ASSERT(kBytes_.size() == (kMeta_.size() + 1) * rb &&
                     vBytes_.size() == (vMeta_.size() + 1) * rb,
                 "KV codec appended a payload of unexpected size");
    kMeta_.push_back(km);
    vMeta_.push_back(vm);
}

void
KvCache::decodeAll(const std::vector<u8> &bytes,
                   const std::vector<KvRowMeta> &meta, Tensor &out) const
{
    OLIVE_ASSERT(out.rank() == 2 && out.dim(0) == meta.size() &&
                     out.dim(1) == d_,
                 "decode target must be (length, d)");
    const size_t rb = scheme_->rowBytes(d_);
    // Rows are independent and each is a pure function of its payload
    // bytes, so the decode parallelizes deterministically (and runs
    // inline when the engine is already parallel across requests).
    par::parallelFor(0, meta.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            scheme_->decodeRow(
                std::span<const u8>(bytes.data() + i * rb, rb), meta[i],
                out.row(i));
        }
    });
}

void
KvCache::decodeK(Tensor &out) const
{
    decodeAll(kBytes_, kMeta_, out);
}

void
KvCache::decodeV(Tensor &out) const
{
    decodeAll(vBytes_, vMeta_, out);
}

size_t
KvCache::encodedBytes() const
{
    return kBytes_.size() + vBytes_.size() +
           (kMeta_.size() + vMeta_.size()) * scheme_->metaBytesPerRow();
}

// ----------------------------------------------------- DecodeState

size_t
DecodeState::encodedBytes() const
{
    size_t n = 0;
    for (const KvCache &c : layers)
        n += c.encodedBytes();
    return n;
}

size_t
DecodeState::fp32Bytes() const
{
    size_t n = 0;
    for (const KvCache &c : layers)
        n += c.fp32Bytes();
    return n;
}

DecodeState
makeDecodeState(const nn::Transformer &model, const KvScheme &scheme)
{
    DecodeState state;
    state.layers.reserve(model.layers.size());
    for (size_t i = 0; i < model.layers.size(); ++i)
        state.layers.emplace_back(scheme, model.dModel);
    return state;
}

} // namespace serve
} // namespace olive
