#include "kv_cache.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "baselines/uniform.hpp"
#include "block_pool.hpp"
#include "decoded_cache.hpp"
#include "nn/transformer.hpp"
#include "quant/ovp.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace olive {
namespace serve {

namespace {

OliveConfig
withBits(OliveConfig config, int bits)
{
    config.bits = bits;
    return config;
}

/**
 * Decode-side OvpCodec amortization.  Constructing an OvpCodec builds
 * 256-entry value LUTs plus the outlier boundary tables — fine once per
 * tensor, wasteful once per cached row per decode step, because the
 * attention kernel re-decodes every cached row on every step and a
 * row's (normal type, scale) recurs unchanged across all of them.  The
 * codec's decode side is a pure function of (normal, scale): the
 * threshold only shapes encode-time pair classification
 * (KvScheme.OvpDecodeIsThresholdIndependent pins this), and OvpKvScheme
 * always uses the default complementary abfloat bias.  So decode codecs
 * are cached per (normal, scale-bits) key.
 *
 * The cache is thread_local: decodeRow runs concurrently across rows
 * under par::parallelFor, and a per-thread map needs no locks while
 * staying bit-deterministic (every thread constructs the identical
 * codec from the identical key).  Bounded so adversarial scale churn
 * cannot grow it without limit.
 */
const OvpCodec &
cachedDecodeCodec(NormalType normal, float scale)
{
    thread_local std::unordered_map<u64, std::unique_ptr<OvpCodec>> cache;
    const u64 key = (static_cast<u64>(std::bit_cast<u32>(scale)) << 8) |
                    static_cast<u64>(static_cast<u8>(normal));
    auto it = cache.find(key);
    if (it == cache.end()) {
        if (cache.size() >= 4096)
            cache.clear();
        // The threshold argument is irrelevant to decode; any positive
        // value yields the same decode LUTs under this (normal, scale).
        it = cache
                 .emplace(key, std::make_unique<OvpCodec>(
                                   normal, scale,
                                   static_cast<double>(scale)))
                 .first;
    }
    return *it->second;
}

} // namespace

// ------------------------------------------------------------ fp32

void
Fp32KvScheme::encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                        KvRowMeta &meta) const
{
    meta = KvRowMeta{};
    const size_t off = bytes.size();
    bytes.resize(off + row.size() * sizeof(float));
    std::memcpy(bytes.data() + off, row.data(), row.size() * sizeof(float));
}

void
Fp32KvScheme::decodeRow(std::span<const u8> bytes, const KvRowMeta &,
                        std::span<float> out) const
{
    OLIVE_ASSERT(bytes.size() == out.size() * sizeof(float),
                 "fp32 kv row payload size mismatch");
    std::memcpy(out.data(), bytes.data(), bytes.size());
}

// ------------------------------------------------------------- ovp

OvpKvScheme::OvpKvScheme(int bits, OliveConfig config)
    : quantizer_(withBits(config, bits))
{
    OLIVE_ASSERT(bits == 4 || bits == 8, "OVP KV cache supports 4/8 bits");
}

std::string
OvpKvScheme::name() const
{
    return "kv-olive" + std::to_string(quantizer_.config().bits);
}

size_t
OvpKvScheme::rowBytes(size_t d) const
{
    const NormalType t = quantizer_.config().bits == 8 ? NormalType::Int8
                                                       : NormalType::Int4;
    return ((d + 1) / 2) * OvpCodec::bytesPerPair(t);
}

void
OvpKvScheme::encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                       KvRowMeta &meta) const
{
    OLIVE_ASSERT(!row.empty(), "cannot encode an empty KV row");
    if (stats::absMax(row) == 0.0) {
        // Nothing to calibrate on; an all-zero row decodes to zeros.
        meta = KvRowMeta{};
        bytes.resize(bytes.size() + rowBytes(row.size()), 0);
        return;
    }
    const QuantDecision d = quantizer_.calibrate(row);
    const OvpCodec codec = quantizer_.makeCodec(d);
    const std::vector<u8> enc = codec.encode(row);
    OLIVE_ASSERT(enc.size() == rowBytes(row.size()),
                 "OVP row payload size drifted from rowBytes()");
    meta.scale = d.scale;
    meta.threshold = d.threshold;
    meta.normal = d.normal;
    bytes.insert(bytes.end(), enc.begin(), enc.end());
}

void
OvpKvScheme::decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                       std::span<float> out) const
{
    if (meta.scale == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    // Construction amortized across rows and steps sharing a (normal,
    // scale); bit-identical to a freshly constructed codec
    // (KvScheme.OvpDecodeCodecCacheIsBitIdentical pins this).
    const OvpCodec &codec = cachedDecodeCodec(meta.normal, meta.scale);
    const std::vector<float> vals = codec.decode(bytes, out.size());
    std::copy(vals.begin(), vals.end(), out.begin());
}

// ------------------------------------------------------------ int8

void
Int8KvScheme::encodeRow(std::span<const float> row, std::vector<u8> &bytes,
                        KvRowMeta &meta) const
{
    OLIVE_ASSERT(!row.empty(), "cannot encode an empty KV row");
    meta = KvRowMeta{};
    const size_t off = bytes.size();
    bytes.resize(off + row.size());
    if (stats::absMax(row) == 0.0)
        return; // scale 0 sentinel, zero payload
    const float scale = searchUniformScale(row, 127);
    meta.scale = scale;
    for (size_t i = 0; i < row.size(); ++i) {
        // Exactly uniformFakeQuant's arithmetic, but storing the code.
        double q = std::nearbyint(static_cast<double>(row[i]) / scale);
        q = std::clamp(q, -127.0, 127.0);
        bytes[off + i] = static_cast<u8>(static_cast<i8>(q));
    }
}

void
Int8KvScheme::decodeRow(std::span<const u8> bytes, const KvRowMeta &meta,
                        std::span<float> out) const
{
    OLIVE_ASSERT(bytes.size() == out.size(),
                 "int8 kv row payload size mismatch");
    if (meta.scale == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    for (size_t i = 0; i < out.size(); ++i) {
        const auto q = static_cast<i8>(bytes[i]);
        out[i] = static_cast<float>(static_cast<double>(q) * meta.scale);
    }
}

// --------------------------------------------------------- factory

std::unique_ptr<KvScheme>
makeKvScheme(KvCacheFormat format)
{
    switch (format) {
    case KvCacheFormat::Fp32:
        return std::make_unique<Fp32KvScheme>();
    case KvCacheFormat::Olive4:
        return std::make_unique<OvpKvScheme>(4);
    case KvCacheFormat::Olive8:
        return std::make_unique<OvpKvScheme>(8);
    case KvCacheFormat::Int8:
        return std::make_unique<Int8KvScheme>();
    }
    OLIVE_PANIC("unreachable kv cache format");
}

KvCacheFormat
parseKvCacheFormat(const std::string &id)
{
    if (id == "fp32")
        return KvCacheFormat::Fp32;
    if (id == "olive4")
        return KvCacheFormat::Olive4;
    if (id == "olive8")
        return KvCacheFormat::Olive8;
    if (id == "int8")
        return KvCacheFormat::Int8;
    OLIVE_FATAL("unknown KV cache format \"" + id +
                "\" (known: fp32, olive4, olive8, int8)");
}

std::vector<std::string>
kvCacheFormatIds()
{
    return {"fp32", "olive4", "olive8", "int8"};
}

// --------------------------------------------------------- KvCache

KvCache::KvCache(const KvScheme &scheme, size_t d)
    : scheme_(&scheme), d_(d)
{
    OLIVE_ASSERT(d > 0, "KV cache row width must be positive");
}

void
KvCache::appendRows(const Tensor &k, const Tensor &v)
{
    OLIVE_ASSERT(k.rank() == 2 && v.rank() == 2 && k.dim(0) == v.dim(0) &&
                     k.dim(1) == d_ && v.dim(1) == d_,
                 "bulk append needs matching (m, d) K and V");
    // The oracle semantics: m ordinary appends in row order.  Storage
    // layouts override this for speed, never for different bytes.
    for (size_t i = 0; i < k.dim(0); ++i)
        append(k.row(i), v.row(i));
}

void
KvCache::withDecoded(
    const std::function<void(std::span<const KvSpan>)> &fn) const
{
    // The retained scratch-materializing path: decode every row into a
    // transient (length, d) pair and serve it as one span.  O(length)
    // codec work per call — the oracle the decoded-block working set is
    // measured (and bit-compared) against.
    const size_t len = length();
    if (len == 0) {
        fn(std::span<const KvSpan>());
        return;
    }
    Tensor k({len, d_}), v({len, d_});
    decodeK(k);
    decodeV(v);
    const KvSpan span{k.raw(), v.raw(), len};
    fn(std::span<const KvSpan>(&span, 1));
}

// ----------------------------------------------- KvCacheReference

KvCacheReference::KvCacheReference(const KvScheme &scheme, size_t d)
    : KvCache(scheme, d)
{
}

void
KvCacheReference::append(std::span<const float> k, std::span<const float> v)
{
    OLIVE_ASSERT(k.size() == d_ && v.size() == d_,
                 "KV row width must match the cache");
    const size_t rb = scheme_->rowBytes(d_);
    KvRowMeta km, vm;
    scheme_->encodeRow(k, kBytes_, km);
    scheme_->encodeRow(v, vBytes_, vm);
    OLIVE_ASSERT(kBytes_.size() == (kMeta_.size() + 1) * rb &&
                     vBytes_.size() == (vMeta_.size() + 1) * rb,
                 "KV codec appended a payload of unexpected size");
    kMeta_.push_back(km);
    vMeta_.push_back(vm);
}

void
KvCacheReference::truncate(size_t new_len)
{
    OLIVE_ASSERT(new_len <= kMeta_.size(), "truncate cannot grow the cache");
    const size_t rb = scheme_->rowBytes(d_);
    kBytes_.resize(new_len * rb);
    vBytes_.resize(new_len * rb);
    kMeta_.resize(new_len);
    vMeta_.resize(new_len);
}

void
KvCacheReference::decodeAll(const std::vector<u8> &bytes,
                            const std::vector<KvRowMeta> &meta,
                            Tensor &out) const
{
    OLIVE_ASSERT(out.rank() == 2 && out.dim(0) == meta.size() &&
                     out.dim(1) == d_,
                 "decode target must be (length, d)");
    const size_t rb = scheme_->rowBytes(d_);
    // Rows are independent and each is a pure function of its payload
    // bytes, so the decode parallelizes deterministically (and runs
    // inline when the engine is already parallel across requests).
    par::parallelFor(0, meta.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            scheme_->decodeRow(
                std::span<const u8>(bytes.data() + i * rb, rb), meta[i],
                out.row(i));
        }
    });
}

void
KvCacheReference::decodeK(Tensor &out) const
{
    decodeAll(kBytes_, kMeta_, out);
}

void
KvCacheReference::decodeV(Tensor &out) const
{
    decodeAll(vBytes_, vMeta_, out);
}

size_t
KvCacheReference::encodedBytes() const
{
    return kBytes_.size() + vBytes_.size() +
           (kMeta_.size() + vMeta_.size()) * scheme_->metaBytesPerRow();
}

// --------------------------------------------------- PagedKvCache

PagedKvCache::PagedKvCache(BlockPool &pool, DecodedBlockCache *dcache)
    : KvCache(pool.scheme(), pool.dModel()), pool_(&pool), dcache_(dcache)
{
}

PagedKvCache::~PagedKvCache()
{
    // Eviction: every referenced block drops one reference; payload
    // bytes are never copied or cleared (the free list recycles them).
    for (u32 id : table_)
        pool_->release(id);
}

void
PagedKvCache::append(std::span<const float> k, std::span<const float> v)
{
    OLIVE_ASSERT(k.size() == d_ && v.size() == d_,
                 "KV row width must match the cache");
    const size_t B = pool_->blockRows();
    const size_t slot = rows_ % B;
    if (slot == 0)
        table_.push_back(pool_->allocate());
    OLIVE_ASSERT(rows_ / B == table_.size() - 1,
                 "block table is out of sync with the row count");
    const u32 tail = table_.back();
    OLIVE_ASSERT(pool_->refcount(tail) == 1,
                 "appending into a shared block (tail must be exclusive)");
    // The codec appends into a staging vector (its contract); the row
    // is then placed into the block slot.  Same bytes per row as the
    // contiguous layout by construction.
    const size_t rb = pool_->rowBytes();
    scratch_.clear();
    scheme_->encodeRow(k, scratch_, pool_->kMeta(tail, slot));
    OLIVE_ASSERT(scratch_.size() == rb,
                 "KV codec appended a payload of unexpected size");
    std::memcpy(pool_->kRow(tail, slot), scratch_.data(), rb);
    scratch_.clear();
    scheme_->encodeRow(v, scratch_, pool_->vMeta(tail, slot));
    OLIVE_ASSERT(scratch_.size() == rb,
                 "KV codec appended a payload of unexpected size");
    std::memcpy(pool_->vRow(tail, slot), scratch_.data(), rb);
    ++rows_;
}

void
PagedKvCache::appendRows(const Tensor &k, const Tensor &v)
{
    OLIVE_ASSERT(k.rank() == 2 && v.rank() == 2 && k.dim(0) == v.dim(0) &&
                     k.dim(1) == d_ && v.dim(1) == d_,
                 "bulk append needs matching (m, d) K and V");
    const size_t m = k.dim(0);
    if (m == 0)
        return;
    const size_t B = pool_->blockRows();
    const size_t start = rows_;
    // Allocate every block the chunk spills into up front, so the
    // per-row encode below touches no pool structure and can run in
    // parallel.  Each receiving block — the current tail included — is
    // exclusively owned (the append-once invariant bulk append must
    // preserve just like append()).
    while (table_.size() * B < start + m)
        table_.push_back(pool_->allocate());
    for (size_t b = start / B; b < table_.size(); ++b)
        OLIVE_ASSERT(pool_->refcount(table_[b]) == 1,
                     "bulk-appending into a shared block (tail blocks "
                     "must be exclusive)");
    const size_t rb = pool_->rowBytes();
    // Rows encode to disjoint slots through a pure per-row codec, so
    // the fan-out is deterministic at any thread count and byte-equal
    // to m sequential append() calls; with prefill chunks this is where
    // the OVP calibration cost actually parallelizes.
    par::parallelFor(0, m, 1, [&](size_t bgn, size_t end) {
        std::vector<u8> scratch;
        for (size_t i = bgn; i < end; ++i) {
            const size_t pos = start + i;
            const u32 id = table_[pos / B];
            const size_t slot = pos % B;
            scratch.clear();
            scheme_->encodeRow(k.row(i), scratch, pool_->kMeta(id, slot));
            OLIVE_ASSERT(scratch.size() == rb,
                         "KV codec appended a payload of unexpected size");
            std::memcpy(pool_->kRow(id, slot), scratch.data(), rb);
            scratch.clear();
            scheme_->encodeRow(v.row(i), scratch, pool_->vMeta(id, slot));
            OLIVE_ASSERT(scratch.size() == rb,
                         "KV codec appended a payload of unexpected size");
            std::memcpy(pool_->vRow(id, slot), scratch.data(), rb);
        }
    });
    rows_ += m;
}

void
PagedKvCache::truncate(size_t new_len)
{
    OLIVE_ASSERT(new_len <= rows_, "truncate cannot grow the cache");
    if (new_len == rows_)
        return;
    const size_t B = pool_->blockRows();
    const size_t keep = (new_len + B - 1) / B;
    // Rolled-back rows only ever live in exclusively owned blocks (a
    // shared block's rows all precede any speculative row — see the
    // engine's rollback argument), so releasing them can never free
    // bytes another cache still references; the refcount assert makes
    // that proof load-bearing.
    for (size_t b = table_.size(); b-- > keep;) {
        OLIVE_ASSERT(pool_->refcount(table_[b]) == 1,
                     "truncating rows out of a shared block");
        pool_->release(table_[b]); // hook invalidates its decoded entry
    }
    table_.resize(keep);
    rows_ = new_len;
    // The kept boundary block may have decoded slots past the new
    // length; a later append re-encodes those slots with fresh bytes,
    // so the working set must forget them now.  Shrinking (rather than
    // invalidating) keeps the surviving decoded prefix resident, so
    // rollback costs no re-decode of rows it kept.
    if (dcache_ != nullptr && new_len % B != 0)
        dcache_->shrink(table_.back(), new_len % B);
}

void
PagedKvCache::decodePlane(bool k_plane, Tensor &out) const
{
    OLIVE_ASSERT(out.rank() == 2 && out.dim(0) == rows_ && out.dim(1) == d_,
                 "decode target must be (length, d)");
    const size_t B = pool_->blockRows();
    const size_t rb = pool_->rowBytes();
    // Row iteration walks the block table; rows stay independent, so
    // the decode parallelizes deterministically exactly like the
    // contiguous layout.
    par::parallelFor(0, rows_, 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            const u32 id = table_[i / B];
            const size_t slot = i % B;
            const u8 *row =
                k_plane ? pool_->kRow(id, slot) : pool_->vRow(id, slot);
            const KvRowMeta &meta =
                k_plane ? pool_->kMeta(id, slot) : pool_->vMeta(id, slot);
            scheme_->decodeRow(std::span<const u8>(row, rb), meta,
                               out.row(i));
        }
    });
}

void
PagedKvCache::decodeK(Tensor &out) const
{
    decodePlane(true, out);
}

void
PagedKvCache::decodeV(Tensor &out) const
{
    decodePlane(false, out);
}

size_t
PagedKvCache::encodedBytes() const
{
    return table_.size() * pool_->blockBytes();
}

void
PagedKvCache::withDecoded(
    const std::function<void(std::span<const KvSpan>)> &fn) const
{
    if (dcache_ == nullptr || rows_ == 0) {
        // No working set attached (or nothing cached yet): fall back to
        // the scratch-materializing oracle path.
        KvCache::withDecoded(fn);
        return;
    }
    const size_t B = pool_->blockRows();
    // Pin every referenced block's decoded entry for the duration of
    // the callback.  Prefix-shared blocks hit entries decoded by (or
    // for) other requests; the tail block extends its decoded prefix by
    // exactly the rows appended since the last step — the O(1)
    // amortized codec work per step.
    std::vector<KvSpan> spans;
    spans.reserve(table_.size());
    for (size_t b = 0; b < table_.size(); ++b) {
        const size_t rows = std::min(B, rows_ - b * B);
        const DecodedBlockCache::Lease lease =
            dcache_->acquire(table_[b], rows);
        spans.push_back(KvSpan{lease.k, lease.v, rows});
    }
    fn(std::span<const KvSpan>(spans.data(), spans.size()));
    for (u32 id : table_)
        dcache_->release(id);
}

void
PagedKvCache::shareFrom(const PagedKvCache &donor, size_t rows)
{
    OLIVE_ASSERT(donor.pool_ == pool_, "sharing requires a common pool");
    shareFromTable(donor.table_, donor.rows_, rows);
}

void
PagedKvCache::shareFromTable(std::span<const u32> table, size_t donor_rows,
                             size_t rows)
{
    OLIVE_ASSERT(rows_ == 0 && table_.empty(),
                 "prefix sharing requires an empty cache");
    OLIVE_ASSERT(rows <= donor_rows, "donor does not cover the prefix");
    OLIVE_ASSERT(donor_rows <= table.size() * pool_->blockRows(),
                 "stored block table shorter than its row count");
    if (rows == 0)
        return;
    const size_t B = pool_->blockRows();
    // Full blocks are immutable (the donor only ever wrote its tail),
    // so they are shared by reference: refcount up, zero payload
    // copies.  This holds whether the table belongs to a live donor
    // cache or to a retained prefix of a retired one — retention never
    // appends, so every covered block is frozen either way.
    const size_t full = rows / B;
    for (size_t b = 0; b < full; ++b) {
        pool_->retain(table[b]);
        table_.push_back(table[b]);
    }
    // Copy-on-write at the first divergent block: the trailing partial
    // rows land in a fresh exclusive block this cache can append into.
    const size_t partial = rows % B;
    if (partial > 0) {
        const u32 fresh = pool_->allocate();
        pool_->copyRows(table[full], fresh, partial);
        table_.push_back(fresh);
    }
    rows_ = rows;
}

// ----------------------------------------------------- DecodeState

size_t
DecodeState::encodedBytes() const
{
    size_t n = 0;
    for (const auto &c : layers)
        n += c->encodedBytes();
    return n;
}

size_t
DecodeState::fp32Bytes() const
{
    size_t n = 0;
    for (const auto &c : layers)
        n += c->fp32Bytes();
    return n;
}

DecodeState
makeDecodeState(const nn::Transformer &model, const KvScheme &scheme)
{
    DecodeState state;
    state.layers.reserve(model.layers.size());
    for (size_t i = 0; i < model.layers.size(); ++i)
        state.layers.push_back(
            std::make_unique<KvCacheReference>(scheme, model.dModel));
    return state;
}

DecodeState
makePagedDecodeState(const nn::Transformer &model, BlockPool &pool,
                     DecodedBlockCache *dcache)
{
    OLIVE_ASSERT(pool.dModel() == model.dModel,
                 "pool row width must match the model");
    DecodeState state;
    state.layers.reserve(model.layers.size());
    for (size_t i = 0; i < model.layers.size(); ++i)
        state.layers.push_back(std::make_unique<PagedKvCache>(pool, dcache));
    return state;
}

} // namespace serve
} // namespace olive
