/**
 * @file
 * Evaluation hook for KV-cache quantization: how much does storing the
 * cache through a lossy codec hurt the model, and what does it save?
 *
 * The decode path is run twice per text — once with the candidate
 * scheme, once against the exact full-sequence forward — and the
 * divergence is reported as hidden-state MSE, logit MSE, and proxy
 * perplexity (the same teacher-student construction as eval/perplexity,
 * so numbers are comparable with the Table 9 machinery).  For the FP32
 * scheme the decode-parity contract makes every error metric exactly
 * zero and the perplexity exactly eval::perplexity's value.
 */

#ifndef OLIVE_SERVE_CACHE_EVAL_HPP
#define OLIVE_SERVE_CACHE_EVAL_HPP

#include <string>

#include "eval/perplexity.hpp"
#include "kv_cache.hpp"

namespace olive {
namespace serve {

/** Impact of one KV-cache scheme on one evaluation text. */
struct CacheImpact
{
    std::string scheme;        //!< KvScheme::name().
    double perplexity = 0.0;   //!< Decode-path proxy perplexity.
    double hiddenMse = 0.0;    //!< Final hidden states vs exact forward.
    double logitMse = 0.0;     //!< Logit rows vs exact forward.
    size_t encodedBytes = 0;   //!< Cache footprint, summed over texts.
    size_t fp32Bytes = 0;      //!< Same caches uncompressed.

    /** encodedBytes / fp32Bytes. */
    double compression() const;
};

/**
 * Decode @p text token by token through @p scheme-backed KV caches and
 * measure the divergence from the exact full-sequence forward.
 * Sequences shorter than 2 tokens are skipped (no next-token targets).
 */
CacheImpact cacheImpact(const eval::LmModel &model,
                        const eval::TokenData &text,
                        const KvScheme &scheme);

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_CACHE_EVAL_HPP
