/**
 * @file
 * Decoded-block working set: a bounded, pin-aware LRU cache of the
 * *decoded* (FP32) form of BlockPool blocks.
 *
 * The persistent KV cache stores codec bytes; attention consumes FP32
 * rows.  Before this cache existed, every decode step re-ran the codec
 * over the entire cached prefix — O(len) codec work per generated
 * token, the dominant cost of serving a quantized cache.  The decoded
 * working set turns that into O(1) amortized: each pool block's decoded
 * K/V rows are materialized once, keyed by the pool block id, and every
 * later step (and every *request* — prefix-shared blocks decode once
 * for the whole cohort) reuses them.  A block's key is its pool id
 * alone: a live block belongs to exactly one layer's caches at a time,
 * so the id already pins down the (block, layer) identity the entry
 * decodes.
 *
 * Entry lifecycle.  acquire(id, rows) pins an entry (creating it if
 * absent) and extends its decoded prefix to @p rows — for the
 * exclusively-owned tail block that means decoding only the rows
 * appended since the last step, because filled slots of a block are
 * append-once and never change.  release(id) unpins.  Pinned entries
 * are never evicted (an in-flight attention step is reading their
 * rows), so the capacity cap is soft: the cache may transiently exceed
 * it by the number of pinned entries, and shrinks back as pins drop.
 * invalidate(id) — driven by BlockPool's release hook — removes an
 * entry the moment its block's refcount hits zero, so a recycled block
 * id (free-list reuse, copy-on-write targets) can never serve stale
 * decoded rows.
 *
 * Memory bound: entries hold full-capacity buffers (2 x blockRows x d
 * floats, allocated once so row pointers stay stable while pinned), so
 * the decoded working set is at most
 *   max(capacityBlocks, pinned entries) x 2 x blockRows x d x 4 bytes,
 * independent of sequence length.
 *
 * Thread safety: the engine decodes different requests' steps in
 * parallel and two requests can share a block, so acquire/release race
 * by design.  A cache-wide mutex guards the map/LRU/counters; a
 * per-entry mutex serializes decode extension (losers of the race wait,
 * then observe the rows already covered).  Decoded bytes are a pure
 * function of the block bytes, so which thread decodes first never
 * changes a value — token streams stay bit-identical at every
 * OLIVE_THREADS.  Only the hit/miss/eviction *counters* can vary with
 * interleaving under a multi-thread pool (they are exact when the
 * engine is serial, which is what the shadow-model property test
 * checks).
 *
 * Lock discipline (machine-checked by the Clang thread-safety
 * annotations, exercised by the TSan "race" tier): mu_ and an entry's
 * fill mutex are never held together — acquire() drops mu_ before
 * taking fill, and every other path touches only mu_.  A thread
 * holding fill may call the pool's lock-free row accessors but must
 * not take mu_ (that would invert against nothing today, but the rule
 * keeps fill a leaf).  Entry::rows crosses the two domains — written
 * under fill, sampled by mu_-side observers — so it is an atomic with
 * release/acquire ordering rather than a field of either domain.
 */

#ifndef OLIVE_SERVE_DECODED_CACHE_HPP
#define OLIVE_SERVE_DECODED_CACHE_HPP

#include <atomic>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "block_pool.hpp"
#include "util/thread_annotations.hpp"

namespace olive {
namespace serve {

/** LRU working set of decoded blocks (see file comment). */
class DecodedBlockCache
{
  public:
    /** Decoded rows of one pinned block; row i of K lives at k + i*d. */
    struct Lease
    {
        const float *k = nullptr;
        const float *v = nullptr;
    };

    /**
     * @param pool            Backing pool; must outlive the cache.
     * @param capacity_blocks Soft entry cap; 0 = unbounded.
     */
    DecodedBlockCache(const BlockPool &pool, size_t capacity_blocks);

    DecodedBlockCache(const DecodedBlockCache &) = delete;
    DecodedBlockCache &operator=(const DecodedBlockCache &) = delete;

    /**
     * Pin block @p id and return its decoded rows, decoding slots
     * [alreadyDecoded, rows) through the pool's codec.  The returned
     * pointers stay valid until the matching release(id).  @p rows must
     * not exceed the pool's blockRows(), and the addressed slots must
     * have been filled (append-once) before the call.
     */
    Lease acquire(u32 id, size_t rows) OLIVE_EXCLUDES(mu_);

    /** Drop one pin of @p id; may shrink the cache back to capacity. */
    void release(u32 id) OLIVE_EXCLUDES(mu_);

    /**
     * Drop the entry for @p id, if any (not counted as an eviction).
     * Wired to BlockPool::setReleaseHook so free-list recycling and
     * copy-on-write targets can never serve stale rows.  @pre the entry
     * is unpinned — a pinned block is referenced by a live cache, which
     * holds a pool reference, so its refcount cannot have hit zero.
     * Called from BlockPool::release under the *pool* lock: pool mutex
     * before cache mutex is the one cross-object lock order here.
     */
    void invalidate(u32 id) OLIVE_EXCLUDES(mu_);

    /**
     * Forget decoded slots [rows, blockRows) of @p id, if an entry
     * exists — the one sanctioned retreat from Entry::rows' otherwise
     * monotone growth.  Speculative-decode rollback truncates rows out
     * of a still-live tail block whose vacated slots will be re-encoded
     * with different bytes by later appends; the surviving prefix stays
     * resident (no re-decode), which is what keeps the decoded-rows
     * linear bound intact across rejects.  @pre the entry is unpinned —
     * rollback runs between attention steps, never during one — which
     * also guarantees no fill-side extension is in flight (every filler
     * holds a pin for the duration of its fill).
     */
    void shrink(u32 id, size_t rows) OLIVE_EXCLUDES(mu_);

    size_t capacity() const { return capacity_; }

    /** Bytes of one entry's decoded payload (2 x blockRows x d x 4). */
    size_t entryBytes() const { return entryBytes_; }

    // ---- counters (cumulative; exact only under a serial engine) ----
    // Memory ordering: every counter is a monotone statistic — no data
    // is published through it and no decision is taken on it mid-run —
    // so both the increments (under mu_ or fill) and these lock-free
    // reads use memory_order_relaxed, explicitly.  A reader polling
    // concurrently with the engine sees values at most one in-flight
    // operation stale; at quiescence (between steps, or after
    // runToCompletion) they are exact.
    /** acquire() calls served without creating an entry. */
    u64 hits() const { return hits_.load(std::memory_order_relaxed); }
    /** acquire() calls that had to create (fully decode) an entry. */
    u64 misses() const { return misses_.load(std::memory_order_relaxed); }
    /** Entries dropped to fit the capacity cap. */
    u64 evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }
    /** Entries dropped by invalidate() (block freed / recycled). */
    u64 invalidations() const
    {
        return invalidations_.load(std::memory_order_relaxed);
    }
    /** (K row, V row) slot pairs decoded through the codec — the O(1)
     *  amortization witness: grows with appended tokens, not with the
     *  per-step prefix length. */
    u64 decodedRows() const
    {
        return decodedRows_.load(std::memory_order_relaxed);
    }

    // ---- accounting / test hooks (each takes mu_: pollable) ----
    size_t entryCount() const OLIVE_EXCLUDES(mu_);
    size_t currentBytes() const OLIVE_EXCLUDES(mu_);
    /** High-water mark of currentBytes(); monotone within a run. */
    size_t peakBytes() const OLIVE_EXCLUDES(mu_);
    size_t pinnedCount() const OLIVE_EXCLUDES(mu_);
    bool contains(u32 id) const OLIVE_EXCLUDES(mu_);
    int pinsOf(u32 id) const OLIVE_EXCLUDES(mu_);    //!< -1 when absent.
    /** Decoded rows of @p id so far (0 when absent).  Sampled with an
     *  acquire load against a concurrent fill-side extension, so the
     *  value is an instantaneous lower bound; rows only grow while an
     *  entry lives, so successive samples are monotone. */
    size_t rowsOf(u32 id) const OLIVE_EXCLUDES(mu_);

    /**
     * Test hook: recompute every aggregate (entry/pin counts, LRU
     * membership, byte accounting, the soft-capacity bound) from the
     * raw entry map and panic on any mismatch.
     */
    void checkInvariants() const OLIVE_EXCLUDES(mu_);

  private:
    struct Entry
    {
        std::vector<float> k, v; //!< blockRows x d each, stable.  The
                                 //!< buffers are sized once at creation
                                 //!< (under mu_); slots [0, rows) are
                                 //!< written once under fill and then
                                 //!< read lock-free by pinned leases —
                                 //!< append-once publication the
                                 //!< capability analysis cannot see.
        /** Decoded slots so far.  The one field both lock domains
         *  touch: written under fill (store-release *after* the slot
         *  payloads, so any observer that reads rows >= r can safely
         *  read rows [0, r)), read under fill by the extender
         *  (relaxed — fill serializes writers) and with load-acquire
         *  by mu_-side observers (rowsOf, checkInvariants).  Monotone
         *  for the lifetime of the entry, except for shrink(), which
         *  lowers it while the entry is provably unpinned and unfilled
         *  (speculative rollback). */
        std::atomic<size_t> rows{0};
        int pins = 0; //!< Outstanding leases.  Guarded by the owning
                      //!< cache's mu_ (an annotation cannot name
                      //!< another object's capability).
        std::list<u32>::iterator lruIt; //!< Position in lru_ (mu_).
        Mutex fill; //!< Serializes decode extension; leaf lock, never
                    //!< held together with mu_.
    };

    /** Evict unpinned LRU-tail entries while over @p limit. */
    void evictOverLimitLocked(size_t limit) OLIVE_REQUIRES(mu_);

    const BlockPool *pool_;
    size_t capacity_;
    size_t entryBytes_;

    mutable Mutex mu_; //!< Guards map_, lru_, pins, peak bytes.
    std::unordered_map<u32, std::unique_ptr<Entry>> map_
        OLIVE_GUARDED_BY(mu_);
    /** Front = most recently acquired. */
    std::list<u32> lru_ OLIVE_GUARDED_BY(mu_);
    size_t peakBytes_ OLIVE_GUARDED_BY(mu_) = 0;

    std::atomic<u64> hits_{0};
    std::atomic<u64> misses_{0};
    std::atomic<u64> evictions_{0};
    std::atomic<u64> invalidations_{0};
    std::atomic<u64> decodedRows_{0};
};

} // namespace serve
} // namespace olive

#endif // OLIVE_SERVE_DECODED_CACHE_HPP
