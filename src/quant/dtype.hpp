/**
 * @file
 * Normal-value data types of the OVP encoding (paper Table 3).
 *
 * Each type reserves one code as the outlier identifier:
 *  - int4:   codes are two's-complement nibbles; 1000_2 (-8) is the
 *            identifier, so the value range narrows to [-7, 7].
 *  - flint4: ANT's 4-bit flint with values {0, ±1, ±2, ±3, ±4, ±6, ±8,
 *            ±16}; 1000_2 is flint's -0, unused by the original type, so
 *            OVP reuses it as the identifier for free.
 *  - int8:   two's-complement bytes; 10000000_2 (-128) is the identifier,
 *            narrowing the range to [-127, 127].
 *
 * A codec maps real values to codes under a positive scale factor
 * (real ~= scale * decoded integer value) and back, and also exposes the
 * exponent-integer pair form the hardware decoder produces.
 */

#ifndef OLIVE_QUANT_DTYPE_HPP
#define OLIVE_QUANT_DTYPE_HPP

#include <string>
#include <vector>

#include "expint.hpp"
#include "util/common.hpp"

namespace olive {

/** Normal-value data type selector (paper Table 3). */
enum class NormalType
{
    Int4,
    Flint4,
    Int8,
};

/** Printable name of a normal type. */
std::string toString(NormalType t);

/** Bit width of a normal type (4 or 8). */
int bitWidth(NormalType t);

/** The reserved outlier-identifier code (1000_2 or 10000000_2). */
u32 outlierIdentifier(NormalType t);

/**
 * Largest representable magnitude of the narrowed type in integer grid
 * units (7 for int4, 16 for flint4, 127 for int8).
 */
int maxNormalMagnitude(NormalType t);

/** All representable values of the narrowed type, ascending. */
std::vector<int> valueTable(NormalType t);

/**
 * Codec for one normal type.  Codes are the raw bit patterns (4 or 8
 * bits, in the low bits of a u32).
 */
class NormalCodec
{
  public:
    explicit NormalCodec(NormalType type);

    NormalType type() const { return type_; }

    /**
     * Quantize @p real under @p scale to the nearest representable
     * value, never producing the identifier code.  Values beyond the
     * range saturate.
     */
    u32 encode(float real, float scale) const;

    /** Decoded integer grid value of @p code. @pre code != identifier */
    int decodeInt(u32 code) const;

    /** Real value of @p code under @p scale. */
    float decode(u32 code, float scale) const;

    /**
     * Exponent-integer pair of @p code as produced by the hardware
     * normal decoder (int types get exponent 0; flint gets its
     * exponent/mantissa split).
     */
    ExpInt decodeExpInt(u32 code) const;

    /** True if @p code is the outlier identifier of this type. */
    bool isIdentifier(u32 code) const;

  private:
    NormalType type_;
    std::vector<int> values_;   // ascending representable values
    std::vector<u32> codes_;    // code for values_[i]
};

} // namespace olive

#endif // OLIVE_QUANT_DTYPE_HPP
