/**
 * @file
 * Normal-value data types of the OVP encoding (paper Table 3).
 *
 * Each type reserves one code as the outlier identifier:
 *  - int4:   codes are two's-complement nibbles; 1000_2 (-8) is the
 *            identifier, so the value range narrows to [-7, 7].
 *  - flint4: ANT's 4-bit flint with values {0, ±1, ±2, ±3, ±4, ±6, ±8,
 *            ±16}; 1000_2 is flint's -0, unused by the original type, so
 *            OVP reuses it as the identifier for free.
 *  - int8:   two's-complement bytes; 10000000_2 (-128) is the identifier,
 *            narrowing the range to [-127, 127].
 *
 * A codec maps real values to codes under a positive scale factor
 * (real ~= scale * decoded integer value) and back, and also exposes the
 * exponent-integer pair form the hardware decoder produces.
 *
 * Every code space is at most 256 entries, so the codec precomputes
 * decode lookup tables (code -> grid integer, code -> exponent-integer
 * pair) and encode midpoint boundary tables at construction.  The
 * original search-based implementations are retained as *Reference()
 * oracles; the fast paths are bit-identical to them (asserted
 * exhaustively by tests/test_kernels_oracle.cpp).
 */

#ifndef OLIVE_QUANT_DTYPE_HPP
#define OLIVE_QUANT_DTYPE_HPP

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "expint.hpp"
#include "util/common.hpp"

namespace olive {

/** Normal-value data type selector (paper Table 3). */
enum class NormalType
{
    Int4,
    Flint4,
    Int8,
};

/** Printable name of a normal type. */
std::string toString(NormalType t);

/** Bit width of a normal type (4 or 8). */
int bitWidth(NormalType t);

/** The reserved outlier-identifier code (1000_2 or 10000000_2). */
u32 outlierIdentifier(NormalType t);

/**
 * Largest representable magnitude of the narrowed type in integer grid
 * units (7 for int4, 16 for flint4, 127 for int8).
 */
int maxNormalMagnitude(NormalType t);

/** All representable values of the narrowed type, ascending. */
std::vector<int> valueTable(NormalType t);

/**
 * Codec for one normal type.  Codes are the raw bit patterns (4 or 8
 * bits, in the low bits of a u32).
 */
class NormalCodec
{
  public:
    explicit NormalCodec(NormalType type);

    /**
     * Shared immutable codec for @p type.  The three instances are
     * built once per process (thread-safe magic statics); the public
     * constructor copies from them, so constructing a NormalCodec is a
     * flat table copy rather than a rebuild — the OVP calibration grid
     * constructs one codec per threshold candidate per KV row, which
     * made the rebuild a serving hot path.
     */
    static const NormalCodec &shared(NormalType type);

    NormalType type() const { return type_; }

    /**
     * Quantize @p real under @p scale to the nearest representable
     * value, never producing the identifier code.  Values beyond the
     * range saturate.
     *
     * Fast path: the integer types round arithmetically on their
     * uniform grid; flint4 counts precomputed midpoint boundaries
     * branchlessly.  Bit-identical to encodeReference().  Defined
     * inline so the per-pair OVP loops can inline the per-scalar call.
     * @pre scale > 0 (validated once by the owning OvpCodec, not per
     *      call; encodeReference() keeps the per-call assert)
     */
    u32 encode(float real, float scale) const
    {
        const double x = static_cast<double>(real) / scale;
        size_t idx;
        if (type_ == NormalType::Flint4) {
            // Branchless boundary count over the 14 midpoints;
            // saturation falls out (x below all -> 0, above all ->
            // last).
            size_t n_above = 0;
            for (double b : boundaries_)
                n_above += (x > b) ? 1u : 0u;
            idx = n_above;
        } else {
            // Uniform grid [-M, M]: the boundary count is the closed
            // form ceil(x - 0.5) clamped to the range.  x - 0.5 is
            // exact for |x| < 2^51, so the rounding (ties toward the
            // lower value) matches the boundary rule bit-for-bit.
            const int max_mag = maxMag_;
            int v;
            if (!(x > -static_cast<double>(max_mag))) {
                // Includes NaN, which lower_bound also sends to the
                // first value in the reference path.
                v = -max_mag;
            } else if (x >= static_cast<double>(max_mag)) {
                v = max_mag;
            } else {
                v = static_cast<int>(std::ceil(x - 0.5));
            }
            idx = static_cast<size_t>(v + max_mag);
        }
        return codes_[idx];
    }

    /**
     * The original binary-search nearest-value encoder, retained as the
     * bit-exactness oracle for encode().
     */
    u32 encodeReference(float real, float scale) const;

    /** Decoded integer grid value of @p code. @pre code != identifier */
    int decodeInt(u32 code) const
    {
        OLIVE_ASSERT(code != identifier_, "identifier is not a normal value");
        return intLut_[code & codeMask_];
    }

    /** Original switch-based decode, the oracle for decodeInt(). */
    int decodeIntReference(u32 code) const;

    /** Real value of @p code under @p scale. */
    float decode(u32 code, float scale) const
    {
        return static_cast<float>(decodeInt(code)) * scale;
    }

    /**
     * Exponent-integer pair of @p code as produced by the hardware
     * normal decoder (int types get exponent 0; flint gets its
     * exponent/mantissa split).
     */
    ExpInt decodeExpInt(u32 code) const
    {
        OLIVE_ASSERT(code != identifier_, "identifier is not a normal value");
        return expIntLut_[code & codeMask_];
    }

    /** Original switch-based decode, the oracle for decodeExpInt(). */
    ExpInt decodeExpIntReference(u32 code) const;

    /** True if @p code is the outlier identifier of this type. */
    bool isIdentifier(u32 code) const { return code == identifier_; }

  private:
    /** Tag selecting the real table-building constructor. */
    struct Build
    {
    };
    NormalCodec(Build, NormalType type);

    NormalType type_;
    u32 identifier_;
    u32 codeMask_;              // (1 << bitWidth) - 1
    int maxMag_;                // maxNormalMagnitude(type_)
    std::vector<int> values_;   // ascending representable values
    std::vector<u32> codes_;    // code for values_[i]

    // Decode LUTs over the full code space (identifier slots hold 0 and
    // are guarded by the asserts above).
    std::array<int, 256> intLut_{};
    std::array<ExpInt, 256> expIntLut_{};

    // Encode boundary table: boundaries_[i] is the midpoint between
    // values_[i] and values_[i+1]; the chosen index is the number of
    // boundaries strictly below the scaled input (ties at a midpoint go
    // to the lower value, matching encodeReference's comparison).  Only
    // flint4 walks the table; the uniform integer grids use the
    // closed-form equivalent in encode().
    std::vector<double> boundaries_;
};

} // namespace olive

#endif // OLIVE_QUANT_DTYPE_HPP
