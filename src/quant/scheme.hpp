/**
 * @file
 * Generic fake-quantization scheme interface.
 *
 * Every quantization method in the repository — OliVe itself and every
 * baseline — implements this interface so the evaluation harness and the
 * performance simulators treat them uniformly.  A scheme receives a
 * tensor (plus whether it is a weight or an activation) and returns the
 * dequantized ("fake quantized") values the model should compute with.
 */

#ifndef OLIVE_QUANT_SCHEME_HPP
#define OLIVE_QUANT_SCHEME_HPP

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace olive {

/** What role a tensor plays; schemes may treat the roles differently. */
enum class TensorKind
{
    Weight,
    Activation,
};

/** Uniform interface over all quantization methods. */
class Scheme
{
  public:
    virtual ~Scheme() = default;

    /** Display name, e.g. "4-bit OliVe". */
    virtual std::string name() const = 0;

    /**
     * Fake-quantize @p xs.  Calibration (scale search etc.) happens
     * inside per call — all methods in this repo are PTQ methods whose
     * calibration is a deterministic function of the tensor itself.
     */
    virtual std::vector<float> apply(std::span<const float> xs,
                                     TensorKind kind) = 0;

    /**
     * Shape-aware variant for schemes that quantize per output channel
     * (row-major @p rows x @p cols).  Default: ignore the shape.
     */
    virtual std::vector<float>
    applyMatrix(std::span<const float> xs, size_t rows, size_t cols,
                TensorKind kind)
    {
        (void)rows;
        (void)cols;
        return apply(xs, kind);
    }

    /** A frozen fake-quantizer produced by calibration. */
    using Applier = std::function<std::vector<float>(std::span<const float>)>;

    /**
     * Calibrate on @p calibration data and return a frozen applier that
     * fake-quantizes future tensors with the calibrated parameters —
     * the realistic PTQ flow for activations, where scales are fixed on
     * a calibration batch and reused at inference time.
     *
     * The default implementation recalibrates on every call (correct
     * but slower); schemes with an explicit scale/codec override it.
     * The applier may reference this scheme object, which must outlive
     * it.
     */
    virtual Applier
    calibrate(std::span<const float> calibration, TensorKind kind)
    {
        (void)calibration;
        return [this, kind](std::span<const float> xs) {
            return apply(xs, kind);
        };
    }

    /** Bits used for weights (for the memory-traffic models). */
    virtual int weightBits() const = 0;

    /** Bits used for activations; 32 means "not quantized". */
    virtual int activationBits() const = 0;

    /** True if the scheme only quantizes weights (e.g. GOBO). */
    bool weightOnly() const { return activationBits() >= 32; }

    /**
     * True if the evaluation harness should run apply() on activation
     * tensors.  Defaults to "activations are quantized below 32 bits";
     * the Fig. 3 transforms override it — they keep FP32 storage but
     * still modify activations.
     */
    virtual bool transformsActivations() const
    {
        return activationBits() < 32;
    }
};

/** Owning handle used by the harness code. */
using SchemePtr = std::unique_ptr<Scheme>;

/** Identity scheme: FP32 passthrough (the "source accuracy" row). */
class Fp32Scheme : public Scheme
{
  public:
    std::string name() const override { return "FP32"; }
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return 32; }
    int activationBits() const override { return 32; }
};

/** OliVe OVP scheme at a given bit width (the paper's method). */
class OliveScheme : public Scheme
{
  public:
    explicit OliveScheme(int bits);
    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    Applier calibrate(std::span<const float> calibration,
                      TensorKind kind) override;
    int weightBits() const override { return bits_; }
    int activationBits() const override { return bits_; }

  private:
    int bits_;
};

/** OliVe applied to weights only (the Table 7 GOBO comparison setting). */
class OliveWeightOnlyScheme : public Scheme
{
  public:
    explicit OliveWeightOnlyScheme(int bits);
    std::string name() const override;
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;
    int weightBits() const override { return bits_; }
    int activationBits() const override { return 32; }

  private:
    int bits_;
};

} // namespace olive

#endif // OLIVE_QUANT_SCHEME_HPP
