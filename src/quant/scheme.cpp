#include "scheme.hpp"

#include "quantizer.hpp"

namespace olive {

std::vector<float>
Fp32Scheme::apply(std::span<const float> xs, TensorKind)
{
    return std::vector<float>(xs.begin(), xs.end());
}

OliveScheme::OliveScheme(int bits)
    : bits_(bits)
{
}

std::string
OliveScheme::name() const
{
    return std::to_string(bits_) + "-bit OliVe";
}

std::vector<float>
OliveScheme::apply(std::span<const float> xs, TensorKind)
{
    OliveConfig cfg;
    cfg.bits = bits_;
    return OliveQuantizer(cfg).fakeQuant(xs);
}

Scheme::Applier
OliveScheme::calibrate(std::span<const float> calibration, TensorKind)
{
    OliveConfig cfg;
    cfg.bits = bits_;
    const OliveQuantizer quantizer(cfg);
    const QuantDecision d = quantizer.calibrate(calibration);
    const OvpCodec codec = quantizer.makeCodec(d);
    return [codec](std::span<const float> xs) {
        return codec.fakeQuant(xs);
    };
}

OliveWeightOnlyScheme::OliveWeightOnlyScheme(int bits)
    : bits_(bits)
{
}

std::string
OliveWeightOnlyScheme::name() const
{
    return std::to_string(bits_) + "-bit OliVe (weights only)";
}

std::vector<float>
OliveWeightOnlyScheme::apply(std::span<const float> xs, TensorKind kind)
{
    if (kind == TensorKind::Activation)
        return std::vector<float>(xs.begin(), xs.end());
    OliveConfig cfg;
    cfg.bits = bits_;
    return OliveQuantizer(cfg).fakeQuant(xs);
}

} // namespace olive
