#include "quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/stats.hpp"

namespace olive {

OliveQuantizer::OliveQuantizer(OliveConfig config)
    : config_(config)
{
    OLIVE_ASSERT(config_.bits == 4 || config_.bits == 8,
                 "OliVe supports 4-bit and 8-bit modes");
    OLIVE_ASSERT(config_.searchPoints >= 2, "need at least two candidates");
    OLIVE_ASSERT(config_.searchLo > 0.0 &&
                     config_.searchHi > config_.searchLo,
                 "bad threshold search range");
}

std::vector<float>
OliveQuantizer::sample(std::span<const float> xs) const
{
    if (xs.size() <= config_.sampleCap)
        return std::vector<float>(xs.begin(), xs.end());
    // Keep whole pairs so the OVP pairing behaviour is representative.
    const size_t pairs_total = xs.size() / 2;
    const size_t pairs_keep = config_.sampleCap / 2;
    const size_t stride = pairs_total / pairs_keep;
    std::vector<float> out;
    out.reserve(pairs_keep * 2);
    for (size_t p = 0; p < pairs_total && out.size() < pairs_keep * 2;
         p += stride) {
        out.push_back(xs[2 * p]);
        out.push_back(xs[2 * p + 1]);
    }
    return out;
}

QuantDecision
OliveQuantizer::calibrate(std::span<const float> xs) const
{
    OLIVE_ASSERT(!xs.empty(), "cannot calibrate on empty data");
    const std::vector<float> s = sample(xs);
    // Outlier-robust bulk sigma: on tensors whose outliers reach
    // hundreds of sigma (OPT-6.7B activations), the plain standard
    // deviation is inflated by the tail itself and would seed the
    // search far above the bulk.
    const double sigma = stats::robustSigma(s);
    const double amax = stats::absMax(s);
    OLIVE_ASSERT(amax > 0.0, "cannot calibrate an all-zero tensor");

    // Initial threshold from the 3-sigma rule (Sec. 3.4); degenerate
    // near-constant tensors fall back to the absolute maximum.
    const double t0 = (sigma > 0.0) ? 3.0 * sigma : amax;

    std::vector<NormalType> types;
    if (config_.bits == 8) {
        types = {NormalType::Int8};
    } else if (config_.adaptiveType) {
        types = {NormalType::Int4, NormalType::Flint4};
    } else {
        types = {config_.forcedType};
    }

    QuantDecision best;
    best.mse = std::numeric_limits<double>::infinity();

    for (NormalType type : types) {
        const int max_mag = maxNormalMagnitude(type);
        for (int i = 0; i < config_.searchPoints; ++i) {
            const double frac =
                static_cast<double>(i) / (config_.searchPoints - 1);
            // Geometric sweep of the threshold around 3 sigma.
            const double mult =
                config_.searchLo *
                std::pow(config_.searchHi / config_.searchLo, frac);
            const double threshold = t0 * mult;
            const float scale =
                static_cast<float>(threshold / max_mag);
            if (scale <= 0.0f || !std::isfinite(scale))
                continue;

            OvpCodec codec(type, scale, threshold);
            const auto rt = codec.fakeQuant(s);
            const double mse = stats::mse(s, rt);
            if (mse < best.mse) {
                best.mse = mse;
                best.normal = type;
                best.scale = scale;
                best.threshold = threshold;
            }
        }
    }
    OLIVE_ASSERT(std::isfinite(best.mse), "calibration found no candidate");
    return best;
}

OvpCodec
OliveQuantizer::makeCodec(const QuantDecision &d) const
{
    return OvpCodec(d.normal, d.scale, d.threshold);
}

std::vector<float>
OliveQuantizer::fakeQuant(std::span<const float> xs,
                          QuantDecision *decision) const
{
    const QuantDecision d = calibrate(xs);
    if (decision)
        *decision = d;
    return makeCodec(d).fakeQuant(xs);
}

} // namespace olive
