#include "quantizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace olive {

namespace {

/**
 * Shared (type, threshold) grid sweep: every candidate scores
 * independently on the shared sample via @p score, and the winner is
 * reduced serially in grid order afterwards, which reproduces the
 * serial first-strictly-better rule exactly.  Invalid candidates carry
 * an infinite MSE and never win.
 */
template <typename ScoreFn>
QuantDecision
gridSearch(const OliveConfig &config, std::span<const float> s,
           const ScoreFn &score)
{
    // Outlier-robust bulk sigma: on tensors whose outliers reach
    // hundreds of sigma (OPT-6.7B activations), the plain standard
    // deviation is inflated by the tail itself and would seed the
    // search far above the bulk.
    const double sigma = stats::robustSigma(s);
    const double amax = stats::absMax(s);
    OLIVE_ASSERT(amax > 0.0, "cannot calibrate an all-zero tensor");

    // Initial threshold from the 3-sigma rule (Sec. 3.4); degenerate
    // near-constant tensors fall back to the absolute maximum.
    const double t0 = (sigma > 0.0) ? 3.0 * sigma : amax;

    std::vector<NormalType> types;
    if (config.bits == 8) {
        types = {NormalType::Int8};
    } else if (config.adaptiveType) {
        types = {NormalType::Int4, NormalType::Flint4};
    } else {
        types = {config.forcedType};
    }

    const size_t points = static_cast<size_t>(config.searchPoints);
    std::vector<QuantDecision> grid(types.size() * points);
    par::parallelFor(0, grid.size(), 1, [&](size_t cb, size_t ce) {
        for (size_t idx = cb; idx < ce; ++idx) {
            QuantDecision cand;
            cand.mse = std::numeric_limits<double>::infinity();
            grid[idx] = cand;

            const NormalType type = types[idx / points];
            const size_t i = idx % points;
            const int max_mag = maxNormalMagnitude(type);
            const double frac = static_cast<double>(i) /
                                static_cast<double>(points - 1);
            // Geometric sweep of the threshold around 3 sigma.
            const double mult =
                config.searchLo *
                std::pow(config.searchHi / config.searchLo, frac);
            cand.threshold = t0 * mult;
            cand.scale = static_cast<float>(cand.threshold / max_mag);
            if (cand.scale <= 0.0f || !std::isfinite(cand.scale))
                continue;

            cand.normal = type;
            OvpCodec codec(type, cand.scale, cand.threshold);
            cand.mse = score(codec, s);
            grid[idx] = cand;
        }
    });

    QuantDecision best;
    best.mse = std::numeric_limits<double>::infinity();
    for (const QuantDecision &c : grid) {
        if (c.mse < best.mse)
            best = c;
    }
    OLIVE_ASSERT(std::isfinite(best.mse), "calibration found no candidate");
    return best;
}

} // namespace

OliveQuantizer::OliveQuantizer(OliveConfig config)
    : config_(config)
{
    OLIVE_ASSERT(config_.bits == 4 || config_.bits == 8,
                 "OliVe supports 4-bit and 8-bit modes");
    OLIVE_ASSERT(config_.searchPoints >= 2, "need at least two candidates");
    OLIVE_ASSERT(config_.searchLo > 0.0 &&
                     config_.searchHi > config_.searchLo,
                 "bad threshold search range");
}

std::vector<float>
OliveQuantizer::sample(std::span<const float> xs) const
{
    if (xs.size() <= config_.sampleCap)
        return std::vector<float>(xs.begin(), xs.end());
    // Keep whole pairs so the OVP pairing behaviour is representative.
    const size_t pairs_total = xs.size() / 2;
    const size_t pairs_keep = config_.sampleCap / 2;
    const size_t stride = pairs_total / pairs_keep;
    std::vector<float> out;
    out.reserve(pairs_keep * 2);
    for (size_t p = 0; p < pairs_total && out.size() < pairs_keep * 2;
         p += stride) {
        out.push_back(xs[2 * p]);
        out.push_back(xs[2 * p + 1]);
    }
    return out;
}

QuantDecision
OliveQuantizer::calibrate(std::span<const float> xs) const
{
    OLIVE_ASSERT(!xs.empty(), "cannot calibrate on empty data");
    // Under the cap, sample(xs) would return a verbatim copy — score
    // the input span directly instead (per-row KV calibration lands
    // here for every appended token, so the copy was hot).
    const std::vector<float> s =
        xs.size() <= config_.sampleCap ? std::vector<float>() : sample(xs);
    const std::span<const float> view = s.empty() ? xs : s;
    // Fused scoring: one allocation-free value->codes->value MSE pass
    // per candidate, bit-identical to the reference round trip.
    return gridSearch(config_, view,
                      [](const OvpCodec &codec, std::span<const float> ss) {
                          return codec.fakeQuantMse(ss);
                      });
}

QuantDecision
OliveQuantizer::calibrateReference(std::span<const float> xs) const
{
    OLIVE_ASSERT(!xs.empty(), "cannot calibrate on empty data");
    const std::vector<float> s = sample(xs);
    // The pre-fusion scorer: materialize the full round trip per
    // candidate and score it with stats::mse.
    return gridSearch(config_, s,
                      [](const OvpCodec &codec, std::span<const float> ss) {
                          return stats::mse(ss, codec.fakeQuantReference(ss));
                      });
}

OvpCodec
OliveQuantizer::makeCodec(const QuantDecision &d) const
{
    return OvpCodec(d.normal, d.scale, d.threshold);
}

std::vector<float>
OliveQuantizer::fakeQuant(std::span<const float> xs,
                          QuantDecision *decision) const
{
    const QuantDecision d = calibrate(xs);
    if (decision)
        *decision = d;
    return makeCodec(d).fakeQuant(xs);
}

} // namespace olive
