/**
 * @file
 * Outlier-victim pair (OVP) encoding, the paper's core mechanism
 * (Sec. 3, Algorithm 1).
 *
 * Values are processed in adjacent non-overlapping pairs.  A pair with
 * no outlier encodes both values with the normal type; a pair with an
 * outlier sacrifices ("prunes") the other value — the victim — and
 * stores the outlier identifier code (1000_2 / 10000000_2) in the victim
 * slot while the outlier slot holds an abfloat code.  Because outlier
 * encoding never produces the identifier bit pattern, the decoder can
 * distinguish left-outlier (O-V) and right-outlier (V-O) pairs without
 * any index bits, keeping memory accesses byte-aligned.
 */

#ifndef OLIVE_QUANT_OVP_HPP
#define OLIVE_QUANT_OVP_HPP

#include <array>
#include <span>
#include <vector>

#include "abfloat.hpp"
#include "dtype.hpp"
#include "util/common.hpp"

namespace olive {

/** Default adaptive bias that makes abfloat complementary to @p t. */
int defaultAbfloatBias(NormalType t);

/** The outlier abfloat format paired with normal type @p t. */
AbFloat outlierTypeFor(NormalType t, int bias = -1);

/** Classification of one value pair (Sec. 2.3, Table 2). */
enum class PairType
{
    NormalNormal,
    OutlierNormal,  //!< Exactly one value beyond the threshold.
    OutlierOutlier, //!< Both beyond; the smaller one becomes the victim.
};

/** Census of pair types over a tensor (Table 2 machinery). */
struct PairCensus
{
    u64 normalNormal = 0;
    u64 outlierNormal = 0;
    u64 outlierOutlier = 0;

    u64 total() const
    {
        return normalNormal + outlierNormal + outlierOutlier;
    }
    double normalNormalPct() const;
    double outlierNormalPct() const;
    double outlierOutlierPct() const;
};

/**
 * Count pair types of adjacent non-overlapping pairs using the k-sigma
 * rule (the paper uses k = 3).
 */
PairCensus pairCensus(std::span<const float> xs, double k_sigma = 3.0);

/** Per-tensor encode statistics reported by OvpCodec::encode. */
struct OvpStats
{
    u64 pairs = 0;          //!< Total pairs encoded.
    u64 outlierPairs = 0;   //!< Pairs encoded as outlier-victim.
    u64 prunedOutliers = 0; //!< Outliers lost to outlier-outlier pairs.
};

/**
 * Role the encoder assigned to a pair, reported by encodePair so stats
 * never re-derive the outlier/pruned classification with a second
 * threshold comparison that could drift from the encoder's tie-break
 * rule.
 */
enum class PairRole
{
    NormalNormal,   //!< Both values encoded with the normal type.
    OutlierVictim,  //!< One outlier; the other value was a normal victim.
    PrunedOutlier,  //!< Both beyond the threshold; one outlier was pruned.
};

/**
 * Tensor-level OVP codec for one (normal type, scale, threshold)
 * configuration.
 *
 * Real values relate to the integer grid as real ~= scale * grid.  The
 * outlier threshold is a real-domain magnitude; the quantization
 * framework ties it to the scale (threshold = scale * max normal
 * magnitude), but the codec accepts them independently so ablations can
 * decouple them.
 *
 * Construction precomputes the decoded real value of every normal and
 * abfloat code under the fixed scale, so the per-pair hot paths are
 * table lookups.  The scale-independent parts (NormalCodec tables, the
 * abfloat decode/boundary tables and their verification) are cached per
 * type and only the two scaled value LUTs are filled per construction —
 * the calibration grid builds one codec per threshold candidate per KV
 * row, which made a full rebuild the dominant serving cost.  The
 * original per-scalar implementations are retained as *Reference()
 * oracles and are bit-identical to the fast paths
 * (tests/test_kernels_oracle.cpp asserts this exhaustively).
 */
class OvpCodec
{
  public:
    /**
     * @param normal    Normal-value data type.
     * @param scale     Positive real-per-grid-unit scale factor.
     * @param threshold Real-domain |value| above which a value is an
     *                  outlier.
     * @param abfloat_bias Adaptive bias; -1 selects the complementary
     *                  default for @p normal.
     */
    OvpCodec(NormalType normal, float scale, double threshold,
             int abfloat_bias = -1);

    NormalType normalType() const { return normal_; }
    const AbFloat &outlierType() const { return abfloat_; }
    float scale() const { return scale_; }
    double threshold() const { return threshold_; }

    /** Bytes per encoded pair (1 for 4-bit types, 2 for int8). */
    size_t bytesPerPair() const;

    /**
     * The same rule keyed by normal type, for callers (e.g. stream
     * deserialization) that must size a payload before a codec can be
     * constructed.
     */
    static size_t bytesPerPair(NormalType t);

    /**
     * Algorithm 1: encode one pair of reals into two codes.  Exactly one
     * of the output codes may be the identifier.  Returns the role the
     * encoder assigned to the pair.
     */
    PairRole encodePair(float val1, float val2, u32 &out1, u32 &out2) const;

    /** Inverse of encodePair: identifier slots decode to zero. */
    void decodePair(u32 in1, u32 in2, float &val1, float &val2) const;

    /** decodePair without the value LUTs, the decode oracle. */
    void decodePairReference(u32 in1, u32 in2, float &val1,
                             float &val2) const;

    /**
     * Encode a whole tensor into a packed, memory-aligned byte stream.
     * Odd-length inputs are padded with a zero element.  4-bit pairs
     * pack into single bytes (low nibble = first element); 8-bit pairs
     * into two bytes.
     */
    std::vector<u8> encode(std::span<const float> xs,
                           OvpStats *stats = nullptr) const;

    /** Decode @p count elements from a packed stream. */
    std::vector<float> decode(std::span<const u8> bytes, size_t count) const;

    /**
     * Quantize-dequantize round trip without packing.  Fused: each pair
     * goes value -> codes -> value directly, never materializing the
     * byte stream, but producing bit-identical floats and stats to
     * decode(encode(xs), xs.size()).
     */
    std::vector<float> fakeQuant(std::span<const float> xs,
                                 OvpStats *stats = nullptr) const;

    /**
     * Pre-LUT round trip (search-based normal encode, per-scalar
     * abfloat decode, full encode -> byte stream -> decode).  Retained
     * as the bit-exactness oracle and the "before" baseline of
     * bench_micro_kernels.
     */
    std::vector<float> fakeQuantReference(std::span<const float> xs,
                                          OvpStats *stats = nullptr) const;

    /**
     * Mean squared error of the fake-quantization round trip in one
     * allocation-free pass: bit-identical to
     * stats::mse(xs, fakeQuant(xs)) but without materializing either
     * the byte stream or the round-tripped vector.  Runs serially — the
     * accumulation order must match stats::mse exactly, and the
     * calibration grid already parallelizes across candidates.
     */
    double fakeQuantMse(std::span<const float> xs) const;

    /**
     * The encodePair used by fakeQuantReference: search-based normal
     * encode with the per-call scale assert.  Exposed for the oracle
     * tests and the micro benchmark.
     */
    PairRole encodePairReference(float val1, float val2, u32 &out1,
                                 u32 &out2) const;

  private:
    /**
     * Quantize one outlier value to an abfloat code (with 2^15 clip).
     * Fast path: counts precomputed midpoint boundaries between the
     * distinct representable abfloat magnitudes instead of running
     * Algorithm 2's log2/round sequence per scalar.  The boundary
     * semantics (ties round away from zero, like llround) are verified
     * against AbFloat::encode at construction.
     */
    u32 quantizeOutlier(float val) const;

    /** Algorithm 2 per scalar, the oracle for quantizeOutlier(). */
    u32 quantizeOutlierReference(float val) const;

    /** Shared clip + sign handling of the two outlier quantizers. */
    template <bool kReference>
    u32 quantizeOutlierImpl(float val) const;

    /** Shared body of encodePair / encodePairReference. */
    template <bool kReference>
    PairRole encodePairImpl(float val1, float val2, u32 &out1,
                            u32 &out2) const;

    NormalType normal_;
    /**
     * The shared immutable per-type instance (NormalCodec::shared):
     * codecs are constructed per threshold candidate per KV row, so
     * even copying the ~7 KB of tables was measurable.  A reference
     * member leaves OvpCodec copy-constructible (construct-in-place
     * everywhere) but not assignable, which nothing needs.
     */
    const NormalCodec &codec_;
    AbFloat abfloat_;
    float scale_;
    double threshold_;

    // Per-pair constants and decode value LUTs, fixed at construction:
    // the decoded real value of every normal / abfloat code under
    // scale_, computed with exactly the reference expressions.
    u32 identifier_;
    std::array<float, 256> normalValue_{};
    std::array<float, 256> outlierValue_{};

    // Outlier encode boundary table: outlierBounds_[i] is the midpoint
    // between the i-th and (i+1)-th distinct representable abfloat
    // magnitudes; a magnitude in interval i (mag < bounds[i], >= the
    // previous) encodes as outlierCodes_[i].  outlierSign_ is the sign
    // bit of the abfloat code space.
    std::vector<double> outlierBounds_;
    std::vector<u32> outlierCodes_;
    u32 outlierSign_ = 0;
};

} // namespace olive

#endif // OLIVE_QUANT_OVP_HPP
