#include "ovp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_map>
#include <vector>

#include "util/bitops.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace {

/** Pairs per parallelFor chunk in the codec/census loops. */
constexpr size_t kPairGrain = 8192;

} // namespace

namespace olive {

int
defaultAbfloatBias(NormalType t)
{
    // Chosen so the abfloat range starts just above the normal range
    // (Sec. 3.3): int4 max 7 -> E2M1 bias 2 covers {12..96}; flint4 max
    // 16 -> bias 3 covers {24..192}; int8 max 127 -> E4M3 bias 4 starts
    // at 144.
    switch (t) {
      case NormalType::Int4:
        return 2;
      case NormalType::Flint4:
        return 3;
      case NormalType::Int8:
        return 4;
    }
    OLIVE_PANIC("unknown NormalType");
}

AbFloat
outlierTypeFor(NormalType t, int bias)
{
    const int b = (bias < 0) ? defaultAbfloatBias(t) : bias;
    return (t == NormalType::Int8) ? AbFloat::e4m3(b) : AbFloat::e2m1(b);
}

double
PairCensus::normalNormalPct() const
{
    return total() ? 100.0 * static_cast<double>(normalNormal) /
                         static_cast<double>(total())
                   : 0.0;
}

double
PairCensus::outlierNormalPct() const
{
    return total() ? 100.0 * static_cast<double>(outlierNormal) /
                         static_cast<double>(total())
                   : 0.0;
}

double
PairCensus::outlierOutlierPct() const
{
    return total() ? 100.0 * static_cast<double>(outlierOutlier) /
                         static_cast<double>(total())
                   : 0.0;
}

PairCensus
pairCensus(std::span<const float> xs, double k_sigma)
{
    PairCensus c;
    if (xs.empty())
        return c;
    const double m = stats::mean(xs);
    const double sigma = stats::stddev(xs);
    const double limit = k_sigma * sigma;
    // A trailing lone value zero-pads into a pair exactly as
    // OvpCodec::encode does, so census totals match the codec's pair
    // count for the same tensor.
    const size_t pairs = (xs.size() + 1) / 2;
    const size_t chunks = par::chunkCount(0, pairs, kPairGrain);
    std::vector<PairCensus> partial(chunks);
    par::parallelFor(0, pairs, kPairGrain, [&](size_t pb, size_t pe) {
        PairCensus local;
        for (size_t p = pb; p < pe; ++p) {
            const float v1 = xs[2 * p];
            const bool has2 = 2 * p + 1 < xs.size();
            const bool o1 = std::fabs(v1 - m) > limit;
            // The pad is always a normal value, as in the codec (a
            // zero can never exceed the positive outlier threshold) —
            // it must not register as an outlier just because the
            // tensor's mean is far from zero.
            const bool o2 =
                has2 && std::fabs(xs[2 * p + 1] - m) > limit;
            if (o1 && o2)
                ++local.outlierOutlier;
            else if (o1 || o2)
                ++local.outlierNormal;
            else
                ++local.normalNormal;
        }
        partial[par::chunkIndex(0, kPairGrain, pb)] = local;
    });
    for (const PairCensus &p : partial) {
        c.normalNormal += p.normalNormal;
        c.outlierNormal += p.outlierNormal;
        c.outlierOutlier += p.outlierOutlier;
    }
    return c;
}

namespace {

/**
 * Scale-independent outlier-side tables of one abfloat format: the
 * decoded value of every code and the encode boundary/code tables with
 * their bit-exact verification against AbFloat::encode.  Building them
 * is the expensive part of OvpCodec construction (hundreds of abfloat
 * encodes for E4M3), and the OVP calibration grid constructs one codec
 * per threshold candidate per KV row — so the tables are cached per
 * (normal type, bias) key and the constructor only applies the scale.
 *
 * The cache is thread_local, mirroring the decode-codec cache in
 * kv_cache.cpp: codec construction runs concurrently inside the
 * calibration grid's parallelFor, a per-thread map needs no locks, and
 * every thread builds the identical tables from the identical key.  The
 * key space is tiny (3 normal types x biases in [0, 40]), so no
 * eviction is needed.
 */
struct OutlierTables
{
    u32 sign = 0;                    //!< Sign bit of the code space.
    std::array<double, 256> decoded{}; //!< abfloat_.decode(code).
    std::vector<double> bounds;      //!< Magnitude midpoints.
    std::vector<u32> codes;          //!< Code per magnitude interval.
};

const OutlierTables &
outlierTablesFor(NormalType normal, const AbFloat &abfloat)
{
    thread_local std::unordered_map<u32, std::unique_ptr<OutlierTables>>
        cache;
    const u32 key = (static_cast<u32>(normal) << 8) |
                    static_cast<u32>(abfloat.bias());
    auto it = cache.find(key);
    if (it != cache.end())
        return *it->second;

    auto tabs = std::make_unique<OutlierTables>();
    const u32 identifier = outlierIdentifier(normal);
    const u32 n_codes = 1u << bitWidth(normal);
    for (u32 code = 0; code < n_codes; ++code)
        tabs->decoded[code] = abfloat.decode(code);

    // Outlier encode boundary table.  AbFloat::encode is a monotone
    // step function of the magnitude (round-to-nearest on the abfloat
    // grid, saturating at both ends); its switch points are the
    // midpoints between consecutive distinct representable magnitudes,
    // with ties rounding away from zero (llround).  All magnitudes are
    // integers times powers of two, so every midpoint is an exact
    // double and the step positions are verified exactly below.
    tabs->sign =
        1u << (static_cast<u32>(abfloat.expBits() + abfloat.mantBits()));
    const std::vector<i64> mags = abfloat.unsignedValueTable();
    // mags is ascending and deduplicated; drop the leading zero (the
    // all-zeros code is never produced for outliers).
    std::vector<double> vals;
    for (i64 v : mags) {
        if (v > 0)
            vals.push_back(static_cast<double>(v));
    }
    OLIVE_ASSERT(!vals.empty(), "empty abfloat magnitude table");
    tabs->codes.reserve(vals.size());
    for (double v : vals)
        tabs->codes.push_back(abfloat.encode(v));
    tabs->bounds.reserve(vals.size() - 1);
    for (size_t i = 0; i + 1 < vals.size(); ++i) {
        const double mid = (vals[i] + vals[i + 1]) / 2.0;
        tabs->bounds.push_back(mid);
        // Verify the step position bit-exactly: at the midpoint the
        // reference rounds up (away from zero); just below it rounds
        // down.
        OLIVE_ASSERT(abfloat.encode(mid) == tabs->codes[i + 1],
                     "abfloat midpoint must round up");
        OLIVE_ASSERT(abfloat.encode(std::nextafter(mid, 0.0)) ==
                         tabs->codes[i],
                     "abfloat below-midpoint must round down");
    }
    // Below-range magnitudes saturate up to the smallest nonzero code
    // and the codes can never collide with the identifier.
    OLIVE_ASSERT(abfloat.encode(vals.front() / 4.0) == tabs->codes[0],
                 "abfloat below-range must saturate to the minimum");
    for (u32 code : tabs->codes) {
        OLIVE_ASSERT(code != identifier && (code | tabs->sign) != identifier,
                     "outlier code must not be the identifier");
    }
    return *cache.emplace(key, std::move(tabs)).first->second;
}

} // namespace

OvpCodec::OvpCodec(NormalType normal, float scale, double threshold,
                   int abfloat_bias)
    : normal_(normal),
      codec_(NormalCodec::shared(normal)),
      abfloat_(outlierTypeFor(normal, abfloat_bias)),
      scale_(scale),
      threshold_(threshold),
      identifier_(outlierIdentifier(normal))
{
    OLIVE_ASSERT(scale_ > 0.0f, "OVP scale must be positive");
    OLIVE_ASSERT(threshold_ > 0.0, "OVP threshold must be positive");

    const OutlierTables &tabs = outlierTablesFor(normal_, abfloat_);
    // Decoded real value of every code under the fixed scale, using
    // exactly the reference decode expressions so LUT lookups are
    // bit-identical to decodePairReference.
    const u32 n_codes = 1u << bitWidth(normal_);
    for (u32 code = 0; code < n_codes; ++code) {
        if (code != identifier_)
            normalValue_[code] = codec_.decode(code, scale_);
        outlierValue_[code] =
            static_cast<float>(tabs.decoded[code]) * scale_;
    }
    outlierSign_ = tabs.sign;
    outlierBounds_ = tabs.bounds;
    outlierCodes_ = tabs.codes;
}

size_t
OvpCodec::bytesPerPair() const
{
    return bytesPerPair(normal_);
}

size_t
OvpCodec::bytesPerPair(NormalType t)
{
    return bitWidth(t) == 4 ? 1 : 2;
}

template <bool kReference>
u32
OvpCodec::quantizeOutlierImpl(float val) const
{
    // Outliers quantize on the same integer grid as normals; the
    // accumulator-overflow rule of Sec. 4.5 clips the grid magnitude to
    // 2^15 (never reached in practice: the largest observed outliers sit
    // around 325 sigma ~ 768 grid units).
    double grid = static_cast<double>(val) / scale_;
    constexpr double kClip = 32768.0; // 2^15
    grid = std::clamp(grid, -kClip, kClip);
    if constexpr (kReference) {
        const u32 code = abfloat_.encode(grid);
        // Abfloat never emits +-0, so it can never collide with the
        // identifier (which is the -0 bit pattern of both widths).
        OLIVE_ASSERT(code != identifier_,
                     "outlier code must not be the identifier");
        return code;
    } else {
        // Boundary count instead of Algorithm 2's log2/round sequence;
        // the table construction verified the step positions against
        // the reference encoder, and the codes were screened against
        // the identifier once at construction.
        const double mag = std::fabs(grid);
        size_t idx;
        if (outlierBounds_.size() <= 16) {
            size_t n_above = 0;
            for (double b : outlierBounds_)
                n_above += (mag >= b) ? 1u : 0u;
            idx = n_above;
        } else {
            idx = static_cast<size_t>(
                std::upper_bound(outlierBounds_.begin(),
                                 outlierBounds_.end(), mag) -
                outlierBounds_.begin());
        }
        const u32 code = outlierCodes_[idx];
        return (grid < 0.0) ? (code | outlierSign_) : code;
    }
}

u32
OvpCodec::quantizeOutlier(float val) const
{
    return quantizeOutlierImpl<false>(val);
}

u32
OvpCodec::quantizeOutlierReference(float val) const
{
    return quantizeOutlierImpl<true>(val);
}

template <bool kReference>
PairRole
OvpCodec::encodePairImpl(float val1, float val2, u32 &out1, u32 &out2) const
{
    const double a1 = std::fabs(val1);
    const double a2 = std::fabs(val2);
    const bool o1 = a1 > threshold_;
    const bool o2 = a2 > threshold_;

    if (o1 && a1 >= a2) {
        // Left outlier: the right value is sacrificed as the victim.
        out1 = quantizeOutlierImpl<kReference>(val1);
        out2 = identifier_;
        return o2 ? PairRole::PrunedOutlier : PairRole::OutlierVictim;
    }
    if (o2) {
        // Right outlier: the left value is the victim.  If the left
        // value was itself an outlier (o1, but smaller), it is pruned.
        out1 = identifier_;
        out2 = quantizeOutlierImpl<kReference>(val2);
        return o1 ? PairRole::PrunedOutlier : PairRole::OutlierVictim;
    }
    if constexpr (kReference) {
        out1 = codec_.encodeReference(val1, scale_);
        out2 = codec_.encodeReference(val2, scale_);
    } else {
        out1 = codec_.encode(val1, scale_);
        out2 = codec_.encode(val2, scale_);
    }
    return PairRole::NormalNormal;
}

PairRole
OvpCodec::encodePair(float val1, float val2, u32 &out1, u32 &out2) const
{
    return encodePairImpl<false>(val1, val2, out1, out2);
}

PairRole
OvpCodec::encodePairReference(float val1, float val2, u32 &out1,
                              u32 &out2) const
{
    return encodePairImpl<true>(val1, val2, out1, out2);
}

void
OvpCodec::decodePair(u32 in1, u32 in2, float &val1, float &val2) const
{
    OLIVE_ASSERT(!(in1 == identifier_ && in2 == identifier_),
                 "both slots cannot hold the identifier");
    if (in1 == identifier_) {
        val1 = 0.0f;
        val2 = outlierValue_[in2];
    } else if (in2 == identifier_) {
        val1 = outlierValue_[in1];
        val2 = 0.0f;
    } else {
        val1 = normalValue_[in1];
        val2 = normalValue_[in2];
    }
}

void
OvpCodec::decodePairReference(u32 in1, u32 in2, float &val1,
                              float &val2) const
{
    OLIVE_ASSERT(!(in1 == identifier_ && in2 == identifier_),
                 "both slots cannot hold the identifier");
    if (in1 == identifier_) {
        val1 = 0.0f;
        val2 = static_cast<float>(abfloat_.decode(in2)) * scale_;
    } else if (in2 == identifier_) {
        val1 = static_cast<float>(abfloat_.decode(in1)) * scale_;
        val2 = 0.0f;
    } else {
        val1 = codec_.decode(in1, scale_);
        val2 = codec_.decode(in2, scale_);
    }
}

std::vector<u8>
OvpCodec::encode(std::span<const float> xs, OvpStats *stats) const
{
    const size_t pairs = (xs.size() + 1) / 2;
    std::vector<u8> out(pairs * bytesPerPair());
    const bool nibble_packed = bytesPerPair() == 1;

    // Pairs encode independently into disjoint output bytes; the stats
    // counters reduce from per-chunk partials in chunk order, so both
    // the byte stream and the counts are thread-count invariant.
    const size_t chunks = par::chunkCount(0, pairs, kPairGrain);
    std::vector<OvpStats> partial(chunks);
    par::parallelFor(0, pairs, kPairGrain, [&](size_t pb, size_t pe) {
        OvpStats st;
        for (size_t p = pb; p < pe; ++p) {
            const float v1 = xs[2 * p];
            const float v2 =
                (2 * p + 1 < xs.size()) ? xs[2 * p + 1] : 0.0f;
            u32 c1, c2;
            const PairRole role = encodePair(v1, v2, c1, c2);

            if (role != PairRole::NormalNormal) {
                ++st.outlierPairs;
                if (role == PairRole::PrunedOutlier)
                    ++st.prunedOutliers;
            }

            if (nibble_packed) {
                // Low nibble holds the first (left) element so a byte
                // read yields the pair in order.
                out[p] = bits::packNibbles(static_cast<u8>(c2),
                                           static_cast<u8>(c1));
            } else {
                out[2 * p] = static_cast<u8>(c1);
                out[2 * p + 1] = static_cast<u8>(c2);
            }
        }
        partial[par::chunkIndex(0, kPairGrain, pb)] = st;
    });

    if (stats) {
        OvpStats total;
        total.pairs = pairs;
        for (const OvpStats &st : partial) {
            total.outlierPairs += st.outlierPairs;
            total.prunedOutliers += st.prunedOutliers;
        }
        *stats = total;
    }
    return out;
}

std::vector<float>
OvpCodec::decode(std::span<const u8> bytes, size_t count) const
{
    const size_t pairs = (count + 1) / 2;
    OLIVE_ASSERT(bytes.size() >= pairs * bytesPerPair(),
                 "decode stream too short");
    std::vector<float> out(count);
    const bool nibble_packed = bytesPerPair() == 1;
    par::parallelFor(0, pairs, kPairGrain, [&](size_t pb, size_t pe) {
        for (size_t p = pb; p < pe; ++p) {
            u32 c1, c2;
            if (nibble_packed) {
                c1 = bits::lowNibble(bytes[p]);
                c2 = bits::highNibble(bytes[p]);
            } else {
                c1 = bytes[2 * p];
                c2 = bytes[2 * p + 1];
            }
            float v1, v2;
            decodePair(c1, c2, v1, v2);
            out[2 * p] = v1;
            if (2 * p + 1 < count)
                out[2 * p + 1] = v2;
        }
    });
    return out;
}

std::vector<float>
OvpCodec::fakeQuant(std::span<const float> xs, OvpStats *stats) const
{
    // Fused value -> codes -> value pass: no byte stream, no second
    // sweep.  Codes are exactly what encode() would pack and decodePair
    // is the same table decode() uses, so the output floats and the
    // stats are bit-identical to decode(encode(xs), xs.size()).
    const size_t pairs = (xs.size() + 1) / 2;
    std::vector<float> out(xs.size());
    const size_t chunks = par::chunkCount(0, pairs, kPairGrain);
    std::vector<OvpStats> partial(stats ? chunks : 0);
    par::parallelFor(0, pairs, kPairGrain, [&](size_t pb, size_t pe) {
        OvpStats st;
        for (size_t p = pb; p < pe; ++p) {
            const float v1 = xs[2 * p];
            const bool has2 = 2 * p + 1 < xs.size();
            const float v2 = has2 ? xs[2 * p + 1] : 0.0f;
            u32 c1, c2;
            const PairRole role = encodePair(v1, v2, c1, c2);
            if (role != PairRole::NormalNormal) {
                ++st.outlierPairs;
                if (role == PairRole::PrunedOutlier)
                    ++st.prunedOutliers;
            }
            float q1, q2;
            decodePair(c1, c2, q1, q2);
            out[2 * p] = q1;
            if (has2)
                out[2 * p + 1] = q2;
        }
        if (stats)
            partial[par::chunkIndex(0, kPairGrain, pb)] = st;
    });
    if (stats) {
        OvpStats total;
        total.pairs = pairs;
        for (const OvpStats &st : partial) {
            total.outlierPairs += st.outlierPairs;
            total.prunedOutliers += st.prunedOutliers;
        }
        *stats = total;
    }
    return out;
}

std::vector<float>
OvpCodec::fakeQuantReference(std::span<const float> xs,
                             OvpStats *stats) const
{
    // The pre-LUT round trip: search-based normal encode into a packed
    // byte stream, then a second per-scalar decode sweep.  Serial on
    // purpose — it is the single-thread "before" baseline the micro
    // benchmark compares against, and the oracle the tests hold
    // fakeQuant() to.
    const size_t pairs = (xs.size() + 1) / 2;
    const bool nibble_packed = bytesPerPair() == 1;
    std::vector<u8> bytes(pairs * bytesPerPair());
    OvpStats st;
    st.pairs = pairs;
    for (size_t p = 0; p < pairs; ++p) {
        const float v1 = xs[2 * p];
        const float v2 = (2 * p + 1 < xs.size()) ? xs[2 * p + 1] : 0.0f;
        u32 c1, c2;
        const PairRole role = encodePairReference(v1, v2, c1, c2);
        if (role != PairRole::NormalNormal) {
            ++st.outlierPairs;
            if (role == PairRole::PrunedOutlier)
                ++st.prunedOutliers;
        }
        if (nibble_packed) {
            bytes[p] = bits::packNibbles(static_cast<u8>(c2),
                                         static_cast<u8>(c1));
        } else {
            bytes[2 * p] = static_cast<u8>(c1);
            bytes[2 * p + 1] = static_cast<u8>(c2);
        }
    }
    std::vector<float> out(xs.size());
    for (size_t p = 0; p < pairs; ++p) {
        u32 c1, c2;
        if (nibble_packed) {
            c1 = bits::lowNibble(bytes[p]);
            c2 = bits::highNibble(bytes[p]);
        } else {
            c1 = bytes[2 * p];
            c2 = bytes[2 * p + 1];
        }
        float v1, v2;
        decodePairReference(c1, c2, v1, v2);
        out[2 * p] = v1;
        if (2 * p + 1 < xs.size())
            out[2 * p + 1] = v2;
    }
    if (stats)
        *stats = st;
    return out;
}

double
OvpCodec::fakeQuantMse(std::span<const float> xs) const
{
    if (xs.empty())
        return 0.0;
    // Serial, element-order accumulation: must match
    // stats::mse(xs, fakeQuant(xs)) bit-for-bit, and the calibration
    // grid this serves already parallelizes across candidates (a nested
    // parallelFor would run inline anyway).
    const size_t pairs = (xs.size() + 1) / 2;
    double acc = 0.0;
    for (size_t p = 0; p < pairs; ++p) {
        const float v1 = xs[2 * p];
        const bool has2 = 2 * p + 1 < xs.size();
        const float v2 = has2 ? xs[2 * p + 1] : 0.0f;
        u32 c1, c2;
        encodePair(v1, v2, c1, c2);
        float q1, q2;
        decodePair(c1, c2, q1, q2);
        const double d1 = static_cast<double>(v1) - q1;
        acc += d1 * d1;
        if (has2) {
            const double d2 = static_cast<double>(v2) - q2;
            acc += d2 * d2;
        }
    }
    return acc / static_cast<double>(xs.size());
}

} // namespace olive
