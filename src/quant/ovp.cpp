#include "ovp.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/bitops.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace {

/** Pairs per parallelFor chunk in the codec/census loops. */
constexpr size_t kPairGrain = 8192;

} // namespace

namespace olive {

int
defaultAbfloatBias(NormalType t)
{
    // Chosen so the abfloat range starts just above the normal range
    // (Sec. 3.3): int4 max 7 -> E2M1 bias 2 covers {12..96}; flint4 max
    // 16 -> bias 3 covers {24..192}; int8 max 127 -> E4M3 bias 4 starts
    // at 144.
    switch (t) {
      case NormalType::Int4:
        return 2;
      case NormalType::Flint4:
        return 3;
      case NormalType::Int8:
        return 4;
    }
    OLIVE_PANIC("unknown NormalType");
}

AbFloat
outlierTypeFor(NormalType t, int bias)
{
    const int b = (bias < 0) ? defaultAbfloatBias(t) : bias;
    return (t == NormalType::Int8) ? AbFloat::e4m3(b) : AbFloat::e2m1(b);
}

double
PairCensus::normalNormalPct() const
{
    return total() ? 100.0 * static_cast<double>(normalNormal) /
                         static_cast<double>(total())
                   : 0.0;
}

double
PairCensus::outlierNormalPct() const
{
    return total() ? 100.0 * static_cast<double>(outlierNormal) /
                         static_cast<double>(total())
                   : 0.0;
}

double
PairCensus::outlierOutlierPct() const
{
    return total() ? 100.0 * static_cast<double>(outlierOutlier) /
                         static_cast<double>(total())
                   : 0.0;
}

PairCensus
pairCensus(std::span<const float> xs, double k_sigma)
{
    PairCensus c;
    if (xs.empty())
        return c;
    const double m = stats::mean(xs);
    const double sigma = stats::stddev(xs);
    const double limit = k_sigma * sigma;
    // A trailing lone value zero-pads into a pair exactly as
    // OvpCodec::encode does, so census totals match the codec's pair
    // count for the same tensor.
    const size_t pairs = (xs.size() + 1) / 2;
    const size_t chunks = par::chunkCount(0, pairs, kPairGrain);
    std::vector<PairCensus> partial(chunks);
    par::parallelFor(0, pairs, kPairGrain, [&](size_t pb, size_t pe) {
        PairCensus local;
        for (size_t p = pb; p < pe; ++p) {
            const float v1 = xs[2 * p];
            const bool has2 = 2 * p + 1 < xs.size();
            const bool o1 = std::fabs(v1 - m) > limit;
            // The pad is always a normal value, as in the codec (a
            // zero can never exceed the positive outlier threshold) —
            // it must not register as an outlier just because the
            // tensor's mean is far from zero.
            const bool o2 =
                has2 && std::fabs(xs[2 * p + 1] - m) > limit;
            if (o1 && o2)
                ++local.outlierOutlier;
            else if (o1 || o2)
                ++local.outlierNormal;
            else
                ++local.normalNormal;
        }
        partial[par::chunkIndex(0, kPairGrain, pb)] = local;
    });
    for (const PairCensus &p : partial) {
        c.normalNormal += p.normalNormal;
        c.outlierNormal += p.outlierNormal;
        c.outlierOutlier += p.outlierOutlier;
    }
    return c;
}

OvpCodec::OvpCodec(NormalType normal, float scale, double threshold,
                   int abfloat_bias)
    : normal_(normal),
      codec_(normal),
      abfloat_(outlierTypeFor(normal, abfloat_bias)),
      scale_(scale),
      threshold_(threshold)
{
    OLIVE_ASSERT(scale_ > 0.0f, "OVP scale must be positive");
    OLIVE_ASSERT(threshold_ > 0.0, "OVP threshold must be positive");
}

size_t
OvpCodec::bytesPerPair() const
{
    return bytesPerPair(normal_);
}

size_t
OvpCodec::bytesPerPair(NormalType t)
{
    return bitWidth(t) == 4 ? 1 : 2;
}

u32
OvpCodec::quantizeOutlier(float val) const
{
    // Outliers quantize on the same integer grid as normals; the
    // accumulator-overflow rule of Sec. 4.5 clips the grid magnitude to
    // 2^15 (never reached in practice: the largest observed outliers sit
    // around 325 sigma ~ 768 grid units).
    double grid = static_cast<double>(val) / scale_;
    constexpr double kClip = 32768.0; // 2^15
    grid = std::clamp(grid, -kClip, kClip);
    const u32 code = abfloat_.encode(grid);
    // Abfloat never emits +-0, so it can never collide with the
    // identifier (which is the -0 bit pattern of both widths).
    OLIVE_ASSERT(code != outlierIdentifier(normal_),
                 "outlier code must not be the identifier");
    return code;
}

void
OvpCodec::encodePair(float val1, float val2, u32 &out1, u32 &out2) const
{
    const double a1 = std::fabs(val1);
    const double a2 = std::fabs(val2);
    const u32 identifier = outlierIdentifier(normal_);

    if (a1 > threshold_ && a1 >= a2) {
        // Left outlier: the right value is sacrificed as the victim.
        out1 = quantizeOutlier(val1);
        out2 = identifier;
    } else if (a2 > threshold_) {
        // Right outlier: the left value is the victim.
        out1 = identifier;
        out2 = quantizeOutlier(val2);
    } else {
        out1 = codec_.encode(val1, scale_);
        out2 = codec_.encode(val2, scale_);
    }
}

void
OvpCodec::decodePair(u32 in1, u32 in2, float &val1, float &val2) const
{
    const u32 identifier = outlierIdentifier(normal_);
    OLIVE_ASSERT(!(in1 == identifier && in2 == identifier),
                 "both slots cannot hold the identifier");
    if (in1 == identifier) {
        val1 = 0.0f;
        val2 = static_cast<float>(abfloat_.decode(in2)) * scale_;
    } else if (in2 == identifier) {
        val1 = static_cast<float>(abfloat_.decode(in1)) * scale_;
        val2 = 0.0f;
    } else {
        val1 = codec_.decode(in1, scale_);
        val2 = codec_.decode(in2, scale_);
    }
}

std::vector<u8>
OvpCodec::encode(std::span<const float> xs, OvpStats *stats) const
{
    const size_t pairs = (xs.size() + 1) / 2;
    std::vector<u8> out(pairs * bytesPerPair());
    const u32 identifier = outlierIdentifier(normal_);
    const bool nibble_packed = bytesPerPair() == 1;

    // Pairs encode independently into disjoint output bytes; the stats
    // counters reduce from per-chunk partials in chunk order, so both
    // the byte stream and the counts are thread-count invariant.
    const size_t chunks = par::chunkCount(0, pairs, kPairGrain);
    std::vector<OvpStats> partial(chunks);
    par::parallelFor(0, pairs, kPairGrain, [&](size_t pb, size_t pe) {
        OvpStats st;
        for (size_t p = pb; p < pe; ++p) {
            const float v1 = xs[2 * p];
            const float v2 =
                (2 * p + 1 < xs.size()) ? xs[2 * p + 1] : 0.0f;
            u32 c1, c2;
            encodePair(v1, v2, c1, c2);

            if (c1 == identifier || c2 == identifier) {
                ++st.outlierPairs;
                const bool v1_out = std::fabs(v1) > threshold_;
                const bool v2_out = std::fabs(v2) > threshold_;
                if (v1_out && v2_out)
                    ++st.prunedOutliers;
            }

            if (nibble_packed) {
                // Low nibble holds the first (left) element so a byte
                // read yields the pair in order.
                out[p] = bits::packNibbles(static_cast<u8>(c2),
                                           static_cast<u8>(c1));
            } else {
                out[2 * p] = static_cast<u8>(c1);
                out[2 * p + 1] = static_cast<u8>(c2);
            }
        }
        partial[par::chunkIndex(0, kPairGrain, pb)] = st;
    });

    if (stats) {
        OvpStats total;
        total.pairs = pairs;
        for (const OvpStats &st : partial) {
            total.outlierPairs += st.outlierPairs;
            total.prunedOutliers += st.prunedOutliers;
        }
        *stats = total;
    }
    return out;
}

std::vector<float>
OvpCodec::decode(std::span<const u8> bytes, size_t count) const
{
    const size_t pairs = (count + 1) / 2;
    OLIVE_ASSERT(bytes.size() >= pairs * bytesPerPair(),
                 "decode stream too short");
    std::vector<float> out(count);
    const bool nibble_packed = bytesPerPair() == 1;
    par::parallelFor(0, pairs, kPairGrain, [&](size_t pb, size_t pe) {
        for (size_t p = pb; p < pe; ++p) {
            u32 c1, c2;
            if (nibble_packed) {
                c1 = bits::lowNibble(bytes[p]);
                c2 = bits::highNibble(bytes[p]);
            } else {
                c1 = bytes[2 * p];
                c2 = bytes[2 * p + 1];
            }
            float v1, v2;
            decodePair(c1, c2, v1, v2);
            out[2 * p] = v1;
            if (2 * p + 1 < count)
                out[2 * p + 1] = v2;
        }
    });
    return out;
}

std::vector<float>
OvpCodec::fakeQuant(std::span<const float> xs, OvpStats *stats) const
{
    const auto bytes = encode(xs, stats);
    return decode(bytes, xs.size());
}

} // namespace olive
