/**
 * @file
 * Exponent-integer pair, the unified post-decoder value representation
 * of Sec. 4.4.
 *
 * Every decoded operand — normal int, flint, or abfloat outlier — is an
 * exponent-integer pair <e, i> denoting the value i << e.  Products
 * follow the rule <a,b> * <c,d> = <a+c, b*d>, implemented with a shifter
 * and a fixed-point multiplier in hardware.
 */

#ifndef OLIVE_QUANT_EXPINT_HPP
#define OLIVE_QUANT_EXPINT_HPP

#include "util/common.hpp"

namespace olive {

/** Exponent-integer pair <e, i> = i << e (Sec. 4.4). */
struct ExpInt
{
    u8 exponent = 0;  //!< Left-shift amount (always non-negative).
    i32 integer = 0;  //!< Signed fixed-point integer.

    /** The represented integer value i << e. */
    constexpr i64
    value() const
    {
        return static_cast<i64>(integer) << exponent;
    }

    /** Product rule <a,b> * <c,d> = <a+c, b*d>. */
    constexpr ExpInt
    operator*(const ExpInt &o) const
    {
        return ExpInt{static_cast<u8>(exponent + o.exponent),
                      integer * o.integer};
    }

    constexpr bool
    operator==(const ExpInt &o) const
    {
        return value() == o.value();
    }
};

} // namespace olive

#endif // OLIVE_QUANT_EXPINT_HPP
