/**
 * @file
 * Per-tensor OliVe quantizer (Sec. 3.4).
 *
 * The quantizer picks the outlier-victim threshold (equivalently the
 * scale factor) by MSE minimization: starting from the 3-sigma rule it
 * grid-searches threshold candidates around 3 sigma, fake-quantizes a
 * sample under each candidate, and keeps the candidate with the lowest
 * mean squared error.  For 4-bit mode it additionally selects the
 * normal-value data type (int4 vs flint4) per tensor, following ANT's
 * insight that the best type depends on the tensor's distribution.
 */

#ifndef OLIVE_QUANT_QUANTIZER_HPP
#define OLIVE_QUANT_QUANTIZER_HPP

#include <span>
#include <vector>

#include "ovp.hpp"

namespace olive {

/** Configuration of the OliVe per-tensor quantizer. */
struct OliveConfig
{
    int bits = 4;              //!< 4 or 8.
    bool adaptiveType = true;  //!< Pick int4 vs flint4 by MSE (4-bit only).
    NormalType forcedType = NormalType::Int4; //!< Used when !adaptiveType.
    int searchPoints = 28;     //!< Threshold grid resolution.
    double searchLo = 0.25;    //!< Lowest candidate, in multiples of 3 sigma.
    double searchHi = 6.00;    //!< Highest candidate, in multiples of
                               //!< 3 sigma.
    size_t sampleCap = 8192;   //!< Max elements used during the MSE search.
};

/** Outcome of calibration for one tensor. */
struct QuantDecision
{
    NormalType normal = NormalType::Int4;
    float scale = 1.0f;      //!< Real value per integer grid unit.
    double threshold = 0.0;  //!< Real-domain outlier threshold.
    double mse = 0.0;        //!< Sample MSE achieved by this decision.
};

/**
 * The OliVe per-tensor quantizer: calibrate once (on calibration data),
 * then fake-quantize or encode any tensor with the frozen decision.
 */
class OliveQuantizer
{
  public:
    explicit OliveQuantizer(OliveConfig config = {});

    const OliveConfig &config() const { return config_; }

    /**
     * Search the threshold (and normal type) minimizing sample MSE.
     * Each grid candidate is scored with a single allocation-free MSE
     * pass over the shared sample (OvpCodec::fakeQuantMse), so no
     * per-candidate byte stream or round-trip vector is materialized.
     * @pre xs is non-empty and not all zeros.
     */
    QuantDecision calibrate(std::span<const float> xs) const;

    /**
     * The pre-fusion grid search: per candidate, a full fake-quant
     * round trip (encode -> byte stream -> decode) scored with
     * stats::mse.  Retained as the decision oracle and the "before"
     * baseline of bench_micro_kernels; returns exactly the same
     * winning type/threshold/scale/MSE as calibrate().
     */
    QuantDecision calibrateReference(std::span<const float> xs) const;

    /** Codec implementing a frozen decision. */
    OvpCodec makeCodec(const QuantDecision &d) const;

    /** Calibrate on @p xs and return the round-tripped values. */
    std::vector<float> fakeQuant(std::span<const float> xs,
                                 QuantDecision *decision = nullptr) const;

  private:
    /** Pair-aligned subsample of at most sampleCap elements. */
    std::vector<float> sample(std::span<const float> xs) const;

    OliveConfig config_;
};

} // namespace olive

#endif // OLIVE_QUANT_QUANTIZER_HPP
