#include "stream.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace olive {

namespace {

constexpr u32 kMagic = 0x4F564531; // "OVE1"
constexpr u32 kVersion = 1;

void
put32(std::vector<u8> &out, u32 v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<u8>((v >> (8 * i)) & 0xFF));
}

void
put64(std::vector<u8> &out, u64 v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>((v >> (8 * i)) & 0xFF));
}

u32
get32(std::span<const u8> in, size_t &pos)
{
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(in[pos++]) << (8 * i);
    return v;
}

u64
get64(std::span<const u8> in, size_t &pos)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(in[pos++]) << (8 * i);
    return v;
}

constexpr size_t kHeaderBytes = 4 + 4 + 4 + 4 + 4 + 8 + 8;

} // namespace

OvpCodec
OvpStream::codec() const
{
    return OvpCodec(normal, scale, threshold, abfloatBias);
}

std::vector<float>
OvpStream::decode() const
{
    return codec().decode(bytes, count);
}

size_t
OvpStream::serializedSize() const
{
    return kHeaderBytes + bytes.size();
}

OvpStream
packStream(const OvpCodec &codec, std::span<const float> xs)
{
    OvpStream s;
    s.normal = codec.normalType();
    s.abfloatBias = codec.outlierType().bias();
    s.scale = codec.scale();
    s.threshold = codec.threshold();
    s.count = xs.size();
    s.bytes = codec.encode(xs);
    return s;
}

std::vector<u8>
serialize(const OvpStream &s)
{
    std::vector<u8> out;
    out.reserve(s.serializedSize());
    put32(out, kMagic);
    put32(out, kVersion);
    put32(out, static_cast<u32>(s.normal));
    put32(out, static_cast<u32>(s.abfloatBias));
    u32 scale_bits;
    std::memcpy(&scale_bits, &s.scale, sizeof(scale_bits));
    put32(out, scale_bits);
    u64 threshold_bits;
    std::memcpy(&threshold_bits, &s.threshold, sizeof(threshold_bits));
    put64(out, threshold_bits);
    put64(out, s.count);
    out.insert(out.end(), s.bytes.begin(), s.bytes.end());
    return out;
}

OvpStream
deserialize(std::span<const u8> blob)
{
    if (blob.size() < kHeaderBytes)
        OLIVE_FATAL("OVP stream truncated (header)");
    size_t pos = 0;
    if (get32(blob, pos) != kMagic)
        OLIVE_FATAL("not an OVP stream (bad magic)");
    if (get32(blob, pos) != kVersion)
        OLIVE_FATAL("unsupported OVP stream version");

    OvpStream s;
    const u32 type = get32(blob, pos);
    if (type > static_cast<u32>(NormalType::Int8))
        OLIVE_FATAL("OVP stream has an invalid normal type");
    s.normal = static_cast<NormalType>(type);
    s.abfloatBias = static_cast<int>(get32(blob, pos));
    const u32 scale_bits = get32(blob, pos);
    std::memcpy(&s.scale, &scale_bits, sizeof(s.scale));
    const u64 threshold_bits = get64(blob, pos);
    std::memcpy(&s.threshold, &threshold_bits, sizeof(s.threshold));
    s.count = get64(blob, pos);

    // Codec construction asserts on these; for a deserialized blob they
    // are user input, so reject them as fatal() instead of aborting.
    if (!(s.scale > 0.0f) || !std::isfinite(s.scale))
        OLIVE_FATAL("OVP stream has a non-positive or non-finite scale");
    if (!(s.threshold > 0.0) || !std::isfinite(s.threshold))
        OLIVE_FATAL("OVP stream has a non-positive or non-finite threshold");

    // ceil(count / 2) without the (count + 1) overflow a hostile count
    // of UINT64_MAX would cause; the division-form comparison below is
    // likewise wrap-free, so an oversized count dies here as fatal()
    // instead of as an uncontrolled allocation later.
    const u64 pairs = s.count / 2 + s.count % 2;
    const size_t bpp = OvpCodec::bytesPerPair(s.normal);
    const size_t payload = blob.size() - pos;
    if (pairs > payload / bpp)
        OLIVE_FATAL("OVP stream truncated (payload)");
    if (static_cast<size_t>(pairs) * bpp < payload)
        OLIVE_FATAL("OVP stream has trailing bytes past the payload");
    s.bytes.assign(blob.begin() + static_cast<long>(pos),
                   blob.begin() +
                       static_cast<long>(pos + static_cast<size_t>(pairs) *
                                                   bpp));
    return s;
}

void
saveStream(const OvpStream &stream, const std::string &path)
{
    const auto blob = serialize(stream);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        OLIVE_FATAL("cannot open " + path + " for writing");
    const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    if (written != blob.size())
        OLIVE_FATAL("short write to " + path);
}

OvpStream
loadStream(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        OLIVE_FATAL("cannot open " + path);
    // A directory opens successfully on POSIX but fails on the first
    // read (EISDIR) — and its fseek/ftell "size" is filesystem
    // garbage.  Probe a byte so the failure names the path instead of
    // surfacing as a bogus allocation.
    const int probe = std::fgetc(f);
    if (probe == EOF && std::ferror(f)) {
        std::fclose(f);
        OLIVE_FATAL("cannot read " + path + " (is it a regular file?)");
    }
    if (std::fseek(f, 0, SEEK_END) != 0) {
        std::fclose(f);
        OLIVE_FATAL("cannot seek to the end of " + path);
    }
    // ftell() returns -1 for unseekable paths (e.g. a directory); the
    // old cast to size_t turned that into a ~2^64 allocation.
    const long size = std::ftell(f);
    if (size < 0) {
        std::fclose(f);
        OLIVE_FATAL("cannot determine the size of " + path +
                    " (is it a regular file?)");
    }
    if (std::fseek(f, 0, SEEK_SET) != 0) {
        std::fclose(f);
        OLIVE_FATAL("cannot rewind " + path);
    }
    std::vector<u8> blob(static_cast<size_t>(size));
    const size_t read =
        blob.empty() ? 0 : std::fread(blob.data(), 1, blob.size(), f);
    std::fclose(f);
    if (read != blob.size())
        OLIVE_FATAL("short read from " + path);
    return deserialize(blob);
}

} // namespace olive
