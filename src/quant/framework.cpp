#include "framework.hpp"

#include <cmath>

#include "util/parallel.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace olive {

OliveMixedScheme::OliveMixedScheme(double escalate_threshold)
    : escalateThreshold_(escalate_threshold)
{
}

OvpCodec
OliveMixedScheme::pickCodec(std::span<const float> xs, bool *escalated)
{
    OliveConfig c4;
    c4.bits = 4;
    const OliveQuantizer q4(c4);
    const QuantDecision d4 = q4.calibrate(xs);
    const auto rt4 = q4.makeCodec(d4).fakeQuant(xs);

    const bool escalate =
        bulkRelativeMse(xs, rt4) > escalateThreshold_;
    if (escalated)
        *escalated = escalate;
    if (!escalate)
        return q4.makeCodec(d4);

    OliveConfig c8;
    c8.bits = 8;
    const OliveQuantizer q8(c8);
    return q8.makeCodec(q8.calibrate(xs));
}

std::vector<float>
OliveMixedScheme::apply(std::span<const float> xs, TensorKind)
{
    // relaxed: monotone statistics — appliers run from parallel
    // kernels, but nothing is published through these counters and the
    // readers tolerate in-flight staleness (see the header's contract).
    applied_.fetch_add(1, std::memory_order_relaxed);
    bool escalated = false;
    const OvpCodec codec = pickCodec(xs, &escalated);
    if (escalated)
        escalated_.fetch_add(1, std::memory_order_relaxed);
    return codec.fakeQuant(xs);
}

Scheme::Applier
OliveMixedScheme::calibrate(std::span<const float> calibration, TensorKind)
{
    bool escalated = false;
    const OvpCodec codec = pickCodec(calibration, &escalated);
    // Stats count per *application*, not at calibration: a frozen
    // applier may quantize any number of tensors (including zero), and
    // escalationRate()/weightBits() must reflect the tensors actually
    // quantized under the calibrate-then-apply flow.
    return [this, codec, escalated](std::span<const float> xs) {
        // relaxed: same monotone-statistic contract as apply().
        applied_.fetch_add(1, std::memory_order_relaxed);
        if (escalated)
            escalated_.fetch_add(1, std::memory_order_relaxed);
        return codec.fakeQuant(xs);
    };
}

int
OliveMixedScheme::weightBits() const
{
    const double rate = escalationRate();
    return static_cast<int>(std::lround(4.0 * (1.0 - rate) + 8.0 * rate));
}

double
OliveMixedScheme::escalationRate() const
{
    // relaxed: counters are sampled independently, so a reader racing
    // an applier can see (applied, escalated) one increment apart —
    // acceptable for a rate; exact once the parallel region joins.
    const u64 applied = applied_.load(std::memory_order_relaxed);
    const u64 escalated = escalated_.load(std::memory_order_relaxed);
    return applied ? static_cast<double>(escalated) /
                         static_cast<double>(applied)
                   : 0.0;
}

double
PtqReport::averageBits() const
{
    double bits = 0.0, elems = 0.0;
    for (const auto &t : tensors) {
        bits += static_cast<double>(t.bits) * static_cast<double>(t.elems);
        elems += static_cast<double>(t.elems);
    }
    return elems > 0.0 ? bits / elems : 0.0;
}

size_t
PtqReport::countType(NormalType type) const
{
    size_t n = 0;
    for (const auto &t : tensors)
        n += (t.normal == type);
    return n;
}

double
PtqReport::meanSqnrDb() const
{
    double acc = 0.0, elems = 0.0;
    for (const auto &t : tensors) {
        acc += t.sqnrDb * static_cast<double>(t.elems);
        elems += static_cast<double>(t.elems);
    }
    return elems > 0.0 ? acc / elems : 0.0;
}

std::string
PtqReport::render() const
{
    Table table({"Tensor", "Type", "Bits", "Elems", "Threshold",
                 "SQNR (dB)", "OV pairs %"});
    for (const auto &t : tensors) {
        table.addRow({t.name, toString(t.normal), std::to_string(t.bits),
                      std::to_string(t.elems), Table::num(t.threshold, 4),
                      Table::num(t.sqnrDb, 2),
                      Table::num(t.outlierPairPct, 2)});
    }
    std::string out = table.render();
    out += "average bits: " + Table::num(averageBits(), 2) +
           ", mean SQNR: " + Table::num(meanSqnrDb(), 2) + " dB\n";
    return out;
}

double
bulkRelativeMse(std::span<const float> ref, std::span<const float> quant)
{
    OLIVE_ASSERT(ref.size() == quant.size(), "size mismatch");
    const double med = stats::percentile(ref, 50.0);
    const double limit = 3.0 * stats::robustSigma(ref);
    double err = 0.0, power = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < ref.size(); ++i) {
        if (std::fabs(ref[i] - med) > limit)
            continue;
        const double d = static_cast<double>(ref[i]) - quant[i];
        err += d * d;
        power += static_cast<double>(ref[i]) * ref[i];
        ++n;
    }
    if (n == 0 || power == 0.0)
        return 0.0;
    return err / power;
}

TensorReport
reportTensor(const std::string &name, std::span<const float> xs, int bits)
{
    OliveConfig cfg;
    cfg.bits = bits;
    const OliveQuantizer q(cfg);
    const QuantDecision d = q.calibrate(xs);
    const OvpCodec codec = q.makeCodec(d);
    OvpStats st;
    const auto rt = codec.fakeQuant(xs, &st);

    TensorReport r;
    r.name = name;
    r.normal = d.normal;
    r.bits = bits;
    r.elems = xs.size();
    r.threshold = d.threshold;
    r.mse = stats::mse(xs, rt);
    r.sqnrDb = stats::sqnrDb(xs, rt);
    r.outlierPairPct = st.pairs
                           ? 100.0 * static_cast<double>(st.outlierPairs) /
                                 static_cast<double>(st.pairs)
                           : 0.0;
    return r;
}

PtqReport
reportTensors(std::span<const NamedSpan> tensors, int bits)
{
    PtqReport report;
    report.tensors.resize(tensors.size());
    par::parallelFor(0, tensors.size(), 1, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i)
            report.tensors[i] =
                reportTensor(tensors[i].name, tensors[i].data, bits);
    });
    return report;
}

} // namespace olive
