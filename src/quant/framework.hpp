/**
 * @file
 * Model-level quantization framework pieces: the mixed-precision OliVe
 * scheme (Sec. 4.5 — the architecture natively executes int8/abfloat8
 * on four 4-bit PEs, so the framework may escalate individual tensors)
 * and per-tensor PTQ reporting.
 */

#ifndef OLIVE_QUANT_FRAMEWORK_HPP
#define OLIVE_QUANT_FRAMEWORK_HPP

#include <atomic>
#include <span>
#include <string>
#include <vector>

#include "quantizer.hpp"
#include "scheme.hpp"

namespace olive {

/**
 * Mixed-precision OliVe: quantize each tensor at 4 bits, escalating to
 * 8 bits when the 4-bit relative MSE (MSE / mean square) exceeds a
 * threshold.  Because OVP already absorbs outliers at 4 bits, OliVe
 * escalates far less often than ANT does (the ablation bench
 * quantifies this), which is why the paper can stay at pure 4-bit
 * where ANT's mixed precision collapses to int8.
 */
class OliveMixedScheme : public Scheme
{
  public:
    explicit OliveMixedScheme(double escalate_threshold = 3e-2);

    std::string name() const override { return "4/8-bit OliVe (mixed)"; }
    std::vector<float> apply(std::span<const float> xs,
                             TensorKind kind) override;

    /**
     * The returned applier counts toward applied_/escalated_ each time
     * it runs (calibration itself does not), so escalationRate() and
     * weightBits() reflect the tensors actually quantized under the
     * calibrate-then-apply flow.  The applier references this scheme,
     * which must outlive it; the counters are atomic monotone
     * statistics — incremented and read with memory_order_relaxed
     * throughout, because no data is published through them and a
     * concurrent reader only needs a value at most one in-flight
     * application stale (exact once the parallel region joins).
     */
    Applier calibrate(std::span<const float> calibration,
                      TensorKind kind) override;

    /** Memory-model bits: the running average across applied tensors. */
    int weightBits() const override;
    int activationBits() const override { return weightBits(); }

    /** Fraction of tensors escalated to 8-bit so far. */
    double escalationRate() const;

    /** Tensors quantized so far (apply() calls + applier invocations). */
    u64 appliedCount() const
    {
        return applied_.load(std::memory_order_relaxed);
    }

    /** Of those, tensors that escalated to 8-bit. */
    u64 escalatedCount() const
    {
        return escalated_.load(std::memory_order_relaxed);
    }

  private:
    /** Calibrate both precisions and pick; returns the chosen codec. */
    OvpCodec pickCodec(std::span<const float> xs, bool *escalated);

    double escalateThreshold_;
    std::atomic<u64> applied_{0};
    std::atomic<u64> escalated_{0};
};

/** One tensor's record in a model-level PTQ report. */
struct TensorReport
{
    std::string name;
    NormalType normal = NormalType::Int4;
    int bits = 4;
    u64 elems = 0;
    double threshold = 0.0;
    double mse = 0.0;
    double sqnrDb = 0.0;
    double outlierPairPct = 0.0;
};

/** Aggregate of a full-model PTQ pass. */
struct PtqReport
{
    std::vector<TensorReport> tensors;

    /** Element-weighted average storage bits. */
    double averageBits() const;

    /** Tensors using the given normal type. */
    size_t countType(NormalType t) const;

    /** Element-weighted mean SQNR in dB. */
    double meanSqnrDb() const;

    /** Render as an aligned table. */
    std::string render() const;
};

/**
 * Quantize one tensor with the standard OliVe flow at the given bit
 * width and produce its report entry.
 */
TensorReport reportTensor(const std::string &name,
                          std::span<const float> xs, int bits);

/** A named tensor view, the unit of batch PTQ reporting. */
struct NamedSpan
{
    std::string name;
    std::span<const float> data;
};

/**
 * Per-tensor PTQ report over a whole model: reportTensor() for every
 * entry, calibrated/applied in parallel (one tensor per index, so the
 * report is identical at any OLIVE_THREADS value), in input order.
 */
PtqReport reportTensors(std::span<const NamedSpan> tensors, int bits);

/**
 * Bulk-aware relative reconstruction error: the MSE over the *normal*
 * values (within 3 robust sigma of the median) divided by their power.
 * Plain relative MSE is dominated by outlier energy on transformer
 * tensors, so a scheme can "pass" while obliterating the bulk; accuracy
 * tracks the bulk, and so does this criterion.
 */
double bulkRelativeMse(std::span<const float> ref,
                       std::span<const float> quant);

} // namespace olive

#endif // OLIVE_QUANT_FRAMEWORK_HPP
