/**
 * @file
 * Adaptive biased float (abfloat), the outlier-specific data type of
 * Sec. 3.3.
 *
 * An abfloat code is sign | exponent | mantissa.  The decoded value is a
 * fixed-point exponent-integer pair:
 *
 *   exponent = bias + exponent_field
 *   integer  = 0                       if the unsigned code is all zeros
 *            = (1 << mant_bits) | mantissa  otherwise (implicit leading 1)
 *   value    = sign * (integer << exponent)
 *
 * The adaptive bias shifts the entire representable range above the
 * normal-value range, so outlier codes never waste representation space
 * on values the normal type already covers:
 *
 *   - E2M1 + bias 2 covers {12 .. 96}, complementary to int4's [0, 7];
 *   - E2M1 + bias 3 covers {24 .. 192}, complementary to flint4's 16;
 *   - E4M3 + bias 4 covers {144 .. 15 << 19}, complementary to int8.
 *
 * Two codes must never be produced for outliers: +0 (all zeros) and -0
 * (1000...), because -0 is the OVP outlier identifier (Sec. 3.3).
 */

#ifndef OLIVE_QUANT_ABFLOAT_HPP
#define OLIVE_QUANT_ABFLOAT_HPP

#include <string>
#include <vector>

#include "expint.hpp"
#include "util/common.hpp"

namespace olive {

/** An abfloat format: ExMy with an adaptive exponent bias. */
class AbFloat
{
  public:
    /**
     * @param exp_bits  Exponent field width (0..4).
     * @param mant_bits Mantissa field width (0..3).
     * @param bias      Adaptive exponent bias.
     *
     * exp_bits + mant_bits + 1 (sign) is the total code width: 4 for the
     * E2M1 outlier type, 8 for E4M3.
     */
    AbFloat(int exp_bits, int mant_bits, int bias);

    /** Signed E2M1 with the given bias (the 4-bit outlier type). */
    static AbFloat e2m1(int bias);

    /** Signed E4M3 with the given bias (the 8-bit outlier type). */
    static AbFloat e4m3(int bias);

    int expBits() const { return expBits_; }
    int mantBits() const { return mantBits_; }
    int bias() const { return bias_; }

    /** Total code width in bits, including the sign. */
    int codeWidth() const { return 1 + expBits_ + mantBits_; }

    /** Format name like "E2M1(bias=2)". */
    std::string name() const;

    /**
     * Algorithm 2: encode a real value (already divided by the tensor
     * scale) as an abfloat code.  The magnitude saturates to
     * [minNonzero(), maxValue()]; the result is never +0 or -0, so it
     * cannot collide with the OVP identifier.
     * @pre e != 0 (outliers are nonzero by definition)
     */
    u32 encode(double e) const;

    /** Decode a code to the exponent-integer pair of Fig. 7. */
    ExpInt decodeExpInt(u32 code) const;

    /** Decoded numeric value of a code. */
    double decode(u32 code) const;

    /** Largest representable magnitude: (2^(m+1)-1) << (maxExp + bias). */
    double maxValue() const;

    /** Smallest nonzero representable magnitude. */
    double minNonzero() const;

    /**
     * All non-negative representable values, ascending and deduplicated
     * (paper Table 4 enumerates these for E2M1 bias 0).
     */
    std::vector<i64> unsignedValueTable() const;

  private:
    int expBits_;
    int mantBits_;
    int bias_;
};

} // namespace olive

#endif // OLIVE_QUANT_ABFLOAT_HPP
