#include "abfloat.hpp"

#include <algorithm>
#include <cmath>

#include "util/bitops.hpp"

namespace olive {

AbFloat::AbFloat(int exp_bits, int mant_bits, int bias)
    : expBits_(exp_bits), mantBits_(mant_bits), bias_(bias)
{
    OLIVE_ASSERT(exp_bits >= 0 && exp_bits <= 4, "exponent width 0..4");
    OLIVE_ASSERT(mant_bits >= 0 && mant_bits <= 3, "mantissa width 0..3");
    OLIVE_ASSERT(exp_bits + mant_bits > 0, "empty abfloat format");
    OLIVE_ASSERT(bias >= 0 && bias <= 40, "bias out of sane range");
}

AbFloat
AbFloat::e2m1(int bias)
{
    return AbFloat(2, 1, bias);
}

AbFloat
AbFloat::e4m3(int bias)
{
    return AbFloat(4, 3, bias);
}

std::string
AbFloat::name() const
{
    return "E" + std::to_string(expBits_) + "M" + std::to_string(mantBits_) +
           "(bias=" + std::to_string(bias_) + ")";
}

u32
AbFloat::encode(double e) const
{
    OLIVE_ASSERT(e != 0.0, "outliers are nonzero by definition");
    const u32 sign = (e < 0.0) ? 1u : 0u;
    const double mag = std::fabs(e);
    const u32 max_exp_field = (1u << expBits_) - 1u;
    const u32 max_mant = (mantBits_ > 0) ? ((1u << mantBits_) - 1u) : 0u;

    // Algorithm 2: get exponent and base integer.
    int exp = static_cast<int>(std::floor(std::log2(mag))) - mantBits_;
    i64 base_int = static_cast<i64>(std::llround(mag / std::ldexp(1.0, exp)));
    if (base_int == (i64{1} << (mantBits_ + 1))) {
        // Rounded up across the binade boundary.
        exp += 1;
        base_int >>= 1;
    }

    // Encode as the abfloat data type: subtract the adaptive bias.
    int exp_field = exp - bias_;

    u32 mant;
    if (exp_field < 0) {
        // Below the representable range: saturate up to the minimum
        // nonzero code so the result cannot collide with the zero /
        // identifier codes.
        exp_field = (mantBits_ > 0) ? 0 : 1;
        mant = (mantBits_ > 0) ? 1u : 0u;
    } else if (static_cast<u32>(exp_field) > max_exp_field) {
        exp_field = static_cast<int>(max_exp_field);
        mant = max_mant;
    } else {
        mant = static_cast<u32>(base_int) & max_mant;
        // The all-zeros unsigned code means zero; bump to the smallest
        // nonzero code instead (Sec. 3.3 disables 0000 for outliers).
        if (exp_field == 0 && mant == 0) {
            if (mantBits_ > 0)
                mant = 1;
            else
                exp_field = 1;
        }
    }

    return (sign << (expBits_ + mantBits_)) |
           (static_cast<u32>(exp_field) << mantBits_) | mant;
}

ExpInt
AbFloat::decodeExpInt(u32 code) const
{
    const u32 unsigned_width = static_cast<u32>(expBits_ + mantBits_);
    const u32 sign = bits::field(code, unsigned_width, 1);
    const u32 unsigned_code = code & ((1u << unsigned_width) - 1u);
    const u32 exp_field = unsigned_code >> mantBits_;
    const u32 mant = unsigned_code & ((mantBits_ > 0)
                                      ? ((1u << mantBits_) - 1u) : 0u);

    ExpInt out;
    out.exponent = static_cast<u8>(bias_ + static_cast<int>(exp_field));
    if (unsigned_code == 0) {
        out.integer = 0;
        out.exponent = 0;
    } else {
        const i32 integer = static_cast<i32>((1u << mantBits_) | mant);
        out.integer = sign ? -integer : integer;
    }
    return out;
}

double
AbFloat::decode(u32 code) const
{
    return static_cast<double>(decodeExpInt(code).value());
}

double
AbFloat::maxValue() const
{
    const i64 integer = (i64{1} << (mantBits_ + 1)) - 1;
    const int exponent = bias_ + static_cast<int>((1u << expBits_) - 1u);
    return static_cast<double>(integer << exponent);
}

double
AbFloat::minNonzero() const
{
    return decode(1u);
}

std::vector<i64>
AbFloat::unsignedValueTable() const
{
    std::vector<i64> vals;
    const u32 n = 1u << (expBits_ + mantBits_);
    vals.reserve(n);
    for (u32 code = 0; code < n; ++code)
        vals.push_back(decodeExpInt(code).value());
    std::sort(vals.begin(), vals.end());
    vals.erase(std::unique(vals.begin(), vals.end()), vals.end());
    return vals;
}

} // namespace olive
