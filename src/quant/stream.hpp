/**
 * @file
 * Serialization of OVP-encoded tensors.
 *
 * A serialized stream is a small fixed header (magic, version, normal
 * type, abfloat bias, scale, threshold, element count) followed by the
 * packed pair bytes — the exact bytes a DRAM-resident OliVe tensor
 * would hold, so a saved stream can be decoded by either the software
 * codec or the hardware decoder model.
 */

#ifndef OLIVE_QUANT_STREAM_HPP
#define OLIVE_QUANT_STREAM_HPP

#include <string>
#include <vector>

#include "ovp.hpp"

namespace olive {

/** A self-describing serialized OVP tensor. */
struct OvpStream
{
    NormalType normal = NormalType::Int4;
    int abfloatBias = -1;      //!< -1 = complementary default.
    float scale = 1.0f;
    double threshold = 1.0;
    u64 count = 0;             //!< Element count (pre-padding).
    std::vector<u8> bytes;     //!< Packed pairs.

    /** Codec matching this stream's parameters. */
    OvpCodec codec() const;

    /** Decode back to floats. */
    std::vector<float> decode() const;

    /** Total serialized size in bytes (header + payload). */
    size_t serializedSize() const;
};

/** Encode @p xs with @p codec into a self-describing stream. */
OvpStream packStream(const OvpCodec &codec, std::span<const float> xs);

/** Serialize to a byte blob. */
std::vector<u8> serialize(const OvpStream &stream);

/**
 * Parse a blob produced by serialize().  fatal() on malformed input
 * (bad magic/version/truncation) — serialized streams are user inputs.
 */
OvpStream deserialize(std::span<const u8> blob);

/** Write a stream to a file. */
void saveStream(const OvpStream &stream, const std::string &path);

/** Read a stream from a file. */
OvpStream loadStream(const std::string &path);

} // namespace olive

#endif // OLIVE_QUANT_STREAM_HPP
